package pdtl

import (
	"context"
	"io"
	"os"

	"pdtl/internal/extsort"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

// GraphInfo summarizes a graph store (the columns of the paper's Table I).
type GraphInfo struct {
	Name        string
	NumVertices int
	NumEdges    uint64
	AvgDegree   float64
	StdDegree   float64
	MaxDegree   uint32
	Oriented    bool
	// MaxOutDegree is d*max for oriented stores (0 otherwise).
	MaxOutDegree uint32
}

// Info reads the metadata and degree statistics of the store at base. With
// an open handle, prefer (*Graph).Info, which computed the same once at
// Open.
func Info(base string) (GraphInfo, error) {
	d, err := graph.Open(base)
	if err != nil {
		return GraphInfo{}, err
	}
	return infoFrom(d), nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method; avoids importing math for one call site.
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// WriteGraph builds a simple undirected graph on n vertices from an edge
// list (duplicates, reverses and self-loops are cleaned up) and writes it
// to the store at base.
func WriteGraph(base, name string, n int, edges [][2]uint32) (GraphInfo, error) {
	converted := make([]graph.Edge, len(edges))
	for i, e := range edges {
		converted[i] = graph.Edge{U: e[0], V: e[1]}
	}
	g, err := graph.FromEdges(n, converted)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, name, g)
}

func writeStore(base, name string, g *graph.CSR) (GraphInfo, error) {
	if err := graph.WriteCSR(base, name, g); err != nil {
		return GraphInfo{}, err
	}
	return Info(base)
}

// GenerateRMAT writes an R-MAT graph (2^scale vertices, edgeFactor·2^scale
// edge samples before simplification) to the store at base — the paper's
// scale-free synthetic family.
func GenerateRMAT(base string, scale uint, edgeFactor int, seed int64) (GraphInfo, error) {
	g, err := gen.RMAT(scale, edgeFactor, seed)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, "rmat", g)
}

// GenerateErdosRenyi writes a uniform random graph to the store at base.
func GenerateErdosRenyi(base string, n, m int, seed int64) (GraphInfo, error) {
	g, err := gen.ErdosRenyi(n, m, seed)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, "erdos-renyi", g)
}

// GenerateComplete writes the complete graph K_n to the store at base; it
// has exactly n·(n-1)·(n-2)/6 triangles, which makes it a convenient
// correctness anchor.
func GenerateComplete(base string, n int) (GraphInfo, error) {
	g, err := gen.Complete(n)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, "complete", g)
}

// GenerateCommunity writes a power-law graph with planted community
// structure (high triangle density, like the paper's Orkut/LiveJournal
// social datasets). n vertices, m edge samples, communities groups;
// intraProb is the fraction of edges kept inside a community.
func GenerateCommunity(base string, n, m, communities int, intraProb float64, seed int64) (GraphInfo, error) {
	g, err := gen.Community(n, m, gen.CommunityParams{
		Communities: communities,
		IntraProb:   intraProb,
		Exponent:    2.5,
	}, seed)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, "community", g)
}

// GenerateWeb writes a web-graph stand-in (sparse, extreme hubs, long
// chains — the paper's Yahoo signature) with n vertices.
func GenerateWeb(base string, n int, seed int64) (GraphInfo, error) {
	g, err := gen.Web(n, gen.DefaultWeb, seed)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, "web", g)
}

// GeneratePowerLaw writes a Chung–Lu power-law graph with the given
// exponent (lower = heavier tail).
func GeneratePowerLaw(base string, n, m int, exponent float64, seed int64) (GraphInfo, error) {
	g, err := gen.PowerLaw(n, m, exponent, seed)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, "powerlaw", g)
}

// GenerateTriGrid writes the w×h diagonal grid, a planar graph with exactly
// 2·(w-1)·(h-1) triangles.
func GenerateTriGrid(base string, w, h int) (GraphInfo, error) {
	g, err := gen.TriGrid(w, h)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, "trigrid", g)
}

// StreamParams parameterize GenerateStream (see gen.StreamParams).
type StreamParams = gen.StreamParams

// StreamBatch is one churn batch of a generated mutation trace, JSON-shaped
// like the service's POST /v1/graphs/{name}/edges body.
type StreamBatch = gen.Batch

// GenerateStream writes a reproducible churn workload: the initial
// power-law store at base, and the NDJSON mutation trace (one batch per
// line) to w. When finalBase is non-empty, the store the trace converges to
// — the initial graph with every batch applied — is written there too, so
// an overlay that replayed the trace can be checked against a from-scratch
// build. Everything is a pure function of the params' seed.
func GenerateStream(base string, w io.Writer, finalBase string, p StreamParams) (GraphInfo, error) {
	csr, batches, final, err := gen.Stream(p)
	if err != nil {
		return GraphInfo{}, err
	}
	info, err := writeStore(base, "powerlaw", csr)
	if err != nil {
		return GraphInfo{}, err
	}
	if err := gen.WriteTrace(w, batches); err != nil {
		return GraphInfo{}, err
	}
	if finalBase != "" {
		// One fresh vertex becomes eligible per batch, so the final graph
		// lives on at most N+Batches vertices.
		fg, err := graph.FromEdges(p.N+p.Batches, final)
		if err != nil {
			return GraphInfo{}, err
		}
		if _, err := writeStore(finalBase, "powerlaw-churned", fg); err != nil {
			return GraphInfo{}, err
		}
	}
	return info, nil
}

// ReadStreamTrace parses an NDJSON mutation trace written by
// GenerateStream.
func ReadStreamTrace(r io.Reader) ([]StreamBatch, error) {
	return gen.ReadTrace(r)
}

// ConvertStoreFormat re-encodes the store at src into dst with the named
// adjacency format ("plain" or "compressed"); the logical graph — and
// therefore every triangle listing over it — is unchanged. src and dst may
// be equal: the two encodings live in different files (.adj vs
// .cadj/.cidx), so an in-place conversion writes the new encoding next to
// the old one and then removes the stale files.
func ConvertStoreFormat(src, dst, format string) (GraphInfo, error) {
	f, err := graph.ParseFormat(format)
	if err != nil {
		return GraphInfo{}, err
	}
	if err := graph.ConvertStore(src, dst, f); err != nil {
		return GraphInfo{}, err
	}
	if src == dst {
		stale := []string{graph.CAdjPath(src), graph.CIdxPath(src)}
		if f == graph.FormatCompressed {
			stale = []string{graph.AdjPath(src)}
		}
		for _, p := range stale {
			if err := os.Remove(p); err != nil {
				return GraphInfo{}, err
			}
		}
	}
	return Info(dst)
}

// Degrees reads the per-vertex degree array of the store at base (degrees
// of G for undirected stores, out-degrees of G* for oriented ones).
func Degrees(base string) ([]uint32, error) {
	d, err := graph.Open(base)
	if err != nil {
		return nil, err
	}
	return d.Degrees, nil
}

// ImportEdgeListText ingests a whitespace-separated text edge list (SNAP
// format: "u v" per line, '#' comments) into the store at base.
func ImportEdgeListText(r io.Reader, base, name string) (GraphInfo, error) {
	edges, n, err := graph.ReadEdgeListText(r)
	if err != nil {
		return GraphInfo{}, err
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return GraphInfo{}, err
	}
	return writeStore(base, name, g)
}

// ImportEdgeFileBinary ingests a binary edge file (little-endian uint32
// pairs) into the store at base using the external-memory pipeline —
// mirror, external sort, deduplicating scan — holding at most memEdges
// edges in memory. This is the O(sort(E)) path of Theorem IV.2 and the way
// to ingest graphs larger than RAM.
func ImportEdgeFileBinary(edgeFile, base, name string, memEdges int) (GraphInfo, error) {
	return ImportEdgeFileBinaryContext(context.Background(), edgeFile, base, name, memEdges)
}

// ImportEdgeFileBinaryContext is ImportEdgeFileBinary bound to a context:
// cancelling ctx aborts the ingest between record batches (within ~64k
// records at any pipeline stage) and returns ctx.Err() — the cancellation
// story the run methods already have, extended to dataset creation so
// pdtl-gen can wire SIGINT/SIGTERM to it. Intermediate files are cleaned
// up; a partially written store at base may remain.
func ImportEdgeFileBinaryContext(ctx context.Context, edgeFile, base, name string, memEdges int) (GraphInfo, error) {
	return ImportEdgeFileBinaryFormat(ctx, edgeFile, base, name, memEdges, "")
}

// ImportEdgeFileBinaryFormat is ImportEdgeFileBinaryContext with a chosen
// store format ("plain", "compressed", or "" for plain): a compressed
// ingest segment-encodes each adjacency list as it streams off the final
// sorted run, so the pipeline's memory bound is unchanged.
func ImportEdgeFileBinaryFormat(ctx context.Context, edgeFile, base, name string, memEdges int, format string) (GraphInfo, error) {
	f, err := graph.ParseFormat(format)
	if err != nil {
		return GraphInfo{}, err
	}
	if err := extsort.BuildStoreFormat(ctx, edgeFile, base, name, memEdges, f, nil); err != nil {
		return GraphInfo{}, err
	}
	return Info(base)
}

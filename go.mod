module pdtl

go 1.24

// Command pdtl-worker runs a PDTL client node: it receives oriented graph
// replicas from a master, executes its assigned edge ranges with MGT
// runners, and returns counts (Figure 1 of the paper).
//
// Usage:
//
//	pdtl-worker -addr :7100 -dir /var/lib/pdtl -name node1
//
// The worker serves until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pdtl"
)

func main() {
	addr := flag.String("addr", ":7100", "TCP listen address")
	dir := flag.String("dir", ".", "working directory for graph replicas")
	name := flag.String("name", "", "node name (default: host:port)")
	flag.Parse()

	nodeName := *name
	if nodeName == "" {
		nodeName = *addr
	}
	w, err := pdtl.ServeWorker(*addr, nodeName, *dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("pdtl-worker %q serving on %s (replicas in %s)\n", nodeName, w.Addr(), *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pdtl-worker: shutting down")
	w.Close()
}

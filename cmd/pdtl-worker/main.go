// Command pdtl-worker runs a PDTL client node: it receives oriented graph
// replicas from a master, executes its assigned edge ranges with MGT
// runners, and returns counts (Figure 1 of the paper).
//
// Usage:
//
//	pdtl-worker -addr :7100 -dir /var/lib/pdtl -name node1
//
// The worker serves until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pdtl"
	"pdtl/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7100", "TCP listen address")
	dir := flag.String("dir", ".", "working directory for graph replicas")
	name := flag.String("name", "", "node name (default: host:port)")
	debugAddr := flag.String("debug-addr", "", "optional listen address exposing /debug/pprof (disabled when empty)")
	logFormat := flag.String("log-format", "text", "structured log format on stderr: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-worker:", err)
		os.Exit(2)
	}
	nodeName := *name
	if nodeName == "" {
		nodeName = *addr
	}
	if *debugAddr != "" {
		bound, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdtl-worker:", err)
			os.Exit(1)
		}
		logger.Info("debug server listening", "addr", bound)
	}
	// SIGINT/SIGTERM cancel the context, which stops the server and aborts
	// any calculation still in flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w, err := pdtl.ServeWorkerContext(ctx, *addr, nodeName, *dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("pdtl-worker %q serving on %s (replicas in %s)\n", nodeName, w.Addr(), *dir)
	logger.Info("worker serving", "node", nodeName, "addr", w.Addr(), "dir", *dir)
	<-w.Done()
	fmt.Println("pdtl-worker: shutting down")
	logger.Info("worker stopped", "node", nodeName)
}

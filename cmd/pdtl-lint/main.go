// Command pdtl-lint runs PDTL's project-specific static analyzers (see
// internal/analysis). It works two ways:
//
//	go vet -vettool=$(which pdtl-lint) ./...
//
// drives it through the vet unitchecker protocol — this is what CI
// does — and
//
//	pdtl-lint [-json] [packages]
//
// standalone, which simply re-executes go vet with itself as the
// vettool (so facts still flow across packages) and, with -json,
// reformats the diagnostics as a flat machine-readable array of
// {file, line, analyzer, message} objects on stdout.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	pdtlanalysis "pdtl/internal/analysis"
)

func main() {
	if isVetProtocol(os.Args[1:]) {
		unitchecker.Main(pdtlanalysis.All()...) // does not return
	}

	fs := flag.NewFlagSet("pdtl-lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a flat JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pdtl-lint [-json] [packages]\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=pdtl-lint [packages]\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtl-lint: %v\n", err)
		os.Exit(2)
	}
	args := []string{"vet", "-vettool=" + exe}
	if *jsonOut {
		args = append(args, "-json")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	var stderr bytes.Buffer
	if *jsonOut {
		cmd.Stderr = &stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	err = cmd.Run()

	if *jsonOut {
		diags, perr := parseVetJSON(stderr.Bytes())
		if perr != nil {
			os.Stderr.Write(stderr.Bytes())
			fmt.Fprintf(os.Stderr, "pdtl-lint: parsing go vet -json output: %v\n", perr)
			os.Exit(2)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []flatDiag{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "pdtl-lint: %v\n", err)
			os.Exit(2)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "pdtl-lint: %v\n", err)
		os.Exit(2)
	}
}

// isVetProtocol reports whether the build tool (go vet) is driving us
// through the unitchecker protocol rather than a human running the
// standalone front end.
func isVetProtocol(args []string) bool {
	for _, a := range args {
		switch {
		case a == "-V=full", a == "-flags", strings.HasSuffix(a, ".cfg"):
			return true
		}
	}
	return false
}

// flatDiag is pdtl-lint's machine-readable diagnostic record.
type flatDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// parseVetJSON flattens go vet -json stderr output. The stream is a
// sequence of "# pkg" comment lines and JSON objects of the shape
// {"pkg": {"analyzer": [{"posn": "file:line:col", "message": ...}]}}.
func parseVetJSON(raw []byte) ([]flatDiag, error) {
	// Strip "# pkg" comment lines between objects.
	var clean bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		clean.Write(line)
		clean.WriteByte('\n')
	}
	type vetDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var out []flatDiag
	dec := json.NewDecoder(&clean)
	for dec.More() {
		var tree map[string]map[string][]vetDiag
		if err := dec.Decode(&tree); err != nil {
			return nil, err
		}
		for _, byAnalyzer := range tree {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					file, line := splitPosn(d.Posn)
					out = append(out, flatDiag{File: file, Line: line, Analyzer: analyzer, Message: d.Message})
				}
			}
		}
	}
	// Deterministic output regardless of map iteration and package
	// completion order.
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out, nil
}

// splitPosn breaks "file:line:col" (where file may contain colons on
// other platforms, so parse from the right).
func splitPosn(posn string) (file string, line int) {
	parts := strings.Split(posn, ":")
	if len(parts) >= 3 {
		if n, err := strconv.Atoi(parts[len(parts)-2]); err == nil {
			return strings.Join(parts[:len(parts)-2], ":"), n
		}
	}
	return posn, 0
}

func less(a, b flatDiag) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

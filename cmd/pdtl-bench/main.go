// Command pdtl-bench regenerates the paper's evaluation tables and figures
// (Section V) against the laptop-scale stand-in datasets. Each experiment
// id corresponds to one table or figure; see DESIGN.md §4 for the index.
//
// Usage:
//
//	pdtl-bench -list                 # show available experiments
//	pdtl-bench -exp table2           # run one experiment
//	pdtl-bench -all                  # run everything (minutes)
//	pdtl-bench -all -cache ./cache   # persist generated datasets
package main

import (
	"flag"
	"fmt"
	"os"

	"pdtl/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	cache := flag.String("cache", "", "persistent dataset cache directory")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-8s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}
	if !*all && *exp == "" {
		fmt.Fprintln(os.Stderr, "pdtl-bench: need -exp ID, -all, or -list")
		os.Exit(2)
	}
	h, err := harness.New(*cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(1)
	}
	if *all {
		err = h.RunAll(os.Stdout)
	} else {
		err = h.Run(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(1)
	}
}

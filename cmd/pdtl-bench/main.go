// Command pdtl-bench regenerates the paper's evaluation tables and figures
// (Section V) against the laptop-scale stand-in datasets. Each experiment
// id corresponds to one table or figure; see DESIGN.md §4 for the index.
//
// Usage:
//
//	pdtl-bench -list                 # show available experiments
//	pdtl-bench -exp table2           # run one experiment
//	pdtl-bench -all                  # run everything (minutes)
//	pdtl-bench -all -cache ./cache   # persist generated datasets
//	pdtl-bench -exp fig6 -scan buffered -kernel adaptive
//	                                 # any experiment under a different
//	                                 # scan source / intersection kernel
//	pdtl-bench -json -datasets tiny  # machine-readable per-run results
//	                                 # (wall/CPU/IO/worker-imbalance) for
//	                                 # the BENCH_*.json perf trajectory;
//	                                 # schema pdtl-bench/5 emits a count-only
//	                                 # row and a listing row per config, with
//	                                 # word_ops / fast_decodes vectorization
//	                                 # gauges
//	pdtl-bench -json -churn 1000     # live-graph rows instead: count over a
//	                                 # populated delta overlay, then again
//	                                 # after a forced compaction
//	                                 # (delta_edges / compactions fields)
//
// -baseline accepts dataset keys or store base paths, so a smoke job can
// ground-truth a store pdtl-gen just wrote (e.g. `pdtl-gen stream -final`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pdtl/internal/graph"
	"pdtl/internal/harness"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	cache := flag.String("cache", "", "persistent dataset cache directory")
	scanSource := flag.String("scan", "",
		"override the scan source for every experiment: auto, buffered, shared, or mem")
	kernel := flag.String("kernel", "",
		"override the intersection kernel for every experiment: merge, gallop, adaptive, compressed, or cover")
	schedMode := flag.String("sched", "",
		"override the chunk scheduler for every experiment: static or stealing")
	chunks := flag.Int("chunks", 0, "chunks per worker for the stealing scheduler (default 8)")
	store := flag.String("store", "",
		"override the oriented-store encoding for every experiment: plain or compressed")
	jsonOut := flag.Bool("json", false,
		"emit machine-readable per-run results (JSON) instead of the experiment tables")
	baselineOut := flag.Bool("baseline", false,
		"print the exact in-memory baseline triangle count per -datasets dataset "+
			"(independent ground truth for CI smoke cross-checks)")
	datasets := flag.String("datasets", "tiny,twitter-sim",
		"comma-separated dataset keys for -json")
	workers := flag.Int("workers", 4, "worker count for -json runs")
	mem := flag.Int("mem", 0, "memory budget per worker for -json runs (0 = tight default)")
	churn := flag.Int("churn", 0,
		"with -json: apply this many live edge mutations per dataset and report "+
			"delta-overlay and post-compaction rows instead of the static schedulers")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-8s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}
	if !*all && *exp == "" && !*jsonOut && !*baselineOut {
		fmt.Fprintln(os.Stderr, "pdtl-bench: need -exp ID, -all, -json, -baseline, or -list")
		os.Exit(2)
	}
	h, err := harness.New(*cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(1)
	}
	if h.Scan, err = scan.ParseSource(*scanSource); err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(2)
	}
	if h.Kernel, err = scan.ParseKernel(*kernel); err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(2)
	}
	if h.Sched, err = sched.ParseMode(*schedMode); err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(2)
	}
	if h.StoreFormat, err = graph.ParseFormat(*store); err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(2)
	}
	h.Chunks = *chunks
	// SIGINT/SIGTERM cancel the in-flight experiment's runners at their
	// next memory window instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	h.Ctx = ctx
	switch {
	case *baselineOut:
		for _, key := range strings.Split(*datasets, ",") {
			var n uint64
			if n, err = h.BaselineCount(key); err != nil {
				break
			}
			fmt.Printf("%s %d\n", key, n)
		}
	case *jsonOut && *churn > 0:
		err = h.BenchChurnJSON(os.Stdout, strings.Split(*datasets, ","), *workers, *mem, *churn)
	case *jsonOut:
		// An explicit -sched narrows the report to that scheduler; the
		// default is one record per scheduler for the ablation trajectory.
		var modes []sched.Mode
		if *schedMode != "" {
			modes = []sched.Mode{h.Sched}
		}
		err = h.BenchJSON(os.Stdout, strings.Split(*datasets, ","), *workers, *mem, modes)
	case *all:
		err = h.RunAll(os.Stdout)
	default:
		err = h.Run(*exp, os.Stdout)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "pdtl-bench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(1)
	}
}

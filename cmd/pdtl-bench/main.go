// Command pdtl-bench regenerates the paper's evaluation tables and figures
// (Section V) against the laptop-scale stand-in datasets. Each experiment
// id corresponds to one table or figure; see DESIGN.md §4 for the index.
//
// Usage:
//
//	pdtl-bench -list                 # show available experiments
//	pdtl-bench -exp table2           # run one experiment
//	pdtl-bench -all                  # run everything (minutes)
//	pdtl-bench -all -cache ./cache   # persist generated datasets
//	pdtl-bench -exp fig6 -scan buffered -kernel adaptive
//	                                 # any experiment under a different
//	                                 # scan source / intersection kernel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pdtl/internal/harness"
	"pdtl/internal/scan"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	cache := flag.String("cache", "", "persistent dataset cache directory")
	scanSource := flag.String("scan", "",
		"override the scan source for every experiment: auto, buffered, shared, or mem")
	kernel := flag.String("kernel", "",
		"override the intersection kernel for every experiment: merge, gallop, or adaptive")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-8s %-14s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}
	if !*all && *exp == "" {
		fmt.Fprintln(os.Stderr, "pdtl-bench: need -exp ID, -all, or -list")
		os.Exit(2)
	}
	h, err := harness.New(*cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(1)
	}
	if h.Scan, err = scan.ParseSource(*scanSource); err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(2)
	}
	if h.Kernel, err = scan.ParseKernel(*kernel); err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the in-flight experiment's runners at their
	// next memory window instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	h.Ctx = ctx
	if *all {
		err = h.RunAll(os.Stdout)
	} else {
		err = h.Run(*exp, os.Stdout)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "pdtl-bench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "pdtl-bench:", err)
		os.Exit(1)
	}
}

// Command pdtl-gen creates graph stores: synthetic datasets (RMAT and the
// paper's real-graph stand-ins) or conversions from edge-list files.
//
// Usage:
//
//	pdtl-gen rmat      -out BASE -scale 16 -edgefactor 16 [-seed S] [-format F]
//	pdtl-gen er        -out BASE -n 100000 -m 1000000 [-seed S] [-format F]
//	pdtl-gen complete  -out BASE -n 1000 [-format F]
//	pdtl-gen from-text -out BASE -in edges.txt [-name NAME] [-format F]
//	pdtl-gen from-bin  -out BASE -in edges.bin [-name NAME] [-mem EDGES] [-format F]
//	pdtl-gen convert   -in BASE -out BASE2 -format plain|compressed
//	pdtl-gen stream    -out trace.ndjson -base BASE [-final BASE2] -n 1000 -m 10000
//	                   [-batches B] [-batch-size K] [-delete-frac D] [-seed S]
//
// stream emits a reproducible churn workload for live graphs (DESIGN.md
// §11): an initial power-law store at -base plus an NDJSON trace of edge
// mutation batches — each line is a POST /v1/graphs/{name}/edges body.
// With -final it also writes the store the trace converges to, so a live
// graph that replayed the trace can be crosschecked against a from-scratch
// build of the same edge set.
//
// Every subcommand takes -format plain|compressed to pick the store's
// adjacency encoding (default plain; compressed is the delta-varint/bitmap
// segment layout). convert re-encodes an existing store — in place when
// -out is omitted or equals -in.
//
// from-bin ingests binary uint32-pair edge files through the
// external-memory pipeline (mirror, external sort, dedup scan), so inputs
// larger than RAM are fine. SIGINT/SIGTERM cancel an in-flight ingest
// cooperatively — the pipeline stops between record batches and the
// command exits cleanly (intermediates removed) instead of mid-write,
// matching the cancellation story of the other pdtl commands.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"pdtl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var info pdtl.GraphInfo
	var err error
	switch os.Args[1] {
	case "rmat":
		fs := flag.NewFlagSet("rmat", flag.ExitOnError)
		out := fs.String("out", "", "output store base path")
		scale := fs.Uint("scale", 16, "log2 of the vertex count")
		ef := fs.Int("edgefactor", 16, "edge samples per vertex")
		seed := fs.Int64("seed", 1, "random seed")
		format := formatFlag(fs)
		fs.Parse(os.Args[2:])
		info, err = generate(*out, *format, func() (pdtl.GraphInfo, error) {
			return pdtl.GenerateRMAT(*out, *scale, *ef, *seed)
		})
	case "er":
		fs := flag.NewFlagSet("er", flag.ExitOnError)
		out := fs.String("out", "", "output store base path")
		n := fs.Int("n", 1000, "vertex count")
		m := fs.Int("m", 10000, "edge samples")
		seed := fs.Int64("seed", 1, "random seed")
		format := formatFlag(fs)
		fs.Parse(os.Args[2:])
		info, err = generate(*out, *format, func() (pdtl.GraphInfo, error) {
			return pdtl.GenerateErdosRenyi(*out, *n, *m, *seed)
		})
	case "complete":
		fs := flag.NewFlagSet("complete", flag.ExitOnError)
		out := fs.String("out", "", "output store base path")
		n := fs.Int("n", 100, "vertex count")
		format := formatFlag(fs)
		fs.Parse(os.Args[2:])
		info, err = generate(*out, *format, func() (pdtl.GraphInfo, error) {
			return pdtl.GenerateComplete(*out, *n)
		})
	case "from-text":
		fs := flag.NewFlagSet("from-text", flag.ExitOnError)
		out := fs.String("out", "", "output store base path")
		in := fs.String("in", "", "input text edge list")
		name := fs.String("name", "imported", "dataset name")
		format := formatFlag(fs)
		fs.Parse(os.Args[2:])
		info, err = importText(*out, *in, *name)
		if err == nil {
			info, err = reencode(*out, *format)
		}
	case "from-bin":
		fs := flag.NewFlagSet("from-bin", flag.ExitOnError)
		out := fs.String("out", "", "output store base path")
		in := fs.String("in", "", "input binary edge file (uint32 pairs)")
		name := fs.String("name", "imported", "dataset name")
		mem := fs.Int("mem", 1<<22, "in-memory edges for external sorting")
		format := formatFlag(fs)
		fs.Parse(os.Args[2:])
		if *out == "" || *in == "" {
			err = fmt.Errorf("-out and -in are required")
		} else {
			// Signal wiring is scoped to from-bin, the one subcommand whose
			// pipeline honors a context: a process-wide NotifyContext would
			// swallow SIGINT for the generators too, leaving them
			// uninterruptible (the default signal behavior — immediate
			// exit — is right for them).
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			info, err = pdtl.ImportEdgeFileBinaryFormat(ctx, *in, *out, *name, *mem, *format)
			stop()
		}
	case "stream":
		fs := flag.NewFlagSet("stream", flag.ExitOnError)
		out := fs.String("out", "", "output NDJSON trace path (- for stdout)")
		base := fs.String("base", "", "initial store base path")
		finalBase := fs.String("final", "", "optional store base for the post-churn graph (for crosschecks)")
		n := fs.Int("n", 1000, "initial vertex count")
		m := fs.Int("m", 10000, "initial edge samples")
		exponent := fs.Float64("exponent", 2.5, "power-law exponent of the initial graph")
		batches := fs.Int("batches", 10, "mutation batches in the trace")
		batchSize := fs.Int("batch-size", 100, "edge mutations per batch")
		deleteFrac := fs.Float64("delete-frac", 0.3, "fraction of each batch that deletes live edges")
		seed := fs.Int64("seed", 1, "random seed (drives the graph and the churn)")
		format := formatFlag(fs)
		fs.Parse(os.Args[2:])
		if *out == "" || *base == "" {
			err = fmt.Errorf("-out and -base are required")
			break
		}
		var w io.Writer = os.Stdout
		if *out != "-" {
			var f *os.File
			if f, err = os.Create(*out); err != nil {
				break
			}
			defer f.Close()
			w = f
		}
		info, err = pdtl.GenerateStream(*base, w, *finalBase, pdtl.StreamParams{
			N: *n, M: *m, Exponent: *exponent,
			Batches: *batches, BatchSize: *batchSize, DeleteFrac: *deleteFrac,
			Seed: *seed,
		})
		if err == nil {
			if info, err = reencode(*base, *format); err == nil && *finalBase != "" {
				_, err = reencode(*finalBase, *format)
			}
		}
	case "convert":
		fs := flag.NewFlagSet("convert", flag.ExitOnError)
		in := fs.String("in", "", "input store base path")
		out := fs.String("out", "", "output store base path (default: convert in place)")
		format := fs.String("format", "", "target store format: plain or compressed (required)")
		fs.Parse(os.Args[2:])
		switch {
		case *in == "":
			err = fmt.Errorf("-in is required")
		case *format == "":
			err = fmt.Errorf("-format is required")
		default:
			dst := *out
			if dst == "" {
				dst = *in
			}
			info, err = pdtl.ConvertStoreFormat(*in, dst, *format)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "pdtl-gen: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "pdtl-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		info.Name, info.NumVertices, info.NumEdges, info.AvgDegree, info.MaxDegree)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pdtl-gen rmat      -out BASE -scale S -edgefactor F [-seed SEED] [-format F]
  pdtl-gen er        -out BASE -n N -m M [-seed SEED] [-format F]
  pdtl-gen complete  -out BASE -n N [-format F]
  pdtl-gen from-text -out BASE -in edges.txt [-name NAME] [-format F]
  pdtl-gen from-bin  -out BASE -in edges.bin [-name NAME] [-mem EDGES] [-format F]
  pdtl-gen convert   -in BASE [-out BASE2] -format plain|compressed
  pdtl-gen stream    -out TRACE -base BASE [-final BASE2] [-n N] [-m M]
                     [-batches B] [-batch-size K] [-delete-frac D] [-exponent E] [-seed SEED]
-format F is plain (default) or compressed (delta-varint/bitmap segments)`)
}

func formatFlag(fs *flag.FlagSet) *string {
	return fs.String("format", "plain", "store format: plain or compressed")
}

func generate(out, format string, fn func() (pdtl.GraphInfo, error)) (pdtl.GraphInfo, error) {
	if out == "" {
		return pdtl.GraphInfo{}, fmt.Errorf("-out is required")
	}
	info, err := fn()
	if err != nil {
		return info, err
	}
	return reencode(out, format)
}

// reencode converts a freshly written plain store in place when a
// non-plain format was requested.
func reencode(base, format string) (pdtl.GraphInfo, error) {
	if format == "" || format == "plain" {
		return pdtl.Info(base)
	}
	return pdtl.ConvertStoreFormat(base, base, format)
}

func importText(out, in, name string) (pdtl.GraphInfo, error) {
	if out == "" || in == "" {
		return pdtl.GraphInfo{}, fmt.Errorf("-out and -in are required")
	}
	f, err := os.Open(in)
	if err != nil {
		return pdtl.GraphInfo{}, err
	}
	defer f.Close()
	return pdtl.ImportEdgeListText(f, out, name)
}

// Command pdtl-serve runs the resident triangle query service: a registry
// of named, long-lived graph handles behind an HTTP/JSON API, with an
// admission controller bounding concurrent engine runs and a memoizing
// result cache with per-graph single-flight (see internal/service and
// DESIGN.md §8).
//
// Usage:
//
//	pdtl-serve -addr :7200 -graph lj=/data/lj -graph tw=/data/twitter
//	pdtl-serve -addr :7200 -slots 4 -queue 64 -max-graphs 8
//	pdtl-serve -addr :7200 -cluster node1:7100,node2:7100
//	                                # enables ?distributed=1 counts
//	pdtl-serve -addr :7200 -live -compact-edges 100000 -graph lj=/data/lj
//	                                # mutable graphs: POST …/edges applies
//	                                # batched inserts/deletes (DESIGN.md §11)
//
// Endpoints:
//
//	POST   /v1/graphs                      register {"name":..., "base":..., "live":...}
//	GET    /v1/graphs                      list registered graphs
//	GET    /v1/graphs/{name}               one graph's status
//	DELETE /v1/graphs/{name}               evict (close) a graph
//	GET    /v1/graphs/{name}/count        exact count (?workers= &mem=
//	                                       &sched= &scan= &kernel= &store= &naive=
//	                                       &timeout= &distributed=)
//	GET    /v1/graphs/{name}/triangles    NDJSON stream (?limit=)
//	GET    /v1/graphs/{name}/degrees      per-vertex triangle counts (?top=)
//	POST   /v1/graphs/{name}/estimate     approximate count (Doulion/wedges;
//	                                       streaming TRIÈST-FD on live graphs)
//	POST   /v1/graphs/{name}/edges        apply a mutation batch to a live
//	                                       graph {"insert":[[u,v],...],"delete":[...]}
//	POST   /v1/graphs/{name}/compact      fold the delta into a fresh snapshot
//	GET    /healthz                        liveness (503 while draining)
//	GET    /metrics                        plain-text counters and gauges
//
// SIGINT/SIGTERM start a graceful drain: queued requests are shed with
// 503s, in-flight engine runs (including streaming listings) are cancelled
// through the engine's context plumbing, and the process exits once every
// handler has returned or the drain timeout expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdtl"
	"pdtl/internal/obs"
	"pdtl/internal/service"
)

// graphFlags collects repeated -graph name=path arguments.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":7200", "HTTP listen address")
	slots := flag.Int("slots", 0, "concurrent engine-run slots (0 = CPU count)")
	queue := flag.Int("queue", 32, "requests allowed to wait for a run slot (-1 = none)")
	maxGraphs := flag.Int("max-graphs", 16, "open graph handles kept (LRU eviction past this)")
	workers := flag.Int("workers", 0, "default worker count per run (0 = CPU count)")
	mem := flag.Int("mem", 0, "default per-worker memory budget in adjacency entries (0 = engine default)")
	cluster := flag.String("cluster", "", "comma-separated PDTL worker node addresses for ?distributed=1 counts")
	clusterRetries := flag.Int("cluster-retries", 0,
		"reassignments allowed per work unit after a worker failure in distributed counts (0 = default 2, negative = fail fast)")
	clusterHeartbeat := flag.Duration("cluster-heartbeat", 0,
		"worker liveness ping interval for distributed counts (0 = default 2s, negative = disabled)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	live := flag.Bool("live", false, "register graphs as mutable delta overlays (enables POST …/edges and …/compact)")
	compactEdges := flag.Int("compact-edges", 0,
		"auto-compact a live graph once its delta holds this many edge mutations (0 = manual compaction only)")
	liveDir := flag.String("live-dir", "", "directory for compacted live snapshots (default: next to each store)")
	liveFormat := flag.String("live-format", "", "on-disk format for compacted snapshots: plain or compressed (default plain)")
	debugAddr := flag.String("debug-addr", "", "optional listen address exposing /debug/pprof (disabled when empty)")
	logFormat := flag.String("log-format", "text", "structured log format on stderr: text or json")
	var graphs graphFlags
	flag.Var(&graphs, "graph", "pre-register a graph as name=storepath (repeatable)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-serve:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		bound, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdtl-serve:", err)
			os.Exit(1)
		}
		logger.Info("debug server listening", "addr", bound)
	}

	cfg := service.Config{
		Log: logger,
		MaxGraphs:  *maxGraphs,
		RunSlots:   *slots,
		QueueDepth: *queue,
		Defaults:   pdtl.Options{Workers: *workers, MemEdges: *mem},
		Live:       *live,
		LiveDefaults: pdtl.LiveOptions{
			Dir:          *liveDir,
			CompactEdges: *compactEdges,
			StoreFormat:  *liveFormat,
			MemEdges:     *mem,
			Workers:      *workers,
		},
	}
	if *cluster != "" {
		cfg.ClusterAddrs = strings.Split(*cluster, ",")
		cfg.ClusterDefaults = pdtl.ClusterOptions{
			Workers:           *workers,
			MemEdges:          *mem,
			MaxRetries:        *clusterRetries,
			HeartbeatInterval: *clusterHeartbeat,
		}
	}
	svc := service.New(cfg)
	for _, spec := range graphs {
		name, base, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "pdtl-serve: bad -graph %q (want name=storepath)\n", spec)
			os.Exit(2)
		}
		if err := svc.RegisterGraph(name, base); err != nil {
			fmt.Fprintf(os.Stderr, "pdtl-serve: register %s: %v\n", name, err)
			os.Exit(1)
		}
		mode := ""
		if *live {
			mode = " (live)"
		}
		fmt.Printf("pdtl-serve: registered %q from %s%s\n", name, base, mode)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("pdtl-serve: listening on %s (%d graphs, %s run slots)\n",
		*addr, len(graphs), slotsLabel(*slots))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "pdtl-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: shed queued work with 503s, cancel in-flight engine runs, then
	// close the listener once the handlers have returned.
	fmt.Println("pdtl-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-serve: drain incomplete:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	fmt.Println("pdtl-serve: stopped")
}

func slotsLabel(n int) string {
	if n <= 0 {
		return "CPU-count"
	}
	return fmt.Sprint(n)
}

// Command pdtl-master runs the distributed PDTL protocol: it orients the
// input graph, replicates the oriented store to every worker, assigns each
// worker its processors' contiguous edge ranges, and sums the results
// (Section IV-B of the paper).
//
// Usage:
//
//	pdtl-master -graph path/to/store -nodes host1:7100,host2:7100 \
//	            [-workers P] [-mem ENTRIES] [-uplink BYTES/S] [-list out.bin]
//
// The master participates as node 0. With no -nodes it runs the protocol
// locally. SIGINT/SIGTERM cancel the run cooperatively: local runners stop
// at their next memory window, in-flight replica copies stop at the next
// chunk, and remote nodes are told to abandon their calculation.
//
// Worker failure mid-run is survived: the dead worker's share is
// reassigned to the survivors (or the master itself), bounded by
// -max-retries, and the recovered failures are printed in a "failures:"
// section — the run's count and listing stay exact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pdtl"
	"pdtl/internal/obs"
)

func main() {
	graphBase := flag.String("graph", "", "graph store base path (required)")
	nodes := flag.String("nodes", "", "comma-separated worker addresses")
	workers := flag.Int("workers", 1, "processors per node")
	mem := flag.Int("mem", 0, "memory budget per processor, in adjacency entries")
	uplink := flag.Int64("uplink", 0, "master uplink rate limit in bytes/s (0 = unlimited)")
	naive := flag.Bool("naive-balance", false, "disable in-degree load balancing")
	scanSource := flag.String("scan", "auto",
		"per-node scan source: auto (shared when workers > 1), buffered, shared, or mem")
	kernel := flag.String("kernel", "merge",
		"intersection kernel: merge, gallop, adaptive, compressed, or cover")
	store := flag.String("store", "",
		"oriented-store encoding built and replicated to workers: plain or compressed (default plain; already-oriented input is replicated as-is)")
	schedMode := flag.String("sched", "static",
		"chunk scheduler: static (pre-split plan, the paper's) or stealing (master dispenses chunk batches on demand)")
	chunks := flag.Int("chunks", 0, "chunks per processor for -sched stealing (default 8)")
	maxRetries := flag.Int("max-retries", 0,
		"reassignments allowed per work unit after a worker failure (0 = default 2, negative = fail fast on the first failure)")
	heartbeat := flag.Duration("heartbeat", 0,
		"worker liveness ping interval (0 = default 2s, negative = disabled); a worker missing 3 pings is declared dead and its work reassigned")
	list := flag.String("list", "", "write triangle listing to this file")
	tracePath := flag.String("trace", "", "write the run's merged phase trace (Chrome trace_event JSON, worker spans included) to this file")
	logFormat := flag.String("log-format", "text", "structured log format on stderr: text or json")
	flag.Parse()

	if *graphBase == "" {
		fmt.Fprintln(os.Stderr, "pdtl-master: -graph is required")
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-master:", err)
		os.Exit(2)
	}
	var addrs []string
	if *nodes != "" {
		addrs = strings.Split(*nodes, ",")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Worker failures are slog'd the moment the fault-tolerance layer sees
	// them (stderr, so stdout's triangles:/failures: report stays clean);
	// the trace cursor rides the same context into the cluster layer.
	var tr *obs.Trace
	if *tracePath != "" {
		tr = obs.NewTrace(0)
		ctx = obs.ContextWithCursor(ctx, obs.Cursor{T: tr, Span: obs.NoSpan, Worker: -1})
	}
	g, err := pdtl.Open(*graphBase)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdtl-master:", err)
		os.Exit(1)
	}
	defer g.Close()
	res, err := g.CountDistributed(ctx, addrs, pdtl.ClusterOptions{
		Log: logger,
		Workers:           *workers,
		MemEdges:          *mem,
		NaiveBalance:      *naive,
		UplinkBytesPerSec: *uplink,
		ScanSource:        *scanSource,
		Kernel:            *kernel,
		StoreFormat:       *store,
		Sched:             *schedMode,
		Chunks:            *chunks,
		MaxRetries:        *maxRetries,
		HeartbeatInterval: *heartbeat,
		List:              *list != "",
		ListPath:          *list,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "pdtl-master: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "pdtl-master:", err)
		os.Exit(1)
	}
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Printf("orientation: %v  calculation: %v  total: %v\n", res.OrientTime, res.CalcTime, res.TotalTime)
	fmt.Printf("network: %d bytes across %d nodes\n", res.NetworkBytes, len(res.Nodes))
	for i, n := range res.Nodes {
		fmt.Printf("  node %d (%s @ %s): triangles %d calc %v copy %v (%d bytes) cpu %v io %v\n",
			i, n.Name, n.Addr, n.Triangles, n.CalcTime, n.CopyTime, n.CopyBytes, n.CPUTime, n.IOTime)
	}
	if len(res.Failures) > 0 {
		fmt.Printf("failures: %d (worker failures recovered; results are exact)\n", len(res.Failures))
		for _, f := range res.Failures {
			unit := "pre-calculation (dial/handshake/copy)"
			if f.Chunk >= 0 {
				unit = fmt.Sprintf("work unit at plan index %d (%d ranges)", f.Chunk, f.Ranges)
			}
			fmt.Printf("  node %d (%s @ %s): %s, retries %d: %s\n",
				f.Slot, f.Node, f.Addr, unit, f.Retries, f.Err)
		}
	}
	if *list != "" {
		fmt.Printf("listing: %s\n", *list)
	}
	if tr != nil {
		if err := tr.WriteFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "pdtl-master:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (%d spans, %d dropped)\n", *tracePath, len(tr.Spans()), tr.Dropped())
	}
}

// Command pdtl-wirefp regenerates internal/cluster/wire.fingerprint,
// the committed, append-only fingerprint of the cluster's gob wire
// format. It type-checks the wire package from source and renders the
// canonical form defined by internal/analysis/wirefp.
//
// It is normally invoked through go:generate (see internal/cluster
// wire.go); the wirecompat analyzer and the regenerate-and-diff test in
// internal/analysis/wirefp keep the committed file honest.
package main

import (
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"os"

	"pdtl/internal/analysis/wirefp"
)

func main() {
	var (
		pkgPath  = flag.String("pkg", "pdtl/internal/cluster", "import path of the wire-definition package")
		wireFile = flag.String("wirefile", "wire.go", "file (base name) declaring the wire structs")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	fset := token.NewFileSet()
	pkg, err := importer.ForCompiler(fset, "source", nil).Import(*pkgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtl-wirefp: loading %s: %v\n", *pkgPath, err)
		os.Exit(1)
	}
	fp, err := wirefp.Compute(pkg, fset, *wireFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtl-wirefp: %v\n", err)
		os.Exit(1)
	}
	data := fp.Marshal()
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pdtl-wirefp: %v\n", err)
		os.Exit(1)
	}
}

// Command pdtl counts or lists triangles of an on-disk graph store on a
// single machine, the local entry point of the PDTL framework.
//
// Usage:
//
//	pdtl count -graph path/to/store [-workers P] [-mem M] [-naive-balance]
//	pdtl list  -graph path/to/store -out triangles.bin [-workers P] [-mem M]
//	pdtl info  -graph path/to/store
//
// The graph store is the three-file binary layout produced by pdtl-gen (or
// the pdtl library's Generate/Import functions). Unoriented stores are
// oriented automatically; the oriented store is left next to the input for
// reuse. SIGINT/SIGTERM cancel the run cooperatively: the workers stop at
// their next memory window and the command exits cleanly instead of
// mid-write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pdtl"
	"pdtl/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "count":
		err = runCount(ctx, os.Args[2:])
	case "list":
		err = runList(ctx, os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "pdtl: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "pdtl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pdtl count -graph BASE [-workers P] [-mem ENTRIES] [-naive-balance]
             [-scan auto|buffered|shared|mem]
             [-kernel merge|gallop|adaptive|compressed|cover]
             [-sched static|stealing] [-chunks K] [-store plain|compressed]
             [-trace FILE]
  pdtl list  -graph BASE -out FILE [-workers P] [-mem ENTRIES]
             [-scan auto|buffered|shared|mem]
             [-kernel merge|gallop|adaptive|compressed|cover]
             [-sched static|stealing] [-chunks K] [-store plain|compressed]
             [-trace FILE]
  pdtl info  -graph BASE`)
}

func commonFlags(fs *flag.FlagSet) (graphBase *string, opt *pdtl.Options) {
	opt = &pdtl.Options{}
	graphBase = fs.String("graph", "", "graph store base path (required)")
	fs.IntVar(&opt.Workers, "workers", 0, "parallel workers (default: CPUs)")
	fs.IntVar(&opt.MemEdges, "mem", 0, "memory budget per worker, in adjacency entries")
	fs.BoolVar(&opt.NaiveBalance, "naive-balance", false, "disable in-degree load balancing")
	fs.StringVar(&opt.ScanSource, "scan", "auto",
		"scan source: auto (shared when workers > 1), buffered, shared, or mem")
	fs.StringVar(&opt.Kernel, "kernel", "merge",
		"intersection kernel: merge, gallop, adaptive, compressed (block-skipping), or cover")
	fs.StringVar(&opt.Sched, "sched", "static",
		"chunk scheduler: static (one range per worker, the paper's) or stealing (dynamic chunk queue)")
	fs.IntVar(&opt.Chunks, "chunks", 0,
		"chunks per worker for -sched stealing (default 8)")
	fs.StringVar(&opt.StoreFormat, "store", "plain",
		"oriented-store format when orienting: plain or compressed")
	return graphBase, opt
}

// withTrace attaches a run trace to ctx when -trace was given; the
// returned flush writes it out after the run.
func withTrace(ctx context.Context, path string) (context.Context, func() error) {
	if path == "" {
		return ctx, func() error { return nil }
	}
	tr := obs.NewTrace(0)
	ctx = obs.ContextWithCursor(ctx, obs.Cursor{T: tr, Span: obs.NoSpan, Worker: -1})
	return ctx, func() error {
		if err := tr.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("trace: %s (%d spans, %d dropped)\n", path, len(tr.Spans()), tr.Dropped())
		return nil
	}
}

func runCount(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	graphBase, opt := commonFlags(fs)
	tracePath := fs.String("trace", "", "write the run's phase trace (Chrome trace_event JSON) to this file")
	fs.Parse(args)
	if *graphBase == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := pdtl.Open(*graphBase)
	if err != nil {
		return err
	}
	defer g.Close()
	ctx, flushTrace := withTrace(ctx, *tracePath)
	res, err := g.Count(ctx, *opt)
	if err != nil {
		return err
	}
	printResult(res)
	return flushTrace()
}

func runList(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	graphBase, opt := commonFlags(fs)
	out := fs.String("out", "", "output file for binary triangle triples (required)")
	tracePath := fs.String("trace", "", "write the run's phase trace (Chrome trace_event JSON) to this file")
	fs.Parse(args)
	if *graphBase == "" || *out == "" {
		return fmt.Errorf("-graph and -out are required")
	}
	g, err := pdtl.Open(*graphBase)
	if err != nil {
		return err
	}
	defer g.Close()
	ctx, flushTrace := withTrace(ctx, *tracePath)
	// ListFile writes through a temp file renamed into place, so an
	// interrupted listing never leaves a truncated file under the
	// requested name.
	res, err := g.ListFile(ctx, *out, *opt)
	if err != nil {
		return err
	}
	printResult(res)
	fmt.Printf("listing: %s (12 bytes per triangle)\n", *out)
	return flushTrace()
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	graphBase := fs.String("graph", "", "graph store base path (required)")
	fs.Parse(args)
	if *graphBase == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := pdtl.Open(*graphBase)
	if err != nil {
		return err
	}
	defer g.Close()
	info := g.Info()
	fmt.Printf("name:          %s\n", info.Name)
	fmt.Printf("vertices:      %d\n", info.NumVertices)
	fmt.Printf("edges:         %d\n", info.NumEdges)
	fmt.Printf("avg degree:    %.2f\n", info.AvgDegree)
	fmt.Printf("std degree:    %.2f\n", info.StdDegree)
	fmt.Printf("max degree:    %d\n", info.MaxDegree)
	fmt.Printf("oriented:      %v\n", info.Oriented)
	if info.Oriented {
		fmt.Printf("max outdegree: %d\n", info.MaxOutDegree)
	}
	return nil
}

func printResult(res *pdtl.Result) {
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Printf("orientation: %v  calculation: %v  total: %v\n",
		res.OrientTime, res.CalcTime, res.TotalTime)
	if res.SourceBytesRead > 0 {
		fmt.Printf("scan source: %s (%d bytes read by the source)  scheduler: %s\n",
			res.ScanSource, res.SourceBytesRead, res.Sched)
	} else {
		fmt.Printf("scan source: %s  scheduler: %s\n", res.ScanSource, res.Sched)
	}
	for _, w := range res.Workers {
		fmt.Printf("  worker %d: edges [%d,%d) chunks %d triangles %d passes %d cpu %v io %v\n",
			w.Worker, w.EdgeLo, w.EdgeHi, w.Chunks, w.Triangles, w.Passes, w.CPUTime, w.IOTime)
	}
}

package pdtl

import (
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

func tempStore(t testing.TB, g *graph.CSR, name string) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), name)
	if err := graph.WriteCSR(base, name, g); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestPublicCount(t *testing.T) {
	base := filepath.Join(t.TempDir(), "k30")
	info, err := GenerateComplete(base, 30)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumVertices != 30 || info.NumEdges != 435 {
		t.Fatalf("info = %+v", info)
	}
	res, err := Count(base, Options{Workers: 4, MemEdges: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != gen.CompleteTriangles(30) {
		t.Errorf("triangles = %d, want %d", res.Triangles, gen.CompleteTriangles(30))
	}
	if res.OrientTime <= 0 || res.MaxOutDegree != 29 {
		t.Errorf("orientation info missing: %+v", res)
	}
	if len(res.Workers) != 4 {
		t.Errorf("workers = %d", len(res.Workers))
	}
}

func TestPublicCountDefaults(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 8, 8, 1); err != nil {
		t.Fatal(err)
	}
	res, err := Count(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles == 0 {
		t.Error("RMAT graph should contain triangles")
	}
}

func TestPublicListAndRead(t *testing.T) {
	g, err := gen.TriGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := tempStore(t, g, "tg")
	out := filepath.Join(t.TempDir(), "tris.bin")
	res, err := List(base, out, Options{Workers: 3, MemEdges: 16})
	if err != nil {
		t.Fatal(err)
	}
	tris, err := ReadTriangleFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := gen.TriGridTriangles(6, 6)
	if res.Triangles != want || uint64(len(tris)) != want {
		t.Errorf("count=%d listed=%d want=%d", res.Triangles, len(tris), want)
	}
	seen := map[[3]uint32]bool{}
	for _, tri := range tris {
		if seen[tri] {
			t.Fatalf("duplicate %v", tri)
		}
		seen[tri] = true
	}
}

func TestPublicForEach(t *testing.T) {
	g, err := gen.ErdosRenyi(150, 1200, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := tempStore(t, g, "er")
	var count atomic.Uint64
	res, err := ForEachTriangle(base, Options{Workers: 4, MemEdges: 64}, func(u, v, w uint32) {
		count.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := baseline.Forward(g); count.Load() != want || res.Triangles != want {
		t.Errorf("callback=%d result=%d want=%d", count.Load(), res.Triangles, want)
	}
}

func TestPublicTriangleDegrees(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	base := tempStore(t, g, "tri")
	counts, res, err := TriangleDegrees(base, Options{Workers: 2, MemEdges: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 {
		t.Fatalf("triangles = %d", res.Triangles)
	}
	want := []uint64{1, 1, 1, 0}
	for v, c := range counts {
		if c != want[v] {
			t.Errorf("counts[%d] = %d, want %d", v, c, want[v])
		}
	}
}

func TestPublicWriteGraphAndImport(t *testing.T) {
	base := filepath.Join(t.TempDir(), "manual")
	info, err := WriteGraph(base, "manual", 4, [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {3, 3}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if info.NumEdges != 3 {
		t.Errorf("edges = %d, want 3 (loop and dup removed)", info.NumEdges)
	}
	res, err := Count(base, Options{Workers: 1, MemEdges: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 {
		t.Errorf("triangles = %d, want 1", res.Triangles)
	}

	// Text import of the same triangle.
	base2 := filepath.Join(t.TempDir(), "txt")
	info2, err := ImportEdgeListText(strings.NewReader("0 1\n1 2\n2 0\n"), base2, "txt")
	if err != nil {
		t.Fatal(err)
	}
	if info2.NumEdges != 3 {
		t.Errorf("text import edges = %d", info2.NumEdges)
	}
}

func TestPublicDistributed(t *testing.T) {
	g, err := gen.RMAT(9, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := tempStore(t, g, "dist")
	pool, err := StartLocalWorkers(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res, err := CountDistributed(base, pool.Addrs(), ClusterOptions{Workers: 2, MemEdges: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != want {
		t.Errorf("triangles = %d, want %d", res.Triangles, want)
	}
	if len(res.Nodes) != 3 {
		t.Errorf("nodes = %d, want 3", len(res.Nodes))
	}
	if res.NetworkBytes == 0 {
		t.Error("network bytes missing")
	}
}

func TestPublicServeWorker(t *testing.T) {
	w, err := ServeWorker("127.0.0.1:0", "w1", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Addr() == "" {
		t.Error("no address")
	}
	g, err := gen.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	base := tempStore(t, g, "k10")
	res, err := CountDistributed(base, []string{w.Addr()}, ClusterOptions{Workers: 1, MemEdges: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != gen.CompleteTriangles(10) {
		t.Errorf("triangles = %d", res.Triangles)
	}
}

func TestVerifySmallDegreePublic(t *testing.T) {
	base := filepath.Join(t.TempDir(), "k16")
	if _, err := GenerateComplete(base, 16); err != nil {
		t.Fatal(err)
	}
	res, err := Count(base, Options{Workers: 1, MemEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySmallDegree(res.OrientedBase, 64); err != nil {
		t.Errorf("d*max=15 <= 32, want pass: %v", err)
	}
	if err := VerifySmallDegree(res.OrientedBase, 16); err == nil {
		t.Error("d*max=15 > 8, want advisory error")
	}
}

func TestPublicApproximate(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 10, 16, 5); err != nil {
		t.Fatal(err)
	}
	res, err := Count(base, Options{Workers: 2, MemEdges: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(res.Triangles)
	doulion, err := EstimateDoulion(base, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if doulion < exact/2 || doulion > exact*2 {
		t.Errorf("Doulion estimate %.0f far from exact %.0f", doulion, exact)
	}
	wedges, err := EstimateWedges(base, 50_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wedges < exact*0.8 || wedges > exact*1.2 {
		t.Errorf("wedge estimate %.0f far from exact %.0f", wedges, exact)
	}
}

func TestPublicDynamicCounter(t *testing.T) {
	c := NewDynamicCounter()
	c.Insert(0, 1)
	c.Insert(1, 2)
	closed, err := c.Insert(0, 2)
	if err != nil || closed != 1 || c.Triangles() != 1 {
		t.Fatalf("closed=%d total=%d err=%v", closed, c.Triangles(), err)
	}
	if c.VertexTriangles(1) != 1 || c.Edges() != 3 {
		t.Error("bookkeeping wrong")
	}
	opened, err := c.Delete(0, 1)
	if err != nil || opened != 1 || c.Triangles() != 0 {
		t.Fatalf("delete: opened=%d total=%d err=%v", opened, c.Triangles(), err)
	}

	// Bulk load from a store and agree with the exact count.
	base := filepath.Join(t.TempDir(), "k12")
	if _, err := GenerateComplete(base, 12); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDynamicCounter(base)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Triangles() != gen.CompleteTriangles(12) {
		t.Errorf("loaded count %d", loaded.Triangles())
	}
}

func TestInfoOnOriented(t *testing.T) {
	base := filepath.Join(t.TempDir(), "k8")
	if _, err := GenerateComplete(base, 8); err != nil {
		t.Fatal(err)
	}
	res, err := Count(base, Options{Workers: 1, MemEdges: 16})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Info(res.OrientedBase)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Oriented || info.MaxOutDegree != 7 {
		t.Errorf("oriented info = %+v", info)
	}
}

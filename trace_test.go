package pdtl

import (
	"context"
	"path/filepath"
	"sort"
	"testing"

	"pdtl/internal/graph"
	"pdtl/internal/obs"
)

// spanAttr extracts one attribute from a span, with presence reporting.
func spanAttr(sp obs.Span, key string) (int64, bool) {
	for _, a := range sp.Attrs[:sp.NAttr] {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// TestDistributedTraceShape is the end-to-end tracing check: a distributed
// count over an in-process cluster, driven with a trace cursor, must
// produce ONE merged trace in which (a) every span hangs off the single
// cluster root, (b) each worker's node.count span is re-parented under the
// master dispatch span that carried it over the wire, and (c) the chunk
// spans' [lo, hi) edge intervals — master-local and worker-side together —
// tile the oriented store's global edge range exactly once. (c) is the
// strongest form of "the trace reflects the run": a missing chunk span
// means an untraced execution path, an overlapping one a double-count.
func TestDistributedTraceShape(t *testing.T) {
	base := filepath.Join(t.TempDir(), "pl")
	if _, err := GeneratePowerLaw(base, 600, 6000, 1.9, 11); err != nil {
		t.Fatal(err)
	}
	pool, err := StartLocalWorkers(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	tr := obs.NewTrace(0)
	ctx := obs.ContextWithCursor(context.Background(),
		obs.Cursor{T: tr, Span: obs.NoSpan, Worker: -1})
	// Static scheduling: the pre-split plan guarantees every node executes
	// its group, so worker spans are deterministically present. (Under
	// stealing the master's local driver can legitimately drain a tiny
	// chunk list before the replicas finish copying.)
	res, err := g.CountDistributed(ctx, pool.Addrs(), ClusterOptions{
		Workers: 2, MemEdges: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := g.Count(context.Background(), Options{Workers: 2, MemEdges: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != local.Triangles {
		t.Fatalf("distributed %d vs local %d triangles", res.Triangles, local.Triangles)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace dropped %d spans", d)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("trace is empty")
	}

	// (a) One root — the cluster span — and every span reaches it.
	roots := 0
	var rootID obs.SpanID
	for i, sp := range spans {
		if sp.Parent < 0 {
			roots++
			rootID = obs.SpanID(i)
			if sp.Name != obs.SpanCluster {
				t.Errorf("root span is %q, want %q", sp.Name, obs.SpanCluster)
			}
			if sp.Dur <= 0 {
				t.Error("cluster root span has no duration")
			}
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want exactly 1 (one merged trace)", roots)
	}
	for i, sp := range spans {
		id := obs.SpanID(i)
		for hops := 0; id != rootID; hops++ {
			if hops > len(spans) {
				t.Fatalf("span %d (%s) does not reach the root", i, sp.Name)
			}
			p := spans[id].Parent
			if p < 0 || int(p) >= len(spans) {
				t.Fatalf("span %d (%s) has dangling ancestry at %d", i, sp.Name, p)
			}
			id = p
		}
	}

	// (b) Worker node.count spans sit under master dispatch spans, and the
	// worker-side work fits inside the RPC that carried it (same process,
	// same clock).
	nodeCounts := 0
	for i, sp := range spans {
		if sp.Name != obs.SpanNodeCount {
			continue
		}
		nodeCounts++
		parent := spans[sp.Parent]
		if parent.Name != obs.SpanDispatch {
			t.Errorf("node.count span %d hangs under %q, want %q", i, parent.Name, obs.SpanDispatch)
		}
		if sp.Dur > parent.Dur {
			t.Errorf("node.count span %d (dur %d) exceeds its dispatch span (dur %d)",
				i, sp.Dur, parent.Dur)
		}
	}
	if nodeCounts == 0 {
		t.Fatal("no worker node.count spans were merged into the master trace")
	}

	// (c) Chunk spans tile the oriented store's directed-edge range
	// exactly once.
	meta, err := graph.ReadMeta(res.OrientedBase)
	if err != nil {
		t.Fatal(err)
	}
	type interval struct{ lo, hi int64 }
	var chunks []interval
	for i, sp := range spans {
		if sp.Name != obs.SpanChunk {
			continue
		}
		lo, okLo := spanAttr(sp, "lo")
		hi, okHi := spanAttr(sp, "hi")
		if !okLo || !okHi {
			t.Fatalf("chunk span %d is missing lo/hi attrs", i)
		}
		chunks = append(chunks, interval{lo, hi})
	}
	if len(chunks) == 0 {
		t.Fatal("trace has no chunk spans")
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].lo < chunks[j].lo })
	cursor := int64(0)
	for _, c := range chunks {
		if c.lo != cursor {
			t.Fatalf("chunk intervals do not tile: next chunk starts at %d, want %d (gap or overlap)", c.lo, cursor)
		}
		if c.hi <= c.lo {
			t.Fatalf("chunk interval [%d, %d) is empty or inverted", c.lo, c.hi)
		}
		cursor = c.hi
	}
	if cursor != int64(meta.NumEdges) {
		t.Fatalf("chunk intervals cover [0, %d), want the full edge range [0, %d)", cursor, meta.NumEdges)
	}
}

// TestLocalTraceShape: an untraced-by-default local count gains a full
// phase tree when a cursor rides the context — count at the root, with
// orient/plan/calc beneath it and every chunk span under calc's runner
// spans tiling the plan.
func TestLocalTraceShape(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 10, 12, 5); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	tr := obs.NewTrace(0)
	ctx := obs.ContextWithCursor(context.Background(),
		obs.Cursor{T: tr, Span: obs.NoSpan, Worker: -1})
	res, err := g.Count(ctx, Options{Workers: 2, MemEdges: 512})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, sp := range tr.Spans() {
		names[sp.Name]++
	}
	for _, want := range []string{obs.SpanCount, obs.SpanPlan, obs.SpanCalc, obs.SpanChunk} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
	meta, err := graph.ReadMeta(res.OrientedBase)
	if err != nil {
		t.Fatal(err)
	}
	var covered int64
	for _, sp := range tr.Spans() {
		if sp.Name != obs.SpanChunk {
			continue
		}
		lo, _ := spanAttr(sp, "lo")
		hi, _ := spanAttr(sp, "hi")
		covered += hi - lo
	}
	if covered != int64(meta.NumEdges) {
		t.Errorf("chunk spans cover %d edges, want %d", covered, meta.NumEdges)
	}
}

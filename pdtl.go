// Package pdtl is a Go implementation of PDTL — Parallel and Distributed
// Triangle Listing for massive graphs (Giechaskiel, Panagopoulos, Yoneki;
// ICPP 2015 / UCAM-CL-TR-866).
//
// PDTL counts or lists the exact set of triangles of an undirected simple
// graph using external memory: instead of fitting (sub)graphs into RAM, it
// orients the graph by a degree-based order, replicates the oriented graph
// to every machine, assigns every processor a contiguous range of "pivot"
// edges, and streams the graph from disk once per memory-sized window of
// that range (an extension of Hu et al.'s MGT algorithm). CPU, I/O, memory
// and network use are all provably bounded; per-core memory need only hold
// twice the maximum oriented degree.
//
// The primary entry point is the Graph handle (see handle.go):
//
//   - Open — a long-lived handle on one graph store, with the orientation,
//     degree index, and load-balance plan computed once and reused by every
//     run; all run methods take a context.Context for cancellation;
//   - g.Count / g.List / g.ForEach / g.Triangles / g.TriangleDegrees —
//     single-machine, multi-core runs;
//   - g.CountDistributed / ServeWorkerContext — the distributed protocol
//     with a master and TCP worker nodes;
//   - Generate* / Import* — dataset creation and ingest into the binary
//     store format (degree file + adjacency file + JSON metadata).
//
// For a resident, multi-tenant deployment, internal/service wraps a
// registry of these handles behind an HTTP/JSON API with admission
// control, result memoization (keyed by Options.Key), and per-graph
// single-flight; cmd/pdtl-serve is its daemon (DESIGN.md §8).
//
// The free functions (Count, List, ForEachTriangle, TriangleDegrees,
// CountDistributed) are deprecated one-shot wrappers — each opens a handle,
// runs once with context.Background(), and closes — kept so existing
// callers compile unchanged.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results.
package pdtl

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// Options parameterize a local (single-machine) run.
type Options struct {
	// Workers is the number of concurrent MGT runners (P). Non-positive
	// selects the number of CPUs.
	Workers int
	// MemEdges is the per-worker memory budget M, in adjacency entries
	// (4 bytes each). Non-positive selects a 16 MiB default. Correctness
	// never depends on M; it only trades passes for memory.
	MemEdges int
	// NaiveBalance disables the paper's in-degree load balancer and splits
	// edges equally instead (the "w/o LB" ablation of Figure 9).
	NaiveBalance bool
	// BufBytes is each runner's sequential read buffer; non-positive
	// selects 1 MiB.
	BufBytes int
	// ScanSource selects how adjacency data reaches the runners: "auto"
	// (or empty — one shared physical scan per round of passes when
	// Workers > 1, per-runner buffered scans otherwise), "buffered" (the
	// paper's configuration: every runner scans the file itself),
	// "shared" (one sequential reader broadcasts to all runners), or
	// "mem" (whole adjacency array in RAM; for graphs that fit). The
	// triangle output is identical for every choice.
	ScanSource string
	// Kernel selects the sorted-array intersection kernel: "merge" (or
	// empty — the paper's two-pointer merge), "gallop" (exponential +
	// binary search, for skewed list lengths), "adaptive" (picks per pair
	// by length ratio), "compressed" (block skipping on 256-entry segment
	// ranges; on a compressed store it intersects the encoded form
	// directly), or "cover" (range-cover pre-filter). The triangle output
	// is identical for every choice. Counting runs (Count,
	// CountDistributed, the service's /count) additionally take each
	// kernel's closure-free count-only path — with word-parallel bitmap
	// counting and unrolled varint decoding on compressed stores — which
	// changes no counts, only speed.
	Kernel string
	// Sched selects the chunk scheduler: "static" (or empty — the paper's
	// one-shot binding of one contiguous edge range per worker) or
	// "stealing" (the load-balance plan is cut into Chunks×Workers
	// weighted chunks drawn dynamically by the worker pool, so an early
	// finisher takes the straggler's remaining work instead of idling).
	// The triangle set is identical for both; "stealing" listings are
	// deterministic in chunk order rather than the static worker order.
	Sched string
	// Chunks is the chunks-per-worker factor K of the stealing scheduler;
	// non-positive selects the default (8). Ignored under "static".
	Chunks int
	// StoreFormat selects the on-disk encoding of the oriented store built
	// when the input is unoriented: "plain" (or empty — 4 bytes per
	// adjacency entry) or "compressed" (delta-varint/bitmap segments; see
	// DESIGN.md §10). An already-oriented input is used in the format it is
	// in. The triangle output is identical for either format.
	StoreFormat string
}

// Key returns the canonical identity of a run with these Options: every
// default is resolved (worker count, memory budget, balance strategy, scan
// source, kernel, scheduler, chunk count), so two Options values that would
// execute the same calculation map to the same key even when one spells a
// default explicitly and the other leaves it zero. Two runs with equal keys
// on the same store produce the identical triangle set, which makes Key the
// memoization and single-flight identity of the query service
// (internal/service); it doubles as a stable human-readable run label.
func (o Options) Key() (string, error) {
	copt, err := o.toCore()
	if err != nil {
		return "", err
	}
	workers := copt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	mem := copt.MemEdges
	if mem <= 0 {
		mem = core.DefaultMemEdges
	}
	kernel := copt.Kernel
	if kernel == "" {
		kernel = scan.KernelMerge
	}
	chunks := 0
	if copt.Sched == sched.Stealing {
		chunks = sched.ChunksFor(workers, copt.Chunks)
	}
	store := copt.Store
	if store == "" {
		store = graph.FormatPlain
	}
	return fmt.Sprintf("w%d m%d %s %s %s %s c%d %s",
		workers, mem, copt.Strategy, copt.Sched, copt.Scan.Resolve(workers), kernel, chunks, store), nil
}

func (o Options) toCore() (core.Options, error) {
	strategy := balance.InDegree
	if o.NaiveBalance {
		strategy = balance.Naive
	}
	scanKind, err := scan.ParseSource(o.ScanSource)
	if err != nil {
		return core.Options{}, err
	}
	kernelKind, err := scan.ParseKernel(o.Kernel)
	if err != nil {
		return core.Options{}, err
	}
	schedMode, err := sched.ParseMode(o.Sched)
	if err != nil {
		return core.Options{}, err
	}
	format, err := graph.ParseFormat(o.StoreFormat)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Workers:  o.Workers,
		MemEdges: o.MemEdges,
		Strategy: strategy,
		BufBytes: o.BufBytes,
		Scan:     scanKind,
		Kernel:   kernelKind,
		Sched:    schedMode,
		Chunks:   o.Chunks,
		Store:    format,
	}, nil
}

// WorkerStats describes one runner's share of a run.
type WorkerStats struct {
	// Worker is the runner index.
	Worker int
	// EdgeLo and EdgeHi delimit the runner's pivot-edge range. Under the
	// stealing scheduler they bound the (possibly non-contiguous) union of
	// the chunks the runner drew.
	EdgeLo, EdgeHi uint64
	// Chunks is how many chunks the runner executed: 1 under the static
	// scheduler, the dynamic draw count under stealing.
	Chunks int
	// Triangles found in the range.
	Triangles uint64
	// Passes is the number of memory windows the runner iterated.
	Passes int
	// CPUTime and IOTime split the runner's wall time into computation
	// and time spent inside disk reads.
	CPUTime, IOTime time.Duration
	// BytesRead is the runner's total disk read volume.
	BytesRead int64
}

// Result reports a local run.
type Result struct {
	// Triangles is the exact triangle count of the graph.
	Triangles uint64
	// OrientTime is the preprocessing time (zero if the input store was
	// already oriented).
	OrientTime time.Duration
	// PlanTime is the load-balance planning slice of CalcTime (~zero when
	// the handle's plan cache hits).
	PlanTime time.Duration
	// CalcTime is the calculation phase (load balancing + slowest runner).
	CalcTime time.Duration
	// TotalTime is OrientTime + CalcTime.
	TotalTime time.Duration
	// MaxOutDegree is d*max of the orientation.
	MaxOutDegree uint32
	// Workers holds per-runner statistics.
	Workers []WorkerStats
	// OrientedBase is the path of the oriented store used (reusable as the
	// input of later runs to skip orientation).
	OrientedBase string
	// ScanSource is the concrete scan source the run used ("buffered",
	// "shared", or "mem" — "auto" resolved).
	ScanSource string
	// Sched is the chunk scheduler the run used ("static" or "stealing").
	Sched string
	// SourceBytesRead is the disk volume the scan source read on its own
	// behalf: the shared broadcaster's single scan per round of passes,
	// or the in-memory preload. Zero for "buffered", whose scans are
	// charged to the per-worker BytesRead instead.
	SourceBytesRead int64
}

// Count counts the triangles of the graph stored at base (see WriteGraph
// and the Generate/Import helpers for creating stores). Unoriented stores
// are oriented first; the oriented store is left at Result.OrientedBase for
// reuse.
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).Count, which caches
// the orientation and load-balance plan across calls and accepts a
// context.Context for cancellation.
func Count(base string, opt Options) (*Result, error) {
	g, err := Open(base)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	return g.Count(context.Background(), opt)
}

// ForEachTriangle invokes fn once per triangle (u, v, w), ordered by the
// degree-based order u ≺ v ≺ w. fn is called concurrently from Workers
// goroutines; it must be safe for concurrent use (or set Workers to 1).
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).ForEach (or the
// (*Graph).Triangles iterator).
func ForEachTriangle(base string, opt Options, fn func(u, v, w uint32)) (*Result, error) {
	g, err := Open(base)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	return g.ForEach(context.Background(), opt, fn)
}

// List writes every triangle to outPath as little-endian uint32 triples
// (12 bytes per triangle) and returns the run's statistics. Use
// ReadTriangleFile to decode. The per-worker intermediates are anonymous
// temp files next to outPath, so concurrent List calls — even onto the
// same path — never clobber each other's parts.
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).List, which streams
// to any io.Writer.
func List(base, outPath string, opt Options) (*Result, error) {
	g, err := Open(base)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	return g.ListFile(context.Background(), outPath, opt)
}

// TriangleDegrees returns, for every vertex, the number of triangles it
// participates in — the per-vertex quantity behind local clustering
// coefficients and related metrics from the paper's introduction.
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).TriangleDegrees.
func TriangleDegrees(base string, opt Options) ([]uint64, *Result, error) {
	g, err := Open(base)
	if err != nil {
		return nil, nil, err
	}
	defer g.Close()
	return g.TriangleDegrees(context.Background(), opt)
}

// ReadTriangleFile decodes a List output file.
func ReadTriangleFile(path string) ([][3]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mgt.ReadTriangles(f)
}

func defaultWorkers() int { return runtime.NumCPU() }

// VerifySmallDegree checks the paper's small-degree assumption
// (d*max ≤ M/2) for an oriented store and budget; the returned error is
// advisory — counting stays exact without it, only the CPU bound weakens.
func VerifySmallDegree(orientedBase string, memEdges int) error {
	d, err := graph.Open(orientedBase)
	if err != nil {
		return err
	}
	return mgt.CheckSmallDegree(d, memEdges)
}

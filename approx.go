package pdtl

import (
	"pdtl/internal/approx"
	"pdtl/internal/dynamic"
	"pdtl/internal/graph"
)

// The approximate and dynamic entry points implement the extensions the
// paper's conclusion proposes as future work ("altering it for dynamic or
// approximate triangle counting", Section VI).

// EstimateDoulion estimates the handle's triangle count with Doulion edge
// sparsification: each edge survives with probability p and the count on
// the sparsified graph is scaled by 1/p³ (unbiased). The graph is loaded
// into memory once per handle and cached; use the exact Count for graphs
// larger than RAM.
func (g *Graph) EstimateDoulion(p float64, seed int64) (estimate float64, err error) {
	csr, err := g.csrCached()
	if err != nil {
		return 0, err
	}
	est, _, err := approx.Doulion(csr, p, seed)
	return est, err
}

// EstimateWedges estimates the handle's triangle count by sampling
// `samples` uniform wedges and scaling their closure rate by the total
// wedge count over three. The in-memory graph is cached on the handle, so
// repeated estimates (e.g. at growing sample sizes) pay the load once.
func (g *Graph) EstimateWedges(samples int, seed int64) (estimate float64, err error) {
	csr, err := g.csrCached()
	if err != nil {
		return 0, err
	}
	return approx.WedgeSample(csr, samples, seed)
}

// EstimateDoulion estimates the triangle count of the store at base with
// Doulion edge sparsification.
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).EstimateDoulion,
// which caches the in-memory graph across estimates.
func EstimateDoulion(base string, p float64, seed int64) (estimate float64, err error) {
	g, err := loadCSR(base)
	if err != nil {
		return 0, err
	}
	est, _, err := approx.Doulion(g, p, seed)
	return est, err
}

// EstimateWedges estimates the triangle count of the store at base by
// sampling `samples` uniform wedges and scaling their closure rate by the
// total wedge count over three.
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).EstimateWedges,
// which caches the in-memory graph across estimates.
func EstimateWedges(base string, samples int, seed int64) (estimate float64, err error) {
	g, err := loadCSR(base)
	if err != nil {
		return 0, err
	}
	return approx.WedgeSample(g, samples, seed)
}

func loadCSR(base string) (*graph.CSR, error) {
	d, err := graph.Open(base)
	if err != nil {
		return nil, err
	}
	return d.LoadCSR()
}

// DynamicCounter maintains an exact triangle count of a mutable undirected
// simple graph under edge insertions and deletions, at O(d(u)+d(v)) per
// update. It also tracks per-vertex triangle counts. Not safe for
// concurrent mutation.
type DynamicCounter struct {
	c *dynamic.Counter
}

// NewDynamicCounter creates an empty dynamic counter.
func NewDynamicCounter() *DynamicCounter {
	return &DynamicCounter{c: dynamic.New()}
}

// LoadDynamicCounter bulk-loads the graph store at base into a dynamic
// counter.
func LoadDynamicCounter(base string) (*DynamicCounter, error) {
	g, err := loadCSR(base)
	if err != nil {
		return nil, err
	}
	return &DynamicCounter{c: dynamic.FromCSR(g)}, nil
}

// Insert adds edge (u, v) and reports how many triangles it closed.
func (d *DynamicCounter) Insert(u, v uint32) (closed uint64, err error) {
	return d.c.Insert(u, v)
}

// Delete removes edge (u, v) and reports how many triangles it destroyed.
func (d *DynamicCounter) Delete(u, v uint32) (opened uint64, err error) {
	return d.c.Delete(u, v)
}

// Triangles reports the current exact count.
func (d *DynamicCounter) Triangles() uint64 { return d.c.Triangles() }

// Edges reports the current edge count.
func (d *DynamicCounter) Edges() uint64 { return d.c.Edges() }

// VertexTriangles reports the triangles incident to v.
func (d *DynamicCounter) VertexTriangles(v uint32) uint64 { return d.c.VertexTriangles(v) }

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V). Each benchmark runs one harness experiment end to end
// against the laptop-scale stand-in datasets (DESIGN.md §3 and §4); run
// with -benchtime=1x for a single regeneration pass, or use
// `go run ./cmd/pdtl-bench -all` to see the rendered tables.
//
// External test package: the harness now reaches pdtl through
// internal/service (the query-service load driver), so an in-package test
// file importing it would be an import cycle.
package pdtl_test

import (
	"io"
	"sync"
	"testing"

	"pdtl/internal/harness"
)

var (
	benchOnce sync.Once
	benchH    *harness.Harness
	benchErr  error
)

// benchHarness shares one dataset cache across all benchmarks in the
// process so graph generation is paid once, not per benchmark.
func benchHarness(b *testing.B) *harness.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchH, benchErr = harness.New("")
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchH
}

func runExperiment(b *testing.B, id string) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1DatasetInventory regenerates Table I: the dataset
// inventory with exact triangle counts.
func BenchmarkTable1DatasetInventory(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Preprocessing regenerates Table II: PDTL orientation vs
// PowerGraph setup vs OPT database creation.
func BenchmarkTable2Preprocessing(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig2OrientationScaling regenerates Figure 2: multicore
// orientation scaling.
func BenchmarkFig2OrientationScaling(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3LocalMulticoreTotal regenerates Figure 3: local multicore
// total time under constant total memory.
func BenchmarkFig3LocalMulticoreTotal(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4DistributedTotal regenerates Figure 4: distributed total
// time across node counts.
func BenchmarkFig4DistributedTotal(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkTable3CopyTimes regenerates Table III: total and average copy
// time per node count under a rate-limited uplink.
func BenchmarkTable3CopyTimes(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig5MemoryVsCalc regenerates Figure 5: memory budget vs
// calculation time.
func BenchmarkFig5MemoryVsCalc(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6CPUIOBreakdown regenerates Figure 6: total CPU vs I/O.
func BenchmarkFig6CPUIOBreakdown(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7TwitterPerNode regenerates Figure 7: per-node CPU/I-O on
// the balanced Twitter stand-in.
func BenchmarkFig7TwitterPerNode(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8YahooPerNode regenerates Figure 8: per-node CPU/I-O on the
// skewed Yahoo stand-in.
func BenchmarkFig8YahooPerNode(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9LoadBalancing regenerates Figure 9: the load-balancing
// ablation.
func BenchmarkFig9LoadBalancing(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable4PerNodeBreakdown regenerates Table IV: per-node CPU/I-O
// across node counts.
func BenchmarkTable4PerNodeBreakdown(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig10SingleNode regenerates Figure 10: single-node scaling.
func BenchmarkFig10SingleNode(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11SpeedupOverMGT regenerates Figure 11: distributed speedup
// over single-core MGT.
func BenchmarkFig11SpeedupOverMGT(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable5PDTLvsOPT regenerates Table V: PDTL vs OPT setup and
// calculation.
func BenchmarkTable5PDTLvsOPT(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFig12PDTLvsOPTCores regenerates Figure 12: PDTL vs OPT across
// core counts on RMAT.
func BenchmarkFig12PDTLvsOPTCores(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13PDTLvsPowerGraph regenerates Figure 13: PDTL vs PowerGraph
// breakdowns.
func BenchmarkFig13PDTLvsPowerGraph(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable6PowerGraphOOM regenerates Table VI: PowerGraph OOM under
// memory budgets while PDTL runs with tiny per-core memory.
func BenchmarkTable6PowerGraphOOM(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkSec5E4PATRIC regenerates the Section V-E4 PATRIC comparison.
func BenchmarkSec5E4PATRIC(b *testing.B) { runExperiment(b, "patric") }

// BenchmarkSec5E4CTTP regenerates the Section V-E4 CTTP comparison.
func BenchmarkSec5E4CTTP(b *testing.B) { runExperiment(b, "cttp") }

// BenchmarkTable7CPUIOGrid regenerates Appendix Table VII.
func BenchmarkTable7CPUIOGrid(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8EC2Runtimes regenerates Appendix Table VIII.
func BenchmarkTable8EC2Runtimes(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkTable9OrientationGrid regenerates Appendix Table IX.
func BenchmarkTable9OrientationGrid(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkTable10LoadBalanceGrid regenerates Appendix Table X.
func BenchmarkTable10LoadBalanceGrid(b *testing.B) { runExperiment(b, "table10") }

// BenchmarkTable11MulticoreGrid regenerates Appendix Table XI.
func BenchmarkTable11MulticoreGrid(b *testing.B) { runExperiment(b, "table11") }

// BenchmarkTable12Cluster8GB regenerates Appendix Table XII (tight
// memory).
func BenchmarkTable12Cluster8GB(b *testing.B) { runExperiment(b, "table12") }

// BenchmarkTable13Cluster32GB regenerates Appendix Table XIII (ample
// memory).
func BenchmarkTable13Cluster32GB(b *testing.B) { runExperiment(b, "table13") }

// BenchmarkTable14ClusterVsPowerGraph regenerates Appendix Table XIV.
func BenchmarkTable14ClusterVsPowerGraph(b *testing.B) { runExperiment(b, "table14") }

// BenchmarkAblationLoadBalancers compares the three range-assignment
// strategies (naive / in-degree / exact cost) — the Section VI future-work
// ablation.
func BenchmarkAblationLoadBalancers(b *testing.B) { runExperiment(b, "lb-ablation") }

// BenchmarkAblationSmallDegree demonstrates the footnote-1 removal of the
// small-degree assumption (exactness at M ≪ d*max).
func BenchmarkAblationSmallDegree(b *testing.B) { runExperiment(b, "smalldeg") }

// BenchmarkExtApproximate evaluates the approximate-counting extension.
func BenchmarkExtApproximate(b *testing.B) { runExperiment(b, "approx") }

// BenchmarkExtDynamic evaluates the dynamic-counting extension.
func BenchmarkExtDynamic(b *testing.B) { runExperiment(b, "dynamic") }

package pdtl

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
)

func TestHandleCountAndReuse(t *testing.T) {
	base := filepath.Join(t.TempDir(), "k25")
	if _, err := GenerateComplete(base, 25); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Info().NumVertices != 25 {
		t.Fatalf("info = %+v", g.Info())
	}
	ctx := context.Background()
	res1, err := g.Count(ctx, Options{Workers: 3, MemEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Triangles != gen.CompleteTriangles(25) {
		t.Fatalf("triangles = %d", res1.Triangles)
	}
	if res1.OrientTime <= 0 {
		t.Error("first run should report the orientation it performed")
	}
	res2, err := g.Count(ctx, Options{Workers: 3, MemEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Triangles != res1.Triangles {
		t.Errorf("rerun triangles = %d, want %d", res2.Triangles, res1.Triangles)
	}
	if res2.OrientTime != 0 {
		t.Error("second run must reuse the cached orientation (OrientTime 0)")
	}
}

// TestHandleNoRereadAfterFirstRun is the I/O-accounting check of the
// handle cache: after the first Count, every store file except the oriented
// adjacency data is deleted. A second Count (and a different-worker-count
// third) can only succeed if the handle re-reads nothing — no orientation,
// no metadata, no degree file, no in-degree file.
func TestHandleNoRereadAfterFirstRun(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 9, 8, 7); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()
	res1, err := g.Count(ctx, Options{Workers: 2, MemEdges: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	oriented := res1.OrientedBase
	for _, p := range []string{
		graph.MetaPath(base), graph.DegPath(base), graph.AdjPath(base),
		graph.MetaPath(oriented), graph.DegPath(oriented), orient.InDegPath(oriented),
	} {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	res2, err := g.Count(ctx, Options{Workers: 2, MemEdges: 1 << 12})
	if err != nil {
		t.Fatalf("rerun after deleting metadata/degree/in-degree files: %v", err)
	}
	if res2.Triangles != res1.Triangles || res2.OrientTime != 0 {
		t.Errorf("rerun = %d triangles orient %v, want %d and 0", res2.Triangles, res2.OrientTime, res1.Triangles)
	}
	// A different worker count needs a fresh plan — still from cached
	// arrays only.
	res3, err := g.Count(ctx, Options{Workers: 4, MemEdges: 1 << 12})
	if err != nil {
		t.Fatalf("new worker count after deleting files: %v", err)
	}
	if res3.Triangles != res1.Triangles {
		t.Errorf("4-worker rerun = %d, want %d", res3.Triangles, res1.Triangles)
	}
}

// TestHandleCancelMidPassAllSources cancels from inside the triangle
// callback over every scan source and expects the bare ctx.Err().
func TestHandleCancelMidPassAllSources(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 10, 16, 3); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, source := range []string{"buffered", "shared", "mem"} {
		t.Run(source, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var fired atomic.Bool
			// MemEdges 128 gives every runner dozens of windows, so the
			// cancellation lands mid-run with most of the range left.
			_, err := g.ForEach(ctx, Options{Workers: 2, MemEdges: 128, ScanSource: source},
				func(u, v, w uint32) {
					if fired.CompareAndSwap(false, true) {
						cancel()
					}
				})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !fired.Load() {
				t.Fatal("callback never fired")
			}
		})
	}
}

func TestHandleTrianglesIterator(t *testing.T) {
	g4, err := gen.ErdosRenyi(200, 1500, 11)
	if err != nil {
		t.Fatal(err)
	}
	base := tempStore(t, g4, "er")
	want := baseline.Forward(g4)
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	seq, errf := g.Triangles(context.Background(), Options{Workers: 3, MemEdges: 64})
	var n uint64
	for range seq {
		n++
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Errorf("iterated %d triangles, want %d", n, want)
	}
}

// TestHandleTrianglesEarlyBreakNoLeak breaks out of the iterator early,
// repeatedly, and checks the goroutine count settles back to its baseline —
// the teardown contract of g.Triangles.
func TestHandleTrianglesEarlyBreakNoLeak(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 10, 16, 5); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Warm the handle (orientation) so the loop below measures only runs.
	if _, err := g.Count(context.Background(), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		seq, errf := g.Triangles(context.Background(), Options{Workers: 4, MemEdges: 256})
		n := 0
		for range seq {
			n++
			if n >= 3 {
				break
			}
		}
		if err := errf(); err != nil {
			t.Fatalf("early break reported error: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHandleListWriter(t *testing.T) {
	g6, err := gen.TriGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := tempStore(t, g6, "tg")
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var buf bytes.Buffer
	res, err := g.List(context.Background(), &buf, Options{Workers: 2, MemEdges: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := gen.TriGridTriangles(5, 5)
	if res.Triangles != want || uint64(buf.Len()) != want*12 {
		t.Errorf("triangles %d bytes %d, want %d and %d", res.Triangles, buf.Len(), want, want*12)
	}
}

// TestListConcurrentSamePath runs two legacy List calls on the same output
// path at once. With the old predictable %s.partN temp names the part files
// clobbered each other; with os.CreateTemp parts they cannot, and both runs
// produce the complete, exact listing.
func TestListConcurrentSamePath(t *testing.T) {
	g6, err := gen.TriGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := tempStore(t, g6, "tg")
	// Pre-orient so the two runs do not race on writing the oriented store.
	if _, err := Count(base, Options{Workers: 1, MemEdges: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	oriented := base + ".oriented"
	out := filepath.Join(t.TempDir(), "tris.bin")
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			_, errs[slot] = List(oriented, out, Options{Workers: 2, MemEdges: 32})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	tris, err := ReadTriangleFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := gen.TriGridTriangles(8, 8)
	if uint64(len(tris)) != want {
		t.Fatalf("listed %d triangles, want %d", len(tris), want)
	}
	seen := map[[3]uint32]bool{}
	for _, tri := range tris {
		if seen[tri] {
			t.Fatalf("duplicate %v", tri)
		}
		seen[tri] = true
	}
}

// TestHandleCompressedStoreRuns: one handle serves both store formats —
// local runs on each produce the same count, the compressed orientation is
// actually compressed on disk, and a distributed run replicates the
// compressed store (.cadj/.cidx travel the wire) and agrees.
func TestHandleCompressedStoreRuns(t *testing.T) {
	base := filepath.Join(t.TempDir(), "pl")
	if _, err := GeneratePowerLaw(base, 800, 8000, 1.9, 7); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()

	plain, err := g.Count(ctx, Options{Workers: 2, MemEdges: 512})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := g.Count(ctx, Options{Workers: 2, MemEdges: 512, StoreFormat: "compressed", Kernel: "compressed"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Triangles != comp.Triangles {
		t.Fatalf("plain store counted %d, compressed %d", plain.Triangles, comp.Triangles)
	}
	if plain.OrientedBase == comp.OrientedBase {
		t.Fatalf("both formats oriented to %q", plain.OrientedBase)
	}
	meta, err := graph.ReadMeta(comp.OrientedBase)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != graph.FormatCompressed {
		t.Fatalf("compressed run oriented to format %q", meta.Format)
	}

	pool, err := StartLocalWorkers(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dres, err := g.CountDistributed(ctx, pool.Addrs(), ClusterOptions{
		Workers: 2, MemEdges: 512, StoreFormat: "compressed", Kernel: "compressed",
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Triangles != plain.Triangles {
		t.Fatalf("distributed compressed run counted %d, want %d", dres.Triangles, plain.Triangles)
	}
	if dres.OrientedBase != comp.OrientedBase {
		t.Fatalf("distributed run oriented to %q, want the cached %q", dres.OrientedBase, comp.OrientedBase)
	}
}

func TestHandleDistributedCancel(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 13, 16, 9); err != nil {
		t.Fatal(err)
	}
	pool, err := StartLocalWorkers(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Pre-cancelled context: nothing starts.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.CountDistributed(cancelled, pool.Addrs(), ClusterOptions{Workers: 2, MemEdges: 256}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}

	// A 1 ms deadline expires during orientation/copy/calculation of a
	// scale-13 graph; the protocol must surface the deadline error.
	ctx, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, err := g.CountDistributed(ctx, pool.Addrs(), ClusterOptions{Workers: 2, MemEdges: 256}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v, want context.DeadlineExceeded", err)
	}

	// The same handle still works with a live context, reusing whatever
	// preprocessing survived the aborted attempts.
	res, err := g.CountDistributed(context.Background(), pool.Addrs(), ClusterOptions{Workers: 2, MemEdges: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	local, err := g.Count(context.Background(), Options{Workers: 2, MemEdges: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != local.Triangles {
		t.Errorf("distributed %d vs local %d", res.Triangles, local.Triangles)
	}
}

func TestServeWorkerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w, err := ServeWorkerContext(ctx, "127.0.0.1:0", "ctxworker", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.Done():
		t.Fatal("worker stopped before cancellation")
	default:
	}
	cancel()
	select {
	case <-w.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop on context cancellation")
	}
	// Close after context-stop is a no-op, not a panic.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedHandle(t *testing.T) {
	base := filepath.Join(t.TempDir(), "k10")
	if _, err := GenerateComplete(base, 10); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Count(context.Background(), Options{Workers: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, _, err := g.TriangleDegrees(context.Background(), Options{Workers: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := g.EstimateDoulion(0.5, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestHandleEstimators(t *testing.T) {
	base := filepath.Join(t.TempDir(), "rmat")
	if _, err := GenerateRMAT(base, 10, 16, 5); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	res, err := g.Count(context.Background(), Options{Workers: 2, MemEdges: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(res.Triangles)
	doulion, err := g.EstimateDoulion(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if doulion < exact/2 || doulion > exact*2 {
		t.Errorf("Doulion estimate %.0f far from exact %.0f", doulion, exact)
	}
	wedges, err := g.EstimateWedges(50_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wedges < exact*0.8 || wedges > exact*1.2 {
		t.Errorf("wedge estimate %.0f far from exact %.0f", wedges, exact)
	}
}

// Live (mutable) graphs: an LSM-style delta overlay on the immutable
// store (internal/live, DESIGN.md §11). A LiveGraph accepts batched edge
// insertions and deletions, serves exact counts over the merged
// base ⊕ delta view through the unchanged engine, keeps a bounded-memory
// streaming triangle estimate per batch, and compacts the delta into a
// fresh on-disk snapshot in the background.

package pdtl

import (
	"context"
	"time"

	"pdtl/internal/graph"
	"pdtl/internal/live"
	"pdtl/internal/scan"
)

// LiveOptions parameterize a live graph opened on a handle.
type LiveOptions struct {
	// Dir is the directory for compacted snapshots; empty means the
	// store's own directory.
	Dir string
	// CompactEdges triggers a background compaction when the pending delta
	// reaches this many edge mutations; non-positive disables the
	// automatic trigger (Compact still works).
	CompactEdges int
	// CompactAge triggers a compaction when the oldest pending mutation
	// exceeds this age (checked at mutation time); zero disables it.
	CompactAge time.Duration
	// StoreFormat is the on-disk format of compacted snapshots ("plain" or
	// "compressed"; empty means plain).
	StoreFormat string
	// MemEdges bounds the compaction build's sort memory; non-positive
	// selects the engine default.
	MemEdges int
	// Workers is the compaction parallelism; non-positive selects 1.
	Workers int
	// Reservoir is the streaming estimator's edge capacity; non-positive
	// selects the default (131072 edges).
	Reservoir int
	// Seed seeds the estimator deterministically.
	Seed int64
}

// LiveUpdate is one edge mutation: insert (U, V), or delete it when Del.
type LiveUpdate struct {
	U, V uint32
	Del  bool
}

// LiveStats mirrors the live layer's state snapshot.
type LiveStats = live.Stats

// LiveGraph is a mutable graph: the handle's oriented store plus an
// in-memory delta layer. Safe for concurrent use; queries run against
// immutable view snapshots and never block behind mutations or
// compaction.
type LiveGraph struct {
	h  *Graph
	lg *live.Graph
}

// Live wraps the handle's graph in a mutable delta overlay. The store is
// oriented first if it was not already (the usual one-time
// preprocessing); the store files themselves are never modified —
// mutations live in memory until a compaction writes a fresh snapshot
// next to them.
func (g *Graph) Live(ctx context.Context, opt LiveOptions) (*LiveGraph, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	format, err := graph.ParseFormat(opt.StoreFormat)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	d, orientedBase, _, err := g.ensureOriented(ctx, workers, format)
	if err != nil {
		return nil, err
	}
	lg, err := live.FromDisk(d, orientedBase, live.Config{
		Dir:          opt.Dir,
		Name:         g.info.Name,
		CompactEdges: opt.CompactEdges,
		CompactAge:   opt.CompactAge,
		StoreFormat:  format,
		MemEdges:     opt.MemEdges,
		Workers:      workers,
		Reservoir:    opt.Reservoir,
		Seed:         opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &LiveGraph{h: g, lg: lg}, nil
}

// OpenLive opens the store at base and wraps it in a live overlay in one
// step. Closing the LiveGraph closes the underlying handle too.
func OpenLive(ctx context.Context, base string, opt LiveOptions) (*LiveGraph, error) {
	g, err := Open(base)
	if err != nil {
		return nil, err
	}
	lg, err := g.Live(ctx, opt)
	if err != nil {
		g.Close()
		return nil, err
	}
	return lg, nil
}

// Apply applies a batch of edge mutations atomically: all of them, in
// order, or none (the error names the first invalid update). Inserting a
// present edge, deleting an absent one, and self-loops are invalid;
// inserts may create vertices beyond the current graph.
func (lg *LiveGraph) Apply(updates []LiveUpdate) error {
	batch := make([]live.Update, len(updates))
	for i, u := range updates {
		batch[i] = live.Update{U: graph.Vertex(u.U), V: graph.Vertex(u.V), Del: u.Del}
	}
	return lg.lg.ApplyBatch(batch)
}

// Count runs the exact engine over the current live view. The view is
// captured at call time: mutations landing mid-run do not perturb the
// result. The scan source is always the in-memory overlay; other options
// (workers, memory, kernel, scheduler, balance) apply as usual.
func (lg *LiveGraph) Count(ctx context.Context, opt Options) (*Result, error) {
	copt, err := opt.toCore()
	if err != nil {
		return nil, err
	}
	if copt.Workers <= 0 {
		copt.Workers = defaultWorkers()
	}
	lg.h.runs.Add(1)
	cres, err := lg.lg.Count(ctx, copt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Triangles:    cres.Triangles,
		CalcTime:     cres.CalcTime,
		TotalTime:    cres.TotalTime,
		OrientedBase: cres.OrientedBase,
		ScanSource:   string(scan.SourceMem),
		Sched:        copt.Sched.String(),
	}
	for _, w := range cres.Workers {
		res.Workers = append(res.Workers, WorkerStats{
			Worker:    w.Worker,
			EdgeLo:    w.Range.Lo,
			EdgeHi:    w.Range.Hi,
			Chunks:    w.Chunks,
			Triangles: w.Stats.Triangles,
			Passes:    w.Stats.Passes,
			CPUTime:   w.Stats.CPUTime(),
			IOTime:    w.Stats.IO.IOTime(),
			BytesRead: w.Stats.IO.BytesRead,
		})
	}
	return res, nil
}

// Estimate returns the streaming triangle estimate and whether it is
// currently exact (the reservoir holds every live edge).
func (lg *LiveGraph) Estimate() (estimate float64, exact bool) { return lg.lg.Estimate() }

// Compact synchronously folds all pending delta into a fresh on-disk
// snapshot (waiting first for any background compaction in flight). A
// no-op when the delta is empty.
func (lg *LiveGraph) Compact(ctx context.Context) error { return lg.lg.CompactNow(ctx) }

// Stats snapshots the live layer's state (delta sizes, compaction
// generation, estimator).
func (lg *LiveGraph) Stats() LiveStats { return lg.lg.Stats() }

// Handle returns the underlying immutable-store handle.
func (lg *LiveGraph) Handle() *Graph { return lg.h }

// Close waits for any in-flight compaction and releases the live layer
// and its handle. The latest snapshot's files stay on disk.
func (lg *LiveGraph) Close() error {
	err := lg.lg.Close()
	if cerr := lg.h.Close(); err == nil {
		err = cerr
	}
	return err
}

package pdtl

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
)

// TestGenerateStreamReplayOnLiveGraph is the churn crosscheck at the public
// API level: generate a seeded trace, replay every batch through a live
// graph, and require the live count to equal a from-scratch count over the
// final store the generator wrote.
func TestGenerateStreamReplayOnLiveGraph(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "init")
	finalBase := filepath.Join(dir, "final")
	var trace bytes.Buffer
	p := StreamParams{N: 150, M: 900, Batches: 8, BatchSize: 40, DeleteFrac: 0.35, Seed: 11}
	if _, err := GenerateStream(base, &trace, finalBase, p); err != nil {
		t.Fatal(err)
	}
	batches, err := ReadStreamTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != p.Batches {
		t.Fatalf("trace has %d batches, want %d", len(batches), p.Batches)
	}

	lg, err := OpenLive(context.Background(), base, LiveOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for i, b := range batches {
		updates := make([]LiveUpdate, 0, len(b.Insert)+len(b.Delete))
		for _, ins := range b.Insert {
			updates = append(updates, LiveUpdate{U: ins[0], V: ins[1]})
		}
		for _, d := range b.Delete {
			updates = append(updates, LiveUpdate{U: d[0], V: d[1], Del: true})
		}
		if err := lg.Apply(updates); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	liveRes, err := lg.Count(context.Background(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fg, err := Open(finalBase)
	if err != nil {
		t.Fatal(err)
	}
	defer fg.Close()
	wantRes, err := fg.Count(context.Background(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.Triangles != wantRes.Triangles {
		t.Fatalf("live count after replay = %d, final store count = %d",
			liveRes.Triangles, wantRes.Triangles)
	}
	if est, _ := lg.Estimate(); est != float64(wantRes.Triangles) {
		t.Fatalf("streaming estimate = %v, want exact %d", est, wantRes.Triangles)
	}
	// Compacting the replayed delta preserves the count.
	if err := lg.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	liveRes, err = lg.Count(context.Background(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.Triangles != wantRes.Triangles {
		t.Fatalf("post-compact count = %d, want %d", liveRes.Triangles, wantRes.Triangles)
	}
}

package pdtl

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/cluster"
	"pdtl/internal/core"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// ClusterOptions parameterize a distributed run.
type ClusterOptions struct {
	// Workers is P, the processor count per node (master included).
	Workers int
	// MemEdges is M per processor, in adjacency entries.
	MemEdges int
	// NaiveBalance disables the in-degree load balancer.
	NaiveBalance bool
	// UplinkBytesPerSec rate-limits the master's aggregate outgoing graph
	// copies (0 = unlimited); it models a shared NIC.
	UplinkBytesPerSec int64
	// ScanSource selects every node's scan source ("auto", "buffered",
	// "shared", "mem"); see Options.ScanSource.
	ScanSource string
	// Kernel selects every node's intersection kernel ("merge", "gallop",
	// "adaptive"); see Options.Kernel.
	Kernel string
	// Sched selects the chunk scheduler: "static" (or empty — the paper's
	// up-front pre-split of the global plan across nodes) or "stealing"
	// (the master dispenses weighted chunk batches to nodes on demand, so
	// a node that finishes early pulls the work a slow node would have
	// stalled on).
	Sched string
	// Chunks is the chunks-per-worker factor K of the stealing scheduler;
	// non-positive selects the default (8). Ignored under "static".
	Chunks int
	// List requests triangle listing into ListPath (12-byte triples).
	List     bool
	ListPath string
}

// Key returns the canonical identity of a distributed run with these
// options against the given worker set — the distributed counterpart of
// Options.Key, and the memoization/single-flight identity the query service
// uses for cluster-backed counts. Listing runs (List=true) are not
// memoizable (their product is a file, not a count), so their key embeds
// the output path to keep them distinct.
func (o ClusterOptions) Key(workerAddrs []string) (string, error) {
	scanKind, err := scan.ParseSource(o.ScanSource)
	if err != nil {
		return "", err
	}
	kernelKind, err := scan.ParseKernel(o.Kernel)
	if err != nil {
		return "", err
	}
	mode, err := sched.ParseMode(o.Sched)
	if err != nil {
		return "", err
	}
	strategy := balance.InDegree
	if o.NaiveBalance {
		strategy = balance.Naive
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 1 // the cluster engine's default (Config.withDefaults)
	}
	mem := o.MemEdges
	if mem <= 0 {
		mem = core.DefaultMemEdges
	}
	chunks := 0
	if mode == sched.Stealing {
		chunks = sched.ChunksFor(workers, o.Chunks)
	}
	key := fmt.Sprintf("nodes=%s w%d m%d %s %s %s %s c%d",
		strings.Join(workerAddrs, ","), workers, mem, strategy, mode,
		scanKind.Resolve(workers), kernelKind, chunks)
	if o.List {
		key += " list=" + o.ListPath
	}
	return key, nil
}

// NodeStats reports one node's share of a distributed run; node 0 is the
// master itself.
type NodeStats struct {
	Name      string
	Addr      string
	CopyTime  time.Duration
	CopyBytes int64
	CalcTime  time.Duration
	Triangles uint64
	// CPUTime and IOTime aggregate the node's runners.
	CPUTime, IOTime time.Duration
	// SourceBytesRead is the disk volume the node's scan source read on
	// its own behalf (shared broadcast scans, in-memory preload).
	SourceBytesRead int64
	// Workers holds the node's per-runner breakdown.
	Workers []WorkerStats
}

// ClusterResult reports a distributed run.
type ClusterResult struct {
	Triangles  uint64
	OrientTime time.Duration
	// CalcTime is the slowest node's calculation time (the "struggler"
	// rule of the paper's Section V-E3).
	CalcTime  time.Duration
	TotalTime time.Duration
	// NetworkBytes is the master's total payload exchanged with clients
	// (Theorem IV.3's Θ(N·(P+|E|)+T) traffic).
	NetworkBytes int64
	Nodes        []NodeStats
	OrientedBase string
}

// CountDistributed runs the full PDTL protocol with this handle's graph:
// the master (this process) replicates the handle's cached oriented store
// to every worker address, assigns contiguous edge ranges, and sums the
// results. The orientation is performed at most once per handle — repeated
// distributed (or mixed local/distributed) runs reuse it. With an empty
// address list the protocol degrades to a local run through the same path.
//
// Cancelling ctx aborts the whole protocol: local runners stop within one
// memory window, in-flight graph copies stop at the next chunk, and remote
// nodes are told (via a Cancel RPC) to abandon their calculation;
// CountDistributed then returns ctx.Err().
func (g *Graph) CountDistributed(ctx context.Context, workerAddrs []string, opt ClusterOptions) (*ClusterResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	strategy := balance.InDegree
	if opt.NaiveBalance {
		strategy = balance.Naive
	}
	scanKind, err := scan.ParseSource(opt.ScanSource)
	if err != nil {
		return nil, err
	}
	kernelKind, err := scan.ParseKernel(opt.Kernel)
	if err != nil {
		return nil, err
	}
	schedMode, err := sched.ParseMode(opt.Sched)
	if err != nil {
		return nil, err
	}
	g.runs.Add(1)
	start := time.Now()
	orientWorkers := opt.Workers
	if orientWorkers <= 0 {
		orientWorkers = 1
	}
	d, orientedBase, ores, err := g.ensureOriented(ctx, orientWorkers)
	if err != nil {
		return nil, err
	}
	cres, err := cluster.Run(ctx, cluster.Config{
		GraphBase:         orientedBase,
		Disk:              d,
		GraphName:         filepath.Base(g.base),
		Workers:           opt.Workers,
		MemEdges:          opt.MemEdges,
		Strategy:          strategy,
		UplinkBytesPerSec: opt.UplinkBytesPerSec,
		Scan:              scanKind,
		Kernel:            kernelKind,
		Sched:             schedMode,
		Chunks:            opt.Chunks,
		List:              opt.List,
		ListPath:          opt.ListPath,
	}, workerAddrs)
	if err != nil {
		return nil, err
	}
	res := clusterResultFrom(cres)
	if ores != nil {
		res.OrientTime = ores.Duration
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

func clusterResultFrom(cres *cluster.Result) *ClusterResult {
	res := &ClusterResult{
		Triangles:    cres.Triangles,
		CalcTime:     cres.CalcTime,
		TotalTime:    cres.TotalTime,
		NetworkBytes: cres.NetworkBytes,
		OrientedBase: cres.OrientedBase,
	}
	if cres.Orientation != nil {
		res.OrientTime = cres.Orientation.Duration
	}
	for _, n := range cres.Nodes {
		ns := NodeStats{
			Name:            n.Name,
			Addr:            n.Addr,
			CopyTime:        n.CopyTime,
			CopyBytes:       n.CopyBytes,
			CalcTime:        n.CalcTime,
			Triangles:       n.Triangles,
			SourceBytesRead: n.SourceIO.BytesRead,
		}
		for _, w := range n.Workers {
			ns.CPUTime += w.Stats.CPUTime()
			ns.IOTime += w.Stats.IO.IOTime()
			ns.Workers = append(ns.Workers, WorkerStats{
				Worker:    w.Worker,
				EdgeLo:    w.Range.Lo,
				EdgeHi:    w.Range.Hi,
				Chunks:    w.Chunks,
				Triangles: w.Stats.Triangles,
				Passes:    w.Stats.Passes,
				CPUTime:   w.Stats.CPUTime(),
				IOTime:    w.Stats.IO.IOTime(),
				BytesRead: w.Stats.IO.BytesRead,
			})
		}
		res.Nodes = append(res.Nodes, ns)
	}
	return res
}

// CountDistributed runs the full PDTL protocol on the store at base.
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).CountDistributed,
// which reuses the cached orientation across runs and accepts a
// context.Context for cancellation.
func CountDistributed(base string, workerAddrs []string, opt ClusterOptions) (*ClusterResult, error) {
	g, err := Open(base)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	return g.CountDistributed(context.Background(), workerAddrs, opt)
}

// WorkerServer is a running PDTL worker node.
type WorkerServer struct {
	srv  *cluster.Server
	done chan struct{}
	once sync.Once
}

// ServeWorker starts a worker node that stores graph replicas under workDir
// and serves the PDTL protocol on addr (use ":0" to pick a free port). The
// returned server runs until Close.
func ServeWorker(addr, name, workDir string) (*WorkerServer, error) {
	node := cluster.NewNode(name, workDir, 0)
	srv, err := cluster.Listen(node, addr)
	if err != nil {
		return nil, err
	}
	return &WorkerServer{srv: srv, done: make(chan struct{})}, nil
}

// ServeWorkerContext is ServeWorker bound to a context: when ctx is
// cancelled the server stops accepting, aborts its in-flight calculations,
// and closes — the lifecycle hook for daemons wiring SIGINT/SIGTERM to a
// context (as cmd/pdtl-worker does).
func ServeWorkerContext(ctx context.Context, addr, name, workDir string) (*WorkerServer, error) {
	w, err := ServeWorker(addr, name, workDir)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				w.Close()
			case <-w.done:
			}
		}()
	}
	return w, nil
}

// Addr reports the worker's listen address.
func (w *WorkerServer) Addr() string { return w.srv.Addr() }

// Done is closed when the worker has stopped (by Close or by its context).
func (w *WorkerServer) Done() <-chan struct{} { return w.done }

// Close stops the worker, cancelling any in-flight calculations.
func (w *WorkerServer) Close() error {
	var err error
	w.once.Do(func() {
		err = w.srv.Close()
		close(w.done)
	})
	return err
}

// WorkerPool is a set of local in-process worker nodes, convenient for
// examples and tests.
type WorkerPool struct {
	lc *cluster.LocalCluster
}

// StartLocalWorkers starts n in-process worker nodes on loopback TCP, each
// with its own replica directory under dir.
func StartLocalWorkers(n int, dir string) (*WorkerPool, error) {
	lc, err := cluster.StartLocal(n, dir)
	if err != nil {
		return nil, err
	}
	return &WorkerPool{lc: lc}, nil
}

// Addrs lists the pool's worker addresses.
func (p *WorkerPool) Addrs() []string { return p.lc.Addrs() }

// Close stops all workers in the pool.
func (p *WorkerPool) Close() error { return p.lc.Close() }

package pdtl

import (
	"context"
	"fmt"
	"log/slog"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/cluster"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// ClusterOptions parameterize a distributed run.
type ClusterOptions struct {
	// Workers is P, the processor count per node (master included).
	Workers int
	// MemEdges is M per processor, in adjacency entries.
	MemEdges int
	// NaiveBalance disables the in-degree load balancer.
	NaiveBalance bool
	// UplinkBytesPerSec rate-limits the master's aggregate outgoing graph
	// copies (0 = unlimited); it models a shared NIC.
	UplinkBytesPerSec int64
	// ScanSource selects every node's scan source ("auto", "buffered",
	// "shared", "mem"); see Options.ScanSource.
	ScanSource string
	// Kernel selects every node's intersection kernel ("merge", "gallop",
	// "adaptive"); see Options.Kernel.
	Kernel string
	// Sched selects the chunk scheduler: "static" (or empty — the paper's
	// up-front pre-split of the global plan across nodes) or "stealing"
	// (the master dispenses weighted chunk batches to nodes on demand, so
	// a node that finishes early pulls the work a slow node would have
	// stalled on).
	Sched string
	// Chunks is the chunks-per-worker factor K of the stealing scheduler;
	// non-positive selects the default (8). Ignored under "static".
	Chunks int
	// MaxRetries bounds how many times one unit of failed work (a static
	// range group or a stealing chunk batch) may be reassigned to another
	// node after a worker failure before the run gives up with the joined
	// node errors. Zero selects the default (2); negative disables
	// recovery entirely, so the first worker failure aborts the run.
	// Recovered failures are reported in ClusterResult.Failures either
	// way — partial degradation is observable, not fatal.
	MaxRetries int
	// HeartbeatInterval is how often the master pings each worker to
	// detect partitioned or wedged nodes (crashes are caught faster, by
	// the TCP connection dying); after three consecutive missed
	// heartbeats the worker is declared dead and its work reassigned.
	// Zero selects the default (2s); negative disables the heartbeat.
	HeartbeatInterval time.Duration
	// StoreFormat selects the on-disk encoding of the oriented store the
	// master builds and replicates when the input is unoriented: "plain" (or
	// empty) or "compressed" (see Options.StoreFormat). An already-oriented
	// input is replicated in the format it is in.
	StoreFormat string
	// List requests triangle listing into ListPath (12-byte triples).
	List     bool
	ListPath string
	// Log, when non-nil, receives a structured warning for every worker
	// failure the run detects, as it happens (the failures still appear in
	// ClusterResult.Failures either way). Like the fault-tolerance knobs it
	// never changes what a run computes, so it is absent from Key.
	Log *slog.Logger
}

// Key returns the canonical identity of a distributed run with these
// options against the given worker set — the distributed counterpart of
// Options.Key, and the memoization/single-flight identity the query service
// uses for cluster-backed counts. Listing runs (List=true) are not
// memoizable (their product is a file, not a count), so their key embeds
// the output path to keep them distinct. The fault-tolerance knobs
// (MaxRetries, HeartbeatInterval) are deliberately absent: they change how
// a run survives failures, never what it computes, so runs differing only
// in them share a cache entry.
func (o ClusterOptions) Key(workerAddrs []string) (string, error) {
	scanKind, err := scan.ParseSource(o.ScanSource)
	if err != nil {
		return "", err
	}
	kernelKind, err := scan.ParseKernel(o.Kernel)
	if err != nil {
		return "", err
	}
	mode, err := sched.ParseMode(o.Sched)
	if err != nil {
		return "", err
	}
	strategy := balance.InDegree
	if o.NaiveBalance {
		strategy = balance.Naive
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 1 // the cluster engine's default (Config.withDefaults)
	}
	mem := o.MemEdges
	if mem <= 0 {
		mem = core.DefaultMemEdges
	}
	chunks := 0
	if mode == sched.Stealing {
		chunks = sched.ChunksFor(workers, o.Chunks)
	}
	format, err := graph.ParseFormat(o.StoreFormat)
	if err != nil {
		return "", err
	}
	if format == "" {
		format = graph.FormatPlain
	}
	key := fmt.Sprintf("nodes=%s w%d m%d %s %s %s %s c%d %s",
		strings.Join(workerAddrs, ","), workers, mem, strategy, mode,
		scanKind.Resolve(workers), kernelKind, chunks, format)
	if o.List {
		key += " list=" + o.ListPath
	}
	return key, nil
}

// NodeStats reports one node's share of a distributed run; node 0 is the
// master itself.
type NodeStats struct {
	Name      string
	Addr      string
	CopyTime  time.Duration
	CopyBytes int64
	CalcTime  time.Duration
	Triangles uint64
	// CPUTime and IOTime aggregate the node's runners.
	CPUTime, IOTime time.Duration
	// SourceBytesRead is the disk volume the node's scan source read on
	// its own behalf (shared broadcast scans, in-memory preload).
	SourceBytesRead int64
	// Workers holds the node's per-runner breakdown.
	Workers []WorkerStats
}

// NodeFailure reports one detected worker failure during a distributed
// run — the per-run failure log of the fault-tolerance layer (DESIGN.md
// §9). A failure on a successful run means the work was recovered: the
// count and listing are exact regardless.
type NodeFailure struct {
	// Node is the worker's self-reported name ("" if it failed before the
	// handshake).
	Node string
	// Addr is the worker's RPC address.
	Addr string
	// Slot is the node's index in the run (the master is 0).
	Slot int
	// Chunk is the global plan index of the failed work unit's first
	// range, or -1 when the node failed outside a calculation (dial,
	// handshake, or replica copy).
	Chunk int
	// Ranges is how many plan ranges the failed unit held.
	Ranges int
	// Retries is how many times the unit had already been reassigned when
	// this failure happened.
	Retries int
	// Err is the failure's error text.
	Err string
	// Time is when the master detected the failure.
	Time time.Time
}

// ClusterResult reports a distributed run.
type ClusterResult struct {
	Triangles  uint64
	OrientTime time.Duration
	// CalcTime is the slowest node's calculation time (the "struggler"
	// rule of the paper's Section V-E3).
	CalcTime  time.Duration
	TotalTime time.Duration
	// NetworkBytes is the master's total payload exchanged with clients
	// (Theorem IV.3's Θ(N·(P+|E|)+T) traffic).
	NetworkBytes int64
	Nodes        []NodeStats
	OrientedBase string
	// Failures lists every worker failure the run detected and recovered
	// from, in detection order; empty for a fully healthy run. The failed
	// workers' shares were reassigned to the survivors (or run on the
	// master), so Triangles and any listing are exact regardless.
	Failures []NodeFailure
}

// CountDistributed runs the full PDTL protocol with this handle's graph:
// the master (this process) replicates the handle's cached oriented store
// to every worker address, assigns contiguous edge ranges, and sums the
// results. The orientation is performed at most once per handle — repeated
// distributed (or mixed local/distributed) runs reuse it. With an empty
// address list the protocol degrades to a local run through the same path.
//
// Worker failure mid-run is survived, not fatal: a crashed, unreachable,
// or wedged worker is detected (connection errors, plus a heartbeat for
// silent partitions) and its unfinished share is reassigned to the
// surviving workers — or run on the master as the last resort — bounded
// by opt.MaxRetries reassignments per work unit. The count (and listing)
// stay exact, and the detected failures are reported in
// ClusterResult.Failures so degraded runs are observable.
//
// Cancelling ctx aborts the whole protocol: local runners stop within one
// memory window, in-flight graph copies stop at the next chunk, and remote
// nodes are told (via a Cancel RPC) to abandon their calculation;
// CountDistributed then returns ctx.Err().
func (g *Graph) CountDistributed(ctx context.Context, workerAddrs []string, opt ClusterOptions) (*ClusterResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	strategy := balance.InDegree
	if opt.NaiveBalance {
		strategy = balance.Naive
	}
	scanKind, err := scan.ParseSource(opt.ScanSource)
	if err != nil {
		return nil, err
	}
	kernelKind, err := scan.ParseKernel(opt.Kernel)
	if err != nil {
		return nil, err
	}
	schedMode, err := sched.ParseMode(opt.Sched)
	if err != nil {
		return nil, err
	}
	format, err := graph.ParseFormat(opt.StoreFormat)
	if err != nil {
		return nil, err
	}
	g.runs.Add(1)
	start := time.Now()
	orientWorkers := opt.Workers
	if orientWorkers <= 0 {
		orientWorkers = 1
	}
	d, orientedBase, ores, err := g.ensureOriented(ctx, orientWorkers, format)
	if err != nil {
		return nil, err
	}
	cres, err := cluster.Run(ctx, cluster.Config{
		GraphBase:         orientedBase,
		Disk:              d,
		GraphName:         filepath.Base(g.base),
		Workers:           opt.Workers,
		MemEdges:          opt.MemEdges,
		Strategy:          strategy,
		UplinkBytesPerSec: opt.UplinkBytesPerSec,
		Scan:              scanKind,
		Kernel:            kernelKind,
		Sched:             schedMode,
		Chunks:            opt.Chunks,
		MaxRetries:        opt.MaxRetries,
		HeartbeatInterval: opt.HeartbeatInterval,
		List:              opt.List,
		ListPath:          opt.ListPath,
		Log:               opt.Log,
	}, workerAddrs)
	if err != nil {
		return nil, err
	}
	res := clusterResultFrom(cres)
	if ores != nil {
		res.OrientTime = ores.Duration
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

func clusterResultFrom(cres *cluster.Result) *ClusterResult {
	res := &ClusterResult{
		Triangles:    cres.Triangles,
		CalcTime:     cres.CalcTime,
		TotalTime:    cres.TotalTime,
		NetworkBytes: cres.NetworkBytes,
		OrientedBase: cres.OrientedBase,
	}
	if cres.Orientation != nil {
		res.OrientTime = cres.Orientation.Duration
	}
	for _, f := range cres.Failures {
		res.Failures = append(res.Failures, NodeFailure{
			Node: f.Node, Addr: f.Addr, Slot: f.Slot, Chunk: f.Chunk,
			Ranges: f.Ranges, Retries: f.Retries, Err: f.Err, Time: f.Time,
		})
	}
	for _, n := range cres.Nodes {
		ns := NodeStats{
			Name:            n.Name,
			Addr:            n.Addr,
			CopyTime:        n.CopyTime,
			CopyBytes:       n.CopyBytes,
			CalcTime:        n.CalcTime,
			Triangles:       n.Triangles,
			SourceBytesRead: n.SourceIO.BytesRead,
		}
		for _, w := range n.Workers {
			ns.CPUTime += w.Stats.CPUTime()
			ns.IOTime += w.Stats.IO.IOTime()
			ns.Workers = append(ns.Workers, WorkerStats{
				Worker:    w.Worker,
				EdgeLo:    w.Range.Lo,
				EdgeHi:    w.Range.Hi,
				Chunks:    w.Chunks,
				Triangles: w.Stats.Triangles,
				Passes:    w.Stats.Passes,
				CPUTime:   w.Stats.CPUTime(),
				IOTime:    w.Stats.IO.IOTime(),
				BytesRead: w.Stats.IO.BytesRead,
			})
		}
		res.Nodes = append(res.Nodes, ns)
	}
	return res
}

// CountDistributed runs the full PDTL protocol on the store at base.
//
// Deprecated: one-shot wrapper. Use Open and (*Graph).CountDistributed,
// which reuses the cached orientation across runs and accepts a
// context.Context for cancellation.
func CountDistributed(base string, workerAddrs []string, opt ClusterOptions) (*ClusterResult, error) {
	g, err := Open(base)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	return g.CountDistributed(context.Background(), workerAddrs, opt)
}

// WorkerServer is a running PDTL worker node.
type WorkerServer struct {
	srv  *cluster.Server
	done chan struct{}
	once sync.Once
}

// ServeWorker starts a worker node that stores graph replicas under workDir
// and serves the PDTL protocol on addr (use ":0" to pick a free port). The
// returned server runs until Close.
func ServeWorker(addr, name, workDir string) (*WorkerServer, error) {
	node := cluster.NewNode(name, workDir, 0)
	srv, err := cluster.Listen(node, addr)
	if err != nil {
		return nil, err
	}
	return &WorkerServer{srv: srv, done: make(chan struct{})}, nil
}

// ServeWorkerContext is ServeWorker bound to a context: when ctx is
// cancelled the server stops accepting, aborts its in-flight calculations,
// and closes — the lifecycle hook for daemons wiring SIGINT/SIGTERM to a
// context (as cmd/pdtl-worker does).
func ServeWorkerContext(ctx context.Context, addr, name, workDir string) (*WorkerServer, error) {
	w, err := ServeWorker(addr, name, workDir)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				w.Close()
			case <-w.done:
			}
		}()
	}
	return w, nil
}

// Addr reports the worker's listen address.
func (w *WorkerServer) Addr() string { return w.srv.Addr() }

// Done is closed when the worker has stopped (by Close or by its context).
func (w *WorkerServer) Done() <-chan struct{} { return w.done }

// Close stops the worker, cancelling any in-flight calculations.
func (w *WorkerServer) Close() error {
	var err error
	w.once.Do(func() {
		err = w.srv.Close()
		close(w.done)
	})
	return err
}

// WorkerPool is a set of local in-process worker nodes, convenient for
// examples and tests.
type WorkerPool struct {
	lc *cluster.LocalCluster
}

// StartLocalWorkers starts n in-process worker nodes on loopback TCP, each
// with its own replica directory under dir.
func StartLocalWorkers(n int, dir string) (*WorkerPool, error) {
	lc, err := cluster.StartLocal(n, dir)
	if err != nil {
		return nil, err
	}
	return &WorkerPool{lc: lc}, nil
}

// Addrs lists the pool's worker addresses.
func (p *WorkerPool) Addrs() []string { return p.lc.Addrs() }

// Close stops all workers in the pool.
func (p *WorkerPool) Close() error { return p.lc.Close() }

// Quickstart: generate a scale-free graph, count its triangles with PDTL,
// and inspect the per-worker breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pdtl"
)

func main() {
	dir, err := os.MkdirTemp("", "pdtl-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "rmat")

	// 1. Create a graph store: an RMAT graph with 2^12 vertices and
	//    16·2^12 edge samples (the paper's synthetic family).
	info, err := pdtl.GenerateRMAT(base, 12, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
		info.NumVertices, info.NumEdges, info.MaxDegree)

	// 2. Count triangles. PDTL orients the graph by the degree-based
	//    order, load-balances contiguous edge ranges across workers, and
	//    runs one external-memory MGT runner per worker. MemEdges is the
	//    per-worker memory budget M in 4-byte adjacency entries —
	//    correctness never depends on it, only the number of passes.
	res, err := pdtl.Count(base, pdtl.Options{Workers: 4, MemEdges: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Printf("orientation %v + calculation %v = total %v (d*max = %d)\n",
		res.OrientTime, res.CalcTime, res.TotalTime, res.MaxOutDegree)
	for _, w := range res.Workers {
		fmt.Printf("  worker %d: edges [%d,%d) -> %d triangles in %d pass(es), cpu %v, io %v\n",
			w.Worker, w.EdgeLo, w.EdgeHi, w.Triangles, w.Passes, w.CPUTime, w.IOTime)
	}

	// 3. Rerun against the oriented store to skip preprocessing — e.g.
	//    with a tiny memory budget to see the pass count grow while the
	//    answer stays exact.
	tight, err := pdtl.Count(res.OrientedBase, pdtl.Options{Workers: 4, MemEdges: 4096})
	if err != nil {
		log.Fatal(err)
	}
	passes := 0
	for _, w := range tight.Workers {
		passes += w.Passes
	}
	fmt.Printf("rerun with M=4096 entries/worker: %d triangles across %d passes (same count: %v)\n",
		tight.Triangles, passes, tight.Triangles == res.Triangles)
}

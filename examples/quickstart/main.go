// Quickstart: generate a scale-free graph, open a reusable pdtl.Graph
// handle, count its triangles, rerun against the cached preprocessing,
// stream triangles through the iterator — stopping early without leaking
// the workers behind it — and mutate the graph live through a delta
// overlay with a background-compactable snapshot.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pdtl"
)

func main() {
	dir, err := os.MkdirTemp("", "pdtl-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "rmat")
	ctx := context.Background()

	// 1. Create a graph store: an RMAT graph with 2^12 vertices and
	//    16·2^12 edge samples (the paper's synthetic family).
	info, err := pdtl.GenerateRMAT(base, 12, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
		info.NumVertices, info.NumEdges, info.MaxDegree)

	// 2. Open a handle. The store's metadata and degree index are read
	//    once, here; orientation and load-balance planning happen on the
	//    first run and are cached for the handle's lifetime.
	g, err := pdtl.Open(base)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	// 3. Count triangles. PDTL orients the graph by the degree-based
	//    order, load-balances contiguous edge ranges across workers, and
	//    runs one external-memory MGT runner per worker. MemEdges is the
	//    per-worker memory budget M in 4-byte adjacency entries —
	//    correctness never depends on it, only the number of passes.
	res, err := g.Count(ctx, pdtl.Options{Workers: 4, MemEdges: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Printf("orientation %v + calculation %v = total %v (d*max = %d)\n",
		res.OrientTime, res.CalcTime, res.TotalTime, res.MaxOutDegree)
	for _, w := range res.Workers {
		fmt.Printf("  worker %d: edges [%d,%d) -> %d triangles in %d pass(es), cpu %v, io %v\n",
			w.Worker, w.EdgeLo, w.EdgeHi, w.Triangles, w.Passes, w.CPUTime, w.IOTime)
	}

	// 4. Rerun on the same handle — e.g. with a tiny memory budget to see
	//    the pass count grow while the answer stays exact. The cached
	//    orientation and degree index are reused: no preprocessing, no
	//    re-reads, OrientTime is zero.
	tight, err := g.Count(ctx, pdtl.Options{Workers: 4, MemEdges: 4096})
	if err != nil {
		log.Fatal(err)
	}
	passes := 0
	for _, w := range tight.Workers {
		passes += w.Passes
	}
	fmt.Printf("rerun with M=4096 entries/worker: %d triangles across %d passes (same count: %v, orientation reused: %v)\n",
		tight.Triangles, passes, tight.Triangles == res.Triangles, tight.OrientTime == 0)

	// 5. Run on the compressed store format. StoreFormat "compressed"
	//    builds (and caches, independently of the plain one) an oriented
	//    store of delta-varint/bitmap segments — typically 2×+ smaller per
	//    edge on skewed graphs — and the "compressed" kernel intersects it
	//    without full decompression, skipping whole segments on their
	//    headers. Same graph, same count, byte-identical listing order.
	//    (`pdtl-gen -format compressed` writes input stores in this
	//    encoding directly; `pdtl.Open` auto-detects it.)
	comp, err := g.Count(ctx, pdtl.Options{
		Workers: 4, MemEdges: 1 << 16,
		StoreFormat: "compressed", Kernel: "compressed",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed store rerun: %d triangles (same count: %v)\n",
		comp.Triangles, comp.Triangles == res.Triangles)

	// 6. Stream triangles with the iterator. Breaking out of the loop
	//    cancels the run: the workers stop at their next memory window and
	//    everything is torn down before the loop statement completes.
	seq, iterErr := g.Triangles(ctx, pdtl.Options{Workers: 2, MemEdges: 1 << 14})
	shown := 0
	for t := range seq {
		fmt.Printf("  triangle %v\n", t)
		shown++
		if shown == 5 {
			break // tears the runners down; not an error
		}
	}
	if err := iterErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stopped after %d of %d triangles — early break cancels the run\n", shown, res.Triangles)

	// 7. Contexts cancel runs the same way: a deadline or Ctrl-C style
	//    cancellation makes the run return ctx.Err() promptly.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := g.Count(cancelled, pdtl.Options{Workers: 2}); err != nil {
		fmt.Printf("cancelled run returns: %v\n", err)
	}

	// 8. Live updates: wrap the store in a delta overlay (DESIGN.md §11).
	//    Mutation batches are absorbed in memory — new vertices included —
	//    while exact counts run over base ⊕ delta through the same engine,
	//    and a streaming TRIÈST-FD estimate stays O(1) per query. Compact
	//    folds the delta into a fresh on-disk snapshot (atomic swap, queries
	//    never blocked) without changing the answer.
	lg, err := pdtl.OpenLive(ctx, base, pdtl.LiveOptions{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer lg.Close()
	n := uint32(info.NumVertices)
	if err := lg.Apply([]pdtl.LiveUpdate{
		{U: n, V: n + 1}, {U: n + 1, V: n + 2}, {U: n, V: n + 2}, // a triangle of brand-new vertices
	}); err != nil {
		log.Fatal(err)
	}
	liveRes, err := lg.Count(ctx, pdtl.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	est, exact := lg.Estimate()
	fmt.Printf("live count after inserting a triangle: %d (+%d), streaming estimate %.0f (exact: %v)\n",
		liveRes.Triangles, liveRes.Triangles-res.Triangles, est, exact)
	if err := lg.Compact(ctx); err != nil {
		log.Fatal(err)
	}
	compacted, err := lg.Count(ctx, pdtl.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	st := lg.Stats()
	fmt.Printf("after compaction: %d triangles (unchanged: %v), snapshot gen %d, delta edges %d\n",
		compacted.Triangles, compacted.Triangles == liveRes.Triangles, st.Gen, st.DeltaEdges)
}

// K-truss: use PDTL's exact triangle listing as the substrate for k-truss
// decomposition (Wang & Cheng, VLDB'12) — one of the triangle-enumeration
// applications the paper's introduction motivates. The k-truss of a graph
// is the largest subgraph in which every edge participates in at least k-2
// triangles; it is a standard cohesive-subgroup definition.
//
//	go run ./examples/ktruss
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"pdtl"
)

// edge is a canonical vertex pair (u < v).
type edge struct{ u, v uint32 }

func canon(a, b uint32) edge {
	if a > b {
		a, b = b, a
	}
	return edge{a, b}
}

func main() {
	dir, err := os.MkdirTemp("", "pdtl-ktruss-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "graph")

	info, err := pdtl.GenerateCommunity(base, 1500, 18000, 12, 0.8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", info.NumVertices, info.NumEdges)

	// 1. List every triangle with PDTL and build the edge-support map and
	//    per-edge triangle incidence (which edges each triangle touches).
	//    The handle's List streams to any io.Writer; here, a plain file.
	g, err := pdtl.Open(base)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	listPath := filepath.Join(dir, "triangles.bin")
	out, err := os.Create(listPath)
	if err != nil {
		log.Fatal(err)
	}
	res, err := g.List(context.Background(), out, pdtl.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	tris, err := pdtl.ReadTriangleFile(listPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles listed: %d\n", len(tris))
	if uint64(len(tris)) != res.Triangles {
		log.Fatalf("listing mismatch: %d vs %d", len(tris), res.Triangles)
	}

	support := make(map[edge]int)
	incident := make(map[edge][]int) // edge -> triangle ids
	for i, t := range tris {
		for _, e := range [3]edge{canon(t[0], t[1]), canon(t[0], t[2]), canon(t[1], t[2])} {
			support[e]++
			incident[e] = append(incident[e], i)
		}
	}

	// 2. Peel: repeatedly remove edges with support < k-2, decrementing
	//    the support of the other two edges of each destroyed triangle.
	//    We compute the trussness of every edge by peeling with growing k.
	alive := make([]bool, len(tris))
	for i := range alive {
		alive[i] = true
	}
	trussness := make(map[edge]int)
	removed := make(map[edge]bool)
	maxK := 2
	for k := 3; len(removed) < len(support); k++ {
		queue := make([]edge, 0)
		for e := range support {
			if !removed[e] && support[e] < k-2 {
				queue = append(queue, e)
			}
		}
		progressed := false
		for len(queue) > 0 {
			e := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if removed[e] {
				continue
			}
			removed[e] = true
			trussness[e] = k - 1
			progressed = true
			for _, ti := range incident[e] {
				if !alive[ti] {
					continue
				}
				alive[ti] = false
				t := tris[ti]
				for _, other := range [3]edge{canon(t[0], t[1]), canon(t[0], t[2]), canon(t[1], t[2])} {
					if other == e || removed[other] {
						continue
					}
					support[other]--
					if support[other] < k-2 {
						queue = append(queue, other)
					}
				}
			}
		}
		if !progressed && len(removed) < len(support) {
			maxK = k
			continue
		}
		if len(removed) == len(support) {
			maxK = k - 1
		}
	}

	// 3. Report the truss profile: how many edges survive at each k.
	profile := make(map[int]int)
	for _, k := range trussness {
		profile[k]++
	}
	ks := make([]int, 0, len(profile))
	for k := range profile {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	fmt.Println("truss decomposition (edges whose trussness is exactly k):")
	cumulative := 0
	for i := len(ks) - 1; i >= 0; i-- {
		cumulative += profile[ks[i]]
	}
	remaining := cumulative
	for _, k := range ks {
		fmt.Printf("  k=%2d: %6d edges (k-truss size ≥ %d edges)\n", k, profile[k], remaining)
		remaining -= profile[k]
	}
	fmt.Printf("maximum truss: k=%d\n", maxK)
}

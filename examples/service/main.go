// Service quickstart: start the triangle query service in-process, register
// a graph over the HTTP API, count it twice (the second reply is a cache
// hit — no engine run, no I/O), stream the first triangles as NDJSON, and
// shut down gracefully. The same API is served standalone by
// `pdtl-serve -addr :7200 -graph demo=BASE`; every request below is a curl
// one-liner against it.
//
//	go run ./examples/service
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"pdtl"
	"pdtl/internal/service"
)

func main() {
	dir, err := os.MkdirTemp("", "pdtl-service-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "rmat")

	// 1. Create a graph store to serve.
	info, err := pdtl.GenerateRMAT(base, 12, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", info.NumVertices, info.NumEdges)

	// 2. Start the service: registry of long-lived handles, 2 concurrent
	//    run slots, a bounded wait queue. pdtl-serve wires exactly this
	//    behind flags.
	svc := service.New(service.Config{RunSlots: 2, QueueDepth: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	go httpSrv.Serve(ln)
	url := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", url)

	// 3. Register the store under a name.
	//    curl -X POST $URL/v1/graphs -d '{"name":"demo","base":"..."}'
	body, _ := json.Marshal(map[string]string{"name": "demo", "base": base})
	resp, err := http.Post(url+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("registered: %s\n", resp.Status)

	// 4. Count twice. The first request runs the engine (orienting the
	//    graph and caching the plan on the handle); the identical second
	//    request is answered from the result cache without touching disk.
	//    curl "$URL/v1/graphs/demo/count?workers=2"
	for i := 0; i < 2; i++ {
		resp, err := http.Get(url + "/v1/graphs/demo/count?workers=2")
		if err != nil {
			log.Fatal(err)
		}
		var reply struct {
			Triangles uint64 `json:"triangles"`
			Origin    string `json:"origin"`
			WallNS    int64  `json:"wall_ns"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("count #%d: %d triangles (origin=%s, %v)\n",
			i+1, reply.Triangles, reply.Origin, time.Duration(reply.WallNS))
	}

	// 5. Stream the first five triangles as NDJSON. Disconnecting a stream
	//    early (here via limit) cancels the engine run behind it.
	//    curl "$URL/v1/graphs/demo/triangles?limit=5"
	resp, err = http.Get(url + "/v1/graphs/demo/triangles?limit=5")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Printf("triangle: %s\n", sc.Text())
	}
	resp.Body.Close()

	// 6. An approximate count through the same registry entry.
	//    curl -X POST $URL/v1/graphs/demo/estimate -d '{"method":"doulion","p":0.3}'
	resp, err = http.Post(url+"/v1/graphs/demo/estimate", "application/json",
		bytes.NewReader([]byte(`{"method":"doulion","p":0.3,"seed":7}`)))
	if err != nil {
		log.Fatal(err)
	}
	var est struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("doulion estimate: %.0f\n", est.Estimate)

	// 7. Graceful drain: queued requests get 503s, in-flight runs are
	//    cancelled, handles close. pdtl-serve does this on SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	httpSrv.Shutdown(ctx)
	fmt.Println("drained and stopped")
}

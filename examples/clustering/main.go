// Clustering: use PDTL's triangle machinery for the metrics that motivate
// it in the paper's introduction — local clustering coefficients (Watts &
// Strogatz), the global transitivity ratio, and high-density vertex
// detection (the "find fake accounts / web spam" use case).
//
//	go run ./examples/clustering
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"pdtl"
)

func main() {
	dir, err := os.MkdirTemp("", "pdtl-clustering-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "social")

	// A social-network stand-in: power-law degrees with planted
	// communities, which is what gives real social graphs their high
	// clustering.
	info, err := pdtl.GenerateCommunity(base, 4000, 40000, 25, 0.7, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", info.NumVertices, info.NumEdges)

	// Per-vertex triangle counts via the handle API: each worker fills a
	// private count shard, merged after the run.
	g, err := pdtl.Open(base)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	triangles, res, err := g.TriangleDegrees(context.Background(), pdtl.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	degrees, err := pdtl.Degrees(base)
	if err != nil {
		log.Fatal(err)
	}

	// Local clustering coefficient: c(v) = 2·T(v) / (d(v)·(d(v)-1)).
	// Transitivity: 3·T / #wedges.
	var cSum float64
	var withWedges int
	var wedges uint64
	type hot struct {
		v   uint32
		t   uint64
		c   float64
		deg uint32
	}
	var hottest []hot
	for v, d := range degrees {
		if d >= 2 {
			w := uint64(d) * uint64(d-1) / 2
			wedges += w
			c := float64(triangles[v]) / float64(w)
			cSum += c
			withWedges++
			hottest = append(hottest, hot{v: uint32(v), t: triangles[v], c: c, deg: d})
		}
	}
	avgC := cSum / float64(withWedges)
	transitivity := 3 * float64(res.Triangles) / float64(wedges)
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Printf("average local clustering coefficient: %.4f\n", avgC)
	fmt.Printf("transitivity ratio: %.4f\n", transitivity)

	// High-density vertices: large triangle count relative to degree —
	// the density signal used for spam/sybil detection.
	sort.Slice(hottest, func(i, j int) bool { return hottest[i].t > hottest[j].t })
	fmt.Println("top 5 triangle-dense vertices:")
	for _, hv := range hottest[:5] {
		fmt.Printf("  vertex %6d: %7d triangles, degree %5d, c=%.3f\n", hv.v, hv.t, hv.deg, hv.c)
	}
}

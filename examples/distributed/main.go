// Distributed: run the full PDTL protocol of the paper's Figure 1 — a
// master that orients the graph, replicates it to worker nodes over TCP,
// assigns contiguous edge ranges, and sums the counts — using three
// in-process worker nodes, each with its own on-disk replica.
//
// In production the workers would be `pdtl-worker` daemons on other
// machines; the protocol and code paths here are identical.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pdtl"
)

func main() {
	dir, err := os.MkdirTemp("", "pdtl-distributed-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "graph")

	info, err := pdtl.GenerateRMAT(base, 13, 16, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", info.NumVertices, info.NumEdges)

	// Start three worker nodes on loopback TCP; each keeps its graph
	// replica in its own directory, exactly like a remote machine would.
	pool, err := pdtl.StartLocalWorkers(3, filepath.Join(dir, "workers"))
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	fmt.Printf("workers: %v\n", pool.Addrs())

	// The master (this process) is node 0; with 3 workers the cluster has
	// 4 nodes × 2 processors = 8 contiguous edge ranges. One handle serves
	// the distributed run and the local sanity check below — the oriented
	// store is built once and shared by both.
	ctx := context.Background()
	g, err := pdtl.Open(base)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	res, err := g.CountDistributed(ctx, pool.Addrs(), pdtl.ClusterOptions{
		Workers:  2,
		MemEdges: 1 << 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Printf("orientation %v, calculation %v (straggler), total %v\n",
		res.OrientTime, res.CalcTime, res.TotalTime)
	fmt.Printf("network: %d bytes total (Θ(N·|E|) replication of Theorem IV.3)\n", res.NetworkBytes)
	for i, n := range res.Nodes {
		fmt.Printf("  node %d (%s): %d triangles, calc %v, copy %v (%d bytes)\n",
			i, n.Name, n.Triangles, n.CalcTime, n.CopyTime, n.CopyBytes)
	}

	// Sanity: a purely local run on the same handle must agree (and reuses
	// the orientation the distributed run already paid for).
	local, err := g.Count(ctx, pdtl.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local run agrees: %v (orientation reused: %v)\n",
		local.Triangles == res.Triangles, local.OrientTime == 0)
}

// Package vset holds the sorted vertex-set primitives shared by every
// in-memory adjacency maintainer: the dynamic exact counter
// (internal/dynamic), the live delta layer (internal/live), and the
// streaming estimator's sample adjacency. A set is a plain sorted
// []graph.Vertex with no duplicates; all operations preserve that
// invariant and none of them allocate beyond the append they document.
package vset

import "pdtl/internal/graph"

// Search returns the insertion position of v in the sorted list and
// whether v is already present.
func Search(list []graph.Vertex, v graph.Vertex) (int, bool) {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(list) && list[lo] == v
}

// Contains reports whether v is in the sorted list.
func Contains(list []graph.Vertex, v graph.Vertex) bool {
	_, ok := Search(list, v)
	return ok
}

// Insert adds v to the sorted list, returning the (possibly reallocated)
// slice. Inserting a vertex that is already present is a no-op.
func Insert(list []graph.Vertex, v graph.Vertex) []graph.Vertex {
	pos, ok := Search(list, v)
	if ok {
		return list
	}
	return InsertAt(list, pos, v)
}

// InsertAt inserts v at position pos, which the caller obtained from
// Search — the split primitive for callers that need the position check
// and the shift as separate steps (one binary search instead of two).
func InsertAt(list []graph.Vertex, pos int, v graph.Vertex) []graph.Vertex {
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = v
	return list
}

// Remove deletes v from the sorted list, returning the shortened slice.
// Removing an absent vertex is a no-op.
func Remove(list []graph.Vertex, v graph.Vertex) []graph.Vertex {
	pos, ok := Search(list, v)
	if !ok {
		return list
	}
	return RemoveAt(list, pos)
}

// RemoveAt deletes the element at position pos (from Search).
func RemoveAt(list []graph.Vertex, pos int) []graph.Vertex {
	return append(list[:pos], list[pos+1:]...)
}

// Intersect appends a ∩ b to dst (usually dst[:0] of a reusable scratch)
// and returns it. Both inputs must be sorted sets.
func Intersect(dst, a, b []graph.Vertex) []graph.Vertex {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// Merge appends base ∪ ins \ del to dst and returns it. base, ins, and del
// must be sorted sets; ins must be disjoint from base and del a subset of
// base (the delta-layer invariants), though Merge degrades gracefully —
// an ins already in base is emitted once, a del not in base is ignored.
// This is the read-merge primitive of the live overlay: one pass, no
// allocation beyond dst's growth.
func Merge(dst, base, ins, del []graph.Vertex) []graph.Vertex {
	i, j, k := 0, 0, 0
	for i < len(base) || j < len(ins) {
		var v graph.Vertex
		switch {
		case i == len(base):
			v = ins[j]
			j++
		case j == len(ins):
			v = base[i]
			i++
		case base[i] < ins[j]:
			v = base[i]
			i++
		case base[i] > ins[j]:
			v = ins[j]
			j++
		default: // duplicate across base and ins: emit once
			v = base[i]
			i++
			j++
		}
		for k < len(del) && del[k] < v {
			k++
		}
		if k < len(del) && del[k] == v {
			k++
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

package vset

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"pdtl/internal/graph"
)

func TestInsertRemoveSearch(t *testing.T) {
	var list []graph.Vertex
	ref := map[graph.Vertex]bool{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		v := graph.Vertex(rng.Intn(128))
		if rng.Intn(2) == 0 {
			list = Insert(list, v)
			ref[v] = true
		} else {
			list = Remove(list, v)
			delete(ref, v)
		}
		if !slices.IsSorted(list) {
			t.Fatalf("step %d: not sorted: %v", i, list)
		}
		if len(list) != len(ref) {
			t.Fatalf("step %d: len %d want %d", i, len(list), len(ref))
		}
	}
	for v := graph.Vertex(0); v < 128; v++ {
		if Contains(list, v) != ref[v] {
			t.Fatalf("Contains(%d) = %v want %v", v, Contains(list, v), ref[v])
		}
	}
}

func TestIntersect(t *testing.T) {
	a := []graph.Vertex{1, 3, 5, 7, 9}
	b := []graph.Vertex{2, 3, 4, 7, 10}
	got := Intersect(nil, a, b)
	want := []graph.Vertex{3, 7}
	if !slices.Equal(got, want) {
		t.Fatalf("Intersect = %v want %v", got, want)
	}
	if out := Intersect(nil, a, nil); len(out) != 0 {
		t.Fatalf("Intersect with empty = %v", out)
	}
}

func TestMergeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		universe := 64
		ref := map[graph.Vertex]bool{}
		var base []graph.Vertex
		for v := 0; v < universe; v++ {
			if rng.Intn(2) == 0 {
				base = append(base, graph.Vertex(v))
				ref[graph.Vertex(v)] = true
			}
		}
		var ins, del []graph.Vertex
		for v := 0; v < universe; v++ {
			if ref[graph.Vertex(v)] {
				if rng.Intn(4) == 0 {
					del = append(del, graph.Vertex(v))
					ref[graph.Vertex(v)] = false
				}
			} else if rng.Intn(4) == 0 {
				ins = append(ins, graph.Vertex(v))
				ref[graph.Vertex(v)] = true
			}
		}
		var want []graph.Vertex
		for v := 0; v < universe; v++ {
			if ref[graph.Vertex(v)] {
				want = append(want, graph.Vertex(v))
			}
		}
		got := Merge(nil, base, ins, del)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: Merge(%v, %v, %v) = %v want %v", trial, base, ins, del, got, want)
		}
	}
}

func TestMergeDegradesGracefully(t *testing.T) {
	base := []graph.Vertex{2, 4, 6}
	// ins overlapping base, del not in base.
	got := Merge(nil, base, []graph.Vertex{2, 5}, []graph.Vertex{3, 6})
	want := []graph.Vertex{2, 4, 5}
	if !slices.Equal(got, want) {
		t.Fatalf("Merge = %v want %v", got, want)
	}
}

func TestInsertAtRemoveAt(t *testing.T) {
	list := []graph.Vertex{10, 20, 30}
	pos, ok := Search(list, 25)
	if ok || pos != 2 {
		t.Fatalf("Search(25) = %d,%v", pos, ok)
	}
	list = InsertAt(list, pos, 25)
	if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i] < list[j] }) {
		t.Fatalf("after InsertAt: %v", list)
	}
	pos, ok = Search(list, 20)
	if !ok {
		t.Fatal("20 missing")
	}
	list = RemoveAt(list, pos)
	if slices.Contains(list, 20) {
		t.Fatalf("after RemoveAt: %v", list)
	}
}

package baseline

import (
	"testing"

	"pdtl/internal/gen"
)

// BenchmarkForward measures the in-memory compact-forward reference.
func BenchmarkForward(b *testing.B) {
	g, err := gen.RMAT(12, 16, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Forward(g) == 0 {
			b.Fatal("no triangles")
		}
	}
}

// BenchmarkEdgeIterator measures the per-edge intersection counter.
func BenchmarkEdgeIterator(b *testing.B) {
	g, err := gen.RMAT(11, 16, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if EdgeIterator(g) == 0 {
			b.Fatal("no triangles")
		}
	}
}

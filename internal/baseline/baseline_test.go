package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

func TestKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		g    func() (*graph.CSR, error)
		want uint64
	}{
		{"K4", func() (*graph.CSR, error) { return gen.Complete(4) }, 4},
		{"K5", func() (*graph.CSR, error) { return gen.Complete(5) }, 10},
		{"K10", func() (*graph.CSR, error) { return gen.Complete(10) }, gen.CompleteTriangles(10)},
		{"K50", func() (*graph.CSR, error) { return gen.Complete(50) }, gen.CompleteTriangles(50)},
		{"Grid8x8", func() (*graph.CSR, error) { return gen.Grid(8, 8) }, 0},
		{"TriGrid5x7", func() (*graph.CSR, error) { return gen.TriGrid(5, 7) }, gen.TriGridTriangles(5, 7)},
		{"TriGrid2x2", func() (*graph.CSR, error) { return gen.TriGrid(2, 2) }, 2},
		{"Empty", func() (*graph.CSR, error) { return graph.FromEdges(0, nil) }, 0},
		{"SingleEdge", func() (*graph.CSR, error) { return graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}) }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			if got := BruteForce(g); got != tc.want {
				t.Errorf("BruteForce = %d, want %d", got, tc.want)
			}
			if got := EdgeIterator(g); got != tc.want {
				t.Errorf("EdgeIterator = %d, want %d", got, tc.want)
			}
			if got := Forward(g); got != tc.want {
				t.Errorf("Forward = %d, want %d", got, tc.want)
			}
		})
	}
}

// Property: all three counters agree on random graphs.
func TestCountersAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		m := rng.Intn(4 * n)
		g, err := gen.ErdosRenyi(n, m, seed)
		if err != nil {
			return false
		}
		bf := BruteForce(g)
		return EdgeIterator(g) == bf && Forward(g) == bf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: T <= MinDegreeSum/3 (Theorem III.4 corollary).
func TestArboricityTriangleBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		g, err := gen.ErdosRenyi(n, rng.Intn(6*n), seed+1)
		if err != nil {
			return false
		}
		return 3*Forward(g) <= graph.MinDegreeSum(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestForwardListOrdering(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	prec := func(a, b graph.Vertex) bool {
		if deg[a] != deg[b] {
			return deg[a] < deg[b]
		}
		return a < b
	}
	seen := map[[3]graph.Vertex]bool{}
	ForwardList(g, func(u, v, w graph.Vertex) {
		if !prec(u, v) || !prec(v, w) {
			t.Errorf("triangle (%d,%d,%d) not in ≺ order", u, v, w)
		}
		key := [3]graph.Vertex{u, v, w}
		if seen[key] {
			t.Errorf("triangle %v reported twice", key)
		}
		seen[key] = true
	})
	if len(seen) != 20 {
		t.Errorf("K6: listed %d triangles, want 20", len(seen))
	}
}

func TestLocalCounts(t *testing.T) {
	// Triangle plus a pendant vertex: each triangle corner has count 1,
	// pendant has 0.
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	counts := LocalCounts(g)
	want := []uint64{1, 1, 1, 0}
	for v, c := range counts {
		if c != want[v] {
			t.Errorf("LocalCounts[%d] = %d, want %d", v, c, want[v])
		}
	}
}

func TestLocalCountsSumTo3T(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range LocalCounts(g) {
		sum += c
	}
	if sum != 3*Forward(g) {
		t.Errorf("sum of local counts %d != 3T = %d", sum, 3*Forward(g))
	}
}

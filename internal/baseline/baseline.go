// Package baseline provides exact in-memory triangle counters used as
// ground truth by the test suite and as the in-memory comparators of the
// evaluation (Section II's "divide between using external memory and
// parallelizing": these are the in-memory side).
//
// Three algorithms are provided, in increasing sophistication:
//
//   - BruteForce: O(n·d²) neighbor-pair enumeration; tiny graphs only.
//   - EdgeIterator: per-edge sorted intersection, the classic exact counter.
//   - Forward: the compact-forward algorithm (degree-ordered orientation +
//     out-list intersection), the standard fast in-memory method and the
//     CPU pattern that both OPT and PATRIC build on.
package baseline

import (
	"sort"

	"pdtl/internal/graph"
)

// BruteForce counts triangles by enumerating each vertex's neighbor pairs
// and testing the closing edge. Exact but quadratic in degree; use only for
// small graphs in tests.
func BruteForce(g *graph.CSR) uint64 {
	var count uint64
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		nu := g.Neighbors(graph.Vertex(u))
		for i := 0; i < len(nu); i++ {
			v := nu[i]
			if v <= graph.Vertex(u) {
				continue
			}
			for j := i + 1; j < len(nu); j++ {
				w := nu[j]
				if w <= v {
					continue
				}
				if g.HasEdge(v, w) {
					count++
				}
			}
		}
	}
	return count
}

// EdgeIterator counts triangles by intersecting the sorted neighbor lists
// of the endpoints of each undirected edge, counting only closing vertices
// above both endpoints so each triangle is counted once.
func EdgeIterator(g *graph.CSR) uint64 {
	var count uint64
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if v <= graph.Vertex(u) {
				continue
			}
			count += intersectAbove(g.Neighbors(graph.Vertex(u)), g.Neighbors(v), v)
		}
	}
	return count
}

// intersectAbove counts common elements of sorted lists a and b strictly
// greater than floor.
func intersectAbove(a, b []graph.Vertex, floor graph.Vertex) uint64 {
	i := sort.Search(len(a), func(k int) bool { return a[k] > floor })
	j := sort.Search(len(b), func(k int) bool { return b[k] > floor })
	var count uint64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// Forward counts triangles with the compact-forward algorithm: orient every
// edge from lower to higher vertex in the degree-based order ≺ of
// Definition III.2, then for every oriented edge (u,v) intersect the sorted
// out-lists of u and v. Each triangle {u≺v≺w} is found exactly once, at its
// pivot edge — the same invariant MGT externalizes.
func Forward(g *graph.CSR) uint64 {
	var count uint64
	ForwardList(g, func(u, v, w graph.Vertex) { count++ })
	return count
}

// ForwardList is Forward in listing mode: fn is invoked once per triangle
// (u, v, w) with u ≺ v ≺ w in the degree-based order.
func ForwardList(g *graph.CSR, fn func(u, v, w graph.Vertex)) {
	n := g.NumVertices()
	deg := make([]uint32, n)
	for v := 0; v < n; v++ {
		deg[v] = uint32(g.Degree(graph.Vertex(v)))
	}
	less := func(a, b graph.Vertex) bool {
		if deg[a] != deg[b] {
			return deg[a] < deg[b]
		}
		return a < b
	}
	// Out-lists under ≺, each sorted by vertex id.
	out := make([][]graph.Vertex, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if less(graph.Vertex(u), v) {
				out[u] = append(out[u], v)
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range out[u] {
			a, b := out[u], out[v]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					fn(graph.Vertex(u), v, a[i])
					i++
					j++
				}
			}
		}
	}
}

// LocalCounts returns the number of triangles incident to every vertex
// (each triangle contributes to all three corners), the per-vertex quantity
// behind the clustering-coefficient applications in the paper's
// introduction.
func LocalCounts(g *graph.CSR) []uint64 {
	counts := make([]uint64, g.NumVertices())
	ForwardList(g, func(u, v, w graph.Vertex) {
		counts[u]++
		counts[v]++
		counts[w]++
	})
	return counts
}

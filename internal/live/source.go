package live

import (
	"fmt"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/scan"
)

// overlaySource is the scan.Source the engine runs against when querying a
// live graph: it serves the merged oriented adjacency (pinned base CSR ∪
// delta inserts \ delta deletes) entirely from memory. It satisfies the
// same contract as the disk sources — a full pass yields every vertex in
// order with its list split into maxList segments, and ReadEntries serves
// any entry range of the merged layout — so the mgt runners, window loads,
// and large-vertex re-reads work over a live view unchanged. No I/O is
// performed or charged: the overlay's Kind is SourceMem and its counters
// stay zero, matching the semantics of a fully resident store.
type overlaySource struct {
	m  *merged
	io *ioacct.Counter
}

// newOverlaySource wraps a built merged view. The returned source matches
// the core.Options.NewSource signature through liveGraph's closure.
func newOverlaySource(m *merged, cfg scan.Config) *overlaySource {
	c := cfg.Counter
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	return &overlaySource{m: m, io: c}
}

func (s *overlaySource) Handle(c *ioacct.Counter) (scan.Handle, error) {
	return &overlayHandle{m: s.m}, nil
}

func (s *overlaySource) IO() ioacct.Stats    { return s.io.Snapshot() }
func (s *overlaySource) Kind() scan.SourceKind { return scan.SourceMem }
func (s *overlaySource) Close() error        { return nil }

// overlayHandle is one runner's accessor. The scratch buffer holds one
// merged out-list at a time; it is sized to the largest merged degree so a
// pass never reallocates.
type overlayHandle struct {
	m       *merged
	scratch []graph.Vertex
}

func (h *overlayHandle) Scan(maxList int) (scan.Scan, error) {
	// The pass gets a private list buffer: the engine may interleave
	// window loads (ReadEntries) with an in-flight scan on the same
	// handle, and those must not clobber the segment the scan is
	// mid-way through yielding.
	return &overlayScan{
		m:       h.m,
		maxList: maxList,
		scratch: make([]graph.Vertex, 0, h.m.maxMergedDeg),
	}, nil
}

// ReadEntries serves the random-access path: entry positions index the
// synthetic merged layout (m.disk.Offsets), and each touched vertex's
// merged list is materialized and the requested range copied out. Window
// loads read long runs of consecutive vertices, so the per-vertex merge is
// amortized exactly like a sequential scan.
func (h *overlayHandle) ReadEntries(dst []graph.Vertex, pos uint64) error {
	m := h.m
	end := pos + uint64(len(dst))
	if end > m.disk.Meta.AdjEntries {
		return fmt.Errorf("live: ReadEntries [%d,%d) beyond adjacency end %d", pos, end, m.disk.Meta.AdjEntries)
	}
	if len(dst) == 0 {
		return nil
	}
	u := m.disk.VertexAt(pos)
	filled := 0
	for filled < len(dst) {
		list := h.list(u)
		// Clip the vertex's list to the requested range.
		start := uint64(0)
		if off := m.disk.Offsets[u]; pos+uint64(filled) > off {
			start = pos + uint64(filled) - off
		}
		n := copy(dst[filled:], list[start:])
		filled += n
		u++
	}
	return nil
}

func (h *overlayHandle) Close() error { return nil }

// list materializes u's merged out-list into the handle scratch.
func (h *overlayHandle) list(u graph.Vertex) []graph.Vertex {
	if cap(h.scratch) < h.m.maxMergedDeg {
		h.scratch = make([]graph.Vertex, 0, h.m.maxMergedDeg)
	}
	h.scratch = h.m.outList(h.scratch[:0], u)
	return h.scratch
}

// overlayScan is one sequential pass: vertices in order, each merged list
// split into segments of at most maxList entries (maxList <= 0 yields whole
// lists), zero-degree vertices yielding one empty segment — the same
// segmentation contract as graph.SeqScanner.
type overlayScan struct {
	m       *merged
	maxList int
	u       graph.Vertex
	scratch []graph.Vertex
	// off is the next segment start within the current vertex's list;
	// pending marks that the list still has segments to yield.
	off     int
	pending bool
	closed  bool
}

func (s *overlayScan) Next() (graph.Vertex, []graph.Vertex, bool) {
	if s.closed {
		return 0, nil, false
	}
	for {
		if s.pending {
			u := s.u - 1 // the list belongs to the vertex we advanced past
			seg := s.scratch[s.off:]
			if s.maxList > 0 && len(seg) > s.maxList {
				seg = seg[:s.maxList]
			}
			s.off += len(seg)
			if s.off >= len(s.scratch) {
				s.pending = false
			}
			return u, seg, true
		}
		if int(s.u) >= s.m.numVertices() {
			return 0, nil, false
		}
		u := s.u
		s.u++
		s.scratch = s.m.outList(s.scratch[:0], u)
		list := s.scratch
		if len(list) == 0 || s.maxList <= 0 || len(list) <= s.maxList {
			return u, list, true
		}
		s.off = 0
		s.pending = true
	}
}

func (s *overlayScan) Err() error   { return nil }
func (s *overlayScan) Close() error { s.closed = true; return nil }

package live

import (
	"fmt"

	"pdtl/internal/graph"
	"pdtl/internal/vset"
)

// deltaList is one vertex's pending mutations: the neighbors inserted and
// the neighbors deleted relative to the layers below. Both sets are sorted
// and disjoint.
type deltaList struct {
	ins []graph.Vertex
	del []graph.Vertex
}

// delta is one immutable LSM layer: per-vertex sorted insert/delete sets,
// stored undirected (each edge appears under both endpoints, so a future
// base swap can re-orient them under the new snapshot's degree order).
//
// Layer invariants, maintained by the builder against the layers below it
// (base ⊕ lower deltas):
//
//	ins ∩ below = ∅   (an inserted edge is absent below)
//	del ⊆ below       (a deleted edge is present below)
//
// A delta is never mutated after build; ApplyBatch builds a fresh one by
// copy-on-write, so readers holding an old view never see a torn list.
type delta struct {
	lists map[graph.Vertex]*deltaList
	// insEdges and delEdges count undirected edges (each stored twice).
	insEdges int
	delEdges int
	// maxVertex is the largest vertex id any list touches; only meaningful
	// when len(lists) > 0.
	maxVertex graph.Vertex
}

// emptyDelta is the shared zero layer.
var emptyDelta = &delta{lists: map[graph.Vertex]*deltaList{}}

// edges reports the layer's size in undirected edges (inserts + deletes) —
// the compaction-threshold measure.
func (d *delta) edges() int { return d.insEdges + d.delEdges }

func (d *delta) insHas(u, v graph.Vertex) bool {
	l := d.lists[u]
	return l != nil && vset.Contains(l.ins, v)
}

func (d *delta) delHas(u, v graph.Vertex) bool {
	l := d.lists[u]
	return l != nil && vset.Contains(l.del, v)
}

// presentAfter composes the layer on top of the presence below it.
func (d *delta) presentAfter(below bool, u, v graph.Vertex) bool {
	if below {
		return !d.delHas(u, v)
	}
	return d.insHas(u, v)
}

// compose flattens upper on top of lower into one layer with the same
// semantics against lower's base: applying the result is applying lower
// then upper. Used to make one effective delta for the read path and to
// fold a frozen layer back into the active one when a compaction fails.
func compose(lower, upper *delta) *delta {
	if upper == nil || len(upper.lists) == 0 {
		if lower == nil {
			return emptyDelta
		}
		return lower
	}
	if lower == nil || len(lower.lists) == 0 {
		return upper
	}
	b := newBuilder(lower)
	for u, l := range upper.lists {
		for _, v := range l.ins {
			if u > v {
				continue // undirected edge visited once
			}
			// An upper insert of an edge lower deleted cancels the delete;
			// otherwise it is a fresh insert against lower's base.
			if lower.delHas(u, v) {
				b.removeDel(u, v)
			} else {
				b.addIns(u, v)
			}
		}
		for _, v := range l.del {
			if u > v {
				continue
			}
			if lower.insHas(u, v) {
				b.removeIns(u, v)
			} else {
				b.addDel(u, v)
			}
		}
	}
	return b.build()
}

// deltaBuilder accumulates mutations into a copy-on-write clone of a
// delta: the map header is copied up front (O(touched vertices of the
// source)), each vertex's slices only when first touched, so the source
// layer stays immutable for concurrent readers.
type deltaBuilder struct {
	d       delta
	touched map[graph.Vertex]bool
}

func newBuilder(from *delta) *deltaBuilder {
	if from == nil {
		from = emptyDelta
	}
	lists := make(map[graph.Vertex]*deltaList, len(from.lists)+8)
	for v, l := range from.lists {
		lists[v] = l
	}
	return &deltaBuilder{
		d: delta{
			lists:     lists,
			insEdges:  from.insEdges,
			delEdges:  from.delEdges,
			maxVertex: from.maxVertex,
		},
		touched: make(map[graph.Vertex]bool),
	}
}

// listFor returns a privately owned deltaList for v, cloning on first
// touch.
func (b *deltaBuilder) listFor(v graph.Vertex) *deltaList {
	l := b.d.lists[v]
	if l == nil {
		l = &deltaList{}
		b.d.lists[v] = l
		b.touched[v] = true
	} else if !b.touched[v] {
		cp := &deltaList{
			ins: append([]graph.Vertex(nil), l.ins...),
			del: append([]graph.Vertex(nil), l.del...),
		}
		b.d.lists[v] = cp
		b.touched[v] = true
		l = cp
	}
	if v > b.d.maxVertex {
		b.d.maxVertex = v
	}
	return l
}

func (b *deltaBuilder) addIns(u, v graph.Vertex) {
	lu, lv := b.listFor(u), b.listFor(v)
	lu.ins = vset.Insert(lu.ins, v)
	lv.ins = vset.Insert(lv.ins, u)
	b.d.insEdges++
}

func (b *deltaBuilder) removeIns(u, v graph.Vertex) {
	lu, lv := b.listFor(u), b.listFor(v)
	lu.ins = vset.Remove(lu.ins, v)
	lv.ins = vset.Remove(lv.ins, u)
	b.d.insEdges--
}

func (b *deltaBuilder) addDel(u, v graph.Vertex) {
	lu, lv := b.listFor(u), b.listFor(v)
	lu.del = vset.Insert(lu.del, v)
	lv.del = vset.Insert(lv.del, u)
	b.d.delEdges++
}

func (b *deltaBuilder) removeDel(u, v graph.Vertex) {
	lu, lv := b.listFor(u), b.listFor(v)
	lu.del = vset.Remove(lu.del, v)
	lv.del = vset.Remove(lv.del, u)
	b.d.delEdges--
}

func (b *deltaBuilder) insHas(u, v graph.Vertex) bool { return b.d.insHas(u, v) }
func (b *deltaBuilder) delHas(u, v graph.Vertex) bool { return b.d.delHas(u, v) }

// insert records the insertion of (u, v) into this layer, given that the
// edge is absent in the composite up to and including this layer.
func (b *deltaBuilder) insert(u, v graph.Vertex) {
	if b.delHas(u, v) {
		// Present below, deleted in this layer: re-inserting just cancels
		// the pending delete.
		b.removeDel(u, v)
		return
	}
	b.addIns(u, v)
}

// remove records the deletion of (u, v), given that the edge is present in
// the composite up to and including this layer.
func (b *deltaBuilder) remove(u, v graph.Vertex) {
	if b.insHas(u, v) {
		// Inserted in this layer, never compacted: deletion cancels it.
		b.removeIns(u, v)
		return
	}
	b.addDel(u, v)
}

// build freezes the builder into an immutable delta. The builder must not
// be used afterwards.
func (b *deltaBuilder) build() *delta {
	d := b.d
	b.d.lists = nil
	// Drop vertices whose mutations fully cancelled so the merged-view
	// build does not iterate dead entries.
	for v, l := range d.lists {
		if len(l.ins) == 0 && len(l.del) == 0 {
			delete(d.lists, v)
		}
	}
	return &d
}

// Update is one edge mutation in an ApplyBatch call.
type Update struct {
	U, V graph.Vertex
	// Del deletes the edge instead of inserting it.
	Del bool
}

func (u Update) String() string {
	op := "+"
	if u.Del {
		op = "-"
	}
	return fmt.Sprintf("%s(%d,%d)", op, u.U, u.V)
}

// Package live layers mutability on top of PDTL's immutable sorted
// adjacency stores: an LSM-style delta overlay. A Graph wraps a base
// snapshot (an oriented on-disk store with its adjacency pinned in RAM)
// plus up to two in-memory delta layers — an active layer absorbing edge
// insertions and deletions, and a frozen layer being compacted. Queries
// run the unmodified PDTL engine (mgt runners, intersection kernels,
// schedulers) against a merged view served through a scan.Source that
// resolves every read as base ∪ inserts \ deletes; a background compactor
// rewrites base ⊕ frozen into a fresh on-disk store via the external-sort
// ingest pipeline and atomically swaps it in without blocking in-flight
// queries. A bounded-memory streaming estimator (TRIÈST-FD) tracks an
// approximate triangle count per batch for O(1) freshness between exact
// runs.
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/obs"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// Config parameterizes a live graph.
type Config struct {
	// Dir is the working directory for compacted snapshots and temp files.
	// Empty means the directory of the base store.
	Dir string
	// Name labels the graph (snapshot file names, store metadata).
	Name string
	// CompactEdges triggers a background compaction when the active delta
	// reaches this many undirected edges (inserts + deletes). Non-positive
	// disables the size trigger (compaction still runs on CompactNow).
	CompactEdges int
	// CompactAge triggers a compaction when the oldest active-delta
	// mutation is older than this. Zero disables the age trigger. Age is
	// checked at mutation time, not on a timer.
	CompactAge time.Duration
	// StoreFormat is the on-disk format of compacted snapshots (empty
	// means graph.FormatPlain).
	StoreFormat graph.Format
	// MemEdges bounds the external sort memory of compaction builds;
	// non-positive selects core.DefaultMemEdges.
	MemEdges int
	// Workers is the parallelism of compaction orientation; non-positive
	// selects 1.
	Workers int
	// Reservoir is the streaming estimator's edge capacity (non-positive
	// selects the estimator default).
	Reservoir int
	// Seed seeds the estimator's sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MemEdges <= 0 {
		c.MemEdges = core.DefaultMemEdges
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.StoreFormat == "" {
		c.StoreFormat = graph.FormatPlain
	}
	return c
}

// Stats is a point-in-time snapshot of a live graph's state.
type Stats struct {
	// Gen is the compaction generation of the current base snapshot
	// (0 = the store Open was given).
	Gen uint64
	// NumVertices and NumEdges describe the merged live graph.
	NumVertices int
	NumEdges    uint64
	// ActiveEdges and FrozenEdges are the delta layer sizes in undirected
	// edges (inserts + deletes); DeltaEdges is their sum.
	ActiveEdges int
	FrozenEdges int
	DeltaEdges  int
	// Batches and EdgesApplied count accepted mutation batches and the
	// updates they carried.
	Batches      uint64
	EdgesApplied uint64
	// Compactions counts completed compactions; Compacting reports one in
	// flight.
	Compactions uint64
	Compacting  bool
	// Estimate is the streaming triangle estimate and whether it is
	// currently exact (reservoir ≥ live edges + deletion debt).
	Estimate      float64
	EstimateExact bool
	SampledEdges  int
}

// Graph is a mutable triangle-countable graph: an immutable base snapshot
// plus delta layers. All methods are safe for concurrent use; queries
// never block behind mutations or compaction (they capture an immutable
// view and run against it), and mutations never block behind queries.
type Graph struct {
	cfg Config

	mu sync.Mutex
	// cur is the published view; replaced wholesale by mutations and
	// compaction, never mutated in place.
	cur *view
	est *Estimator
	// activeSince is when the oldest mutation of the current active layer
	// arrived (zero when the layer is empty) — the age-trigger clock.
	activeSince time.Time
	compacting  bool
	compactDone *sync.Cond // broadcast when a compaction finishes
	closed      bool

	batches      uint64
	edgesApplied uint64
	compactions  uint64
	// lastCompactErr is the most recent background-compaction failure
	// (surfaced through Stats-adjacent APIs and the next CompactNow).
	lastCompactErr error

	bg sync.WaitGroup
}

// Open wraps the oriented store at base into a live graph. The store is
// not modified; compacted snapshots go to cfg.Dir under cfg.Name.
func Open(base string, cfg Config) (*Graph, error) {
	d, err := graph.Open(base)
	if err != nil {
		return nil, err
	}
	return FromDisk(d, base, cfg)
}

// FromDisk is Open for an already-opened oriented store.
func FromDisk(d *graph.Disk, base string, cfg Config) (*Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		cfg.Name = d.Meta.Name
	}
	snap, err := newBaseSnap(d, base, 0, false, nil)
	if err != nil {
		return nil, err
	}
	est := NewEstimator(cfg.Reservoir, cfg.Seed)
	est.Seed(snap.csr)
	g := &Graph{
		cfg: cfg,
		cur: &view{base: snap, active: emptyDelta},
		est: est,
	}
	g.compactDone = sync.NewCond(&g.mu)
	return g, nil
}

// currentView returns the published immutable view.
func (g *Graph) currentView() *view {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// ApplyBatch applies a sequence of edge updates atomically: either every
// update is applied (in order — a batch may insert an edge and delete it
// again) or none is, with the first invalid update identified in the
// error. Inserting an existing edge, deleting a missing one, and
// self-loops are invalid. Inserts may reference vertices beyond the
// current graph; they come into existence with the edge.
func (g *Graph) ApplyBatch(updates []Update) error {
	if len(updates) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("live: graph is closed")
	}
	cur := g.cur
	b := newBuilder(cur.active)
	for i, up := range updates {
		if up.U == up.V {
			return fmt.Errorf("live: batch[%d]: self-loop %v", i, up)
		}
		// Presence below the active layer is fixed for the whole batch;
		// the builder carries the batch's own effect on top of it.
		below := cur.base.hasEdge(up.U, up.V)
		if cur.frozen != nil {
			below = cur.frozen.presentAfter(below, up.U, up.V)
		}
		present := b.d.presentAfter(below, up.U, up.V)
		if up.Del {
			if !present {
				return fmt.Errorf("live: batch[%d]: delete of missing edge %v", i, up)
			}
			b.remove(up.U, up.V)
		} else {
			if present {
				return fmt.Errorf("live: batch[%d]: insert of existing edge %v", i, up)
			}
			b.insert(up.U, up.V)
		}
	}
	wasEmpty := cur.active.edges() == 0
	g.cur = &view{base: cur.base, frozen: cur.frozen, active: b.build()}
	if wasEmpty && g.cur.active.edges() > 0 {
		g.activeSince = time.Now()
	}
	g.batches++
	g.edgesApplied += uint64(len(updates))
	// The estimator consumes the raw update stream (validated above, so
	// every insert is new and every delete was live).
	for _, up := range updates {
		if up.Del {
			g.est.Delete(up.U, up.V)
		} else {
			g.est.Insert(up.U, up.V)
		}
	}
	g.maybeCompactLocked()
	return nil
}

// maybeCompactLocked starts a background compaction if a trigger fires.
// Caller holds g.mu.
func (g *Graph) maybeCompactLocked() {
	if g.compacting || g.cur.active.edges() == 0 {
		return
	}
	size := g.cfg.CompactEdges > 0 && g.cur.active.edges() >= g.cfg.CompactEdges
	age := g.cfg.CompactAge > 0 && !g.activeSince.IsZero() &&
		time.Since(g.activeSince) >= g.cfg.CompactAge
	if !size && !age {
		return
	}
	g.startCompactionLocked()
}

// startCompactionLocked freezes the active layer and launches the
// background compactor. Caller holds g.mu; g.compacting must be false and
// the active layer non-empty.
func (g *Graph) startCompactionLocked() {
	frozen := compose(g.cur.frozen, g.cur.active)
	g.cur = &view{base: g.cur.base, frozen: frozen, active: emptyDelta}
	g.activeSince = time.Time{}
	g.compacting = true
	base := g.cur.base
	g.bg.Add(1)
	go func() {
		defer g.bg.Done()
		g.runCompaction(context.Background(), base, frozen)
	}()
}

// CompactNow synchronously compacts all pending delta into a fresh
// snapshot. If a background compaction is in flight it waits for it, then
// compacts any delta that accumulated meanwhile. A no-op (nil) when the
// delta is empty.
func (g *Graph) CompactNow(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	for g.compacting {
		g.compactDone.Wait()
	}
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("live: graph is closed")
	}
	if g.cur.deltaEdges() == 0 {
		err := g.lastCompactErr
		g.lastCompactErr = nil
		g.mu.Unlock()
		return err
	}
	cur := obs.CursorFrom(ctx)
	fsp := cur.Begin(obs.SpanFreeze)
	frozen := compose(g.cur.frozen, g.cur.active)
	g.cur = &view{base: g.cur.base, frozen: frozen, active: emptyDelta}
	g.activeSince = time.Time{}
	g.compacting = true
	base := g.cur.base
	g.mu.Unlock()
	cur.SetAttr(fsp, "delta_edges", int64(frozen.edges()))
	cur.End(fsp)

	g.runCompaction(ctx, base, frozen)

	g.mu.Lock()
	err := g.lastCompactErr
	g.lastCompactErr = nil
	g.mu.Unlock()
	return err
}

// Count runs the exact PDTL engine over the current live view and returns
// the run result. The view is captured once; mutations and compactions
// that land mid-run do not affect it. Options are honored except for the
// scan source (the overlay serves everything from memory) and the Cost
// balancing strategy (its calibration scan needs a physical store; the
// live path falls back to InDegree).
func (g *Graph) Count(ctx context.Context, opt core.Options) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	v := g.currentView()
	m, err := v.merged()
	if err != nil {
		return nil, err
	}
	start := time.Now()

	strategy := opt.Strategy
	if strategy == balance.Cost {
		strategy = balance.InDegree
	}
	in := balance.Inputs{Offsets: m.disk.Offsets, OutDeg: m.disk.Degrees, InDeg: m.inDeg}
	res := &core.Result{OrientedBase: m.disk.Base, Sched: opt.Sched}
	var plan balance.Plan
	if opt.Sched == sched.Stealing {
		perWorker := opt.Chunks
		if perWorker <= 0 {
			perWorker = sched.DefaultChunksPerWorker
		}
		plan, err = balance.SplitChunks(in, workersFor(opt), perWorker, strategy)
	} else {
		plan, err = balance.SplitInputs(in, workersFor(opt), strategy)
	}
	if err != nil {
		return nil, err
	}
	res.Plan = plan

	// The overlay replaces the run's scan source; the engine, runners, and
	// kernels are the stock ones.
	opt.Strategy = strategy
	opt.Scan = scan.SourceMem
	opt.NewSource = func(kind scan.SourceKind, d *graph.Disk, cfg scan.Config) (scan.Source, error) {
		return newOverlaySource(m, cfg), nil
	}
	if opt.Sched == sched.Stealing {
		res.Workers, res.ChunkStats, res.SourceIO, err = core.RunChunks(ctx, m.disk, plan.Ranges, opt)
	} else {
		res.Workers, res.SourceIO, err = core.RunRanges(ctx, m.disk, plan.Ranges, opt)
	}
	if err != nil {
		return nil, err
	}
	for _, w := range res.Workers {
		res.Triangles += w.Stats.Triangles
	}
	res.Scan = scan.SourceMem
	res.CalcTime = time.Since(start)
	res.TotalTime = res.CalcTime
	return res, nil
}

func workersFor(opt core.Options) int {
	if opt.Workers > 0 {
		return opt.Workers
	}
	return 1
}

// HasEdge reports whether the undirected edge (u, v) is live.
func (g *Graph) HasEdge(u, v graph.Vertex) bool {
	return g.currentView().present(u, v)
}

// Estimate returns the streaming triangle estimate and whether it is
// currently exact.
func (g *Graph) Estimate() (est float64, exact bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.est.Estimate(), g.est.Exact()
}

// Stats snapshots the graph's state.
func (g *Graph) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.cur
	st := Stats{
		Gen:           cur.base.gen,
		ActiveEdges:   cur.active.edges(),
		FrozenEdges:   cur.frozenEdges(),
		DeltaEdges:    cur.deltaEdges(),
		Batches:       g.batches,
		EdgesApplied:  g.edgesApplied,
		Compactions:   g.compactions,
		Compacting:    g.compacting,
		Estimate:      g.est.Estimate(),
		EstimateExact: g.est.Exact(),
		SampledEdges:  g.est.SampledEdges(),
		NumEdges:      g.est.LiveEdges(),
	}
	st.NumVertices = cur.base.disk.NumVertices()
	eff := compose(cur.frozen, cur.active)
	if len(eff.lists) > 0 && int(eff.maxVertex)+1 > st.NumVertices {
		st.NumVertices = int(eff.maxVertex) + 1
	}
	return st
}

// Close waits for any in-flight compaction and marks the graph closed.
// The current snapshot's files are left on disk (they are the data).
func (g *Graph) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	g.bg.Wait()
	return nil
}

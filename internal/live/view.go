package live

import (
	"fmt"
	"sync"

	"pdtl/internal/graph"
	"pdtl/internal/orient"
	"pdtl/internal/vset"
)

// baseSnap is one immutable on-disk snapshot of the graph: the opened
// oriented store plus the in-memory state the live layer derives from it
// once — the pinned oriented adjacency (membership checks and the overlay
// read path), the undirected degrees (the frozen rank that tells the
// overlay which direction a delta edge is stored in), and the
// post-orientation in-degrees (load balancing). A live graph pins ~4 bytes
// per directed edge in RAM on top of the store; that is the price of
// serving merged reads and validating mutations without disk seeks.
type baseSnap struct {
	disk *graph.Disk
	base string // oriented store path
	// csr is the pinned oriented adjacency (csr.Neighbors(u) = N+(u)).
	csr *graph.CSR
	// undirDeg[v] = d_G(v) (out + in of the oriented store) — the degree
	// the orientation ranked vertices by, reconstructed exactly.
	undirDeg []uint32
	// inDeg[v] = d_G(v) − d_G*(v), the load balancer's weight.
	inDeg []uint32
	// gen is the compaction generation (0 = the store OpenLive was given).
	gen uint64
	// owned snapshots (gen ≥ 1) were built by the compactor, which deletes
	// them when they are replaced; the user's original store never is.
	owned bool
	// files are the paths to remove when an owned snapshot retires.
	files []string
}

// newBaseSnap pins the oriented store d into a snapshot.
func newBaseSnap(d *graph.Disk, base string, gen uint64, owned bool, files []string) (*baseSnap, error) {
	if !d.Meta.Oriented {
		return nil, fmt.Errorf("live: store %s is not oriented", base)
	}
	csr, err := d.LoadCSR()
	if err != nil {
		return nil, err
	}
	n := d.NumVertices()
	undirDeg := make([]uint32, n)
	inDeg := make([]uint32, n)
	for v := 0; v < n; v++ {
		undirDeg[v] = d.Degrees[v]
	}
	for _, w := range csr.Adj {
		undirDeg[w]++
		inDeg[w]++
	}
	return &baseSnap{
		disk:     d,
		base:     base,
		csr:      csr,
		undirDeg: undirDeg,
		inDeg:    inDeg,
		gen:      gen,
		owned:    owned,
		files:    files,
	}, nil
}

// rankLess reports u ≺ v under the snapshot's frozen degree order —
// orient.Less over the base undirected degrees, with vertices beyond the
// snapshot (created by delta inserts) ranked as degree 0. The base store
// holds edge (u, v) in u's out-list exactly when rankLess(u, v), so delta
// edges oriented by the same rank merge consistently.
func (b *baseSnap) rankLess(u, v graph.Vertex) bool {
	du, dv := b.degOf(u), b.degOf(v)
	if du != dv {
		return du < dv
	}
	return u < v
}

func (b *baseSnap) degOf(v graph.Vertex) uint32 {
	if int(v) < len(b.undirDeg) {
		return b.undirDeg[v]
	}
	return 0
}

// out returns u's base out-list (nil beyond the snapshot).
func (b *baseSnap) out(u graph.Vertex) []graph.Vertex {
	if int(u) >= b.csr.NumVertices() {
		return nil
	}
	return b.csr.Neighbors(u)
}

// hasEdge reports whether the undirected edge (u, v) is in the snapshot:
// the oriented store holds it under the rank-smaller endpoint.
func (b *baseSnap) hasEdge(u, v graph.Vertex) bool {
	if b.rankLess(v, u) {
		u, v = v, u
	}
	return vset.Contains(b.out(u), v)
}

// view is one immutable published state of the live graph: a base snapshot
// plus up to two delta layers — frozen (being compacted, nil otherwise)
// and active (absorbing mutations). Queries capture a view pointer and
// work off it unlocked; mutations and compaction publish fresh views.
type view struct {
	base   *baseSnap
	frozen *delta // nil unless a compaction is in flight
	active *delta

	// merged is the lazily built overlay (synthetic disk + oriented delta
	// lists); built at most once per view, by the first query.
	mergedOnce sync.Once
	mergedView *merged
	mergedErr  error
}

// deltaEdges reports the total delta size (both layers, undirected
// inserts + deletes) — the /metrics gauge and compaction trigger measure.
func (v *view) deltaEdges() int { return v.frozenEdges() + v.active.edges() }

func (v *view) frozenEdges() int {
	if v.frozen == nil {
		return 0
	}
	return v.frozen.edges()
}

// present reports whether the undirected edge (u, v) exists in the view:
// base presence composed through the frozen and active layers.
func (v *view) present(u, w graph.Vertex) bool {
	p := v.base.hasEdge(u, w)
	if v.frozen != nil {
		p = v.frozen.presentAfter(p, u, w)
	}
	return v.active.presentAfter(p, u, w)
}

// merged returns the view's overlay, building it on first use.
func (v *view) merged() (*merged, error) {
	v.mergedOnce.Do(func() {
		v.mergedView, v.mergedErr = buildMerged(v.base, compose(v.frozen, v.active))
	})
	return v.mergedView, v.mergedErr
}

// merged is the overlay the engine runs against: a synthetic in-memory
// graph.Disk describing the merged oriented graph (degrees, offsets,
// meta), plus the per-vertex oriented insert/delete lists the scan source
// applies on top of the pinned base adjacency. Everything here is
// immutable once built.
type merged struct {
	base *baseSnap
	// eff is the composed (frozen ⊕ active) delta the overlay was built
	// from, kept for the compactor's edge streaming.
	eff *delta
	// disk is the synthetic merged store: real Degrees/Offsets/Meta, no
	// files behind it — only the overlay source ever reads through it.
	disk *graph.Disk
	// outIns[u] / outDel[u] are the delta edges oriented u → v by the base
	// rank: sorted, outIns disjoint from base out-lists, outDel a subset
	// of them.
	outIns map[graph.Vertex][]graph.Vertex
	outDel map[graph.Vertex][]graph.Vertex
	// inDeg is the merged post-orientation in-degree array (load
	// balancing).
	inDeg []uint32
	// maxMergedDeg bounds any merged out-list (scratch sizing).
	maxMergedDeg int
}

// buildMerged computes the overlay for base ⊕ eff. Cost: O(n + |delta|)
// plus the prefix sums — linear passes only, done once per published view
// on first query.
func buildMerged(base *baseSnap, eff *delta) (*merged, error) {
	baseN := base.disk.NumVertices()
	n := baseN
	if len(eff.lists) > 0 && int(eff.maxVertex)+1 > n {
		n = int(eff.maxVertex) + 1
	}

	outIns := make(map[graph.Vertex][]graph.Vertex, len(eff.lists))
	outDel := make(map[graph.Vertex][]graph.Vertex, len(eff.lists))
	for u, l := range eff.lists {
		var ins, del []graph.Vertex
		for _, v := range l.ins {
			if base.rankLess(u, v) {
				ins = append(ins, v)
			}
		}
		for _, v := range l.del {
			if base.rankLess(u, v) {
				del = append(del, v)
			}
		}
		if len(ins) > 0 {
			outIns[u] = ins
		}
		if len(del) > 0 {
			outDel[u] = del
		}
	}

	degrees := make([]uint32, n)
	inDeg := make([]uint32, n)
	copy(inDeg, base.inDeg)
	var adjEntries uint64
	var maxOut uint32
	maxMerged := 0
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		u := graph.Vertex(v)
		d := 0
		if v < baseN {
			d = int(base.disk.Degrees[v])
		}
		d += len(outIns[u]) - len(outDel[u])
		if d < 0 {
			return nil, fmt.Errorf("live: vertex %d merged out-degree %d < 0 (delta invariant broken)", v, d)
		}
		degrees[v] = uint32(d)
		offsets[v] = adjEntries
		adjEntries += uint64(d)
		if uint32(d) > maxOut {
			maxOut = uint32(d)
		}
		if d > maxMerged {
			maxMerged = d
		}
		for _, w := range outIns[u] {
			inDeg[w]++
		}
		for _, w := range outDel[u] {
			if inDeg[w] == 0 {
				return nil, fmt.Errorf("live: vertex %d merged in-degree < 0 (delta invariant broken)", w)
			}
			inDeg[w]--
		}
	}
	offsets[n] = adjEntries

	numEdges := base.disk.Meta.NumEdges + uint64(eff.insEdges) - uint64(eff.delEdges)
	disk := &graph.Disk{
		Meta: graph.Meta{
			Name:         base.disk.Meta.Name + "+delta",
			NumVertices:  int64(n),
			NumEdges:     numEdges,
			AdjEntries:   adjEntries,
			Oriented:     true,
			MaxDegree:    base.disk.Meta.MaxDegree,
			MaxOutDegree: maxOut,
			Format:       graph.FormatPlain,
		},
		Base:    base.base + "+delta",
		Degrees: degrees,
		Offsets: offsets,
	}
	return &merged{
		base:         base,
		eff:          eff,
		disk:         disk,
		outIns:       outIns,
		outDel:       outDel,
		inDeg:        inDeg,
		maxMergedDeg: maxMerged,
	}, nil
}

// outList appends vertex u's merged out-list (base ∪ ins \ del, sorted) to
// dst and returns it.
func (m *merged) outList(dst []graph.Vertex, u graph.Vertex) []graph.Vertex {
	return vset.Merge(dst, m.base.out(u), m.outIns[u], m.outDel[u])
}

// numVertices of the merged graph.
func (m *merged) numVertices() int { return m.disk.NumVertices() }

// rank order sanity: orient.Less over the original degrees must match the
// snapshot reconstruction — referenced here so the dependency is explicit.
var _ = orient.Less

package live

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pdtl/internal/baseline"
	"pdtl/internal/core"
	"pdtl/internal/extsort"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// writeOriented writes g and its orientation under dir, returning the
// oriented base path.
func writeOriented(t *testing.T, dir string, g *graph.CSR, format graph.Format) string {
	t.Helper()
	src := filepath.Join(dir, "g")
	dst := src + ".oriented"
	if err := graph.WriteCSR(src, "g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := orient.OrientFormat(src, dst, 2, format); err != nil {
		t.Fatal(err)
	}
	return dst
}

// edgeSet tracks the reference graph as a set of canonical edges.
type edgeSet map[[2]graph.Vertex]bool

func canon(u, v graph.Vertex) [2]graph.Vertex {
	if u > v {
		u, v = v, u
	}
	return [2]graph.Vertex{u, v}
}

func setFromCSR(g *graph.CSR) edgeSet {
	s := edgeSet{}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			s[canon(graph.Vertex(u), v)] = true
		}
	}
	return s
}

// csr materializes the set as an undirected CSR.
func (s edgeSet) csr(t *testing.T) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	n := 1
	for e := range s {
		edges = append(edges, graph.Edge{U: uint32(e[0]), V: uint32(e[1])})
		if int(e[1])+1 > n {
			n = int(e[1]) + 1
		}
		if int(e[0])+1 > n {
			n = int(e[0]) + 1
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomBatch builds a valid batch of size k against s, mutating s to the
// post-batch state. maxV bounds vertex ids (beyond the base graph to
// exercise vertex creation).
func randomBatch(rng *rand.Rand, s edgeSet, k, maxV int) []Update {
	var batch []Update
	for len(batch) < k {
		u := graph.Vertex(rng.Intn(maxV))
		v := graph.Vertex(rng.Intn(maxV))
		if u == v {
			continue
		}
		e := canon(u, v)
		if s[e] {
			if rng.Intn(3) == 0 { // delete a third of the time we hit a live edge
				batch = append(batch, Update{U: u, V: v, Del: true})
				delete(s, e)
			}
		} else {
			batch = append(batch, Update{U: u, V: v})
			s[e] = true
		}
	}
	return batch
}

func countLive(t *testing.T, g *Graph, opt core.Options) uint64 {
	t.Helper()
	res, err := g.Count(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.Triangles
}

func TestLiveChurnCrosscheck(t *testing.T) {
	for _, format := range []graph.Format{graph.FormatPlain, graph.FormatCompressed} {
		t.Run(string(format), func(t *testing.T) {
			g0, err := gen.PowerLaw(200, 1500, 2.2, 5)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			base := writeOriented(t, dir, g0, format)
			lg, err := Open(base, Config{Dir: dir, Name: "churn", StoreFormat: format, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer lg.Close()

			ref := setFromCSR(g0)
			if got, want := countLive(t, lg, core.Options{Workers: 2}), baseline.Forward(g0); got != want {
				t.Fatalf("pre-churn count = %d want %d", got, want)
			}

			rng := rand.New(rand.NewSource(17))
			for round := 0; round < 12; round++ {
				batch := randomBatch(rng, ref, 40, 220)
				if err := lg.ApplyBatch(batch); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				want := baseline.Forward(ref.csr(t))
				got := countLive(t, lg, core.Options{Workers: 2})
				if got != want {
					t.Fatalf("round %d: live count = %d want %d", round, got, want)
				}
				if est, exact := lg.Estimate(); !exact || uint64(est+0.5) != want {
					t.Fatalf("round %d: estimate = %v (exact=%v) want %d", round, est, exact, want)
				}
				if round == 5 {
					if err := lg.CompactNow(context.Background()); err != nil {
						t.Fatalf("compact: %v", err)
					}
					if st := lg.Stats(); st.Gen != 1 || st.DeltaEdges != 0 {
						t.Fatalf("post-compact stats: %+v", st)
					}
					got := countLive(t, lg, core.Options{Workers: 2, Sched: sched.Stealing})
					if got != want {
						t.Fatalf("post-compact count = %d want %d", got, want)
					}
				}
			}
			if st := lg.Stats(); st.Batches != 12 {
				t.Fatalf("batches = %d", st.Batches)
			}
			// Count-only kernel sweep over the final live view (the delta
			// overlay is non-empty again after the post-compaction rounds):
			// every kernel's closure-free count path must agree with the
			// baseline and with a listing run of the same kernel.
			want := baseline.Forward(ref.csr(t))
			for _, kern := range scan.KernelKinds() {
				got := countLive(t, lg, core.Options{Workers: 2, Kernel: kern})
				if got != want {
					t.Fatalf("count-only kernel %s on live view = %d, want %d", kern, got, want)
				}
				sinks := make([]mgt.Sink, 2)
				for i := range sinks {
					sinks[i] = &mgt.CountSink{}
				}
				listed := countLive(t, lg, core.Options{Workers: 2, Kernel: kern, Sinks: sinks})
				if listed != want {
					t.Fatalf("listing kernel %s on live view = %d, want %d", kern, listed, want)
				}
			}
			// The overlay serves decoded merged lists (it is not a
			// CompressedScan), so even over a compressed base store the
			// count-only run takes the plain pass and its vectorization
			// gauges stay zero — pin that so a future overlay that starts
			// serving encoded payloads shows up here.
			if format == graph.FormatCompressed {
				res, err := lg.Count(context.Background(), core.Options{Workers: 2, Kernel: scan.KernelCompressed})
				if err != nil {
					t.Fatal(err)
				}
				var wordOps uint64
				for _, w := range res.Workers {
					wordOps += w.Stats.WordOps
				}
				if wordOps != 0 {
					t.Errorf("live overlay run reported word_ops = %d; the decoded overlay should do no word-level work", wordOps)
				}
			}
		})
	}
}

func TestApplyBatchAtomicOnInvalid(t *testing.T) {
	g0, err := gen.ErdosRenyi(50, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lg, err := Open(writeOriented(t, dir, g0, graph.FormatPlain), Config{Dir: dir, Name: "atomic"})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	before := countLive(t, lg, core.Options{Workers: 1})

	// Find one present and one absent edge.
	ref := setFromCSR(g0)
	var present, absent [2]graph.Vertex
	for e := range ref {
		present = e
		break
	}
	for u := graph.Vertex(0); ; u++ {
		if !ref[canon(u, u+1)] {
			absent = canon(u, u+1)
			break
		}
	}

	// Valid prefix, invalid tail: nothing must be applied.
	bad := []Update{
		{U: absent[0], V: absent[1]},
		{U: present[0], V: present[1], Del: true},
		{U: present[0], V: present[1], Del: true}, // double delete → invalid
	}
	if err := lg.ApplyBatch(bad); err == nil {
		t.Fatal("want error for invalid batch")
	}
	if got := countLive(t, lg, core.Options{Workers: 1}); got != before {
		t.Fatalf("count after rejected batch = %d want %d", got, before)
	}
	if st := lg.Stats(); st.DeltaEdges != 0 || st.Batches != 0 {
		t.Fatalf("stats after rejected batch: %+v", st)
	}

	// Insert + delete of the same edge inside one batch is valid and nets
	// out.
	ok := []Update{
		{U: absent[0], V: absent[1]},
		{U: absent[0], V: absent[1], Del: true},
	}
	if err := lg.ApplyBatch(ok); err != nil {
		t.Fatal(err)
	}
	if st := lg.Stats(); st.DeltaEdges != 0 {
		t.Fatalf("self-cancelling batch left delta: %+v", st)
	}
}

func TestNewVerticesAndBaseDeletes(t *testing.T) {
	g0, err := gen.TriGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lg, err := Open(writeOriented(t, dir, g0, graph.FormatPlain), Config{Dir: dir, Name: "nv"})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	ref := setFromCSR(g0)
	n := graph.Vertex(g0.NumVertices())

	// Attach a triangle fan on brand-new vertices, and delete every base
	// edge of vertex 0.
	var batch []Update
	for _, e := range [][2]graph.Vertex{{n, n + 1}, {n, n + 2}, {n + 1, n + 2}, {0, n}, {1, n}} {
		batch = append(batch, Update{U: e[0], V: e[1]})
		ref[canon(e[0], e[1])] = true
	}
	for _, v := range g0.Neighbors(0) {
		batch = append(batch, Update{U: 0, V: v, Del: true})
		delete(ref, canon(0, v))
	}
	if err := lg.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(ref.csr(t))
	if got := countLive(t, lg, core.Options{Workers: 2}); got != want {
		t.Fatalf("count = %d want %d", got, want)
	}
	if !lg.HasEdge(n, n+2) || lg.HasEdge(0, g0.Neighbors(0)[0]) {
		t.Fatal("HasEdge disagrees with applied batch")
	}

	// Compaction must survive the shape change (new vertices, emptied
	// vertex) and keep the count.
	if err := lg.CompactNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := countLive(t, lg, core.Options{Workers: 2}); got != want {
		t.Fatalf("post-compact count = %d want %d", got, want)
	}
}

// TestCompactionByteEquivalence pins the compaction determinism contract:
// the compacted snapshot is byte-for-byte the store a from-scratch
// external-sort build of the merged edge list produces.
func TestCompactionByteEquivalence(t *testing.T) {
	for _, format := range []graph.Format{graph.FormatPlain, graph.FormatCompressed} {
		t.Run(string(format), func(t *testing.T) {
			g0, err := gen.PowerLaw(150, 900, 2.0, 21)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			lg, err := Open(writeOriented(t, dir, g0, format), Config{Dir: dir, Name: "eq", StoreFormat: format})
			if err != nil {
				t.Fatal(err)
			}
			defer lg.Close()

			ref := setFromCSR(g0)
			rng := rand.New(rand.NewSource(4))
			if err := lg.ApplyBatch(randomBatch(rng, ref, 120, 170)); err != nil {
				t.Fatal(err)
			}
			if err := lg.CompactNow(context.Background()); err != nil {
				t.Fatal(err)
			}

			// From-scratch build of the same edge set, same name.
			edgeFile := filepath.Join(dir, "ref.edges")
			f, err := os.Create(edgeFile)
			if err != nil {
				t.Fatal(err)
			}
			var rec [extsort.EdgeBytes]byte
			for e := range ref {
				binary.LittleEndian.PutUint32(rec[0:], uint32(e[0]))
				binary.LittleEndian.PutUint32(rec[4:], uint32(e[1]))
				if _, err := f.Write(rec[:]); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			refBase := filepath.Join(dir, "refstore")
			if err := extsort.BuildStoreFormat(context.Background(), edgeFile, refBase, "eq", core.DefaultMemEdges, format, nil); err != nil {
				t.Fatal(err)
			}

			snapBase := filepath.Join(dir, "eq.gen1")
			for _, suffix := range storeSuffixes(format) {
				want, err := os.ReadFile(refBase + suffix)
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(snapBase + suffix)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s differs from from-scratch build (%d vs %d bytes)", suffix, len(got), len(want))
				}
			}
		})
	}
}

func storeSuffixes(format graph.Format) []string {
	if format == graph.FormatCompressed {
		return []string{".meta", ".deg", ".cadj", ".cidx"}
	}
	return []string{".meta", ".deg", ".adj"}
}

// TestConcurrentChurnQueryCompact drives mutations, exact queries, and
// compactions concurrently (the -race CI job runs this package). Every
// query must observe the exact count of some state the mutator published
// between the query's start and end — views are immutable snapshots, so a
// torn read would surface as a count matching no state.
func TestConcurrentChurnQueryCompact(t *testing.T) {
	g0, err := gen.PowerLaw(120, 700, 2.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lg, err := Open(writeOriented(t, dir, g0, graph.FormatPlain),
		Config{Dir: dir, Name: "conc", CompactEdges: 150})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	// Precompute the batch sequence and the exact count after each batch.
	const rounds = 30
	ref := setFromCSR(g0)
	rng := rand.New(rand.NewSource(13))
	batches := make([][]Update, rounds)
	counts := make([]uint64, rounds+1)
	counts[0] = baseline.Forward(g0)
	for i := 0; i < rounds; i++ {
		batches[i] = randomBatch(rng, ref, 25, 140)
		counts[i+1] = baseline.Forward(ref.csr(t))
	}

	var applied atomic.Int64 // index into counts of the latest published state
	var wg sync.WaitGroup
	stop := make(chan struct{})
	mutatorDone := make(chan struct{})

	wg.Add(1)
	go func() { // mutator (auto-compaction fires via CompactEdges)
		defer wg.Done()
		defer close(mutatorDone)
		for i := 0; i < rounds; i++ {
			if err := lg.ApplyBatch(batches[i]); err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
			applied.Store(int64(i + 1))
		}
	}()

	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() { // queriers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := applied.Load()
				res, err := lg.Count(context.Background(), core.Options{Workers: 2})
				if err != nil {
					t.Errorf("count: %v", err)
					return
				}
				hi := applied.Load()
				ok := false
				for j := lo; j <= hi; j++ {
					if res.Triangles == counts[j] {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("count %d matches no state in [%d,%d]", res.Triangles, lo, hi)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() { // explicit compactor racing the auto one
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := lg.CompactNow(context.Background()); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	// Stop the queriers once the mutator finishes.
	<-mutatorDone
	close(stop)
	wg.Wait()

	if err := lg.CompactNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := countLive(t, lg, core.Options{Workers: 2}); got != counts[rounds] {
		t.Fatalf("final count = %d want %d", got, counts[rounds])
	}
	if st := lg.Stats(); st.Compactions == 0 {
		t.Fatal("no compaction ran")
	}
}

// TestEstimatorApproximate checks the bounded-memory regime: with a
// reservoir far smaller than the graph, the estimate lands within a loose
// relative band of the truth (deterministic seed, so no flake).
func TestEstimatorApproximate(t *testing.T) {
	g0, err := gen.PowerLaw(800, 12000, 2.0, 33)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(3000, 7)
	est.Seed(g0)
	if est.Exact() {
		t.Fatalf("reservoir of 3000 cannot be exact for %d edges", g0.NumEdges())
	}
	truth := float64(baseline.Forward(g0))
	got := est.Estimate()
	if got < truth*0.5 || got > truth*1.5 {
		t.Fatalf("estimate %.0f too far from truth %.0f", got, truth)
	}
}

// TestEstimatorDeletionPairing checks the fully-dynamic path: insert a
// stream, delete part of it, and verify the exact regime recovers when
// everything fits again.
func TestEstimatorDeletionPairing(t *testing.T) {
	g0, err := gen.ErdosRenyi(100, 1200, 2)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(1<<16, 1)
	est.Seed(g0)
	if !est.Exact() {
		t.Fatal("large reservoir should be exact")
	}
	want := float64(baseline.Forward(g0))
	if got := est.Estimate(); got != want {
		t.Fatalf("estimate %v want %v", got, want)
	}
	// Delete a vertex's whole neighborhood and check exactness tracks.
	ref := setFromCSR(g0)
	for _, v := range g0.Neighbors(7) {
		est.Delete(7, v)
		delete(ref, canon(7, v))
	}
	want = float64(baseline.Forward(ref.csr(t)))
	if got := est.Estimate(); got != want {
		t.Fatalf("post-delete estimate %v want %v", got, want)
	}
}

func TestOverlaySourceSegmentation(t *testing.T) {
	g0, err := gen.PowerLaw(100, 1200, 1.8, 12)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lg, err := Open(writeOriented(t, dir, g0, graph.FormatPlain), Config{Dir: dir, Name: "seg"})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	ref := setFromCSR(g0)
	rng := rand.New(rand.NewSource(6))
	if err := lg.ApplyBatch(randomBatch(rng, ref, 60, 110)); err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(ref.csr(t))
	// Tiny MemEdges forces list segmentation and window re-reads through
	// the overlay's Scan and ReadEntries paths.
	if got := countLive(t, lg, core.Options{Workers: 3, MemEdges: 256}); got != want {
		t.Fatalf("segmented count = %d want %d", got, want)
	}
}

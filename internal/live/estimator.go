package live

import (
	"math/rand"

	"pdtl/internal/graph"
	"pdtl/internal/vset"
)

// Estimator maintains a bounded-memory streaming estimate of the triangle
// count under fully-dynamic edge updates — the TRIÈST-FD algorithm of
// De Stefani, Epasto, Riondato & Upfal (arXiv:1602.07424), built on
// random-pairing reservoir sampling (Gemulla et al.) so deletions are
// handled by pairing them with future insertions instead of resampling.
//
// The estimator holds at most Capacity edges. While the stream (plus its
// deletion debt) fits in the reservoir the estimate is exact; beyond that
// it is an unbiased estimate whose variance shrinks with Capacity²/t².
// All randomness comes from a caller-seeded generator, so a replayed churn
// trace reproduces the same estimate bit for bit.
//
// Not safe for concurrent use; the owning Graph serializes access under
// its mutation lock.
type Estimator struct {
	cap int
	rng *rand.Rand

	// edges is the reservoir: sample[i] is the i-th held edge, pos maps an
	// edge to its slot for O(1) removal, adj mirrors the sample as sorted
	// adjacency so the counting step is an O(d) intersection.
	sample []edgeKey
	pos    map[edgeKey]int
	adj    map[graph.Vertex][]graph.Vertex

	// tau counts triangles whose three edges are all in the sample.
	tau float64
	// t is the current number of live edges in the stream.
	t uint64
	// di and do_ are the random-pairing debts: uncompensated deletions of
	// sampled (di) and unsampled (do_) edges, each cancelling one future
	// insertion instead of drawing a fresh sample.
	di, do_ uint64
	scratch []graph.Vertex
}

type edgeKey struct{ u, v graph.Vertex }

func canonEdge(u, v graph.Vertex) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// NewEstimator creates an estimator holding at most capacity edges (a
// non-positive capacity selects 1 << 17 ≈ 131k edges ≈ 3 MiB) with a
// deterministic seed.
func NewEstimator(capacity int, seed int64) *Estimator {
	if capacity <= 0 {
		capacity = 1 << 17
	}
	return &Estimator{
		cap: capacity,
		rng: rand.New(rand.NewSource(seed)),
		pos: make(map[edgeKey]int),
		adj: make(map[graph.Vertex][]graph.Vertex),
	}
}

// Seed feeds the base graph's edges through the estimator as an insertion
// stream. Called once at open, before any updates. An oriented CSR holds
// each edge once; an undirected one holds both directions, of which only
// the canonical one is streamed.
func (e *Estimator) Seed(csr *graph.CSR) {
	for u := 0; u < csr.NumVertices(); u++ {
		for _, v := range csr.Neighbors(graph.Vertex(u)) {
			if !csr.Oriented && graph.Vertex(u) > v {
				continue
			}
			e.Insert(graph.Vertex(u), v)
		}
	}
}

// Insert processes the insertion of edge (u, v).
func (e *Estimator) Insert(u, v graph.Vertex) {
	e.t++
	if e.di+e.do_ > 0 {
		// Random pairing: this insertion compensates an earlier deletion.
		// With probability di/(di+do) the deleted edge was sampled, so the
		// new edge takes the vacated slot.
		if e.rng.Int63n(int64(e.di+e.do_)) < int64(e.di) {
			e.di--
			e.add(u, v)
		} else {
			e.do_--
		}
		return
	}
	if len(e.sample) < e.cap {
		e.add(u, v)
		return
	}
	// Standard reservoir: keep with probability cap/t, evicting a uniform
	// victim.
	if e.rng.Int63n(int64(e.t)) < int64(e.cap) {
		victim := e.sample[e.rng.Intn(len(e.sample))]
		e.remove(victim.u, victim.v)
		e.add(u, v)
	}
}

// Delete processes the deletion of edge (u, v).
func (e *Estimator) Delete(u, v graph.Vertex) {
	e.t--
	if _, ok := e.pos[canonEdge(u, v)]; ok {
		e.remove(u, v)
		e.di++
	} else {
		e.do_++
	}
}

// add puts (u, v) into the reservoir, counting the sample triangles it
// closes.
func (e *Estimator) add(u, v graph.Vertex) {
	e.scratch = vset.Intersect(e.scratch[:0], e.adj[u], e.adj[v])
	e.tau += float64(len(e.scratch))
	k := canonEdge(u, v)
	e.pos[k] = len(e.sample)
	e.sample = append(e.sample, k)
	e.adj[u] = vset.Insert(e.adj[u], v)
	e.adj[v] = vset.Insert(e.adj[v], u)
}

// remove takes (u, v) out of the reservoir, uncounting its sample
// triangles.
func (e *Estimator) remove(u, v graph.Vertex) {
	k := canonEdge(u, v)
	i, ok := e.pos[k]
	if !ok {
		return
	}
	last := len(e.sample) - 1
	e.sample[i] = e.sample[last]
	e.pos[e.sample[i]] = i
	e.sample = e.sample[:last]
	delete(e.pos, k)
	e.adj[u] = vset.Remove(e.adj[u], v)
	e.adj[v] = vset.Remove(e.adj[v], u)
	if len(e.adj[u]) == 0 {
		delete(e.adj, u)
	}
	if len(e.adj[v]) == 0 {
		delete(e.adj, v)
	}
	e.scratch = vset.Intersect(e.scratch[:0], e.adj[u], e.adj[v])
	e.tau -= float64(len(e.scratch))
}

// Estimate returns the current triangle estimate. While the reservoir has
// never dropped an edge (t + deletion debt ≤ capacity) the sample is the
// whole graph and the estimate is exact; otherwise each sampled triangle
// is reweighted by the inverse probability that all three of its edges are
// simultaneously sampled.
func (e *Estimator) Estimate() float64 {
	if e.tau <= 0 {
		return 0
	}
	denomT := float64(e.t + e.di + e.do_)
	s := float64(e.cap)
	if s >= denomT {
		return e.tau // exact regime
	}
	p := 1.0
	for i := 0.0; i < 3; i++ {
		p *= (s - i) / (denomT - i)
	}
	if p <= 0 {
		return e.tau
	}
	return e.tau / p
}

// Exact reports whether the estimate is currently exact (the reservoir
// holds the entire live edge set and no deletion debt is outstanding).
func (e *Estimator) Exact() bool {
	return uint64(e.cap) >= e.t+e.di+e.do_
}

// SampledEdges reports the current reservoir occupancy.
func (e *Estimator) SampledEdges() int { return len(e.sample) }

// LiveEdges reports t, the number of edges currently live in the stream.
func (e *Estimator) LiveEdges() uint64 { return e.t }

package live

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"pdtl/internal/extsort"
	"pdtl/internal/graph"
	"pdtl/internal/obs"
	"pdtl/internal/orient"
)

// runCompaction rewrites base ⊕ frozen into a fresh on-disk snapshot and
// swaps it under the published view. It runs outside g.mu (queries and
// mutations proceed concurrently against the frozen view); only the final
// swap — a pointer exchange — takes the lock. On failure the frozen layer
// is folded back into the active one, so no mutations are lost.
//
// The snapshot is built with the same external-sort ingest pipeline a
// from-scratch load uses (extsort.BuildStoreFormat), which is
// deterministic in the edge set — a compacted store is byte-for-byte
// identical to one built from the merged edge list directly (the
// compaction equivalence tests pin this). Files are built under temporary
// ".building" names and renamed into place, so a half-finished compaction
// never masquerades as a snapshot.
func (g *Graph) runCompaction(ctx context.Context, base *baseSnap, frozen *delta) {
	cur := obs.CursorFrom(ctx)
	bsp := cur.Begin(obs.SpanBuild)
	snap, err := g.buildSnapshot(ctx, base, frozen)
	cur.SetAttr(bsp, "delta_edges", int64(frozen.edges()))
	cur.End(bsp)

	ssp := cur.Begin(obs.SpanSwap)
	defer cur.End(ssp)
	g.mu.Lock()
	defer g.mu.Unlock()
	old := g.cur
	if err != nil {
		// Fold the frozen layer back under whatever active mutations
		// arrived during the attempt; the delta keeps growing but nothing
		// is lost, and the next compaction retries everything.
		g.cur = &view{base: old.base, frozen: nil, active: compose(frozen, old.active)}
		g.lastCompactErr = err
	} else {
		g.cur = &view{base: snap, frozen: nil, active: old.active}
		g.compactions++
		if old.base.owned {
			// Nothing can read the retired snapshot after the swap: queries
			// hold views, and a view pins the whole base in memory — the
			// files are only the durable form. The user's original store
			// (gen 0) is never owned and never removed.
			removeFiles(old.base.files)
		}
	}
	g.compacting = false
	g.compactDone.Broadcast()
}

// buildSnapshot materializes base ⊕ frozen as a new oriented store on disk
// and returns it pinned.
func (g *Graph) buildSnapshot(ctx context.Context, base *baseSnap, frozen *delta) (*baseSnap, error) {
	m, err := buildMerged(base, frozen)
	if err != nil {
		return nil, err
	}
	gen := base.gen + 1
	dir := g.cfg.Dir
	if dir == "" {
		dir = filepath.Dir(base.base)
	}
	snapBase := filepath.Join(dir, fmt.Sprintf("%s.gen%d", g.cfg.Name, gen))

	// 1. Stream the merged oriented adjacency to an edge file. Each
	// oriented edge u→v is one undirected edge of the merged graph, so the
	// file is exactly the graph's edge list (in some order — the ingest
	// pipeline sorts).
	edgeFile := snapBase + ".edges"
	if err := writeMergedEdges(edgeFile, m); err != nil {
		return nil, err
	}
	defer os.Remove(edgeFile)

	// 2. Build the bidirectional store under a temp name, then rename into
	// place.
	building := snapBase + ".building"
	cleanup := func() {
		removeFiles(storeFiles(building, g.cfg.StoreFormat))
		removeFiles(storeFiles(snapBase, g.cfg.StoreFormat))
		removeFiles(storeFiles(snapBase+".oriented", g.cfg.StoreFormat))
		os.Remove(orient.InDegPath(snapBase + ".oriented"))
	}
	if err := extsort.BuildStoreFormat(ctx, edgeFile, building, g.cfg.Name, g.cfg.MemEdges, g.cfg.StoreFormat, nil); err != nil {
		cleanup()
		return nil, fmt.Errorf("live: compaction build: %w", err)
	}
	for _, f := range storeFiles(building, g.cfg.StoreFormat) {
		dst := snapBase + f[len(building):]
		if err := os.Rename(f, dst); err != nil {
			cleanup()
			return nil, fmt.Errorf("live: compaction rename: %w", err)
		}
	}

	// 3. Orient the snapshot (writes the .indeg file the balancer uses).
	orientedBase := snapBase + ".oriented"
	if _, err := orient.OrientFormat(snapBase, orientedBase, g.cfg.Workers, g.cfg.StoreFormat); err != nil {
		cleanup()
		return nil, fmt.Errorf("live: compaction orient: %w", err)
	}

	// 4. Pin the new snapshot.
	d, err := graph.Open(orientedBase)
	if err != nil {
		cleanup()
		return nil, err
	}
	files := append(storeFiles(snapBase, g.cfg.StoreFormat), storeFiles(orientedBase, g.cfg.StoreFormat)...)
	files = append(files, orient.InDegPath(orientedBase))
	snap, err := newBaseSnap(d, orientedBase, gen, true, files)
	if err != nil {
		cleanup()
		return nil, err
	}
	return snap, nil
}

// storeFiles lists the files of a store rooted at base in the given
// format.
func storeFiles(base string, format graph.Format) []string {
	files := []string{graph.MetaPath(base), graph.DegPath(base)}
	if format == graph.FormatCompressed {
		return append(files, graph.CAdjPath(base), graph.CIdxPath(base))
	}
	return append(files, graph.AdjPath(base))
}

func removeFiles(files []string) {
	for _, f := range files {
		os.Remove(f)
	}
}

// writeMergedEdges streams every oriented edge of the merged view to path
// as binary little-endian (u, v) records — the extsort ingest input
// format.
func writeMergedEdges(path string, m *merged) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var rec [extsort.EdgeBytes]byte
	scratch := make([]graph.Vertex, 0, m.maxMergedDeg)
	n := m.numVertices()
	for u := 0; u < n; u++ {
		scratch = m.outList(scratch[:0], graph.Vertex(u))
		binary.LittleEndian.PutUint32(rec[0:], uint32(u))
		for _, v := range scratch {
			binary.LittleEndian.PutUint32(rec[4:], uint32(v))
			if _, err := bw.Write(rec[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

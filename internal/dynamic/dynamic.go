// Package dynamic implements exact incremental triangle counting under
// edge insertions and deletions — the "altering it for dynamic ... triangle
// counting" extension of the paper's conclusion (Section VI).
//
// The counter maintains sorted adjacency sets (the shared internal/vset
// primitives — the same ones the live delta layer is built on); an update
// (u, v) changes the global count by exactly |N(u) ∩ N(v)| (computed before
// insertion / after deletion), so each update costs O(d(u) + d(v)) — the
// same degree-ordered intersection primitive the static algorithms use. It
// also maintains per-vertex triangle counts so downstream metrics (local
// clustering) stay current.
package dynamic

import (
	"fmt"

	"pdtl/internal/graph"
	"pdtl/internal/vset"
)

// Counter is an exact dynamic triangle counter over a mutable simple
// undirected graph. Not safe for concurrent mutation.
type Counter struct {
	adj       map[graph.Vertex][]graph.Vertex
	triangles uint64
	perVertex map[graph.Vertex]uint64
	edges     uint64
	// common is the reusable intersection scratch: every update needs
	// N(u) ∩ N(v), and materializing that per update would put a make+GC
	// on the hottest path of a streaming update workload. The buffer grows
	// to the largest intersection seen and is reused from then on, so
	// steady-state updates allocate nothing (BenchmarkInsert pins this).
	common []graph.Vertex
}

// Update is one edge mutation for ApplyBatch: insert (u, v), or delete it
// when Del is set.
type Update struct {
	U, V graph.Vertex
	Del  bool
}

// New creates an empty counter.
func New() *Counter {
	return &Counter{
		adj:       make(map[graph.Vertex][]graph.Vertex),
		perVertex: make(map[graph.Vertex]uint64),
	}
}

// FromCSR bulk-loads an existing graph.
func FromCSR(g *graph.CSR) *Counter {
	c := New()
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if graph.Vertex(u) < v {
				c.Insert(graph.Vertex(u), v)
			}
		}
	}
	return c
}

// Triangles reports the current exact triangle count.
func (c *Counter) Triangles() uint64 { return c.triangles }

// Edges reports the current edge count.
func (c *Counter) Edges() uint64 { return c.edges }

// VertexTriangles reports the triangles incident to v.
func (c *Counter) VertexTriangles(v graph.Vertex) uint64 { return c.perVertex[v] }

// Degree reports v's current degree.
func (c *Counter) Degree(v graph.Vertex) int { return len(c.adj[v]) }

// HasEdge reports whether the edge (u, v) is present.
func (c *Counter) HasEdge(u, v graph.Vertex) bool {
	return vset.Contains(c.adj[u], v)
}

// Insert adds the undirected edge (u, v). It reports the number of new
// triangles the edge closed, or an error for loops and duplicates.
func (c *Counter) Insert(u, v graph.Vertex) (closed uint64, err error) {
	if u == v {
		return 0, fmt.Errorf("dynamic: self-loop (%d,%d)", u, v)
	}
	posU, present := vset.Search(c.adj[u], v)
	if present {
		return 0, fmt.Errorf("dynamic: duplicate edge (%d,%d)", u, v)
	}
	return c.insertAt(u, v, posU), nil
}

// insertAt applies a validated insertion, with u's insertion position
// already located — the one binary search Insert and ApplyBatch share, so
// the batch path never searches a list twice.
func (c *Counter) insertAt(u, v graph.Vertex, posU int) (closed uint64) {
	for _, w := range c.intersect(u, v) {
		c.perVertex[w]++
	}
	closed = uint64(len(c.common))
	c.triangles += closed
	c.perVertex[u] += closed
	c.perVertex[v] += closed
	c.adj[u] = vset.InsertAt(c.adj[u], posU, v)
	posV, _ := vset.Search(c.adj[v], u)
	c.adj[v] = vset.InsertAt(c.adj[v], posV, u)
	c.edges++
	return closed
}

// Delete removes the undirected edge (u, v). It reports the number of
// triangles destroyed, or an error if the edge does not exist.
func (c *Counter) Delete(u, v graph.Vertex) (opened uint64, err error) {
	posU, present := vset.Search(c.adj[u], v)
	if !present {
		return 0, fmt.Errorf("dynamic: missing edge (%d,%d)", u, v)
	}
	return c.deleteAt(u, v, posU), nil
}

// deleteAt applies a validated deletion (u's position of v already found).
func (c *Counter) deleteAt(u, v graph.Vertex, posU int) (opened uint64) {
	c.adj[u] = vset.RemoveAt(c.adj[u], posU)
	posV, _ := vset.Search(c.adj[v], u)
	c.adj[v] = vset.RemoveAt(c.adj[v], posV)
	for _, w := range c.intersect(u, v) {
		c.perVertex[w]--
	}
	opened = uint64(len(c.common))
	c.triangles -= opened
	c.perVertex[u] -= opened
	c.perVertex[v] -= opened
	c.edges--
	return opened
}

// ApplyBatch applies a sequence of updates, amortizing the per-edge
// overhead: each update does one binary search per endpoint (validation
// position doubles as insertion point) instead of Insert/Delete's two.
// Updates apply in order, so a batch may delete an edge an earlier entry
// of the same batch inserted. The first invalid update (self-loop,
// duplicate insert, missing delete) aborts the batch with everything
// before it applied and its index in the error; closed and opened report
// the triangles the applied prefix created and destroyed.
func (c *Counter) ApplyBatch(updates []Update) (closed, opened uint64, err error) {
	for i, up := range updates {
		if up.U == up.V {
			return closed, opened, fmt.Errorf("dynamic: batch[%d]: self-loop (%d,%d)", i, up.U, up.V)
		}
		pos, present := vset.Search(c.adj[up.U], up.V)
		if up.Del {
			if !present {
				return closed, opened, fmt.Errorf("dynamic: batch[%d]: missing edge (%d,%d)", i, up.U, up.V)
			}
			opened += c.deleteAt(up.U, up.V, pos)
		} else {
			if present {
				return closed, opened, fmt.Errorf("dynamic: batch[%d]: duplicate edge (%d,%d)", i, up.U, up.V)
			}
			closed += c.insertAt(up.U, up.V, pos)
		}
	}
	return closed, opened, nil
}

// intersect merges the sorted neighbor lists of u and v into the counter's
// scratch buffer and returns it. The result is valid until the next update;
// callers that need it afterwards must copy.
func (c *Counter) intersect(u, v graph.Vertex) []graph.Vertex {
	c.common = vset.Intersect(c.common[:0], c.adj[u], c.adj[v])
	return c.common
}

// Package dynamic implements exact incremental triangle counting under
// edge insertions and deletions — the "altering it for dynamic ... triangle
// counting" extension of the paper's conclusion (Section VI).
//
// The counter maintains sorted adjacency sets; an update (u, v) changes the
// global count by exactly |N(u) ∩ N(v)| (computed before insertion / after
// deletion), so each update costs O(d(u) + d(v)) — the same degree-ordered
// intersection primitive the static algorithms use. It also maintains
// per-vertex triangle counts so downstream metrics (local clustering) stay
// current.
package dynamic

import (
	"fmt"

	"pdtl/internal/graph"
)

// Counter is an exact dynamic triangle counter over a mutable simple
// undirected graph. Not safe for concurrent mutation.
type Counter struct {
	adj       map[graph.Vertex][]graph.Vertex
	triangles uint64
	perVertex map[graph.Vertex]uint64
	edges     uint64
	// common is the reusable intersection scratch: every update needs
	// N(u) ∩ N(v), and materializing that per update would put a make+GC
	// on the hottest path of a streaming update workload. The buffer grows
	// to the largest intersection seen and is reused from then on, so
	// steady-state updates allocate nothing (BenchmarkInsert pins this).
	common []graph.Vertex
}

// New creates an empty counter.
func New() *Counter {
	return &Counter{
		adj:       make(map[graph.Vertex][]graph.Vertex),
		perVertex: make(map[graph.Vertex]uint64),
	}
}

// FromCSR bulk-loads an existing graph.
func FromCSR(g *graph.CSR) *Counter {
	c := New()
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if graph.Vertex(u) < v {
				c.Insert(graph.Vertex(u), v)
			}
		}
	}
	return c
}

// Triangles reports the current exact triangle count.
func (c *Counter) Triangles() uint64 { return c.triangles }

// Edges reports the current edge count.
func (c *Counter) Edges() uint64 { return c.edges }

// VertexTriangles reports the triangles incident to v.
func (c *Counter) VertexTriangles(v graph.Vertex) uint64 { return c.perVertex[v] }

// Degree reports v's current degree.
func (c *Counter) Degree(v graph.Vertex) int { return len(c.adj[v]) }

// HasEdge reports whether the edge (u, v) is present.
func (c *Counter) HasEdge(u, v graph.Vertex) bool {
	_, ok := search(c.adj[u], v)
	return ok
}

// Insert adds the undirected edge (u, v). It reports the number of new
// triangles the edge closed, or an error for loops and duplicates.
func (c *Counter) Insert(u, v graph.Vertex) (closed uint64, err error) {
	if u == v {
		return 0, fmt.Errorf("dynamic: self-loop (%d,%d)", u, v)
	}
	if c.HasEdge(u, v) {
		return 0, fmt.Errorf("dynamic: duplicate edge (%d,%d)", u, v)
	}
	for _, w := range c.intersect(u, v) {
		c.perVertex[w]++
	}
	closed = uint64(len(c.common))
	c.triangles += closed
	c.perVertex[u] += closed
	c.perVertex[v] += closed
	c.adj[u] = insertSorted(c.adj[u], v)
	c.adj[v] = insertSorted(c.adj[v], u)
	c.edges++
	return closed, nil
}

// Delete removes the undirected edge (u, v). It reports the number of
// triangles destroyed, or an error if the edge does not exist.
func (c *Counter) Delete(u, v graph.Vertex) (opened uint64, err error) {
	if !c.HasEdge(u, v) {
		return 0, fmt.Errorf("dynamic: missing edge (%d,%d)", u, v)
	}
	c.adj[u] = removeSorted(c.adj[u], v)
	c.adj[v] = removeSorted(c.adj[v], u)
	for _, w := range c.intersect(u, v) {
		c.perVertex[w]--
	}
	opened = uint64(len(c.common))
	c.triangles -= opened
	c.perVertex[u] -= opened
	c.perVertex[v] -= opened
	c.edges--
	return opened, nil
}

// intersect merges the sorted neighbor lists of u and v into the counter's
// scratch buffer and returns it. The result is valid until the next update;
// callers that need it afterwards must copy.
func (c *Counter) intersect(u, v graph.Vertex) []graph.Vertex {
	a, b := c.adj[u], c.adj[v]
	out := c.common[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	c.common = out
	return out
}

func search(list []graph.Vertex, v graph.Vertex) (int, bool) {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(list) && list[lo] == v
}

func insertSorted(list []graph.Vertex, v graph.Vertex) []graph.Vertex {
	pos, _ := search(list, v)
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = v
	return list
}

func removeSorted(list []graph.Vertex, v graph.Vertex) []graph.Vertex {
	pos, ok := search(list, v)
	if !ok {
		return list
	}
	return append(list[:pos], list[pos+1:]...)
}

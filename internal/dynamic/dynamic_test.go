package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

func TestInsertTriangle(t *testing.T) {
	c := New()
	if _, err := c.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	closed, err := c.Insert(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if closed != 1 || c.Triangles() != 1 {
		t.Errorf("closed=%d total=%d, want 1/1", closed, c.Triangles())
	}
	for v := graph.Vertex(0); v < 3; v++ {
		if c.VertexTriangles(v) != 1 {
			t.Errorf("vertex %d count = %d", v, c.VertexTriangles(v))
		}
	}
	if c.Edges() != 3 {
		t.Errorf("edges = %d", c.Edges())
	}
}

func TestDeleteReversesInsert(t *testing.T) {
	c := New()
	c.Insert(0, 1)
	c.Insert(1, 2)
	c.Insert(0, 2)
	opened, err := c.Delete(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opened != 1 || c.Triangles() != 0 {
		t.Errorf("opened=%d total=%d, want 1/0", opened, c.Triangles())
	}
	for v := graph.Vertex(0); v < 3; v++ {
		if c.VertexTriangles(v) != 0 {
			t.Errorf("vertex %d count = %d after delete", v, c.VertexTriangles(v))
		}
	}
}

func TestValidation(t *testing.T) {
	c := New()
	if _, err := c.Insert(1, 1); err == nil {
		t.Error("want error for loop")
	}
	c.Insert(0, 1)
	if _, err := c.Insert(1, 0); err == nil {
		t.Error("want error for duplicate (reversed) edge")
	}
	if _, err := c.Delete(5, 6); err == nil {
		t.Error("want error deleting missing edge")
	}
}

func TestFromCSRMatchesStatic(t *testing.T) {
	g, err := gen.RMAT(9, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := FromCSR(g)
	if want := baseline.Forward(g); c.Triangles() != want {
		t.Errorf("dynamic count %d != static %d", c.Triangles(), want)
	}
	if c.Edges() != g.NumEdges() {
		t.Errorf("edges %d != %d", c.Edges(), g.NumEdges())
	}
	locals := baseline.LocalCounts(g)
	for v, want := range locals {
		if got := c.VertexTriangles(graph.Vertex(v)); got != want {
			t.Fatalf("vertex %d: dynamic %d != static %d", v, got, want)
		}
	}
}

// Property: after any random mix of insertions and deletions, the dynamic
// count equals a from-scratch exact count of the surviving edge set.
func TestRandomUpdatesMatchStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		c := New()
		live := map[graph.Edge]bool{}
		for step := 0; step < 300; step++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			if u == v {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canon()
			if live[e] {
				if _, err := c.Delete(e.U, e.V); err != nil {
					return false
				}
				delete(live, e)
			} else {
				if _, err := c.Insert(e.U, e.V); err != nil {
					return false
				}
				live[e] = true
			}
		}
		edges := make([]graph.Edge, 0, len(live))
		for e := range live {
			edges = append(edges, e)
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			return false
		}
		return c.Triangles() == baseline.Forward(g) && c.Edges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDegreeAndHasEdge(t *testing.T) {
	c := New()
	c.Insert(0, 1)
	c.Insert(0, 2)
	if c.Degree(0) != 2 || c.Degree(1) != 1 || c.Degree(9) != 0 {
		t.Error("degree bookkeeping wrong")
	}
	if !c.HasEdge(1, 0) || c.HasEdge(1, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestApplyBatchMatchesSingleUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 40
	single := New()
	batched := New()
	var batch []Update
	live := map[graph.Edge]bool{}
	for step := 0; step < 600; step++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		up := Update{U: e.U, V: e.V, Del: live[e]}
		if up.Del {
			delete(live, e)
		} else {
			live[e] = true
		}
		batch = append(batch, up)
		if up.Del {
			if _, err := single.Delete(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := single.Insert(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
		if len(batch) == 50 {
			if _, _, err := batched.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if _, _, err := batched.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if batched.Triangles() != single.Triangles() || batched.Edges() != single.Edges() {
		t.Fatalf("batched (t=%d e=%d) != single (t=%d e=%d)",
			batched.Triangles(), batched.Edges(), single.Triangles(), single.Edges())
	}
	for v := graph.Vertex(0); v < graph.Vertex(n); v++ {
		if batched.VertexTriangles(v) != single.VertexTriangles(v) {
			t.Fatalf("vertex %d: %d != %d", v, batched.VertexTriangles(v), single.VertexTriangles(v))
		}
	}
}

func TestApplyBatchAbortsOnInvalid(t *testing.T) {
	c := New()
	closed, _, err := c.ApplyBatch([]Update{
		{U: 0, V: 1},
		{U: 1, V: 2},
		{U: 0, V: 2},
		{U: 0, V: 1}, // duplicate: aborts here
		{U: 3, V: 4}, // never applied
	})
	if err == nil {
		t.Fatal("want error on duplicate insert")
	}
	if closed != 1 || c.Triangles() != 1 || c.Edges() != 3 {
		t.Fatalf("prefix not applied: closed=%d t=%d e=%d", closed, c.Triangles(), c.Edges())
	}
	if c.HasEdge(3, 4) {
		t.Fatal("suffix applied past the error")
	}
	// A batch may delete what it inserted.
	if _, _, err := c.ApplyBatch([]Update{{U: 3, V: 4}, {U: 3, V: 4, Del: true}}); err != nil {
		t.Fatal(err)
	}
	if c.HasEdge(3, 4) {
		t.Fatal("insert+delete should cancel")
	}
}

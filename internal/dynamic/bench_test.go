package dynamic

import (
	"testing"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

// TestUpdateZeroAllocs pins the hot-path contract: once the counter's
// scratch intersection buffer and adjacency capacities are warm, an update
// (delete + re-insert of an edge with many common neighbors) allocates
// nothing.
func TestUpdateZeroAllocs(t *testing.T) {
	c := New()
	const n = 32 // complete graph: every pair has n-2 common neighbors
	for u := graph.Vertex(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if _, err := c.Insert(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 4; i++ { // warm the scratch buffer
		c.Delete(0, 1)
		c.Insert(0, 1)
	}
	avg := testing.AllocsPerRun(200, func() {
		c.Delete(0, 1)
		c.Insert(0, 1)
	})
	if avg != 0 {
		t.Fatalf("steady-state update allocates %.2f objects/op, want 0", avg)
	}
}

// BenchmarkInsert is the steady-state update path a streaming service
// endpoint would hammer: each iteration deletes and re-inserts one existing
// edge of a fixed random graph, so adjacency capacities and the scratch
// buffer are stable and the intersection dominates. Expected: 0 allocs/op.
func BenchmarkInsert(b *testing.B) {
	g, err := gen.ErdosRenyi(512, 8192, 7)
	if err != nil {
		b.Fatal(err)
	}
	c := FromCSR(g)
	var edges [][2]graph.Vertex
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if graph.Vertex(u) < v {
				edges = append(edges, [2]graph.Vertex{graph.Vertex(u), v})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if _, err := c.Delete(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Insert(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
}

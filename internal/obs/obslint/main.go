// Command obslint validates the two machine-readable artifacts the obs
// layer emits, for CI smoke checks:
//
//	obslint metrics <file>   strict Prometheus text-exposition check
//	obslint trace   <file>   Chrome trace_event JSON check
//
// The metrics check requires every sample's family to carry # HELP and
// # TYPE metadata before its first sample, values to parse as floats, and
// histogram families to be internally coherent (cumulative non-decreasing
// buckets, an le="+Inf" bucket equal to _count, _sum and _count present).
// The trace check requires valid JSON in the object form WriteJSON emits
// and, with -span NAME, at least one event with that name (CI asserts
// -span chunk: a trace with no chunk spans means the cursor never reached
// the execution layer). Exit status 0 on pass, 1 on violation, 2 on usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "metrics":
		err = runMetrics(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obslint:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  obslint metrics FILE            validate Prometheus text exposition
  obslint trace [-span NAME] FILE validate Chrome trace_event JSON`)
}

// family is one metric family's accumulated state while scanning.
type family struct {
	help    bool
	typ     string
	samples int
	// histogram pieces, keyed by the full label set minus le (this
	// codebase emits unlabeled histograms, so the key is "").
	buckets []bucket
	sum     *float64
	count   *float64
}

type bucket struct {
	le  float64
	inf bool
	v   float64
}

func runMetrics(args []string) error {
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	fams := map[string]*family{}
	get := func(name string) *family {
		f := fams[name]
		if f == nil {
			f = &family{}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("%s:%d: malformed comment %q (want # HELP/TYPE name text)", args[0], lineNo, line)
			}
			f := get(fields[2])
			if fields[1] == "HELP" {
				f.help = true
			} else {
				if fields[3] != "counter" && fields[3] != "gauge" && fields[3] != "histogram" {
					return fmt.Errorf("%s:%d: unknown type %q", args[0], lineNo, fields[3])
				}
				f.typ = fields[3]
			}
			continue
		}
		series, val, ok := strings.Cut(line, " ")
		if !ok {
			return fmt.Errorf("%s:%d: sample %q has no value", args[0], lineNo, line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("%s:%d: bad value in %q: %v", args[0], lineNo, line, err)
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return fmt.Errorf("%s:%d: unterminated label set in %q", args[0], lineNo, series)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		// Histogram samples attach to the base family, which owns the
		// metadata.
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if bf, ok := fams[base]; ok && bf.typ == "histogram" {
					fam = base
				}
				break
			}
		}
		f, ok := fams[fam]
		if !ok || !f.help || f.typ == "" {
			return fmt.Errorf("%s:%d: sample %q precedes its # HELP/# TYPE metadata", args[0], lineNo, series)
		}
		f.samples++
		if f.typ != "histogram" {
			continue
		}
		switch {
		case name == fam+"_bucket":
			le := ""
			for _, l := range strings.Split(labels, ",") {
				if k, v, ok := strings.Cut(l, "="); ok && k == "le" {
					le = strings.Trim(v, `"`)
				}
			}
			if le == "" {
				return fmt.Errorf("%s:%d: histogram bucket %q has no le label", args[0], lineNo, series)
			}
			b := bucket{v: v, inf: le == "+Inf"}
			if !b.inf {
				if b.le, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("%s:%d: bad le %q: %v", args[0], lineNo, le, err)
				}
			}
			f.buckets = append(f.buckets, b)
		case name == fam+"_sum":
			f.sum = &v
		case name == fam+"_count":
			f.count = &v
		}
	}
	for name, f := range fams {
		if !f.help || f.typ == "" {
			return fmt.Errorf("family %s missing %s", name, map[bool]string{true: "# TYPE", false: "# HELP"}[f.help])
		}
		if f.samples == 0 {
			return fmt.Errorf("family %s has metadata but no samples", name)
		}
		if f.typ != "histogram" {
			continue
		}
		if f.sum == nil || f.count == nil {
			return fmt.Errorf("histogram %s missing _sum or _count", name)
		}
		if len(f.buckets) == 0 {
			return fmt.Errorf("histogram %s has no _bucket samples", name)
		}
		// +Inf sorts last; finite bounds ascending (the renderer emits them
		// in order, but the check should not depend on that).
		sort.SliceStable(f.buckets, func(i, j int) bool {
			if f.buckets[i].inf != f.buckets[j].inf {
				return !f.buckets[i].inf
			}
			return f.buckets[i].le < f.buckets[j].le
		})
		if !f.buckets[len(f.buckets)-1].inf {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", name)
		}
		prev := -1.0
		for _, b := range f.buckets {
			if b.v < prev {
				return fmt.Errorf("histogram %s buckets are not cumulative (%g after %g)", name, b.v, prev)
			}
			prev = b.v
		}
		if inf := f.buckets[len(f.buckets)-1].v; inf != *f.count {
			return fmt.Errorf("histogram %s le=\"+Inf\" bucket %g != _count %g", name, inf, *f.count)
		}
	}
	fmt.Printf("obslint: %s ok (%d families)\n", args[0], len(fams))
	return nil
}

// traceDoc is the object form Trace.WriteJSON emits.
type traceDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	span := fs.String("span", "", "require at least one event with this name")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %v", fs.Arg(0), err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: trace has no events", fs.Arg(0))
	}
	matched := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			return fmt.Errorf("%s: event %q has phase %q, want complete events (X)", fs.Arg(0), ev.Name, ev.Ph)
		}
		if ev.Name == *span {
			matched++
		}
	}
	if *span != "" && matched == 0 {
		return fmt.Errorf("%s: no %q spans among %d events", fs.Arg(0), *span, len(doc.TraceEvents))
	}
	fmt.Printf("obslint: %s ok (%d events, %d %q)\n", fs.Arg(0), len(doc.TraceEvents), matched, *span)
	return nil
}

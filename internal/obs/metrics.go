package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric families render in registration order (stable across scrapes,
// no per-scrape map building or sorting), each with its # HELP / # TYPE
// header in Prometheus text exposition format.

// Registry is a dependency-free Prometheus metric registry: counters,
// gauges, function-backed samples, labeled counter families, and
// fixed-bucket histograms, rendered in text exposition format by
// WriteText.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

type family struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"

	mu      sync.Mutex
	samples []*sample
	byLabel map[string]*sample
}

// sample is one series of a family: exactly one of the value sources is
// set.
type sample struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

func (r *Registry) family(name, help, kind string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		if f.name == name {
			if f.kind != kind {
				panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
			}
			return f
		}
	}
	f := &family{name: name, help: help, kind: kind, byLabel: make(map[string]*sample)}
	r.fams = append(r.fams, f)
	return f
}

func (f *family) add(labels string, s *sample) {
	s.labels = labels
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.byLabel[labels]; ok {
		// Idempotent re-registration hands back the existing series.
		*s = *old
		return
	}
	f.byLabel[labels] = s
	f.samples = append(f.samples, s)
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter")
	s := &sample{c: &Counter{}}
	f.add("", s)
	return s.c
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge")
	s := &sample{g: &Gauge{}}
	f.add("", s)
	return s.g
}

// CounterFunc registers a counter whose value is computed at scrape time
// — the bridge for pre-existing atomic counters that keep their
// increment sites.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, "counter").add("", &sample{fn: fn})
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, "gauge").add("", &sample{fn: fn})
}

// ConstGauge registers a fixed-value labeled gauge — the
// `pdtl_build_info{...} 1` idiom. labels is a rendered label list
// without braces, e.g. `go_version="go1.24"`.
func (r *Registry) ConstGauge(name, help, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	val := v
	r.family(name, help, "gauge").add(labels, &sample{fn: func() float64 { return val }})
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	f     *family
	label string

	mu   sync.Mutex
	kids map[string]*Counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, "counter"), label: label, kids: make(map[string]*Counter)}
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[value]; ok {
		return c
	}
	s := &sample{c: &Counter{}}
	v.f.add(fmt.Sprintf("{%s=\"%s\"}", v.label, escapeLabel(value)), s)
	v.kids[value] = s.c
	return s.c
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// DefDurationBuckets are the histogram bounds for latency metrics, in
// seconds (the Prometheus client default buckets).
var DefDurationBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// DefSizeBuckets are histogram bounds for count-valued metrics
// (mutation batch sizes and the like).
var DefSizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket histogram: cumulative-on-render bucket
// counts, an exact float64 sum, observed with two atomic adds and a CAS
// loop. All methods are nil-receiver safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

// Histogram registers a histogram with the given bucket upper bounds
// (must be sorted ascending; nil selects DefDurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
	}
	f := r.family(name, help, "histogram")
	s := &sample{h: &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}}
	f.add("", s)
	return s.h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound ≥ v: le-semantics puts v in that bucket (inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports total observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns per-bucket counts (non-cumulative) read once, so a
// render is internally coherent: the +Inf cumulative count equals the
// rendered _count by construction.
func (h *Histogram) snapshot() []uint64 {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts
}

// WriteText renders the registry in Prometheus text exposition format:
// families in registration order, each prefixed with # HELP and # TYPE.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		samples := make([]*sample, len(f.samples))
		copy(samples, f.samples)
		f.mu.Unlock()
		// A labeled family with no series yet is omitted entirely —
		// metadata with zero samples is what the standard client emits for
		// nothing, and strict scrapers flag it.
		if len(samples) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range samples {
			if err := writeSample(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, s *sample) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.g.Value())
		return err
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.fn()))
		return err
	case s.h != nil:
		counts := s.h.snapshot()
		var cum uint64
		for i, b := range s.h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(s.h.Sum()), name, cum); err != nil {
			return err
		}
		return nil
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchyAndAttrs(t *testing.T) {
	tr := NewTrace(16)
	root := tr.Begin(SpanCount, NoSpan)
	child := tr.Begin(SpanCalc, root)
	tr.SetAttr(child, "lo", 3)
	tr.SetAttr(child, "hi", 9)
	tr.SetWorker(child, 2)
	tr.End(child)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Parent != NoSpan || spans[0].Name != SpanCount {
		t.Errorf("root span = %+v", spans[0])
	}
	c := spans[1]
	if c.Parent != root || c.Name != SpanCalc || c.Worker != 2 {
		t.Errorf("child span = %+v", c)
	}
	if c.NAttr != 2 || c.Attrs[0] != (Attr{"lo", 3}) || c.Attrs[1] != (Attr{"hi", 9}) {
		t.Errorf("child attrs = %v (n=%d)", c.Attrs, c.NAttr)
	}
	if c.Dur < 0 || spans[0].Dur < c.Dur {
		t.Errorf("durations: root %d, child %d", spans[0].Dur, c.Dur)
	}
}

func TestSpanAttrOverflowDropped(t *testing.T) {
	tr := NewTrace(4)
	id := tr.Begin(SpanChunk, NoSpan)
	for i := 0; i < MaxAttrs+3; i++ {
		tr.SetAttr(id, "k", int64(i))
	}
	if n := tr.Spans()[0].NAttr; int(n) != MaxAttrs {
		t.Fatalf("NAttr = %d, want %d", n, MaxAttrs)
	}
}

func TestTraceDropOnFull(t *testing.T) {
	tr := NewTrace(2)
	a := tr.Begin("a", NoSpan)
	b := tr.Begin("b", a)
	c := tr.Begin("c", b)
	if a < 0 || b < 0 {
		t.Fatalf("in-capacity spans rejected: %d %d", a, b)
	}
	if c != NoSpan {
		t.Fatalf("over-capacity span got id %d", c)
	}
	// Dropped-span ids stay safe no-op targets.
	tr.End(c)
	tr.SetAttr(c, "x", 1)
	if tr.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", tr.Dropped())
	}
	if len(tr.Spans()) != 2 {
		t.Fatalf("Spans len = %d, want 2", len(tr.Spans()))
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	id := tr.Begin(SpanChunk, NoSpan)
	if id != NoSpan {
		t.Fatalf("nil trace Begin = %d", id)
	}
	tr.End(id)
	tr.SetAttr(id, "x", 1)
	tr.SetWorker(id, 0)
	if tr.Spans() != nil || tr.Export() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace leaked state")
	}
	tr.Merge(NoSpan, []WireSpan{{Name: "x"}})
}

func TestExportMergeReparents(t *testing.T) {
	worker := NewTrace(8)
	wroot := worker.Begin(SpanNodeCount, NoSpan)
	wchild := worker.Begin(SpanChunk, wroot)
	worker.SetAttr(wchild, "lo", 7)
	worker.End(wchild)
	worker.End(wroot)

	master := NewTrace(8)
	cluster := master.Begin(SpanCluster, NoSpan)
	dispatch := master.Begin(SpanDispatch, cluster)
	master.Merge(dispatch, worker.Export())
	master.End(dispatch)
	master.End(cluster)

	spans := master.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// The worker root now nests under the dispatch span; the worker child
	// keeps its relative parent.
	root, child := spans[2], spans[3]
	if root.Name != SpanNodeCount || root.Parent != dispatch {
		t.Errorf("merged root = %+v, want parent %d", root, dispatch)
	}
	if child.Name != SpanChunk || int(child.Parent) != 2 {
		t.Errorf("merged child = %+v, want parent 2", child)
	}
	if child.NAttr != 1 || child.Attrs[0] != (Attr{"lo", 7}) {
		t.Errorf("merged child attrs = %v", child.Attrs[:child.NAttr])
	}
}

func TestMergePastCapacityDrops(t *testing.T) {
	worker := NewTrace(8)
	a := worker.Begin("a", NoSpan)
	worker.Begin("b", a)
	master := NewTrace(2)
	d := master.Begin(SpanDispatch, NoSpan)
	master.Merge(d, worker.Export()) // only "a" fits
	if got := len(master.Spans()); got != 2 {
		t.Fatalf("Spans len = %d, want 2", got)
	}
	if master.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", master.Dropped())
	}
	if master.Spans()[1].Parent != d {
		t.Fatalf("retained span parent = %d, want %d", master.Spans()[1].Parent, d)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace(4096)
	root := tr.Begin(SpanCalc, NoSpan)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.Begin(SpanChunk, root)
				tr.SetWorker(id, w)
				tr.SetAttr(id, "i", int64(i))
				tr.End(id)
			}
		}(w)
	}
	wg.Wait()
	tr.End(root)
	spans := tr.Spans()
	if len(spans) != 801 {
		t.Fatalf("got %d spans, want 801", len(spans))
	}
	for i, sp := range spans[1:] {
		if sp.Name != SpanChunk || sp.Parent != root || sp.Worker < 0 {
			t.Fatalf("span %d = %+v", i+1, sp)
		}
	}
}

// TestChunkPathZeroAlloc pins the acceptance criterion: span recording on
// the chunk hot path — cursor lookup, Begin, attribute stamps, End — is
// zero allocations per operation.
func TestChunkPathZeroAlloc(t *testing.T) {
	tr := NewTrace(1 << 20)
	root := tr.Begin(SpanCalc, NoSpan)
	ctx := ContextWithCursor(context.Background(), Cursor{T: tr, Span: root, Worker: 3})
	allocs := testing.AllocsPerRun(1000, func() {
		cur := CursorFrom(ctx)
		id := cur.Begin(SpanChunk)
		cur.SetAttr(id, "lo", 1)
		cur.SetAttr(id, "hi", 2)
		cur.SetAttr(id, "cmp_ops", 3)
		cur.SetAttr(id, "io_bytes", 4)
		cur.End(id)
	})
	if allocs != 0 {
		t.Fatalf("chunk-path span recording allocates %.1f allocs/op, want 0", allocs)
	}
}

// Recording against a full slab must stay allocation-free too — a long
// run degrades to dropped spans, not to garbage.
func TestDroppedSpanZeroAlloc(t *testing.T) {
	tr := NewTrace(1)
	tr.Begin("a", NoSpan)
	allocs := testing.AllocsPerRun(100, func() {
		id := tr.Begin(SpanChunk, NoSpan)
		tr.SetAttr(id, "lo", 1)
		tr.End(id)
	})
	if allocs != 0 {
		t.Fatalf("dropped-span recording allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestWriteJSONValidChrome(t *testing.T) {
	tr := NewTrace(8)
	root := tr.Begin(SpanCount, NoSpan)
	ch := tr.Begin(SpanChunk, root)
	tr.SetWorker(ch, 1)
	tr.SetAttr(ch, "lo", 0)
	time.Sleep(time.Millisecond)
	tr.End(ch)
	tr.End(root)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Ph   string             `json:"ph"`
			Ts   float64            `json:"ts"`
			Dur  float64            `json:"dur"`
			Tid  int                `json:"tid"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[1]
	if ev.Name != SpanChunk || ev.Ph != "X" || ev.Tid != 2 || ev.Dur <= 0 {
		t.Errorf("chunk event = %+v", ev)
	}
	if ev.Args["parent"] != 0 {
		t.Errorf("chunk parent arg = %v, want 0", ev.Args["parent"])
	}
	if _, ok := ev.Args["lo"]; !ok {
		t.Errorf("chunk event missing lo attr: %v", ev.Args)
	}
}

func TestCursorDefaults(t *testing.T) {
	cur := CursorFrom(context.Background())
	if cur.T != nil || cur.Span != NoSpan || cur.Worker != -1 {
		t.Fatalf("empty-context cursor = %+v", cur)
	}
	// No-op end to end.
	id := cur.Begin(SpanChunk)
	cur.SetAttr(id, "x", 1)
	cur.End(id)

	tr := NewTrace(4)
	ctx := ContextWithCursor(context.Background(), Cursor{T: tr, Span: NoSpan, Worker: -1})
	got := CursorFrom(ctx)
	if got.T != tr {
		t.Fatal("cursor did not round-trip through context")
	}
	sub := got.Child(got.Begin(SpanCalc)).WithWorker(5)
	id = sub.Begin(SpanChunk)
	sub.End(id)
	spans := tr.Spans()
	if len(spans) != 2 || spans[1].Parent != 0 || spans[1].Worker != 5 {
		t.Fatalf("child cursor spans = %+v", spans)
	}
}

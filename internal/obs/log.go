package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// NewLogger builds a structured logger writing to w. format is "text"
// (the default, logfmt-style) or "json" (one object per line, for log
// shippers). An unknown format is an error so a typo on the command line
// fails loudly instead of silently switching formats.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// DebugHandler serves the net/http/pprof endpoints under /debug/pprof/
// on a private mux (nothing is registered on http.DefaultServeMux, so
// importing this package never leaks profiling into an app's handler).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer binds addr and serves DebugHandler in the background,
// returning the bound address (useful with ":0"). The listener lives for
// the process — debug servers are opt-in and die with the binary.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listen: %w", err)
	}
	go http.Serve(ln, DebugHandler())
	return ln.Addr().String(), nil
}

// WriteFile renders the trace as Chrome trace_event JSON at path
// (atomically enough for a CLI: create, write, close).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

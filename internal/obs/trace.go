// Package obs is PDTL's observability substrate: run traces and
// Prometheus-native metrics, both dependency-free and allocation-free on
// the engine's chunk hot path.
//
// A Trace is a fixed-capacity slab of hierarchical phase spans (handle
// open/orient/plan, per-round scan broadcast, per-chunk runner execution,
// cluster copy/dispatch, live compaction). Span recording is three atomic
// operations and never allocates: Begin claims the next slab slot, End
// stamps the duration, SetAttr fills a fixed-size attribute array. When
// the slab is full, further spans are silently dropped (and counted) —
// a trace is diagnostic, never load-bearing.
//
// Traces cross the cluster wire as []WireSpan (worker-local parent
// indices), re-parented under the master's dispatch span by Merge, and
// serialize as Chrome trace_event JSON (chrome://tracing, Perfetto) via
// WriteJSON. DESIGN.md §13 describes the span model and naming
// conventions.
package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// SpanID indexes a span within its Trace's slab. NoSpan (negative) is the
// absent span: every Trace method accepts it (and a nil *Trace) as a
// no-op, so call sites need no tracing-enabled branches.
type SpanID int32

// NoSpan is the nil span id: a valid parent (meaning "root") and a valid
// no-op target for End/SetAttr.
const NoSpan SpanID = -1

// MaxAttrs is the per-span attribute capacity. Attributes past it are
// dropped; six covers the fullest engine site (a chunk span's range
// bounds plus four counter deltas).
const MaxAttrs = 6

// Span names used across the engine, cluster, and service layers. Tests
// and the trace linter grep for these, so they are constants rather than
// ad-hoc literals.
const (
	SpanCount     = "count"          // one whole run (handle open → result)
	SpanOrient    = "orient"         // orientation preprocessing
	SpanPlan      = "plan"           // load-balance planning
	SpanCalc      = "calc"           // the calculation phase (all runners)
	SpanWorker    = "worker"         // one pool runner's lifetime
	SpanChunk     = "chunk"          // one runner×range execution (hot path)
	SpanScanRound = "scan.round"     // one shared-source broadcast round
	SpanAssemble  = "assemble"       // listing reassembly
	SpanCluster   = "cluster"        // one distributed run (master side)
	SpanCopy      = "copy"           // replica copy to one node
	SpanDispatch  = "dispatch"       // one Count RPC (static) or batch (stealing)
	SpanNodeCount = "node.count"     // a worker node's calculation phase
	SpanFreeze    = "compact.freeze" // live: delta layer freeze
	SpanBuild     = "compact.build"  // live: snapshot build
	SpanSwap      = "compact.swap"   // live: snapshot swap
)

// Attr is one integer-valued span attribute.
type Attr struct {
	Key string
	Val int64
}

// Span is one recorded phase: a named [Start, Start+Dur) interval with a
// parent, an optional worker index, and up to MaxAttrs counters.
type Span struct {
	// Parent is the enclosing span's id, or NoSpan for a root.
	Parent SpanID
	// Worker is the pool runner index the span ran on, or -1.
	Worker int32
	// NAttr is how many of Attrs are set.
	NAttr int32
	// Name is the span's phase name (one of the Span* constants).
	Name string
	// Start is the span's wall-clock start, unix nanoseconds.
	Start int64
	// Dur is the span's duration in nanoseconds (0 until End).
	Dur int64
	// Attrs holds the span's counters (range bounds, stat deltas).
	Attrs [MaxAttrs]Attr
}

// DefaultTraceSpans is the slab capacity NewTrace(0) selects: generous for
// a run's phase/chunk spans (a 16-worker stealing run records ~P·K chunk
// spans plus a handful of phases) while bounding a trace to ~2 MiB.
const DefaultTraceSpans = 1 << 14

// Trace is a fixed-capacity span slab shared by every goroutine of one
// run. All methods are safe for concurrent use and safe on a nil
// receiver; reading the recorded spans (Spans, Export, WriteJSON) is only
// consistent after the spans' writers have finished (which every engine
// entry point guarantees by construction: results and traces are read
// after the worker pool joins).
type Trace struct {
	spans   []Span
	next    atomic.Int32
	dropped atomic.Int64
}

// NewTrace creates a trace holding up to capacity spans (non-positive
// selects DefaultTraceSpans). The slab is allocated up front; recording
// never allocates.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	return &Trace{spans: make([]Span, capacity)}
}

// Begin starts a span under parent and returns its id. On a nil trace or
// a full slab it returns NoSpan (dropped spans are counted).
//
//pdtl:hotpath
func (t *Trace) Begin(name string, parent SpanID) SpanID {
	if t == nil {
		return NoSpan
	}
	i := t.next.Add(1) - 1
	if int(i) >= len(t.spans) {
		t.dropped.Add(1)
		return NoSpan
	}
	sp := &t.spans[i]
	sp.Parent = parent
	sp.Worker = -1
	sp.NAttr = 0
	sp.Name = name
	sp.Start = time.Now().UnixNano()
	sp.Dur = 0
	return SpanID(i)
}

// End stamps the span's duration. No-op for NoSpan or a nil trace.
//
//pdtl:hotpath
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	sp := &t.spans[id]
	sp.Dur = time.Now().UnixNano() - sp.Start
}

// SetAttr attaches one integer attribute to the span (dropped past
// MaxAttrs). No-op for NoSpan or a nil trace.
//
//pdtl:hotpath
func (t *Trace) SetAttr(id SpanID, key string, val int64) {
	if t == nil || id < 0 {
		return
	}
	sp := &t.spans[id]
	if int(sp.NAttr) < MaxAttrs {
		sp.Attrs[sp.NAttr] = Attr{Key: key, Val: val}
		sp.NAttr++
	}
}

// SetWorker stamps the pool runner index the span ran on.
//
//pdtl:hotpath
func (t *Trace) SetWorker(id SpanID, worker int) {
	if t == nil || id < 0 {
		return
	}
	t.spans[id].Worker = int32(worker)
}

// Spans returns the recorded spans (the used slab prefix). The slice
// aliases the slab; callers must not retain it across further recording.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	n := int(t.next.Load())
	if n > len(t.spans) {
		n = len(t.spans)
	}
	return t.spans[:n]
}

// Dropped reports how many spans were discarded against a full slab.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WireSpan is a span in wire form: parents are indices into the carrying
// slice (-1 = root), so a worker's whole trace travels as one
// position-independent block that Merge can graft under any master span.
// All fields are exported for encoding/gob.
type WireSpan struct {
	Parent int32
	Worker int32
	NAttr  int32
	Name   string
	Start  int64
	Dur    int64
	Attrs  [MaxAttrs]Attr
}

// Export snapshots the trace as wire spans. Span ids are slab indices, so
// parents translate positionally.
func (t *Trace) Export() []WireSpan {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]WireSpan, len(spans))
	for i, sp := range spans {
		out[i] = WireSpan{
			Parent: int32(sp.Parent),
			Worker: sp.Worker,
			NAttr:  sp.NAttr,
			Name:   sp.Name,
			Start:  sp.Start,
			Dur:    sp.Dur,
			Attrs:  sp.Attrs,
		}
	}
	return out
}

// Merge grafts an exported trace into this one: root wire spans (Parent
// < 0) are re-parented under parent, non-roots keep their relative
// structure. Spans that do not fit the slab are dropped (a wire span's
// parent always precedes it, so retained spans never reference dropped
// ones).
func (t *Trace) Merge(parent SpanID, spans []WireSpan) {
	if t == nil || len(spans) == 0 {
		return
	}
	n := int32(len(spans))
	base := t.next.Add(n) - n
	for i, ws := range spans {
		idx := int(base) + i
		if idx >= len(t.spans) {
			t.dropped.Add(int64(len(spans) - i))
			return
		}
		p := parent
		if ws.Parent >= 0 {
			p = SpanID(base + ws.Parent)
		}
		t.spans[idx] = Span{
			Parent: p,
			Worker: ws.Worker,
			NAttr:  ws.NAttr,
			Name:   ws.Name,
			Start:  ws.Start,
			Dur:    ws.Dur,
			Attrs:  ws.Attrs,
		}
	}
}

// WriteJSON serializes the trace in Chrome trace_event format (the JSON
// object form, loadable in chrome://tracing and Perfetto). Each span is
// one complete ("ph":"X") event; timestamps are microseconds relative to
// the earliest span; tid is the worker index + 1 (0 = coordinator
// spans); span id, parent id, and attributes ride in args.
func (t *Trace) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	var min int64
	for i, sp := range spans {
		if i == 0 || sp.Start < min {
			min = sp.Start
		}
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for i, sp := range spans {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, `{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"span":%d,"parent":%d`,
			sp.Name, sp.Worker+1, float64(sp.Start-min)/1e3, float64(sp.Dur)/1e3, i, sp.Parent)
		for _, a := range sp.Attrs[:sp.NAttr] {
			fmt.Fprintf(bw, `,%q:%d`, a.Key, a.Val)
		}
		bw.WriteString("}}")
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// Cursor is a trace position carried through a context: the trace, the
// span new work should nest under, and the pool runner index (-1 when not
// inside a runner). The zero-ish cursor (nil trace) is valid — every
// method is a no-op — so code below an untraced entry point pays only a
// context lookup.
type Cursor struct {
	T      *Trace
	Span   SpanID
	Worker int32
}

type cursorKey struct{}

// ContextWithCursor returns a context carrying c. Called once per phase
// or per pool runner, never per chunk (it allocates; CursorFrom does
// not).
func ContextWithCursor(ctx context.Context, c Cursor) context.Context {
	return context.WithValue(ctx, cursorKey{}, &c)
}

// CursorFrom extracts the cursor, or a no-op cursor when absent. It is
// allocation-free and safe to call on every chunk.
//
//pdtl:hotpath
func CursorFrom(ctx context.Context) Cursor {
	if v := ctx.Value(cursorKey{}); v != nil {
		return *v.(*Cursor)
	}
	return Cursor{Span: NoSpan, Worker: -1}
}

// Begin starts a span at the cursor's position, stamped with its worker.
//
//pdtl:hotpath
func (c Cursor) Begin(name string) SpanID {
	id := c.T.Begin(name, c.Span)
	if id >= 0 && c.Worker >= 0 {
		c.T.SetWorker(id, int(c.Worker))
	}
	return id
}

// End stamps the span's duration.
//
//pdtl:hotpath
func (c Cursor) End(id SpanID) { c.T.End(id) }

// SetAttr attaches one attribute to the span.
//
//pdtl:hotpath
func (c Cursor) SetAttr(id SpanID, key string, val int64) { c.T.SetAttr(id, key, val) }

// Child returns a cursor whose new spans nest under id.
func (c Cursor) Child(id SpanID) Cursor {
	if id < 0 {
		return c
	}
	return Cursor{T: c.T, Span: id, Worker: c.Worker}
}

// WithWorker returns a cursor stamping the given runner index.
func (c Cursor) WithWorker(worker int) Cursor {
	c.Worker = int32(worker)
	return c
}

package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "test", []float64{1, 5, 10})
	// Boundary values land in their own bucket (le is inclusive).
	for _, v := range []float64{0.5, 1, 1.0001, 5, 7, 10, 11, 1e9} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	counts := h.snapshot()
	want := []uint64{2, 2, 2, 2} // (-inf,1], (1,5], (5,10], (10,+inf)
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	wantSum := 0.5 + 1 + 1.0001 + 5 + 7 + 10 + 11 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramCumulativeRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "test", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(100)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"# HELP t_h test",
		"# TYPE t_h histogram",
		`t_h_bucket{le="0.5"} 2`,
		`t_h_bucket{le="2"} 3`,
		`t_h_bucket{le="+Inf"} 4`,
		"t_h_sum 101.75",
		"t_h_count 4",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramConcurrentObserves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "test", DefDurationBuckets)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	// Each goroutine observed the same value multiset; sum must be exact
	// up to float association error.
	var one float64
	for i := 0; i < per; i++ {
		one += float64(i%100) / 100
	}
	if math.Abs(h.Sum()-one*goroutines) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", h.Sum(), one*goroutines)
	}
}

func TestHistogramNilAndDuration(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram leaked state")
	}
	r := NewRegistry()
	h = r.Histogram("t_h", "test", nil)
	h.ObserveDuration(1500 * time.Millisecond)
	if h.Count() != 1 || h.Sum() != 1.5 {
		t.Fatalf("Count=%d Sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryRenderOrderStable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_z_total", "z counter")
	g := r.Gauge("t_a_gauge", "a gauge")
	c.Add(3)
	g.Set(-2)
	r.GaugeFunc("t_m_func", "computed", func() float64 { return 1.5 })

	render := func() string {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := render()
	// Registration order, not lexical order.
	zi := strings.Index(out, "t_z_total")
	ai := strings.Index(out, "t_a_gauge")
	mi := strings.Index(out, "t_m_func")
	if !(zi < ai && ai < mi) {
		t.Fatalf("families out of registration order:\n%s", out)
	}
	for _, line := range []string{"t_z_total 3", "t_a_gauge -2", "t_m_func 1.5"} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if out != render() {
		t.Fatal("render not stable across scrapes")
	}
}

func TestCounterVecAndConstGauge(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_graph_runs_total", "runs per graph", "graph")
	v.With("wiki").Add(2)
	v.With("twitter").Inc()
	if v.With("wiki") != v.With("wiki") {
		t.Fatal("With not idempotent")
	}
	v.With(`we"ird` + "\n").Inc()
	r.ConstGauge("t_build_info", "build info", `go_version="go1.24"`, 1)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`t_graph_runs_total{graph="wiki"} 2`,
		`t_graph_runs_total{graph="twitter"} 1`,
		`t_graph_runs_total{graph="we\"ird\n"} 1`,
		`t_build_info{go_version="go1.24"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if n := strings.Count(out, "# TYPE t_graph_runs_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

func TestCounterGaugeFuncBridge(t *testing.T) {
	r := NewRegistry()
	var backing uint64 = 7
	r.CounterFunc("t_bridge_total", "bridged", func() float64 { return float64(backing) })
	var buf bytes.Buffer
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "t_bridge_total 7\n") {
		t.Fatalf("bridge render:\n%s", buf.String())
	}
	backing = 9
	buf.Reset()
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "t_bridge_total 9\n") {
		t.Fatalf("bridge not live:\n%s", buf.String())
	}
}

func TestFamilyReregistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "h")
	b := r.Counter("t_total", "h")
	if a != b {
		t.Fatal("re-registration returned a fresh counter")
	}
	a.Inc()
	var buf bytes.Buffer
	r.WriteText(&buf)
	if got := strings.Count(buf.String(), "t_total 1\n"); got != 1 {
		t.Fatalf("series rendered %d times:\n%s", got, buf.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("t_total", "h")
}

func TestHistogramObserveCheap(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "test", DefDurationBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.02) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f allocs/op, want 0", allocs)
	}
}

func ExampleRegistry_WriteText() {
	r := NewRegistry()
	r.Counter("pdtl_example_total", "An example counter.").Add(4)
	var buf bytes.Buffer
	r.WriteText(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP pdtl_example_total An example counter.
	// # TYPE pdtl_example_total counter
	// pdtl_example_total 4
}

package powergraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
)

func TestCountMatchesReference(t *testing.T) {
	for _, machines := range []int{1, 2, 4, 7} {
		g, err := gen.RMAT(9, 8, 13)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Count(g, Config{Machines: machines, Threads: 2})
		if err != nil {
			t.Fatalf("machines=%d: %v", machines, err)
		}
		if want := baseline.Forward(g); res.Triangles != want {
			t.Errorf("machines=%d: triangles = %d, want %d", machines, res.Triangles, want)
		}
		if len(res.PeakMemoryEntries) != machines {
			t.Errorf("machines=%d: mem entries = %d", machines, len(res.PeakMemoryEntries))
		}
	}
}

func TestOOMOnSmallBudget(t *testing.T) {
	g, err := gen.RMAT(10, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	minBudget, err := MinimumBudget(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A budget below the minimum must fail with ErrOutOfMemory...
	_, err = Count(g, Config{Machines: 4, Threads: 1, MemBudgetEntries: minBudget / 2})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("want ErrOutOfMemory, got %v", err)
	}
	// ...and a budget at the minimum must pass.
	if _, err := Count(g, Config{Machines: 4, Threads: 1, MemBudgetEntries: minBudget}); err != nil {
		t.Errorf("budget at minimum should pass: %v", err)
	}
}

func TestReplicationFactorGrowsWithMachines(t *testing.T) {
	g, err := gen.PowerLaw(2000, 20000, 2.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Count(g, Config{Machines: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Count(g, Config{Machines: 8, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ReplicationFactor != 1 {
		t.Errorf("1 machine replication = %.2f, want 1", r1.ReplicationFactor)
	}
	if r8.ReplicationFactor <= 1.5 {
		t.Errorf("8 machines replication = %.2f, want > 1.5 (vertex-cut blowup)", r8.ReplicationFactor)
	}
	// Total memory with 8 machines must exceed the graph's own storage —
	// the Section IV-B2 argument against partitioning systems.
	var total8 uint64
	for _, m := range r8.PeakMemoryEntries {
		total8 += m
	}
	if total8 <= uint64(g.AdjEntries()) {
		t.Errorf("8-machine total memory %d not above graph size %d", total8, g.AdjEntries())
	}
}

func TestSetupSlowerThanCalcShape(t *testing.T) {
	// Not a strict invariant at tiny scale, but the phases must both be
	// recorded and total must be their sum.
	g, err := gen.ErdosRenyi(500, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(g, Config{Machines: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime != res.SetupTime+res.CalcTime {
		t.Error("TotalTime != SetupTime + CalcTime")
	}
}

func TestConfigValidation(t *testing.T) {
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Count(g, Config{Machines: 0}); err == nil {
		t.Error("want error for 0 machines")
	}
}

// Property: machine count never changes the count.
func TestMachineInvariance(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		g, err := gen.ErdosRenyi(n, rng.Intn(6*n), seed)
		if err != nil {
			return false
		}
		machines := 1 + int(mRaw%8)
		res, err := Count(g, Config{Machines: machines, Threads: 1 + int(mRaw%3)})
		if err != nil {
			return false
		}
		return res.Triangles == baseline.Forward(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Package powergraph is an in-process reimplementation of the
// PowerGraph-style vertex-cut Gather-Apply-Scatter engine the paper
// compares against (Gonzalez et al., OSDI'12; Sections II and V-E3).
//
// The comparison points the paper makes — and which this comparator
// reproduces — are:
//
//   - setup (graph loading + partitioning + replica construction) is much
//     slower than PDTL's orientation (Table II);
//   - calculation time is competitive (Figure 13, Table VI);
//   - memory explodes: the triangle-count vertex program gathers the full
//     neighbor id set at every vertex replica, so per-machine memory is
//     proportional to replicated adjacency, and large graphs OOM even with
//     ~1 TB aggregate RAM (Table VI/XIV "F" entries) while PDTL needs only
//     M ≥ d*max per core.
//
// Memory is accounted logically in "entries" (one vertex id) against a
// per-machine budget, and Count returns ErrOutOfMemory exactly where the
// real system would fail — see DESIGN.md §3 for the substitution argument.
package powergraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pdtl/internal/graph"
)

// ErrOutOfMemory reports that a machine exceeded its memory budget; it is
// rendered as "F" in the Table VI reproduction.
var ErrOutOfMemory = errors.New("powergraph: machine exceeded memory budget")

// Config parameterizes the engine.
type Config struct {
	// Machines is the cluster size.
	Machines int
	// Threads is the per-machine parallelism of the compute phase.
	Threads int
	// MemBudgetEntries is the per-machine logical memory budget in
	// 4-byte entries; 0 means unlimited.
	MemBudgetEntries uint64
}

// Result reports a run.
type Result struct {
	Triangles uint64
	// SetupTime covers partitioning and replica/gather construction — the
	// phase Table II calls "Setup".
	SetupTime time.Duration
	// CalcTime covers the gather/scatter triangle computation, the number
	// PowerGraph itself reports (Section V-E3).
	CalcTime time.Duration
	// TotalTime = SetupTime + CalcTime.
	TotalTime time.Duration
	// ReplicationFactor is the average number of machines hosting each
	// vertex — the vertex-cut replication the memory cost scales with.
	ReplicationFactor float64
	// PeakMemoryEntries is the logical memory high-water mark per machine.
	PeakMemoryEntries []uint64
}

// machine holds one simulated machine's shard.
type machine struct {
	edges [][2]graph.Vertex
	// gathered maps each locally replicated vertex to its full neighbor
	// id set (the gather result of the triangle-count vertex program).
	gathered map[graph.Vertex][]graph.Vertex
	memPeak  uint64
}

// Count runs the triangle-count vertex program over g on a simulated
// vertex-cut cluster.
func Count(g *graph.CSR, cfg Config) (*Result, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("powergraph: need ≥ 1 machine, got %d", cfg.Machines)
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	res := &Result{PeakMemoryEntries: make([]uint64, cfg.Machines)}
	setupStart := time.Now()

	// --- Setup: vertex-cut partitioning + replica construction. ---
	machines := make([]*machine, cfg.Machines)
	for i := range machines {
		machines[i] = &machine{gathered: make(map[graph.Vertex][]graph.Vertex)}
	}
	n := g.NumVertices()
	// Greedy-hash vertex cut: an edge goes to a machine derived from both
	// endpoints, which concentrates each vertex's edges on few machines
	// (the property PowerGraph's greedy placement optimizes for).
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if graph.Vertex(u) >= v {
				continue // place each undirected edge once
			}
			m := edgeMachine(graph.Vertex(u), v, cfg.Machines)
			machines[m].edges = append(machines[m].edges, [2]graph.Vertex{graph.Vertex(u), v})
		}
	}
	// Gather phase: every machine materializes the full neighbor list of
	// every vertex it replicates (PowerGraph's triangle counting gathers
	// neighbor id sets). This is the memory that kills large graphs.
	replicaCount := make([]uint32, n)
	for mi, m := range machines {
		var mem uint64
		mem += uint64(len(m.edges)) * 2
		for _, e := range m.edges {
			for _, v := range e {
				if _, ok := m.gathered[v]; !ok {
					list := g.Neighbors(v)
					m.gathered[v] = list
					mem += uint64(len(list))
					replicaCount[v]++
				}
			}
		}
		m.memPeak = mem
		res.PeakMemoryEntries[mi] = mem
		if cfg.MemBudgetEntries > 0 && mem > cfg.MemBudgetEntries {
			res.SetupTime = time.Since(setupStart)
			return res, fmt.Errorf("%w: machine %d needs %d entries, budget %d",
				ErrOutOfMemory, mi, mem, cfg.MemBudgetEntries)
		}
	}
	var replicas uint64
	var replicated int
	for _, c := range replicaCount {
		if c > 0 {
			replicas += uint64(c)
			replicated++
		}
	}
	if replicated > 0 {
		res.ReplicationFactor = float64(replicas) / float64(replicated)
	}
	res.SetupTime = time.Since(setupStart)

	// --- Calc: per-edge neighbor-set intersection (scatter). Each
	// triangle is seen by its three edges, possibly on three machines;
	// counting closing vertices above both endpoints makes it exactly
	// once. ---
	calcStart := time.Now()
	var total uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range machines {
		wg.Add(1)
		go func(m *machine) {
			defer wg.Done()
			var local uint64
			chunk := (len(m.edges) + cfg.Threads - 1) / cfg.Threads
			if chunk == 0 {
				chunk = 1
			}
			var inner sync.WaitGroup
			results := make([]uint64, cfg.Threads)
			for ti := 0; ti < cfg.Threads; ti++ {
				lo := ti * chunk
				if lo >= len(m.edges) {
					break
				}
				hi := lo + chunk
				if hi > len(m.edges) {
					hi = len(m.edges)
				}
				inner.Add(1)
				go func(ti, lo, hi int) {
					defer inner.Done()
					var cnt uint64
					for _, e := range m.edges[lo:hi] {
						cnt += intersectAbove(m.gathered[e[0]], m.gathered[e[1]], e[1])
					}
					results[ti] = cnt
				}(ti, lo, hi)
			}
			inner.Wait()
			for _, c := range results {
				local += c
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	res.Triangles = total
	res.CalcTime = time.Since(calcStart)
	res.TotalTime = res.SetupTime + res.CalcTime
	return res, nil
}

// edgeMachine places edge (u, v): it hashes the unordered pair onto a 2-D
// machine grid, a simplified version of PowerGraph's constrained placement.
func edgeMachine(u, v graph.Vertex, machines int) int {
	hu := uint64(u) * 0x9e3779b97f4a7c15
	hv := uint64(v) * 0xc2b2ae3d27d4eb4f
	return int((hu ^ hv) % uint64(machines))
}

// intersectAbove counts common elements of two sorted lists strictly above
// floor.
func intersectAbove(a, b []graph.Vertex, floor graph.Vertex) uint64 {
	i := sort.Search(len(a), func(k int) bool { return a[k] > floor })
	j := sort.Search(len(b), func(k int) bool { return b[k] > floor })
	var count uint64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// MinimumBudget reports the smallest per-machine budget (in entries) that
// lets g run on the given machine count — used by the Table VI harness to
// pick budgets that pass for small graphs and fail for large ones.
func MinimumBudget(g *graph.CSR, machines int) (uint64, error) {
	res, err := Count(g, Config{Machines: machines, Threads: 1})
	if err != nil {
		return 0, err
	}
	var maxMem uint64
	for _, m := range res.PeakMemoryEntries {
		if m > maxMem {
			maxMem = m
		}
	}
	return maxMem, nil
}

// Package optlike is a reimplementation-in-spirit of the OPT system the
// paper compares against (Kim et al., SIGMOD'14; Table V, Figure 12,
// Table VIII): a single-machine, multi-core triangulation framework whose
// preprocessing ("database creation") is far heavier than PDTL's
// orientation, while its calculation phase is competitive.
//
// OPT requires its input sorted by vertex degree and builds an internal
// database before counting. This comparator performs that work for real:
// it sorts all vertices by degree, relabels the entire graph under the new
// ids, rebuilds and re-sorts every adjacency list, orients the relabeled
// graph, and writes the result to disk as the "database". That is
// genuinely several passes and an O(|V| log |V| + |E| log d) sort heavier
// than PDTL's single filtered scan — reproducing the Table II/V setup gap
// (up to 75× in the paper) without artificial sleeps.
package optlike

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pdtl/internal/graph"
)

// DBSuffix is appended to the source base path for the database store.
const DBSuffix = ".optdb"

// BuildResult reports database creation.
type BuildResult struct {
	// DBBase is the on-disk database store (an oriented, degree-relabeled
	// graph in the standard binary layout).
	DBBase string
	// DBTime is the "Database" column of Table V.
	DBTime time.Duration
}

// BuildDB creates the OPT-style database for the undirected store at
// srcBase.
func BuildDB(srcBase string) (*BuildResult, error) {
	start := time.Now()
	d, err := graph.Open(srcBase)
	if err != nil {
		return nil, err
	}
	if d.Meta.Oriented {
		return nil, fmt.Errorf("optlike: database input must be the undirected store")
	}
	g, err := d.LoadCSR()
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()

	// Degree-sort relabeling: new id 0 is the lowest-degree vertex. This
	// realizes OPT's required degree order as an explicit id remapping.
	perm := make([]graph.Vertex, n)
	for v := range perm {
		perm[v] = graph.Vertex(v)
	}
	deg := g.Degrees()
	sort.SliceStable(perm, func(i, j int) bool {
		if deg[perm[i]] != deg[perm[j]] {
			return deg[perm[i]] < deg[perm[j]]
		}
		return perm[i] < perm[j]
	})
	newID := make([]graph.Vertex, n)
	for rank, old := range perm {
		newID[old] = graph.Vertex(rank)
	}

	// Relabel, orient (keep edges from lower to higher new id — by
	// construction the degree order), and re-sort every list.
	outDeg := make([]uint32, n)
	for old := 0; old < n; old++ {
		u := newID[old]
		for _, vOld := range g.Neighbors(graph.Vertex(old)) {
			if newID[vOld] > u {
				outDeg[u]++
			}
		}
	}
	offsets := make([]uint64, n+1)
	var run uint64
	for v := 0; v < n; v++ {
		offsets[v] = run
		run += uint64(outDeg[v])
	}
	offsets[n] = run
	adj := make([]graph.Vertex, run)
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for old := 0; old < n; old++ {
		u := newID[old]
		for _, vOld := range g.Neighbors(graph.Vertex(old)) {
			if v := newID[vOld]; v > u {
				adj[cursor[u]] = v
				cursor[u]++
			}
		}
	}
	for v := 0; v < n; v++ {
		list := adj[offsets[v]:offsets[v+1]]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	db := &graph.CSR{Offsets: offsets, Adj: adj, Oriented: true}

	dbBase := srcBase + DBSuffix
	if err := graph.WriteCSR(dbBase, d.Meta.Name+"-optdb", db); err != nil {
		return nil, err
	}
	return &BuildResult{DBBase: dbBase, DBTime: time.Since(start)}, nil
}

// CountResult reports a counting run.
type CountResult struct {
	Triangles uint64
	// CalcTime is the "Calc" column of Table V.
	CalcTime time.Duration
}

// Count runs OPT-style overlapped parallel counting against a database
// built by BuildDB, with the given worker count.
func Count(dbBase string, workers int) (*CountResult, error) {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	d, err := graph.Open(dbBase)
	if err != nil {
		return nil, err
	}
	if !d.Meta.Oriented {
		return nil, fmt.Errorf("optlike: %s is not a database store", dbBase)
	}
	db, err := d.LoadCSR()
	if err != nil {
		return nil, err
	}
	n := db.NumVertices()

	// Static vertex-range split balanced by out-degree mass.
	bounds := make([]int, workers+1)
	total := db.AdjEntries()
	v := 0
	for p := 1; p < workers; p++ {
		target := total * uint64(p) / uint64(workers)
		for v < n && db.Offsets[v+1] <= target {
			v++
		}
		bounds[p] = v
	}
	bounds[workers] = n

	counts := make([]uint64, workers)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var cnt uint64
			for u := bounds[p]; u < bounds[p+1]; u++ {
				ou := db.Neighbors(graph.Vertex(u))
				for _, v := range ou {
					ov := db.Neighbors(v)
					i, j := 0, 0
					for i < len(ou) && j < len(ov) {
						switch {
						case ou[i] < ov[j]:
							i++
						case ou[i] > ov[j]:
							j++
						default:
							cnt++
							i++
							j++
						}
					}
				}
			}
			counts[p] = cnt
		}(p)
	}
	wg.Wait()
	res := &CountResult{}
	for _, c := range counts {
		res.Triangles += c
	}
	res.CalcTime = time.Since(start)
	return res, nil
}

package optlike

import (
	"path/filepath"
	"testing"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

func buildStore(t *testing.T, g *graph.CSR) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), "g")
	if err := graph.WriteCSR(base, "g", g); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestBuildAndCount(t *testing.T) {
	g, err := gen.RMAT(9, 8, 31)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := buildStore(t, g)
	db, err := BuildDB(base)
	if err != nil {
		t.Fatal(err)
	}
	if db.DBTime <= 0 {
		t.Error("DB time not recorded")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := Count(db.DBBase, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Triangles != want {
			t.Errorf("workers=%d: triangles = %d, want %d", workers, res.Triangles, want)
		}
	}
}

func TestKnownCounts(t *testing.T) {
	g, err := gen.Complete(15)
	if err != nil {
		t.Fatal(err)
	}
	base := buildStore(t, g)
	db, err := BuildDB(base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(db.DBBase, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != gen.CompleteTriangles(15) {
		t.Errorf("K15 = %d, want %d", res.Triangles, gen.CompleteTriangles(15))
	}
}

func TestBuildDBRejectsOriented(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	base := buildStore(t, g)
	db, err := BuildDB(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDB(db.DBBase); err == nil {
		t.Error("want error building DB from an oriented store")
	}
}

func TestCountRejectsUndirected(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	base := buildStore(t, g)
	if _, err := Count(base, 2); err == nil {
		t.Error("want error counting on an undirected store")
	}
}

func TestDBIsDegreeRelabeled(t *testing.T) {
	// In the database, out-edges go from lower to higher new id, and ids
	// are degree-ranked: vertex n-1 must have out-degree 0.
	g, err := gen.PowerLaw(300, 3000, 2.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := buildStore(t, g)
	db, err := BuildDB(base)
	if err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(db.DBBase)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := d.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	n := csr.NumVertices()
	if got := csr.Degree(graph.Vertex(n - 1)); got != 0 {
		t.Errorf("highest-ranked vertex has out-degree %d, want 0", got)
	}
	for v := 0; v < n; v++ {
		for _, w := range csr.Neighbors(graph.Vertex(v)) {
			if w <= graph.Vertex(v) {
				t.Fatalf("edge (%d,%d) not ascending in relabeled ids", v, w)
			}
		}
	}
}

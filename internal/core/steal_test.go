package core

import (
	"bytes"
	"container/heap"
	"context"
	"sort"
	"testing"

	"pdtl/internal/balance"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// stealDisk builds the Zipf-skewed (Chung–Lu power-law, exponent 1.6)
// regression graph: heavy hubs make the in-degree cost model misjudge
// contiguous ranges, which is exactly the error the stealing scheduler is
// supposed to absorb.
func stealDisk(t *testing.T) *graph.Disk {
	t.Helper()
	g, err := gen.PowerLaw(3000, 60000, 1.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	return orientedDisk(t, g)
}

// cmpRatio is max/mean per-worker intersection steps — the straggler
// factor in the machine-independent step-count metric.
func cmpRatio(stats []WorkerStat) float64 {
	var sum, max uint64
	for _, w := range stats {
		v := w.Stats.CmpOps
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(stats)))
}

// workHeap orders workers by accumulated steps for the schedule simulation.
type workHeap []uint64

func (h workHeap) Len() int            { return len(h) }
func (h workHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h workHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *workHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// simulateStealing replays the self-scheduling discipline under the
// step-count clock: chunks are drawn in queue order, each by the worker
// with the least accumulated steps (= the one that finishes first when
// progress is proportional to steps). The result is the deterministic
// per-worker step distribution of the stealing scheduler, free of
// wall-clock and goroutine-timing noise.
func simulateStealing(chunkSteps []uint64, workers int) float64 {
	h := make(workHeap, workers)
	heap.Init(&h)
	for _, s := range chunkSteps {
		least := heap.Pop(&h).(uint64)
		heap.Push(&h, least+s)
	}
	var sum, max uint64
	for _, w := range h {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(h)))
}

// TestStealingReducesStragglerRatio is the straggler regression demanded
// by the scheduler refactor: on a Zipf-skewed graph, the work-stealing
// discipline must yield a strictly lower max/mean intersection-step ratio
// than the paper's static InDegree binding. Both sides of the comparison
// are deterministic step counts: the static side is a real run (per-range
// CmpOps are a pure function of plan and memory budget), the stealing side
// replays the dynamic draw under the step-count clock over real measured
// per-chunk CmpOps — per-chunk counts do not depend on which runner
// executed the chunk, which TestStealingChunkStatsDeterministic pins down.
func TestStealingReducesStragglerRatio(t *testing.T) {
	d := stealDisk(t)
	const P, K, mem = 8, 16, 2048

	plan, err := Plan(d, d.Base, P, balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	static, _, err := RunRanges(context.Background(), d, plan.Ranges, Options{MemEdges: mem})
	if err != nil {
		t.Fatal(err)
	}
	staticRatio := cmpRatio(static)

	chunkPlan, err := Plan(d, d.Base, sched.ChunksFor(P, K), balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	workers, chunkStats, _, err := RunChunks(context.Background(), d, chunkPlan.Ranges, Options{Workers: P, MemEdges: mem})
	if err != nil {
		t.Fatal(err)
	}

	// Same triangles, before anything else.
	var staticTris, stealTris uint64
	for _, w := range static {
		staticTris += w.Stats.Triangles
	}
	for _, w := range workers {
		stealTris += w.Stats.Triangles
	}
	if staticTris != stealTris {
		t.Fatalf("static found %d triangles, stealing %d", staticTris, stealTris)
	}

	steps := make([]uint64, len(chunkStats))
	for i, c := range chunkStats {
		steps[i] = c.Stats.CmpOps
	}
	stealingRatio := simulateStealing(steps, P)
	if stealingRatio >= staticRatio {
		t.Errorf("stealing step ratio %.4f is not strictly below static InDegree's %.4f", stealingRatio, staticRatio)
	}

	// The list-scheduling granularity bound: no dynamic draw can be worse
	// than one maximal chunk above the mean, and that bound itself must
	// beat the static plan for the regression to be meaningful.
	var sum, cmax uint64
	for _, s := range steps {
		sum += s
		if s > cmax {
			cmax = s
		}
	}
	mean := float64(sum) / float64(P)
	if bound := (mean + float64(cmax)) / mean; bound >= staticRatio {
		t.Errorf("granularity bound %.4f does not beat static ratio %.4f; chunking is too coarse", bound, staticRatio)
	}
	t.Logf("static=%.4f stealing(sim)=%.4f stealing(run)=%.4f", staticRatio, stealingRatio, cmpRatio(workers))
}

// TestStealingChunkStatsDeterministic pins the premise of the simulation:
// per-chunk step counts, triangles, and pass counts are identical across
// runs even though the chunk→worker assignment is not.
func TestStealingChunkStatsDeterministic(t *testing.T) {
	d := stealDisk(t)
	const P, K, mem = 4, 8, 1024
	chunkPlan, err := Plan(d, d.Base, sched.ChunksFor(P, K), balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	var ref []ChunkStat
	for rep := 0; rep < 3; rep++ {
		_, cs, _, err := RunChunks(context.Background(), d, chunkPlan.Ranges, Options{Workers: P, MemEdges: mem})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = cs
			continue
		}
		for i := range cs {
			if cs[i].Range != ref[i].Range || cs[i].Stats.CmpOps != ref[i].Stats.CmpOps ||
				cs[i].Stats.Triangles != ref[i].Stats.Triangles || cs[i].Stats.Passes != ref[i].Stats.Passes {
				t.Fatalf("rep %d chunk %d diverged: %+v vs %+v", rep, i, cs[i], ref[i])
			}
		}
	}
}

// listChunks runs a listing under the given scheduler setup and returns
// the concatenated bytes in sink order (worker order for static, chunk
// order for stealing).
func listChunks(t *testing.T, d *graph.Disk, ranges []balance.Range, opt Options, stealing bool) []byte {
	t.Helper()
	var bufs []*bytes.Buffer
	opt.Sinks = make([]mgt.Sink, len(ranges))
	for i := range opt.Sinks {
		b := &bytes.Buffer{}
		bufs = append(bufs, b)
		opt.Sinks[i] = mgt.NewFileSink(b)
	}
	var err error
	if stealing {
		_, _, _, err = RunChunks(context.Background(), d, ranges, opt)
	} else {
		_, _, err = RunRanges(context.Background(), d, ranges, opt)
	}
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for i, s := range opt.Sinks {
		if err := s.(*mgt.FileSink).Flush(); err != nil {
			t.Fatal(err)
		}
		out = append(out, bufs[i].Bytes()...)
	}
	return out
}

// normalizeTriples order-normalizes a 12-byte-triple listing: the triangle
// multiset serialized in canonical sorted order.
func normalizeTriples(t *testing.T, raw []byte) []byte {
	t.Helper()
	tris, err := mgt.ReadTriangles(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(tris, func(i, j int) bool {
		if tris[i][0] != tris[j][0] {
			return tris[i][0] < tris[j][0]
		}
		if tris[i][1] != tris[j][1] {
			return tris[i][1] < tris[j][1]
		}
		return tris[i][2] < tris[j][2]
	})
	var buf bytes.Buffer
	sink := mgt.NewFileSink(&buf)
	for _, tri := range tris {
		sink.Triangle(tri[0], tri[1], tri[2])
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStealingBeatsMisweightedStatic is the acceptance scenario: static
// ranges that the cost model got badly wrong (a Naive equal-edge split of
// a hub-heavy graph — max/mean step ratio well above 2) versus the
// stealing scheduler over the same store. Stealing must lower both the
// straggler's step load and the max/mean ratio while producing the same
// triangles, byte-identical after order normalization.
//
// The wall-clock claim of the ablation is deliberately asserted in steps,
// not seconds: per-worker step counts are what determine wall time on real
// parallel hardware, while this suite may run on a single-core machine
// where every schedule serializes to the same wall (see harness.Work for
// the same convention).
func TestStealingBeatsMisweightedStatic(t *testing.T) {
	d := stealDisk(t)
	const P, K, mem = 4, 8, 2048

	// Deliberately mis-weighted static ranges: equal edge counts on a
	// graph whose work is concentrated in the hub region.
	naivePlan, err := Plan(d, d.Base, P, balance.Naive)
	if err != nil {
		t.Fatal(err)
	}
	static, _, err := RunRanges(context.Background(), d, naivePlan.Ranges, Options{MemEdges: mem})
	if err != nil {
		t.Fatal(err)
	}
	staticRatio := cmpRatio(static)
	var staticMax uint64
	for _, w := range static {
		if w.Stats.CmpOps > staticMax {
			staticMax = w.Stats.CmpOps
		}
	}
	if staticRatio < 1.5 {
		t.Fatalf("test premise broken: naive static ratio %.3f is not badly imbalanced", staticRatio)
	}

	chunkPlan, err := Plan(d, d.Base, sched.ChunksFor(P, K), balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	workers, _, _, err := RunChunks(context.Background(), d, chunkPlan.Ranges, Options{Workers: P, MemEdges: mem})
	if err != nil {
		t.Fatal(err)
	}
	stealRatio := cmpRatio(workers)
	var stealMax uint64
	for _, w := range workers {
		if w.Stats.CmpOps > stealMax {
			stealMax = w.Stats.CmpOps
		}
	}
	if stealRatio >= staticRatio {
		t.Errorf("stealing ratio %.3f not below mis-weighted static's %.3f", stealRatio, staticRatio)
	}
	if stealMax >= staticMax {
		t.Errorf("stealing straggler load %d not below static straggler's %d steps", stealMax, staticMax)
	}

	// Byte-identical listings after order normalization.
	staticList := listChunks(t, d, naivePlan.Ranges, Options{MemEdges: mem}, false)
	stealList := listChunks(t, d, chunkPlan.Ranges, Options{Workers: P, MemEdges: mem}, true)
	if !bytes.Equal(normalizeTriples(t, staticList), normalizeTriples(t, stealList)) {
		t.Error("normalized listings differ between static and stealing")
	}
	// And the stealing listing itself is deterministic in raw bytes:
	// chunk-indexed sinks make the output independent of worker timing.
	stealList2 := listChunks(t, d, chunkPlan.Ranges, Options{Workers: P, MemEdges: mem}, true)
	if !bytes.Equal(stealList, stealList2) {
		t.Error("stealing listing is not byte-identical across runs (chunk-order determinism broken)")
	}
	t.Logf("mis-weighted static=%.3f stealing=%.3f straggler steps %d → %d", staticRatio, stealRatio, staticMax, stealMax)
}

// TestSharedScanRoundsUnderStealing: the shared broadcaster's invariant —
// exactly one physical scan per round — must survive dynamic chunk
// assignment. The source's own read volume therefore stays a whole
// multiple of the file size, bounded by the total window count, and the
// quorum rule keeps runners sharing rounds while they all hold work, so
// the round count stays near totalWindows/P, far below the buffered
// configuration's one-scan-per-window.
func TestSharedScanRoundsUnderStealing(t *testing.T) {
	g, err := gen.ErdosRenyi(600, 9000, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedDisk(t, g)
	const P, K = 4, 8
	chunkPlan, err := Plan(d, d.Base, sched.ChunksFor(P, K), balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	// One window per chunk: every chunk fits the budget.
	mem := 0
	for _, r := range chunkPlan.Ranges {
		if int(r.Len()) > mem {
			mem = int(r.Len())
		}
	}
	_, chunkStats, srcIO, err := RunChunks(context.Background(), d, chunkPlan.Ranges, Options{
		Workers: P, MemEdges: mem, Scan: scan.SourceShared,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalWindows := 0
	for _, c := range chunkStats {
		totalWindows += c.Stats.Passes
	}
	adj := d.AdjBytes()
	if srcIO.BytesRead%adj != 0 {
		t.Fatalf("source read %d bytes, not a whole multiple of the %d-byte file: partial scans under stealing", srcIO.BytesRead, adj)
	}
	rounds := srcIO.BytesRead / adj
	if rounds < 1 || rounds > int64(totalWindows) {
		t.Fatalf("%d physical scans for %d windows", rounds, totalWindows)
	}
	// While every runner holds work the quorum forces shared rounds, so
	// the scan count must sit well below one-per-window (the buffered
	// volume); totalWindows/2 is a loose ceiling over the ≈/P expectation.
	if rounds > int64(totalWindows)/2 {
		t.Errorf("%d physical scans for %d windows across %d runners: rounds are not being shared", rounds, totalWindows, P)
	}
	t.Logf("%d windows over %d runners → %d physical scans", totalWindows, P, rounds)
}

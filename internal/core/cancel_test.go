package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
	"pdtl/internal/scan"
)

// cancelDisk builds and orients the RMAT store the cancellation tests run
// against (reusing crosscheck_test's orientedDisk helper).
func cancelDisk(t *testing.T) *graph.Disk {
	t.Helper()
	g, err := gen.RMAT(10, 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	return orientedDisk(t, g)
}

// waitGoroutines polls until the goroutine count settles back to at most
// want, failing the test if it does not within the deadline.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, want <= %d", n, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunRangesCancelAllSources cancels a multi-window run from inside a
// sink for every scan source and checks that RunRanges returns ctx.Err()
// promptly, with all source goroutines torn down.
func TestRunRangesCancelAllSources(t *testing.T) {
	d := cancelDisk(t)
	plan, err := Plan(d, d.Base, 2, balance.Naive)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []scan.SourceKind{scan.SourceBuffered, scan.SourceShared, scan.SourceMem} {
		t.Run(string(kind), func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var fired atomic.Bool
			sinks := make([]mgt.Sink, len(plan.Ranges))
			for i := range sinks {
				sinks[i] = mgt.FuncSink(func(u, v, w graph.Vertex) {
					if fired.CompareAndSwap(false, true) {
						cancel()
					}
				})
			}
			// MemEdges small enough that every runner has many windows
			// left when the cancellation fires mid-run.
			_, _, err := RunRanges(ctx, d, plan.Ranges, Options{MemEdges: 128, Scan: kind, Sinks: sinks})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !fired.Load() {
				t.Fatal("sink never fired; run too small to cancel mid-pass")
			}
			waitGoroutines(t, before)
		})
	}
}

// TestRunRangesPreCancelled checks the fast path: an already-cancelled
// context never starts a runner.
func TestRunRangesPreCancelled(t *testing.T) {
	d := cancelDisk(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunRanges(ctx, d, []balance.Range{mgt.FullRange(d)}, Options{MemEdges: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProcessCancelReturnsCtxErr checks that the Process entry point
// surfaces the bare ctx.Err() (not a wrapped scan error) on cancellation,
// over the shared source where cancellation can surface mid-pass through
// the broadcaster.
func TestProcessCancelReturnsCtxErr(t *testing.T) {
	g, err := gen.RMAT(10, 16, 22)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "proc-cancel")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	sinks := make([]mgt.Sink, 3)
	for i := range sinks {
		sinks[i] = mgt.FuncSink(func(u, v, w graph.Vertex) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		})
	}
	_, err = Process(ctx, base, Options{Workers: 3, MemEdges: 128, Scan: scan.SourceShared, Sinks: sinks})
	if err != context.Canceled {
		t.Fatalf("err = %v (%T), want the bare context.Canceled", err, err)
	}
}

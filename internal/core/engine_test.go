package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
)

func writeStore(t testing.TB, g *graph.CSR, name string) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), name)
	if err := graph.WriteCSR(base, name, g); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestProcessCountsK20(t *testing.T) {
	g, err := gen.Complete(20)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k20")
	res, err := Process(context.Background(), base, Options{Workers: 4, MemEdges: 16, Strategy: balance.InDegree})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != gen.CompleteTriangles(20) {
		t.Errorf("triangles = %d, want %d", res.Triangles, gen.CompleteTriangles(20))
	}
	if res.Orientation == nil {
		t.Error("orientation result missing for unoriented input")
	}
	if len(res.Workers) != 4 {
		t.Errorf("worker stats = %d, want 4", len(res.Workers))
	}
	if res.TotalTime < res.CalcTime {
		t.Error("total time should include orientation")
	}
}

func TestProcessWorkerCountInvariance(t *testing.T) {
	g, err := gen.RMAT(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, strategy := range []balance.Strategy{balance.Naive, balance.InDegree, balance.Cost} {
			base := writeStore(t, g, "rmat")
			res, err := Process(context.Background(), base, Options{Workers: workers, MemEdges: 500, Strategy: strategy})
			if err != nil {
				t.Fatalf("workers=%d strategy=%v: %v", workers, strategy, err)
			}
			if res.Triangles != want {
				t.Errorf("workers=%d strategy=%v: triangles = %d, want %d",
					workers, strategy, res.Triangles, want)
			}
		}
	}
}

func TestProcessOrientedInput(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 900, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := writeStore(t, g, "er")
	// First run orients; second run feeds the oriented store directly.
	res1, err := Process(context.Background(), base, Options{Workers: 2, MemEdges: 128})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Process(context.Background(), res1.OrientedBase, Options{Workers: 2, MemEdges: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Orientation != nil {
		t.Error("oriented input must skip orientation")
	}
	if res1.Triangles != want || res2.Triangles != want {
		t.Errorf("counts %d/%d, want %d", res1.Triangles, res2.Triangles, want)
	}
}

func TestProcessListing(t *testing.T) {
	g, err := gen.TriGrid(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "tg")
	const workers = 3
	sinks := make([]mgt.Sink, workers)
	counts := make([]mgt.CountSink, workers)
	for i := range sinks {
		sinks[i] = &counts[i]
	}
	res, err := Process(context.Background(), base, Options{Workers: workers, MemEdges: 8, Sinks: sinks})
	if err != nil {
		t.Fatal(err)
	}
	var listed uint64
	for i := range counts {
		listed += counts[i].N
	}
	want := gen.TriGridTriangles(7, 7)
	if res.Triangles != want || listed != want {
		t.Errorf("count=%d listed=%d want=%d", res.Triangles, listed, want)
	}
}

func TestProcessSinkMismatch(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k6")
	_, err = Process(context.Background(), base, Options{Workers: 3, MemEdges: 8, Sinks: []mgt.Sink{&mgt.CountSink{}}})
	if err == nil {
		t.Fatal("want sink/worker mismatch error")
	}
}

func TestRunRangesRequiresOriented(t *testing.T) {
	g, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k5")
	d, err := graph.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunRanges(context.Background(), d, []balance.Range{{Lo: 0, Hi: 1}}, Options{MemEdges: 4}); err == nil {
		t.Fatal("want error for unoriented store")
	}
}

func TestPlanSubdividesForCluster(t *testing.T) {
	g, err := gen.PowerLaw(500, 5000, 2.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "pl")
	res, err := Process(context.Background(), base, Options{Workers: 2, MemEdges: 256, KeepOriented: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(res.OrientedBase)
	if err != nil {
		t.Fatal(err)
	}
	// A master with 3 nodes × 2 cores asks for 6 ranges.
	plan, err := Plan(d, res.OrientedBase, 6, balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(d.Meta.AdjEntries); err != nil {
		t.Fatal(err)
	}
	groups := plan.Subdivide(3)
	var sum uint64
	for _, ranges := range groups {
		stats, _, err := RunRanges(context.Background(), d, ranges, Options{MemEdges: 256})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range stats {
			sum += w.Stats.Triangles
		}
	}
	if want := baseline.Forward(g); sum != want {
		t.Errorf("cluster-style sum = %d, want %d", sum, want)
	}
}

func TestResultTotalStats(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "er2")
	res, err := Process(context.Background(), base, Options{Workers: 4, MemEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	total := res.TotalStats()
	if total.Triangles != res.Triangles {
		t.Errorf("TotalStats.Triangles = %d, want %d", total.Triangles, res.Triangles)
	}
	if total.IO.BytesRead == 0 {
		t.Error("expected I/O accounting in totals")
	}
	// Per-worker pass counts should respect R = ceil(S/M) for each range.
	for _, w := range res.Workers {
		if w.Range.Len() == 0 {
			continue
		}
		wantPasses := int((w.Range.Len() + 63) / 64)
		if w.Stats.Passes != wantPasses {
			t.Errorf("worker %d: passes = %d, want %d", w.Worker, w.Stats.Passes, wantPasses)
		}
	}
}

func TestProcessMissingStore(t *testing.T) {
	if _, err := Process(context.Background(), filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Fatal("want error for missing store")
	}
}

func TestProcessLoadBalanceFallbackError(t *testing.T) {
	// An oriented store without its .indeg file cannot use InDegree.
	g, err := gen.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k8")
	res, err := Process(context.Background(), base, Options{Workers: 2, MemEdges: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(res.OrientedBase + ".indeg"); err != nil {
		t.Fatal(err)
	}
	if _, err := Process(context.Background(), res.OrientedBase, Options{Workers: 2, MemEdges: 16, Strategy: balance.InDegree}); err == nil {
		t.Fatal("want error when in-degree file is missing")
	}
	// Naive strategy still works.
	res2, err := Process(context.Background(), res.OrientedBase, Options{Workers: 2, MemEdges: 16, Strategy: balance.Naive})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Triangles != gen.CompleteTriangles(8) {
		t.Errorf("triangles = %d", res2.Triangles)
	}
}

// Package core is the PDTL engine of Section IV-B: the paper's primary
// contribution. It ties the substrates together on one machine —
// orientation (once), load balancing, and P concurrent modified-MGT runners
// over contiguous edge ranges — and exposes the per-worker accounting that
// the distributed layer and the experiment harness aggregate.
//
// The distributed framework (package cluster) reuses this engine verbatim
// on every node: a node is just an engine fed externally computed ranges,
// which is exactly the paper's design ("every available processor is
// allocated a (contiguous) set of edges S, and is responsible for finding
// all triangles in the graph which contain pivot edges in S, by using
// MGT").
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/mgt"
	"pdtl/internal/obs"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// Options parameterize a local PDTL run.
type Options struct {
	// Workers is P, the number of concurrent MGT runners. Non-positive
	// selects runtime.NumCPU().
	Workers int
	// MemEdges is M, the per-worker memory budget in adjacency entries.
	// Non-positive selects DefaultMemEdges.
	MemEdges int
	// Strategy selects the load balancer; the default (InDegree) is the
	// paper's, Naive reproduces the "w/o LB" ablation.
	Strategy balance.Strategy
	// OrientWorkers is the parallelism of the orientation step;
	// non-positive means Workers.
	OrientWorkers int
	// BufBytes is each runner's sequential-scan buffer size.
	BufBytes int
	// Sinks, when non-nil, must have one entry per worker; worker i streams
	// its triangles to Sinks[i]. Nil means counting only — runners then
	// take the closure-free count-only kernel path (scan.CountKernel, and
	// scan.CountBlockKernel with word-parallel bitmap counting on
	// compressed stores), which produces the identical triangle count.
	Sinks []mgt.Sink
	// KeepOriented leaves the oriented store on disk after the run (the
	// cluster layer relies on this to copy it to clients).
	KeepOriented bool
	// Scan selects the scan source the engine constructs and owns for the
	// run. The default (scan.SourceAuto) picks scan.SourceShared when
	// more than one runner shares the store — one physical scan per round
	// of passes instead of P — and scan.SourceBuffered (the paper's
	// per-runner scans) for a single runner.
	Scan scan.SourceKind
	// Kernel selects the sorted-array intersection kernel; the default is
	// scan.KernelMerge, the paper's. All kernels produce identical
	// triangles.
	Kernel scan.KernelKind
	// Sched selects the chunk scheduler: sched.Static (the paper's one-shot
	// range→runner binding, the default) or sched.Stealing (the plan is cut
	// into Chunks·Workers weighted chunks drawn dynamically by a pool of
	// Workers runners, so an early finisher takes the struggler's remaining
	// work instead of idling).
	Sched sched.Mode
	// Store selects the on-disk format of the oriented store the engine
	// builds when its input is unoriented (empty means graph.FormatPlain).
	// An already-oriented input is used in whatever format it is in — the
	// calculation phase is format-agnostic.
	Store graph.Format
	// Chunks is K, the chunks-per-worker factor of the stealing scheduler;
	// non-positive selects sched.DefaultChunksPerWorker. Ignored under
	// Static.
	Chunks int
	// NewSource, when non-nil, replaces scan.New as the constructor of the
	// run's scan source. This is how an overlay view (internal/live) puts a
	// synthetic store in front of the runners: d is then an in-memory
	// merged Disk, and the factory returns a source that resolves reads
	// against base+delta while the engine, runners, and kernels stay
	// unchanged. kind arrives already Resolved.
	NewSource func(kind scan.SourceKind, d *graph.Disk, cfg scan.Config) (scan.Source, error)
}

// DefaultMemEdges is 1<<22 entries = 16 MiB per worker, the same order as
// the paper's 1 GB/core scaled to laptop-size datasets.
const DefaultMemEdges = 1 << 22

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.MemEdges <= 0 {
		o.MemEdges = DefaultMemEdges
	}
	if o.OrientWorkers <= 0 {
		o.OrientWorkers = o.Workers
	}
	if o.NewSource == nil {
		o.NewSource = scan.New
	}
	return o
}

// WorkerStat is one runner's outcome. Under the static scheduler Range is
// the runner's single assigned range and Chunks is 1; under stealing Range
// is the convex hull of the chunks the runner drew from the queue and
// Chunks counts them (the ranges need not be contiguous), with the folded
// Stats summing wall time across the runner's sequential chunks.
type WorkerStat struct {
	Worker int
	Range  balance.Range
	Chunks int
	mgt.Stats
}

// ChunkStat is one chunk's outcome under the stealing scheduler. Everything
// except Worker is deterministic for a given (store, plan, MemEdges): which
// runner executed the chunk depends on timing, but what the chunk computed
// does not — the straggler regression tests rely on this.
type ChunkStat struct {
	// Chunk is the index in the chunked plan (= listing concatenation
	// order).
	Chunk int
	// Worker is the pool runner that executed the chunk.
	Worker int
	Range  balance.Range
	mgt.Stats
}

// Result is the outcome of a local PDTL run.
type Result struct {
	// Triangles is the exact triangle count.
	Triangles uint64
	// Orientation describes the preprocessing step; nil when the input was
	// already oriented.
	Orientation *orient.Result
	// Plan is the load-balancing assignment used.
	Plan balance.Plan
	// Workers holds per-runner statistics.
	Workers []WorkerStat
	// PlanTime is the load-balance planning slice of the calculation
	// phase (in-degree load + range/chunk splitting) — the per-phase wall
	// breakdown the bench schema reports.
	PlanTime time.Duration
	// CalcTime is the calculation phase: load balancing plus the slowest
	// runner (the "struggler" that the paper says determines overall
	// calculation time).
	CalcTime time.Duration
	// TotalTime is orientation + calculation.
	TotalTime time.Duration
	// OrientedBase is the path of the oriented store used.
	OrientedBase string
	// Scan is the concrete scan source the run used (auto resolved).
	Scan scan.SourceKind
	// SourceIO is the I/O the scan source performed on its own behalf:
	// the shared broadcaster's single scan per round, or the in-memory
	// preload. Zero for buffered sources, whose scans are charged to the
	// per-worker counters.
	SourceIO ioacct.Stats
	// Sched is the chunk scheduler the run used.
	Sched sched.Mode
	// ChunkStats holds the per-chunk outcomes of a stealing run (nil under
	// the static scheduler). Plan.Ranges and ChunkStats are index-aligned.
	ChunkStats []ChunkStat
}

// TotalStats sums the runner statistics (Wall is the straggler max) plus
// the source-level I/O, so total byte volumes are comparable across scan
// sources.
func (r *Result) TotalStats() mgt.Stats {
	var total mgt.Stats
	for _, w := range r.Workers {
		total = total.Add(w.Stats)
	}
	total.IO = total.IO.Add(r.SourceIO)
	return total
}

// Process counts (or lists) the triangles of the graph stored at base.
// Unoriented inputs are oriented first into base+".oriented" (the paper's
// master-side preprocessing); oriented inputs go straight to the
// calculation phase. Cancelling ctx aborts the run within one memory window
// per runner and returns ctx.Err(); nil means context.Background().
func Process(ctx context.Context, base string, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	//pdtl:nondeterministic-ok wall-clock feeds Result timing stats only, never listing order
	start := time.Now()
	d, err := graph.Open(base)
	if err != nil {
		return nil, err
	}

	cur := obs.CursorFrom(ctx)
	res := &Result{}
	orientedBase := base
	if !d.Meta.Oriented {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		orientedBase = base + ".oriented"
		format, err := graph.ParseFormat(string(opt.Store))
		if err != nil {
			return nil, err
		}
		osp := cur.Begin(obs.SpanOrient)
		ores, err := orient.OrientFormat(base, orientedBase, opt.OrientWorkers, format)
		cur.End(osp)
		if err != nil {
			return nil, err
		}
		res.Orientation = ores
		if d, err = graph.Open(orientedBase); err != nil {
			return nil, err
		}
	}
	res.OrientedBase = orientedBase

	//pdtl:nondeterministic-ok wall-clock feeds Result timing stats only, never listing order
	calcStart := time.Now()
	res.Sched = opt.Sched
	// planFor cuts one range per worker under static, Chunks per worker
	// under stealing — the same cost model, K× finer.
	psp := cur.Begin(obs.SpanPlan)
	plan, err := planFor(d, orientedBase, opt)
	cur.End(psp)
	res.PlanTime = time.Since(calcStart) //pdtl:nondeterministic-ok timing stat only
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	res.Scan = opt.Scan.Resolve(opt.Workers)
	csp := cur.Begin(obs.SpanCalc)
	calcCtx := ctx
	if cur.T != nil {
		calcCtx = obs.ContextWithCursor(ctx, cur.Child(csp))
	}
	var stats []WorkerStat
	var srcIO ioacct.Stats
	if opt.Sched == sched.Stealing {
		stats, res.ChunkStats, srcIO, err = RunChunks(calcCtx, d, plan.Ranges, opt)
	} else {
		stats, srcIO, err = RunRanges(calcCtx, d, plan.Ranges, opt)
	}
	cur.End(csp)
	if err != nil {
		return nil, err
	}
	res.Workers = stats
	res.SourceIO = srcIO
	for _, w := range stats {
		res.Triangles += w.Stats.Triangles
	}
	res.CalcTime = time.Since(calcStart) //pdtl:nondeterministic-ok timing stat only
	res.TotalTime = time.Since(start)    //pdtl:nondeterministic-ok timing stat only
	return res, nil
}

// planFor computes the ranges for an oriented store: one per worker under
// the static scheduler, Chunks per worker under stealing (the same cost
// model cut K× finer via balance.SplitChunks).
func planFor(d *graph.Disk, orientedBase string, opt Options) (balance.Plan, error) {
	in := balance.Inputs{Offsets: d.Offsets, OutDeg: d.Degrees}
	if opt.Strategy == balance.InDegree || opt.Strategy == balance.Cost {
		var err error
		in.InDeg, err = orient.LoadInDegrees(orientedBase, d.NumVertices())
		if err != nil {
			return balance.Plan{}, fmt.Errorf("core: load balancing needs the in-degree file: %w", err)
		}
	}
	if opt.Strategy == balance.Cost {
		var err error
		in.ConeCost, err = balance.ConeCosts(d)
		if err != nil {
			return balance.Plan{}, fmt.Errorf("core: cost balancing scan: %w", err)
		}
	}
	if opt.Sched == sched.Stealing {
		perWorker := opt.Chunks
		if perWorker <= 0 {
			perWorker = sched.DefaultChunksPerWorker
		}
		return balance.SplitChunks(in, opt.Workers, perWorker, opt.Strategy)
	}
	return balance.SplitInputs(in, opt.Workers, opt.Strategy)
}

// Plan exposes planFor for the distributed master, which computes the
// global N·P-range plan centrally (Section IV-B1).
func Plan(d *graph.Disk, orientedBase string, processors int, strategy balance.Strategy) (balance.Plan, error) {
	return planFor(d, orientedBase, Options{Workers: processors, Strategy: strategy})
}

// PlanChunks is the stealing master's plan: the global N·P-processor
// assignment cut into perWorker weighted chunks per processor
// (non-positive perWorker selects the default), dispensed in batches
// instead of pre-split.
func PlanChunks(d *graph.Disk, orientedBase string, processors, perWorker int, strategy balance.Strategy) (balance.Plan, error) {
	return planFor(d, orientedBase, Options{
		Workers:  processors,
		Chunks:   perWorker,
		Strategy: strategy,
		Sched:    sched.Stealing,
	})
}

// RunRanges runs one MGT runner per range, concurrently, against the
// oriented store d. It is the node-side calculation phase: the distributed
// layer calls it with the ranges assigned by the master.
//
// The engine constructs and owns the scan source here: every runner gets a
// per-runner handle (charged to its own counter), and the source-level I/O
// — the shared broadcaster's physical scans, or the in-memory preload — is
// returned alongside the per-worker stats.
//
// ctx cancels the run cooperatively: every runner aborts within one memory
// window, blocked shared-broadcast waits unblock immediately, and the
// source plus all handles are torn down before RunRanges returns ctx.Err()
// — no goroutines or file descriptors outlive the call.
func RunRanges(ctx context.Context, d *graph.Disk, ranges []balance.Range, opt Options) ([]WorkerStat, ioacct.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	if !d.Meta.Oriented {
		return nil, ioacct.Stats{}, fmt.Errorf("core: RunRanges requires an oriented store")
	}
	if opt.Sinks != nil && len(opt.Sinks) != len(ranges) {
		return nil, ioacct.Stats{}, fmt.Errorf("core: %d sinks for %d ranges", len(opt.Sinks), len(ranges))
	}
	kernel, err := scan.NewKernel(opt.Kernel)
	if err != nil {
		return nil, ioacct.Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ioacct.Stats{}, err
	}
	src, err := opt.NewSource(opt.Scan.Resolve(len(ranges)), d, scan.Config{
		BufBytes: opt.BufBytes,
		Counter:  ioacct.NewCounter(0),
		Ctx:      ctx,
	})
	if err != nil {
		return nil, ioacct.Stats{}, err
	}
	defer src.Close()

	// All handles are opened before any runner starts: a shared source
	// uses the set of open handles as its broadcast-round quorum, so
	// opening them up front makes round formation deterministic — every
	// runner's pass k rides the same physical scan, P full-file reads
	// collapse to one.
	counters := make([]*ioacct.Counter, len(ranges))
	handles := make([]scan.Handle, len(ranges))
	for i := range ranges {
		counters[i] = ioacct.NewCounter(0)
		h, err := src.Handle(counters[i])
		if err != nil {
			for _, open := range handles[:i] {
				open.Close()
			}
			return nil, src.IO(), err
		}
		handles[i] = h
	}

	stats := make([]WorkerStat, len(ranges))
	errs := make([]error, len(ranges))
	cur := obs.CursorFrom(ctx)
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r balance.Range) {
			defer wg.Done()
			// The handle must be closed as soon as this runner is done
			// (not when all runners are), so that stragglers with more
			// passes left stop waiting on it for round quorum.
			defer handles[i].Close()
			// One context per runner, stamping its chunk spans with the
			// runner index (a traced run pays one allocation per runner
			// here; the per-chunk recording itself never allocates).
			rctx := ctx
			if cur.T != nil {
				rctx = obs.ContextWithCursor(ctx, cur.WithWorker(i))
			}
			cfg := mgt.Config{
				MemEdges: opt.MemEdges,
				Range:    r,
				Counter:  counters[i],
				Source:   handles[i],
				Kernel:   kernel,
			}
			if opt.Sinks != nil {
				cfg.Sink = opt.Sinks[i]
			}
			st, err := mgt.Run(rctx, d, cfg)
			stats[i] = WorkerStat{Worker: i, Range: r, Chunks: 1, Stats: st}
			errs[i] = err
		}(i, r)
	}
	wg.Wait()
	// A cancelled run reports the bare ctx.Err() regardless of which runner
	// (or the scan source) surfaced the cancellation first.
	if err := ctx.Err(); err != nil {
		return stats, src.IO(), err
	}
	for _, err := range errs {
		if err != nil {
			return stats, src.IO(), err
		}
	}
	return stats, src.IO(), nil
}

// RunChunks is the stealing-mode calculation phase: a pool of opt.Workers
// persistent MGT runners drains the chunk queue, each runner drawing the
// next chunk the moment it finishes its current one. chunks is typically a
// K·P-way weighted plan (balance.SplitChunks); any partition of the global
// edge range is correct — every triangle is still reported exactly once, by
// the chunk holding its pivot edge.
//
// Sinks, when non-nil in opt, must have one entry per CHUNK (not per
// worker): chunk i's triangles go to Sinks[i] regardless of which runner
// executed it, so listing output concatenated in chunk order is
// deterministic even though the chunk→runner assignment is not. A sink is
// only ever used by one runner at a time (the one executing its chunk), so
// per-sink state needs no locking.
//
// The returned WorkerStats fold each runner's chunks (wall summed, range =
// hull); ChunkStats align with chunks index-wise, zero-valued for chunks a
// cancelled or failed run never started.
//
// Scan-source semantics are identical to RunRanges: every runner holds one
// handle for its whole lifetime, opened up front, so a shared source's
// quorum-based rounds keep doing exactly one physical scan per round — a
// runner between chunks looks no different to the broadcaster than a runner
// between memory windows. A runner that finds the queue empty closes its
// handle, shrinking the quorum for the ones still working.
func RunChunks(ctx context.Context, d *graph.Disk, chunks []balance.Range, opt Options) ([]WorkerStat, []ChunkStat, ioacct.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	if !d.Meta.Oriented {
		return nil, nil, ioacct.Stats{}, fmt.Errorf("core: RunChunks requires an oriented store")
	}
	if opt.Sinks != nil && len(opt.Sinks) != len(chunks) {
		return nil, nil, ioacct.Stats{}, fmt.Errorf("core: %d sinks for %d chunks (stealing sinks are per chunk)", len(opt.Sinks), len(chunks))
	}
	workers := opt.Workers
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers < 1 {
		workers = 1
	}
	kernel, err := scan.NewKernel(opt.Kernel)
	if err != nil {
		return nil, nil, ioacct.Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, ioacct.Stats{}, err
	}
	src, err := opt.NewSource(opt.Scan.Resolve(workers), d, scan.Config{
		BufBytes: opt.BufBytes,
		Counter:  ioacct.NewCounter(0),
		Ctx:      ctx,
	})
	if err != nil {
		return nil, nil, ioacct.Stats{}, err
	}
	defer src.Close()

	// One handle per pool runner, opened before any runner starts: the
	// same deterministic quorum rule as RunRanges.
	counters := make([]*ioacct.Counter, workers)
	handles := make([]scan.Handle, workers)
	for i := range handles {
		counters[i] = ioacct.NewCounter(0)
		h, err := src.Handle(counters[i])
		if err != nil {
			for _, open := range handles[:i] {
				open.Close()
			}
			return nil, nil, src.IO(), err
		}
		handles[i] = h
	}

	queue := sched.NewQueue(chunks)
	ledgers := make([]sched.Ledger, workers)
	chunkStats := make([]ChunkStat, len(chunks))
	errs := make([]error, workers)
	cur := obs.CursorFrom(ctx)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Closing the handle as soon as this runner is out of work
			// shrinks the shared source's round quorum, exactly like a
			// static runner finishing its final pass.
			defer handles[i].Close()
			// One context per pool runner stamps its chunk spans with the
			// runner index; the per-chunk span recording in
			// mgt.(*Runner).RunRange is allocation-free.
			rctx := ctx
			if cur.T != nil {
				rctx = obs.ContextWithCursor(ctx, cur.WithWorker(i))
			}
			ledgers[i].Worker = i
			runner, err := mgt.NewRunner(d, mgt.Config{
				MemEdges: opt.MemEdges,
				Counter:  counters[i],
				Source:   handles[i],
				Kernel:   kernel,
			})
			if err != nil {
				errs[i] = err
				queue.Stop()
				return
			}
			for {
				ci, rng, ok := queue.Next()
				if !ok {
					return
				}
				var sink mgt.Sink
				if opt.Sinks != nil {
					sink = opt.Sinks[ci]
				}
				st, err := runner.RunRange(rctx, rng, sink)
				chunkStats[ci] = ChunkStat{Chunk: ci, Worker: i, Range: rng, Stats: st}
				ledgers[i].Fold(rng, st)
				if err != nil {
					errs[i] = err
					// Stop the drain; runners mid-chunk finish (or hit the
					// same cancellation) on their own.
					queue.Stop()
					return
				}
			}
		}(i)
	}
	wg.Wait()

	stats := make([]WorkerStat, workers)
	for i, l := range ledgers {
		stats[i] = WorkerStat{
			Worker: l.Worker,
			Range:  balance.Range{Lo: l.Lo, Hi: l.Hi},
			Chunks: l.Chunks,
			Stats:  l.Stats,
		}
	}
	// A cancelled run reports the bare ctx.Err() regardless of which runner
	// (or the scan source) surfaced the cancellation first.
	if err := ctx.Err(); err != nil {
		return stats, chunkStats, src.IO(), err
	}
	for _, err := range errs {
		if err != nil {
			return stats, chunkStats, src.IO(), err
		}
	}
	return stats, chunkStats, src.IO(), nil
}

// Package core is the PDTL engine of Section IV-B: the paper's primary
// contribution. It ties the substrates together on one machine —
// orientation (once), load balancing, and P concurrent modified-MGT runners
// over contiguous edge ranges — and exposes the per-worker accounting that
// the distributed layer and the experiment harness aggregate.
//
// The distributed framework (package cluster) reuses this engine verbatim
// on every node: a node is just an engine fed externally computed ranges,
// which is exactly the paper's design ("every available processor is
// allocated a (contiguous) set of edges S, and is responsible for finding
// all triangles in the graph which contain pivot edges in S, by using
// MGT").
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/mgt"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
)

// Options parameterize a local PDTL run.
type Options struct {
	// Workers is P, the number of concurrent MGT runners. Non-positive
	// selects runtime.NumCPU().
	Workers int
	// MemEdges is M, the per-worker memory budget in adjacency entries.
	// Non-positive selects DefaultMemEdges.
	MemEdges int
	// Strategy selects the load balancer; the default (InDegree) is the
	// paper's, Naive reproduces the "w/o LB" ablation.
	Strategy balance.Strategy
	// OrientWorkers is the parallelism of the orientation step;
	// non-positive means Workers.
	OrientWorkers int
	// BufBytes is each runner's sequential-scan buffer size.
	BufBytes int
	// Sinks, when non-nil, must have one entry per worker; worker i streams
	// its triangles to Sinks[i]. Nil means counting only.
	Sinks []mgt.Sink
	// KeepOriented leaves the oriented store on disk after the run (the
	// cluster layer relies on this to copy it to clients).
	KeepOriented bool
	// Scan selects the scan source the engine constructs and owns for the
	// run. The default (scan.SourceAuto) picks scan.SourceShared when
	// more than one runner shares the store — one physical scan per round
	// of passes instead of P — and scan.SourceBuffered (the paper's
	// per-runner scans) for a single runner.
	Scan scan.SourceKind
	// Kernel selects the sorted-array intersection kernel; the default is
	// scan.KernelMerge, the paper's. All kernels produce identical
	// triangles.
	Kernel scan.KernelKind
}

// DefaultMemEdges is 1<<22 entries = 16 MiB per worker, the same order as
// the paper's 1 GB/core scaled to laptop-size datasets.
const DefaultMemEdges = 1 << 22

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.MemEdges <= 0 {
		o.MemEdges = DefaultMemEdges
	}
	if o.OrientWorkers <= 0 {
		o.OrientWorkers = o.Workers
	}
	return o
}

// WorkerStat is one runner's outcome.
type WorkerStat struct {
	Worker int
	Range  balance.Range
	mgt.Stats
}

// Result is the outcome of a local PDTL run.
type Result struct {
	// Triangles is the exact triangle count.
	Triangles uint64
	// Orientation describes the preprocessing step; nil when the input was
	// already oriented.
	Orientation *orient.Result
	// Plan is the load-balancing assignment used.
	Plan balance.Plan
	// Workers holds per-runner statistics.
	Workers []WorkerStat
	// CalcTime is the calculation phase: load balancing plus the slowest
	// runner (the "struggler" that the paper says determines overall
	// calculation time).
	CalcTime time.Duration
	// TotalTime is orientation + calculation.
	TotalTime time.Duration
	// OrientedBase is the path of the oriented store used.
	OrientedBase string
	// Scan is the concrete scan source the run used (auto resolved).
	Scan scan.SourceKind
	// SourceIO is the I/O the scan source performed on its own behalf:
	// the shared broadcaster's single scan per round, or the in-memory
	// preload. Zero for buffered sources, whose scans are charged to the
	// per-worker counters.
	SourceIO ioacct.Stats
}

// TotalStats sums the runner statistics (Wall is the straggler max) plus
// the source-level I/O, so total byte volumes are comparable across scan
// sources.
func (r *Result) TotalStats() mgt.Stats {
	var total mgt.Stats
	for _, w := range r.Workers {
		total = total.Add(w.Stats)
	}
	total.IO = total.IO.Add(r.SourceIO)
	return total
}

// Process counts (or lists) the triangles of the graph stored at base.
// Unoriented inputs are oriented first into base+".oriented" (the paper's
// master-side preprocessing); oriented inputs go straight to the
// calculation phase. Cancelling ctx aborts the run within one memory window
// per runner and returns ctx.Err(); nil means context.Background().
func Process(ctx context.Context, base string, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	start := time.Now()
	d, err := graph.Open(base)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	orientedBase := base
	if !d.Meta.Oriented {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		orientedBase = base + ".oriented"
		ores, err := orient.Orient(base, orientedBase, opt.OrientWorkers)
		if err != nil {
			return nil, err
		}
		res.Orientation = ores
		if d, err = graph.Open(orientedBase); err != nil {
			return nil, err
		}
	}
	res.OrientedBase = orientedBase

	calcStart := time.Now()
	plan, err := planFor(d, orientedBase, opt)
	if err != nil {
		return nil, err
	}
	res.Plan = plan

	stats, srcIO, err := RunRanges(ctx, d, plan.Ranges, opt)
	if err != nil {
		return nil, err
	}
	res.Workers = stats
	res.Scan = opt.Scan.Resolve(len(plan.Ranges))
	res.SourceIO = srcIO
	for _, w := range stats {
		res.Triangles += w.Stats.Triangles
	}
	res.CalcTime = time.Since(calcStart)
	res.TotalTime = time.Since(start)
	return res, nil
}

// planFor computes the per-worker ranges for an oriented store.
func planFor(d *graph.Disk, orientedBase string, opt Options) (balance.Plan, error) {
	in := balance.Inputs{Offsets: d.Offsets, OutDeg: d.Degrees}
	if opt.Strategy == balance.InDegree || opt.Strategy == balance.Cost {
		var err error
		in.InDeg, err = orient.LoadInDegrees(orientedBase, d.NumVertices())
		if err != nil {
			return balance.Plan{}, fmt.Errorf("core: load balancing needs the in-degree file: %w", err)
		}
	}
	if opt.Strategy == balance.Cost {
		var err error
		in.ConeCost, err = balance.ConeCosts(d)
		if err != nil {
			return balance.Plan{}, fmt.Errorf("core: cost balancing scan: %w", err)
		}
	}
	return balance.SplitInputs(in, opt.Workers, opt.Strategy)
}

// Plan exposes planFor for the distributed master, which computes the
// global N·P-range plan centrally (Section IV-B1).
func Plan(d *graph.Disk, orientedBase string, processors int, strategy balance.Strategy) (balance.Plan, error) {
	return planFor(d, orientedBase, Options{Workers: processors, Strategy: strategy})
}

// RunRanges runs one MGT runner per range, concurrently, against the
// oriented store d. It is the node-side calculation phase: the distributed
// layer calls it with the ranges assigned by the master.
//
// The engine constructs and owns the scan source here: every runner gets a
// per-runner handle (charged to its own counter), and the source-level I/O
// — the shared broadcaster's physical scans, or the in-memory preload — is
// returned alongside the per-worker stats.
//
// ctx cancels the run cooperatively: every runner aborts within one memory
// window, blocked shared-broadcast waits unblock immediately, and the
// source plus all handles are torn down before RunRanges returns ctx.Err()
// — no goroutines or file descriptors outlive the call.
func RunRanges(ctx context.Context, d *graph.Disk, ranges []balance.Range, opt Options) ([]WorkerStat, ioacct.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	if !d.Meta.Oriented {
		return nil, ioacct.Stats{}, fmt.Errorf("core: RunRanges requires an oriented store")
	}
	if opt.Sinks != nil && len(opt.Sinks) != len(ranges) {
		return nil, ioacct.Stats{}, fmt.Errorf("core: %d sinks for %d ranges", len(opt.Sinks), len(ranges))
	}
	kernel, err := scan.NewKernel(opt.Kernel)
	if err != nil {
		return nil, ioacct.Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ioacct.Stats{}, err
	}
	src, err := scan.New(opt.Scan.Resolve(len(ranges)), d, scan.Config{
		BufBytes: opt.BufBytes,
		Counter:  ioacct.NewCounter(0),
		Ctx:      ctx,
	})
	if err != nil {
		return nil, ioacct.Stats{}, err
	}
	defer src.Close()

	// All handles are opened before any runner starts: a shared source
	// uses the set of open handles as its broadcast-round quorum, so
	// opening them up front makes round formation deterministic — every
	// runner's pass k rides the same physical scan, P full-file reads
	// collapse to one.
	counters := make([]*ioacct.Counter, len(ranges))
	handles := make([]scan.Handle, len(ranges))
	for i := range ranges {
		counters[i] = ioacct.NewCounter(0)
		h, err := src.Handle(counters[i])
		if err != nil {
			for _, open := range handles[:i] {
				open.Close()
			}
			return nil, src.IO(), err
		}
		handles[i] = h
	}

	stats := make([]WorkerStat, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r balance.Range) {
			defer wg.Done()
			// The handle must be closed as soon as this runner is done
			// (not when all runners are), so that stragglers with more
			// passes left stop waiting on it for round quorum.
			defer handles[i].Close()
			cfg := mgt.Config{
				MemEdges: opt.MemEdges,
				Range:    r,
				Counter:  counters[i],
				Source:   handles[i],
				Kernel:   kernel,
			}
			if opt.Sinks != nil {
				cfg.Sink = opt.Sinks[i]
			}
			st, err := mgt.Run(ctx, d, cfg)
			stats[i] = WorkerStat{Worker: i, Range: r, Stats: st}
			errs[i] = err
		}(i, r)
	}
	wg.Wait()
	// A cancelled run reports the bare ctx.Err() regardless of which runner
	// (or the scan source) surfaced the cancellation first.
	if err := ctx.Err(); err != nil {
		return stats, src.IO(), err
	}
	for _, err := range errs {
		if err != nil {
			return stats, src.IO(), err
		}
	}
	return stats, src.IO(), nil
}

package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// orientedDisk writes g, orients it, and opens the oriented store.
func orientedDisk(t testing.TB, g *graph.CSR) *graph.Disk {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "g")
	if err := graph.WriteCSR(src, "g", g); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "g.oriented")
	if _, err := orient.Orient(src, dst, 2); err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// equalSplit cuts the adjacency range into p equal pieces.
func equalSplit(d *graph.Disk, p int) []balance.Range {
	total := d.Meta.AdjEntries
	ranges := make([]balance.Range, p)
	for i := 0; i < p; i++ {
		ranges[i] = balance.Range{
			Lo: total * uint64(i) / uint64(p),
			Hi: total * uint64(i+1) / uint64(p),
		}
	}
	return ranges
}

// recordingSink appends triangles in listing order; one per runner, so no
// locking and the per-runner sequence is deterministic.
type recordingSink struct {
	tris [][3]graph.Vertex
}

func (s *recordingSink) Triangle(u, v, w graph.Vertex) {
	s.tris = append(s.tris, [3]graph.Vertex{u, v, w})
}

// TestAllSourceKernelCombosIdentical is the cross-check demanded by the
// execution-layer refactor: for several generated graphs, every
// (ScanSource × IntersectKernel) combination must produce the same
// triangle count as the in-memory baseline AND the same listed triangle
// sequence per runner — not just the same set, since sources and kernels
// both promise order-preserving equivalence.
func TestAllSourceKernelCombosIdentical(t *testing.T) {
	graphs := []struct {
		name string
		g    func() (*graph.CSR, error)
		// memEdges small enough to force several passes; for k40 it is
		// below d*max, forcing the segmented large-vertex path too.
		memEdges int
	}{
		{"er", func() (*graph.CSR, error) { return gen.ErdosRenyi(300, 3000, 7) }, 128},
		{"powerlaw", func() (*graph.CSR, error) { return gen.PowerLaw(400, 6000, 2.2, 11) }, 96},
		{"community", func() (*graph.CSR, error) {
			return gen.Community(300, 4000, gen.CommunityParams{Communities: 6, IntraProb: 0.8, Exponent: 2.3}, 3)
		}, 128},
		{"k40", func() (*graph.CSR, error) { return gen.Complete(40) }, 16},
		{"trigrid", func() (*graph.CSR, error) { return gen.TriGrid(9, 9) }, 32},
	}
	sources := []scan.SourceKind{scan.SourceBuffered, scan.SourceShared, scan.SourceMem}
	kernels := []scan.KernelKind{scan.KernelMerge, scan.KernelGallop, scan.KernelAdaptive}
	const workers = 3

	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			want := baseline.Forward(g)
			wantSet := map[[3]graph.Vertex]bool{}
			baseline.ForwardList(g, func(u, v, w graph.Vertex) {
				wantSet[[3]graph.Vertex{u, v, w}] = true
			})
			d := orientedDisk(t, g)
			ranges := equalSplit(d, workers)

			// refTris[i] is runner i's listing under the first combo; every
			// other combo must reproduce it exactly.
			var refTris [][][3]graph.Vertex
			for _, src := range sources {
				for _, kern := range kernels {
					label := fmt.Sprintf("%s/%s", src, kern)
					sinks := make([]mgt.Sink, workers)
					recs := make([]*recordingSink, workers)
					for i := range sinks {
						recs[i] = &recordingSink{}
						sinks[i] = recs[i]
					}
					stats, _, err := RunRanges(context.Background(), d, ranges, Options{
						MemEdges: tc.memEdges,
						Scan:     src,
						Kernel:   kern,
						Sinks:    sinks,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					var total uint64
					for _, w := range stats {
						total += w.Stats.Triangles
					}
					if total != want {
						t.Fatalf("%s: %d triangles, want %d", label, total, want)
					}
					listed := map[[3]graph.Vertex]bool{}
					for _, rec := range recs {
						for _, tri := range rec.tris {
							if listed[tri] {
								t.Fatalf("%s: triangle %v listed twice", label, tri)
							}
							listed[tri] = true
							if !wantSet[tri] {
								t.Fatalf("%s: listed %v which the baseline does not contain", label, tri)
							}
						}
					}
					if len(listed) != len(wantSet) {
						t.Fatalf("%s: listed %d distinct triangles, want %d", label, len(listed), len(wantSet))
					}
					if refTris == nil {
						refTris = make([][][3]graph.Vertex, workers)
						for i, rec := range recs {
							refTris[i] = rec.tris
						}
						continue
					}
					for i, rec := range recs {
						if len(rec.tris) != len(refTris[i]) {
							t.Fatalf("%s: runner %d listed %d triangles, reference combo listed %d",
								label, i, len(rec.tris), len(refTris[i]))
						}
						for k := range rec.tris {
							if rec.tris[k] != refTris[i][k] {
								t.Fatalf("%s: runner %d triangle %d = %v, reference %v",
									label, i, k, rec.tris[k], refTris[i][k])
							}
						}
					}
				}
			}
		})
	}
}

// TestSchedSourceKernelCombosIdentical extends the cross-check to the
// scheduler axis: sched(static, stealing) × scan(buffered, shared, mem) ×
// kernel(merge, gallop, adaptive) must all produce identical,
// order-normalized triangle listings versus the in-memory baseline. On top
// of the set identity, the chunk-indexed listings of every stealing combo
// must agree exactly (same sequence per chunk) — sources and kernels
// promise order-preserving equivalence, and chunk-indexed sinks make that
// promise hold under dynamic assignment too.
func TestSchedSourceKernelCombosIdentical(t *testing.T) {
	graphs := []struct {
		name     string
		g        func() (*graph.CSR, error)
		memEdges int
	}{
		{"powerlaw", func() (*graph.CSR, error) { return gen.PowerLaw(400, 6000, 2.2, 11) }, 96},
		{"k40", func() (*graph.CSR, error) { return gen.Complete(40) }, 16},
	}
	sources := []scan.SourceKind{scan.SourceBuffered, scan.SourceShared, scan.SourceMem}
	kernels := []scan.KernelKind{scan.KernelMerge, scan.KernelGallop, scan.KernelAdaptive}
	const workers = 3
	const perWorker = 4

	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			want := baseline.Forward(g)
			wantSet := map[[3]graph.Vertex]bool{}
			baseline.ForwardList(g, func(u, v, w graph.Vertex) {
				wantSet[[3]graph.Vertex{u, v, w}] = true
			})
			d := orientedDisk(t, g)
			staticRanges := equalSplit(d, workers)
			chunks := equalSplit(d, workers*perWorker)

			// refChunkTris[c] is chunk c's exact listing under the first
			// stealing combo; every other stealing combo must match it.
			var refChunkTris [][][3]graph.Vertex
			for _, mode := range []sched.Mode{sched.Static, sched.Stealing} {
				for _, src := range sources {
					for _, kern := range kernels {
						label := fmt.Sprintf("%s/%s/%s", mode, src, kern)
						ranges := staticRanges
						if mode == sched.Stealing {
							ranges = chunks
						}
						sinks := make([]mgt.Sink, len(ranges))
						recs := make([]*recordingSink, len(ranges))
						for i := range sinks {
							recs[i] = &recordingSink{}
							sinks[i] = recs[i]
						}
						opt := Options{
							Workers:  workers,
							MemEdges: tc.memEdges,
							Scan:     src,
							Kernel:   kern,
							Sinks:    sinks,
						}
						var stats []WorkerStat
						var err error
						if mode == sched.Stealing {
							stats, _, _, err = RunChunks(context.Background(), d, ranges, opt)
						} else {
							stats, _, err = RunRanges(context.Background(), d, ranges, opt)
						}
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						var total uint64
						for _, w := range stats {
							total += w.Stats.Triangles
						}
						if total != want {
							t.Fatalf("%s: %d triangles, want %d", label, total, want)
						}
						listed := map[[3]graph.Vertex]bool{}
						for _, rec := range recs {
							for _, tri := range rec.tris {
								if listed[tri] {
									t.Fatalf("%s: triangle %v listed twice", label, tri)
								}
								listed[tri] = true
								if !wantSet[tri] {
									t.Fatalf("%s: listed %v, absent from baseline", label, tri)
								}
							}
						}
						if len(listed) != len(wantSet) {
							t.Fatalf("%s: %d distinct triangles, want %d", label, len(listed), len(wantSet))
						}
						if mode != sched.Stealing {
							continue
						}
						if refChunkTris == nil {
							refChunkTris = make([][][3]graph.Vertex, len(recs))
							for i, rec := range recs {
								refChunkTris[i] = rec.tris
							}
							continue
						}
						for c, rec := range recs {
							if len(rec.tris) != len(refChunkTris[c]) {
								t.Fatalf("%s: chunk %d listed %d triangles, reference combo %d",
									label, c, len(rec.tris), len(refChunkTris[c]))
							}
							for k := range rec.tris {
								if rec.tris[k] != refChunkTris[c][k] {
									t.Fatalf("%s: chunk %d triangle %d = %v, reference %v",
										label, c, k, rec.tris[k], refChunkTris[c][k])
								}
							}
						}
					}
				}
			}
		})
	}
}

// bitmapBoundaryGraph builds an ultra-high-degree graph whose compressed
// oriented store crosses the segment and bitmap boundaries: every vertex of
// A = {0..119} is adjacent to all of B = {120..420}, so each a's oriented
// out-list is the dense consecutive run B (301 entries — a full 256-entry
// bitmap segment plus a partial tail segment), longer than the small
// memEdges below, which forces the large-vertex path over bitmap blocks
// too. Three intra-B edges plant the triangles (120 per edge).
func bitmapBoundaryGraph() (*graph.CSR, error) {
	var edges []graph.Edge
	for a := uint32(0); a < 120; a++ {
		for b := uint32(120); b <= 420; b++ {
			edges = append(edges, graph.Edge{U: a, V: b})
		}
	}
	for _, e := range [][2]uint32{{120, 121}, {270, 271}, {419, 420}} {
		edges = append(edges, graph.Edge{U: e[0], V: e[1]})
	}
	return graph.FromEdges(421, edges)
}

// TestSchedSourceKernelStoreCombosIdentical is the full execution-layer
// cross-check with the store axis added: sched(static, stealing) ×
// scan(buffered, shared, mem) × kernel(all five) × store(plain, compressed)
// must produce the identical triangle listing — the same sequence per sink,
// not just the same set — and match the in-memory baseline count. Every
// combo then reruns with nil sinks, which selects the closure-free
// count-only kernel path; its total must equal both the listing total and
// the baseline (60 count-only combos per graph). The
// graphs pin the regimes that matter: Complete(40) at memEdges 16 (every
// vertex takes the large-vertex path), a skewed power law, and the
// bitmap-boundary graph above (dense 301-entry lists spanning a full
// bitmap segment plus a tail, exercising bitmap probe paths and
// header-driven block skipping).
func TestSchedSourceKernelStoreCombosIdentical(t *testing.T) {
	graphs := []struct {
		name     string
		g        func() (*graph.CSR, error)
		memEdges int
	}{
		{"powerlaw", func() (*graph.CSR, error) { return gen.PowerLaw(400, 6000, 2.2, 11) }, 96},
		{"k40", func() (*graph.CSR, error) { return gen.Complete(40) }, 16},
		{"bitmap", bitmapBoundaryGraph, 256},
	}
	sources := []scan.SourceKind{scan.SourceBuffered, scan.SourceShared, scan.SourceMem}
	kernels := scan.KernelKinds()
	const workers = 3
	const perWorker = 2

	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			want := baseline.Forward(g)
			d := orientedDisk(t, g)
			cbase := d.Base + ".compressed"
			if err := graph.ConvertStore(d.Base, cbase, graph.FormatCompressed); err != nil {
				t.Fatal(err)
			}
			cd, err := graph.Open(cbase)
			if err != nil {
				t.Fatal(err)
			}
			disks := map[graph.Format]*graph.Disk{
				graph.FormatPlain:      d,
				graph.FormatCompressed: cd,
			}
			staticRanges := equalSplit(d, workers)
			chunks := equalSplit(d, workers*perWorker)

			// ref[mode][i] is sink i's exact listing under the first combo
			// of that scheduler; every other combo — including every
			// compressed-store one — must reproduce it byte for byte.
			ref := map[sched.Mode][][][3]graph.Vertex{}
			for _, format := range []graph.Format{graph.FormatPlain, graph.FormatCompressed} {
				for _, mode := range []sched.Mode{sched.Static, sched.Stealing} {
					for _, src := range sources {
						for _, kern := range kernels {
							label := fmt.Sprintf("%s/%s/%s/%s", format, mode, src, kern)
							ranges := staticRanges
							if mode == sched.Stealing {
								ranges = chunks
							}
							sinks := make([]mgt.Sink, len(ranges))
							recs := make([]*recordingSink, len(ranges))
							for i := range sinks {
								recs[i] = &recordingSink{}
								sinks[i] = recs[i]
							}
							opt := Options{
								Workers:  workers,
								MemEdges: tc.memEdges,
								Scan:     src,
								Kernel:   kern,
								Sinks:    sinks,
							}
							var stats []WorkerStat
							var err error
							if mode == sched.Stealing {
								stats, _, _, err = RunChunks(context.Background(), disks[format], ranges, opt)
							} else {
								stats, _, err = RunRanges(context.Background(), disks[format], ranges, opt)
							}
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							var total uint64
							for _, w := range stats {
								total += w.Stats.Triangles
							}
							if total != want {
								t.Fatalf("%s: %d triangles, want %d", label, total, want)
							}
							// Count-only rerun of the identical combo: nil
							// sinks auto-select the count kernels, whose
							// total must agree with the listing path and
							// the baseline.
							copt := opt
							copt.Sinks = nil
							var cstats []WorkerStat
							if mode == sched.Stealing {
								cstats, _, _, err = RunChunks(context.Background(), disks[format], ranges, copt)
							} else {
								cstats, _, err = RunRanges(context.Background(), disks[format], ranges, copt)
							}
							if err != nil {
								t.Fatalf("%s count-only: %v", label, err)
							}
							var ctotal uint64
							for _, w := range cstats {
								ctotal += w.Stats.Triangles
							}
							if ctotal != want {
								t.Fatalf("%s count-only: %d triangles, want %d", label, ctotal, want)
							}
							if ref[mode] == nil {
								ref[mode] = make([][][3]graph.Vertex, len(recs))
								for i, rec := range recs {
									ref[mode][i] = rec.tris
								}
								continue
							}
							for i, rec := range recs {
								if len(rec.tris) != len(ref[mode][i]) {
									t.Fatalf("%s: sink %d listed %d triangles, reference combo listed %d",
										label, i, len(rec.tris), len(ref[mode][i]))
								}
								for k := range rec.tris {
									if rec.tris[k] != ref[mode][i][k] {
										t.Fatalf("%s: sink %d triangle %d = %v, reference %v",
											label, i, k, rec.tris[k], ref[mode][i][k])
									}
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestSharedScanReadsFileOncePerRound is the I/O claim of the shared
// source, asserted exactly: with P runners doing one pass each, the
// buffered configuration scans the file P times while the shared
// broadcaster reads it once — total scan volume is 1/P.
func TestSharedScanReadsFileOncePerRound(t *testing.T) {
	g, err := gen.ErdosRenyi(500, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedDisk(t, g)
	const P = 4
	ranges := equalSplit(d, P)
	// One pass per runner, and M far above d*max so the large-vertex
	// path (with its extra re-reads) stays cold.
	mem := int(d.Meta.AdjEntries)/P + 1
	if int(d.Meta.MaxOutDegree) > mem {
		t.Fatalf("test graph too skewed: d*max %d > M %d", d.Meta.MaxOutDegree, mem)
	}

	scanBytes := func(kind scan.SourceKind) (scanVol, srcVol int64, triangles uint64) {
		t.Helper()
		stats, srcIO, err := RunRanges(context.Background(), d, ranges, Options{MemEdges: mem, Scan: kind})
		if err != nil {
			t.Fatal(err)
		}
		var workerBytes, loads int64
		for _, w := range stats {
			if w.Stats.Passes != 1 {
				t.Fatalf("%s: runner did %d passes, want 1", kind, w.Stats.Passes)
			}
			workerBytes += w.Stats.IO.BytesRead
			loads += int64(w.Stats.EdgesLoaded) * graph.EntrySize
			triangles += w.Stats.Triangles
		}
		// Window loads cost the same |E*| entries under every source;
		// subtracting them isolates the sequential-scan volume.
		return workerBytes - loads + srcIO.BytesRead, srcIO.BytesRead, triangles
	}

	bufScan, bufSrc, bufTris := scanBytes(scan.SourceBuffered)
	shScan, shSrc, shTris := scanBytes(scan.SourceShared)
	if bufTris != shTris {
		t.Fatalf("counts differ: buffered %d, shared %d", bufTris, shTris)
	}
	if bufSrc != 0 {
		t.Errorf("buffered source read %d bytes itself, want 0", bufSrc)
	}
	if want := int64(P) * d.AdjBytes(); bufScan != want {
		t.Errorf("buffered scan volume = %d, want P·|E*| = %d", bufScan, want)
	}
	if shSrc != d.AdjBytes() {
		t.Errorf("shared broadcaster read %d bytes, want exactly one scan = %d", shSrc, d.AdjBytes())
	}
	if shScan*P != bufScan {
		t.Errorf("shared scan volume %d is not 1/P of buffered %d (P=%d)", shScan, bufScan, P)
	}
}

// TestMemSourcePreloadsOnce: the in-memory source reads the file exactly
// once at construction and the runners do no disk I/O at all.
func TestMemSourcePreloadsOnce(t *testing.T) {
	g, err := gen.PowerLaw(300, 4000, 2.4, 19)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	d := orientedDisk(t, g)
	ranges := equalSplit(d, 3)
	stats, srcIO, err := RunRanges(context.Background(), d, ranges, Options{MemEdges: 64, Scan: scan.SourceMem})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, w := range stats {
		total += w.Stats.Triangles
		if w.Stats.IO.BytesRead != 0 {
			t.Errorf("runner %d read %d bytes from disk under mem source, want 0", w.Worker, w.Stats.IO.BytesRead)
		}
	}
	if total != want {
		t.Errorf("triangles = %d, want %d", total, want)
	}
	if srcIO.BytesRead != d.AdjBytes() {
		t.Errorf("preload read %d bytes, want exactly %d", srcIO.BytesRead, d.AdjBytes())
	}
}

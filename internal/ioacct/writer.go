package ioacct

import (
	"io"
	"time"
)

// Writer wraps an io.Writer, charging every Write to a Counter.
type Writer struct {
	w io.Writer
	c *Counter
}

// NewWriter returns a counting wrapper around w.
func NewWriter(w io.Writer, c *Counter) *Writer {
	return &Writer{w: w, c: c}
}

// Write implements io.Writer.
func (cw *Writer) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := cw.w.Write(p)
	cw.c.AddWrite(n, time.Since(start))
	return n, err
}

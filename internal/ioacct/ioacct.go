// Package ioacct instruments file I/O with the counters needed by the
// Aggarwal–Vitter external-memory cost model that PDTL's analysis is stated
// in (Theorems IV.2 and IV.3 of the paper): bytes moved, block-granularity
// I/O operations, and wall-clock time spent inside read/write calls.
//
// Every disk-touching component of this repository (orientation, MGT
// runners, the distributed copy path, the external sorter and the baseline
// systems) routes its file access through a Counter so that experiments can
// report the CPU-versus-I/O breakdowns of Figures 6–8 and Tables IV and VII
// without OS-specific profiling.
package ioacct

import (
	"sync/atomic"
	"time"
)

// DefaultBlockSize is the block size B of the I/O model. 64 KiB approximates
// the effective request size of a buffered sequential scan on the SSDs used
// in the paper; experiments may override it per Counter.
const DefaultBlockSize = 64 * 1024

// Counter accumulates I/O statistics. All methods are safe for concurrent
// use; a Counter is typically shared by every file handle owned by one
// logical worker so that per-worker breakdowns can be reported.
type Counter struct {
	blockSize int64

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	readOps      atomic.Int64
	writeOps     atomic.Int64
	readNanos    atomic.Int64
	writeNanos   atomic.Int64
}

// NewCounter returns a Counter using blockSize as the I/O model's block size
// B. A non-positive blockSize selects DefaultBlockSize.
func NewCounter(blockSize int) *Counter {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Counter{blockSize: int64(blockSize)}
}

// BlockSize reports the block size B this counter translates bytes into
// block I/Os with.
func (c *Counter) BlockSize() int { return int(c.blockSize) }

// AddRead records a read of n bytes that took d of wall time.
func (c *Counter) AddRead(n int, d time.Duration) {
	if n > 0 {
		c.bytesRead.Add(int64(n))
	}
	c.readOps.Add(1)
	c.readNanos.Add(int64(d))
}

// AddReadWait records time spent blocked waiting for data that is read
// (and charged byte- and op-wise) elsewhere — e.g. a runner stalled on a
// shared scan's ring buffer while the broadcaster owns the physical read.
// Only read time accrues; ops and bytes stay untouched, so ReadOps keeps
// meaning "physical requests".
func (c *Counter) AddReadWait(d time.Duration) {
	c.readNanos.Add(int64(d))
}

// AddWrite records a write of n bytes that took d of wall time.
func (c *Counter) AddWrite(n int, d time.Duration) {
	if n > 0 {
		c.bytesWritten.Add(int64(n))
	}
	c.writeOps.Add(1)
	c.writeNanos.Add(int64(d))
}

// Stats is a point-in-time snapshot of a Counter.
type Stats struct {
	// BytesRead and BytesWritten are the raw byte volumes moved.
	BytesRead    int64
	BytesWritten int64
	// ReadOps and WriteOps count calls into the underlying file, i.e. the
	// number of physical requests after buffering.
	ReadOps  int64
	WriteOps int64
	// ReadTime and WriteTime are the cumulative wall time spent inside the
	// underlying calls. Their sum is the "I/O time" of the paper's
	// breakdowns; wall time minus it is "CPU time".
	ReadTime  time.Duration
	WriteTime time.Duration
	// BlockSize is the model block size B used by BlockReads/BlockWrites.
	BlockSize int
}

// Snapshot returns the current totals.
func (c *Counter) Snapshot() Stats {
	return Stats{
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		ReadOps:      c.readOps.Load(),
		WriteOps:     c.writeOps.Load(),
		ReadTime:     time.Duration(c.readNanos.Load()),
		WriteTime:    time.Duration(c.writeNanos.Load()),
		BlockSize:    int(c.blockSize),
	}
}

// Reset zeroes all counters.
func (c *Counter) Reset() {
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.readOps.Store(0)
	c.writeOps.Store(0)
	c.readNanos.Store(0)
	c.writeNanos.Store(0)
}

// IOTime is the total wall time spent inside read and write calls.
func (s Stats) IOTime() time.Duration { return s.ReadTime + s.WriteTime }

// BlockReads converts the byte volume read into block I/Os of size B,
// rounding up: scan(N) = ceil(N/B) in the Aggarwal–Vitter model.
func (s Stats) BlockReads() int64 { return ceilDiv(s.BytesRead, int64(s.BlockSize)) }

// BlockWrites converts the byte volume written into block I/Os of size B.
func (s Stats) BlockWrites() int64 { return ceilDiv(s.BytesWritten, int64(s.BlockSize)) }

// Add returns the field-wise sum of two snapshots. Both operands must use
// the same block size; the receiver's is kept.
func (s Stats) Add(o Stats) Stats {
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.ReadOps += o.ReadOps
	s.WriteOps += o.WriteOps
	s.ReadTime += o.ReadTime
	s.WriteTime += o.WriteTime
	if s.BlockSize == 0 {
		s.BlockSize = o.BlockSize
	}
	return s
}

// Sub returns the field-wise difference s − o: the activity between two
// snapshots of the same counter. A reusable runner takes one snapshot per
// chunk and reports the delta, so per-chunk statistics stay exact even
// though the counter accumulates across chunks.
func (s Stats) Sub(o Stats) Stats {
	s.BytesRead -= o.BytesRead
	s.BytesWritten -= o.BytesWritten
	s.ReadOps -= o.ReadOps
	s.WriteOps -= o.WriteOps
	s.ReadTime -= o.ReadTime
	s.WriteTime -= o.WriteTime
	return s
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

package ioacct

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterReadWrite(t *testing.T) {
	c := NewCounter(0)
	src := strings.NewReader("hello external memory")
	var dst bytes.Buffer

	n, err := io.Copy(NewWriter(&dst, c), NewReader(src, c))
	if err != nil {
		t.Fatalf("copy: %v", err)
	}
	s := c.Snapshot()
	if s.BytesRead != n {
		t.Errorf("BytesRead = %d, want %d", s.BytesRead, n)
	}
	if s.BytesWritten != n {
		t.Errorf("BytesWritten = %d, want %d", s.BytesWritten, n)
	}
	if s.ReadOps == 0 || s.WriteOps == 0 {
		t.Errorf("expected nonzero op counts, got %+v", s)
	}
	if s.BlockSize != DefaultBlockSize {
		t.Errorf("BlockSize = %d, want default %d", s.BlockSize, DefaultBlockSize)
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter(512)
	c.AddRead(100, 5)
	c.AddWrite(200, 7)
	c.Reset()
	s := c.Snapshot()
	if s.BytesRead != 0 || s.BytesWritten != 0 || s.ReadOps != 0 || s.WriteOps != 0 {
		t.Errorf("Reset left nonzero counters: %+v", s)
	}
}

func TestBlockAccounting(t *testing.T) {
	c := NewCounter(1024)
	c.AddRead(1, 0)
	c.AddRead(1023, 0)
	c.AddRead(1, 0) // total 1025 bytes -> 2 blocks
	s := c.Snapshot()
	if got := s.BlockReads(); got != 2 {
		t.Errorf("BlockReads = %d, want 2", got)
	}
	if got := s.BlockWrites(); got != 0 {
		t.Errorf("BlockWrites = %d, want 0", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{BytesRead: 10, BytesWritten: 20, ReadOps: 1, WriteOps: 2, ReadTime: 3, WriteTime: 4, BlockSize: 512}
	b := Stats{BytesRead: 1, BytesWritten: 2, ReadOps: 3, WriteOps: 4, ReadTime: 5, WriteTime: 6}
	sum := a.Add(b)
	if sum.BytesRead != 11 || sum.BytesWritten != 22 || sum.ReadOps != 4 || sum.WriteOps != 6 {
		t.Errorf("Add mismatch: %+v", sum)
	}
	if sum.IOTime() != 18 {
		t.Errorf("IOTime = %v, want 18", sum.IOTime())
	}
	if sum.BlockSize != 512 {
		t.Errorf("BlockSize = %d, want 512", sum.BlockSize)
	}
}

func TestReaderAtAccounting(t *testing.T) {
	c := NewCounter(0)
	data := bytes.NewReader([]byte("0123456789"))
	ra := NewReaderAt(data, c)
	buf := make([]byte, 4)
	if _, err := ra.ReadAt(buf, 2); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf) != "2345" {
		t.Errorf("ReadAt got %q", buf)
	}
	if s := c.Snapshot(); s.BytesRead != 4 {
		t.Errorf("BytesRead = %d, want 4", s.BytesRead)
	}
}

func TestSectionReader(t *testing.T) {
	c := NewCounter(0)
	data := bytes.NewReader([]byte("abcdefgh"))
	sec := SectionReader(data, 2, 3, c)
	got, err := io.ReadAll(sec)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "cde" {
		t.Errorf("section read %q, want cde", got)
	}
	if s := c.Snapshot(); s.BytesRead != 3 {
		t.Errorf("BytesRead = %d, want 3", s.BytesRead)
	}
}

func TestConcurrentCounting(t *testing.T) {
	c := NewCounter(0)
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.AddRead(3, 1)
				c.AddWrite(5, 1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.BytesRead != workers*per*3 {
		t.Errorf("BytesRead = %d, want %d", s.BytesRead, workers*per*3)
	}
	if s.BytesWritten != workers*per*5 {
		t.Errorf("BytesWritten = %d, want %d", s.BytesWritten, workers*per*5)
	}
	if s.ReadOps != workers*per || s.WriteOps != workers*per {
		t.Errorf("ops mismatch: %+v", s)
	}
}

// Property: for any byte volume and block size, ceil-division semantics hold:
// BlockReads*B >= BytesRead > (BlockReads-1)*B.
func TestBlockReadsProperty(t *testing.T) {
	f := func(vol uint32, bs uint16) bool {
		blockSize := int(bs%4096) + 1
		c := NewCounter(blockSize)
		c.AddRead(int(vol%(1<<20)), 0)
		s := c.Snapshot()
		br := s.BlockReads()
		if s.BytesRead == 0 {
			return br == 0
		}
		return br*int64(blockSize) >= s.BytesRead && (br-1)*int64(blockSize) < s.BytesRead
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeByteCountsIgnored(t *testing.T) {
	c := NewCounter(0)
	c.AddRead(-5, 0)
	c.AddWrite(-5, 0)
	s := c.Snapshot()
	if s.BytesRead != 0 || s.BytesWritten != 0 {
		t.Errorf("negative sizes should not be charged: %+v", s)
	}
	if s.ReadOps != 1 || s.WriteOps != 1 {
		t.Errorf("ops should still count: %+v", s)
	}
}

package ioacct

import (
	"io"
	"time"
)

// Reader wraps an io.Reader, charging every Read to a Counter.
type Reader struct {
	r io.Reader
	c *Counter
}

// NewReader returns a counting wrapper around r. The counter must not be
// nil.
func NewReader(r io.Reader, c *Counter) *Reader {
	return &Reader{r: r, c: c}
}

// Read implements io.Reader.
func (cr *Reader) Read(p []byte) (int, error) {
	start := time.Now()
	n, err := cr.r.Read(p)
	cr.c.AddRead(n, time.Since(start))
	return n, err
}

// ReaderAt wraps an io.ReaderAt, charging every ReadAt to a Counter.
type ReaderAt struct {
	r io.ReaderAt
	c *Counter
}

// NewReaderAt returns a counting wrapper around r.
func NewReaderAt(r io.ReaderAt, c *Counter) *ReaderAt {
	return &ReaderAt{r: r, c: c}
}

// ReadAt implements io.ReaderAt.
func (cr *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := cr.r.ReadAt(p, off)
	cr.c.AddRead(n, time.Since(start))
	return n, err
}

// SectionReader returns an io.Reader over [off, off+n) of r that charges
// reads to c. It mirrors io.NewSectionReader but with accounting.
func SectionReader(r io.ReaderAt, off, n int64, c *Counter) io.Reader {
	return io.NewSectionReader(&ReaderAt{r: r, c: c}, off, n)
}

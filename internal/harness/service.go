package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pdtl/internal/baseline"
	"pdtl/internal/graph"
	"pdtl/internal/service"
)

// BaselineCount computes a dataset's exact triangle count with the
// in-memory reference implementation (internal/baseline) — the independent
// ground truth CI smoke jobs compare engine and service replies against
// (`pdtl-bench -baseline`). key is a dataset key, or — when an undirected
// store exists at that path — a store base, so smoke jobs can ground-truth
// stores written by pdtl-gen (e.g. the -final snapshot of a churn trace).
func (h *Harness) BaselineCount(key string) (uint64, error) {
	g, err := h.loadKeyOrStore(key)
	if err != nil {
		return 0, err
	}
	return baseline.Forward(g), nil
}

func (h *Harness) loadKeyOrStore(key string) (*graph.CSR, error) {
	if _, err := os.Stat(graph.MetaPath(key)); err == nil {
		d, err := graph.Open(key)
		if err != nil {
			return nil, err
		}
		if d.Meta.Oriented {
			// The baseline counts over the undirected graph; an oriented
			// store would silently halve every adjacency.
			return nil, fmt.Errorf("harness: store %s is oriented, baseline needs the undirected graph", key)
		}
		return d.LoadCSR()
	}
	return h.LoadCSR(key)
}

// ServiceLoadResult reports one service load-driver run.
type ServiceLoadResult struct {
	Clients  int
	Requests int // total issued across all clients
	Errors   int
	// Triangles is the exact count every count reply agreed on.
	Triangles uint64
	// EngineRuns is how many calculations actually executed; CacheHits and
	// SharedRuns are the requests the memoization and single-flight layers
	// absorbed.
	EngineRuns uint64
	CacheHits  uint64
	SharedRuns uint64
	Wall       time.Duration
	RPS        float64
}

// ServiceLoad drives an in-process query service (internal/service) with
// concurrent mixed traffic against one dataset: each of `clients` workers
// issues `perClient` requests round-robining over an identical exact count
// (the cache/single-flight path), a second count shape, a limit-bounded
// NDJSON stream (early disconnect), and a deterministic Doulion estimate.
// It returns throughput plus how much work the cache layers absorbed, and
// fails if any count reply disagrees with the dataset's exact count.
func (h *Harness) ServiceLoad(key string, clients, perClient int) (*ServiceLoadResult, error) {
	base, err := h.Store(key)
	if err != nil {
		return nil, err
	}
	want, err := h.BaselineCount(key)
	if err != nil {
		return nil, err
	}
	svc := service.New(service.Config{
		RunSlots: 2,
		// The driver measures cache absorption, not shedding: a queue deep
		// enough for every client keeps admission from rejecting.
		QueueDepth: clients * perClient,
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	if err := svc.RegisterGraph("g", base); err != nil {
		return nil, err
	}
	client := ts.Client()

	var errCount, badCount atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var err error
				switch i % 4 {
				case 0, 1:
					err = loadCount(client, ts.URL+"/v1/graphs/g/count?workers=2", want)
				case 2:
					err = loadStream(client, ts.URL+"/v1/graphs/g/triangles?workers=2&limit=64")
				case 3:
					err = loadEstimate(client, ts.URL+"/v1/graphs/g/estimate")
				}
				if err != nil {
					if _, bad := err.(*countMismatchError); bad {
						badCount.Add(1)
					}
					errCount.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	if badCount.Load() > 0 {
		return nil, fmt.Errorf("harness: %d count replies disagreed with the exact count %d", badCount.Load(), want)
	}
	met := svc.Metrics()
	total := clients * perClient
	res := &ServiceLoadResult{
		Clients:    clients,
		Requests:   total,
		Errors:     int(errCount.Load()),
		Triangles:  want,
		EngineRuns: met.RunsStarted.Load(),
		CacheHits:  met.CacheHits.Load(),
		SharedRuns: met.RunsShared.Load(),
		Wall:       wall,
		RPS:        float64(total) / wall.Seconds(),
	}
	return res, nil
}

type countMismatchError struct{ got, want uint64 }

func (e *countMismatchError) Error() string {
	return fmt.Sprintf("count %d != exact %d", e.got, e.want)
}

func loadCount(client *http.Client, url string, want uint64) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("count status %d", resp.StatusCode)
	}
	var reply struct {
		Triangles uint64 `json:"triangles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return err
	}
	if reply.Triangles != want {
		return &countMismatchError{got: reply.Triangles, want: want}
	}
	return nil
}

func loadStream(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("stream status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for {
		if _, err := br.ReadString('\n'); err != nil {
			return nil // EOF: limit reached or listing complete
		}
	}
}

func loadEstimate(client *http.Client, url string) error {
	body := bytes.NewReader([]byte(`{"method":"doulion","p":0.5,"seed":7}`))
	resp, err := client.Post(url, "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("estimate status %d", resp.StatusCode)
	}
	return nil
}

// expService is the "service" experiment: the load driver on the smoke
// dataset, reporting how much of the request stream the registry's caches
// absorbed — the service-shaped counterpart of the paper's batch tables.
func expService(h *Harness, r *Report) error {
	rows := make([][]string, 0, 2)
	for _, load := range []struct{ clients, perClient int }{{4, 8}, {8, 8}} {
		res, err := h.ServiceLoad("tiny", load.clients, load.perClient)
		if err != nil {
			return err
		}
		if res.Errors > 0 {
			return fmt.Errorf("harness: service load had %d request errors", res.Errors)
		}
		rows = append(rows, []string{
			fmt.Sprint(res.Clients),
			fmt.Sprint(res.Requests),
			fmt.Sprint(res.Triangles),
			fmt.Sprint(res.EngineRuns),
			fmt.Sprint(res.CacheHits),
			fmt.Sprint(res.SharedRuns),
			D(res.Wall),
			fmt.Sprintf("%.0f", res.RPS),
		})
	}
	r.Table(
		[]string{"clients", "requests", "triangles", "engine runs", "cache hits", "shared", "wall", "req/s"},
		rows)
	r.Note("every count reply cross-checked against the in-memory baseline;")
	r.Note("engine runs << requests is the registry cache + single-flight at work")
	return nil
}

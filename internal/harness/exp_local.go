package harness

import (
	"fmt"

	"pdtl/internal/balance"
	"pdtl/internal/graph"
	"pdtl/internal/optlike"
	"pdtl/internal/powergraph"
)

// expTable1 reproduces Table I: the dataset inventory, with triangle counts
// produced by PDTL itself (the paper verified its counts against SNAP/OPT;
// ours are verified against the in-memory reference in the test suite).
func expTable1(h *Harness, r *Report) error {
	rows := make([][]string, 0, len(allKeys))
	for _, key := range allKeys {
		ds, err := dataset(key)
		if err != nil {
			return err
		}
		base, err := h.Store(key)
		if err != nil {
			return err
		}
		size, err := h.StoreBytes(key)
		if err != nil {
			return err
		}
		_ = base
		mem, err := h.MemFull(key, 2)
		if err != nil {
			return err
		}
		res, err := h.CalcLocal(key, 2, mem, balance.InDegree)
		if err != nil {
			return err
		}
		g, err := h.LoadCSR(key)
		if err != nil {
			return err
		}
		st := graph.Stats(g)
		rows = append(rows, []string{
			key, ds.Paper, N(uint64(st.NumVertices)), N(st.NumEdges), N(res.Triangles),
			Bytes(size), fmt.Sprintf("%.1f", st.AvgDegree), fmt.Sprintf("%.0f", st.StdDegree),
			N(uint64(st.MaxDegree)),
		})
	}
	r.Table([]string{"Graph", "StandsFor", "Nodes", "Edges", "Triangles", "Size", "AvDeg", "STD", "MaxDeg"}, rows)
	return nil
}

// expTable2 reproduces Table II: preprocessing cost of PDTL (orientation)
// vs PowerGraph (setup) vs OPT (database creation).
func expTable2(h *Harness, r *Report) error {
	rows := make([][]string, 0, len(cmpKeys))
	for _, key := range cmpKeys {
		_, ores, cleanup, err := h.OrientTimed(key, 2)
		if err != nil {
			return err
		}
		cleanup()

		g, err := h.LoadCSR(key)
		if err != nil {
			return err
		}
		pg, err := powergraph.Count(g, powergraph.Config{Machines: 4, Threads: 2})
		if err != nil {
			return err
		}
		base, err := h.Store(key)
		if err != nil {
			return err
		}
		db, err := optlike.BuildDB(base)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			key, N(uint64(ores.MaxOutDegree)), D(ores.Duration), D(pg.SetupTime), D(db.DBTime),
		})
	}
	r.Table([]string{"Graph", "d*max", "PDTL orient", "PowerGraph setup", "OPT database"}, rows)
	r.Note("paper: PDTL orientation is 8-75x faster than competing preprocessing")
	return nil
}

// expFig2 reproduces Figure 2: orientation time across core counts.
func expFig2(h *Harness, r *Report) error {
	header := []string{"Graph"}
	for _, c := range coreList {
		header = append(header, fmt.Sprintf("%d cores", c))
	}
	rows := make([][]string, 0, len(sweepKeys))
	for _, key := range sweepKeys {
		row := []string{key}
		for _, cores := range coreList {
			_, ores, cleanup, err := h.OrientTimed(key, cores)
			if err != nil {
				return err
			}
			cleanup()
			row = append(row, D(ores.Duration))
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	r.Note("paper: 5.2x speedup at 24 cores, capped by SSD bandwidth at 16 threads")
	return nil
}

// expFig3 reproduces Figure 3: local multicore total time with constant
// total memory (weak scaling): M_per_worker = M_total / cores.
func expFig3(h *Harness, r *Report) error {
	header := []string{"Graph"}
	for _, c := range coreList {
		header = append(header, fmt.Sprintf("%d cores", c))
	}
	rows := make([][]string, 0, len(sweepKeys))
	for _, key := range sweepKeys {
		memTotal, err := h.MemFull(key, 1) // one pass worth of memory, shared
		if err != nil {
			return err
		}
		row := []string{key}
		for _, cores := range coreList {
			res, err := h.CalcLocal(key, cores, memTotal/cores+1, balance.InDegree)
			if err != nil {
				return err
			}
			row = append(row, D(res.CalcTime))
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	r.Note("paper: 2 cores halve calculation time; Yahoo scales worst (5x at 24 cores vs 13x)")
	return nil
}

// expFig9 reproduces Figure 9: the load-balancing ablation.
func expFig9(h *Harness, r *Report) error {
	keys := []string{"twitter-sim", "yahoo-sim", "rmat14"}
	for _, cores := range []int{2, 4} {
		rows := make([][]string, 0, len(keys))
		for _, key := range keys {
			// Ample memory (the paper's 128 GB machine): every runner
			// holds its whole range in one window, so range-size variance
			// cannot add passes and the comparison isolates the balancing
			// of intersection work.
			mem, err := h.MemFull(key, 1)
			if err != nil {
				return err
			}
			with, err := h.CalcLocal(key, cores, mem, balance.InDegree)
			if err != nil {
				return err
			}
			without, err := h.CalcLocal(key, cores, mem, balance.Naive)
			if err != nil {
				return err
			}
			// The struggler work ratio is the machine-independent signal.
			maxWith := MaxWorkerWork(with.Workers)
			maxWithout := MaxWorkerWork(without.Workers)
			rows = append(rows, []string{
				key, D(with.CalcTime), D(without.CalcTime),
				fmt.Sprintf("%.2fx", float64(maxWithout)/float64(maxWith)),
			})
		}
		r.Note("multicore (%d cores)", cores)
		r.Table([]string{"Graph", "w/ LB", "w/o LB", "struggler work ratio (naive/balanced)"}, rows)
	}
	r.Note("paper: load balancing improves calculation time by up to 3x")
	return nil
}

// expFig10 reproduces Figure 10: single-node calculation scaling over
// cores.
func expFig10(h *Harness, r *Report) error {
	header := []string{"Graph"}
	for _, c := range coreList {
		header = append(header, fmt.Sprintf("%d cores", c))
	}
	header = append(header, "work/runner 4c")
	rows := make([][]string, 0, len(realKeys))
	for _, key := range realKeys {
		row := []string{key}
		var last []coreWorker
		for _, cores := range coreList {
			mem, err := h.MemFull(key, cores)
			if err != nil {
				return err
			}
			res, err := h.CalcLocal(key, cores, mem, balance.InDegree)
			if err != nil {
				return err
			}
			row = append(row, D(res.CalcTime))
			last = res.Workers
		}
		row = append(row, N(MaxWorkerWork(last)))
		rows = append(rows, row)
	}
	r.Table(header, rows)
	r.Note("paper: 2 cores halve processing time; 16x at 32 cores on Twitter")
	return nil
}

// expTable5 reproduces Table V: PDTL (orientation + calc) vs OPT (database
// + calc) on the local multicore machine.
func expTable5(h *Harness, r *Report) error {
	rows := make([][]string, 0, len(cmpKeys))
	for _, key := range cmpKeys {
		_, ores, cleanup, err := h.OrientTimed(key, 2)
		if err != nil {
			return err
		}
		cleanup()
		mem, err := h.MemFull(key, 4)
		if err != nil {
			return err
		}
		pdtl, err := h.CalcLocal(key, 4, mem, balance.InDegree)
		if err != nil {
			return err
		}
		base, err := h.Store(key)
		if err != nil {
			return err
		}
		db, err := optlike.BuildDB(base)
		if err != nil {
			return err
		}
		opt, err := optlike.Count(db.DBBase, 4)
		if err != nil {
			return err
		}
		if opt.Triangles != pdtl.Triangles {
			return fmt.Errorf("table5: count mismatch on %s: PDTL %d vs OPT %d", key, pdtl.Triangles, opt.Triangles)
		}
		rows = append(rows, []string{
			key, D(ores.Duration), D(pdtl.CalcTime), D(db.DBTime), D(opt.CalcTime),
			fmt.Sprintf("%.1fx", (db.DBTime+opt.CalcTime).Seconds()/(ores.Duration+pdtl.CalcTime).Seconds()),
		})
	}
	r.Table([]string{"Graph", "PDTL orient", "PDTL calc", "OPT database", "OPT calc", "OPT/PDTL total"}, rows)
	r.Note("paper: PDTL total up to 3.5x faster on large graphs (7.8x on LiveJournal)")
	return nil
}

// expFig12 reproduces Figure 12: PDTL vs OPT on an RMAT graph across core
// counts.
func expFig12(h *Harness, r *Report) error {
	const key = "rmat14"
	base, err := h.Store(key)
	if err != nil {
		return err
	}
	db, err := optlike.BuildDB(base)
	if err != nil {
		return err
	}
	_, ores, cleanup, err := h.OrientTimed(key, 2)
	if err != nil {
		return err
	}
	cleanup()
	rows := make([][]string, 0, len(coreList))
	for _, cores := range coreList {
		mem, err := h.MemFull(key, cores)
		if err != nil {
			return err
		}
		pdtl, err := h.CalcLocal(key, cores, mem, balance.InDegree)
		if err != nil {
			return err
		}
		opt, err := optlike.Count(db.DBBase, cores)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", cores), D(pdtl.CalcTime), D(opt.CalcTime), D(ores.Duration), D(db.DBTime),
		})
	}
	r.Table([]string{"Cores", "PDTL calc", "OPT calc", "PDTL setup", "OPT setup"}, rows)
	r.Note("paper: effects persist for any core count, more pronounced for fewer cores")
	return nil
}

// expTable9 reproduces Table IX: the orientation grid with d*max.
func expTable9(h *Harness, r *Report) error {
	header := []string{"Graph", "d*max"}
	for _, c := range coreList {
		header = append(header, fmt.Sprintf("%d cores", c))
	}
	rows := make([][]string, 0, len(allKeys))
	for _, key := range allKeys {
		var dmax uint32
		row := []string{key, ""}
		for _, cores := range coreList {
			_, ores, cleanup, err := h.OrientTimed(key, cores)
			if err != nil {
				return err
			}
			cleanup()
			dmax = ores.MaxOutDegree
			row = append(row, D(ores.Duration))
		}
		row[1] = N(uint64(dmax))
		rows = append(rows, row)
	}
	r.Table(header, rows)
	return nil
}

// expTable10 reproduces Table X: runtime with and without load balancing.
func expTable10(h *Harness, r *Report) error {
	keys := []string{"twitter-sim", "yahoo-sim", "rmat14"}
	header := []string{"Graph"}
	for _, c := range []int{2, 4} {
		header = append(header, fmt.Sprintf("%dc w/ LB", c), fmt.Sprintf("%dc w/o LB", c))
	}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		row := []string{key}
		mem, err := h.MemFull(key, 1) // ample memory, as in the paper's 128 GB runs
		if err != nil {
			return err
		}
		for _, cores := range []int{2, 4} {
			with, err := h.CalcLocal(key, cores, mem, balance.InDegree)
			if err != nil {
				return err
			}
			without, err := h.CalcLocal(key, cores, mem, balance.Naive)
			if err != nil {
				return err
			}
			row = append(row, D(with.CalcTime), D(without.CalcTime))
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	return nil
}

// expTable11 reproduces Table XI: the local multicore runtime grid.
func expTable11(h *Harness, r *Report) error {
	header := []string{"Graph"}
	for _, c := range coreList {
		header = append(header, fmt.Sprintf("%d cores", c))
	}
	keys := []string{"lj-sim", "orkut-sim", "twitter-sim", "yahoo-sim", "rmat14", "rmat15"}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		row := []string{key}
		for _, cores := range coreList {
			mem, err := h.MemFull(key, cores)
			if err != nil {
				return err
			}
			res, err := h.CalcLocal(key, cores, mem, balance.InDegree)
			if err != nil {
				return err
			}
			row = append(row, D(res.CalcTime))
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	return nil
}

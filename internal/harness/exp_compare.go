package harness

import (
	"errors"
	"fmt"

	"pdtl/internal/cttp"
	"pdtl/internal/patric"
	"pdtl/internal/powergraph"
)

// expFig13 reproduces Figure 13: PDTL vs PowerGraph total and calculation
// breakdowns on 4 nodes.
func expFig13(h *Harness, r *Report) error {
	for _, key := range []string{"twitter-sim", "rmat15"} {
		mem, err := h.MemFull(key, 4*2)
		if err != nil {
			return err
		}
		run, err := h.RunCluster(key, 4, 2, mem, 0)
		if err != nil {
			return err
		}
		g, err := h.LoadCSR(key)
		if err != nil {
			return err
		}
		pg, err := powergraph.Count(g, powergraph.Config{Machines: 4, Threads: 2})
		if err != nil {
			return err
		}
		if pg.Triangles != run.Triangles {
			return fmt.Errorf("fig13: count mismatch on %s: PDTL %d vs PowerGraph %d", key, run.Triangles, pg.Triangles)
		}
		r.Note("%s (4 nodes)", key)
		r.Table([]string{"System", "calc", "total"}, [][]string{
			{"PDTL", D(run.CalcTime), D(run.Total)},
			{"PowerGraph", D(pg.CalcTime), D(pg.TotalTime)},
		})
	}
	r.Note("paper: similar calc times; PDTL total >2x faster due to setup")
	return nil
}

// expTable6 reproduces Table VI: PDTL vs PowerGraph under per-machine
// memory budgets; "F" marks out-of-memory, exactly like the paper.
func expTable6(h *Harness, r *Report) error {
	// Budget calibrated like the paper's 244 GB machines: comfortably
	// enough for the small social graphs, too little for the large RMAT
	// and web graphs. We anchor it at 1.75x the minimum for orkut-sim.
	anchor, err := h.LoadCSR("orkut-sim")
	if err != nil {
		return err
	}
	minBudget, err := powergraph.MinimumBudget(anchor, 4)
	if err != nil {
		return err
	}
	budget := minBudget * 7 / 4
	keys := []string{"orkut-sim", "twitter-sim", "yahoo-sim", "rmat14", "rmat15", "rmat16", "rmat17"}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		// PDTL runs with a deliberately tiny per-core budget.
		procs := 4 * 2
		mem, err := h.MemTight(key, procs)
		if err != nil {
			return err
		}
		run, err := h.RunCluster(key, 4, 2, mem, 0)
		if err != nil {
			return err
		}
		g, err := h.LoadCSR(key)
		if err != nil {
			return err
		}
		pg, pgErr := powergraph.Count(g, powergraph.Config{Machines: 4, Threads: 2, MemBudgetEntries: budget})
		pgCalc, pgTotal := "F", "F"
		if pgErr == nil {
			pgCalc, pgTotal = D(pg.CalcTime), D(pg.TotalTime)
		} else if !errors.Is(pgErr, powergraph.ErrOutOfMemory) {
			return pgErr
		}
		rows = append(rows, []string{
			key, D(run.CalcTime), D(run.Total), pgCalc, pgTotal, N(uint64(mem)),
		})
	}
	r.Table([]string{"Graph", "PDTL calc", "PDTL total", "PG calc", "PG total", "PDTL M (entries/core)"}, rows)
	r.Note("PowerGraph budget: %s entries/machine; F = out of memory", N(budget))
	r.Note("paper: PowerGraph OOMs on Yahoo and RMAT-28/29 with 244GB/machine while PDTL uses 1GB/core")
	return nil
}

// expTable14 reproduces Table XIV: the 7-node local-cluster comparison.
func expTable14(h *Harness, r *Report) error {
	anchor, err := h.LoadCSR("orkut-sim")
	if err != nil {
		return err
	}
	minBudget, err := powergraph.MinimumBudget(anchor, 7)
	if err != nil {
		return err
	}
	budget := minBudget * 2
	keys := []string{"lj-sim", "orkut-sim", "twitter-sim", "yahoo-sim", "rmat14", "rmat15", "rmat16"}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		_, ores, cleanup, err := h.OrientTimed(key, 2)
		if err != nil {
			return err
		}
		cleanup()
		mem, err := h.MemFull(key, 7)
		if err != nil {
			return err
		}
		run, err := h.RunCluster(key, 7, 1, mem, 0)
		if err != nil {
			return err
		}
		g, err := h.LoadCSR(key)
		if err != nil {
			return err
		}
		pg, pgErr := powergraph.Count(g, powergraph.Config{Machines: 7, Threads: 1, MemBudgetEntries: budget})
		pgCalc, pgTotal := "F", "F"
		if pgErr == nil {
			pgCalc, pgTotal = D(pg.CalcTime), D(pg.TotalTime)
		} else if !errors.Is(pgErr, powergraph.ErrOutOfMemory) {
			return pgErr
		}
		rows = append(rows, []string{
			key, D(ores.Duration), D(run.CalcTime), D(run.Total), pgCalc, pgTotal,
		})
	}
	r.Table([]string{"Graph", "PDTL orient", "PDTL calc", "PDTL total", "PG calc", "PG total"}, rows)
	r.Note("PowerGraph budget: %s entries/machine; F = out of memory", N(budget))
	return nil
}

// expPatric reproduces the Section V-E4 PATRIC comparison: PDTL beats a
// partition-based counter while using far less memory, even with fewer
// processors.
func expPatric(h *Harness, r *Report) error {
	const key = "twitter-sim"
	g, err := h.LoadCSR(key)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, 4)

	// PATRIC with 8 processors (the paper quotes it on 200-372 cores).
	pr, err := patric.Count(g, patric.Config{Processors: 8, Balance: patric.ByDegree})
	if err != nil {
		return err
	}
	rows = append(rows, []string{"PATRIC (8 procs)", D(pr.CalcTime), D(pr.TotalTime),
		N(pr.TotalMemoryEntries), fmt.Sprintf("%.2fx graph size", pr.OverlapFactor(g))})

	// PDTL with 4 processors and tight memory.
	mem, err := h.MemTight(key, 4)
	if err != nil {
		return err
	}
	run, err := h.RunCluster(key, 2, 2, mem, 0)
	if err != nil {
		return err
	}
	if run.Triangles != pr.Triangles {
		return fmt.Errorf("patric: count mismatch: PDTL %d vs PATRIC %d", run.Triangles, pr.Triangles)
	}
	pdtlMem := uint64(mem) * 4
	rows = append(rows, []string{"PDTL (4 procs)", D(run.CalcTime), D(run.Total),
		N(pdtlMem), fmt.Sprintf("%.2fx graph size", float64(pdtlMem)/float64(g.AdjEntries()))})

	r.Table([]string{"System", "calc", "total", "memory entries", "memory vs graph"}, rows)
	r.Note("paper: PDTL 4x faster than PATRIC with half the cores and 1GB/core")
	return nil
}

// expCTTP reproduces the Section V-E4 CTTP observation: MapReduce triangle
// enumeration moves enormous intermediate data and is slower than even
// single-core MGT.
func expCTTP(h *Harness, r *Report) error {
	const key = "twitter-sim"
	g, err := h.LoadCSR(key)
	if err != nil {
		return err
	}
	ct, err := cttp.Count(g, cttp.Config{Colors: 6, Workers: 2})
	if err != nil {
		return err
	}
	memSingle, err := h.MemFull(key, 1)
	if err != nil {
		return err
	}
	mgtRes, err := h.CalcLocal(key, 1, memSingle, 0)
	if err != nil {
		return err
	}
	if ct.Triangles != mgtRes.Triangles {
		return fmt.Errorf("cttp: count mismatch: %d vs %d", ct.Triangles, mgtRes.Triangles)
	}
	graphBytes, err := h.StoreBytes(key)
	if err != nil {
		return err
	}
	r.Table([]string{"System", "time", "data moved"}, [][]string{
		{"CTTP (6 colors, 2 workers)", D(ct.TotalTime), Bytes(ct.ShuffleBytes)},
		{"MGT (1 core)", D(mgtRes.CalcTime), Bytes(0)},
		{"graph size", "-", Bytes(graphBytes)},
	})
	r.Note("CTTP shuffled %s records in %d tasks over %d rounds", N(ct.IntermediateRecords), ct.Tasks, ct.Rounds)
	r.Note("paper: CTTP needs 92m on 40 nodes for Twitter; 2x slower than single-core MGT")
	return nil
}

// Package harness materializes the paper's evaluation (Section V): it owns
// the dataset registry (laptop-scale stand-ins for Table I, DESIGN.md §3),
// caches generated stores and orientations per process, and implements one
// experiment per table and figure of the paper, each rendering a plain-text
// table with the same rows/series the paper reports.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Report renders experiment output as aligned text tables.
type Report struct {
	w io.Writer
}

// NewReport wraps a writer.
func NewReport(w io.Writer) *Report { return &Report{w: w} }

// Title prints an experiment heading.
func (r *Report) Title(format string, args ...any) {
	fmt.Fprintf(r.w, "\n== %s ==\n", fmt.Sprintf(format, args...))
}

// Note prints an annotation line.
func (r *Report) Note(format string, args ...any) {
	fmt.Fprintf(r.w, "   %s\n", fmt.Sprintf(format, args...))
}

// Table prints an aligned table with a header row.
func (r *Report) Table(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintf(r.w, "   %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// D formats a duration compactly (ms resolution above 1s, µs below).
func D(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// N formats a large count with thousands separators.
func N(x uint64) string {
	s := fmt.Sprintf("%d", x)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
		if len(s) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}

// Bytes formats a byte volume in binary units.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

package harness

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"pdtl/internal/graph"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// TestBenchJSONSchema runs the JSON bench on the smoke dataset and decodes
// the output, pinning the schema fields the perf trajectory consumes: both
// schedulers present, identical counts, sane imbalance, version tag.
func TestBenchJSONSchema(t *testing.T) {
	h, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.BenchJSON(&buf, []string{"tiny"}, 2, 0, nil); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", report.Schema, BenchSchema)
	}
	// /2 environment provenance: the trio that makes trajectories from
	// different machines attributable.
	if report.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", report.GoVersion, runtime.Version())
	}
	if report.GoMaxProc < 1 {
		t.Errorf("gomaxprocs = %d", report.GoMaxProc)
	}
	if report.Hostname == "" {
		t.Error("hostname is empty (want a name or the explicit \"unknown\")")
	}
	if len(report.Runs) != 4 {
		t.Fatalf("got %d runs, want count+listing per scheduler", len(report.Runs))
	}
	modes := map[string]BenchRun{}
	byMode := map[string][]BenchRun{}
	for _, r := range report.Runs {
		modes[r.Sched] = r
		byMode[r.Mode] = append(byMode[r.Mode], r)
		if r.Dataset != "tiny" || r.Workers != 2 {
			t.Errorf("run mislabeled: %+v", r)
		}
		if r.Triangles == 0 {
			t.Errorf("%s run found no triangles", r.Sched)
		}
		if r.WallNS <= 0 || r.OrientNS <= 0 {
			t.Errorf("%s run has empty timings: wall=%d orient=%d", r.Sched, r.WallNS, r.OrientNS)
		}
		// /6 per-phase breakdown: planning is a nonzero slice of the
		// calculation wall.
		if r.PlanNS <= 0 || r.PlanNS > r.WallNS {
			t.Errorf("%s run plan_ns = %d outside (0, wall_ns=%d]", r.Sched, r.PlanNS, r.WallNS)
		}
		if r.WorkerImbalance < 1 {
			t.Errorf("%s imbalance %f below 1 (max/mean cannot be)", r.Sched, r.WorkerImbalance)
		}
		if r.Scan == "" || r.Kernel == "" {
			t.Errorf("%s run missing execution-layer labels: %+v", r.Sched, r)
		}
		// /3 compressed-store ablation fields: a default harness runs the
		// plain store at exactly 4 adjacency bytes per directed edge with
		// no block-skipping in play.
		if r.StoreFormat != "plain" {
			t.Errorf("%s run store_format = %q, want plain", r.Sched, r.StoreFormat)
		}
		if r.BytesPerEdge != 4 {
			t.Errorf("%s run bytes_per_edge = %f, want 4 for a plain store", r.Sched, r.BytesPerEdge)
		}
		if r.SegmentsSkipped != 0 {
			t.Errorf("%s run segments_skipped = %d on a plain store", r.Sched, r.SegmentsSkipped)
		}
		// /4 live-graph churn fields are zero for static-store runs.
		if r.DeltaEdges != 0 || r.Compactions != 0 {
			t.Errorf("%s static run has live gauges: delta=%d compactions=%d",
				r.Sched, r.DeltaEdges, r.Compactions)
		}
		// /5 vectorization counters are zero on a plain store (no
		// compressed payloads to decode or popcount).
		if r.WordOps != 0 || r.FastDecodes != 0 {
			t.Errorf("%s plain-store run has word_ops=%d fast_decodes=%d",
				r.Sched, r.WordOps, r.FastDecodes)
		}
	}
	// /5 row pairing: a count and a listing row per scheduler, identical
	// triangle counts across the pair.
	if len(byMode["count"]) != 2 || len(byMode["listing"]) != 2 {
		t.Fatalf("mode split: %d count, %d listing", len(byMode["count"]), len(byMode["listing"]))
	}
	for i := range byMode["count"] {
		c, l := byMode["count"][i], byMode["listing"][i]
		if c.Triangles != l.Triangles {
			t.Errorf("%s count run found %d triangles, listing %d", c.Sched, c.Triangles, l.Triangles)
		}
	}
	st, ok1 := modes["static"]
	sl, ok2 := modes["stealing"]
	if !ok1 || !ok2 {
		t.Fatalf("runs missing a scheduler: %v", modes)
	}
	if st.Triangles != sl.Triangles {
		t.Errorf("schedulers disagree: static %d, stealing %d triangles", st.Triangles, sl.Triangles)
	}
	if sl.Chunks == 0 {
		t.Error("stealing run reports no chunk count")
	}
	// Decoding through a generic map keeps key names pinned (a renamed
	// field would silently break downstream BENCH_*.json consumers).
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "generated", "go_version", "gomaxprocs", "hostname", "runs"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("report object missing key %q", key)
		}
	}
	runs := raw["runs"].([]any)
	first := runs[0].(map[string]any)
	for _, key := range []string{"dataset", "workers", "sched", "mode", "scan", "kernel",
		"store_format", "bytes_per_edge", "segments_skipped", "triangles",
		"wall_ns", "orient_ns", "plan_ns", "cpu_ns", "io_ns", "bytes_read",
		"worker_imbalance", "max_worker_wall_ns",
		"delta_edges", "compactions", "word_ops", "fast_decodes"} {
		if _, ok := first[key]; !ok {
			t.Errorf("run object missing key %q", key)
		}
	}
}

// TestBenchChurnJSON pins the /4 live rows: the delta-overlay count carries
// delta_edges > 0 and no compactions, the post-compaction count the
// reverse, and both agree on the triangle count (compaction folds the delta
// without changing the graph).
func TestBenchChurnJSON(t *testing.T) {
	h, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.BenchChurnJSON(&buf, []string{"tiny"}, 2, 0, 500); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if report.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", report.Schema, BenchSchema)
	}
	if len(report.Runs) != 2 {
		t.Fatalf("got %d runs, want delta + compacted", len(report.Runs))
	}
	liveRun, compacted := report.Runs[0], report.Runs[1]
	if liveRun.Dataset != "tiny+live" || compacted.Dataset != "tiny+compacted" {
		t.Fatalf("run labels: %q, %q", liveRun.Dataset, compacted.Dataset)
	}
	if liveRun.DeltaEdges == 0 || liveRun.Compactions != 0 {
		t.Errorf("live row: delta=%d compactions=%d, want >0 / 0",
			liveRun.DeltaEdges, liveRun.Compactions)
	}
	if compacted.DeltaEdges != 0 || compacted.Compactions != 1 {
		t.Errorf("compacted row: delta=%d compactions=%d, want 0 / 1",
			compacted.DeltaEdges, compacted.Compactions)
	}
	if liveRun.Triangles != compacted.Triangles {
		t.Errorf("compaction changed the count: %d vs %d", liveRun.Triangles, compacted.Triangles)
	}
	if liveRun.Triangles == 0 {
		t.Error("churn rows found no triangles")
	}
	if liveRun.WallNS <= 0 || compacted.WallNS <= 0 {
		t.Error("churn rows missing wall timings")
	}
}

// TestBenchJSONCompressedStore: a compressed-store harness reports the
// format, a sub-4 bytes/edge ratio, active block skipping under the
// compressed kernel, and the same triangle count as the plain default.
func TestBenchJSONCompressedStore(t *testing.T) {
	plain, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plain.BenchJSON(&buf, []string{"tiny"}, 2, 0, []sched.Mode{sched.Static}); err != nil {
		t.Fatal(err)
	}
	var ref BenchReport
	if err := json.Unmarshal(buf.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}

	h, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h.StoreFormat = graph.FormatCompressed
	h.Kernel = scan.KernelCompressed
	buf.Reset()
	if err := h.BenchJSON(&buf, []string{"tiny"}, 2, 0, []sched.Mode{sched.Static}); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Runs) != 2 {
		t.Fatalf("got %d runs, want count + listing", len(report.Runs))
	}
	for _, r := range report.Runs {
		if r.StoreFormat != "compressed" {
			t.Errorf("%s store_format = %q, want compressed", r.Mode, r.StoreFormat)
		}
		if r.BytesPerEdge <= 0 || r.BytesPerEdge >= 4 {
			t.Errorf("%s bytes_per_edge = %f, want in (0, 4) for a compressed store", r.Mode, r.BytesPerEdge)
		}
		if r.SegmentsSkipped == 0 {
			t.Errorf("%s segments_skipped = 0 under the compressed kernel on a compressed store", r.Mode)
		}
		if r.Triangles != ref.Runs[0].Triangles {
			t.Errorf("compressed store %s run counted %d triangles, plain %d", r.Mode, r.Triangles, ref.Runs[0].Triangles)
		}
		// /5: the compressed pass decodes every surviving varint segment
		// through the unrolled decoder, in both modes.
		if r.FastDecodes == 0 {
			t.Errorf("%s run fast_decodes = 0 on a compressed store", r.Mode)
		}
		if r.WordOps == 0 {
			t.Errorf("%s run word_ops = 0 on a compressed store", r.Mode)
		}
	}
	if report.Runs[0].Mode != "count" || report.Runs[1].Mode != "listing" {
		t.Fatalf("row order: %q, %q, want count then listing", report.Runs[0].Mode, report.Runs[1].Mode)
	}
}

// TestBenchJSONSingleMode: an explicit scheduler selection produces
// exactly one count/listing row pair per dataset.
func TestBenchJSONSingleMode(t *testing.T) {
	h, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.BenchJSON(&buf, []string{"tiny"}, 2, 0, []sched.Mode{sched.Static}); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Runs) != 2 {
		t.Fatalf("static-only request produced %d runs, want count + listing", len(report.Runs))
	}
	for _, r := range report.Runs {
		if r.Sched != "static" {
			t.Fatalf("static-only request produced %+v", report.Runs)
		}
	}
}

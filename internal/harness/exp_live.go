package harness

import (
	"fmt"
	"math/rand"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/live"
)

// expChurn exercises the live-graph extension (DESIGN.md §11): a dataset
// is wrapped in a delta overlay and mutated in seeded batches while exact
// counts run over the merged view. Every count is verified against a
// from-scratch in-memory count of the same edge set, the streaming
// TRIÈST-FD estimate is checked in its exact regime, and a final
// compaction folds the delta into a fresh snapshot without changing the
// answer.
func expChurn(h *Harness, r *Report) error {
	const (
		key    = "rmat14"
		rounds = 5
		batch  = 400
	)
	ref, err := h.LoadCSR(key)
	if err != nil {
		return err
	}
	orientedBase, _, err := h.Oriented(key, 2)
	if err != nil {
		return err
	}
	mem, err := h.MemTight(key, 2)
	if err != nil {
		return err
	}
	lg, err := live.Open(orientedBase, live.Config{
		Dir:       h.cacheDir,
		Name:      fmt.Sprintf("%s.churn%d", key, scratchSeq.Add(1)),
		Workers:   2,
		MemEdges:  mem,
		Reservoir: 1 << 19,
		Seed:      42,
	})
	if err != nil {
		return err
	}
	defer lg.Close()

	// The reference edge set the batches mutate; counts over the overlay
	// are checked against a from-scratch count of exactly this set.
	type ekey struct{ u, v uint32 }
	canon := func(u, v uint32) ekey {
		if u > v {
			u, v = v, u
		}
		return ekey{u, v}
	}
	set := make(map[ekey]bool)
	for u := 0; u < ref.NumVertices(); u++ {
		for _, v := range ref.Neighbors(graph.Vertex(u)) {
			if uint32(u) < uint32(v) {
				set[ekey{uint32(u), uint32(v)}] = true
			}
		}
	}
	refCount := func() (uint64, error) {
		edges := make([]graph.Edge, 0, len(set))
		maxV := ref.NumVertices()
		for k := range set {
			edges = append(edges, graph.Edge{U: k.u, V: k.v})
			if int(k.v) >= maxV {
				maxV = int(k.v) + 1
			}
			if int(k.u) >= maxV {
				maxV = int(k.u) + 1
			}
		}
		g, err := graph.FromEdges(maxV, edges)
		if err != nil {
			return 0, err
		}
		return baseline.Forward(g), nil
	}

	rng := rand.New(rand.NewSource(42))
	maxV := uint32(ref.NumVertices() + 64) // a few vertices beyond the store
	rows := make([][]string, 0, rounds+1)
	for round := 1; round <= rounds; round++ {
		updates := make([]live.Update, 0, batch)
		for len(updates) < batch {
			u, v := rng.Uint32()%maxV, rng.Uint32()%maxV
			if u == v {
				continue
			}
			k := canon(u, v)
			if set[k] {
				if rng.Intn(3) == 0 {
					delete(set, k)
					updates = append(updates, live.Update{U: graph.Vertex(k.u), V: graph.Vertex(k.v), Del: true})
				}
				continue
			}
			set[k] = true
			updates = append(updates, live.Update{U: graph.Vertex(k.u), V: graph.Vertex(k.v)})
		}
		if err := lg.ApplyBatch(updates); err != nil {
			return fmt.Errorf("churn round %d: %w", round, err)
		}

		start := time.Now()
		res, err := lg.Count(h.ctx(), core.Options{
			Workers:  2,
			MemEdges: mem,
			Strategy: balance.InDegree,
		})
		if err != nil {
			return fmt.Errorf("churn round %d count: %w", round, err)
		}
		wall := time.Since(start)
		want, err := refCount()
		if err != nil {
			return err
		}
		if res.Triangles != want {
			return fmt.Errorf("churn round %d: live count %d != exact %d", round, res.Triangles, want)
		}
		st := lg.Stats()
		if !st.EstimateExact || uint64(st.Estimate) != want {
			return fmt.Errorf("churn round %d: streaming estimate %v (exact=%v) != %d",
				round, st.Estimate, st.EstimateExact, want)
		}
		rows = append(rows, []string{
			fmt.Sprintf("round %d", round),
			N(uint64(st.DeltaEdges)),
			N(res.Triangles),
			D(wall),
			"exact match",
		})
	}

	// Compaction folds the whole delta into a gen-1 snapshot; the count is
	// unchanged and the delta is empty.
	start := time.Now()
	if err := lg.CompactNow(h.ctx()); err != nil {
		return fmt.Errorf("churn compaction: %w", err)
	}
	compactWall := time.Since(start)
	res, err := lg.Count(h.ctx(), core.Options{Workers: 2, MemEdges: mem, Strategy: balance.InDegree})
	if err != nil {
		return err
	}
	want, err := refCount()
	if err != nil {
		return err
	}
	if res.Triangles != want {
		return fmt.Errorf("churn post-compact: live count %d != exact %d", res.Triangles, want)
	}
	st := lg.Stats()
	if st.Gen != 1 || st.DeltaEdges != 0 {
		return fmt.Errorf("churn post-compact: gen %d delta %d, want 1/0", st.Gen, st.DeltaEdges)
	}
	rows = append(rows, []string{
		fmt.Sprintf("after compaction (%s)", D(compactWall)),
		N(uint64(st.DeltaEdges)),
		N(res.Triangles),
		"-",
		"exact match, gen 1",
	})

	r.Table([]string{"Stage", "delta edges", "triangles", "count wall", "verified"}, rows)
	r.Note("extension of Section VI: LSM-style delta overlay — churn-safe exact queries, streaming estimate, background compaction (DESIGN.md §11)")
	return nil
}

package harness

import (
	"bytes"
	"strings"
	"testing"

	"pdtl/internal/balance"
)

func TestBaselineCount(t *testing.T) {
	h := newHarness(t)
	n, err := h.BaselineCount("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("baseline found no triangles in tiny")
	}
	// The baseline must agree with the engine.
	res, err := h.CalcLocal("tiny", 2, 0, balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != n {
		t.Fatalf("engine %d vs baseline %d", res.Triangles, n)
	}
}

func TestServiceLoad(t *testing.T) {
	h := newHarness(t)
	res, err := h.ServiceLoad("tiny", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("load had %d errors", res.Errors)
	}
	if res.Requests != 12 || res.Triangles == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.EngineRuns == 0 {
		t.Fatal("no engine runs recorded")
	}
	// Six identical counts across the clients: at most one engine run for
	// them, so the cache/single-flight layers absorbed at least five.
	if res.CacheHits+res.SharedRuns < 5 {
		t.Fatalf("cache %d + shared %d absorbed too little", res.CacheHits, res.SharedRuns)
	}
}

func TestServiceExperiment(t *testing.T) {
	h := newHarness(t)
	var buf bytes.Buffer
	if err := h.Run("service", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"engine runs", "cache hits", "req/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q:\n%s", want, out)
		}
	}
}

package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// Dataset is one entry of the Table I stand-in registry.
type Dataset struct {
	// Key is the dataset id used by experiments ("twitter-sim").
	Key string
	// Paper is the Table I dataset this stands in for.
	Paper string
	// Build generates the graph deterministically.
	Build func() (*graph.CSR, error)
}

// Datasets is the registry, in Table I order. Scales are chosen so the full
// experiment suite runs in minutes on a laptop while preserving each
// dataset's structural signature (skew ordering, density, hub sizes) — see
// DESIGN.md §3.
var Datasets = []Dataset{
	{
		Key: "lj-sim", Paper: "soc-LiveJournal1",
		Build: func() (*graph.CSR, error) {
			return gen.Community(1<<14, (1<<14)*9,
				gen.CommunityParams{Communities: 64, IntraProb: 0.55, Exponent: 2.6}, 101)
		},
	},
	{
		Key: "orkut-sim", Paper: "com-Orkut",
		Build: func() (*graph.CSR, error) {
			return gen.Community(1<<13, (1<<13)*38,
				gen.CommunityParams{Communities: 48, IntraProb: 0.5, Exponent: 2.5}, 102)
		},
	},
	{
		Key: "twitter-sim", Paper: "Twitter",
		Build: func() (*graph.CSR, error) {
			return gen.PowerLaw(1<<15, (1<<15)*29, 1.9, 103)
		},
	},
	{
		Key: "yahoo-sim", Paper: "Yahoo",
		Build: func() (*graph.CSR, error) {
			return gen.Web(1<<17, gen.DefaultWeb, 104)
		},
	},
	{
		Key: "rmat14", Paper: "RMAT-26",
		Build: func() (*graph.CSR, error) { return gen.RMAT(14, 16, 105) },
	},
	{
		Key: "rmat15", Paper: "RMAT-27",
		Build: func() (*graph.CSR, error) { return gen.RMAT(15, 16, 106) },
	},
	{
		Key: "rmat16", Paper: "RMAT-28",
		Build: func() (*graph.CSR, error) { return gen.RMAT(16, 16, 107) },
	},
	{
		Key: "rmat17", Paper: "RMAT-29",
		Build: func() (*graph.CSR, error) { return gen.RMAT(17, 16, 108) },
	},
	{
		// tiny is not a Table I stand-in: it is the seconds-scale smoke
		// dataset CI runs `pdtl-bench -json` against to keep the JSON
		// schema honest. Skewed on purpose so the worker-imbalance field
		// is non-trivial.
		Key: "tiny", Paper: "(smoke)",
		Build: func() (*graph.CSR, error) { return gen.PowerLaw(1<<10, (1<<10)*8, 2.0, 109) },
	},
}

// dataset looks a registry entry up by key.
func dataset(key string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Key == key {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("harness: unknown dataset %q", key)
}

// Harness owns the dataset/orientation cache for one process (or a
// persistent cache directory when given one).
type Harness struct {
	cacheDir string

	// Scan, Kernel, Sched, and Chunks, when set, override the execution
	// layer for every experiment run through the harness (CalcLocal and
	// RunCluster) — the pdtl-bench -scan/-kernel/-sched/-chunks flags land
	// here, so any table or figure can be regenerated under a different
	// scan source, intersection kernel, or chunk scheduler. Zero values
	// keep the engine defaults.
	Scan   scan.SourceKind
	Kernel scan.KernelKind
	Sched  sched.Mode
	Chunks int
	// StoreFormat selects the oriented-store encoding every experiment
	// runs against (the pdtl-bench -store flag); empty means
	// graph.FormatPlain. The orientation cache is keyed by format, so one
	// harness can compare both encodings of the same dataset.
	StoreFormat graph.Format
	// Ctx, when set, bounds every run the harness performs: cancelling it
	// aborts the in-flight experiment (pdtl-bench wires SIGINT/SIGTERM
	// here) and stops between experiments. Nil means context.Background().
	Ctx context.Context

	mu       sync.Mutex
	stores   map[string]string
	oriented map[string]orientEntry
}

type orientEntry struct {
	base string
	res  *orient.Result
}

// New creates a harness. cacheDir == "" creates a fresh temporary cache
// (generated datasets are rebuilt per process); a persistent directory
// reuses stores across runs.
func New(cacheDir string) (*Harness, error) {
	if cacheDir == "" {
		dir, err := os.MkdirTemp("", "pdtl-harness-")
		if err != nil {
			return nil, err
		}
		cacheDir = dir
	} else if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	return &Harness{
		cacheDir: cacheDir,
		stores:   make(map[string]string),
		oriented: make(map[string]orientEntry),
	}, nil
}

// CacheDir reports the harness's cache directory.
func (h *Harness) CacheDir() string { return h.cacheDir }

// Store materializes (or reuses) the undirected store for a dataset key and
// returns its base path.
func (h *Harness) Store(key string) (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if base, ok := h.stores[key]; ok {
		return base, nil
	}
	ds, err := dataset(key)
	if err != nil {
		return "", err
	}
	base := filepath.Join(h.cacheDir, key)
	if _, err := graph.ReadMeta(base); err != nil {
		g, err := ds.Build()
		if err != nil {
			return "", fmt.Errorf("harness: build %s: %w", key, err)
		}
		if err := graph.WriteCSR(base, key, g); err != nil {
			return "", err
		}
	}
	h.stores[key] = base
	return base, nil
}

// Oriented returns the oriented store for a dataset key in the harness's
// configured StoreFormat, orienting once per (dataset, format) with the
// given parallelism and caching the result.
func (h *Harness) Oriented(key string, workers int) (string, *orient.Result, error) {
	base, err := h.Store(key)
	if err != nil {
		return "", nil, err
	}
	format, err := graph.ParseFormat(string(h.StoreFormat))
	if err != nil {
		return "", nil, err
	}
	cacheKey := key + "|" + string(format)
	h.mu.Lock()
	if e, ok := h.oriented[cacheKey]; ok {
		h.mu.Unlock()
		return e.base, e.res, nil
	}
	h.mu.Unlock()

	// Process-unique name: a persistent cache dir may be shared by
	// concurrent harness processes, and orientation rewrites its output
	// files — a shared name would let one process truncate a store
	// another is reading. The format lands in the name too, so both
	// encodings of a dataset can coexist in one cache directory.
	dst := fmt.Sprintf("%s.oriented.%s.%d", base, format, os.Getpid())
	res, err := orient.OrientFormat(base, dst, workers, format)
	if err != nil {
		return "", nil, err
	}
	h.mu.Lock()
	h.oriented[cacheKey] = orientEntry{base: dst, res: res}
	h.mu.Unlock()
	return dst, res, nil
}

// LoadCSR loads a dataset fully into memory (for the in-memory
// comparators).
func (h *Harness) LoadCSR(key string) (*graph.CSR, error) {
	base, err := h.Store(key)
	if err != nil {
		return nil, err
	}
	d, err := graph.Open(base)
	if err != nil {
		return nil, err
	}
	return d.LoadCSR()
}

// StoreBytes reports the size of a dataset's store files (Table I "Size").
func (h *Harness) StoreBytes(key string) (int64, error) {
	base, err := h.Store(key)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range []string{graph.DegPath(base), graph.AdjPath(base)} {
		st, err := os.Stat(p)
		if err != nil {
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}

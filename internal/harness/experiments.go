package harness

import (
	"fmt"
	"io"
)

// Experiment is one reproducible table or figure of the paper.
type Experiment struct {
	// ID is the harness key ("table2", "fig9", ...).
	ID string
	// Paper names the artifact reproduced ("Table II").
	Paper string
	// Desc is a one-line summary.
	Desc string
	// Run executes the experiment, writing tables to the report.
	Run func(h *Harness, r *Report) error
}

// Experiments lists every experiment, in the paper's order.
var Experiments = []Experiment{
	{ID: "table1", Paper: "Table I", Desc: "dataset inventory with exact triangle counts", Run: expTable1},
	{ID: "table2", Paper: "Table II", Desc: "preprocessing: PDTL orientation vs PowerGraph setup vs OPT DB creation", Run: expTable2},
	{ID: "fig2", Paper: "Figure 2", Desc: "multicore orientation scaling", Run: expFig2},
	{ID: "fig3", Paper: "Figure 3", Desc: "local multicore total time, fixed total memory", Run: expFig3},
	{ID: "fig4", Paper: "Figure 4", Desc: "distributed total time vs cores/nodes", Run: expFig4},
	{ID: "table3", Paper: "Table III", Desc: "distributed total time and average copy time per node count", Run: expTable3},
	{ID: "fig5", Paper: "Figure 5", Desc: "memory budget vs calculation time", Run: expFig5},
	{ID: "fig6", Paper: "Figure 6", Desc: "total CPU vs I/O breakdown", Run: expFig6},
	{ID: "fig7", Paper: "Figure 7", Desc: "per-node CPU/I-O, Twitter stand-in (balanced)", Run: expFig7},
	{ID: "fig8", Paper: "Figure 8", Desc: "per-node CPU/I-O, Yahoo stand-in (skewed)", Run: expFig8},
	{ID: "fig9", Paper: "Figure 9", Desc: "load balancing vs naive edge split", Run: expFig9},
	{ID: "table4", Paper: "Table IV", Desc: "per-node CPU and I/O across node counts", Run: expTable4},
	{ID: "fig10", Paper: "Figure 10", Desc: "single-node calculation scaling", Run: expFig10},
	{ID: "fig11", Paper: "Figure 11", Desc: "speedup over single-core MGT", Run: expFig11},
	{ID: "table5", Paper: "Table V", Desc: "PDTL vs OPT setup and calculation", Run: expTable5},
	{ID: "fig12", Paper: "Figure 12", Desc: "PDTL vs OPT across core counts (RMAT)", Run: expFig12},
	{ID: "fig13", Paper: "Figure 13", Desc: "PDTL vs PowerGraph total/calc breakdown", Run: expFig13},
	{ID: "table6", Paper: "Table VI", Desc: "PDTL vs PowerGraph with memory budgets (OOM)", Run: expTable6},
	{ID: "patric", Paper: "Section V-E4", Desc: "PDTL vs PATRIC-style partitioned counting", Run: expPatric},
	{ID: "cttp", Paper: "Section V-E4", Desc: "CTTP MapReduce comparison and shuffle blowup", Run: expCTTP},
	{ID: "table7", Paper: "Table VII", Desc: "EC2-style CPU/I-O grid over cores and nodes", Run: expTable7},
	{ID: "table8", Paper: "Table VIII", Desc: "EC2-style runtime grid including OPT", Run: expTable8},
	{ID: "table9", Paper: "Table IX", Desc: "orientation grid with d*max", Run: expTable9},
	{ID: "table10", Paper: "Table X", Desc: "runtime with and without load balancing", Run: expTable10},
	{ID: "table11", Paper: "Table XI", Desc: "local multicore runtime grid", Run: expTable11},
	{ID: "table12", Paper: "Table XII", Desc: "cluster runtimes, tight memory", Run: expTable12},
	{ID: "table13", Paper: "Table XIII", Desc: "cluster runtimes, ample memory", Run: expTable13},
	{ID: "table14", Paper: "Table XIV", Desc: "7-node PDTL vs PowerGraph with OOM", Run: expTable14},
	{ID: "lb-ablation", Paper: "§VI ext.", Desc: "load-balancer ablation: naive vs in-degree vs exact cost", Run: expLBAblation},
	{ID: "smalldeg", Paper: "§IV-A fn.1", Desc: "small-degree assumption removed: exact counts at M far below d*max", Run: expSmallDegree},
	{ID: "approx", Paper: "§VI ext.", Desc: "approximate counting: Doulion and wedge sampling vs exact", Run: expApprox},
	{ID: "dynamic", Paper: "§VI ext.", Desc: "dynamic counting: exact under insertions and deletions", Run: expDynamic},
	{ID: "service", Paper: "§VI ext.", Desc: "resident query service under concurrent mixed load (cache + single-flight absorption)", Run: expService},
	{ID: "churn", Paper: "§VI ext.", Desc: "live graphs: exact counts and streaming estimate under churn, with compaction", Run: expChurn},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Run executes one experiment by id.
func (h *Harness) Run(id string, w io.Writer) error {
	e, err := Find(id)
	if err != nil {
		return err
	}
	if err := h.ctx().Err(); err != nil {
		return err
	}
	r := NewReport(w)
	r.Title("%s (%s): %s", e.ID, e.Paper, e.Desc)
	return e.Run(h, r)
}

// RunAll executes every experiment in order, stopping early when the
// harness context is cancelled.
func (h *Harness) RunAll(w io.Writer) error {
	for _, e := range Experiments {
		if err := h.Run(e.ID, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// Standard dataset groups used by the experiments. The paper's huge RMAT
// instances are represented by their scaled stand-ins (DESIGN.md §3).
var (
	allKeys   = []string{"lj-sim", "orkut-sim", "twitter-sim", "yahoo-sim", "rmat14", "rmat15", "rmat16", "rmat17"}
	realKeys  = []string{"lj-sim", "orkut-sim", "twitter-sim", "yahoo-sim"}
	sweepKeys = []string{"twitter-sim", "yahoo-sim", "rmat14", "rmat15"}
	cmpKeys   = []string{"lj-sim", "orkut-sim", "twitter-sim", "yahoo-sim", "rmat14"}
	coreList  = []int{1, 2, 4}
	nodeList  = []int{1, 2, 3, 4}
)

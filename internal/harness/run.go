package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/cluster"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
)

// counter for unique scratch paths.
var scratchSeq atomic.Int64

// ctx resolves the harness's run context (nil field means Background).
func (h *Harness) ctx() context.Context {
	if h.Ctx != nil {
		return h.Ctx
	}
	return context.Background()
}

// OrientTimed orients a dataset into a fresh scratch store (bypassing the
// orientation cache) so the orientation itself can be timed at a given
// parallelism — the Figure 2 / Table IX measurements. The cleanup removes
// the scratch files.
func (h *Harness) OrientTimed(key string, workers int) (string, *orient.Result, func(), error) {
	base, err := h.Store(key)
	if err != nil {
		return "", nil, nil, err
	}
	dst := filepath.Join(h.cacheDir, fmt.Sprintf("%s.ot%d", key, scratchSeq.Add(1)))
	res, err := orient.Orient(base, dst, workers)
	if err != nil {
		return "", nil, nil, err
	}
	cleanup := func() {
		os.Remove(graph.MetaPath(dst))
		os.Remove(graph.DegPath(dst))
		os.Remove(graph.AdjPath(dst))
		os.Remove(orient.InDegPath(dst))
	}
	return dst, res, cleanup, nil
}

// CalcLocal runs the local calculation phase (cached orientation, so
// orientation time is excluded) with the given worker count and memory.
func (h *Harness) CalcLocal(key string, workers, memEdges int, strategy balance.Strategy) (*core.Result, error) {
	orientedBase, _, err := h.Oriented(key, 2)
	if err != nil {
		return nil, err
	}
	return core.Process(h.ctx(), orientedBase, core.Options{
		Workers:  workers,
		MemEdges: memEdges,
		Strategy: strategy,
		Scan:     h.Scan,
		Kernel:   h.Kernel,
		Sched:    h.Sched,
		Chunks:   h.Chunks,
	})
}

// ClusterRun is a distributed run plus the cached orientation time, which
// the paper's "total" columns include.
type ClusterRun struct {
	*cluster.Result
	OrientTime time.Duration
	// Total is orientation + distribution + calculation.
	Total time.Duration
}

// RunCluster starts `nodes-1` in-process client nodes (the master is node
// 0), runs the distributed protocol on the dataset's oriented store, and
// tears the cluster down.
func (h *Harness) RunCluster(key string, nodes, workersPerNode, memEdges int, uplink int64) (*ClusterRun, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("harness: need ≥ 1 node")
	}
	orientedBase, ores, err := h.Oriented(key, 2)
	if err != nil {
		return nil, err
	}
	var addrs []string
	if nodes > 1 {
		lc, err := cluster.StartLocal(nodes-1, filepath.Join(h.cacheDir, fmt.Sprintf("cl%d", scratchSeq.Add(1))))
		if err != nil {
			return nil, err
		}
		defer lc.Close()
		addrs = lc.Addrs()
	}
	cres, err := cluster.Run(h.ctx(), cluster.Config{
		GraphBase:         orientedBase,
		GraphName:         key,
		Workers:           workersPerNode,
		MemEdges:          memEdges,
		Strategy:          balance.InDegree,
		UplinkBytesPerSec: uplink,
		Scan:              h.Scan,
		Kernel:            h.Kernel,
		Sched:             h.Sched,
		Chunks:            h.Chunks,
	}, addrs)
	if err != nil {
		return nil, err
	}
	return &ClusterRun{
		Result:     cres,
		OrientTime: ores.Duration,
		Total:      ores.Duration + cres.TotalTime,
	}, nil
}

// MemFull returns a memory budget that lets `processors` runners cover the
// dataset in a single pass each — the "plenty of RAM" setting.
func (h *Harness) MemFull(key string, processors int) (int, error) {
	_, ores, err := h.Oriented(key, 2)
	if err != nil {
		return 0, err
	}
	var entries uint64
	for _, d := range ores.OutDegrees {
		entries += uint64(d)
	}
	m := int(entries)/processors + 1
	return m, nil
}

// MemTight returns a deliberately small budget — max(2·d*max, |E*|/(16·P))
// — forcing multiple passes per runner, the "8 GB" analog of Figure 5.
func (h *Harness) MemTight(key string, processors int) (int, error) {
	_, ores, err := h.Oriented(key, 2)
	if err != nil {
		return 0, err
	}
	var entries uint64
	for _, d := range ores.OutDegrees {
		entries += uint64(d)
	}
	m := int(entries) / (16 * processors)
	if min := 2 * int(ores.MaxOutDegree); m < min {
		m = min
	}
	if m < 1 {
		m = 1
	}
	return m, nil
}

// AggCPUIO sums CPU and I/O time over a set of worker stats.
func AggCPUIO(workers []core.WorkerStat) (cpu, io time.Duration) {
	for _, w := range workers {
		cpu += w.Stats.CPUTime()
		io += w.Stats.IO.IOTime()
	}
	return cpu, io
}

// Work is the machine-independent CPU-work proxy of a set of runners:
// intersection merge steps plus all adjacency entries streamed (scan +
// window loads). The struggler node's Work is what distributed scaling
// divides — the host's physical core count caps wall-clock speedups (this
// harness may run on a 2-core machine) but not this metric.
func Work(workers []core.WorkerStat) uint64 {
	var w uint64
	for _, ws := range workers {
		// BytesRead covers both the sequential scans and the window loads,
		// so entries-streamed is BytesRead/EntrySize.
		w += ws.Stats.CmpOps + uint64(ws.Stats.IO.BytesRead)/graph.EntrySize
	}
	return w
}

// coreWorker aliases core.WorkerStat for brevity in the experiment code.
type coreWorker = core.WorkerStat

// WorkOne is Work for a single runner.
func WorkOne(w core.WorkerStat) uint64 { return Work([]core.WorkerStat{w}) }

// MaxWorkerWork is the struggler runner's work within one result.
func MaxWorkerWork(workers []core.WorkerStat) uint64 {
	var maxW uint64
	for _, w := range workers {
		if ww := WorkOne(w); ww > maxW {
			maxW = ww
		}
	}
	return maxW
}

// MaxNodeWork computes the struggler work over per-node runner groups.
func MaxNodeWork(nodes [][]core.WorkerStat) uint64 {
	var maxW uint64
	for _, n := range nodes {
		if w := Work(n); w > maxW {
			maxW = w
		}
	}
	return maxW
}

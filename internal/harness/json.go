package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/live"
	"pdtl/internal/mgt"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// BenchSchema names the JSON layout BenchJSON emits; bump it when a field
// changes meaning. Consumers (the BENCH_*.json perf trajectory) key on it.
// /2 added environment provenance (go_version, hostname alongside
// gomaxprocs) so trajectories recorded on different machines are
// attributable before they are compared.
// /3 added the compressed-store ablation fields: store_format,
// bytes_per_edge (oriented adjacency bytes per directed edge — the
// compression ratio axis), and segments_skipped (header-only segment
// rejections by the block-skipping kernel; 0 under every other kernel).
// /4 added the live-graph churn fields: delta_edges (undirected delta-layer
// edges overlaid on the base snapshot at count time) and compactions
// (completed delta-into-snapshot rewrites). Both are zero for static-store
// runs; `pdtl-bench -json -churn N` emits the live rows that populate them.
// /5 added the vectorized-kernel ablation: every (dataset, scheduler) now
// emits a count-only row (mode "count" — the closure-free CountKernel hot
// path) and a listing row (mode "listing" — sinks attached), plus word_ops
// (64-bit word operations by the word-parallel bitmap kernels and the
// 8-wide varint decoder) and fast_decodes (segments decoded by
// graph.DecodeSegmentFast). Both counters are zero on plain stores.
// /6 added the per-phase wall breakdown the run tracer records: plan_ns
// (the load-balance planning slice of wall_ns — in-degree load plus
// range/chunk splitting) alongside the existing wall_ns (calculation) and
// orient_ns (preprocessing), so a trajectory regression is attributable to
// a phase without re-running under -trace.
const BenchSchema = "pdtl-bench/6"

// BenchRun is one (dataset, scheduler) measurement — the machine-readable
// counterpart of the human tables, with the per-run wall/CPU/IO split and
// the worker-imbalance straggler factor the load-balance ablation tracks.
type BenchRun struct {
	Dataset   string `json:"dataset"`
	Workers   int    `json:"workers"`
	MemEdges  int    `json:"mem_edges"`
	Sched     string `json:"sched"`
	Chunks    int    `json:"chunks,omitempty"`
	Scan      string `json:"scan"`
	Kernel    string `json:"kernel"`
	// Mode is "count" (no sinks attached — the closure-free count-only
	// kernel path) or "listing" (per-slot sinks attached); the /5 row pair
	// isolates the cost of triangle materialization. Counts are identical
	// by construction.
	Mode string `json:"mode"`
	// StoreFormat is the oriented store's adjacency encoding ("plain" or
	// "compressed"); BytesPerEdge is its adjacency bytes (including the
	// compressed index) per directed edge — 4.0 for plain by construction,
	// the compression ratio axis for compressed.
	StoreFormat  string  `json:"store_format"`
	BytesPerEdge float64 `json:"bytes_per_edge"`
	Triangles    uint64  `json:"triangles"`
	// WallNS is the calculation phase (load balancing + slowest runner);
	// OrientNS the one-time preprocessing, reported separately; PlanNS the
	// load-balance planning slice of the calculation phase.
	WallNS   int64 `json:"wall_ns"`
	OrientNS int64 `json:"orient_ns"`
	PlanNS   int64 `json:"plan_ns"`
	// CPUNS and IONS aggregate the runners; SourceBytes is the scan
	// source's own I/O (shared broadcasts, mem preload).
	CPUNS       int64 `json:"cpu_ns"`
	IONS        int64 `json:"io_ns"`
	BytesRead   int64 `json:"bytes_read"`
	SourceBytes int64 `json:"source_bytes_read"`
	// WorkerImbalance is max/mean per-worker work (intersection steps +
	// adjacency entries streamed) — 1.0 is a perfectly flat run; the
	// static-vs-stealing delta on skewed datasets is the point of the
	// load-balance ablation.
	WorkerImbalance float64 `json:"worker_imbalance"`
	// MaxWorkerWall is the straggler runner's wall time.
	MaxWorkerWallNS int64 `json:"max_worker_wall_ns"`
	// SegmentsSkipped counts compressed segments the block-skipping kernel
	// rejected on their headers alone (summed over runners); zero for plain
	// stores and for every other kernel.
	SegmentsSkipped uint64 `json:"segments_skipped"`
	// DeltaEdges is the live overlay's undirected delta size at count time
	// and Compactions its completed compaction count; both zero outside the
	// -churn live rows.
	DeltaEdges  uint64 `json:"delta_edges"`
	Compactions uint64 `json:"compactions"`
	// WordOps counts 64-bit word operations by the vectorized paths
	// (word-parallel bitmap counting, 8-wide varint decode blocks) and
	// FastDecodes the segments decoded through graph.DecodeSegmentFast;
	// both are zero on plain stores, where no compressed payloads exist.
	WordOps     uint64 `json:"word_ops"`
	FastDecodes uint64 `json:"fast_decodes"`
}

// BenchReport is the top-level document: one run per (dataset, scheduler).
// The GoVersion/GoMaxProc/Hostname trio is the environment provenance that
// makes BENCH_*.json trajectories comparable across machines: a wall-time
// regression means nothing until the runs are known to come from the same
// toolchain, parallelism, and host.
type BenchReport struct {
	Schema    string     `json:"schema"`
	Generated time.Time  `json:"generated"`
	GoVersion string     `json:"go_version"`
	GoMaxProc int        `json:"gomaxprocs"`
	Hostname  string     `json:"hostname"`
	Runs      []BenchRun `json:"runs"`
}

// workerImbalance is max/mean of the per-worker work proxy.
func workerImbalance(workers []core.WorkerStat) float64 {
	if len(workers) == 0 {
		return 1
	}
	total := Work(workers)
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(workers))
	return float64(MaxWorkerWork(workers)) / mean
}

// BenchJSON runs the local calculation phase for every requested dataset
// under each scheduler in modes (nil means both) and writes one
// BenchReport to w — the machine-readable output behind
// `pdtl-bench -json`. Since /5 every (dataset, scheduler) measures twice:
// a count-only run (no sinks — the CountKernel hot path) immediately
// followed by a listing run (discard sinks attached), in that row order,
// so the trajectory tracks both the production counting speed and the
// materialization overhead. The caller passes modes explicitly because
// the Mode zero value is Static: a "-sched static" flag would otherwise
// be indistinguishable from the flag being absent.
func (h *Harness) BenchJSON(w io.Writer, keys []string, workers, memEdges int, modes []sched.Mode) error {
	if workers <= 0 {
		workers = 4
	}
	report := BenchReport{
		Schema:    BenchSchema,
		Generated: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GoMaxProc: runtime.GOMAXPROCS(0),
		Hostname:  hostname(),
	}
	if len(modes) == 0 {
		modes = []sched.Mode{sched.Static, sched.Stealing}
	}
	for _, key := range keys {
		mem := memEdges
		if mem <= 0 {
			var err error
			if mem, err = h.MemTight(key, workers); err != nil {
				return err
			}
		}
		orientedBase, ores, err := h.Oriented(key, 2)
		if err != nil {
			return err
		}
		ometa, err := graph.ReadMeta(orientedBase)
		if err != nil {
			return err
		}
		adjBytes, err := graph.StoreAdjBytes(orientedBase)
		if err != nil {
			return err
		}
		bytesPerEdge := 0.0
		if ometa.NumEdges > 0 {
			bytesPerEdge = float64(adjBytes) / float64(ometa.NumEdges)
		}
		for _, mode := range modes {
			for _, benchMode := range []string{"count", "listing"} {
				opt := core.Options{
					Workers:  workers,
					MemEdges: mem,
					Strategy: balance.InDegree,
					Scan:     h.Scan,
					Kernel:   h.Kernel,
					Sched:    mode,
					Chunks:   h.Chunks,
				}
				if benchMode == "listing" {
					// Discard sinks force the listing path: one per worker
					// under static, one per chunk under stealing (the same
					// slot rule the public handle uses).
					n := workers
					if mode == sched.Stealing {
						n = sched.ChunksFor(workers, h.Chunks)
					}
					sinks := make([]mgt.Sink, n)
					for i := range sinks {
						sinks[i] = &mgt.CountSink{}
					}
					opt.Sinks = sinks
				}
				res, err := core.Process(h.ctx(), orientedBase, opt)
				if err != nil {
					return fmt.Errorf("harness: bench %s/%s/%s: %w", key, mode, benchMode, err)
				}
				run := h.benchRun(res, key, workers, mem)
				run.Sched = mode.String()
				run.Mode = benchMode
				run.StoreFormat = string(ometa.Format.OrPlain())
				run.BytesPerEdge = bytesPerEdge
				run.OrientNS = int64(ores.Duration)
				if mode == sched.Stealing {
					run.Chunks = len(res.ChunkStats)
				}
				report.Runs = append(report.Runs, run)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// benchRun aggregates one calculation's worker stats into the common
// BenchRun core; callers fill in the run-type fields (sched, store format,
// orientation time, live delta gauges).
func (h *Harness) benchRun(res *core.Result, dataset string, workers, mem int) BenchRun {
	cpu, io := AggCPUIO(res.Workers)
	var bytesRead int64
	var maxWall time.Duration
	var segSkipped, wordOps, fastDecodes uint64
	for _, ws := range res.Workers {
		bytesRead += ws.Stats.IO.BytesRead
		segSkipped += ws.Stats.SegmentsSkipped
		wordOps += ws.Stats.WordOps
		fastDecodes += ws.Stats.FastDecodes
		if ws.Stats.Wall > maxWall {
			maxWall = ws.Stats.Wall
		}
	}
	return BenchRun{
		Dataset:         dataset,
		Workers:         workers,
		MemEdges:        mem,
		Scan:            string(res.Scan),
		Kernel:          kernelName(h.Kernel),
		SegmentsSkipped: segSkipped,
		WordOps:         wordOps,
		FastDecodes:     fastDecodes,
		Triangles:       res.Triangles,
		WallNS:          int64(res.CalcTime),
		PlanNS:          int64(res.PlanTime),
		CPUNS:           int64(cpu),
		IONS:            int64(io),
		BytesRead:       bytesRead,
		SourceBytes:     res.SourceIO.BytesRead,
		WorkerImbalance: workerImbalance(res.Workers),
		MaxWorkerWallNS: int64(maxWall),
	}
}

// BenchChurnJSON measures the live-graph churn path for the perf
// trajectory (`pdtl-bench -json -churn N`): each dataset's oriented store
// is wrapped in a live overlay, a seeded burst of N edge mutations is
// applied, and the merged view is counted twice — once against the
// populated delta ("<key>+live" rows, delta_edges > 0) and once after a
// forced compaction folded it into a fresh snapshot ("<key>+compacted"
// rows, compactions = 1, delta_edges = 0). The two rows bracket the read
// overhead the delta overlay adds and the wall cost compaction pays to
// remove it.
func (h *Harness) BenchChurnJSON(w io.Writer, keys []string, workers, memEdges, churnEdges int) error {
	if workers <= 0 {
		workers = 4
	}
	if churnEdges <= 0 {
		churnEdges = 1000
	}
	report := BenchReport{
		Schema:    BenchSchema,
		Generated: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GoMaxProc: runtime.GOMAXPROCS(0),
		Hostname:  hostname(),
	}
	for _, key := range keys {
		mem := memEdges
		if mem <= 0 {
			var err error
			if mem, err = h.MemTight(key, workers); err != nil {
				return err
			}
		}
		orientedBase, ores, err := h.Oriented(key, 2)
		if err != nil {
			return err
		}
		ometa, err := graph.ReadMeta(orientedBase)
		if err != nil {
			return err
		}
		adjBytes, err := graph.StoreAdjBytes(orientedBase)
		if err != nil {
			return err
		}
		bytesPerEdge := 0.0
		if ometa.NumEdges > 0 {
			bytesPerEdge = float64(adjBytes) / float64(ometa.NumEdges)
		}
		lg, err := live.Open(orientedBase, live.Config{
			Dir:         h.cacheDir,
			Name:        fmt.Sprintf("%s.bench%d", key, scratchSeq.Add(1)),
			Workers:     2,
			MemEdges:    mem,
			StoreFormat: h.StoreFormat,
		})
		if err != nil {
			return err
		}
		err = func() error {
			defer lg.Close()
			// A seeded burst: deletes where the merged view has the edge,
			// inserts elsewhere, never touching an edge twice in the batch.
			rng := rand.New(rand.NewSource(99))
			maxV := uint32(lg.Stats().NumVertices + 64)
			updates := make([]live.Update, 0, churnEdges)
			touched := make(map[[2]uint32]bool, churnEdges)
			for len(updates) < churnEdges {
				u, v := rng.Uint32()%maxV, rng.Uint32()%maxV
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				k := [2]uint32{u, v}
				if touched[k] {
					continue
				}
				touched[k] = true
				updates = append(updates, live.Update{
					U: graph.Vertex(u), V: graph.Vertex(v),
					Del: lg.HasEdge(graph.Vertex(u), graph.Vertex(v)),
				})
			}
			if err := lg.ApplyBatch(updates); err != nil {
				return fmt.Errorf("harness: churn bench %s: %w", key, err)
			}
			opt := core.Options{Workers: workers, MemEdges: mem, Strategy: balance.InDegree}
			for _, stage := range []string{"live", "compacted"} {
				if stage == "compacted" {
					if err := lg.CompactNow(h.ctx()); err != nil {
						return fmt.Errorf("harness: churn bench %s compaction: %w", key, err)
					}
				}
				res, err := lg.Count(h.ctx(), opt)
				if err != nil {
					return fmt.Errorf("harness: churn bench %s/%s: %w", key, stage, err)
				}
				st := lg.Stats()
				run := h.benchRun(res, key+"+"+stage, workers, mem)
				run.Sched = sched.Static.String()
				run.Mode = "count" // live counts never attach sinks
				run.StoreFormat = string(ometa.Format.OrPlain())
				run.BytesPerEdge = bytesPerEdge
				run.OrientNS = int64(ores.Duration)
				run.DeltaEdges = uint64(st.DeltaEdges)
				run.Compactions = st.Compactions
				report.Runs = append(report.Runs, run)
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// hostname is os.Hostname with an explicit marker when the platform
// refuses to say — an absent field would read as schema breakage.
func hostname() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "unknown"
	}
	return h
}

// kernelName resolves the kernel default for reporting ("" runs merge).
func kernelName(k scan.KernelKind) string {
	if k == "" {
		return string(scan.KernelMerge)
	}
	return string(k)
}

package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/graph"
)

func newHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFormatHelpers(t *testing.T) {
	if got := D(90 * time.Second); got != "1.5m" {
		t.Errorf("D(90s) = %q", got)
	}
	if got := D(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("D(1.5s) = %q", got)
	}
	if got := D(2500 * time.Microsecond); got != "2.5ms" {
		t.Errorf("D(2.5ms) = %q", got)
	}
	if got := D(700 * time.Nanosecond); got != "0µs" {
		t.Errorf("D(700ns) = %q", got)
	}
	if got := N(1234567); got != "1,234,567" {
		t.Errorf("N = %q", got)
	}
	if got := N(999); got != "999" {
		t.Errorf("N = %q", got)
	}
	if got := N(1000); got != "1,000" {
		t.Errorf("N = %q", got)
	}
	if got := Bytes(3 << 20); got != "3.00MiB" {
		t.Errorf("Bytes = %q", got)
	}
	if got := Bytes(512); got != "512B" {
		t.Errorf("Bytes = %q", got)
	}
}

func TestReportTable(t *testing.T) {
	var buf bytes.Buffer
	r := NewReport(&buf)
	r.Title("demo %d", 7)
	r.Table([]string{"A", "LongHeader"}, [][]string{{"x", "1"}, {"yy", "22"}})
	r.Note("note %s", "here")
	out := buf.String()
	for _, want := range []string{"== demo 7 ==", "A   LongHeader", "yy  22", "note here"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestFindExperiments(t *testing.T) {
	if _, err := Find("table2"); err != nil {
		t.Errorf("Find(table2): %v", err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find should reject unknown ids")
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Paper == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestDatasetRegistry(t *testing.T) {
	if _, err := dataset("twitter-sim"); err != nil {
		t.Error(err)
	}
	if _, err := dataset("missing"); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestStoreCachingAndOrientation(t *testing.T) {
	h := newHarness(t)
	base1, err := h.Store("rmat14")
	if err != nil {
		t.Fatal(err)
	}
	base2, err := h.Store("rmat14")
	if err != nil {
		t.Fatal(err)
	}
	if base1 != base2 {
		t.Error("store not cached")
	}
	o1, res1, err := h.Oriented("rmat14", 2)
	if err != nil {
		t.Fatal(err)
	}
	o2, res2, err := h.Oriented("rmat14", 2)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 || res1 != res2 {
		t.Error("orientation not cached")
	}
	if res1.MaxOutDegree == 0 {
		t.Error("orientation result empty")
	}
}

// TestCompressedStoreRatioTwitterSim pins the tentpole's compression
// acceptance: on the skewed social benchmark graph the compressed oriented
// store is at least 2× smaller per edge than the plain 4 bytes/entry.
func TestCompressedStoreRatioTwitterSim(t *testing.T) {
	if testing.Short() {
		t.Skip("orients the twitter-sim benchmark graph twice")
	}
	h := newHarness(t)
	plainBase, _, err := h.Oriented("twitter-sim", 2)
	if err != nil {
		t.Fatal(err)
	}
	plainBytes, err := graph.StoreAdjBytes(plainBase)
	if err != nil {
		t.Fatal(err)
	}
	h.StoreFormat = graph.FormatCompressed
	compBase, _, err := h.Oriented("twitter-sim", 2)
	if err != nil {
		t.Fatal(err)
	}
	compBytes, err := graph.StoreAdjBytes(compBase)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := graph.ReadMeta(compBase)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != graph.FormatCompressed {
		t.Fatalf("oriented store format = %q, want compressed", meta.Format)
	}
	plainBPE := float64(plainBytes) / float64(meta.NumEdges)
	compBPE := float64(compBytes) / float64(meta.NumEdges)
	t.Logf("twitter-sim oriented: plain %.3f B/edge, compressed %.3f B/edge (%.2fx)",
		plainBPE, compBPE, plainBPE/compBPE)
	if compBytes*2 > plainBytes {
		t.Errorf("compressed store is only %.2fx smaller (%d vs %d bytes), want >= 2x",
			float64(plainBytes)/float64(compBytes), compBytes, plainBytes)
	}
}

func TestMemBudgetsAndCalc(t *testing.T) {
	h := newHarness(t)
	full, err := h.MemFull("rmat14", 2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := h.MemTight("rmat14", 2)
	if err != nil {
		t.Fatal(err)
	}
	if tight >= full {
		t.Errorf("tight budget %d should be below full %d", tight, full)
	}
	resFull, err := h.CalcLocal("rmat14", 2, full, balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	resTight, err := h.CalcLocal("rmat14", 2, tight, balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	if resFull.Triangles != resTight.Triangles {
		t.Errorf("budgets changed the count: %d vs %d", resFull.Triangles, resTight.Triangles)
	}
	var passesFull, passesTight int
	for _, w := range resFull.Workers {
		passesFull += w.Stats.Passes
	}
	for _, w := range resTight.Workers {
		passesTight += w.Stats.Passes
	}
	if passesTight <= passesFull {
		t.Errorf("tight budget should need more passes: %d vs %d", passesTight, passesFull)
	}
}

func TestRunClusterAgreesWithLocal(t *testing.T) {
	h := newHarness(t)
	full, err := h.MemFull("rmat14", 4)
	if err != nil {
		t.Fatal(err)
	}
	local, err := h.CalcLocal("rmat14", 2, full, balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	run, err := h.RunCluster("rmat14", 2, 2, full, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Triangles != local.Triangles {
		t.Errorf("cluster %d != local %d", run.Triangles, local.Triangles)
	}
	if run.Total < run.Result.TotalTime {
		t.Error("Total must include orientation")
	}
	if len(run.Nodes) != 2 {
		t.Errorf("nodes = %d", len(run.Nodes))
	}
}

func TestOrientTimedCleansUp(t *testing.T) {
	h := newHarness(t)
	base, res, cleanup, err := h.OrientTimed("rmat14", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Error("orientation not timed")
	}
	cleanup()
	if _, _, _, err := h.OrientTimed("rmat14", 2); err != nil {
		t.Fatal(err)
	}
	_ = base
}

func TestWorkHelpers(t *testing.T) {
	h := newHarness(t)
	full, err := h.MemFull("rmat14", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.CalcLocal("rmat14", 2, full, balance.InDegree)
	if err != nil {
		t.Fatal(err)
	}
	total := Work(res.Workers)
	if total == 0 {
		t.Fatal("work should be nonzero")
	}
	if MaxWorkerWork(res.Workers) > total {
		t.Error("max worker work cannot exceed total")
	}
	groups := [][]coreWorker{res.Workers[:1], res.Workers[1:]}
	if MaxNodeWork(groups) > total {
		t.Error("max node work cannot exceed total")
	}
}

func TestRunChurnExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := newHarness(t)
	var buf bytes.Buffer
	if err := h.Run("churn", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"round 5", "after compaction", "exact match, gen 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := newHarness(t)
	var buf bytes.Buffer
	// fig12 touches only the cheapest dataset (rmat14).
	if err := h.Run("fig12", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "PDTL calc") || !strings.Contains(out, "OPT calc") {
		t.Errorf("fig12 output incomplete:\n%s", out)
	}
	if err := h.Run("bogus", &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
}

package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"pdtl/internal/approx"
	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/core"
	"pdtl/internal/dynamic"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
)

// expLBAblation is the load-balancer ablation called for by the paper's
// future work ("more detailed investigations could try different
// techniques of load balancing", Section VI): naive equal edges vs the
// paper's in-degree weights vs the exact-cost model.
func expLBAblation(h *Harness, r *Report) error {
	keys := []string{"twitter-sim", "yahoo-sim", "rmat14"}
	const workers = 4
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		mem, err := h.MemFull(key, 1) // ample memory isolates balance quality
		if err != nil {
			return err
		}
		row := []string{key}
		var baselineWork uint64
		for _, s := range []balance.Strategy{balance.Naive, balance.InDegree, balance.Cost} {
			res, err := h.CalcLocal(key, workers, mem, s)
			if err != nil {
				return err
			}
			straggler := MaxWorkerWork(res.Workers)
			if s == balance.Naive {
				baselineWork = straggler
				row = append(row, N(straggler))
			} else {
				row = append(row, fmt.Sprintf("%s (%.2fx)", N(straggler),
					float64(baselineWork)/float64(straggler)))
			}
		}
		rows = append(rows, row)
	}
	r.Table([]string{"Graph", "naive straggler", "indegree (gain)", "cost (gain)"}, rows)
	r.Note("straggler = max per-worker work at %d processors; gain vs naive", 4)
	return nil
}

// expSmallDegree demonstrates the removal of the small-degree assumption
// (the paper's footnote 1): budgets far below d*max stay exact, with the
// large-vertex path's extra I/O visible and bounded. It uses a dedicated
// small RMAT instance because the sweep's I/O volume grows as |E|²/M.
func expSmallDegree(h *Harness, r *Report) error {
	g, err := gen.RMAT(10, 16, 105)
	if err != nil {
		return err
	}
	base := filepath.Join(h.CacheDir(), fmt.Sprintf("smalldeg.%d", os.Getpid()))
	if err := graph.WriteCSR(base, "smalldeg", g); err != nil {
		return err
	}
	oriented := base + ".oriented"
	ores, err := orient.Orient(base, oriented, 2)
	if err != nil {
		return err
	}
	dmax := int(ores.MaxOutDegree)

	var exact uint64
	rows := make([][]string, 0, 4)
	for _, m := range []int{4 * dmax, dmax + 1, dmax / 2, dmax / 4} {
		res, err := core.Process(h.ctx(), oriented, core.Options{Workers: 2, MemEdges: m, Strategy: balance.InDegree})
		if err != nil {
			return err
		}
		if exact == 0 {
			exact = res.Triangles
		} else if res.Triangles != exact {
			return fmt.Errorf("smalldeg: count changed under M=%d: %d vs %d", m, res.Triangles, exact)
		}
		var large uint64
		var passes int
		var bytesRead int64
		for _, w := range res.Workers {
			large += w.Stats.LargeVertices
			passes += w.Stats.Passes
			bytesRead += w.Stats.IO.BytesRead
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d (%.2f·d*max)", m, float64(m)/float64(dmax)),
			N(res.Triangles), fmt.Sprintf("%d", passes), N(large), Bytes(bytesRead),
		})
	}
	r.Table([]string{"M entries/worker", "triangles", "passes", "large-vertex cones", "bytes read"}, rows)
	r.Note("RMAT scale 10, d*max = %d; counts identical at every budget — the assumption is advisory only", dmax)
	return nil
}

// expApprox evaluates the approximate-counting extension (Section VI
// future work): Doulion sparsification and wedge sampling against the
// exact PDTL count.
func expApprox(h *Harness, r *Report) error {
	keys := []string{"twitter-sim", "rmat14"}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		g, err := h.LoadCSR(key)
		if err != nil {
			return err
		}
		mem, err := h.MemFull(key, 2)
		if err != nil {
			return err
		}
		res, err := h.CalcLocal(key, 2, mem, balance.InDegree)
		if err != nil {
			return err
		}
		exact := res.Triangles
		dEst, kept, err := approx.Doulion(g, 0.25, 11)
		if err != nil {
			return err
		}
		wEst, err := approx.WedgeSample(g, 100_000, 11)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			key, N(exact),
			fmt.Sprintf("%.3g (%.1f%% err, %d%% edges)", dEst, 100*approx.RelativeError(dEst, exact),
				100*kept/g.NumEdges()),
			fmt.Sprintf("%.3g (%.1f%% err)", wEst, 100*approx.RelativeError(wEst, exact)),
		})
	}
	r.Table([]string{"Graph", "exact", "Doulion p=0.25", "wedge 100k samples"}, rows)
	r.Note("extension of Section VI: approximate counting on the same substrate")
	return nil
}

// expDynamic evaluates the dynamic-counting extension: stream a dataset's
// edges into the incremental counter, delete a slice, and verify against
// from-scratch exact counts.
func expDynamic(h *Harness, r *Report) error {
	const key = "rmat14"
	g, err := h.LoadCSR(key)
	if err != nil {
		return err
	}
	edges := g.Edges()
	c := dynamic.New()
	for _, e := range edges {
		if _, err := c.Insert(e.U, e.V); err != nil {
			return err
		}
	}
	full := c.Triangles()
	want := baseline.Forward(g)
	if full != want {
		return fmt.Errorf("dynamic: %d != exact %d after inserts", full, want)
	}
	// Delete 10% of edges and verify against a rebuilt static graph.
	cut := len(edges) / 10
	for _, e := range edges[:cut] {
		if _, err := c.Delete(e.U, e.V); err != nil {
			return err
		}
	}
	rest, err := graph.FromEdges(g.NumVertices(), edges[cut:])
	if err != nil {
		return err
	}
	after := baseline.Forward(rest)
	if c.Triangles() != after {
		return fmt.Errorf("dynamic: %d != exact %d after deletes", c.Triangles(), after)
	}
	r.Table([]string{"Stage", "edges", "triangles", "verified"}, [][]string{
		{"after streaming inserts", N(uint64(len(edges))), N(full), "exact match"},
		{fmt.Sprintf("after deleting %s edges", N(uint64(cut))), N(c.Edges()), N(c.Triangles()), "exact match"},
	})
	r.Note("extension of Section VI: exact dynamic counting, O(d(u)+d(v)) per update")
	return nil
}

package harness

import (
	"fmt"
	"time"

	"pdtl/internal/cluster"
	"pdtl/internal/core"
)

// defaultUplink models the shared NIC for copy-time experiments: small
// enough that copy times are visible at our replica sizes, large enough not
// to dominate.
const defaultUplink = 48 << 20 // 48 MiB/s aggregate

// nodeGroups splits a cluster result's per-node worker stats.
func nodeGroups(res *cluster.Result) [][]core.WorkerStat {
	groups := make([][]core.WorkerStat, len(res.Nodes))
	for i, n := range res.Nodes {
		groups[i] = n.Workers
	}
	return groups
}

// avgCopy averages copy time over the non-master nodes.
func avgCopy(res *cluster.Result) time.Duration {
	if len(res.Nodes) <= 1 {
		return 0
	}
	var sum time.Duration
	for _, n := range res.Nodes[1:] {
		sum += n.CopyTime
	}
	return sum / time.Duration(len(res.Nodes)-1)
}

// expFig4 reproduces Figure 4: distributed total time across node counts.
// Wall time on this host is capped by its physical cores, so the struggler
// work column carries the scaling signal (DESIGN.md §3).
func expFig4(h *Harness, r *Report) error {
	header := []string{"Graph"}
	for _, n := range nodeList {
		header = append(header, fmt.Sprintf("%dN total", n), fmt.Sprintf("%dN work/node", n))
	}
	rows := make([][]string, 0, len(sweepKeys))
	for _, key := range sweepKeys {
		row := []string{key}
		for _, nodes := range nodeList {
			mem, err := h.MemFull(key, nodes*2)
			if err != nil {
				return err
			}
			run, err := h.RunCluster(key, nodes, 2, mem, 0)
			if err != nil {
				return err
			}
			row = append(row, D(run.Total), N(MaxNodeWork(nodeGroups(run.Result))))
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	r.Note("paper: RMAT graphs scale to 128 cores; Yahoo stops benefiting past 16 cores")
	return nil
}

// expTable3 reproduces Table III: total time and average copy time per
// node count, under a rate-limited master uplink.
func expTable3(h *Harness, r *Report) error {
	header := []string{"Graph"}
	for _, n := range nodeList {
		if n == 1 {
			header = append(header, "1 node total")
			continue
		}
		header = append(header, fmt.Sprintf("%dN total", n), fmt.Sprintf("%dN avg copy", n))
	}
	keys := []string{"twitter-sim", "yahoo-sim", "rmat14", "rmat15", "rmat16", "rmat17"}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		row := []string{key}
		for _, nodes := range nodeList {
			mem, err := h.MemFull(key, nodes*2)
			if err != nil {
				return err
			}
			run, err := h.RunCluster(key, nodes, 2, mem, defaultUplink)
			if err != nil {
				return err
			}
			if nodes == 1 {
				row = append(row, D(run.Total))
			} else {
				row = append(row, D(run.Total), D(avgCopy(run.Result)))
			}
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	r.Note("paper: copy time grows with graph size and node count (shared uplink)")
	return nil
}

// expFig5 reproduces Figure 5: memory budget has little effect on calc
// time.
func expFig5(h *Harness, r *Report) error {
	for _, cfg := range []struct {
		nodes, workers int
	}{{4, 1}, {4, 2}} {
		procs := cfg.nodes * cfg.workers
		rows := make([][]string, 0, len(sweepKeys))
		for _, key := range sweepKeys {
			full, err := h.MemFull(key, procs)
			if err != nil {
				return err
			}
			tight, err := h.MemTight(key, procs)
			if err != nil {
				return err
			}
			ample, err := h.RunCluster(key, cfg.nodes, cfg.workers, full, 0)
			if err != nil {
				return err
			}
			limited, err := h.RunCluster(key, cfg.nodes, cfg.workers, tight, 0)
			if err != nil {
				return err
			}
			var passesA, passesL int
			for _, n := range ample.Nodes {
				for _, w := range n.Workers {
					passesA += w.Stats.Passes
				}
			}
			for _, n := range limited.Nodes {
				for _, w := range n.Workers {
					passesL += w.Stats.Passes
				}
			}
			rows = append(rows, []string{
				key, D(ample.CalcTime), fmt.Sprintf("%d", passesA),
				D(limited.CalcTime), fmt.Sprintf("%d", passesL),
			})
		}
		r.Note("%d nodes (%d processors)", cfg.nodes, procs)
		r.Table([]string{"Graph", "ample calc", "passes", "tight calc", "passes"}, rows)
	}
	r.Note("paper: limiting memory is negligible; more memory can even cost slightly more")
	return nil
}

// expFig6 reproduces Figure 6: total CPU vs I/O breakdown across nodes
// (Twitter stand-in) and cores (Yahoo stand-in).
func expFig6(h *Harness, r *Report) error {
	rows := make([][]string, 0, len(nodeList))
	for _, nodes := range nodeList {
		mem, err := h.MemFull("twitter-sim", nodes*2)
		if err != nil {
			return err
		}
		run, err := h.RunCluster("twitter-sim", nodes, 2, mem, 0)
		if err != nil {
			return err
		}
		var cpu, ioT time.Duration
		for _, n := range run.Nodes {
			c, i := AggCPUIO(n.Workers)
			cpu += c
			ioT += i
		}
		rows = append(rows, []string{fmt.Sprintf("%d nodes", nodes), D(cpu), D(ioT),
			fmt.Sprintf("%.1f%%", 100*ioT.Seconds()/(cpu+ioT).Seconds())})
	}
	r.Note("twitter-sim across nodes")
	r.Table([]string{"Config", "CPU", "I/O", "I/O share"}, rows)

	rows = rows[:0]
	for _, cores := range coreList {
		mem, err := h.MemFull("yahoo-sim", cores)
		if err != nil {
			return err
		}
		res, err := h.CalcLocal("yahoo-sim", cores, mem, 0)
		if err != nil {
			return err
		}
		cpu, ioT := AggCPUIO(res.Workers)
		rows = append(rows, []string{fmt.Sprintf("%d cores", cores), D(cpu), D(ioT),
			fmt.Sprintf("%.1f%%", 100*ioT.Seconds()/(cpu+ioT).Seconds())})
	}
	r.Note("yahoo-sim across cores")
	r.Table([]string{"Config", "CPU", "I/O", "I/O share"}, rows)
	r.Note("paper: PDTL is not I/O-bound; absolute I/O grows with core count")
	return nil
}

// perNodeBreakdown renders one dataset's per-node CPU/I-O at the given
// node counts (Figures 7 and 8).
func perNodeBreakdown(h *Harness, r *Report, key string, nodeCounts []int) error {
	for _, nodes := range nodeCounts {
		mem, err := h.MemFull(key, nodes*2)
		if err != nil {
			return err
		}
		run, err := h.RunCluster(key, nodes, 2, mem, 0)
		if err != nil {
			return err
		}
		rows := make([][]string, 0, nodes)
		for i, n := range run.Nodes {
			cpu, ioT := AggCPUIO(n.Workers)
			rows = append(rows, []string{
				fmt.Sprintf("node %d", i+1), D(cpu), D(ioT), N(Work(n.Workers)),
			})
		}
		r.Note("%s on %d nodes", key, nodes)
		r.Table([]string{"Node", "CPU", "I/O", "work"}, rows)
	}
	return nil
}

// expFig7 reproduces Figure 7 (balanced Twitter breakdown).
func expFig7(h *Harness, r *Report) error {
	if err := perNodeBreakdown(h, r, "twitter-sim", []int{2, 4}); err != nil {
		return err
	}
	r.Note("paper: Twitter is well balanced; no CPU/I-O correlation")
	return nil
}

// expFig8 reproduces Figure 8 (skewed Yahoo breakdown).
func expFig8(h *Harness, r *Report) error {
	if err := perNodeBreakdown(h, r, "yahoo-sim", []int{2, 4}); err != nil {
		return err
	}
	r.Note("paper: Yahoo is heavily skewed; highest I/O at the busiest nodes")
	return nil
}

// expTable4 reproduces Table IV: per-node CPU and I/O totals, showing how
// load-balance discrepancies grow with node count.
func expTable4(h *Harness, r *Report) error {
	keys := []string{"twitter-sim", "yahoo-sim", "rmat14"}
	for _, nodes := range []int{2, 3, 4} {
		rows := make([][]string, 0, len(keys))
		for _, key := range keys {
			mem, err := h.MemFull(key, nodes*2)
			if err != nil {
				return err
			}
			run, err := h.RunCluster(key, nodes, 2, mem, 0)
			if err != nil {
				return err
			}
			row := []string{key}
			var minW, maxW uint64
			for i, n := range run.Nodes {
				w := Work(n.Workers)
				if i == 0 || w < minW {
					minW = w
				}
				if w > maxW {
					maxW = w
				}
				cpu, ioT := AggCPUIO(n.Workers)
				row = append(row, fmt.Sprintf("%s/%s", D(cpu), D(ioT)))
			}
			imb := "1.00"
			if minW > 0 {
				imb = fmt.Sprintf("%.2f", float64(maxW)/float64(minW))
			}
			row = append(row, imb)
			rows = append(rows, row)
		}
		header := []string{"Graph"}
		for i := 1; i <= nodes; i++ {
			header = append(header, fmt.Sprintf("node%d cpu/io", i))
		}
		header = append(header, "work imbalance")
		r.Note("%d nodes", nodes)
		r.Table(header, rows)
	}
	r.Note("paper: discrepancies grow with node count (Twitter 1%%->13%%, Yahoo 87%%->130%%)")
	return nil
}

// expFig11 reproduces Figure 11: speedup of distributed PDTL over
// single-core MGT (work-based, host cores cap wall-clock).
func expFig11(h *Harness, r *Report) error {
	header := []string{"Graph", "MGT 1-core"}
	for _, nodes := range nodeList {
		header = append(header, fmt.Sprintf("%dN speedup", nodes))
	}
	keys := []string{"twitter-sim", "yahoo-sim", "rmat14", "rmat15"}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		memSingle, err := h.MemFull(key, 1)
		if err != nil {
			return err
		}
		mgtRes, err := h.CalcLocal(key, 1, memSingle, 0)
		if err != nil {
			return err
		}
		mgtWork := Work(mgtRes.Workers)
		row := []string{key, D(mgtRes.CalcTime)}
		for _, nodes := range nodeList {
			mem, err := h.MemFull(key, nodes*2)
			if err != nil {
				return err
			}
			run, err := h.RunCluster(key, nodes, 2, mem, 0)
			if err != nil {
				return err
			}
			straggler := MaxNodeWork(nodeGroups(run.Result))
			row = append(row, fmt.Sprintf("%.1fx", float64(mgtWork)/float64(straggler)))
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	r.Note("speedup = MGT work / straggler-node work (host-independent)")
	r.Note("paper: up to 55x with 4 nodes; 30x Twitter; only 4x Yahoo")
	return nil
}

// expTable7 reproduces Table VII: the EC2-style CPU/I-O grid.
func expTable7(h *Harness, r *Report) error {
	for _, key := range []string{"twitter-sim", "yahoo-sim"} {
		rows := make([][]string, 0, 8)
		for _, cores := range coreList {
			mem, err := h.MemFull(key, cores)
			if err != nil {
				return err
			}
			res, err := h.CalcLocal(key, cores, mem, 0)
			if err != nil {
				return err
			}
			cpu, ioT := AggCPUIO(res.Workers)
			rows = append(rows, []string{fmt.Sprintf("%d cores", cores), D(cpu), D(ioT)})
		}
		for _, nodes := range []int{2, 3, 4} {
			mem, err := h.MemFull(key, nodes*2)
			if err != nil {
				return err
			}
			run, err := h.RunCluster(key, nodes, 2, mem, 0)
			if err != nil {
				return err
			}
			var cpu, ioT time.Duration
			for _, n := range run.Nodes {
				c, i := AggCPUIO(n.Workers)
				cpu += c
				ioT += i
			}
			rows = append(rows, []string{fmt.Sprintf("%d nodes", nodes), D(cpu), D(ioT)})
		}
		r.Note("%s", key)
		r.Table([]string{"Config", "total CPU", "total I/O"}, rows)
	}
	return nil
}

// expTable8 reproduces Table VIII: the EC2-style runtime grid with an OPT
// row.
func expTable8(h *Harness, r *Report) error {
	header := []string{"Graph"}
	for _, c := range coreList {
		header = append(header, fmt.Sprintf("%dc", c))
	}
	for _, n := range []int{2, 3, 4} {
		header = append(header, fmt.Sprintf("%dN", n))
	}
	keys := []string{"lj-sim", "orkut-sim", "twitter-sim", "yahoo-sim", "rmat14", "rmat15"}
	rows := make([][]string, 0, len(keys)+1)
	for _, key := range keys {
		row := []string{key}
		for _, cores := range coreList {
			mem, err := h.MemFull(key, cores)
			if err != nil {
				return err
			}
			res, err := h.CalcLocal(key, cores, mem, 0)
			if err != nil {
				return err
			}
			row = append(row, D(res.CalcTime))
		}
		for _, nodes := range []int{2, 3, 4} {
			mem, err := h.MemFull(key, nodes*2)
			if err != nil {
				return err
			}
			run, err := h.RunCluster(key, nodes, 2, mem, 0)
			if err != nil {
				return err
			}
			row = append(row, D(run.CalcTime))
		}
		rows = append(rows, row)
	}
	r.Table(header, rows)
	return nil
}

// expTable12 reproduces Table XII: cluster runtimes under tight per-node
// memory (the 8 GB/node configuration).
func expTable12(h *Harness, r *Report) error {
	return clusterGrid(h, r, true)
}

// expTable13 reproduces Table XIII: cluster runtimes with ample memory
// (the 32 GB/node configuration).
func expTable13(h *Harness, r *Report) error {
	return clusterGrid(h, r, false)
}

func clusterGrid(h *Harness, r *Report, tight bool) error {
	nodesCounts := []int{2, 4, 8}
	header := []string{"Graph"}
	for _, n := range nodesCounts {
		header = append(header, fmt.Sprintf("%d nodes", n))
	}
	keys := []string{"lj-sim", "orkut-sim", "twitter-sim", "yahoo-sim", "rmat14", "rmat15"}
	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		row := []string{key}
		for _, nodes := range nodesCounts {
			procs := nodes * 2
			var mem int
			var err error
			if tight {
				mem, err = h.MemTight(key, procs)
			} else {
				mem, err = h.MemFull(key, procs)
			}
			if err != nil {
				return err
			}
			run, err := h.RunCluster(key, nodes, 2, mem, 0)
			if err != nil {
				return err
			}
			row = append(row, D(run.Total))
		}
		rows = append(rows, row)
	}
	if tight {
		r.Note("tight memory: max(2 d*max, |E*|/(16 P)) entries per processor")
	} else {
		r.Note("ample memory: one pass per processor")
	}
	r.Table(header, rows)
	return nil
}

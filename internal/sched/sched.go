// Package sched is the chunk scheduler of the PDTL engine: it decides how
// the load-balance plan's edge ranges reach the MGT runners.
//
// The paper binds every one of the N·P processors to one contiguous edge
// range up front (Section IV-B) and names "different techniques of load
// balancing" as future work (Section VI). That static binding makes the
// slowest runner — the "struggler" — gate the whole calculation whenever
// the cost model misjudges a range, which it does on skewed degree
// distributions. This package implements the dynamic alternative: the plan
// is cut into K·P weighted chunks (reusing the balancer's in-degree/cost
// weights, so every chunk carries roughly 1/K of a processor's expected
// work), a concurrent queue hands chunks to a pool of P persistent runners,
// and whichever runner finishes early simply takes the next chunk — the
// work-stealing discipline that engineering studies of distributed triangle
// counting identify as the decisive factor on skewed inputs.
//
// The scheduler never changes what is computed: chunks partition the same
// global edge range a static plan covers, every triangle is still reported
// exactly once by the chunk holding its pivot edge, and chunk-indexed
// outputs keep listings deterministic even though the chunk→runner
// assignment is not.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pdtl/internal/balance"
	"pdtl/internal/mgt"
)

// Mode selects the chunk scheduler.
type Mode int

const (
	// Static is the paper's one-shot binding: each runner receives exactly
	// one contiguous range for the whole run (the load-balance ablation
	// baseline).
	Static Mode = iota
	// Stealing cuts the plan into K·P weighted chunks and lets a pool of P
	// runners draw them dynamically — an early finisher takes the next
	// chunk instead of idling behind the struggler.
	Stealing
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Static:
		return "static"
	case Stealing:
		return "stealing"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode validates a scheduler name from a flag or wire message. The
// empty string means Static — the paper's configuration.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "static":
		return Static, nil
	case "stealing":
		return Stealing, nil
	}
	return 0, fmt.Errorf("sched: unknown scheduler %q (want static or stealing)", s)
}

// DefaultChunksPerWorker is the default K of the stealing scheduler: each
// runner's expected share is split into K chunks, so the worst-case idle
// tail (one runner stuck with the final chunk while the rest drain) is
// bounded by ~1/K of a runner's work. 8 keeps per-chunk overhead (window
// realignment, one extra partial pass per chunk boundary) negligible while
// already flattening the 2–3× stragglers the paper's Figure 9 measures.
const DefaultChunksPerWorker = 8

// ChunksFor returns the chunk count K·P for a pool of `workers` runners and
// a chunks-per-worker factor (non-positive selects DefaultChunksPerWorker).
func ChunksFor(workers, perWorker int) int {
	if perWorker <= 0 {
		perWorker = DefaultChunksPerWorker
	}
	if workers < 1 {
		workers = 1
	}
	return workers * perWorker
}

// Queue hands chunks to a pool of runners, in plan order, each exactly
// once. It is a single atomic cursor over the chunk slice: "stealing" here
// is self-scheduling from a shared queue — there are no per-worker deques
// to steal from because chunks are pre-weighted and uniform-cost, so a
// central queue has no contention worth avoiding at P ≤ hundreds.
type Queue struct {
	chunks  []balance.Range
	next    atomic.Int64
	stopped atomic.Bool
}

// NewQueue creates a queue over the chunk list. The slice is not copied;
// callers must not mutate it while the queue is live.
func NewQueue(chunks []balance.Range) *Queue {
	return &Queue{chunks: chunks}
}

// Next pops the next chunk and its index. ok is false when the queue is
// exhausted or stopped.
func (q *Queue) Next() (int, balance.Range, bool) {
	if q.stopped.Load() {
		return 0, balance.Range{}, false
	}
	i := int(q.next.Add(1)) - 1
	if i >= len(q.chunks) {
		return 0, balance.Range{}, false
	}
	return i, q.chunks[i], true
}

// Stop makes every later Next return false — the error path: a failed
// runner stops the drain without yanking work already in flight.
func (q *Queue) Stop() { q.stopped.Store(true) }

// Len reports the total chunk count.
func (q *Queue) Len() int { return len(q.chunks) }

// Ledger folds per-chunk outcomes into one runner's accounting, keeping
// the per-worker statistics of the engine's static mode meaningful under
// dynamic assignment: counters sum, wall time sums (the chunks ran
// sequentially on this runner — unlike the cross-runner Stats.Add, whose
// max-wall is the straggler rule), and the range becomes the convex hull of
// the ranges processed.
type Ledger struct {
	// Worker is the runner index in the pool.
	Worker int
	// Chunks is how many chunks this runner executed.
	Chunks int
	// Lo and Hi bound the union of the processed ranges (diagnostic; the
	// chunks need not be contiguous).
	Lo, Hi uint64
	// Stats is the folded per-runner total.
	Stats mgt.Stats
}

// Fold accumulates one executed chunk.
func (l *Ledger) Fold(r balance.Range, st mgt.Stats) {
	l.FoldWorker(r.Lo, r.Hi, 1, st)
}

// FoldWorker accumulates an already-folded per-worker result (hull
// [lo, hi), chunks executed, folded stats) — the distributed master's
// cross-batch accumulation applies the same rule per batch that Fold
// applies per chunk, so the folding discipline lives here alone. A zero
// chunk count (a pool runner that drew nothing) folds nothing.
func (l *Ledger) FoldWorker(lo, hi uint64, chunks int, st mgt.Stats) {
	if chunks == 0 {
		return
	}
	if l.Chunks == 0 || lo < l.Lo {
		l.Lo = lo
	}
	if l.Chunks == 0 || hi > l.Hi {
		l.Hi = hi
	}
	l.Chunks += chunks
	wall := l.Stats.Wall + st.Wall
	l.Stats = l.Stats.Add(st)
	l.Stats.Wall = wall
}

// NoExclude is the exclusion sentinel for Dispenser.Requeue: the requeued
// batch may be claimed by any node.
const NoExclude = -1

// redo is one requeued batch: a failed node's in-flight chunks, put back
// for the surviving nodes to absorb. start preserves the batch's global
// chunk indices, so the re-executed listing segment lands in exactly the
// position the dead node's would have — reassignment never perturbs the
// chunk-ordered output. exclude is the slot of the node that failed the
// batch; NextBatch never hands the batch back to it.
type redo struct {
	start   int
	chunks  []balance.Range
	retries int
	exclude int
}

// Dispenser hands out batches of consecutive chunks — the distributed
// master's side of the stealing scheduler. Instead of pre-splitting the
// global plan across nodes, the master keeps the chunk list and each node's
// driver goroutine draws the next batch when the node finishes its current
// one, so a fast node automatically absorbs the work a slow node would have
// stalled on. Batches are consecutive runs of chunk indices, so the
// returned start index orders each node's listing output globally.
//
// Requeue is the fault-tolerance half: when a node dies mid-batch its
// driver puts the batch back (with the dead node excluded and a bumped
// retry count) and the surviving drivers — or the master's final local
// sweep — claim it through the same NextBatch path.
type Dispenser struct {
	mu       sync.Mutex
	chunks   []balance.Range
	next     int
	requeued []redo
	stopped  bool
}

// NewDispenser creates a dispenser over the chunk list.
func NewDispenser(chunks []balance.Range) *Dispenser {
	return &Dispenser{chunks: chunks}
}

// NextBatch claims up to n chunks for the given node slot. Requeued batches
// are served before fresh ones (their chunks are the run's critical path —
// they have already been paid for once), skipping any batch that excludes
// this node. It returns the global index of the first claimed chunk, the
// batch itself, and how many times the batch has been reassigned; an empty
// batch means no work is available to this node (drained, stopped, or only
// batches this node is excluded from remain).
func (d *Dispenser) NextBatch(n, node int) (start int, batch []balance.Range, retries int) {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return 0, nil, 0
	}
	for i, r := range d.requeued {
		if r.exclude == node {
			continue
		}
		take := len(r.chunks)
		if take > n {
			take = n
		}
		start, batch, retries = r.start, r.chunks[:take], r.retries
		if take == len(r.chunks) {
			d.requeued = append(d.requeued[:i], d.requeued[i+1:]...)
		} else {
			// Splitting a requeued batch keeps both halves contiguous, so
			// every listing segment still has a well-defined start index.
			d.requeued[i] = redo{start: r.start + take, chunks: r.chunks[take:], retries: r.retries, exclude: r.exclude}
		}
		return start, batch, retries
	}
	start = d.next
	end := start + n
	if end > len(d.chunks) {
		end = len(d.chunks)
	}
	d.next = end
	return start, d.chunks[start:end], 0
}

// Requeue puts a failed batch back for reassignment. exclude names the node
// slot that failed it (NoExclude to allow any node); retries is the batch's
// new reassignment count, returned verbatim by the NextBatch that re-claims
// it so the claimer can enforce the retry bound.
func (d *Dispenser) Requeue(start int, chunks []balance.Range, retries, exclude int) {
	if len(chunks) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stopped {
		return
	}
	d.requeued = append(d.requeued, redo{start: start, chunks: chunks, retries: retries, exclude: exclude})
}

// Stop drains the dispenser: every later NextBatch returns an empty batch
// and pending requeued work is dropped. The fatal-error path — when a run
// is lost, the healthy nodes must not spend hours computing a result the
// master will discard; they finish their in-flight batch and find the
// queue empty (the Dispenser analog of Queue.Stop).
func (d *Dispenser) Stop() {
	d.mu.Lock()
	d.next = len(d.chunks)
	d.requeued = nil
	d.stopped = true
	d.mu.Unlock()
}

// Remaining reports how many chunks are still claimable: never-claimed
// chunks plus requeued ones. The master checks it after every driver has
// exited — a non-zero value means a failure requeued work after the local
// driver drained the fresh list, and a final master-local sweep must run.
func (d *Dispenser) Remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.chunks) - d.next
	for _, r := range d.requeued {
		n += len(r.chunks)
	}
	return n
}

package sched

import (
	"sync"
	"testing"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/mgt"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"", Static, false},
		{"static", Static, false},
		{"stealing", Stealing, false},
		{"dynamic", 0, true},
		{"Static", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseMode(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseMode(%q) error = %v, want error %v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if Static.String() != "static" || Stealing.String() != "stealing" {
		t.Errorf("String round-trip broken: %q %q", Static, Stealing)
	}
}

func TestChunksFor(t *testing.T) {
	if got := ChunksFor(4, 0); got != 4*DefaultChunksPerWorker {
		t.Errorf("ChunksFor(4, 0) = %d, want %d", got, 4*DefaultChunksPerWorker)
	}
	if got := ChunksFor(3, 5); got != 15 {
		t.Errorf("ChunksFor(3, 5) = %d, want 15", got)
	}
	if got := ChunksFor(0, 2); got != 2 {
		t.Errorf("ChunksFor(0, 2) = %d, want 2 (workers clamped to 1)", got)
	}
}

// TestQueueDrainsEachChunkOnce hammers the queue from many goroutines and
// checks every chunk is handed out exactly once.
func TestQueueDrainsEachChunkOnce(t *testing.T) {
	const n = 1000
	chunks := make([]balance.Range, n)
	for i := range chunks {
		chunks[i] = balance.Range{Lo: uint64(i), Hi: uint64(i + 1)}
	}
	q := NewQueue(chunks)
	var mu sync.Mutex
	seen := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, r, ok := q.Next()
				if !ok {
					return
				}
				if r.Lo != uint64(i) {
					t.Errorf("chunk %d has range %+v", i, r)
				}
				mu.Lock()
				seen[i]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("drained %d distinct chunks, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("chunk %d handed out %d times", i, c)
		}
	}
	if _, _, ok := q.Next(); ok {
		t.Error("Next returned a chunk after exhaustion")
	}
}

func TestQueueStop(t *testing.T) {
	q := NewQueue(make([]balance.Range, 10))
	if _, _, ok := q.Next(); !ok {
		t.Fatal("fresh queue refused a chunk")
	}
	q.Stop()
	if _, _, ok := q.Next(); ok {
		t.Error("stopped queue handed out a chunk")
	}
}

// TestLedgerFold checks the folding rules: wall sums (sequential chunks),
// counters sum, range becomes the hull.
func TestLedgerFold(t *testing.T) {
	var l Ledger
	l.Worker = 3
	l.Fold(balance.Range{Lo: 100, Hi: 200}, mgt.Stats{Triangles: 5, Passes: 2, CmpOps: 10, Wall: 100 * time.Millisecond})
	l.Fold(balance.Range{Lo: 10, Hi: 40}, mgt.Stats{Triangles: 7, Passes: 1, CmpOps: 30, Wall: 50 * time.Millisecond})
	if l.Chunks != 2 {
		t.Errorf("Chunks = %d, want 2", l.Chunks)
	}
	if l.Lo != 10 || l.Hi != 200 {
		t.Errorf("hull = [%d,%d), want [10,200)", l.Lo, l.Hi)
	}
	if l.Stats.Triangles != 12 || l.Stats.Passes != 3 || l.Stats.CmpOps != 40 {
		t.Errorf("folded stats = %+v", l.Stats)
	}
	if l.Stats.Wall != 150*time.Millisecond {
		t.Errorf("wall = %v, want summed 150ms (not the straggler max)", l.Stats.Wall)
	}
}

// TestDispenserBatches checks consecutive batch claims and the start index
// that orders listing segments.
func TestDispenserBatches(t *testing.T) {
	chunks := make([]balance.Range, 10)
	for i := range chunks {
		chunks[i] = balance.Range{Lo: uint64(i), Hi: uint64(i + 1)}
	}
	d := NewDispenser(chunks)
	start, batch := d.NextBatch(4)
	if start != 0 || len(batch) != 4 {
		t.Fatalf("first batch start=%d len=%d", start, len(batch))
	}
	start, batch = d.NextBatch(4)
	if start != 4 || len(batch) != 4 || batch[0].Lo != 4 {
		t.Fatalf("second batch start=%d len=%d first=%+v", start, len(batch), batch[0])
	}
	if d.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", d.Remaining())
	}
	start, batch = d.NextBatch(4)
	if start != 8 || len(batch) != 2 {
		t.Fatalf("tail batch start=%d len=%d", start, len(batch))
	}
	if _, batch = d.NextBatch(4); len(batch) != 0 {
		t.Fatalf("drained dispenser returned %d chunks", len(batch))
	}
	// n < 1 is clamped to 1, not an infinite loop.
	d2 := NewDispenser(chunks[:1])
	if _, b := d2.NextBatch(0); len(b) != 1 {
		t.Fatalf("NextBatch(0) = %d chunks, want 1", len(b))
	}
}

// TestDispenserConcurrent claims batches from many goroutines and checks
// the claims partition the chunk list.
func TestDispenserConcurrent(t *testing.T) {
	const n = 999
	chunks := make([]balance.Range, n)
	d := NewDispenser(chunks)
	var mu sync.Mutex
	claimed := make(map[int]bool)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start, batch := d.NextBatch(7)
				if len(batch) == 0 {
					return
				}
				mu.Lock()
				for i := start; i < start+len(batch); i++ {
					if claimed[i] {
						t.Errorf("chunk %d claimed twice", i)
					}
					claimed[i] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(claimed) != n {
		t.Fatalf("claimed %d chunks, want %d", len(claimed), n)
	}
}

func TestDispenserStop(t *testing.T) {
	d := NewDispenser(make([]balance.Range, 10))
	if _, b := d.NextBatch(2); len(b) != 2 {
		t.Fatalf("first batch len %d", len(b))
	}
	d.Stop()
	if _, b := d.NextBatch(2); len(b) != 0 {
		t.Fatalf("stopped dispenser handed out %d chunks", len(b))
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after Stop", d.Remaining())
	}
}

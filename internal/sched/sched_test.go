package sched

import (
	"sync"
	"testing"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/mgt"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"", Static, false},
		{"static", Static, false},
		{"stealing", Stealing, false},
		{"dynamic", 0, true},
		{"Static", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseMode(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseMode(%q) error = %v, want error %v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if Static.String() != "static" || Stealing.String() != "stealing" {
		t.Errorf("String round-trip broken: %q %q", Static, Stealing)
	}
}

func TestChunksFor(t *testing.T) {
	if got := ChunksFor(4, 0); got != 4*DefaultChunksPerWorker {
		t.Errorf("ChunksFor(4, 0) = %d, want %d", got, 4*DefaultChunksPerWorker)
	}
	if got := ChunksFor(3, 5); got != 15 {
		t.Errorf("ChunksFor(3, 5) = %d, want 15", got)
	}
	if got := ChunksFor(0, 2); got != 2 {
		t.Errorf("ChunksFor(0, 2) = %d, want 2 (workers clamped to 1)", got)
	}
}

// TestQueueDrainsEachChunkOnce hammers the queue from many goroutines and
// checks every chunk is handed out exactly once.
func TestQueueDrainsEachChunkOnce(t *testing.T) {
	const n = 1000
	chunks := make([]balance.Range, n)
	for i := range chunks {
		chunks[i] = balance.Range{Lo: uint64(i), Hi: uint64(i + 1)}
	}
	q := NewQueue(chunks)
	var mu sync.Mutex
	seen := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, r, ok := q.Next()
				if !ok {
					return
				}
				if r.Lo != uint64(i) {
					t.Errorf("chunk %d has range %+v", i, r)
				}
				mu.Lock()
				seen[i]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("drained %d distinct chunks, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("chunk %d handed out %d times", i, c)
		}
	}
	if _, _, ok := q.Next(); ok {
		t.Error("Next returned a chunk after exhaustion")
	}
}

func TestQueueStop(t *testing.T) {
	q := NewQueue(make([]balance.Range, 10))
	if _, _, ok := q.Next(); !ok {
		t.Fatal("fresh queue refused a chunk")
	}
	q.Stop()
	if _, _, ok := q.Next(); ok {
		t.Error("stopped queue handed out a chunk")
	}
}

// TestLedgerFold checks the folding rules: wall sums (sequential chunks),
// counters sum, range becomes the hull.
func TestLedgerFold(t *testing.T) {
	var l Ledger
	l.Worker = 3
	l.Fold(balance.Range{Lo: 100, Hi: 200}, mgt.Stats{Triangles: 5, Passes: 2, CmpOps: 10, Wall: 100 * time.Millisecond})
	l.Fold(balance.Range{Lo: 10, Hi: 40}, mgt.Stats{Triangles: 7, Passes: 1, CmpOps: 30, Wall: 50 * time.Millisecond})
	if l.Chunks != 2 {
		t.Errorf("Chunks = %d, want 2", l.Chunks)
	}
	if l.Lo != 10 || l.Hi != 200 {
		t.Errorf("hull = [%d,%d), want [10,200)", l.Lo, l.Hi)
	}
	if l.Stats.Triangles != 12 || l.Stats.Passes != 3 || l.Stats.CmpOps != 40 {
		t.Errorf("folded stats = %+v", l.Stats)
	}
	if l.Stats.Wall != 150*time.Millisecond {
		t.Errorf("wall = %v, want summed 150ms (not the straggler max)", l.Stats.Wall)
	}
}

// TestDispenserBatches checks consecutive batch claims and the start index
// that orders listing segments.
func TestDispenserBatches(t *testing.T) {
	chunks := make([]balance.Range, 10)
	for i := range chunks {
		chunks[i] = balance.Range{Lo: uint64(i), Hi: uint64(i + 1)}
	}
	d := NewDispenser(chunks)
	start, batch, _ := d.NextBatch(4, 0)
	if start != 0 || len(batch) != 4 {
		t.Fatalf("first batch start=%d len=%d", start, len(batch))
	}
	start, batch, _ = d.NextBatch(4, 1)
	if start != 4 || len(batch) != 4 || batch[0].Lo != 4 {
		t.Fatalf("second batch start=%d len=%d first=%+v", start, len(batch), batch[0])
	}
	if d.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", d.Remaining())
	}
	start, batch, _ = d.NextBatch(4, 0)
	if start != 8 || len(batch) != 2 {
		t.Fatalf("tail batch start=%d len=%d", start, len(batch))
	}
	if _, batch, _ = d.NextBatch(4, 0); len(batch) != 0 {
		t.Fatalf("drained dispenser returned %d chunks", len(batch))
	}
	// n < 1 is clamped to 1, not an infinite loop.
	d2 := NewDispenser(chunks[:1])
	if _, b, _ := d2.NextBatch(0, 0); len(b) != 1 {
		t.Fatalf("NextBatch(0) = %d chunks, want 1", len(b))
	}
}

// TestDispenserRequeue covers the fault-tolerance path: a requeued batch is
// served before fresh chunks, carries its retry count, keeps its global
// start index, never returns to the node that failed it, and splits
// contiguously when the claimer asks for fewer chunks.
func TestDispenserRequeue(t *testing.T) {
	chunks := make([]balance.Range, 12)
	for i := range chunks {
		chunks[i] = balance.Range{Lo: uint64(i), Hi: uint64(i + 1)}
	}
	d := NewDispenser(chunks)
	start, batch, _ := d.NextBatch(4, 2)
	if start != 0 || len(batch) != 4 {
		t.Fatalf("first batch start=%d len=%d", start, len(batch))
	}
	// Node 2 dies holding [0,4); its driver puts the batch back.
	d.Requeue(start, batch, 1, 2)
	if d.Remaining() != 12 {
		t.Fatalf("Remaining = %d after requeue, want 12", d.Remaining())
	}
	// The failed node itself is excluded: it gets fresh chunks instead.
	if s, b, r := d.NextBatch(4, 2); s != 4 || len(b) != 4 || r != 0 {
		t.Fatalf("excluded node got start=%d len=%d retries=%d, want fresh 4..8", s, len(b), r)
	}
	// Another node claims the requeued batch first (split: only 3 wanted).
	s, b, r := d.NextBatch(3, 0)
	if s != 0 || len(b) != 3 || r != 1 || b[0].Lo != 0 {
		t.Fatalf("requeued claim start=%d len=%d retries=%d first=%+v", s, len(b), r, b[0])
	}
	// The remainder of the split keeps its global index and retry count.
	s, b, r = d.NextBatch(3, 1)
	if s != 3 || len(b) != 1 || r != 1 || b[0].Lo != 3 {
		t.Fatalf("split remainder start=%d len=%d retries=%d", s, len(b), r)
	}
	// Back to fresh chunks.
	if s, b, r := d.NextBatch(4, 0); s != 8 || len(b) != 4 || r != 0 {
		t.Fatalf("fresh after requeue drained: start=%d len=%d retries=%d", s, len(b), r)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d at end, want 0", d.Remaining())
	}
	// Requeue after everything else drained: Remaining reflects it and the
	// master's NoExclude sweep can claim it.
	d.Requeue(8, chunks[8:12], 2, 3)
	if d.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want 4", d.Remaining())
	}
	if s, b, r := d.NextBatch(8, NoExclude); s != 8 || len(b) != 4 || r != 2 {
		t.Fatalf("sweep claim start=%d len=%d retries=%d", s, len(b), r)
	}
	// Stop drops requeued work too.
	d.Requeue(0, chunks[:2], 1, NoExclude)
	d.Stop()
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after Stop", d.Remaining())
	}
	d.Requeue(0, chunks[:2], 1, NoExclude)
	if _, b, _ := d.NextBatch(2, 0); len(b) != 0 {
		t.Fatalf("stopped dispenser accepted a requeue and served %d chunks", len(b))
	}
}

// TestDispenserConcurrent claims batches from many goroutines and checks
// the claims partition the chunk list.
func TestDispenserConcurrent(t *testing.T) {
	const n = 999
	chunks := make([]balance.Range, n)
	d := NewDispenser(chunks)
	var mu sync.Mutex
	claimed := make(map[int]bool)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for {
				start, batch, _ := d.NextBatch(7, node)
				if len(batch) == 0 {
					return
				}
				mu.Lock()
				for i := start; i < start+len(batch); i++ {
					if claimed[i] {
						t.Errorf("chunk %d claimed twice", i)
					}
					claimed[i] = true
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(claimed) != n {
		t.Fatalf("claimed %d chunks, want %d", len(claimed), n)
	}
}

func TestDispenserStop(t *testing.T) {
	d := NewDispenser(make([]balance.Range, 10))
	if _, b, _ := d.NextBatch(2, 0); len(b) != 2 {
		t.Fatalf("first batch len %d", len(b))
	}
	d.Stop()
	if _, b, _ := d.NextBatch(2, 0); len(b) != 0 {
		t.Fatalf("stopped dispenser handed out %d chunks", len(b))
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after Stop", d.Remaining())
	}
}

package patric

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
)

func TestCountMatchesReference(t *testing.T) {
	g, err := gen.RMAT(9, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	for _, procs := range []int{1, 2, 5, 16} {
		for _, mode := range []BalanceMode{ByVertex, ByDegree} {
			res, err := Count(g, Config{Processors: procs, Balance: mode})
			if err != nil {
				t.Fatalf("procs=%d mode=%d: %v", procs, mode, err)
			}
			if res.Triangles != want {
				t.Errorf("procs=%d mode=%d: triangles = %d, want %d", procs, mode, res.Triangles, want)
			}
		}
	}
}

func TestOverlapBlowup(t *testing.T) {
	// With many processors the overlapping subgraphs must exceed the
	// graph's own storage — the Section IV-B2 criticism.
	g, err := gen.PowerLaw(2000, 24000, 2.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(g, Config{Processors: 16, Balance: ByDegree})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.OverlapFactor(g); f <= 1.0 {
		t.Errorf("overlap factor %.2f, want > 1 with 16 processors", f)
	}
	res1, err := Count(g, Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalMemoryEntries >= res.TotalMemoryEntries {
		t.Error("total memory should grow with processor count")
	}
}

func TestOOM(t *testing.T) {
	g, err := gen.RMAT(10, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Count(g, Config{Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	var maxMem uint64
	for _, m := range ok.PeakMemoryEntries {
		if m > maxMem {
			maxMem = m
		}
	}
	_, err = Count(g, Config{Processors: 8, MemBudgetEntries: maxMem / 2})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("want ErrOutOfMemory, got %v", err)
	}
	if _, err := Count(g, Config{Processors: 8, MemBudgetEntries: maxMem}); err != nil {
		t.Errorf("budget at max should pass: %v", err)
	}
}

func TestDegreeBalanceHelps(t *testing.T) {
	// On a skewed graph the degree-balanced partition should have a lower
	// maximum shard than the vertex-balanced one... in terms of core
	// degree mass; we proxy via peak memory.
	g, err := gen.PowerLaw(4000, 40000, 2.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	byVertex, err := Count(g, Config{Processors: 8, Balance: ByVertex})
	if err != nil {
		t.Fatal(err)
	}
	byDegree, err := Count(g, Config{Processors: 8, Balance: ByDegree})
	if err != nil {
		t.Fatal(err)
	}
	if byVertex.Triangles != byDegree.Triangles {
		t.Error("balance mode changed the count")
	}
}

func TestConfigValidation(t *testing.T) {
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Count(g, Config{Processors: 0}); err == nil {
		t.Error("want error for 0 processors")
	}
}

// Property: processor count and balance mode never change the count.
func TestProcessorInvariance(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		g, err := gen.ErdosRenyi(n, rng.Intn(6*n), seed)
		if err != nil {
			return false
		}
		procs := 1 + int(pRaw%12)
		mode := BalanceMode(int(pRaw) % 2)
		res, err := Count(g, Config{Processors: procs, Balance: mode})
		if err != nil {
			return false
		}
		return res.Triangles == baseline.Forward(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

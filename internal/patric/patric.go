// Package patric is an in-process reimplementation of the PATRIC-style
// partitioned triangle counter the paper compares against (Arifuzzaman et
// al., CIKM'13; Sections II and V-E4).
//
// PATRIC partitions the *vertices* across processors; each processor must
// hold its core vertices' adjacency **plus the adjacency of all their
// neighbors** in memory (overlapping subgraphs). That overlap is exactly
// what the paper's Section IV-B2 analysis criticizes: total memory across
// processors can exceed |E| by a large factor, while PDTL needs only
// M ≥ d*max per core. This comparator reproduces both PATRIC's counting
// (exact, via degree-ordered intersections) and its memory behaviour,
// including its load-balancing schemes (per-vertex vs degree-weighted
// partitioning) and an out-of-memory failure mode under a per-processor
// budget.
package patric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pdtl/internal/graph"
	"pdtl/internal/orient"
)

// ErrOutOfMemory reports that a processor's overlapping subgraph exceeded
// its budget.
var ErrOutOfMemory = errors.New("patric: processor exceeded memory budget")

// BalanceMode selects PATRIC's partition balancing scheme.
type BalanceMode int

const (
	// ByVertex gives each processor the same number of core vertices.
	ByVertex BalanceMode = iota
	// ByDegree balances the sum of core degrees (one of PATRIC's proposed
	// "novel load balancing mechanisms").
	ByDegree
)

// Config parameterizes a run.
type Config struct {
	// Processors is the total parallel worker count (the paper quotes
	// PATRIC on 200+ cores).
	Processors int
	// Balance selects the partitioning scheme.
	Balance BalanceMode
	// MemBudgetEntries is the per-processor logical memory budget in
	// 4-byte entries; 0 means unlimited.
	MemBudgetEntries uint64
}

// Result reports a run.
type Result struct {
	Triangles uint64
	// SetupTime covers orientation, partitioning and subgraph (core +
	// overlap) construction.
	SetupTime time.Duration
	// CalcTime covers the parallel counting phase.
	CalcTime  time.Duration
	TotalTime time.Duration
	// PeakMemoryEntries is each processor's overlapping-subgraph size.
	PeakMemoryEntries []uint64
	// TotalMemoryEntries sums the per-processor subgraphs; dividing by the
	// graph's own 2|E| entries gives the overlap blowup PDTL avoids.
	TotalMemoryEntries uint64
}

// OverlapFactor is TotalMemoryEntries relative to the graph's own storage.
func (r *Result) OverlapFactor(g *graph.CSR) float64 {
	if g.AdjEntries() == 0 {
		return 0
	}
	return float64(r.TotalMemoryEntries) / float64(g.AdjEntries())
}

// Count runs the PATRIC-style partitioned count over g.
func Count(g *graph.CSR, cfg Config) (*Result, error) {
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("patric: need ≥ 1 processor, got %d", cfg.Processors)
	}
	res := &Result{PeakMemoryEntries: make([]uint64, cfg.Processors)}
	setupStart := time.Now()

	// PATRIC also directs edges by the degree order to halve work.
	o := orient.CSR(g)
	n := o.NumVertices()

	// Partition vertices into contiguous core ranges.
	bounds := partition(o, cfg.Processors, cfg.Balance)

	// Build each processor's subgraph: out-lists of core vertices plus
	// out-lists of every vertex referenced by them (the overlap).
	type shard struct {
		lo, hi graph.Vertex
		mem    uint64
	}
	shards := make([]shard, cfg.Processors)
	for p := 0; p < cfg.Processors; p++ {
		lo, hi := bounds[p], bounds[p+1]
		var mem uint64
		ghost := make(map[graph.Vertex]struct{})
		for v := lo; v < hi; v++ {
			list := o.Neighbors(v)
			mem += uint64(len(list))
			for _, u := range list {
				if u < lo || u >= hi {
					ghost[u] = struct{}{}
				}
			}
		}
		for u := range ghost {
			mem += uint64(o.Degree(u))
		}
		shards[p] = shard{lo: lo, hi: hi, mem: mem}
		res.PeakMemoryEntries[p] = mem
		res.TotalMemoryEntries += mem
		if cfg.MemBudgetEntries > 0 && mem > cfg.MemBudgetEntries {
			res.SetupTime = time.Since(setupStart)
			return res, fmt.Errorf("%w: processor %d needs %d entries, budget %d",
				ErrOutOfMemory, p, mem, cfg.MemBudgetEntries)
		}
	}
	res.SetupTime = time.Since(setupStart)

	// Parallel counting: each processor counts triangles whose cone vertex
	// is in its core range; the overlap guarantees out(u) is local for
	// every u it touches (we read o directly — the subgraphs above are the
	// memory accounting of what a message-passing PATRIC materializes).
	calcStart := time.Now()
	counts := make([]uint64, cfg.Processors)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Processors; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var cnt uint64
			for v := shards[p].lo; v < shards[p].hi; v++ {
				ov := o.Neighbors(v)
				for _, u := range ov {
					cnt += intersect(ov, o.Neighbors(u))
				}
			}
			counts[p] = cnt
		}(p)
	}
	wg.Wait()
	for _, c := range counts {
		res.Triangles += c
	}
	res.CalcTime = time.Since(calcStart)
	res.TotalTime = res.SetupTime + res.CalcTime
	_ = n
	return res, nil
}

// partition returns processor core boundaries (len Processors+1).
func partition(o *graph.CSR, processors int, mode BalanceMode) []graph.Vertex {
	n := o.NumVertices()
	bounds := make([]graph.Vertex, processors+1)
	switch mode {
	case ByDegree:
		total := o.AdjEntries()
		v := 0
		for p := 1; p < processors; p++ {
			target := total * uint64(p) / uint64(processors)
			for v < n && o.Offsets[v+1] <= target {
				v++
			}
			bounds[p] = graph.Vertex(v)
		}
	default: // ByVertex
		for p := 1; p < processors; p++ {
			bounds[p] = graph.Vertex(n * p / processors)
		}
	}
	bounds[processors] = graph.Vertex(n)
	return bounds
}

// intersect counts common elements of two sorted lists.
func intersect(a, b []graph.Vertex) uint64 {
	var count uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

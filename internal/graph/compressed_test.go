package graph

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testLists is a spread of adjacency-list shapes: empty, singleton, dense
// runs (bitmap candidates), sparse spreads (varint), lists straddling the
// 256-entry segment boundary, and extreme ids.
func testLists() [][]Vertex {
	lists := [][]Vertex{
		nil,
		{0},
		{7},
		{0xFFFFFFFF},
		{0, 0xFFFFFFFF},
		{1, 2, 3},
		{5, 1000000, 2000000, 4000000000},
	}
	// Dense run of 300: two segments, the first a bitmap candidate.
	dense := make([]Vertex, 300)
	for i := range dense {
		dense[i] = Vertex(100 + i)
	}
	lists = append(lists, dense)
	// Exactly one segment, exactly full.
	full := make([]Vertex, SegmentEntries)
	for i := range full {
		full[i] = Vertex(3 * i)
	}
	lists = append(lists, full)
	// One past the boundary.
	lists = append(lists, append(append([]Vertex{}, full...), full[len(full)-1]+17))
	// Random sparse and semi-dense lists.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(1000)
		gap := 1 + rng.Intn(1<<uint(rng.Intn(20)))
		list := make([]Vertex, 0, n)
		v := uint64(rng.Intn(1000))
		for i := 0; i < n; i++ {
			if v > 0xFFFFFFFF {
				break
			}
			list = append(list, Vertex(v))
			v += 1 + uint64(rng.Intn(gap))
		}
		lists = append(lists, list)
	}
	return lists
}

func TestCompressedListRoundTrip(t *testing.T) {
	var enc ListEncoder
	for i, list := range testLists() {
		data := enc.Append(nil, list)
		cl := CompressedList{Degree: len(list), Data: data}
		got, err := cl.Decode(nil)
		if err != nil {
			t.Fatalf("list %d (len %d): decode: %v", i, len(list), err)
		}
		if len(list) == 0 {
			if len(data) != 0 || len(got) != 0 {
				t.Fatalf("list %d: empty list encoded to %d bytes, decoded to %d entries", i, len(data), len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, list) {
			t.Fatalf("list %d: round trip mismatch:\n got %v\nwant %v", i, got, list)
		}
		first, last, ok, err := cl.Bounds()
		if err != nil || !ok {
			t.Fatalf("list %d: bounds: ok=%v err=%v", i, ok, err)
		}
		if first != list[0] || last != list[len(list)-1] {
			t.Fatalf("list %d: bounds [%d,%d], want [%d,%d]", i, first, last, list[0], list[len(list)-1])
		}
	}
}

func TestDecodeEntryRange(t *testing.T) {
	var enc ListEncoder
	scratch := make([]Vertex, 0, SegmentEntries)
	for i, list := range testLists() {
		if len(list) == 0 {
			continue
		}
		data := enc.Append(nil, list)
		cl := CompressedList{Degree: len(list), Data: data}
		ranges := [][2]int{{0, len(list)}, {0, 1}, {len(list) - 1, len(list)}, {len(list) / 3, 2 * len(list) / 3}}
		for _, r := range ranges {
			lo, hi := r[0], r[1]
			got, err := DecodeEntryRange(cl, lo, hi, scratch, nil)
			if err != nil {
				t.Fatalf("list %d range [%d,%d): %v", i, lo, hi, err)
			}
			want := list[lo:hi]
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, []Vertex(want)) {
				t.Fatalf("list %d range [%d,%d): got %v want %v", i, lo, hi, got, want)
			}
		}
	}
}

// TestSegmentBitmapChosen pins the density threshold: a dense run must pick
// the bitmap encoding, a sparse one the varint encoding.
func TestSegmentBitmapChosen(t *testing.T) {
	var enc ListEncoder
	dense := make([]Vertex, 200)
	for i := range dense {
		dense[i] = Vertex(2 * i) // span 398 → 50-byte bitmap < 199 varint bytes
	}
	it := (CompressedList{Degree: len(dense), Data: enc.Append(nil, dense)}).Segments()
	seg, ok := it.Next()
	if !ok {
		t.Fatal(it.Err())
	}
	if seg.Kind != segKindBitmap {
		t.Fatalf("dense segment kind %d, want bitmap", seg.Kind)
	}
	if !seg.Contains(0) || !seg.Contains(398) || seg.Contains(1) {
		t.Fatal("bitmap Contains disagrees with the list")
	}

	sparse := []Vertex{0, 1000, 50000, 1000000}
	it = (CompressedList{Degree: len(sparse), Data: enc.Append(nil, sparse)}).Segments()
	if seg, ok = it.Next(); !ok {
		t.Fatal(it.Err())
	}
	if seg.Kind != segKindVarint {
		t.Fatalf("sparse segment kind %d, want varint", seg.Kind)
	}
}

// corruptStore writes a tiny valid compressed store and returns its base.
func corruptStore(t *testing.T) (string, *CSR) {
	t.Helper()
	g := &CSR{
		Offsets: []uint64{0, 3, 5, 6, 6},
		Adj:     []Vertex{1, 2, 3, 2, 3, 3},
	}
	base := filepath.Join(t.TempDir(), "g")
	if err := WriteCSRFormat(base, "corrupt-test", g, FormatCompressed); err != nil {
		t.Fatal(err)
	}
	return base, g
}

func mustFail(t *testing.T, base, label, substr string) {
	t.Helper()
	d, err := Open(base)
	if err == nil {
		// Open may legitimately succeed when the corruption is inside a
		// payload; the scan must then catch it.
		sc, serr := d.NewScanner(nil, 0)
		if serr != nil {
			err = serr
		} else {
			for {
				if _, _, ok := sc.Next(); !ok {
					break
				}
			}
			err = sc.Err()
			sc.Close()
		}
	}
	if err == nil {
		t.Fatalf("%s: corruption not detected", label)
	}
	if substr != "" && !strings.Contains(err.Error(), substr) {
		t.Fatalf("%s: error %q does not mention %q", label, err, substr)
	}
}

func TestCompressedCorruptStore(t *testing.T) {
	patch := func(t *testing.T, path string, off int64, b []byte) {
		t.Helper()
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		copy(blob[off:], b)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("bad-cadj-magic", func(t *testing.T) {
		base, _ := corruptStore(t)
		patch(t, CAdjPath(base), 0, []byte("XXXX"))
		mustFail(t, base, "bad cadj magic", "bad magic")
	})
	t.Run("bad-cidx-magic", func(t *testing.T) {
		base, _ := corruptStore(t)
		patch(t, CIdxPath(base), 0, []byte("XXXX"))
		mustFail(t, base, "bad cidx magic", "bad magic")
	})
	t.Run("truncated-cadj", func(t *testing.T) {
		base, _ := corruptStore(t)
		blob, err := os.ReadFile(CAdjPath(base))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(CAdjPath(base), blob[:len(blob)-1], 0o644); err != nil {
			t.Fatal(err)
		}
		mustFail(t, base, "truncated cadj", "")
	})
	t.Run("truncated-cidx", func(t *testing.T) {
		base, _ := corruptStore(t)
		blob, err := os.ReadFile(CIdxPath(base))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(CIdxPath(base), blob[:5], 0o644); err != nil {
			t.Fatal(err)
		}
		mustFail(t, base, "truncated cidx", "")
	})
	t.Run("bad-segment-kind", func(t *testing.T) {
		base, _ := corruptStore(t)
		// First byte of the data area is vertex 0's first segment kind.
		patch(t, CAdjPath(base), int64(cadjHeaderLen), []byte{9})
		mustFail(t, base, "bad segment kind", "bad segment kind")
	})
	t.Run("overlong-varint", func(t *testing.T) {
		base, _ := corruptStore(t)
		// Stamp a never-terminating varint over vertex 0's header fields.
		patch(t, CAdjPath(base), int64(cadjHeaderLen)+1, []byte{0x80, 0x80, 0x80})
		mustFail(t, base, "overlong varint", "varint")
	})
	t.Run("missing-cidx", func(t *testing.T) {
		base, _ := corruptStore(t)
		if err := os.Remove(CIdxPath(base)); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(base); err == nil {
			t.Fatal("open succeeded without the .cidx index")
		}
	})
}

// TestCompressedStoreScansMatchPlain builds the same graph in both formats
// and asserts the sequential scans (segmented and whole-list), random
// access, and LoadCSR agree exactly.
func TestCompressedStoreScansMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	offsets := make([]uint64, n+1)
	var adj []Vertex
	for v := 0; v < n; v++ {
		offsets[v] = uint64(len(adj))
		deg := rng.Intn(40)
		if v == 13 {
			deg = 700 // straddles multiple segments
		}
		seen := map[Vertex]bool{}
		var list []Vertex
		for len(list) < deg {
			w := Vertex(rng.Intn(4 * n))
			if !seen[w] {
				seen[w] = true
				list = append(list, w)
			}
		}
		sortVertices(list)
		adj = append(adj, list...)
	}
	offsets[n] = uint64(len(adj))
	g := &CSR{Offsets: offsets, Adj: adj}

	dir := t.TempDir()
	plainBase := filepath.Join(dir, "plain")
	compBase := filepath.Join(dir, "comp")
	if err := WriteCSR(plainBase, "t", g); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSRFormat(compBase, "t", g, FormatCompressed); err != nil {
		t.Fatal(err)
	}
	dp, err := Open(plainBase)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := Open(compBase)
	if err != nil {
		t.Fatal(err)
	}

	for _, maxList := range []int{0, 1, 7, 256, 1000} {
		sp, err := dp.NewScanner(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := dc.NewScanner(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		sp.SetMaxList(maxList)
		sc.SetMaxList(maxList)
		for {
			u1, l1, ok1 := sp.Next()
			u2, l2, ok2 := sc.Next()
			if ok1 != ok2 {
				t.Fatalf("maxList %d: stream lengths diverge (plain ok=%v compressed ok=%v)", maxList, ok1, ok2)
			}
			if !ok1 {
				break
			}
			if u1 != u2 || !reflect.DeepEqual(append([]Vertex{}, l1...), append([]Vertex{}, l2...)) {
				t.Fatalf("maxList %d: segment mismatch at u=%d/%d: %v vs %v", maxList, u1, u2, l1, l2)
			}
		}
		if err := sp.Err(); err != nil {
			t.Fatal(err)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		sp.Close()
		sc.Close()
	}

	// NextCompressed delivers every list intact.
	sc, err := dc.NewScanner(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	csc := sc.(*CompressedSeqScan)
	for v := 0; v < n; v++ {
		u, cl, ok := csc.NextCompressed()
		if !ok {
			t.Fatalf("NextCompressed ended early at %d: %v", v, csc.Err())
		}
		got, err := cl.Decode(nil)
		if err != nil {
			t.Fatalf("vertex %d: %v", u, err)
		}
		want := adj[offsets[v]:offsets[v+1]]
		if len(got) != len(want) {
			t.Fatalf("vertex %d: decoded %d entries, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("vertex %d entry %d: %d != %d", v, i, got[i], want[i])
			}
		}
	}
	sc.Close()

	// Random access agrees for assorted windows.
	rp, err := dp.OpenRandom(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	rc, err := dc.OpenRandom(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	total := len(adj)
	for trial := 0; trial < 100; trial++ {
		pos := rng.Intn(total)
		ln := 1 + rng.Intn(total-pos)
		if ln > 2000 {
			ln = 2000
		}
		a := make([]Vertex, ln)
		b := make([]Vertex, ln)
		if err := rp.ReadEntries(a, uint64(pos)); err != nil {
			t.Fatal(err)
		}
		if err := rc.ReadEntries(b, uint64(pos)); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: ReadEntries([%d,%d)) differs", trial, pos, pos+ln)
		}
	}

	// LoadCSR round trip.
	loaded, err := dc.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Adj, adj) {
		t.Fatal("LoadCSR of the compressed store differs from the source adjacency")
	}

	// ConvertStore in both directions preserves the adjacency.
	back := filepath.Join(dir, "back")
	if err := ConvertStore(compBase, back, FormatPlain); err != nil {
		t.Fatal(err)
	}
	db, err := Open(back)
	if err != nil {
		t.Fatal(err)
	}
	bcsr, err := db.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bcsr.Adj, adj) {
		t.Fatal("plain→compressed→plain conversion changed the adjacency")
	}
}

func sortVertices(v []Vertex) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// FuzzSegmentCodec holds the codec to two properties: any sorted unique list
// round-trips exactly, and arbitrary bytes never panic the decoder (they
// either decode or error).
func FuzzSegmentCodec(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 251}, uint16(5))
	f.Add([]byte{0xFF, 0x00, 0x80}, uint16(3))
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, raw []byte, degree uint16) {
		// Property 1: the fuzz bytes as arbitrary compressed data must not
		// panic, for any claimed degree.
		cl := CompressedList{Degree: int(degree), Data: raw}
		if decoded, err := cl.Decode(nil); err == nil && len(decoded) != int(degree) {
			t.Fatalf("decode reported success with %d entries for degree %d", len(decoded), degree)
		}
		cl.Bounds()

		// Property 2: a sorted unique list derived from the bytes
		// round-trips exactly.
		var list []Vertex
		v := uint64(0)
		for i, b := range raw {
			v += uint64(b)*uint64(i+1) + 1
			if v > 0xFFFFFFFF {
				break
			}
			list = append(list, Vertex(v))
		}
		var enc ListEncoder
		data := enc.Append(nil, list)
		got, err := (CompressedList{Degree: len(list), Data: data}).Decode(nil)
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if len(got) != len(list) {
			t.Fatalf("round trip: %d entries, want %d", len(got), len(list))
		}
		for i := range got {
			if got[i] != list[i] {
				t.Fatalf("round trip entry %d: %d != %d", i, got[i], list[i])
			}
		}
	})
}

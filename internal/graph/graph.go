// Package graph provides the binary graph store and in-memory graph
// representation used throughout the PDTL reproduction.
//
// The on-disk layout follows Section V-B of the paper (and the format of the
// original MGT binary it is compatible with): a graph <base> is three files,
//
//	<base>.meta  — JSON metadata (vertex/edge counts, orientation flag, ...)
//	<base>.deg   — little-endian uint32 degree per vertex (|V| entries)
//	<base>.adj   — little-endian uint32 neighbor entries, the concatenation
//	               of all adjacency lists in vertex order, each list sorted
//	               by neighbor id
//
// An undirected graph stores every edge in both endpoint lists (2m entries);
// an oriented graph stores only out-neighbors (m entries). Sortedness of the
// lists is load-bearing: the modified MGT algorithm intersects adjacency
// lists as sorted arrays (Section IV-A1 of the paper found hash sets >10×
// slower), and orientation preserves sortedness because it only filters.
package graph

// Vertex identifies a graph vertex. The paper's largest graph (Yahoo) has
// 1.4B vertices, which fits in 32 bits; using uint32 halves the I/O volume
// relative to 64-bit ids, which matters for an external-memory algorithm.
type Vertex = uint32

// Edge is an edge between two vertices. For undirected graphs the canonical
// form has U < V.
type Edge struct {
	U, V Vertex
}

// Canon returns e with endpoints swapped if necessary so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// CSR is an in-memory graph in compressed sparse row form. The neighbor
// list of vertex v is Adj[Offsets[v]:Offsets[v+1]], sorted by vertex id.
type CSR struct {
	// Offsets has NumVertices+1 entries; Offsets[0] == 0.
	Offsets []uint64
	// Adj holds the concatenated, per-list-sorted adjacency entries.
	Adj []Vertex
	// Oriented records whether Adj stores out-neighbors of an orientation
	// (one entry per edge) rather than both directions of an undirected
	// graph (two entries per edge).
	Oriented bool
}

// NumVertices reports |V|.
func (g *CSR) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges reports the undirected edge count m: half the adjacency entries
// of an undirected graph, or exactly the entry count of an oriented one.
func (g *CSR) NumEdges() uint64 {
	if g.Oriented {
		return uint64(len(g.Adj))
	}
	return uint64(len(g.Adj)) / 2
}

// AdjEntries reports the number of entries in the adjacency array.
func (g *CSR) AdjEntries() uint64 { return uint64(len(g.Adj)) }

// Degree reports the (out-)degree of v.
func (g *CSR) Degree(v Vertex) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns v's (out-)neighbor list. The returned slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v Vertex) []Vertex {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// Degrees materializes the degree array.
func (g *CSR) Degrees() []uint32 {
	n := g.NumVertices()
	deg := make([]uint32, n)
	for v := 0; v < n; v++ {
		deg[v] = uint32(g.Offsets[v+1] - g.Offsets[v])
	}
	return deg
}

// MaxDegree reports the maximum (out-)degree, or 0 for an empty graph.
func (g *CSR) MaxDegree() uint32 {
	var maxDeg uint64
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Offsets[v+1] - g.Offsets[v]; d > maxDeg {
			maxDeg = d
		}
	}
	return uint32(maxDeg)
}

// HasEdge reports whether w appears in v's neighbor list, by binary search.
func (g *CSR) HasEdge(v, w Vertex) bool {
	list := g.Neighbors(v)
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo] == w
}

// Edges materializes the canonical undirected edge list (u < v once per
// edge) of an undirected graph, or the directed edge list of an oriented
// graph. Intended for tests and small graphs.
func (g *CSR) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(Vertex(v)) {
			if g.Oriented || Vertex(v) < w {
				edges = append(edges, Edge{Vertex(v), w})
			}
		}
	}
	return edges
}

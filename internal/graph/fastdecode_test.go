package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomList builds a strictly-increasing list with mixed gap sizes: mostly
// single-byte gaps (the common case the wide decoder targets) with
// occasional multi-byte jumps that force its scalar fallback mid-run.
func randomList(rng *rand.Rand, n int) []Vertex {
	out := make([]Vertex, 0, n)
	v := uint64(rng.Intn(1000))
	for len(out) < n {
		out = append(out, Vertex(v))
		switch rng.Intn(10) {
		case 0: // multi-byte gap (varint ≥ 2 bytes)
			v += 128 + uint64(rng.Intn(100000))
		default: // single-byte gap
			v += 1 + uint64(rng.Intn(120))
		}
		if v > 0xFFFFFFF0 {
			break
		}
	}
	return out
}

// TestDecodeSegmentFastMatchesScalar holds the unrolled decoder to the
// scalar one on real encoder output: same values per segment, and wide
// blocks actually taken on single-byte-gap runs.
func TestDecodeSegmentFastMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var enc ListEncoder
	var totalBlocks int
	for trial := 0; trial < 200; trial++ {
		list := randomList(rng, 1+rng.Intn(700))
		cl := CompressedList{Degree: len(list), Data: enc.Append(nil, list)}
		it := cl.Segments()
		for {
			seg, ok := it.Next()
			if !ok {
				break
			}
			want, werr := DecodeSegment(seg, nil)
			got, blocks, gerr := DecodeSegmentFast(seg, nil)
			if werr != nil || gerr != nil {
				t.Fatalf("trial %d: decode errors on valid input: scalar=%v fast=%v", trial, werr, gerr)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d: fast decode differs:\nscalar %v\nfast   %v", trial, want, got)
			}
			if blocks*wideWidth > len(got) {
				t.Fatalf("trial %d: %d wide blocks for %d values", trial, blocks, len(got))
			}
			totalBlocks += blocks
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if totalBlocks == 0 {
		t.Fatal("no trial ever took the wide path; the test lists are too sparse")
	}
}

// TestSegmentWords checks the word view of bitmap segments bit-for-bit
// against Contains, including the zero-padded partial tail word.
func TestSegmentWords(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var enc ListEncoder
	for trial := 0; trial < 100; trial++ {
		// Dense values in a narrow range force bitmap segments.
		base := Vertex(rng.Intn(10000))
		span := 30 + rng.Intn(500)
		var list []Vertex
		for o := 0; o < span; o++ {
			if rng.Intn(3) > 0 {
				list = append(list, base+Vertex(o))
			}
		}
		if len(list) < 2 {
			continue
		}
		cl := CompressedList{Degree: len(list), Data: enc.Append(nil, list)}
		it := cl.Segments()
		for {
			seg, ok := it.Next()
			if !ok {
				break
			}
			if seg.Kind != SegBitmap {
				continue
			}
			words := SegmentWords(seg, nil)
			if want := (len(seg.Payload) + 7) / 8; len(words) != want {
				t.Fatalf("trial %d: %d words for %d payload bytes", trial, len(words), want)
			}
			for v := seg.First; ; v++ {
				bit := uint(v - seg.First)
				got := words[bit>>6]>>(bit&63)&1 != 0
				if got != seg.Contains(v) {
					t.Fatalf("trial %d: word bit for %d = %v, Contains = %v", trial, v, got, seg.Contains(v))
				}
				if v == seg.Last {
					break
				}
			}
			// Padding bits beyond the payload must be zero.
			for bit := uint(len(seg.Payload) * 8); bit < uint(len(words)*64); bit++ {
				if words[bit>>6]>>(bit&63)&1 != 0 {
					t.Fatalf("trial %d: padding bit %d set", trial, bit)
				}
			}
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDecodeSegmentFast holds DecodeSegmentFast byte-equivalent to
// DecodeSegment on arbitrary segments — valid or corrupt. Equivalence is
// total: same appended values, same error presence, same error message;
// corrupt input must error, never panic.
func FuzzDecodeSegmentFast(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(11), uint32(10), uint32(64), byte(0))
	f.Add([]byte{0x80, 0x01, 0, 0, 0, 0, 0, 0, 0}, uint16(10), uint32(0), uint32(200), byte(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF}, uint16(4), uint32(7), uint32(3), byte(1))
	f.Add([]byte{}, uint16(1), uint32(0), uint32(0), byte(0))
	f.Fuzz(func(t *testing.T, payload []byte, count uint16, first uint32, span uint32, kind byte) {
		seg := Segment{
			Kind:    kind % 3, // varint, bitmap, and one invalid kind
			Count:   int(count),
			First:   Vertex(first),
			Last:    Vertex(uint64(first) + uint64(span)), // may wrap: corrupt headers are fair game
			Payload: payload,
		}
		want, werr := DecodeSegment(seg, nil)
		got, blocks, gerr := DecodeSegmentFast(seg, nil)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error divergence: scalar=%v fast=%v (seg %+v)", werr, gerr, seg)
		}
		if werr != nil && werr.Error() != gerr.Error() {
			t.Fatalf("error message divergence:\nscalar %q\nfast   %q", werr, gerr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("value divergence:\nscalar %v\nfast   %v (seg %+v)", want, got, seg)
		}
		if blocks < 0 || blocks*wideWidth > len(got) {
			t.Fatalf("%d wide blocks for %d values", blocks, len(got))
		}
	})
}

// BenchmarkDecodeSegment is the scalar-vs-unrolled pair of the decode
// ablation: one full varint segment of small gaps (the dominant shape on
// real adjacency lists), decoded into a reused buffer so allocs/op pins at
// zero for both.
func BenchmarkDecodeSegment(b *testing.B) {
	list := make([]Vertex, SegmentEntries)
	rng := rand.New(rand.NewSource(3))
	v := Vertex(100)
	for i := range list {
		v += 1 + Vertex(rng.Intn(100))
		list[i] = v
	}
	var enc ListEncoder
	cl := CompressedList{Degree: len(list), Data: enc.Append(nil, list)}
	it := cl.Segments()
	seg, ok := it.Next()
	if !ok {
		b.Fatal(it.Err())
	}
	if seg.Kind != SegVarint {
		b.Fatalf("segment kind %d, want varint", seg.Kind)
	}
	dst := make([]Vertex, 0, SegmentEntries)

	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(seg.Payload)))
		for i := 0; i < b.N; i++ {
			out, err := DecodeSegment(seg, dst[:0])
			if err != nil || len(out) != seg.Count {
				b.Fatalf("decode: %v (%d values)", err, len(out))
			}
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(seg.Payload)))
		for i := 0; i < b.N; i++ {
			out, blocks, err := DecodeSegmentFast(seg, dst[:0])
			if err != nil || len(out) != seg.Count || blocks == 0 {
				b.Fatalf("decode: %v (%d values, %d blocks)", err, len(out), blocks)
			}
		}
	})
}

// Compressed adjacency store: the second on-disk (and in-memory) format of
// the graph store, selected by `format: "compressed"` in the metadata and
// auto-detected by Open.
//
// A compressed store replaces the 4-byte-per-entry .adj file with two files:
//
//	<base>.cadj — 4-byte magic "PCA1", then per-vertex encoded lists in
//	              vertex order (the data area; all byte offsets below are
//	              relative to its start, i.e. file offset − 4)
//	<base>.cidx — 4-byte magic "PCI1", uvarint vertex count, then one
//	              uvarint per vertex: the byte length of that vertex's
//	              encoded list in the data area
//
// Each list is split into segments of at most SegmentEntries (256) sorted
// entries. A segment is self-describing up to its entry count, which is
// derived from the degree file (segment k of a degree-d list holds
// min(256, d−256k) entries — segmentation is purely positional, so the
// count never needs to be stored). The wire layout of one segment:
//
//	kind     1 byte   0 = delta-varint payload, 1 = dense bitmap payload
//	first    uvarint  absolute value for the list's first segment; for
//	                  later segments the gap first − prevLast − 1
//	span     uvarint  last − first (0 for a single-entry segment)
//	dataLen  uvarint  payload byte length
//	payload  dataLen bytes
//
// The (first, span) header pair is the skip test: a kernel or scanner can
// reject a whole segment against a query range — and skip its payload via
// dataLen — without decoding a single value. The varint payload holds
// count−1 uvarints of gap−1 deltas (lists are strictly increasing); the
// bitmap payload holds ⌈(span+1)/8⌉ bytes with bit i set iff first+i is
// present — chosen per segment whenever it is the smaller encoding, which
// is exactly the ultra-high-degree dense-neighborhood case. Decoding
// validates monotonicity, bounds, and exact payload consumption, so a
// corrupt or truncated store fails loudly instead of miscounting.
package graph

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Format identifies the on-disk adjacency encoding of a store.
type Format string

const (
	// FormatPlain is the original layout: little-endian uint32 entries in
	// <base>.adj, 4 bytes per adjacency entry.
	FormatPlain Format = "plain"
	// FormatCompressed is the delta-varint/bitmap segment layout in
	// <base>.cadj + <base>.cidx described above.
	FormatCompressed Format = "compressed"
)

// OrPlain resolves the zero value: an empty format (pre-compression
// metadata, unset options) means a plain store.
func (f Format) OrPlain() Format {
	if f == FormatCompressed {
		return FormatCompressed
	}
	return FormatPlain
}

// ParseFormat validates a store format name from a flag or metadata field.
// The empty string means FormatPlain (pre-compression stores carry no
// format field).
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case "", FormatPlain:
		return FormatPlain, nil
	case FormatCompressed:
		return FormatCompressed, nil
	}
	return "", fmt.Errorf("graph: unknown store format %q (want plain or compressed)", s)
}

// SegmentEntries is the maximum entry count of one compressed segment. 256
// keeps decode scratch L1-resident and makes the per-segment headers cost
// well under 0.05 bytes/entry on full segments.
const SegmentEntries = 256

// Segment payload kinds.
const (
	// SegVarint marks a delta-varint payload.
	SegVarint byte = 0
	// SegBitmap marks a dense bitmap payload.
	SegBitmap byte = 1

	segKindVarint = SegVarint
	segKindBitmap = SegBitmap
)

// File magics; a plain-store or garbage file fails immediately instead of
// being decoded as segments.
var (
	cadjMagic = [4]byte{'P', 'C', 'A', '1'}
	cidxMagic = [4]byte{'P', 'C', 'I', '1'}
)

// cadjHeaderLen is the byte offset of the data area inside .cadj.
const cadjHeaderLen = len(cadjMagic)

// CAdjPath returns the path of the compressed adjacency file for the store
// rooted at base.
func CAdjPath(base string) string { return base + ".cadj" }

// CIdxPath returns the path of the compressed per-vertex index file for the
// store rooted at base.
func CIdxPath(base string) string { return base + ".cidx" }

// ListEncoder appends compressed list encodings; it owns the scratch buffer
// the varint/bitmap size comparison needs, so encoding a full store
// allocates nothing per vertex.
type ListEncoder struct {
	scratch []byte
}

// Append appends the compressed encoding of one sorted, strictly increasing
// adjacency list to dst and returns the extended slice. An empty list
// appends nothing (its index entry is length zero).
func (e *ListEncoder) Append(dst []byte, list []Vertex) []byte {
	prev := Vertex(0)
	for off := 0; off < len(list); off += SegmentEntries {
		end := off + SegmentEntries
		if end > len(list) {
			end = len(list)
		}
		seg := list[off:end]
		first, last := seg[0], seg[len(seg)-1]

		// Candidate payloads: gap−1 varints vs a dense bitmap over
		// [first, last]. Take the bitmap whenever it is strictly smaller —
		// the deterministic density threshold.
		e.scratch = e.scratch[:0]
		for i := 1; i < len(seg); i++ {
			e.scratch = binary.AppendUvarint(e.scratch, uint64(seg[i]-seg[i-1]-1))
		}
		varLen := len(e.scratch)
		bmLen := int(last-first)/8 + 1
		kind := byte(segKindVarint)
		dataLen := varLen
		if len(seg) > 1 && bmLen < varLen {
			kind = segKindBitmap
			dataLen = bmLen
		}

		firstField := uint64(first)
		if off > 0 {
			firstField = uint64(first - prev - 1)
		}
		dst = append(dst, kind)
		dst = binary.AppendUvarint(dst, firstField)
		dst = binary.AppendUvarint(dst, uint64(last-first))
		dst = binary.AppendUvarint(dst, uint64(dataLen))
		if kind == segKindVarint {
			dst = append(dst, e.scratch...)
		} else {
			base := len(dst)
			dst = append(dst, make([]byte, bmLen)...)
			bm := dst[base:]
			for _, v := range seg {
				bit := v - first
				bm[bit/8] |= 1 << (bit % 8)
			}
		}
		prev = last
	}
	return dst
}

// CompressedList is a view of one vertex's encoded adjacency list: the raw
// segment bytes plus the degree that determines the positional segment
// split. It is the unit the compressed scan sources hand to runners and the
// operand the block-skipping kernel intersects without full decompression.
type CompressedList struct {
	Degree int
	Data   []byte
}

// Segment is one parsed segment header plus its undecoded payload.
type Segment struct {
	Kind  byte
	Count int
	// First and Last bound the segment's values; the header-driven skip
	// test compares them against a query range without touching Payload.
	First, Last Vertex
	Payload     []byte
}

// Contains reports whether a bitmap segment holds v. Only valid for
// Kind == bitmap segments whose payload length was already validated; the
// O(1) probe is the "list-probe-into-bitmap" path of the dense blocks.
//
//pdtl:hotpath
func (s Segment) Contains(v Vertex) bool {
	bit := v - s.First
	return s.Payload[bit/8]&(1<<(bit%8)) != 0
}

// SegIter walks a CompressedList's segments, parsing headers (cheap) and
// exposing payloads undecoded. Corrupt input surfaces as Err, never as a
// panic — the fuzz target holds this to arbitrary bytes.
type SegIter struct {
	data      []byte
	remaining int
	prevLast  Vertex
	start     bool
	err       error
}

// Segments returns an iterator over cl's segments.
func (cl CompressedList) Segments() SegIter {
	return SegIter{data: cl.Data, remaining: cl.Degree, start: true}
}

// Err reports the first parse error the iterator hit.
func (it *SegIter) Err() error { return it.err }

// uvarint32 reads one uvarint that must fit in 32 bits.
func uvarint32(data []byte) (uint32, int, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, errHeaderVarint
	}
	if x > math.MaxUint32 {
		return 0, 0, errHeader32
	}
	return uint32(x), n, nil
}

// Next parses the next segment. ok is false at the end of the list or on a
// parse error (check Err).
//
//pdtl:hotpath
func (it *SegIter) Next() (Segment, bool) {
	if it.err != nil || it.remaining <= 0 {
		return Segment{}, false
	}
	d := it.data
	if len(d) == 0 {
		it.err = errTruncatedList
		return Segment{}, false
	}
	kind := d[0]
	if kind != segKindVarint && kind != segKindBitmap {
		it.err = errSegmentKind
		return Segment{}, false
	}
	d = d[1:]
	firstField, n, err := uvarint32(d)
	if err != nil {
		it.err = err
		return Segment{}, false
	}
	d = d[n:]
	span, n, err := uvarint32(d)
	if err != nil {
		it.err = err
		return Segment{}, false
	}
	d = d[n:]
	dataLen, n64 := binary.Uvarint(d)
	if n64 <= 0 {
		it.err = errHeaderVarint
		return Segment{}, false
	}
	d = d[n64:]
	if dataLen > uint64(len(d)) {
		it.err = errPayloadLen
		return Segment{}, false
	}

	count := it.remaining
	if count > SegmentEntries {
		count = SegmentEntries
	}
	first := uint64(firstField)
	if !it.start {
		first = uint64(it.prevLast) + 1 + uint64(firstField)
	}
	last := first + uint64(span)
	if last > math.MaxUint32 {
		it.err = errRange32
		return Segment{}, false
	}
	if count == 1 && span != 0 {
		it.err = errSpanCount
		return Segment{}, false
	}
	if uint64(span)+1 < uint64(count) {
		it.err = errSpanCount
		return Segment{}, false
	}
	if kind == segKindBitmap {
		if want := uint64(span)/8 + 1; dataLen != want {
			it.err = errBitmapPayloadLen
			return Segment{}, false
		}
	}
	seg := Segment{
		Kind:    kind,
		Count:   count,
		First:   Vertex(first),
		Last:    Vertex(last),
		Payload: d[:dataLen],
	}
	it.data = d[dataLen:]
	it.remaining -= count
	it.prevLast = seg.Last
	it.start = false
	if it.remaining == 0 && len(it.data) != 0 {
		it.err = errTrailingData
		return Segment{}, false
	}
	return seg, true
}

// DecodeSegment appends the segment's values to dst, validating count,
// monotonicity, and exact payload consumption.
//
//pdtl:hotpath
func DecodeSegment(s Segment, dst []Vertex) ([]Vertex, error) {
	switch s.Kind {
	case segKindVarint:
		v := uint64(s.First)
		dst = append(dst, s.First)
		p := s.Payload
		for i := 1; i < s.Count; i++ {
			gap, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, errPayloadVarint
			}
			p = p[n:]
			v += gap + 1
			if v > uint64(s.Last) {
				return dst, errValueRange
			}
			dst = append(dst, Vertex(v))
		}
		if len(p) != 0 {
			return dst, errTrailingBytes
		}
		if v != uint64(s.Last) {
			return dst, errEndMismatch
		}
	case segKindBitmap:
		found := 0
		for i, b := range s.Payload {
			for b != 0 {
				bit := bits.TrailingZeros8(b)
				b &^= 1 << bit
				v := uint64(s.First) + uint64(i*8+bit)
				if v > uint64(s.Last) {
					return dst, errBitmapRange
				}
				dst = append(dst, Vertex(v))
				found++
			}
		}
		if found != s.Count || found == 0 {
			// found == 0 (only possible on a corrupt hand-built segment —
			// the iterator never yields Count < 1) must error here: the
			// bounds check below would index dst[-1].
			return dst, errBitmapCount
		}
		if dst[len(dst)-1] != s.Last || dst[len(dst)-found] != s.First {
			return dst, errBitmapBounds
		}
	default:
		return dst, errSegmentKind
	}
	return dst, nil
}

// Decode appends the full decoded list to dst (grow-from-empty; callers
// reuse a capacity-Degree buffer) and returns it.
func (cl CompressedList) Decode(dst []Vertex) ([]Vertex, error) {
	it := cl.Segments()
	for {
		seg, ok := it.Next()
		if !ok {
			return dst, it.Err()
		}
		var err error
		if dst, err = DecodeSegment(seg, dst); err != nil {
			return dst, err
		}
	}
}

// Bounds parses only the segment headers and returns the list's first and
// last values — the whole-list quick-reject test, O(segments) with no
// payload decode. A zero-degree list returns ok=false.
func (cl CompressedList) Bounds() (first, last Vertex, ok bool, err error) {
	it := cl.Segments()
	seg, more := it.Next()
	if !more {
		return 0, 0, false, it.Err()
	}
	first = seg.First
	last = seg.Last
	for {
		next, more := it.Next()
		if !more {
			return first, last, true, it.Err()
		}
		last = next.Last
	}
}

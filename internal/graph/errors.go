// Sentinel errors for the compressed-segment decode paths. These used to
// be fmt.Errorf calls carrying the offending values; the decode and
// segment-iteration functions are //pdtl:hotpath (called per segment on
// every scan), and a fmt.Errorf in a hot function allocates its format
// arguments even on the never-taken error branch. Static sentinels keep
// the paths allocation-free, keep the scalar and unrolled decoders
// byte-identical in their error behavior (FuzzDecodeSegmentFast compares
// messages), and make corrupt-store failures matchable with errors.Is.
package graph

import "errors"

var (
	// errPayloadVarint: a segment payload varint is truncated or overlong.
	errPayloadVarint = errors.New("graph: truncated or overlong varint in segment payload")
	// errValueRange: a decoded value exceeds the header's declared last.
	errValueRange = errors.New("graph: segment value exceeds declared last")
	// errTrailingBytes: payload bytes remain after the declared count.
	errTrailingBytes = errors.New("graph: undecoded bytes left in segment payload")
	// errEndMismatch: the final decoded value is not the declared last.
	errEndMismatch = errors.New("graph: segment does not end at declared last")
	// errBitmapRange: a bitmap bit lies beyond the declared last.
	errBitmapRange = errors.New("graph: bitmap bit beyond declared last")
	// errBitmapCount: a bitmap's population disagrees with the header count.
	errBitmapCount = errors.New("graph: bitmap entry count disagrees with header")
	// errBitmapBounds: a bitmap's first/last set bits disagree with the header.
	errBitmapBounds = errors.New("graph: bitmap segment bounds disagree with header")
	// errSegmentKind: unknown segment kind byte.
	errSegmentKind = errors.New("graph: bad segment kind (want 0 or 1)")
	// errTruncatedList: the list ended with entries still missing.
	errTruncatedList = errors.New("graph: truncated compressed list")
	// errHeaderVarint: a segment header varint is truncated or overlong.
	errHeaderVarint = errors.New("graph: truncated or overlong varint in segment header")
	// errHeader32: a segment header value does not fit in 32 bits.
	errHeader32 = errors.New("graph: segment header value exceeds 32 bits")
	// errPayloadLen: declared payload length exceeds the remaining bytes.
	errPayloadLen = errors.New("graph: segment payload length exceeds remaining bytes")
	// errRange32: a segment's value range exceeds 32-bit vertex ids.
	errRange32 = errors.New("graph: segment range exceeds 32-bit vertex ids")
	// errSpanCount: a segment's span is inconsistent with its entry count.
	errSpanCount = errors.New("graph: segment span inconsistent with entry count")
	// errBitmapPayloadLen: a bitmap payload length disagrees with its span.
	errBitmapPayloadLen = errors.New("graph: bitmap segment payload length disagrees with span")
	// errTrailingData: bytes remain after the final segment.
	errTrailingData = errors.New("graph: trailing bytes after final segment")
)

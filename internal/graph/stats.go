package graph

import "math"

// DegreeStats summarizes the degree distribution of a graph, matching the
// columns of the paper's Table I (AvDeg, STD, MaxDeg).
type DegreeStats struct {
	NumVertices int
	NumEdges    uint64
	AvgDegree   float64
	StdDegree   float64
	MaxDegree   uint32
}

// Stats computes degree statistics for g. For oriented graphs the statistics
// describe out-degrees.
func Stats(g *CSR) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{NumVertices: n, NumEdges: g.NumEdges()}
	if n == 0 {
		return st
	}
	var sum, sumSq float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(Vertex(v)))
		sum += d
		sumSq += d * d
		if uint32(d) > st.MaxDegree {
			st.MaxDegree = uint32(d)
		}
	}
	st.AvgDegree = sum / float64(n)
	variance := sumSq/float64(n) - st.AvgDegree*st.AvgDegree
	if variance > 0 {
		st.StdDegree = math.Sqrt(variance)
	}
	return st
}

// MinDegreeSum computes Σ_{(u,v)∈E} min{d(u), d(v)} over the undirected
// edges of g, the arboricity-related quantity of Theorem III.4(3). The
// number of triangles satisfies T ≤ MinDegreeSum/3.
func MinDegreeSum(g *CSR) uint64 {
	var sum uint64
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		du := uint64(g.Degree(Vertex(u)))
		for _, v := range g.Neighbors(Vertex(u)) {
			if Vertex(u) < v { // count each undirected edge once
				dv := uint64(g.Degree(v))
				if du < dv {
					sum += du
				} else {
					sum += dv
				}
			}
		}
	}
	return sum
}

// OrderingSum computes Σ_v d_G(v)·d_G*(v), the quantity bounded by O(α|E|)
// in Theorem IV.1, given the undirected graph and its orientation's
// out-degree array.
func OrderingSum(g *CSR, outDeg []uint32) uint64 {
	var sum uint64
	for v := 0; v < g.NumVertices(); v++ {
		sum += uint64(g.Degree(Vertex(v))) * uint64(outDeg[v])
	}
	return sum
}

package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// triangleK4 is the complete graph on 4 vertices.
func triangleK4(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := triangleK4(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	if g.AdjEntries() != 12 {
		t.Fatalf("AdjEntries = %d, want 12", g.AdjEntries())
	}
	for v := Vertex(0); v < 4; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("Degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
	want := []Vertex{1, 2, 3}
	if !reflect.DeepEqual(g.Neighbors(0), want) {
		t.Errorf("Neighbors(0) = %v, want %v", g.Neighbors(0), want)
	}
}

func TestFromEdgesDropsLoopsAndDupes(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dupes and loop removed)", g.NumEdges())
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop survived")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) must be stored bidirectionally")
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("expected negative vertex count error")
	}
}

func TestHasEdge(t *testing.T) {
	g := triangleK4(t)
	for u := Vertex(0); u < 4; u++ {
		for v := Vertex(0); v < 4; v++ {
			want := u != v
			if got := g.HasEdge(u, v); got != want {
				t.Errorf("HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	g, err := FromEdges(4, in)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Edges()
	sort.Slice(got, func(i, j int) bool {
		if got[i].U != got[j].U {
			return got[i].U < got[j].U
		}
		return got[i].V < got[j].V
	})
	want := []Edge{{0, 1}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Errorf("empty graph stats wrong: %d %d %d", g.NumVertices(), g.NumEdges(), g.MaxDegree())
	}
	st := Stats(g)
	if st.AvgDegree != 0 || st.StdDegree != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestFromSortedAdjacency(t *testing.T) {
	deg := []uint32{2, 1, 1}
	adj := []Vertex{1, 2, 0, 0}
	g, err := FromSortedAdjacency(deg, adj, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, err := FromSortedAdjacency(deg, adj[:3], false); err == nil {
		t.Error("expected mismatch error")
	}
}

func TestStatsK4(t *testing.T) {
	st := Stats(triangleK4(t))
	if st.AvgDegree != 3 || st.StdDegree != 0 || st.MaxDegree != 3 {
		t.Errorf("K4 stats = %+v", st)
	}
}

func TestMinDegreeSumTriangleBound(t *testing.T) {
	// K4 has 4 triangles; MinDegreeSum = 6 edges * 3 = 18; T=4 <= 18/3 = 6.
	g := triangleK4(t)
	if got := MinDegreeSum(g); got != 18 {
		t.Errorf("MinDegreeSum = %d, want 18", got)
	}
}

// randomEdges returns a deterministic pseudo-random edge list.
func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Vertex(rng.Intn(n)), Vertex(rng.Intn(n))}
	}
	return edges
}

// Property: FromEdges output always has sorted neighbor lists, symmetric
// adjacency, no loops, no duplicates.
func TestFromEdgesInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g, err := FromEdges(n, randomEdges(rng, n, rng.Intn(200)))
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			list := g.Neighbors(Vertex(v))
			for i, w := range list {
				if w == Vertex(v) {
					return false // loop
				}
				if i > 0 && list[i-1] >= w {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(w, Vertex(v)) {
					return false // asymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: vertex degree sum equals twice the edge count.
func TestHandshakeLemma(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g, err := FromEdges(n, randomEdges(rng, n, rng.Intn(300)))
		if err != nil {
			return false
		}
		var degSum uint64
		for v := 0; v < n; v++ {
			degSum += uint64(g.Degree(Vertex(v)))
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEdgeCanon(t *testing.T) {
	if (Edge{5, 2}).Canon() != (Edge{2, 5}) {
		t.Error("Canon should order endpoints")
	}
	if (Edge{2, 5}).Canon() != (Edge{2, 5}) {
		t.Error("Canon should keep ordered endpoints")
	}
}

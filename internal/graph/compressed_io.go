package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"pdtl/internal/ioacct"
)

// CompressedWriter streams a compressed store out vertex by vertex: Add is
// called exactly once per vertex in id order (with an empty list for
// zero-degree vertices), then Finish writes the .cidx index. This is the
// build-path primitive — extsort's final merge and the orientation spill
// concatenation both emit through it without ever holding the store in
// memory.
type CompressedWriter struct {
	base string
	f    *os.File
	bw   *bufio.Writer
	enc  ListEncoder
	buf  []byte
	lens []uint32
	err  error
}

// NewCompressedWriter creates <base>.cadj (with its magic) for a store of n
// vertices; writes are charged to c (nil skips accounting).
func NewCompressedWriter(base string, n int, c *ioacct.Counter) (*CompressedWriter, error) {
	f, err := os.Create(CAdjPath(base))
	if err != nil {
		return nil, err
	}
	var w io.Writer = f
	if c != nil {
		w = ioacct.NewWriter(f, c)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(cadjMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &CompressedWriter{base: base, f: f, bw: bw, lens: make([]uint32, 0, n)}, nil
}

// Add appends the next vertex's sorted adjacency list.
func (w *CompressedWriter) Add(list []Vertex) error {
	if w.err != nil {
		return w.err
	}
	w.buf = w.enc.Append(w.buf[:0], list)
	if len(w.buf) > math.MaxUint32 {
		w.err = fmt.Errorf("graph: compressed list of %d entries encodes to %d bytes", len(list), len(w.buf))
		return w.err
	}
	w.lens = append(w.lens, uint32(len(w.buf)))
	if _, err := w.bw.Write(w.buf); err != nil {
		w.err = err
	}
	return w.err
}

// AddEncoded appends the next vertex's already-encoded list bytes verbatim —
// the concatenation path of parallel builds that encode spans independently.
func (w *CompressedWriter) AddEncoded(data []byte) error {
	if w.err != nil {
		return w.err
	}
	w.lens = append(w.lens, uint32(len(data)))
	if _, err := w.bw.Write(data); err != nil {
		w.err = err
	}
	return w.err
}

// Finish flushes the .cadj file and writes the .cidx index.
func (w *CompressedWriter) Finish() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return writeCIdx(w.base, w.lens)
}

// ConcatCompressed concatenates already-encoded span files (each holding the
// per-vertex encodings of a contiguous vertex range, in order) into
// <base>.cadj — prefixed with the format magic — and writes the .cidx index
// from lens, the per-vertex encoded byte lengths. This is the parallel-build
// path: workers encode disjoint vertex spans independently, then the spans
// are stitched here. The concatenated size is checked against lens.
func ConcatCompressed(base string, parts []string, lens []uint32, c *ioacct.Counter) error {
	f, err := os.Create(CAdjPath(base))
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	if c != nil {
		w = ioacct.NewWriter(f, c)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(cadjMagic[:]); err != nil {
		return err
	}
	var copied int64
	for _, p := range parts {
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		var r io.Reader = in
		if c != nil {
			r = ioacct.NewReader(in, c)
		}
		n, err := io.Copy(bw, r)
		in.Close()
		if err != nil {
			return err
		}
		copied += n
	}
	var want int64
	for _, l := range lens {
		want += int64(l)
	}
	if copied != want {
		return fmt.Errorf("graph: concatenated %d encoded bytes, index says %d", copied, want)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return writeCIdx(base, lens)
}

// writeCIdx writes the per-vertex byte-length index file.
func writeCIdx(base string, lens []uint32) error {
	f, err := os.Create(CIdxPath(base))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	bw.Write(cidxMagic[:])
	var scratch [binary.MaxVarintLen64]byte
	bw.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(lens)))])
	for _, l := range lens {
		if _, err := bw.Write(scratch[:binary.PutUvarint(scratch[:], uint64(l))]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readCIdx loads <base>.cidx and returns the per-vertex byte offsets into
// the .cadj data area: ByteOffs[v] is where v's encoding starts, and
// ByteOffs[n] is the data area's total size.
func readCIdx(base string, n int) ([]uint64, error) {
	blob, err := os.ReadFile(CIdxPath(base))
	if err != nil {
		return nil, err
	}
	path := CIdxPath(base)
	if len(blob) < len(cidxMagic) || [4]byte(blob[:4]) != cidxMagic {
		return nil, fmt.Errorf("graph: %s: bad magic (not a compressed index)", path)
	}
	blob = blob[len(cidxMagic):]
	count, sz := binary.Uvarint(blob)
	if sz <= 0 {
		return nil, fmt.Errorf("graph: %s: truncated vertex count", path)
	}
	if count != uint64(n) {
		return nil, fmt.Errorf("graph: %s: index covers %d vertices, store has %d", path, count, n)
	}
	blob = blob[sz:]
	offs := make([]uint64, n+1)
	var run uint64
	for v := 0; v < n; v++ {
		offs[v] = run
		l, sz := binary.Uvarint(blob)
		if sz <= 0 {
			return nil, fmt.Errorf("graph: %s: truncated length for vertex %d", path, v)
		}
		if l > math.MaxUint32 {
			return nil, fmt.Errorf("graph: %s: vertex %d list length %d exceeds 32 bits", path, v, l)
		}
		blob = blob[sz:]
		run += l
	}
	offs[n] = run
	if len(blob) != 0 {
		return nil, fmt.Errorf("graph: %s: %d trailing bytes", path, len(blob))
	}
	return offs, nil
}

// WriteCSRFormat writes g to a store rooted at base in the given format;
// WriteCSR is the FormatPlain special case.
func WriteCSRFormat(base, name string, g *CSR, format Format) error {
	if format != FormatCompressed {
		return WriteCSR(base, name, g)
	}
	n := g.NumVertices()
	meta := Meta{
		Name:        name,
		NumVertices: int64(n),
		NumEdges:    g.NumEdges(),
		AdjEntries:  g.AdjEntries(),
		Oriented:    g.Oriented,
		MaxDegree:   g.MaxDegree(),
		Format:      FormatCompressed,
	}
	if g.Oriented {
		meta.MaxOutDegree = g.MaxDegree()
	}
	if err := WriteMeta(base, meta); err != nil {
		return err
	}
	if err := writeUint32File(DegPath(base), func(emit func(uint32)) {
		for v := 0; v < n; v++ {
			emit(uint32(g.Offsets[v+1] - g.Offsets[v]))
		}
	}); err != nil {
		return err
	}
	w, err := NewCompressedWriter(base, n, nil)
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if err := w.Add(g.Adj[g.Offsets[v]:g.Offsets[v+1]]); err != nil {
			w.Finish()
			return err
		}
	}
	return w.Finish()
}

// ConvertStore re-encodes the store rooted at src into format at dst. The
// adjacency content is preserved exactly (the stores are logically
// identical, so triangle listings over them are byte-identical); only the
// physical encoding changes. The degree file, metadata, and — when present —
// the persisted in-degree file of oriented stores are carried over.
func ConvertStore(src, dst string, format Format) error {
	d, err := Open(src)
	if err != nil {
		return err
	}
	if d.Format() == format {
		return fmt.Errorf("graph: %s is already a %s store", src, format)
	}
	n := d.NumVertices()
	meta := d.Meta
	meta.Format = ""
	if format == FormatCompressed {
		meta.Format = FormatCompressed
	}
	if err := WriteMeta(dst, meta); err != nil {
		return err
	}
	if err := writeUint32File(DegPath(dst), func(emit func(uint32)) {
		for _, dg := range d.Degrees {
			emit(dg)
		}
	}); err != nil {
		return err
	}
	// The .indeg sidecar (load-balancer weights of oriented stores) is
	// format-independent; carry it along when the source has one.
	if in, err := os.ReadFile(src + ".indeg"); err == nil {
		if err := os.WriteFile(dst+".indeg", in, 0o644); err != nil {
			return err
		}
	}
	sc, err := d.NewScanner(nil, 1<<20)
	if err != nil {
		return err
	}
	defer sc.Close()
	if format == FormatCompressed {
		w, err := NewCompressedWriter(dst, n, nil)
		if err != nil {
			return err
		}
		for {
			_, list, ok := sc.Next()
			if !ok {
				break
			}
			if err := w.Add(list); err != nil {
				w.Finish()
				return err
			}
		}
		if err := sc.Err(); err != nil {
			w.Finish()
			return err
		}
		return w.Finish()
	}
	return writeUint32File(AdjPath(dst), func(emit func(uint32)) {
		for {
			_, list, ok := sc.Next()
			if !ok {
				return
			}
			for _, v := range list {
				emit(uint32(v))
			}
		}
	})
}

// DecodeEntryRange appends entries [lo, hi) of cl to dst. Segments entirely
// outside the range are skipped on their headers alone; surviving segments
// decode into scratch (capacity ≥ SegmentEntries). This is the compressed
// random-access primitive behind window loads and large-vertex re-reads.
func DecodeEntryRange(cl CompressedList, lo, hi int, scratch, dst []Vertex) ([]Vertex, error) {
	if lo >= hi {
		return dst, nil
	}
	if hi > cl.Degree {
		return dst, fmt.Errorf("graph: entry range [%d,%d) beyond degree %d", lo, hi, cl.Degree)
	}
	it := cl.Segments()
	segStart := 0
	for segStart < hi {
		seg, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				return dst, err
			}
			return dst, fmt.Errorf("graph: compressed list ended at entry %d, want %d", segStart, hi)
		}
		segEnd := segStart + seg.Count
		if segEnd <= lo {
			segStart = segEnd
			continue
		}
		var err error
		scratch = scratch[:0]
		if scratch, err = DecodeSegment(seg, scratch); err != nil {
			return dst, err
		}
		a, b := 0, seg.Count
		if lo > segStart {
			a = lo - segStart
		}
		if hi < segEnd {
			b = hi - segStart
		}
		dst = append(dst, scratch[a:b]...)
		segStart = segEnd
	}
	return dst, nil
}

// SeqScanner is one sequential adjacency pass with graph.Scanner's
// segmentation semantics; both store formats produce the identical
// per-vertex segment stream through it.
type SeqScanner interface {
	// SetMaxList caps the slice length Next returns; must be called before
	// the first Next.
	SetMaxList(maxList int)
	// Next returns the next vertex and its list (or list segment).
	Next() (u Vertex, list []Vertex, ok bool)
	// Err reports the first error encountered by Next.
	Err() error
	// Close releases the scan.
	Close() error
}

// CompressedSeqScan decodes the .cadj byte stream of a compressed store into
// the per-vertex segment stream of SeqScanner, and additionally exposes the
// undecoded per-vertex lists through NextCompressed — the delivery path of
// the block-skipping kernels.
//
// The byte stream arrives through exactly one of two channels: a fill
// callback (reads the next len(p) stream bytes — a buffered file read, or a
// shared-broadcast ring consumer), or a mem slice holding the whole data
// area (zero-copy). Having one decoder behind every scan source is what
// keeps the segment streams bitwise identical across sources.
//
// Next and NextCompressed are mutually exclusive on one scan: each consumes
// the stream per vertex, but they keep separate vertex cursors.
type CompressedSeqScan struct {
	disk   *Disk
	fill   func([]byte) error
	mem    []byte // whole data area; nil in fill mode
	closer func() error

	cur SegCursor
	// Decoded-entry queue for Next: listBuf[qlo:qhi) holds decoded,
	// not-yet-served entries of the current vertex; vit iterates its
	// remaining segments on demand, so at most maxList+SegmentEntries
	// entries are ever decoded at once.
	listBuf  []Vertex
	qlo, qhi int
	vit      SegIter
	rawBuf   []byte
	scratch  []Vertex

	loadedU Vertex // vertex whose raw bytes are in rawBuf/vit
	loaded  bool

	cv  Vertex // NextCompressed's vertex cursor
	err error
}

// maxEncodedList returns the largest per-vertex encoding in the store.
func (d *Disk) maxEncodedList() int {
	var m uint64
	for v := 0; v < len(d.Degrees); v++ {
		if l := d.ByteOffs[v+1] - d.ByteOffs[v]; l > m {
			m = l
		}
	}
	return int(m)
}

// newCompressedSeqScan builds a scan in fill mode (mem == nil) or mem mode.
// start is the first vertex of the pass; the stream must be positioned at
// its encoding.
func newCompressedSeqScan(d *Disk, start Vertex, fill func([]byte) error, mem []byte, closer func() error) *CompressedSeqScan {
	sc := &CompressedSeqScan{
		disk:    d,
		fill:    fill,
		mem:     mem,
		closer:  closer,
		cur:     NewSegCursor(d, start, 0),
		cv:      start,
		scratch: make([]Vertex, 0, SegmentEntries),
	}
	if mem == nil {
		sc.rawBuf = make([]byte, d.maxEncodedList())
	}
	sc.listBuf = make([]Vertex, int(maxU32(d.Degrees))+SegmentEntries)
	return sc
}

// SetMaxList caps the slice length Next returns. Must be called before the
// first Next.
func (sc *CompressedSeqScan) SetMaxList(maxList int) {
	if maxList > 0 {
		sc.cur.maxList = maxList
		if need := maxList + SegmentEntries; need < len(sc.listBuf) {
			sc.listBuf = sc.listBuf[:need]
		}
	}
}

// listBytes reads vertex u's raw encoding from the stream (fill mode copies
// into rawBuf; mem mode slices in place).
func (sc *CompressedSeqScan) listBytes(u Vertex) ([]byte, error) {
	lo, hi := sc.disk.ByteOffs[u], sc.disk.ByteOffs[u+1]
	if sc.mem != nil {
		if hi > uint64(len(sc.mem)) {
			return nil, fmt.Errorf("graph: vertex %d encoding [%d,%d) beyond %d in-memory bytes", u, lo, hi, len(sc.mem))
		}
		return sc.mem[lo:hi], nil
	}
	raw := sc.rawBuf[:hi-lo]
	if err := sc.fill(raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Next implements SeqScanner.
func (sc *CompressedSeqScan) Next() (Vertex, []Vertex, bool) {
	if sc.err != nil {
		return 0, nil, false
	}
	u, n, ok := sc.cur.Step()
	if !ok {
		return 0, nil, false
	}
	if n == 0 {
		return u, sc.listBuf[:0], true
	}
	if !sc.loaded || sc.loadedU != u { // first segment of a new vertex
		raw, err := sc.listBytes(u)
		if err != nil {
			sc.err = fmt.Errorf("graph: compressed scan vertex %d: %w", u, err)
			return 0, nil, false
		}
		sc.vit = CompressedList{Degree: int(sc.disk.Degrees[u]), Data: raw}.Segments()
		sc.qlo, sc.qhi = 0, 0
		sc.loadedU, sc.loaded = u, true
	}
	// Decode segments until the queue can serve n entries, compacting the
	// queue to the buffer's front first so the append cannot overflow.
	for sc.qhi-sc.qlo < n {
		if sc.qlo > 0 {
			copy(sc.listBuf, sc.listBuf[sc.qlo:sc.qhi])
			sc.qhi -= sc.qlo
			sc.qlo = 0
		}
		seg, ok := sc.vit.Next()
		if !ok {
			err := sc.vit.Err()
			if err == nil {
				err = fmt.Errorf("short list: %d of %d entries", sc.qhi-sc.qlo, n)
			}
			sc.err = fmt.Errorf("graph: compressed scan vertex %d: %w", u, err)
			return 0, nil, false
		}
		out, err := DecodeSegment(seg, sc.listBuf[:sc.qhi])
		if err != nil {
			sc.err = fmt.Errorf("graph: compressed scan vertex %d: %w", u, err)
			return 0, nil, false
		}
		sc.qhi = len(out)
	}
	list := sc.listBuf[sc.qlo : sc.qlo+n]
	sc.qlo += n
	return u, list, true
}

// NextCompressed returns the next vertex's whole list in encoded form. The
// returned CompressedList's Data is valid until the following call (mem mode
// aliases the preloaded array and stays valid). Zero-degree vertices yield a
// zero-Degree list. ok is false at the end of the pass or on error — check
// Err.
func (sc *CompressedSeqScan) NextCompressed() (Vertex, CompressedList, bool) {
	if sc.err != nil {
		return 0, CompressedList{}, false
	}
	if int(sc.cv) >= sc.disk.NumVertices() {
		return 0, CompressedList{}, false
	}
	u := sc.cv
	sc.cv++
	deg := int(sc.disk.Degrees[u])
	if deg == 0 {
		return u, CompressedList{}, true
	}
	raw, err := sc.listBytes(u)
	if err != nil {
		sc.err = fmt.Errorf("graph: compressed scan vertex %d: %w", u, err)
		return 0, CompressedList{}, false
	}
	return u, CompressedList{Degree: deg, Data: raw}, true
}

// Err implements SeqScanner.
func (sc *CompressedSeqScan) Err() error { return sc.err }

// Close implements SeqScanner.
func (sc *CompressedSeqScan) Close() error {
	if sc.closer != nil {
		return sc.closer()
	}
	return nil
}

// NewCompressedScan adapts an externally supplied byte stream (fill reads
// the next len(p) data-area bytes, positioned at vertex 0) into a
// CompressedSeqScan — the shared broadcaster's ring consumer plugs in here.
// closer runs on Close (nil for none). d must be a compressed store.
func (d *Disk) NewCompressedScan(fill func([]byte) error, closer func() error) (*CompressedSeqScan, error) {
	if d.Format() != FormatCompressed {
		return nil, fmt.Errorf("graph: %s is not a compressed store", d.Base)
	}
	return newCompressedSeqScan(d, 0, fill, nil, closer), nil
}

// NewCompressedMemScan adapts the preloaded data area (exactly the .cadj
// bytes after the magic) into a CompressedSeqScan with zero-copy
// NextCompressed views. d must be a compressed store.
func (d *Disk) NewCompressedMemScan(data []byte) (*CompressedSeqScan, error) {
	if d.Format() != FormatCompressed {
		return nil, fmt.Errorf("graph: %s is not a compressed store", d.Base)
	}
	if uint64(len(data)) != d.ByteOffs[d.NumVertices()] {
		return nil, fmt.Errorf("graph: preloaded data area is %d bytes, index says %d", len(data), d.ByteOffs[d.NumVertices()])
	}
	return newCompressedSeqScan(d, 0, nil, data, nil), nil
}

// RandomReader reads arbitrary adjacency-entry ranges — the window loads and
// large-vertex re-reads. Both store formats provide one; entries arrive
// decoded, so callers are format-agnostic.
type RandomReader interface {
	// ReadEntries fills dst with entries [pos, pos+len(dst)).
	ReadEntries(dst []Vertex, pos uint64) error
	Close() error
}

// OpenRandom opens a RandomReader over the store, charging I/O to c (nil
// allocates a private counter).
func (d *Disk) OpenRandom(c *ioacct.Counter) (RandomReader, error) {
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	if d.Format() == FormatCompressed {
		f, err := os.Open(CAdjPath(d.Base))
		if err != nil {
			return nil, err
		}
		return &compressedRandom{d: d, f: f, r: ioacct.NewReaderAt(f, c), scratch: make([]Vertex, 0, SegmentEntries)}, nil
	}
	f, err := d.OpenAdj()
	if err != nil {
		return nil, err
	}
	return &plainRandom{f: f, r: ioacct.NewReaderAt(f, c)}, nil
}

// plainRandom reads entry ranges from the .adj file through an accounting
// ReaderAt.
type plainRandom struct {
	f       *os.File
	r       *ioacct.ReaderAt
	byteBuf []byte
}

func (ra *plainRandom) ReadEntries(dst []Vertex, pos uint64) error {
	need := len(dst) * EntrySize
	if cap(ra.byteBuf) < need {
		ra.byteBuf = make([]byte, need)
	}
	raw := ra.byteBuf[:need]
	if _, err := ra.r.ReadAt(raw, int64(pos)*EntrySize); err != nil {
		return fmt.Errorf("graph: read entries [%d,%d): %w", pos, pos+uint64(len(dst)), err)
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(raw[i*EntrySize:])
	}
	return nil
}

func (ra *plainRandom) Close() error { return ra.f.Close() }

// compressedRandom reads entry ranges from a compressed store: one
// contiguous byte read covering the vertices that overlap the range, then a
// per-vertex decode that skips non-overlapping segments on their headers.
type compressedRandom struct {
	d       *Disk
	f       *os.File
	r       *ioacct.ReaderAt
	byteBuf []byte
	scratch []Vertex
}

func (ra *compressedRandom) ReadEntries(dst []Vertex, pos uint64) error {
	if len(dst) == 0 {
		return nil
	}
	d := ra.d
	end := pos + uint64(len(dst))
	if end > d.Meta.AdjEntries {
		return fmt.Errorf("graph: read entries [%d,%d) beyond %d entries", pos, end, d.Meta.AdjEntries)
	}
	v0 := d.VertexAt(pos)
	v1 := d.VertexAt(end - 1)
	bLo, bHi := d.ByteOffs[v0], d.ByteOffs[v1+1]
	need := int(bHi - bLo)
	if cap(ra.byteBuf) < need {
		ra.byteBuf = make([]byte, need)
	}
	raw := ra.byteBuf[:need]
	if _, err := ra.r.ReadAt(raw, int64(cadjHeaderLen)+int64(bLo)); err != nil {
		return fmt.Errorf("graph: read compressed entries [%d,%d): %w", pos, end, err)
	}
	return decodeEntryWindow(d, raw, bLo, v0, v1, pos, end, ra.scratch, dst)
}

// decodeEntryWindow decodes entries [pos, end) into dst from raw, the
// .cadj data-area bytes [rawStart, rawStart+len(raw)) covering vertices
// [v0, v1].
func decodeEntryWindow(d *Disk, raw []byte, rawStart uint64, v0, v1 Vertex, pos, end uint64, scratch, dst []Vertex) error {
	out := dst[:0]
	for v := v0; v <= v1; v++ {
		cl := CompressedList{
			Degree: int(d.Degrees[v]),
			Data:   raw[d.ByteOffs[v]-rawStart : d.ByteOffs[v+1]-rawStart],
		}
		lo, hi := d.Offsets[v], d.Offsets[v+1]
		if lo < pos {
			lo = pos
		}
		if hi > end {
			hi = end
		}
		var err error
		out, err = DecodeEntryRange(cl, int(lo-d.Offsets[v]), int(hi-d.Offsets[v]), scratch[:0:SegmentEntries], out)
		if err != nil {
			return fmt.Errorf("graph: decode entries of vertex %d: %w", v, err)
		}
	}
	if len(out) != len(dst) {
		return fmt.Errorf("graph: decoded %d entries for range [%d,%d), want %d", len(out), pos, end, len(dst))
	}
	return nil
}

// DecodeEntries decodes entries [pos, pos+len(dst)) of a compressed store
// out of data, the whole preloaded .cadj data area — the in-memory
// random-access path. scratch needs capacity ≥ SegmentEntries.
func (d *Disk) DecodeEntries(data []byte, dst []Vertex, pos uint64, scratch []Vertex) error {
	if len(dst) == 0 {
		return nil
	}
	end := pos + uint64(len(dst))
	if end > d.Meta.AdjEntries {
		return fmt.Errorf("graph: read entries [%d,%d) beyond %d entries", pos, end, d.Meta.AdjEntries)
	}
	return decodeEntryWindow(d, data, 0, d.VertexAt(pos), d.VertexAt(end-1), pos, end, scratch, dst)
}

func (ra *compressedRandom) Close() error { return ra.f.Close() }

// StoreAdjBytes reports the physical size of the store's adjacency files —
// .adj, or .cadj + .cidx — the numerator of the bytes-per-edge compression
// metric.
func StoreAdjBytes(base string) (int64, error) {
	meta, err := ReadMeta(base)
	if err != nil {
		return 0, err
	}
	paths := []string{AdjPath(base)}
	if meta.Format == FormatCompressed {
		paths = []string{CAdjPath(base), CIdxPath(base)}
	}
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

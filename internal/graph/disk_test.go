package graph

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pdtl/internal/ioacct"
)

func writeTempGraph(t *testing.T, g *CSR, name string) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), name)
	if err := WriteCSR(base, name, g); err != nil {
		t.Fatalf("WriteCSR: %v", err)
	}
	return base
}

func TestDiskRoundTrip(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	base := writeTempGraph(t, g, "tiny")

	d, err := Open(base)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if d.Meta.Name != "tiny" || d.Meta.NumVertices != 5 || d.Meta.NumEdges != 5 {
		t.Errorf("meta = %+v", d.Meta)
	}
	if d.Meta.Oriented {
		t.Error("undirected graph marked oriented")
	}
	got, err := d.LoadCSR()
	if err != nil {
		t.Fatalf("LoadCSR: %v", err)
	}
	if !reflect.DeepEqual(got.Adj, g.Adj) || !reflect.DeepEqual(got.Offsets, g.Offsets) {
		t.Error("round-tripped CSR differs")
	}
}

func TestScannerMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := FromEdges(30, randomEdges(rng, 30, 120))
	if err != nil {
		t.Fatal(err)
	}
	base := writeTempGraph(t, g, "scan")
	d, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	c := ioacct.NewCounter(0)
	sc, err := d.NewScanner(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	seen := 0
	for {
		u, list, ok := sc.Next()
		if !ok {
			break
		}
		want := g.Neighbors(u)
		if len(list) != len(want) {
			t.Fatalf("vertex %d: got %d neighbors, want %d", u, len(list), len(want))
		}
		for i := range list {
			if list[i] != want[i] {
				t.Fatalf("vertex %d: neighbor %d = %d, want %d", u, i, list[i], want[i])
			}
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != 30 {
		t.Errorf("scanned %d vertices, want 30", seen)
	}
	if got := c.Snapshot().BytesRead; got != int64(g.AdjEntries())*EntrySize {
		t.Errorf("scan read %d bytes, want %d", got, int64(g.AdjEntries())*EntrySize)
	}
}

func TestScannerSegmentation(t *testing.T) {
	// A star vertex with 25 neighbors, cap 8: the scanner must yield the
	// big list as consecutive sorted segments under the same vertex and
	// keep small lists whole.
	edges := make([]Edge, 0, 26)
	for v := Vertex(1); v <= 25; v++ {
		edges = append(edges, Edge{0, v})
	}
	edges = append(edges, Edge{1, 2})
	g, err := FromEdges(26, edges)
	if err != nil {
		t.Fatal(err)
	}
	base := writeTempGraph(t, g, "star")
	d, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := d.NewScanner(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sc.SetMaxList(8)

	got := map[Vertex][]Vertex{}
	for {
		u, seg, ok := sc.Next()
		if !ok {
			break
		}
		if len(seg) > 8 {
			t.Fatalf("segment of %d exceeds cap 8", len(seg))
		}
		got[u] = append(got[u], seg...)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 26; v++ {
		want := g.Neighbors(Vertex(v))
		if len(got[Vertex(v)]) != len(want) {
			t.Fatalf("vertex %d: reassembled %d entries, want %d", v, len(got[Vertex(v)]), len(want))
		}
		for i := range want {
			if got[Vertex(v)][i] != want[i] {
				t.Fatalf("vertex %d entry %d: %d != %d", v, i, got[Vertex(v)][i], want[i])
			}
		}
	}
}

func TestVertexAt(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	base := writeTempGraph(t, g, "vat")
	d, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees: 0->2, 1->2, 2->3, 3->1. Entry layout: [0,0][1,1][2,2,2][3].
	wants := []Vertex{0, 0, 1, 1, 2, 2, 2, 3}
	for pos, want := range wants {
		if got := d.VertexAt(uint64(pos)); got != want {
			t.Errorf("VertexAt(%d) = %d, want %d", pos, got, want)
		}
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing store")
	}
}

func TestMetaMismatchDetected(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	base := writeTempGraph(t, g, "bad")
	meta, err := ReadMeta(base)
	if err != nil {
		t.Fatal(err)
	}
	meta.AdjEntries = 999
	if err := WriteMeta(base, meta); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base); err == nil {
		t.Fatal("expected consistency error")
	}
}

func TestEdgeListTextRoundTrip(t *testing.T) {
	text := "# comment\n0 1\n1 2\n\n% another\n2 0\n"
	edges, n, err := ReadEdgeListText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 3 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteEdgeListText(&sb, g); err != nil {
		t.Fatal(err)
	}
	edges2, n2, err := ReadEdgeListText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 3 || len(edges2) != 3 {
		t.Fatalf("round trip n=%d edges=%d", n2, len(edges2))
	}
}

func TestEdgeListTextErrors(t *testing.T) {
	if _, _, err := ReadEdgeListText(strings.NewReader("1\n")); err == nil {
		t.Error("want error for short line")
	}
	if _, _, err := ReadEdgeListText(strings.NewReader("a b\n")); err == nil {
		t.Error("want error for non-numeric")
	}
	edges, n, err := ReadEdgeListText(strings.NewReader(""))
	if err != nil || n != 0 || len(edges) != 0 {
		t.Errorf("empty input: edges=%v n=%d err=%v", edges, n, err)
	}
}

package graph

import (
	"fmt"
	"sort"
)

// FromEdges builds a simple undirected CSR graph on n vertices from an
// arbitrary edge list: self-loops are dropped, duplicate and reverse
// duplicates are merged, and every surviving edge is stored in both endpoint
// lists, each list sorted by neighbor id (the paper's "undirected
// (bi-directional) and simple" input assumption, Section III-A).
//
// The input slice is not modified.
func FromEdges(n int, edges []Edge) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	canon := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue // self-loop
		}
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
		canon = append(canon, e.Canon())
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].U != canon[j].U {
			return canon[i].U < canon[j].U
		}
		return canon[i].V < canon[j].V
	})
	canon = dedupe(canon)
	return fromCanonicalEdges(n, canon), nil
}

// fromCanonicalEdges builds the bidirectional CSR from a deduplicated,
// sorted, loop-free canonical (u<v) edge list.
func fromCanonicalEdges(n int, canon []Edge) *CSR {
	deg := make([]uint32, n)
	for _, e := range canon {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]uint64, n+1)
	var run uint64
	for v := 0; v < n; v++ {
		offsets[v] = run
		run += uint64(deg[v])
	}
	offsets[n] = run

	adj := make([]Vertex, run)
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for _, e := range canon {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &CSR{Offsets: offsets, Adj: adj}
	// Lists built from a (u,v)-sorted edge list have sorted out-parts but
	// the merged in/out lists need a per-list sort. Each list is small, and
	// most are nearly sorted already.
	for v := 0; v < n; v++ {
		list := adj[offsets[v]:offsets[v+1]]
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i] < list[j] }) {
			sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		}
	}
	return g
}

func dedupe(sorted []Edge) []Edge {
	if len(sorted) == 0 {
		return sorted
	}
	out := sorted[:1]
	for _, e := range sorted[1:] {
		if last := out[len(out)-1]; e != last {
			out = append(out, e)
		}
	}
	return out
}

// FromSortedAdjacency builds a CSR directly from a degree array and a
// concatenated adjacency array that are already in on-disk form. It
// validates consistency but does not copy the slices.
func FromSortedAdjacency(degrees []uint32, adj []Vertex, oriented bool) (*CSR, error) {
	n := len(degrees)
	offsets := make([]uint64, n+1)
	var run uint64
	for v, d := range degrees {
		offsets[v] = run
		run += uint64(d)
	}
	offsets[n] = run
	if run != uint64(len(adj)) {
		return nil, fmt.Errorf("graph: degree sum %d != adjacency entries %d", run, len(adj))
	}
	return &CSR{Offsets: offsets, Adj: adj, Oriented: oriented}, nil
}

package graph

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pdtl/internal/ioacct"
)

// EntrySize is the on-disk size in bytes of one adjacency or degree entry.
const EntrySize = 4

// Meta describes an on-disk graph. It is stored as JSON in <base>.meta so
// tools and humans can inspect datasets without decoding the binary files.
type Meta struct {
	// Name is a human-readable dataset label (e.g. "twitter-sim").
	Name string `json:"name"`
	// NumVertices is |V|.
	NumVertices int64 `json:"num_vertices"`
	// NumEdges is the undirected edge count m.
	NumEdges uint64 `json:"num_edges"`
	// AdjEntries is the entry count of the .adj file: 2m for undirected
	// graphs, m for oriented ones.
	AdjEntries uint64 `json:"adj_entries"`
	// Oriented reports whether the store holds an orientation G* rather
	// than the bidirectional G.
	Oriented bool `json:"oriented"`
	// MaxDegree is the maximum degree of G (before orientation).
	MaxDegree uint32 `json:"max_degree"`
	// MaxOutDegree is d*max, the maximum out-degree after orientation; it
	// bounds MGT's nm/nmp scratch arrays. Zero for unoriented stores.
	MaxOutDegree uint32 `json:"max_out_degree,omitempty"`
	// Format is the adjacency encoding: empty or "plain" for the uint32
	// .adj layout, "compressed" for the delta-varint/bitmap segment layout
	// in .cadj/.cidx (see compressed.go). Open auto-detects from this
	// field.
	Format Format `json:"format,omitempty"`
}

// Paths for the three files of the store.
func metaPath(base string) string { return base + ".meta" }

// DegPath returns the path of the degree file for the store rooted at base.
func DegPath(base string) string { return base + ".deg" }

// AdjPath returns the path of the adjacency file for the store rooted at
// base.
func AdjPath(base string) string { return base + ".adj" }

// MetaPath returns the path of the metadata file for the store rooted at
// base.
func MetaPath(base string) string { return metaPath(base) }

// WriteCSR writes g to the three files rooted at base, with name recorded in
// the metadata.
func WriteCSR(base, name string, g *CSR) error {
	n := g.NumVertices()
	meta := Meta{
		Name:        name,
		NumVertices: int64(n),
		NumEdges:    g.NumEdges(),
		AdjEntries:  g.AdjEntries(),
		Oriented:    g.Oriented,
		MaxDegree:   g.MaxDegree(),
	}
	if g.Oriented {
		meta.MaxOutDegree = g.MaxDegree()
	}
	if err := WriteMeta(base, meta); err != nil {
		return err
	}
	if err := writeUint32File(DegPath(base), func(emit func(uint32)) {
		for v := 0; v < n; v++ {
			emit(uint32(g.Offsets[v+1] - g.Offsets[v]))
		}
	}); err != nil {
		return err
	}
	return writeUint32File(AdjPath(base), func(emit func(uint32)) {
		for _, w := range g.Adj {
			emit(w)
		}
	})
}

// WriteMeta writes only the metadata file.
func WriteMeta(base string, meta Meta) error {
	blob, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("graph: marshal meta: %w", err)
	}
	return os.WriteFile(metaPath(base), append(blob, '\n'), 0o644)
}

// ReadMeta reads the metadata file of the store rooted at base.
func ReadMeta(base string) (Meta, error) {
	blob, err := os.ReadFile(metaPath(base))
	if err != nil {
		return Meta{}, fmt.Errorf("graph: read meta: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return Meta{}, fmt.Errorf("graph: parse meta %s: %w", metaPath(base), err)
	}
	return meta, nil
}

func writeUint32File(path string, fill func(emit func(uint32))) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var scratch [EntrySize]byte
	var werr error
	fill(func(x uint32) {
		if werr != nil {
			return
		}
		binary.LittleEndian.PutUint32(scratch[:], x)
		_, werr = bw.Write(scratch[:])
	})
	if werr != nil {
		f.Close()
		return werr
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Disk is an opened on-disk graph: its metadata, its degree array (which the
// paper assumes fits in memory for orientation and which every MGT runner
// needs for walking the adjacency file), and the derived per-vertex offsets
// into the adjacency file.
type Disk struct {
	Meta Meta
	Base string
	// Degrees[v] is the (out-)degree of v.
	Degrees []uint32
	// Offsets[v] is the entry index of v's list in the .adj file;
	// Offsets[NumVertices] == AdjEntries.
	Offsets []uint64
	// ByteOffs[v] is the byte offset of v's encoding in the .cadj data
	// area, with ByteOffs[NumVertices] the data area's size; nil for plain
	// stores.
	ByteOffs []uint64
}

// Format reports the store's adjacency encoding (empty metadata means
// plain).
func (d *Disk) Format() Format {
	if d.Meta.Format == FormatCompressed {
		return FormatCompressed
	}
	return FormatPlain
}

// Open loads the metadata and degree file of the store rooted at base.
// The adjacency file is opened on demand by the scanners.
func Open(base string) (*Disk, error) {
	meta, err := ReadMeta(base)
	if err != nil {
		return nil, err
	}
	degrees, err := readUint32File(DegPath(base), int(meta.NumVertices))
	if err != nil {
		return nil, err
	}
	n := len(degrees)
	offsets := make([]uint64, n+1)
	var run uint64
	for v, d := range degrees {
		offsets[v] = run
		run += uint64(d)
	}
	offsets[n] = run
	if run != meta.AdjEntries {
		return nil, fmt.Errorf("graph: %s: degree sum %d != meta adj_entries %d", base, run, meta.AdjEntries)
	}
	d := &Disk{Meta: meta, Base: base, Degrees: degrees, Offsets: offsets}
	switch meta.Format {
	case "", FormatPlain:
	case FormatCompressed:
		byteOffs, err := readCIdx(base, n)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(CAdjPath(base))
		if err != nil {
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		var magic [4]byte
		_, err = io.ReadFull(f, magic[:])
		f.Close()
		if err != nil || magic != cadjMagic {
			return nil, fmt.Errorf("graph: %s: bad magic (not a compressed adjacency file)", CAdjPath(base))
		}
		if want := int64(cadjHeaderLen) + int64(byteOffs[n]); fi.Size() != want {
			return nil, fmt.Errorf("graph: %s: compressed adjacency file is %d bytes, index says %d", base, fi.Size(), want)
		}
		d.ByteOffs = byteOffs
	default:
		return nil, fmt.Errorf("graph: %s: unknown store format %q", base, meta.Format)
	}
	return d, nil
}

func readUint32File(path string, count int) ([]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([]uint32, count)
	buf := make([]byte, count*EntrySize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("graph: read %s: %w", path, err)
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[i*EntrySize:])
	}
	return out, nil
}

// OpenAdj opens the adjacency file for reading.
func (d *Disk) OpenAdj() (*os.File, error) {
	return os.Open(AdjPath(d.Base))
}

// OpenAdjData opens the adjacency data for sequential reading, positioned
// at the first vertex's data regardless of format: the .adj file, or the
// .cadj file seeked past its magic. The following AdjBytes bytes are the
// whole data area — the unit the shared broadcaster streams.
func (d *Disk) OpenAdjData() (*os.File, error) {
	if d.Format() != FormatCompressed {
		return d.OpenAdj()
	}
	f, err := os.Open(CAdjPath(d.Base))
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(int64(cadjHeaderLen), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// NumVertices reports |V|.
func (d *Disk) NumVertices() int { return len(d.Degrees) }

// AdjBytes reports the physical size of the adjacency data area in bytes:
// AdjEntries·4 for plain stores, the total encoded size for compressed
// ones. It is the per-pass sequential read volume of a scan.
func (d *Disk) AdjBytes() int64 {
	if d.Format() == FormatCompressed {
		return int64(d.ByteOffs[d.NumVertices()])
	}
	return int64(d.Meta.AdjEntries) * EntrySize
}

// VertexAt returns the vertex whose adjacency list contains global entry
// index pos, by binary search over the offsets.
func (d *Disk) VertexAt(pos uint64) Vertex {
	lo, hi := 0, d.NumVertices()
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Offsets[mid+1] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Vertex(lo)
}

// LoadCSR reads the whole graph into memory, decoding compressed stores.
// Intended for small graphs, tests, and the in-memory baselines.
func (d *Disk) LoadCSR() (*CSR, error) {
	if d.Format() == FormatCompressed {
		sc, err := d.NewScanner(nil, 1<<20)
		if err != nil {
			return nil, err
		}
		defer sc.Close()
		adj := make([]Vertex, 0, d.Meta.AdjEntries)
		for {
			_, list, ok := sc.Next()
			if !ok {
				break
			}
			adj = append(adj, list...)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if uint64(len(adj)) != d.Meta.AdjEntries {
			return nil, fmt.Errorf("graph: decoded %d entries, meta says %d", len(adj), d.Meta.AdjEntries)
		}
		return &CSR{Offsets: d.Offsets, Adj: adj, Oriented: d.Meta.Oriented}, nil
	}
	adjFile, err := d.OpenAdj()
	if err != nil {
		return nil, err
	}
	defer adjFile.Close()
	adj := make([]Vertex, d.Meta.AdjEntries)
	buf := bufio.NewReaderSize(adjFile, 1<<20)
	var scratch [EntrySize]byte
	for i := range adj {
		if _, err := io.ReadFull(buf, scratch[:]); err != nil {
			return nil, fmt.Errorf("graph: read adj: %w", err)
		}
		adj[i] = binary.LittleEndian.Uint32(scratch[:])
	}
	return &CSR{Offsets: d.Offsets, Adj: adj, Oriented: d.Meta.Oriented}, nil
}

// SegCursor is the vertex/segment iteration order of a sequential
// adjacency pass: vertices in id order, zero-degree vertices yielding one
// empty segment, and lists longer than the cap split into consecutive
// sorted segments under the same vertex — how the small-degree assumption
// of the paper's Section IV-A is removed (its footnote 1).
//
// Every sequential reader of the adjacency data — Scanner here, and every
// scan source in internal/scan — drives its decoding off this one type, so
// the "bitwise identical segment streams across sources" contract has a
// single implementation.
type SegCursor struct {
	disk    *Disk
	maxList int // segment cap; 0 = whole lists
	next    Vertex
	remain  int // entries of the current vertex still unread
}

// NewSegCursor returns a cursor over d's vertices starting at start, with
// segments capped at maxList entries (0 = whole lists).
func NewSegCursor(d *Disk, start Vertex, maxList int) SegCursor {
	return SegCursor{disk: d, next: start, maxList: maxList}
}

// Step returns the next segment's vertex and entry count; n is 0 for a
// zero-degree vertex, and ok is false at the end of the pass.
func (c *SegCursor) Step() (u Vertex, n int, ok bool) {
	if c.remain > 0 {
		u = c.next - 1
		n = c.remain
	} else {
		if int(c.next) >= c.disk.NumVertices() {
			return 0, 0, false
		}
		u = c.next
		c.next++
		n = int(c.disk.Degrees[u])
		if n == 0 {
			return u, 0, true
		}
	}
	if c.maxList > 0 && n > c.maxList {
		c.remain = n - c.maxList
		n = c.maxList
	} else {
		c.remain = 0
	}
	return u, n, true
}

// Scanner streams the adjacency file list by list, in vertex order, through
// an accounting reader. It is the sequential "read N(u) from disk" primitive
// of Algorithm 2. Segmentation follows SegCursor.
type Scanner struct {
	disk    *Disk
	file    *os.File
	r       *bufio.Reader
	cur     SegCursor
	listBuf []Vertex
	byteBuf []byte
	err     error
}

// SetMaxList caps the slice length Next returns; longer lists are split
// into consecutive segments. Must be called before the first Next.
func (s *Scanner) SetMaxList(maxList int) {
	if maxList > 0 && maxList < len(s.listBuf) {
		s.cur.maxList = maxList
		s.listBuf = s.listBuf[:maxList]
		s.byteBuf = s.byteBuf[:maxList*EntrySize]
	}
}

// NewScanner opens an adjacency scan charged to counter c (which may be
// shared with other files of the same worker). bufSize is the read buffer in
// bytes; non-positive selects 1 MiB. The concrete scanner matches the store
// format; both yield the identical per-vertex segment stream.
func (d *Disk) NewScanner(c *ioacct.Counter, bufSize int) (SeqScanner, error) {
	return d.NewScannerAt(0, c, bufSize)
}

// NewScannerAt opens an adjacency scan positioned at the start of vertex
// start's list; Next will yield vertices start, start+1, ... in order.
func (d *Disk) NewScannerAt(start Vertex, c *ioacct.Counter, bufSize int) (SeqScanner, error) {
	if int(start) > d.NumVertices() {
		return nil, fmt.Errorf("graph: scanner start vertex %d out of range", start)
	}
	if bufSize <= 0 {
		bufSize = 1 << 20
	}
	if d.Format() == FormatCompressed {
		f, err := os.Open(CAdjPath(d.Base))
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(int64(cadjHeaderLen)+int64(d.ByteOffs[start]), io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		var r io.Reader = f
		if c != nil {
			r = ioacct.NewReader(f, c)
		}
		br := bufio.NewReaderSize(r, bufSize)
		fill := func(p []byte) error {
			_, err := io.ReadFull(br, p)
			return err
		}
		return newCompressedSeqScan(d, start, fill, nil, f.Close), nil
	}
	f, err := d.OpenAdj()
	if err != nil {
		return nil, err
	}
	if start > 0 {
		if _, err := f.Seek(int64(d.Offsets[start])*EntrySize, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
	}
	var r io.Reader = f
	if c != nil {
		r = ioacct.NewReader(f, c)
	}
	return &Scanner{
		disk:    d,
		file:    f,
		r:       bufio.NewReaderSize(r, bufSize),
		cur:     NewSegCursor(d, start, 0),
		listBuf: make([]Vertex, int(maxU32(d.Degrees))),
		byteBuf: make([]byte, int(maxU32(d.Degrees))*EntrySize),
	}, nil
}

func maxU32(xs []uint32) uint32 {
	var m uint32
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Next returns the next vertex and its neighbor list (or list segment in
// segmented mode — the same vertex may be yielded several times, with
// consecutive sorted segments). The returned slice is reused by subsequent
// calls. ok is false when the scan is complete or an error occurred; check
// Err afterwards.
func (s *Scanner) Next() (u Vertex, list []Vertex, ok bool) {
	if s.err != nil {
		return 0, nil, false
	}
	u, d, ok := s.cur.Step()
	if !ok {
		return 0, nil, false
	}
	if d == 0 {
		return u, s.listBuf[:0], true
	}
	raw := s.byteBuf[:d*EntrySize]
	if _, err := io.ReadFull(s.r, raw); err != nil {
		s.err = fmt.Errorf("graph: scan vertex %d: %w", u, err)
		return 0, nil, false
	}
	list = s.listBuf[:d]
	for i := 0; i < d; i++ {
		list[i] = binary.LittleEndian.Uint32(raw[i*EntrySize:])
	}
	return u, list, true
}

// Err reports the first error encountered by Next.
func (s *Scanner) Err() error { return s.err }

// Close releases the underlying file.
func (s *Scanner) Close() error { return s.file.Close() }

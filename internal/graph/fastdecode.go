// Vectorized payload decoding for the compressed segment store: the
// word-at-a-time counterparts of DecodeSegment and the bitmap bit loop.
//
// DecodeSegment (compressed.go) walks the delta-varint payload one
// byte-branch at a time: every gap pays a binary.Uvarint call with its
// per-byte continuation-bit test. On real adjacency lists almost every gap
// is small — vertex ids are dense and lists are sorted — so almost every
// varint is a single byte with its top bit clear. DecodeSegmentFast
// exploits that: it loads eight payload bytes at once, tests all eight
// continuation bits with a single OR, and when the whole word is
// single-byte gaps reconstructs the eight values with a branch-free prefix
// sum under one hoisted bounds check. Multi-byte gaps and segment tails
// fall back to the scalar decoder, so the output — including every
// validation error on corrupt input — is byte-equivalent to DecodeSegment
// (FuzzDecodeSegmentFast holds the two to arbitrary payloads).
//
// SegmentWords is the bitmap counterpart: it exposes a bitmap segment's
// payload as little-endian 64-bit words, so the count-only kernels can
// intersect by masked AND + bits.OnesCount64 instead of per-element probes
// (see internal/scan's word kernels and DESIGN.md §12).

package graph

import "encoding/binary"

// wideWidth is the number of gaps one unrolled decode step consumes: eight
// single-byte varints = one 64-bit word of payload.
const wideWidth = 8

// DecodeSegmentFast appends the segment's values to dst exactly like
// DecodeSegment — same values, same validation, same errors on corrupt
// payloads — decoding runs of single-byte varint gaps eight at a time. The
// returned wideBlocks counts the 8-wide word steps the unrolled path
// executed (the decode's word-op metric; zero when the payload never had
// eight consecutive single-byte gaps). Bitmap segments take the scalar
// path unchanged.
//
//pdtl:hotpath
func DecodeSegmentFast(s Segment, dst []Vertex) (out []Vertex, wideBlocks int, err error) {
	if s.Kind != segKindVarint {
		out, err = DecodeSegment(s, dst)
		return out, 0, err
	}
	v := uint64(s.First)
	dst = append(dst, s.First)
	p := s.Payload
	i := 1
	last := uint64(s.Last)
	for i+wideWidth <= s.Count && len(p) >= wideWidth {
		b := p[:wideWidth:wideWidth] // one hoisted bounds check for the block
		if b[0]|b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] >= 0x80 {
			// A continuation bit somewhere in the word: consume one varint
			// scalar-wise (it may be multi-byte) and retry the window — an
			// isolated large gap does not end the wide run.
			gap, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, wideBlocks, errPayloadVarint
			}
			p = p[n:]
			v += gap + 1
			if v > last {
				return dst, wideBlocks, errValueRange
			}
			dst = append(dst, Vertex(v))
			i++
			continue
		}
		// Eight single-byte gaps: branch-free prefix-sum reconstruction.
		// Each stored byte is gap−1, so each step adds b[k]+1.
		v0 := v + uint64(b[0]) + 1
		v1 := v0 + uint64(b[1]) + 1
		v2 := v1 + uint64(b[2]) + 1
		v3 := v2 + uint64(b[3]) + 1
		v4 := v3 + uint64(b[4]) + 1
		v5 := v4 + uint64(b[5]) + 1
		v6 := v5 + uint64(b[6]) + 1
		v7 := v6 + uint64(b[7]) + 1
		if v7 > last {
			// Some value in this block exceeds the declared last. Nothing
			// was appended yet; the scalar tail below re-decodes the block
			// and fails at exactly the element DecodeSegment would.
			break
		}
		dst = append(dst,
			Vertex(v0), Vertex(v1), Vertex(v2), Vertex(v3),
			Vertex(v4), Vertex(v5), Vertex(v6), Vertex(v7))
		v = v7
		p = p[wideWidth:]
		i += wideWidth
		wideBlocks++
	}
	// Scalar tail: the final < 8 gaps, payloads shorter than a word, and the
	// error re-derivation of an out-of-range wide block. Identical to
	// DecodeSegment's loop, so corrupt input produces the identical error.
	for ; i < s.Count; i++ {
		gap, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, wideBlocks, errPayloadVarint
		}
		p = p[n:]
		v += gap + 1
		if v > last {
			return dst, wideBlocks, errValueRange
		}
		dst = append(dst, Vertex(v))
	}
	if len(p) != 0 {
		return dst, wideBlocks, errTrailingBytes
	}
	if v != last {
		return dst, wideBlocks, errEndMismatch
	}
	return dst, wideBlocks, nil
}

// SegmentWords appends a bitmap segment's payload to dst as little-endian
// 64-bit words: bit j of word k is set iff value First + 64k + j is
// present. The tail word is zero-padded beyond the payload, so masked
// popcounts over the returned words never see garbage bits. Only valid for
// Kind == SegBitmap segments whose payload length the segment iterator
// already validated against the header span.
//
//pdtl:hotpath
func SegmentWords(s Segment, dst []uint64) []uint64 {
	p := s.Payload
	for len(p) >= 8 {
		dst = append(dst, binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	if len(p) > 0 {
		var w uint64
		for i, b := range p {
			w |= uint64(b) << (8 * uint(i))
		}
		dst = append(dst, w)
	}
	return dst
}

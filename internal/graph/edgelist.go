package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeListText parses a whitespace-separated text edge list ("u v" per
// line; lines starting with '#' or '%' are comments), the interchange format
// of the SNAP repository the paper draws its real datasets from. It returns
// the edges and the implied vertex count (max id + 1).
func ReadEdgeListText(r io.Reader) ([]Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: edge list line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{Vertex(u), Vertex(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	n := 0
	if len(edges) > 0 {
		n = int(maxID) + 1
	}
	return edges, n, nil
}

// WriteEdgeListText writes the canonical undirected edge list of g as text,
// one "u v" pair per line.
func WriteEdgeListText(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(Vertex(v)) {
			if g.Oriented || Vertex(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

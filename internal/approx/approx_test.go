package approx

import (
	"testing"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

func TestDoulionAccuracy(t *testing.T) {
	g, err := gen.RMAT(11, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact := baseline.Forward(g)
	// Average several seeds: Doulion is unbiased, so the mean converges.
	var sum float64
	const trials = 8
	for s := int64(0); s < trials; s++ {
		est, kept, err := Doulion(g, 0.5, s)
		if err != nil {
			t.Fatal(err)
		}
		if kept == 0 || kept >= g.NumEdges() {
			t.Errorf("kept %d of %d edges at p=0.5", kept, g.NumEdges())
		}
		sum += est
	}
	mean := sum / trials
	if rel := RelativeError(mean, exact); rel > 0.15 {
		t.Errorf("Doulion mean estimate %.0f vs exact %d: rel err %.3f > 0.15", mean, exact, rel)
	}
}

func TestDoulionP1IsExact(t *testing.T) {
	g, err := gen.Complete(20)
	if err != nil {
		t.Fatal(err)
	}
	est, kept, err := Doulion(g, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kept != g.NumEdges() {
		t.Errorf("p=1 must keep all edges: %d vs %d", kept, g.NumEdges())
	}
	if uint64(est) != gen.CompleteTriangles(20) {
		t.Errorf("p=1 estimate %f != exact %d", est, gen.CompleteTriangles(20))
	}
}

func TestDoulionValidation(t *testing.T) {
	g, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Doulion(g, 0, 1); err == nil {
		t.Error("want error for p=0")
	}
	if _, _, err := Doulion(g, 1.5, 1); err == nil {
		t.Error("want error for p>1")
	}
}

func TestWedgeSampleAccuracy(t *testing.T) {
	g, err := gen.RMAT(11, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact := baseline.Forward(g)
	est, err := WedgeSample(g, 200_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := RelativeError(est, exact); rel > 0.1 {
		t.Errorf("wedge estimate %.0f vs exact %d: rel err %.3f > 0.1", est, exact, rel)
	}
}

func TestWedgeSampleCompleteGraph(t *testing.T) {
	// In K_n every wedge is closed, so any sample gives the exact count.
	g, err := gen.Complete(12)
	if err != nil {
		t.Fatal(err)
	}
	est, err := WedgeSample(g, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(est+0.5) != gen.CompleteTriangles(12) {
		t.Errorf("K12 wedge estimate %f, want %d", est, gen.CompleteTriangles(12))
	}
}

func TestWedgeSampleEdgeCases(t *testing.T) {
	empty, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	est, err := WedgeSample(empty, 50, 1)
	if err != nil || est != 0 {
		t.Errorf("wedge-free graph: est=%f err=%v", est, err)
	}
	if _, err := WedgeSample(empty, 0, 1); err == nil {
		t.Error("want error for 0 samples")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Error("rel error of 110 vs 100 should be 0.1")
	}
	if RelativeError(90, 100) != 0.1 {
		t.Error("rel error should be symmetric")
	}
	if RelativeError(0, 0) != 0 {
		t.Error("0 vs 0 should be 0")
	}
	if RelativeError(5, 0) != 1 {
		t.Error("nonzero vs 0 should be 1")
	}
}

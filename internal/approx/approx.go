// Package approx implements approximate triangle counting — the "altering
// it for ... approximate triangle counting" extension the paper's
// conclusion (Section VI) proposes as future work.
//
// Two standard estimators are provided, both built on the repository's own
// exact machinery so they inherit its external-memory behaviour:
//
//   - Doulion (Tsourakakis et al., KDD'09): keep every edge independently
//     with probability p, count exactly on the sparsified graph, and scale
//     by 1/p³. Unbiased; variance shrinks as the true count grows, so it
//     suits exactly the massive graphs PDTL targets.
//
//   - Wedge sampling (Seshadhri et al., SDM'13): estimate the closure
//     probability of uniformly random wedges (paths of length 2) and scale
//     by the total wedge count over 3. Accuracy is independent of graph
//     size for a fixed sample budget.
package approx

import (
	"fmt"
	"math/rand"
	"sort"

	"pdtl/internal/baseline"
	"pdtl/internal/graph"
)

// Doulion sparsifies g by keeping each undirected edge with probability p
// (deterministically under seed), counts the surviving triangles exactly,
// and returns the unbiased estimate count/p³ together with the sparsified
// edge count.
func Doulion(g *graph.CSR, p float64, seed int64) (estimate float64, keptEdges uint64, err error) {
	if p <= 0 || p > 1 {
		return 0, 0, fmt.Errorf("approx: keep probability %g out of (0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	kept := make([]graph.Edge, 0, int(float64(g.NumEdges())*p)+1)
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if graph.Vertex(u) < v && rng.Float64() < p {
				kept = append(kept, graph.Edge{U: graph.Vertex(u), V: v})
			}
		}
	}
	sparse, err := graph.FromEdges(g.NumVertices(), kept)
	if err != nil {
		return 0, 0, err
	}
	exact := baseline.Forward(sparse)
	return float64(exact) / (p * p * p), sparse.NumEdges(), nil
}

// WedgeSample estimates the triangle count by sampling `samples` uniform
// wedges and measuring their closure rate: T = closed/3 where closed is
// the number of closed wedges, so T̂ = (k̂/samples)·W/3 with W the total
// wedge count Σ d(v)·(d(v)-1)/2.
func WedgeSample(g *graph.CSR, samples int, seed int64) (estimate float64, err error) {
	if samples < 1 {
		return 0, fmt.Errorf("approx: need ≥ 1 sample, got %d", samples)
	}
	n := g.NumVertices()
	// Per-vertex wedge counts and their cumulative sum for proportional
	// sampling of wedge centers.
	cum := make([]float64, n)
	var totalWedges float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(graph.Vertex(v)))
		totalWedges += d * (d - 1) / 2
		cum[v] = totalWedges
	}
	if totalWedges == 0 {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	closed := 0
	for i := 0; i < samples; i++ {
		r := rng.Float64() * totalWedges
		center := graph.Vertex(sort.SearchFloat64s(cum, r))
		list := g.Neighbors(center)
		a := rng.Intn(len(list))
		b := rng.Intn(len(list) - 1)
		if b >= a {
			b++
		}
		if g.HasEdge(list[a], list[b]) {
			closed++
		}
	}
	closureRate := float64(closed) / float64(samples)
	return closureRate * totalWedges / 3, nil
}

// RelativeError is |estimate − exact| / exact (0 when exact is 0 and the
// estimate is too).
func RelativeError(estimate float64, exact uint64) float64 {
	if exact == 0 {
		if estimate == 0 {
			return 0
		}
		return 1
	}
	diff := estimate - float64(exact)
	if diff < 0 {
		diff = -diff
	}
	return diff / float64(exact)
}

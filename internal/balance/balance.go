// Package balance implements PDTL's edge-range assignment (Section IV-B).
//
// Every one of the N·P processors receives a contiguous range of the
// oriented adjacency file — its pivot-edge responsibility. The naive
// assignment gives each processor the same number of edges. The paper's
// load-balancing step instead weighs vertex v by its post-orientation
// in-degree d_G(v) − d_G*(v): that is how many cone vertices u will have v
// in N+(u), i.e. how many sorted-array intersections will use Ev as their
// in-memory operand, so equalizing the in-degree mass equalizes the
// expected intersection work (Figure 9 measures up to 3× improvement).
package balance

import (
	"fmt"
	"time"

	"pdtl/internal/graph"
)

// Strategy selects how edge ranges are assigned to processors.
type Strategy int

const (
	// Naive splits the adjacency file into equal edge counts ("w/o LB" in
	// Figure 9 and Table X).
	Naive Strategy = iota
	// InDegree splits by the paper's in-degree weights ("w/ LB").
	InDegree
	// Cost splits by the exact expected intersection cost — the
	// "different techniques of load balancing" direction of the paper's
	// future work (Section VI). Vertex v's weight is
	// Σ_{u : v ∈ N+(u)} d_G*(u) + indeg(v)·outdeg(v): the merge steps
	// spent walking each cone list plus those walking Ev itself. The
	// extra Σ d_G*(u) term needs one additional scan of the oriented
	// graph (O(scan(|E|)) I/Os, so Theorem IV.3 is unchanged), supplied
	// via SetConeCost.
	Cost
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case InDegree:
		return "indegree"
	case Cost:
		return "cost"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Range is a contiguous range [Lo, Hi) of global edge indices in the
// oriented adjacency file.
type Range struct {
	Lo, Hi uint64
}

// Len is the number of edges in the range.
func (r Range) Len() uint64 { return r.Hi - r.Lo }

// Plan is the result of a split: one range per processor, in order,
// covering [0, AdjEntries) exactly.
type Plan struct {
	Ranges   []Range
	Strategy Strategy
	// Weights is the estimated work per range under the strategy's cost
	// model (diagnostic; used by tests and by Table IV's imbalance
	// analysis).
	Weights []float64
	// Duration is the wall time spent computing the plan (the paper counts
	// load balancing toward calculation time).
	Duration time.Duration
}

// Inputs bundles everything a split may need.
type Inputs struct {
	// Offsets is the oriented store's per-vertex entry offsets (n+1).
	Offsets []uint64
	// OutDeg is d_G*(v) per vertex.
	OutDeg []uint32
	// InDeg is d_G(v) − d_G*(v) per vertex (required by InDegree and
	// Cost).
	InDeg []uint32
	// ConeCost is Σ_{u : v ∈ N+(u)} d_G*(u) per vertex (required by
	// Cost); see ConeCosts.
	ConeCost []uint64
}

// Split assigns the oriented store's edges to k processors. outDeg and
// inDeg are the post-orientation out- and in-degree arrays (from
// orient.Result). k must be ≥ 1. For the Cost strategy use SplitInputs.
func Split(offsets []uint64, outDeg, inDeg []uint32, k int, strategy Strategy) (Plan, error) {
	return SplitInputs(Inputs{Offsets: offsets, OutDeg: outDeg, InDeg: inDeg}, k, strategy)
}

// SplitChunks cuts the plan into workers·perWorker weighted chunks for the
// work-stealing scheduler: the same cost model that would assign one range
// per processor instead produces K chunks per processor, each carrying
// ≈ 1/K of a processor's expected work, so a pool drawing chunks
// dynamically self-corrects whatever the model misjudges. perWorker ≤ 0
// degrades to the static split (one chunk per worker).
func SplitChunks(in Inputs, workers, perWorker int, strategy Strategy) (Plan, error) {
	if perWorker < 1 {
		perWorker = 1
	}
	if workers < 1 {
		return Plan{}, fmt.Errorf("balance: need at least one worker, got %d", workers)
	}
	return SplitInputs(in, workers*perWorker, strategy)
}

// SplitInputs is Split with the full input bundle.
func SplitInputs(in Inputs, k int, strategy Strategy) (Plan, error) {
	start := time.Now()
	if k < 1 {
		return Plan{}, fmt.Errorf("balance: need at least one processor, got %d", k)
	}
	if len(in.Offsets) != len(in.OutDeg)+1 {
		return Plan{}, fmt.Errorf("balance: offsets length %d does not match %d vertices", len(in.Offsets), len(in.OutDeg))
	}
	total := in.Offsets[len(in.Offsets)-1]
	var plan Plan
	plan.Strategy = strategy
	weightFn := func(v int) float64 { return edgeWeight(in.OutDeg, in.InDeg, v) }
	switch strategy {
	case Naive:
		plan.Ranges = naiveRanges(total, k)
	case InDegree:
		if len(in.InDeg) != len(in.OutDeg) {
			return Plan{}, fmt.Errorf("balance: in-degree array length %d != %d vertices", len(in.InDeg), len(in.OutDeg))
		}
		plan.Ranges = weightedRanges(in.Offsets, in.OutDeg, weightFn, k)
	case Cost:
		if len(in.InDeg) != len(in.OutDeg) || len(in.ConeCost) != len(in.OutDeg) {
			return Plan{}, fmt.Errorf("balance: Cost strategy needs in-degree and cone-cost arrays for all %d vertices", len(in.OutDeg))
		}
		weightFn = func(v int) float64 { return costWeight(in, v) }
		plan.Ranges = weightedRanges(in.Offsets, in.OutDeg, weightFn, k)
	default:
		return Plan{}, fmt.Errorf("balance: unknown strategy %d", int(strategy))
	}
	plan.Weights = rangeWeights(plan.Ranges, in.Offsets, in.OutDeg, weightFn)
	plan.Duration = time.Since(start)
	return plan, nil
}

// costWeight is the exact-cost model per out-edge of v: scan work, plus
// the in-degree mass (merge steps over Ev), plus the cone-list mass spread
// across v's out-edges (merge steps over each N*(u)).
func costWeight(in Inputs, v int) float64 {
	if in.OutDeg[v] == 0 {
		return 0
	}
	return 1 + float64(in.InDeg[v]) + float64(in.ConeCost[v])/float64(in.OutDeg[v])
}

func naiveRanges(total uint64, k int) []Range {
	ranges := make([]Range, k)
	var lo uint64
	for i := 0; i < k; i++ {
		hi := total * uint64(i+1) / uint64(k)
		ranges[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return ranges
}

// edgeWeight is the cost model per out-edge of vertex v: one unit of scan
// work plus v's in-degree. The in-degree term is the paper's ("the sum of
// these in-degrees are approximately the same among all processors"): every
// cone vertex u with v ∈ N+(u) — there are indeg(v) of them — runs a merge
// that walks v's in-memory out-edges, so each out-edge of v is touched
// ≈ indeg(v) times per window. A nil in-degree array (naive plans evaluated
// for diagnostics) contributes no mass.
func edgeWeight(outDeg, inDeg []uint32, v int) float64 {
	if outDeg[v] == 0 {
		return 0
	}
	if inDeg == nil {
		return 1
	}
	return 1 + float64(inDeg[v])
}

func weightedRanges(offsets []uint64, outDeg []uint32, weightFn func(v int) float64, k int) []Range {
	n := len(outDeg)
	// Cumulative weight at each vertex boundary.
	cum := make([]float64, n+1)
	for v := 0; v < n; v++ {
		w := weightFn(v) * float64(outDeg[v])
		cum[v+1] = cum[v] + w
	}
	total := cum[n]
	ranges := make([]Range, k)
	var lo uint64
	v := 0
	for i := 0; i < k-1; i++ {
		target := total * float64(i+1) / float64(k)
		// Advance to the vertex whose boundary weight crosses the target.
		for v < n && cum[v+1] < target {
			v++
		}
		var hi uint64
		if v >= n {
			hi = offsets[n]
		} else {
			// Interpolate an edge position inside v's out-list.
			perEdge := weightFn(v)
			var within uint64
			if perEdge > 0 {
				within = uint64((target - cum[v]) / perEdge)
			}
			if within > uint64(outDeg[v]) {
				within = uint64(outDeg[v])
			}
			hi = offsets[v] + within
		}
		if hi < lo {
			hi = lo
		}
		ranges[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	ranges[k-1] = Range{Lo: lo, Hi: offsets[n]}
	return ranges
}

// rangeWeights evaluates a cost model over each range (splitting vertex
// lists proportionally at the boundaries).
func rangeWeights(ranges []Range, offsets []uint64, outDeg []uint32, weightFn func(v int) float64) []float64 {
	n := len(outDeg)
	weights := make([]float64, len(ranges))
	v := 0
	for i, r := range ranges {
		if r.Len() == 0 {
			continue
		}
		// Find the vertex containing r.Lo.
		for v < n && offsets[v+1] <= r.Lo {
			v++
		}
		w := 0.0
		pos := r.Lo
		for u := v; u < n && pos < r.Hi; u++ {
			if offsets[u+1] <= pos {
				continue
			}
			end := offsets[u+1]
			if end > r.Hi {
				end = r.Hi
			}
			w += weightFn(u) * float64(end-pos)
			pos = end
		}
		weights[i] = w
	}
	return weights
}

// ConeCosts computes Σ_{u : v ∈ N+(u)} d_G*(u) for every v by one scan of
// the oriented store — the extra input of the Cost strategy. The scan is
// O(scan(|E|)) I/Os, the same order as orientation itself.
func ConeCosts(d *graph.Disk) ([]uint64, error) {
	sc, err := d.NewScanner(nil, 0)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	costs := make([]uint64, d.NumVertices())
	for {
		_, list, ok := sc.Next()
		if !ok {
			break
		}
		deg := uint64(len(list))
		for _, v := range list {
			costs[v] += deg
		}
	}
	return costs, sc.Err()
}

// ConeCostsCSR is ConeCosts for an in-memory oriented graph (tests).
func ConeCostsCSR(o *graph.CSR) []uint64 {
	costs := make([]uint64, o.NumVertices())
	for u := 0; u < o.NumVertices(); u++ {
		list := o.Neighbors(graph.Vertex(u))
		deg := uint64(len(list))
		for _, v := range list {
			costs[v] += deg
		}
	}
	return costs
}

// Imbalance reports max(weights)/mean(weights), the straggler factor of a
// plan (1.0 is perfect). Used by the Figure 9 / Table IV analysis.
func (p Plan) Imbalance() float64 {
	if len(p.Weights) == 0 {
		return 1
	}
	var sum, maxW float64
	for _, w := range p.Weights {
		sum += w
		if w > maxW {
			maxW = w
		}
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(len(p.Weights))
	return maxW / mean
}

// Validate checks that the plan covers [0, total) with contiguous,
// non-overlapping, ordered ranges.
func (p Plan) Validate(total uint64) error {
	var expect uint64
	for i, r := range p.Ranges {
		if r.Lo != expect {
			return fmt.Errorf("balance: range %d starts at %d, want %d", i, r.Lo, expect)
		}
		if r.Hi < r.Lo {
			return fmt.Errorf("balance: range %d inverted: %+v", i, r)
		}
		expect = r.Hi
	}
	if expect != total {
		return fmt.Errorf("balance: plan covers %d of %d edges", expect, total)
	}
	return nil
}

// Subdivide splits a plan's k ranges among nodes: node i of n receives
// ranges [i·k/n, (i+1)·k/n). It is how the master groups per-processor
// ranges into per-machine configurations C_{i,j} (Figure 1).
func (p Plan) Subdivide(nodes int) [][]Range {
	k := len(p.Ranges)
	out := make([][]Range, nodes)
	for i := 0; i < nodes; i++ {
		lo := k * i / nodes
		hi := k * (i + 1) / nodes
		out[i] = p.Ranges[lo:hi]
	}
	return out
}

// OffsetsFromDisk is a convenience for callers holding a *graph.Disk.
func OffsetsFromDisk(d *graph.Disk) []uint64 { return d.Offsets }

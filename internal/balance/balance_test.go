package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
)

// orientedArrays builds the inputs Split needs from an undirected CSR.
func orientedArrays(t *testing.T, g *graph.CSR) (offsets []uint64, outDeg, inDeg []uint32) {
	t.Helper()
	o := orient.CSR(g)
	outDeg = o.Degrees()
	deg := g.Degrees()
	inDeg = make([]uint32, len(deg))
	for v := range deg {
		inDeg[v] = deg[v] - outDeg[v]
	}
	return o.Offsets, outDeg, inDeg
}

func TestNaiveSplitEqualSizes(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	offsets, outDeg, inDeg := orientedArrays(t, g)
	total := offsets[len(offsets)-1]
	plan, err := Split(offsets, outDeg, inDeg, 4, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(total); err != nil {
		t.Fatal(err)
	}
	for i, r := range plan.Ranges {
		if diff := int64(r.Len()) - int64(total/4); diff < -1 || diff > 1 {
			t.Errorf("range %d has %d edges, want ~%d", i, r.Len(), total/4)
		}
	}
}

func TestInDegreeSplitBalancesSkew(t *testing.T) {
	// A skewed graph: hub-heavy power law. The in-degree plan should have
	// clearly lower imbalance than the naive one under the cost model.
	g, err := gen.PowerLaw(3000, 30000, 2.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	offsets, outDeg, inDeg := orientedArrays(t, g)
	total := offsets[len(offsets)-1]

	naive, err := Split(offsets, outDeg, inDeg, 8, Naive)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Split(offsets, outDeg, inDeg, 8, InDegree)
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.Validate(total); err != nil {
		t.Fatal(err)
	}
	if err := weighted.Validate(total); err != nil {
		t.Fatal(err)
	}
	if weighted.Imbalance() >= naive.Imbalance() {
		t.Errorf("weighted imbalance %.3f not better than naive %.3f",
			weighted.Imbalance(), naive.Imbalance())
	}
	if weighted.Imbalance() > 1.5 {
		t.Errorf("weighted imbalance %.3f too high", weighted.Imbalance())
	}
}

func TestSplitValidation(t *testing.T) {
	offsets := []uint64{0, 2, 4}
	outDeg := []uint32{2, 2}
	inDeg := []uint32{0, 0}
	if _, err := Split(offsets, outDeg, inDeg, 0, Naive); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := Split(offsets[:2], outDeg, inDeg, 1, Naive); err == nil {
		t.Error("want error for mismatched offsets")
	}
	if _, err := Split(offsets, outDeg, inDeg[:1], 1, InDegree); err == nil {
		t.Error("want error for mismatched in-degrees")
	}
	if _, err := Split(offsets, outDeg, inDeg, 1, Strategy(99)); err == nil {
		t.Error("want error for unknown strategy")
	}
}

func TestSplitDegenerateCases(t *testing.T) {
	// k = 1: the single range is everything.
	offsets := []uint64{0, 3, 5}
	outDeg := []uint32{3, 2}
	inDeg := []uint32{1, 2}
	for _, s := range []Strategy{Naive, InDegree} {
		plan, err := Split(offsets, outDeg, inDeg, 1, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Ranges) != 1 || plan.Ranges[0] != (Range{0, 5}) {
			t.Errorf("%v: k=1 plan = %+v", s, plan.Ranges)
		}
	}
	// More processors than edges: some ranges empty, still valid.
	for _, s := range []Strategy{Naive, InDegree} {
		plan, err := Split(offsets, outDeg, inDeg, 16, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(5); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
	// Empty graph.
	plan, err := Split([]uint64{0}, nil, nil, 3, InDegree)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(0); err != nil {
		t.Error(err)
	}
}

func TestSubdivide(t *testing.T) {
	plan := Plan{Ranges: []Range{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}}
	groups := plan.Subdivide(3)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	for i, g := range groups {
		if len(g) != 2 {
			t.Errorf("group %d has %d ranges, want 2", i, len(g))
		}
	}
	// Uneven subdivision covers everything exactly once.
	groups = plan.Subdivide(4)
	seen := 0
	for _, g := range groups {
		seen += len(g)
	}
	if seen != 6 {
		t.Errorf("subdivide(4) covered %d ranges, want 6", seen)
	}
}

func TestStrategyString(t *testing.T) {
	if Naive.String() != "naive" || InDegree.String() != "indegree" || Cost.String() != "cost" {
		t.Error("strategy names wrong")
	}
	if Strategy(7).String() == "" {
		t.Error("unknown strategy should still print")
	}
}

func TestCostStrategy(t *testing.T) {
	g, err := gen.PowerLaw(3000, 30000, 2.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := orient.CSR(g)
	outDeg := o.Degrees()
	deg := g.Degrees()
	inDeg := make([]uint32, len(deg))
	for v := range deg {
		inDeg[v] = deg[v] - outDeg[v]
	}
	cone := ConeCostsCSR(o)
	total := o.Offsets[len(o.Offsets)-1]

	in := Inputs{Offsets: o.Offsets, OutDeg: outDeg, InDeg: inDeg, ConeCost: cone}
	plan, err := SplitInputs(in, 8, Cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(total); err != nil {
		t.Fatal(err)
	}
	if plan.Imbalance() > 1.5 {
		t.Errorf("cost plan imbalance %.3f too high", plan.Imbalance())
	}
	// Missing cone costs must be rejected.
	in.ConeCost = nil
	if _, err := SplitInputs(in, 8, Cost); err == nil {
		t.Error("want error for Cost without cone costs")
	}
}

func TestConeCostsCSR(t *testing.T) {
	// Path 0-1-2 oriented by degree: edges (0,1),(2,1) — both endpoints
	// point at the middle vertex, whose cone cost is d*(0)+d*(2) = 2.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	o := orient.CSR(g)
	costs := ConeCostsCSR(o)
	if costs[1] != 2 || costs[0] != 0 || costs[2] != 0 {
		t.Errorf("cone costs = %v, want [0 2 0]", costs)
	}
}

// Property: both strategies always produce valid contiguous covers, for any
// random graph and processor count.
func TestSplitCoverageProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		g, err := gen.ErdosRenyi(n, rng.Intn(6*n), seed)
		if err != nil {
			return false
		}
		o := orient.CSR(g)
		outDeg := o.Degrees()
		deg := g.Degrees()
		inDeg := make([]uint32, len(deg))
		for v := range deg {
			inDeg[v] = deg[v] - outDeg[v]
		}
		k := 1 + int(kRaw%32)
		total := o.Offsets[len(o.Offsets)-1]
		for _, s := range []Strategy{Naive, InDegree} {
			plan, err := Split(o.Offsets, outDeg, inDeg, k, s)
			if err != nil {
				return false
			}
			if len(plan.Ranges) != k {
				return false
			}
			if plan.Validate(total) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSplitChunks: the chunked split for the stealing scheduler is the
// same weighted cover, K× finer — k·perWorker valid contiguous ranges
// whose boundaries refine the same cost model.
func TestSplitChunks(t *testing.T) {
	g, err := gen.PowerLaw(300, 4000, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	offsets, outDeg, inDeg := orientedArrays(t, g)
	in := Inputs{Offsets: offsets, OutDeg: outDeg, InDeg: inDeg}
	total := offsets[len(offsets)-1]

	plan, err := SplitChunks(in, 4, 8, InDegree)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ranges) != 32 {
		t.Fatalf("got %d chunks, want 32", len(plan.Ranges))
	}
	if err := plan.Validate(total); err != nil {
		t.Fatal(err)
	}
	// Chunk weights equalize like the coarse split does: no chunk should
	// carry more than a few times the mean (weighted interpolation can't
	// split a single vertex's list weight, so allow slack).
	if imb := plan.Imbalance(); imb > 3 {
		t.Errorf("chunk imbalance %.2f too high for a weighted split", imb)
	}

	// perWorker <= 0 degrades to the static split.
	coarse, err := SplitChunks(in, 4, 0, InDegree)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Ranges) != 4 {
		t.Fatalf("perWorker<=0 produced %d ranges, want 4", len(coarse.Ranges))
	}
	if _, err := SplitChunks(in, 0, 8, InDegree); err == nil {
		t.Error("SplitChunks accepted zero workers")
	}
}

// Package mgt implements the modified Massive Graph Triangulation algorithm
// of Section IV-A (Algorithm 2 of the paper).
//
// MGT finds all triangles of an oriented graph G* held on disk by loading
// consecutive out-edges into memory and, for every vertex u of the graph,
// intersecting u's out-list with the in-memory out-lists of u's
// out-neighbors. The paper's modification — kept faithfully here — is that
// all per-vertex structures are *sorted arrays*, never hash sets (their
// set-based implementation was more than 10× slower):
//
//	edg — the in-memory edge chunk: a copy of a contiguous slice of the
//	      adjacency file (the runner's current window of pivot edges);
//	ind — for each vertex v in [vlow, vhigh], the offset and length of the
//	      in-memory portion Ev of v's out-list inside edg;
//	nm  — N(u), the out-list of the current cone candidate u, read from a
//	      sequential scan of the whole adjacency file;
//	nmp — N+(u) = N(u) ∩ V+mem, computed by probing ind.
//
// A runner is additionally restricted to a contiguous *global* edge range
// [Lo, Hi): its pivot responsibility in PDTL (Section IV-B). Every triangle
// is reported exactly once across runners, by the runner (and pass) whose
// window holds the triangle's pivot edge. With the full range this is
// exactly the paper's single-core MGT, the baseline of Figure 11.
//
// The runner does not open the adjacency file itself: all data access —
// window loads, sequential scan passes, large-vertex re-reads — goes
// through a scan.Handle, and the intersection through a scan.Kernel, both
// supplied by Config (see internal/scan and DESIGN.md §5). The engine
// layer decides whether the P runners each scan the file privately, share
// one broadcast scan, or run fully in memory; this package is agnostic.
package mgt

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/obs"
	"pdtl/internal/scan"
)

// Sink consumes listed triangles (u, v, w), each with u ≺ v ≺ w in the
// degree-based order. Implementations are called from a single goroutine
// per runner.
type Sink interface {
	Triangle(u, v, w graph.Vertex)
}

// Config parameterizes a runner.
type Config struct {
	// MemEdges is M, the number of adjacency entries the runner may hold
	// in its edg window at once. It drives the pass count R = ceil(S/M)
	// (Section IV-B2). Must be ≥ 1.
	MemEdges int
	// Range is the runner's pivot-edge responsibility. A zero Range means
	// the whole file.
	Range balance.Range
	// Counter receives the runner's I/O accounting; nil allocates a
	// private one.
	Counter *ioacct.Counter
	// BufBytes is the size of the sequential-scan read buffer;
	// non-positive selects 1 MiB. Only consulted when Source is nil.
	BufBytes int
	// Sink, when non-nil, receives every listed triangle. Counting-only
	// runs leave it nil (the paper measures counting time, "or 0 for
	// triangle counting" in Theorem IV.3).
	Sink Sink
	// Source is the runner's access to the adjacency data. The runner
	// never opens the adjacency file itself: window loads, scan passes,
	// and large-vertex re-reads all go through this handle, so the engine
	// decides the I/O strategy (per-runner buffered scans, one shared
	// broadcast scan, or fully in-memory). Nil selects a private
	// scan.SourceBuffered handle charged to Counter — the paper's
	// configuration, and bitwise-identical to the pre-refactor behavior.
	Source scan.Handle
	// Kernel is the sorted-array intersection used on the hot path. Nil
	// selects scan.Merge (Section IV-A's two-pointer merge). All kernels
	// produce identical triangles in identical order; they differ only in
	// comparison count on skewed operand lengths.
	Kernel scan.Kernel
}

// Stats reports what a runner did — the per-processor raw material of the
// paper's Figures 6–8 and Tables IV and VII.
type Stats struct {
	// Triangles found in the runner's range.
	Triangles uint64
	// Passes is R, the number of memory-window iterations over the graph.
	Passes int
	// EdgesLoaded is the total number of adjacency entries loaded into the
	// window across passes (= the range size).
	EdgesLoaded uint64
	// Intersections is the number of sorted-array intersections performed
	// (|nmp| summed over all scans).
	Intersections uint64
	// CmpOps counts merge steps inside the intersections — a
	// machine-independent proxy for the CPU work of Theorem IV.2's
	// O(|E|²/M + α|E|) term, used by the harness to report scaling
	// independently of the host's core count.
	CmpOps uint64
	// LargeVertices counts cone vertices whose out-list exceeded M and
	// went through the segmented large-vertex path (the removal of the
	// small-degree assumption, footnote 1 of the paper). Each such vertex
	// incurs one extra sequential read of its own list per pass.
	LargeVertices uint64
	// SegmentsSkipped counts compressed segments rejected on their
	// (first, last) headers alone — never decoded — by the block-skipping
	// path (compressed kernel on a compressed store). Zero for every other
	// kernel/store combination; the skip-effectiveness metric of the bench
	// schema.
	SegmentsSkipped uint64
	// WordOps counts 64-bit word operations executed by the vectorized
	// paths: 8-wide blocks consumed by the unrolled varint decoder plus
	// bitmap words materialized, masked-popcounted, or probed by the
	// word-parallel count kernels (see scan.Arena). The vectorization
	// metric of the bench schema; zero on plain stores.
	WordOps uint64
	// FastDecodes counts compressed segments decoded through
	// graph.DecodeSegmentFast instead of the scalar decoder.
	FastDecodes uint64
	// Wall is the runner's wall-clock time.
	Wall time.Duration
	// IO is the runner's I/O activity; Wall − IO.IOTime() is the "CPU
	// time" of the paper's breakdowns.
	IO ioacct.Stats
}

// CPUTime is wall time minus time spent inside I/O calls.
func (s Stats) CPUTime() time.Duration {
	cpu := s.Wall - s.IO.IOTime()
	if cpu < 0 {
		return 0
	}
	return cpu
}

// Add merges two runner stats (Wall becomes the max — the straggler defines
// elapsed time; everything else sums).
func (s Stats) Add(o Stats) Stats {
	s.Triangles += o.Triangles
	s.Passes += o.Passes
	s.EdgesLoaded += o.EdgesLoaded
	s.Intersections += o.Intersections
	s.CmpOps += o.CmpOps
	s.LargeVertices += o.LargeVertices
	s.SegmentsSkipped += o.SegmentsSkipped
	s.WordOps += o.WordOps
	s.FastDecodes += o.FastDecodes
	if o.Wall > s.Wall {
		s.Wall = o.Wall
	}
	s.IO = s.IO.Add(o.IO)
	return s
}

// indEntry locates the in-memory portion Ev of one vertex's out-list.
type indEntry struct {
	off uint32 // offset into edg
	len uint32 // number of in-memory out-edges of the vertex
}

// Run executes modified MGT over the oriented on-disk graph d. The context
// is the runner's cancellation point: it is checked once per memory window,
// so cancellation aborts the run within one window (and, for a shared scan
// source, also unblocks mid-pass ring-buffer waits). A cancelled run returns
// ctx.Err() with the statistics accumulated so far. A nil ctx means
// context.Background().
//
// Run is the one-shot form: it creates a Runner, executes cfg.Range (zero
// means the whole file), and tears the Runner down. Callers executing many
// ranges against the same store — the work-stealing scheduler — should
// create a Runner once and call RunRange per chunk instead, reusing the
// window and index buffers across chunks.
func Run(ctx context.Context, d *graph.Disk, cfg Config) (Stats, error) {
	r, err := NewRunner(d, cfg)
	if err != nil {
		return Stats{}, err
	}
	defer r.Close()
	rng := cfg.Range
	if rng == (balance.Range{}) {
		rng = balance.Range{Lo: 0, Hi: d.Meta.AdjEntries}
	}
	return r.RunRange(ctx, rng, cfg.Sink)
}

// Runner is a reusable modified-MGT executor over one oriented store. It
// owns the window buffer (edg), the window index (ind), and the
// large-vertex structures (value index, stamp array, chunk buffer), all
// sized once and reused by every RunRange call — under the work-stealing
// scheduler a runner executes many chunks back to back, and per-chunk
// reallocation of these M-sized buffers would dominate small chunks. A
// Runner is not safe for concurrent use; a pool gives each worker its own.
type Runner struct {
	disk   *graph.Disk
	cfg    Config
	handle scan.Handle
	kernel scan.Kernel
	// bkernel is kernel's BlockKernel view when it has one and the store
	// is compressed — the precondition of the direct-on-compressed pass,
	// checked once here instead of per intersection.
	bkernel    scan.BlockKernel
	segScratch []graph.Vertex // segment decode scratch of the compressed pass
	// ckernel/cbkernel are kernel's count-only views (nil when the kernel
	// lacks them): the closure-free hot path taken by RunRange when no sink
	// is attached. cbkernel additionally requires a compressed store, like
	// bkernel.
	ckernel  scan.CountKernel
	cbkernel scan.CountBlockKernel
	// arena owns the runner's reusable word/decode buffers and the
	// monotonic WordOps/FastDecodes counters; RunRange snapshots the
	// counters and reports the per-call delta in Stats.
	arena     *scan.Arena
	countOnly bool // current RunRange has no sink and a count kernel
	counter   *ioacct.Counter
	// ownedSrc is the private buffered source Run-style callers get when
	// cfg.Source is nil; Close tears it (and its handle) down.
	ownedSrc scan.Source
	stats    Stats
	sink     Sink

	// Kernel emit plumbing: the pivot pair of the in-flight intersection
	// and the bound emit method, created once so the hot path does not
	// allocate a closure per intersection.
	curU, curV graph.Vertex
	emitFn     func(graph.Vertex)

	// Window state (Algorithm 2's edg/ind plus the window bounds).
	edg   []graph.Vertex
	ind   []indEntry
	vlow  graph.Vertex
	vhigh graph.Vertex
	winLo uint64

	// Large-vertex state (removal of the small-degree assumption): a
	// value-sorted index of the window's edges, an epoch-stamped mark
	// array over the window span, and a chunk buffer for re-reading huge
	// cone lists. All O(M + span).
	idxBuilt bool
	idxVals  []graph.Vertex
	idxSrcs  []graph.Vertex
	stamp    []uint32
	epoch    uint32
	chunkBuf []graph.Vertex
}

// NewRunner validates cfg and builds a reusable runner. cfg.Range and
// cfg.Sink are ignored here — each RunRange call names its own range and
// sink. A nil cfg.Source opens a private buffered source (closed by Close);
// an engine-supplied handle is used as-is and stays the engine's to close.
func NewRunner(d *graph.Disk, cfg Config) (*Runner, error) {
	if !d.Meta.Oriented {
		return nil, fmt.Errorf("mgt: store %q is not oriented", d.Base)
	}
	if cfg.MemEdges < 1 {
		return nil, fmt.Errorf("mgt: memory budget %d edges, need ≥ 1", cfg.MemEdges)
	}
	counter := cfg.Counter
	if counter == nil {
		counter = ioacct.NewCounter(0)
	}
	r := &Runner{
		disk:    d,
		cfg:     cfg,
		counter: counter,
		handle:  cfg.Source,
		kernel:  cfg.Kernel,
		edg:     make([]graph.Vertex, 0, cfg.MemEdges),
	}
	if r.handle == nil {
		src, err := scan.New(scan.SourceBuffered, d, scan.Config{BufBytes: cfg.BufBytes, Counter: counter})
		if err != nil {
			return nil, err
		}
		h, err := src.Handle(counter)
		if err != nil {
			src.Close()
			return nil, err
		}
		r.ownedSrc = src
		r.handle = h
	}
	if r.kernel == nil {
		r.kernel = scan.Merge
	}
	if bk, ok := r.kernel.(scan.BlockKernel); ok && d.Format() == graph.FormatCompressed {
		r.bkernel = bk
		r.segScratch = make([]graph.Vertex, 0, graph.SegmentEntries)
		if cbk, ok := r.kernel.(scan.CountBlockKernel); ok {
			r.cbkernel = cbk
		}
	}
	if ck, ok := r.kernel.(scan.CountKernel); ok {
		r.ckernel = ck
	}
	r.arena = scan.NewArena()
	r.emitFn = r.emit
	return r, nil
}

// Close releases the private source a Runner opened for itself; an
// engine-supplied handle is left open (the engine owns it).
func (r *Runner) Close() error {
	if r.ownedSrc == nil {
		return nil
	}
	err := r.handle.Close()
	if cerr := r.ownedSrc.Close(); err == nil {
		err = cerr
	}
	r.ownedSrc = nil
	return err
}

// RunRange executes modified MGT over one pivot range, reporting triangles
// to sink. A nil sink selects the count-only hot path: intersections go
// through the kernel's CountKernel/CountBlockKernel views (closure-free, no
// triangle materialization, word-parallel bitmap counting on compressed
// stores), which produce the identical triangle count — the crosscheck
// matrix pins count == listing == baseline for every combination. The
// returned Stats cover this call alone — wall time and the I/O delta since
// the call started — so a scheduler can fold them per chunk. An empty range
// is a no-op. The context is checked once per memory window, exactly like
// Run.
func (r *Runner) RunRange(ctx context.Context, rng balance.Range, sink Sink) (Stats, error) {
	//pdtl:nondeterministic-ok wall-clock feeds Stats.Wall only, never listing order
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	total := r.disk.Meta.AdjEntries
	if rng.Hi > total || rng.Lo > rng.Hi {
		return Stats{}, fmt.Errorf("mgt: range [%d,%d) out of bounds for %d entries", rng.Lo, rng.Hi, total)
	}
	r.stats = Stats{}
	r.sink = sink
	r.countOnly = sink == nil && r.ckernel != nil
	ioStart := r.counter.Snapshot()
	wordStart, fastStart := r.arena.WordOps, r.arena.FastDecodes
	// The chunk span (allocation-free: cursor lookup plus slab writes).
	// Its attributes carry this call's stat deltas, so a trace attributes
	// wall time to scan I/O vs. intersection CPU per chunk.
	cur := obs.CursorFrom(ctx)
	span := cur.Begin(obs.SpanChunk)

	finish := func(err error) (Stats, error) {
		r.stats.Wall = time.Since(start) //pdtl:nondeterministic-ok timing stat only
		r.stats.IO = r.counter.Snapshot().Sub(ioStart)
		r.stats.WordOps += r.arena.WordOps - wordStart
		r.stats.FastDecodes += r.arena.FastDecodes - fastStart
		cur.SetAttr(span, "lo", int64(rng.Lo))
		cur.SetAttr(span, "hi", int64(rng.Hi))
		cur.SetAttr(span, "cmp_ops", int64(r.stats.CmpOps))
		cur.SetAttr(span, "io_bytes", r.stats.IO.BytesRead)
		cur.SetAttr(span, "word_ops", int64(r.stats.WordOps))
		cur.SetAttr(span, "passes", int64(r.stats.Passes))
		cur.End(span)
		r.sink = nil
		// A cancelled run reports the bare ctx.Err(), whichever layer the
		// cancellation surfaced through first (window check here, or a scan
		// source's wrapped ring-buffer error).
		if cerr := ctx.Err(); cerr != nil {
			return r.stats, cerr
		}
		return r.stats, err
	}
	for pos := rng.Lo; pos < rng.Hi; {
		// The per-window cancellation point: one check per memory window
		// bounds abort latency at a single window's load + pass.
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		end := pos + uint64(r.cfg.MemEdges)
		if end > rng.Hi {
			end = rng.Hi
		}
		if err := r.loadWindow(pos, end); err != nil {
			return finish(err)
		}
		if err := r.scanPass(); err != nil {
			return finish(err)
		}
		r.stats.Passes++
		pos = end
	}
	return finish(nil)
}

// emit consumes one kernel match: common vertex w closes triangle
// (curU, curV, w).
//
//pdtl:hotpath
func (r *Runner) emit(w graph.Vertex) {
	r.stats.Triangles++
	if r.sink != nil {
		r.sink.Triangle(r.curU, r.curV, w)
	}
}

// loadWindow loads the edge window [pos, end) and builds ind over its
// vertex span.
func (r *Runner) loadWindow(pos, end uint64) error {
	count := int(end - pos)
	r.edg = r.edg[:count]
	if err := r.handle.ReadEntries(r.edg, pos); err != nil {
		return fmt.Errorf("mgt: load window: %w", err)
	}
	r.stats.EdgesLoaded += uint64(count)
	r.winLo = pos

	d := r.disk
	r.vlow = d.VertexAt(pos)
	r.vhigh = d.VertexAt(end - 1)
	span := int(r.vhigh-r.vlow) + 1
	if cap(r.ind) < span {
		r.ind = make([]indEntry, span)
		r.stamp = make([]uint32, span)
		r.epoch = 0
	} else {
		r.ind = r.ind[:span]
		r.stamp = r.stamp[:span]
		for i := range r.ind {
			r.ind[i] = indEntry{}
		}
	}
	for v := r.vlow; v <= r.vhigh; v++ {
		lo := d.Offsets[v]
		hi := d.Offsets[v+1]
		if lo < pos {
			lo = pos
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			r.ind[v-r.vlow] = indEntry{off: uint32(lo - pos), len: uint32(hi - lo)}
		}
	}
	r.idxBuilt = false
	return nil
}

// scanPass streams the whole adjacency file once, reporting every triangle
// whose pivot edge is inside the current window. Cone vertices whose
// out-list exceeds M take the segmented large-vertex path. When the kernel
// can intersect compressed lists and the scan can deliver them, the pass
// runs directly on the compressed form instead.
func (r *Runner) scanPass() error {
	d := r.disk
	sc, err := r.handle.Scan(r.cfg.MemEdges)
	if err != nil {
		return err
	}
	defer sc.Close()
	if r.bkernel != nil {
		if csc, ok := sc.(scan.CompressedScan); ok {
			return r.scanPassCompressed(sc, csc)
		}
	}

	maxNmp := int(d.Meta.MaxOutDegree)
	if maxNmp > r.cfg.MemEdges {
		maxNmp = r.cfg.MemEdges
	}
	nmp := make([]graph.Vertex, 0, maxNmp)
	for {
		u, nm, ok := sc.Next()
		if !ok {
			break
		}
		if int(d.Degrees[u]) > r.cfg.MemEdges {
			if err := r.largeVertex(sc, u, nm); err != nil {
				return err
			}
			continue
		}
		if len(nm) < 2 {
			continue // need at least a pivot source and a closing vertex
		}
		// Quick reject: nm is sorted, so if it cannot contain any vertex
		// of [vlow, vhigh] there is nothing to do.
		if nm[len(nm)-1] < r.vlow || nm[0] > r.vhigh {
			continue
		}
		// nmp := N+(u) — out-neighbors of u with out-edges in memory.
		nmp = nmp[:0]
		for _, v := range nm {
			if v < r.vlow {
				continue
			}
			if v > r.vhigh {
				break
			}
			if r.ind[v-r.vlow].len > 0 {
				nmp = append(nmp, v)
			}
		}
		for _, v := range nmp {
			e := r.ind[v-r.vlow]
			ev := r.edg[e.off : e.off+e.len]
			r.stats.Intersections++
			// Intersect sorted nm with sorted Ev via the configured
			// kernel; every common vertex w closes triangle (u, v, w)
			// with pivot (v, w). Count-only runs take the closure-free
			// Count path — same comparisons, no emit call per match.
			if r.countOnly {
				c, steps := r.ckernel.Count(nm, ev)
				r.stats.Triangles += c
				r.stats.CmpOps += steps
			} else {
				r.curU, r.curV = u, v
				r.stats.CmpOps += r.kernel.Intersect(nm, ev, r.emitFn)
			}
		}
	}
	return sc.Err()
}

// scanPassCompressed is scanPass running directly on the encoded adjacency
// stream: each cone list arrives as a graph.CompressedList and both the
// N+(u) filter and the intersections work segment-by-segment, decoding a
// segment only when its (first, last) header overlaps the relevant range.
// Segments rejected on the header alone are counted in SegmentsSkipped.
// The triangle stream is identical to the decoded pass — same (u, v) order,
// same ascending w per pivot — which the cross-check tests pin down.
func (r *Runner) scanPassCompressed(sc scan.Scan, csc scan.CompressedScan) error {
	d := r.disk
	maxNmp := int(d.Meta.MaxOutDegree)
	if maxNmp > r.cfg.MemEdges {
		maxNmp = r.cfg.MemEdges
	}
	nmp := make([]graph.Vertex, 0, maxNmp)
	for {
		u, cl, ok := csc.NextCompressed()
		if !ok {
			break
		}
		if int(d.Degrees[u]) > r.cfg.MemEdges {
			if err := r.largeVertexCompressed(u, cl); err != nil {
				return err
			}
			continue
		}
		if cl.Degree < 2 {
			continue // need at least a pivot source and a closing vertex
		}
		// nmp := N+(u) — out-neighbors of u with out-edges in memory.
		// Collected segment-wise: a segment whose span misses the window's
		// vertex range [vlow, vhigh] is skipped on its header alone;
		// surviving varint segments decode through the unrolled 8-wide
		// decoder (bitmap segments pass through it to the scalar path).
		nmp = nmp[:0]
		it := cl.Segments()
		for {
			seg, ok := it.Next()
			if !ok {
				break
			}
			if seg.Last < r.vlow || seg.First > r.vhigh {
				r.stats.SegmentsSkipped++
				continue
			}
			vals, err := r.decodeSegmentFast(seg)
			if err != nil {
				return fmt.Errorf("mgt: decode list of vertex %d: %w", u, err)
			}
			for _, v := range vals {
				if v < r.vlow {
					continue
				}
				if v > r.vhigh {
					break
				}
				if r.ind[v-r.vlow].len > 0 {
					nmp = append(nmp, v)
				}
			}
		}
		if err := it.Err(); err != nil {
			return fmt.Errorf("mgt: list of vertex %d: %w", u, err)
		}
		for _, v := range nmp {
			e := r.ind[v-r.vlow]
			ev := r.edg[e.off : e.off+e.len]
			r.stats.Intersections++
			if r.countOnly && r.cbkernel != nil {
				// Count-only hot path: word-parallel bitmap counting and
				// unrolled varint decode via the runner's arena, no emit
				// closure, no payload materialization for bitmap segments.
				c, steps, skipped, err := r.cbkernel.CountCompressed(cl, ev, r.arena)
				if err != nil {
					return fmt.Errorf("mgt: intersect list of vertex %d: %w", u, err)
				}
				r.stats.Triangles += c
				r.stats.CmpOps += steps
				r.stats.SegmentsSkipped += skipped
				continue
			}
			r.curU, r.curV = u, v
			steps, skipped, err := r.bkernel.IntersectCompressed(cl, ev, r.segScratch, r.emitFn)
			if err != nil {
				return fmt.Errorf("mgt: intersect list of vertex %d: %w", u, err)
			}
			r.stats.CmpOps += steps
			r.stats.SegmentsSkipped += skipped
		}
	}
	return sc.Err()
}

// decodeSegmentFast decodes one segment into the runner's scratch through
// the unrolled decoder, crediting the arena's vectorization counters.
func (r *Runner) decodeSegmentFast(seg graph.Segment) ([]graph.Vertex, error) {
	vals, blocks, err := graph.DecodeSegmentFast(seg, r.segScratch)
	if err != nil {
		return nil, err
	}
	if seg.Kind == graph.SegVarint {
		// Bitmap segments pass through to the scalar expansion; only
		// varint segments took the unrolled path.
		r.arena.FastDecodes++
		r.arena.WordOps += uint64(blocks)
	}
	return vals, nil
}

// largeVertexCompressed is the large-vertex path of the compressed pass.
// The whole encoded list is in hand (compressed lists are not segmented by
// maxList), so pass 1 marks window vertices directly from it — decoding
// only the segments whose header span overlaps [vlow, vhigh] — and pass 2
// is the shared chunked re-read.
func (r *Runner) largeVertexCompressed(u graph.Vertex, cl graph.CompressedList) error {
	r.stats.LargeVertices++
	r.bumpEpoch()
	it := cl.Segments()
	for {
		seg, ok := it.Next()
		if !ok {
			break
		}
		if seg.Last < r.vlow || seg.First > r.vhigh {
			r.stats.SegmentsSkipped++
			continue
		}
		vals, err := r.decodeSegmentFast(seg)
		if err != nil {
			return fmt.Errorf("mgt: decode list of large vertex %d: %w", u, err)
		}
		for _, a := range vals {
			if a >= r.vlow && a <= r.vhigh {
				r.stamp[a-r.vlow] = r.epoch
			}
		}
	}
	if err := it.Err(); err != nil {
		return fmt.Errorf("mgt: list of large vertex %d: %w", u, err)
	}
	return r.largeVertexPass2(u)
}

// largeVertex handles a cone vertex u with d*(u) > M without ever holding
// N(u) in memory — the paper's footnote-1 removal of the small-degree
// assumption. firstSeg is the first segment the scanner already yielded.
//
// Pass 1 (the scanner's remaining segments): mark every window vertex that
// appears in N(u) with the current epoch. Pass 2 (a second sequential read
// of N(u) via ReadAt): merge N(u) against the value-sorted index of the
// window's edges; a match (w, v) with v marked means v, w ∈ N(u) and
// (v, w) in the window — triangle (u, v, w). The extra I/O is one re-read
// of u's list per pass, O(scan(d(u))).
func (r *Runner) largeVertex(sc scan.Scan, u graph.Vertex, firstSeg []graph.Vertex) error {
	d := r.disk
	r.stats.LargeVertices++
	r.bumpEpoch()
	mark := func(seg []graph.Vertex) {
		for _, a := range seg {
			if a >= r.vlow && a <= r.vhigh {
				r.stamp[a-r.vlow] = r.epoch
			}
		}
	}
	mark(firstSeg)
	remaining := int(d.Degrees[u]) - len(firstSeg)
	for remaining > 0 {
		u2, seg, ok := sc.Next()
		if !ok {
			return fmt.Errorf("mgt: truncated segments for vertex %d: %w", u, sc.Err())
		}
		if u2 != u {
			return fmt.Errorf("mgt: segment stream switched from %d to %d mid-list", u, u2)
		}
		mark(seg)
		remaining -= len(seg)
	}
	return r.largeVertexPass2(u)
}

// bumpEpoch advances the mark-array epoch, resetting the stamps on
// wrap-around so a stale epoch value can never alias a fresh one.
func (r *Runner) bumpEpoch() {
	r.epoch++
	if r.epoch == 0 {
		for i := range r.stamp {
			r.stamp[i] = 0
		}
		r.epoch = 1
	}
}

// largeVertexPass2 is the second pass shared by both large-vertex paths:
// re-read N(u) sequentially in M-sized chunks and merge it against the
// value-sorted index of the window's edges; a match (w, v) with v marked
// in the current epoch closes triangle (u, v, w).
func (r *Runner) largeVertexPass2(u graph.Vertex) error {
	r.buildValueIndex()
	d := r.disk
	if r.chunkBuf == nil {
		r.chunkBuf = make([]graph.Vertex, r.cfg.MemEdges)
	}
	lo, hi := d.Offsets[u], d.Offsets[u+1]
	i := 0 // cursor into the value index, shared across chunks (N(u) sorted)
	var steps uint64
	for pos := lo; pos < hi; {
		end := pos + uint64(r.cfg.MemEdges)
		if end > hi {
			end = hi
		}
		chunk := r.chunkBuf[:end-pos]
		if err := r.handle.ReadEntries(chunk, pos); err != nil {
			return fmt.Errorf("mgt: re-read large vertex %d: %w", u, err)
		}
		for _, w := range chunk {
			for i < len(r.idxVals) && r.idxVals[i] < w {
				i++
				steps++
			}
			for i < len(r.idxVals) && r.idxVals[i] == w {
				steps++
				v := r.idxSrcs[i]
				if r.stamp[v-r.vlow] == r.epoch {
					r.stats.Triangles++
					if r.sink != nil {
						r.sink.Triangle(u, v, w)
					}
				}
				i++
			}
		}
		pos = end
	}
	r.stats.Intersections++
	r.stats.CmpOps += steps
	return nil
}

// buildValueIndex lazily builds the window's (value, source) edge index
// sorted by value, used by the large-vertex path. Built at most once per
// window.
func (r *Runner) buildValueIndex() {
	if r.idxBuilt {
		return
	}
	n := len(r.edg)
	if cap(r.idxVals) < n {
		r.idxVals = make([]graph.Vertex, n)
		r.idxSrcs = make([]graph.Vertex, n)
	} else {
		r.idxVals = r.idxVals[:n]
		r.idxSrcs = r.idxSrcs[:n]
	}
	pos := 0
	for v := r.vlow; v <= r.vhigh; v++ {
		e := r.ind[v-r.vlow]
		for k := uint32(0); k < e.len; k++ {
			r.idxVals[pos] = r.edg[e.off+k]
			r.idxSrcs[pos] = v
			pos++
		}
	}
	r.idxVals = r.idxVals[:pos]
	r.idxSrcs = r.idxSrcs[:pos]
	sortByValue(r.idxVals, r.idxSrcs)
	r.idxBuilt = true
}

// sortByValue sorts the parallel (vals, srcs) arrays by vals.
func sortByValue(vals, srcs []graph.Vertex) {
	sort.Sort(&valueIndex{vals: vals, srcs: srcs})
}

type valueIndex struct {
	vals []graph.Vertex
	srcs []graph.Vertex
}

func (x *valueIndex) Len() int { return len(x.vals) }
func (x *valueIndex) Less(i, j int) bool {
	if x.vals[i] != x.vals[j] {
		return x.vals[i] < x.vals[j]
	}
	return x.srcs[i] < x.srcs[j]
}
func (x *valueIndex) Swap(i, j int) {
	x.vals[i], x.vals[j] = x.vals[j], x.vals[i]
	x.srcs[i], x.srcs[j] = x.srcs[j], x.srcs[i]
}

// FullRange returns the range covering the whole oriented store.
func FullRange(d *graph.Disk) balance.Range {
	return balance.Range{Lo: 0, Hi: d.Meta.AdjEntries}
}

// CheckSmallDegree verifies the paper's small-degree assumption
// d*max ≤ c·M/2 for implementation constant c < 1 (we use c = 1 and warn at
// equality): it returns an error describing the violation, or nil. The
// algorithm stays correct without it — only the CPU bound of Theorem IV.2
// needs it — so callers treat this as advisory.
func CheckSmallDegree(d *graph.Disk, memEdges int) error {
	if uint64(d.Meta.MaxOutDegree) > uint64(memEdges)/2 {
		return fmt.Errorf("mgt: small-degree assumption violated: d*max=%d > M/2=%d (correctness unaffected; CPU bound of Theorem IV.2 may not hold)",
			d.Meta.MaxOutDegree, memEdges/2)
	}
	return nil
}

// CountSink accumulates a plain count; it is the zero-cost sink used when
// only the total is needed by a caller that still wants sink plumbing.
type CountSink struct {
	N uint64
}

// Triangle implements Sink.
func (c *CountSink) Triangle(u, v, w graph.Vertex) { c.N++ }

// FuncSink adapts a function to the Sink interface.
type FuncSink func(u, v, w graph.Vertex)

// Triangle implements Sink.
func (f FuncSink) Triangle(u, v, w graph.Vertex) { f(u, v, w) }

// FileSink streams triangles as little-endian uint32 triples to a writer —
// the listing output path ("and possibly the triangle lists if necessary",
// Section IV-B1). It buffers internally; call Flush when done.
type FileSink struct {
	w   io.Writer
	buf []byte
	n   int
	err error
	// Count is the number of triangles written.
	Count uint64
}

// NewFileSink creates a FileSink with a 64 KiB buffer.
func NewFileSink(w io.Writer) *FileSink {
	return &FileSink{w: w, buf: make([]byte, 64*1024)}
}

// Triangle implements Sink.
func (f *FileSink) Triangle(u, v, w graph.Vertex) {
	if f.err != nil {
		return
	}
	if f.n+12 > len(f.buf) {
		f.flushBuf()
	}
	binary.LittleEndian.PutUint32(f.buf[f.n:], u)
	binary.LittleEndian.PutUint32(f.buf[f.n+4:], v)
	binary.LittleEndian.PutUint32(f.buf[f.n+8:], w)
	f.n += 12
	f.Count++
}

func (f *FileSink) flushBuf() {
	if f.n > 0 && f.err == nil {
		_, f.err = f.w.Write(f.buf[:f.n])
		f.n = 0
	}
}

// Flush writes any buffered triples and reports the first error encountered.
func (f *FileSink) Flush() error {
	f.flushBuf()
	return f.err
}

// ReadTriangles decodes a FileSink stream back into triples (test/tool
// helper).
func ReadTriangles(r io.Reader) ([][3]graph.Vertex, error) {
	var out [][3]graph.Vertex
	buf := make([]byte, 12)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, [3]graph.Vertex{
			binary.LittleEndian.Uint32(buf[0:]),
			binary.LittleEndian.Uint32(buf[4:]),
			binary.LittleEndian.Uint32(buf[8:]),
		})
	}
}

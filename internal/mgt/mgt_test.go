package mgt

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
)

// orientedStore writes g, orients it, and opens the oriented store.
func orientedStore(t testing.TB, g *graph.CSR) *graph.Disk {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "g")
	if err := graph.WriteCSR(src, "test", g); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "g.oriented")
	if _, err := orient.Orient(src, dst, 2); err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMGTKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    func() (*graph.CSR, error)
		want uint64
	}{
		{"K4", func() (*graph.CSR, error) { return gen.Complete(4) }, 4},
		{"K12", func() (*graph.CSR, error) { return gen.Complete(12) }, gen.CompleteTriangles(12)},
		{"TriGrid6x6", func() (*graph.CSR, error) { return gen.TriGrid(6, 6) }, gen.TriGridTriangles(6, 6)},
		{"Grid10x10", func() (*graph.CSR, error) { return gen.Grid(10, 10) }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			d := orientedStore(t, g)
			st, err := Run(context.Background(), d, Config{MemEdges: 64})
			if err != nil {
				t.Fatal(err)
			}
			if st.Triangles != tc.want {
				t.Errorf("triangles = %d, want %d", st.Triangles, tc.want)
			}
		})
	}
}

func TestMGTMemoryBudgetInvariance(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1500, 17)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	d := orientedStore(t, g)
	for _, m := range []int{2, 7, 33, 128, 1 << 20} {
		st, err := Run(context.Background(), d, Config{MemEdges: m})
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if st.Triangles != want {
			t.Errorf("M=%d: triangles = %d, want %d", m, st.Triangles, want)
		}
		wantPasses := int((d.Meta.AdjEntries + uint64(m) - 1) / uint64(m))
		if st.Passes != wantPasses {
			t.Errorf("M=%d: passes = %d, want R=ceil(S/M)=%d", m, st.Passes, wantPasses)
		}
	}
}

func TestMGTScanVolumeMatchesTheory(t *testing.T) {
	// Theorem IV.2: each pass reads the whole adjacency file once, plus the
	// window loads sum to the range size.
	g, err := gen.ErdosRenyi(200, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	m := int(d.Meta.AdjEntries)/4 + 1
	st, err := Run(context.Background(), d, Config{MemEdges: m})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(st.Passes)*d.AdjBytes() + int64(st.EdgesLoaded)*graph.EntrySize
	if st.IO.BytesRead != wantBytes {
		t.Errorf("bytes read = %d, want passes*|E*| + loads = %d", st.IO.BytesRead, wantBytes)
	}
	if st.EdgesLoaded != d.Meta.AdjEntries {
		t.Errorf("edges loaded = %d, want %d", st.EdgesLoaded, d.Meta.AdjEntries)
	}
}

func TestMGTRangePartition(t *testing.T) {
	// Splitting the edge range across runners partitions the triangles:
	// counts sum to the total, regardless of cut points.
	g, err := gen.PowerLaw(400, 4000, 2.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	d := orientedStore(t, g)
	total := d.Meta.AdjEntries
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		k := 1 + rng.Intn(6)
		cuts := make([]uint64, 0, k+1)
		cuts = append(cuts, 0)
		for i := 0; i < k-1; i++ {
			cuts = append(cuts, uint64(rng.Int63n(int64(total)+1)))
		}
		cuts = append(cuts, total)
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
		var sum uint64
		for i := 0; i+1 < len(cuts); i++ {
			st, err := Run(context.Background(), d, Config{MemEdges: 97, Range: balance.Range{Lo: cuts[i], Hi: cuts[i+1]}})
			if err != nil {
				t.Fatal(err)
			}
			sum += st.Triangles
		}
		if sum != want {
			t.Errorf("trial %d cuts %v: sum = %d, want %d", trial, cuts, sum, want)
		}
	}
}

func TestMGTListingMatchesForward(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 1400, 23)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[[3]graph.Vertex]bool{}
	baseline.ForwardList(g, func(u, v, w graph.Vertex) {
		wantSet[[3]graph.Vertex{u, v, w}] = true
	})

	d := orientedStore(t, g)
	gotSet := map[[3]graph.Vertex]bool{}
	dup := false
	sink := FuncSink(func(u, v, w graph.Vertex) {
		key := [3]graph.Vertex{u, v, w}
		if gotSet[key] {
			dup = true
		}
		gotSet[key] = true
	})
	st, err := Run(context.Background(), d, Config{MemEdges: 53, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Error("a triangle was listed twice")
	}
	if len(gotSet) != len(wantSet) {
		t.Fatalf("listed %d distinct triangles, want %d", len(gotSet), len(wantSet))
	}
	for tri := range wantSet {
		if !gotSet[tri] {
			t.Errorf("missing triangle %v", tri)
		}
	}
	if st.Triangles != uint64(len(wantSet)) {
		t.Errorf("stat count %d != listed %d", st.Triangles, len(wantSet))
	}
}

func TestMGTConfigValidation(t *testing.T) {
	g, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	if _, err := Run(context.Background(), d, Config{MemEdges: 0}); err == nil {
		t.Error("want error for M=0")
	}
	if _, err := Run(context.Background(), d, Config{MemEdges: 8, Range: balance.Range{Lo: 5, Hi: 99999}}); err == nil {
		t.Error("want error for out-of-bounds range")
	}
	// Unoriented store must be rejected.
	dir := t.TempDir()
	src := filepath.Join(dir, "u")
	if err := graph.WriteCSR(src, "u", g); err != nil {
		t.Fatal(err)
	}
	ud, err := graph.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), ud, Config{MemEdges: 8}); err == nil {
		t.Error("want error for unoriented store")
	}
}

func TestLargeVertexPath(t *testing.T) {
	// K_n has every out-list equal to n-1-id entries (degree ties broken
	// by id), so with M ≪ n the large-vertex path handles most cones.
	g, err := gen.Complete(150)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	st, err := Run(context.Background(), d, Config{MemEdges: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.Triangles != gen.CompleteTriangles(150) {
		t.Errorf("triangles = %d, want %d", st.Triangles, gen.CompleteTriangles(150))
	}
	if st.LargeVertices == 0 {
		t.Error("large-vertex path not exercised with M=32, d*max=149")
	}
	// The same budget must also list exactly once.
	seen := map[[3]graph.Vertex]bool{}
	dup := false
	st2, err := Run(context.Background(), d, Config{MemEdges: 32, Sink: FuncSink(func(u, v, w graph.Vertex) {
		key := [3]graph.Vertex{u, v, w}
		if seen[key] {
			dup = true
		}
		seen[key] = true
	})})
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Error("large-vertex path listed a triangle twice")
	}
	if uint64(len(seen)) != st2.Triangles || st2.Triangles != st.Triangles {
		t.Errorf("listing mismatch: %d vs %d vs %d", len(seen), st2.Triangles, st.Triangles)
	}
}

func TestLargeVertexSkewedGraph(t *testing.T) {
	// A hub graph whose orientation gives one vertex a huge out-list:
	// vertex ids tie-break the degree order, so in a clique of equal
	// degrees vertex 0 points at everyone. Mix in a sparse periphery so
	// windows span both regimes, and sweep budgets below d*max.
	g, err := gen.PowerLaw(800, 12000, 1.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	d := orientedStore(t, g)
	if d.Meta.MaxOutDegree < 40 {
		t.Skipf("generator produced d*max=%d, too small to exercise the path", d.Meta.MaxOutDegree)
	}
	for _, m := range []int{3, 11, int(d.Meta.MaxOutDegree) / 2} {
		st, err := Run(context.Background(), d, Config{MemEdges: m})
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if st.Triangles != want {
			t.Errorf("M=%d: triangles = %d, want %d", m, st.Triangles, want)
		}
		if st.LargeVertices == 0 {
			t.Errorf("M=%d < d*max=%d should hit the large path", m, d.Meta.MaxOutDegree)
		}
	}
}

func TestCheckSmallDegree(t *testing.T) {
	g, err := gen.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g) // d*max = 7
	if err := CheckSmallDegree(d, 100); err != nil {
		t.Errorf("assumption should hold for M=100: %v", err)
	}
	if err := CheckSmallDegree(d, 8); err == nil {
		t.Error("assumption should fail for M=8 (d*max=7 > 4)")
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewFileSink(&buf)
	want := [][3]graph.Vertex{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for _, tri := range want {
		sink.Triangle(tri[0], tri[1], tri[2])
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Count != 3 {
		t.Errorf("Count = %d, want 3", sink.Count)
	}
	got, err := ReadTriangles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d triples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("triple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStatsAddAndCPUTime(t *testing.T) {
	a := Stats{Triangles: 3, Passes: 1, Wall: 100}
	b := Stats{Triangles: 4, Passes: 2, Wall: 70}
	sum := a.Add(b)
	if sum.Triangles != 7 || sum.Passes != 3 {
		t.Errorf("Add = %+v", sum)
	}
	if sum.Wall != 100 {
		t.Errorf("Wall should be the max (straggler): %v", sum.Wall)
	}
	s := Stats{Wall: 50}
	if s.CPUTime() != 50 {
		t.Errorf("CPUTime = %v", s.CPUTime())
	}
}

// Property: MGT equals the in-memory reference on random graphs for random
// memory budgets.
func TestMGTMatchesReferenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, mRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(80)
		g, err := gen.ErdosRenyi(n, rng.Intn(8*n), seed)
		if err != nil {
			return false
		}
		d := orientedStore(t, g)
		m := 1 + int(mRaw%512)
		st, err := Run(context.Background(), d, Config{MemEdges: m})
		if err != nil {
			return false
		}
		return st.Triangles == baseline.Forward(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

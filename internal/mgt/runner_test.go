package mgt

import (
	"context"
	"path/filepath"
	"testing"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
)

// runnerDisk builds and orients a test graph.
func runnerDisk(t *testing.T) (*graph.Disk, uint64) {
	t.Helper()
	g, err := gen.PowerLaw(400, 6000, 2.2, 17)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	dir := t.TempDir()
	src := filepath.Join(dir, "g")
	if err := graph.WriteCSR(src, "g", g); err != nil {
		t.Fatal(err)
	}
	dst := src + ".oriented"
	if _, err := orient.Orient(src, dst, 2); err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	return d, want
}

// TestRunnerReuseAcrossRanges drives one Runner over many consecutive
// subranges — the work-stealing access pattern — and checks (a) the union
// reproduces the full-range triangle count, (b) the per-call stats are
// per-chunk deltas, not cumulative, and (c) the window buffer is not
// reallocated between chunks.
func TestRunnerReuseAcrossRanges(t *testing.T) {
	d, want := runnerDisk(t)
	const mem = 96

	full, err := Run(context.Background(), d, Config{MemEdges: mem})
	if err != nil {
		t.Fatal(err)
	}
	if full.Triangles != want {
		t.Fatalf("full run found %d triangles, want %d", full.Triangles, want)
	}

	r, err := NewRunner(d, Config{MemEdges: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	total := d.Meta.AdjEntries
	const chunks = 7
	var sum Stats
	var edgSeen map[*graph.Vertex]bool
	for i := 0; i < chunks; i++ {
		rng := balance.Range{
			Lo: total * uint64(i) / chunks,
			Hi: total * uint64(i+1) / chunks,
		}
		st, err := r.RunRange(context.Background(), rng, nil)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if st.EdgesLoaded != rng.Len() {
			t.Errorf("chunk %d loaded %d edges, want the per-chunk delta %d", i, st.EdgesLoaded, rng.Len())
		}
		sum = sum.Add(st)
		// The window buffer must be the same backing array every chunk —
		// the whole point of the reusable Runner.
		if cap(r.edg) > 0 {
			p := &r.edg[:1][0]
			if edgSeen == nil {
				edgSeen = map[*graph.Vertex]bool{p: true}
			} else if !edgSeen[p] {
				t.Errorf("chunk %d: window buffer was reallocated", i)
			}
		}
	}
	if sum.Triangles != want {
		t.Fatalf("chunked runs found %d triangles, want %d", sum.Triangles, want)
	}
	if sum.EdgesLoaded != total {
		t.Fatalf("chunked runs loaded %d edges, want %d", sum.EdgesLoaded, total)
	}
}

// TestRunnerEmptyRangeNoop: an empty (Lo == Hi) chunk — which weighted
// chunking can produce — must do nothing, not fall back to the whole file.
func TestRunnerEmptyRangeNoop(t *testing.T) {
	d, _ := runnerDisk(t)
	r, err := NewRunner(d, Config{MemEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, lo := range []uint64{0, 5, d.Meta.AdjEntries} {
		st, err := r.RunRange(context.Background(), balance.Range{Lo: lo, Hi: lo}, nil)
		if err != nil {
			t.Fatalf("empty range at %d: %v", lo, err)
		}
		if st.Triangles != 0 || st.Passes != 0 || st.EdgesLoaded != 0 {
			t.Fatalf("empty range at %d did work: %+v", lo, st)
		}
	}
}

// TestRunnerPerChunkSinks: each RunRange call reports to its own sink, so
// chunk-indexed sinks stay correctly routed under reuse.
func TestRunnerPerChunkSinks(t *testing.T) {
	d, want := runnerDisk(t)
	r, err := NewRunner(d, Config{MemEdges: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	total := d.Meta.AdjEntries
	mid := total / 2
	var a, b CountSink
	st1, err := r.RunRange(context.Background(), balance.Range{Lo: 0, Hi: mid}, &a)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r.RunRange(context.Background(), balance.Range{Lo: mid, Hi: total}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != st1.Triangles || b.N != st2.Triangles {
		t.Fatalf("sink routing broken: sinks (%d,%d) vs stats (%d,%d)", a.N, b.N, st1.Triangles, st2.Triangles)
	}
	if a.N+b.N != want {
		t.Fatalf("sinks saw %d triangles, want %d", a.N+b.N, want)
	}
}

package mgt

import (
	"context"
	"path/filepath"
	"testing"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
)

// TestCompressedPassMatchesPlain runs the same oriented graph through the
// decoded pass on the plain store and through every kernel on the
// compressed store — including the direct-on-compressed block-skipping
// pass — and requires the identical triangle stream: same triangles, same
// order. Memory budgets cover the all-large-vertex regime (16), a mid
// window mix (97), and the single-window case (100000).
func TestCompressedPassMatchesPlain(t *testing.T) {
	g, err := gen.PowerLaw(600, 6000, 1.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "g")
	if err := graph.WriteCSR(src, "test", g); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "g.oriented")
	if _, err := orient.Orient(src, dst, 2); err != nil {
		t.Fatal(err)
	}
	od, err := graph.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	cbase := filepath.Join(dir, "g.oc")
	if err := graph.ConvertStore(dst, cbase, graph.FormatCompressed); err != nil {
		t.Fatal(err)
	}
	cd, err := graph.Open(cbase)
	if err != nil {
		t.Fatal(err)
	}

	type tri struct{ u, v, w graph.Vertex }
	run := func(d *graph.Disk, k scan.Kernel, mem int) ([]tri, Stats) {
		var out []tri
		st, err := Run(context.Background(), d, Config{
			MemEdges: mem,
			Kernel:   k,
			Sink:     FuncSink(func(u, v, w graph.Vertex) { out = append(out, tri{u, v, w}) }),
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, st
	}
	for _, mem := range []int{16, 97, 100000} {
		want, _ := run(od, scan.Merge, mem)
		if len(want) == 0 {
			t.Fatalf("mem=%d: reference run found no triangles", mem)
		}
		for _, k := range []scan.Kernel{scan.Merge, scan.Gallop, scan.Adaptive, scan.Compressed, scan.Cover} {
			got, st := run(cd, k, mem)
			if len(got) != len(want) {
				t.Fatalf("mem=%d kernel=%s: %d triangles, want %d", mem, k.Kind(), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("mem=%d kernel=%s: triangle %d = %v, want %v", mem, k.Kind(), i, got[i], want[i])
				}
			}
			if k.Kind() == scan.KernelCompressed {
				if st.SegmentsSkipped == 0 {
					t.Errorf("mem=%d: block-skipping pass never skipped a segment", mem)
				}
			} else if st.SegmentsSkipped != 0 {
				t.Errorf("mem=%d kernel=%s: decoded pass reported %d skipped segments, want 0",
					mem, k.Kind(), st.SegmentsSkipped)
			}
		}
	}
}

// TestCompressedKernelStepBound pins the perf claim behind the
// block-skipping kernel: on a skewed power-law graph (the shape of the
// twitter-sim benchmark dataset) its comparison-step count is at or below
// the adaptive kernel's, because every segment rejected on its header alone
// removes up to 256 entries from the intersection without a single
// per-entry step.
func TestCompressedKernelStepBound(t *testing.T) {
	g, err := gen.PowerLaw(1<<12, (1<<12)*20, 1.9, 103)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "g")
	if err := graph.WriteCSR(src, "test", g); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "g.oriented")
	if _, err := orient.OrientFormat(src, dst, 2, graph.FormatCompressed); err != nil {
		t.Fatal(err)
	}
	cd, err := graph.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k scan.Kernel) Stats {
		var sink CountSink
		st, err := Run(context.Background(), cd, Config{
			MemEdges: 1 << 12,
			Kernel:   k,
			Sink:     &sink,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	adaptive := run(scan.Adaptive)
	compressed := run(scan.Compressed)
	if compressed.Triangles != adaptive.Triangles {
		t.Fatalf("kernels disagree: compressed %d, adaptive %d triangles",
			compressed.Triangles, adaptive.Triangles)
	}
	t.Logf("steps: adaptive %d, compressed %d (%.2fx), %d segments skipped",
		adaptive.CmpOps, compressed.CmpOps,
		float64(adaptive.CmpOps)/float64(compressed.CmpOps), compressed.SegmentsSkipped)
	if compressed.CmpOps > adaptive.CmpOps {
		t.Errorf("compressed kernel took %d steps, adaptive %d — block skipping must not cost steps",
			compressed.CmpOps, adaptive.CmpOps)
	}
	if compressed.SegmentsSkipped == 0 {
		t.Error("compressed kernel never skipped a segment on a skewed graph")
	}
}

package mgt

import (
	"context"
	"testing"

	"pdtl/internal/gen"
)

// BenchmarkMGTFullPass measures a whole-range run with a one-pass memory
// budget (the ample-memory configuration).
func BenchmarkMGTFullPass(b *testing.B) {
	g, err := gen.RMAT(11, 16, 9)
	if err != nil {
		b.Fatal(err)
	}
	d := orientedStore(b, g)
	m := int(d.Meta.AdjEntries) + 1
	b.SetBytes(d.AdjBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Run(context.Background(), d, Config{MemEdges: m})
		if err != nil {
			b.Fatal(err)
		}
		if st.Triangles == 0 {
			b.Fatal("no triangles")
		}
	}
}

// BenchmarkMGTManyPasses measures the same run under a 16-pass budget,
// exercising the external-memory window loop.
func BenchmarkMGTManyPasses(b *testing.B) {
	g, err := gen.RMAT(11, 16, 9)
	if err != nil {
		b.Fatal(err)
	}
	d := orientedStore(b, g)
	m := int(d.Meta.AdjEntries)/16 + 1
	b.SetBytes(d.AdjBytes() * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), d, Config{MemEdges: m}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMGTListing measures the listing path through a counting sink.
func BenchmarkMGTListing(b *testing.B) {
	g, err := gen.RMAT(11, 16, 9)
	if err != nil {
		b.Fatal(err)
	}
	d := orientedStore(b, g)
	m := int(d.Meta.AdjEntries) + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink CountSink
		st, err := Run(context.Background(), d, Config{MemEdges: m, Sink: &sink})
		if err != nil {
			b.Fatal(err)
		}
		if sink.N != st.Triangles {
			b.Fatal("sink mismatch")
		}
	}
}

package mgt

import (
	"context"
	"os"
	"testing"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

// Failure injection: a runner must fail loudly — never return a wrong
// count — when the store under it is damaged between Open and Run.

func TestTruncatedAdjacencyFails(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	// Chop the adjacency file in half after opening the metadata.
	if err := os.Truncate(graph.AdjPath(d.Base), d.AdjBytes()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), d, Config{MemEdges: 64}); err == nil {
		t.Fatal("truncated adjacency must fail the run")
	}
}

func TestTruncatedAdjacencyFailsLargePath(t *testing.T) {
	g, err := gen.Complete(80) // d*max = 79 > M → large-vertex path
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	if err := os.Truncate(graph.AdjPath(d.Base), d.AdjBytes()/3); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), d, Config{MemEdges: 16}); err == nil {
		t.Fatal("truncated adjacency must fail the large-vertex path too")
	}
}

func TestMissingAdjacencyFails(t *testing.T) {
	g, err := gen.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	if err := os.Remove(graph.AdjPath(d.Base)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), d, Config{MemEdges: 16}); err == nil {
		t.Fatal("missing adjacency must fail the run")
	}
}

func TestCorruptMetaFails(t *testing.T) {
	g, err := gen.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	if err := os.WriteFile(graph.MetaPath(d.Base), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Open(d.Base); err == nil {
		t.Fatal("corrupt metadata must fail Open")
	}
}

func TestTruncatedDegreesFails(t *testing.T) {
	g, err := gen.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	if err := os.Truncate(graph.DegPath(d.Base), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Open(d.Base); err == nil {
		t.Fatal("truncated degree file must fail Open")
	}
}

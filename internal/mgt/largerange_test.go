package mgt

import (
	"context"
	"testing"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
)

// TestLargePathWithRangeSplit exercises the large-vertex path together
// with PDTL's contiguous range splitting: budgets far below d*max across
// several pivot ranges must still partition the triangles exactly.
func TestLargePathWithRangeSplit(t *testing.T) {
	g, err := gen.PowerLaw(1<<10, (1<<10)*24, 1.9, 103)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	if d.Meta.MaxOutDegree < 16 {
		t.Skipf("d*max=%d too small", d.Meta.MaxOutDegree)
	}
	m := int(d.Meta.MaxOutDegree) / 4
	total := d.Meta.AdjEntries
	cuts := []uint64{0, total / 3, 2 * total / 3, total}
	var sum uint64
	var large uint64
	for i := 0; i+1 < len(cuts); i++ {
		st, err := Run(context.Background(), d, Config{MemEdges: m, Range: balance.Range{Lo: cuts[i], Hi: cuts[i+1]}})
		if err != nil {
			t.Fatalf("range %d: %v", i, err)
		}
		sum += st.Triangles
		large += st.LargeVertices
	}
	if want := baseline.Forward(g); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if large == 0 {
		t.Error("expected the large-vertex path to fire with M = d*max/4")
	}
}

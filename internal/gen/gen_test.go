package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdtl/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(8, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(8, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() || a.AdjEntries() != b.AdjEntries() {
		t.Errorf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
	c, err := RMAT(8, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() == a.NumEdges() && len(c.Adj) == len(a.Adj) {
		same := true
		for i := range c.Adj {
			if c.Adj[i] != a.Adj[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestRMATShape(t *testing.T) {
	g, err := RMAT(10, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Errorf("NumVertices = %d, want 1024", g.NumVertices())
	}
	// Simplification removes duplicates, but the graph should retain a
	// large fraction of the 16*1024 samples.
	if g.NumEdges() < 4*1024 {
		t.Errorf("NumEdges = %d, too much loss", g.NumEdges())
	}
	st := graph.Stats(g)
	// Scale-free: max degree far above average.
	if float64(st.MaxDegree) < 5*st.AvgDegree {
		t.Errorf("RMAT not skewed: max=%d avg=%.1f", st.MaxDegree, st.AvgDegree)
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(31, 2, 1); err == nil {
		t.Error("want error for scale > 30")
	}
	bad := RMATParams{A: 0.5, B: 0.5, C: 0.5, D: 0.5}
	if _, err := RMATWithParams(4, 2, bad, 1); err == nil {
		t.Error("want error for parameters not summing to 1")
	}
}

func TestCompleteAndGridCounts(t *testing.T) {
	k6, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if k6.NumEdges() != 15 {
		t.Errorf("K6 edges = %d, want 15", k6.NumEdges())
	}
	if CompleteTriangles(6) != 20 {
		t.Errorf("CompleteTriangles(6) = %d, want 20", CompleteTriangles(6))
	}
	if CompleteTriangles(2) != 0 {
		t.Error("CompleteTriangles(2) should be 0")
	}

	grid, err := Grid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 4x3 grid: 3*3 horizontal + 4*2 vertical = 17 edges.
	if grid.NumEdges() != 17 {
		t.Errorf("Grid(4,3) edges = %d, want 17", grid.NumEdges())
	}

	tg, err := TriGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 3x3: 6 horizontal + 6 vertical + 4 diagonal = 16 edges.
	if tg.NumEdges() != 16 {
		t.Errorf("TriGrid(3,3) edges = %d, want 16", tg.NumEdges())
	}
	if TriGridTriangles(3, 3) != 8 {
		t.Errorf("TriGridTriangles(3,3) = %d, want 8", TriGridTriangles(3, 3))
	}
	if TriGridTriangles(1, 5) != 0 {
		t.Error("degenerate TriGrid should have 0 triangles")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 400 {
		t.Errorf("NumEdges = %d, want (0, 400]", g.NumEdges())
	}
	if _, err := ErdosRenyi(-1, 5, 0); err == nil {
		t.Error("want error for negative n")
	}
}

func TestPowerLawSkew(t *testing.T) {
	g, err := PowerLaw(2000, 16000, 2.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := graph.Stats(g)
	if float64(st.MaxDegree) < 4*st.AvgDegree {
		t.Errorf("power law not skewed: max=%d avg=%.1f", st.MaxDegree, st.AvgDegree)
	}
	if _, err := PowerLaw(10, 5, 0.5, 1); err == nil {
		t.Error("want error for exponent <= 1")
	}
}

func TestCommunityTriangleDensity(t *testing.T) {
	// With strong communities the clustering (triangles per wedge) should
	// be clearly higher than a same-size uniform random graph.
	comm, err := Community(1500, 12000, CommunityParams{Communities: 30, IntraProb: 0.9, Exponent: 2.5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(1500, 12000, 9)
	if err != nil {
		t.Fatal(err)
	}
	tComm := countRef(comm)
	tER := countRef(er)
	if tComm <= tER {
		t.Errorf("community graph should have more triangles: community=%d uniform=%d", tComm, tER)
	}
	if _, err := Community(10, 5, CommunityParams{Communities: 0, Exponent: 2}, 1); err == nil {
		t.Error("want error for zero communities")
	}
}

func TestWebShape(t *testing.T) {
	g, err := Web(5000, DefaultWeb, 21)
	if err != nil {
		t.Fatal(err)
	}
	st := graph.Stats(g)
	if st.AvgDegree < 2 || st.AvgDegree > 40 {
		t.Errorf("web avg degree %.1f out of band", st.AvgDegree)
	}
	// Hub degree should be a large fraction of n — the Yahoo signature.
	if float64(st.MaxDegree) < 0.005*float64(g.NumVertices()) {
		t.Errorf("web max degree %d too small for n=%d", st.MaxDegree, g.NumVertices())
	}
	if _, err := Web(0, DefaultWeb, 1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := Web(10, WebParams{AvgDegree: -1}, 1); err == nil {
		t.Error("want error for bad params")
	}
}

func TestWebMidTier(t *testing.T) {
	// The middle tier is what skews the oriented degree distribution (the
	// Yahoo d*max ≫ avg signature): there must be a population of
	// vertices with degrees far above average but below the mega-hubs.
	n := 20000
	g, err := Web(n, DefaultWeb, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := graph.Stats(g)
	heavy := 0
	for v := 0; v < n; v++ {
		if float64(g.Degree(graph.Vertex(v))) > 4*st.AvgDegree {
			heavy++
		}
	}
	// Beyond the handful of mega-hubs there must be a real mid-tier
	// population of heavy vertices.
	wantMid := int(DefaultWeb.MidHubFraction*float64(n)) / 2
	if mid := heavy - DefaultWeb.Hubs; mid < wantMid {
		t.Errorf("mid-tier population %d below %d", mid, wantMid)
	}
}

// countRef is a local edge-iterator reference counter (kept local to avoid
// an import cycle with the baseline package's tests).
func countRef(g *graph.CSR) uint64 {
	var count uint64
	for u := 0; u < g.NumVertices(); u++ {
		nu := g.Neighbors(graph.Vertex(u))
		for _, v := range nu {
			if v <= graph.Vertex(u) {
				continue
			}
			nv := g.Neighbors(v)
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] < nv[j]:
					i++
				case nu[i] > nv[j]:
					j++
				default:
					if nu[i] > v {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}

// Property: every generator output is simple and symmetric.
func TestGeneratorsProduceSimpleGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.CSR
		var err error
		switch rng.Intn(4) {
		case 0:
			g, err = RMAT(uint(4+rng.Intn(5)), 1+rng.Intn(8), seed)
		case 1:
			g, err = ErdosRenyi(5+rng.Intn(60), rng.Intn(200), seed)
		case 2:
			g, err = PowerLaw(5+rng.Intn(60), rng.Intn(200), 2.0+rng.Float64(), seed)
		default:
			g, err = Web(50+rng.Intn(500), DefaultWeb, seed)
		}
		if err != nil {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			list := g.Neighbors(graph.Vertex(v))
			for i, w := range list {
				if w == graph.Vertex(v) || (i > 0 && list[i-1] >= w) || !g.HasEdge(w, graph.Vertex(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

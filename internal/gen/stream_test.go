package gen

import (
	"bytes"
	"reflect"
	"testing"

	"pdtl/internal/graph"
)

// TestStreamTraceValidAndDeterministic replays a generated trace against
// the initial graph and checks every batch is valid (inserts absent,
// deletes present, no self-loops, no within-batch overlap), that the
// replayed end state matches the returned final edge set, and that the
// same seed reproduces the identical trace.
func TestStreamTraceValidAndDeterministic(t *testing.T) {
	p := StreamParams{N: 200, M: 1500, Batches: 12, BatchSize: 50, DeleteFrac: 0.4, Seed: 7}
	base, batches, final, err := Stream(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != p.Batches {
		t.Fatalf("got %d batches, want %d", len(batches), p.Batches)
	}

	type key struct{ u, v uint32 }
	canon := func(u, v uint32) key {
		if u > v {
			u, v = v, u
		}
		return key{u, v}
	}
	live := make(map[key]bool)
	for u := 0; u < base.NumVertices(); u++ {
		for _, v := range base.Neighbors(graph.Vertex(u)) {
			if uint32(u) < uint32(v) {
				live[key{uint32(u), uint32(v)}] = true
			}
		}
	}
	for i, b := range batches {
		if len(b.Insert)+len(b.Delete) != p.BatchSize {
			t.Fatalf("batch %d has %d+%d updates, want %d", i, len(b.Insert), len(b.Delete), p.BatchSize)
		}
		inBatch := make(map[key]bool)
		for _, d := range b.Delete {
			k := canon(d[0], d[1])
			if !live[k] {
				t.Fatalf("batch %d deletes absent edge %v", i, d)
			}
			if inBatch[k] {
				t.Fatalf("batch %d touches edge %v twice", i, d)
			}
			inBatch[k] = true
			delete(live, k)
		}
		for _, ins := range b.Insert {
			if ins[0] == ins[1] {
				t.Fatalf("batch %d inserts self-loop %v", i, ins)
			}
			k := canon(ins[0], ins[1])
			if live[k] {
				t.Fatalf("batch %d inserts present edge %v", i, ins)
			}
			if inBatch[k] {
				t.Fatalf("batch %d touches edge %v twice", i, ins)
			}
			inBatch[k] = true
			live[k] = true
		}
	}
	if len(live) != len(final) {
		t.Fatalf("replayed %d live edges, final snapshot has %d", len(live), len(final))
	}
	for _, e := range final {
		if !live[key{e.U, e.V}] {
			t.Fatalf("final edge %v not in replayed set", e)
		}
	}

	// New vertices actually appear: some insert goes beyond the base graph.
	grew := false
	for _, b := range batches {
		for _, ins := range b.Insert {
			if int(ins[0]) >= p.N || int(ins[1]) >= p.N {
				grew = true
			}
		}
	}
	if !grew {
		t.Fatal("no insert used a vertex beyond the initial graph")
	}

	// Same seed, same trace.
	_, batches2, final2, err := Stream(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batches, batches2) || !reflect.DeepEqual(final, final2) {
		t.Fatal("same params produced a different trace")
	}
	// A different seed diverges.
	p.Seed = 8
	_, batches3, _, err := Stream(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(batches, batches3) {
		t.Fatal("different seeds produced the same trace")
	}
}

func TestStreamTraceRoundTrip(t *testing.T) {
	_, batches, _, err := Stream(StreamParams{N: 50, M: 200, Batches: 4, BatchSize: 20, DeleteFrac: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, batches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batches, got) {
		t.Fatalf("round-trip mismatch:\nwrote %v\nread  %v", batches, got)
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("{bad json\n"))); err == nil {
		t.Fatal("want error for malformed trace")
	}
}

func TestStreamParamValidation(t *testing.T) {
	if _, _, _, err := Stream(StreamParams{N: 1, M: 10, Batches: 1, BatchSize: 1}); err == nil {
		t.Fatal("want error for n < 2")
	}
	if _, _, _, err := Stream(StreamParams{N: 10, M: 10, Batches: 0, BatchSize: 1}); err == nil {
		t.Fatal("want error for zero batches")
	}
}

// Package gen provides deterministic synthetic graph generators for the
// datasets of the paper's Table I.
//
// RMAT reproduces the R-MAT recursive generator of Chakrabarti et al. that
// the paper's RMAT-26…29 graphs come from ("RMAT-n contains 2^n vertices and
// 2^(n+4) edges"). The remaining generators produce laptop-scale structural
// stand-ins for the real datasets the paper uses but that are not available
// offline (Twitter, Yahoo, LiveJournal, Orkut) — see DESIGN.md §3 for the
// substitution argument — plus analytic graphs (complete, grids) whose
// triangle counts are known in closed form and anchor the test suite.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"pdtl/internal/graph"
)

// RMATParams are the quadrant probabilities of the recursive generator.
// They must be non-negative and sum to 1.
type RMATParams struct {
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities at every recursion level by
	// a uniform factor in [1-Noise, 1+Noise], the standard "smoothing" that
	// avoids exact self-similarity artifacts.
	Noise float64
}

// DefaultRMAT is the canonical (0.57, 0.19, 0.19, 0.05) parameterization
// used by Graph500 and by the paper's scale-free datasets.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.1}

// RMAT generates an RMAT graph with 2^scale vertices and edgeFactor·2^scale
// generated edge samples (before simplification), using the default
// parameters. The paper's RMAT-n uses edgeFactor 16.
func RMAT(scale uint, edgeFactor int, seed int64) (*graph.CSR, error) {
	return RMATWithParams(scale, edgeFactor, DefaultRMAT, seed)
}

// RMATWithParams is RMAT with explicit quadrant parameters.
func RMATWithParams(scale uint, edgeFactor int, p RMATParams, seed int64) (*graph.CSR, error) {
	if scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d too large for this build", scale)
	}
	if sum := p.A + p.B + p.C + p.D; math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("gen: RMAT parameters sum to %g, want 1", sum)
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, rmatEdge(rng, scale, p))
	}
	return graph.FromEdges(n, edges)
}

func rmatEdge(rng *rand.Rand, scale uint, p RMATParams) graph.Edge {
	var u, v uint32
	for level := uint(0); level < scale; level++ {
		a, b, c, d := p.A, p.B, p.C, p.D
		if p.Noise > 0 {
			a *= 1 + p.Noise*(2*rng.Float64()-1)
			b *= 1 + p.Noise*(2*rng.Float64()-1)
			c *= 1 + p.Noise*(2*rng.Float64()-1)
			d *= 1 + p.Noise*(2*rng.Float64()-1)
			norm := a + b + c + d
			a, b, c, d = a/norm, b/norm, c/norm, d/norm
		}
		r := rng.Float64()
		switch {
		case r < a:
			// upper-left quadrant: no bits set
		case r < a+b:
			v |= 1 << level
		case r < a+b+c:
			u |= 1 << level
		default:
			u |= 1 << level
			v |= 1 << level
			_ = d
		}
	}
	return graph.Edge{U: u, V: v}
}

// ErdosRenyi generates a uniform random simple graph with n vertices and m
// edge samples (duplicates and loops are discarded by simplification, so the
// realized edge count can be slightly below m).
func ErdosRenyi(n, m int, seed int64) (*graph.CSR, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("gen: negative size n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
	}
	return graph.FromEdges(n, edges)
}

// Complete generates the complete graph K_n, the densest case of the
// paper's Section IV-B2 memory argument. It has exactly C(n,3) triangles.
func Complete(n int) (*graph.CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: negative size n=%d", n)
	}
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	return graph.FromEdges(n, edges)
}

// CompleteTriangles is the closed-form triangle count C(n,3) of K_n.
func CompleteTriangles(n int) uint64 {
	if n < 3 {
		return 0
	}
	nn := uint64(n)
	return nn * (nn - 1) * (nn - 2) / 6
}

// Grid generates the w×h rectangular grid graph: planar (arboricity O(1) by
// Theorem III.4) and triangle-free.
func Grid(w, h int) (*graph.CSR, error) {
	if w < 0 || h < 0 {
		return nil, fmt.Errorf("gen: negative grid %dx%d", w, h)
	}
	edges := make([]graph.Edge, 0, 2*w*h)
	id := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1)})
			}
		}
	}
	return graph.FromEdges(w*h, edges)
}

// TriGrid generates the w×h grid with one diagonal per cell: still planar,
// with exactly 2·(w-1)·(h-1) triangles. It exercises the α = O(1) regime of
// Theorem III.4 with a non-trivial triangle count.
func TriGrid(w, h int) (*graph.CSR, error) {
	if w < 0 || h < 0 {
		return nil, fmt.Errorf("gen: negative grid %dx%d", w, h)
	}
	edges := make([]graph.Edge, 0, 3*w*h)
	id := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1)})
			}
			if x+1 < w && y+1 < h {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y+1)})
			}
		}
	}
	return graph.FromEdges(w*h, edges)
}

// TriGridTriangles is the closed-form triangle count of TriGrid(w, h).
func TriGridTriangles(w, h int) uint64 {
	if w < 2 || h < 2 {
		return 0
	}
	return 2 * uint64(w-1) * uint64(h-1)
}

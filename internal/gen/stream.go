package gen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"pdtl/internal/graph"
)

// StreamParams parameterize a synthetic churn trace: an initial power-law
// graph plus a sequence of mutation batches over it. Everything is driven
// by one seed, so a trace is reproducible bit for bit — the live-graph
// experiments replay the same churn against the overlay and against
// from-scratch rebuilds and compare exact counts.
type StreamParams struct {
	// N and M size the initial Chung–Lu power-law graph (M edge samples
	// before simplification); Exponent is its degree-tail exponent
	// (non-positive selects 2.5, the PowerLaw default regime).
	N        int
	M        int
	Exponent float64
	// Batches and BatchSize shape the churn: Batches batches of BatchSize
	// edge mutations each.
	Batches   int
	BatchSize int
	// DeleteFrac is the fraction of each batch that deletes live edges
	// (the rest inserts absent ones); clamped to [0, 1].
	DeleteFrac float64
	// Seed drives the generator and the churn.
	Seed int64
}

func (p StreamParams) withDefaults() (StreamParams, error) {
	if p.N < 2 || p.M < 1 {
		return p, fmt.Errorf("gen: stream needs n ≥ 2 and m ≥ 1 (got n=%d m=%d)", p.N, p.M)
	}
	if p.Batches < 1 || p.BatchSize < 1 {
		return p, fmt.Errorf("gen: stream needs batches ≥ 1 and batch-size ≥ 1 (got %d, %d)", p.Batches, p.BatchSize)
	}
	if p.Exponent <= 0 {
		p.Exponent = 2.5
	}
	if p.DeleteFrac < 0 {
		p.DeleteFrac = 0
	}
	if p.DeleteFrac > 1 {
		p.DeleteFrac = 1
	}
	return p, nil
}

// Batch is one churn batch, JSON-shaped exactly like the service's
// POST /v1/graphs/{name}/edges body, so a trace line can be replayed with
// curl verbatim. Inserts and deletes within one batch never overlap, so
// apply order does not matter.
type Batch struct {
	Insert [][2]uint32 `json:"insert,omitempty"`
	Delete [][2]uint32 `json:"delete,omitempty"`
}

// Stream generates a deterministic churn trace: the initial graph, the
// mutation batches, and the edge set left after every batch has been
// applied. Every batch is valid against the state the previous batches
// built (inserts are absent, deletes are present, no self-loops), and
// later batches may insert edges on vertices beyond the initial graph —
// one new vertex becomes eligible per batch, exercising the overlay's
// growth path.
func Stream(p StreamParams) (*graph.CSR, []Batch, []graph.Edge, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, nil, nil, err
	}
	base, err := PowerLaw(p.N, p.M, p.Exponent, p.Seed)
	if err != nil {
		return nil, nil, nil, err
	}

	type key struct{ u, v uint32 }
	canon := func(u, v uint32) key {
		if u > v {
			u, v = v, u
		}
		return key{u, v}
	}
	// The live edge set, as a map for membership and a slice for uniform
	// deletion sampling.
	live := make(map[key]int)
	var edges []key
	add := func(k key) {
		live[k] = len(edges)
		edges = append(edges, k)
	}
	del := func(k key) {
		i := live[k]
		last := len(edges) - 1
		edges[i] = edges[last]
		live[edges[i]] = i
		edges = edges[:last]
		delete(live, k)
	}
	for u := 0; u < base.NumVertices(); u++ {
		for _, v := range base.Neighbors(graph.Vertex(u)) {
			if uint32(u) < uint32(v) {
				add(key{uint32(u), uint32(v)})
			}
		}
	}

	// Churn randomness is a separate stream from the generator's, but
	// derived from the same seed.
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5eed5eed))
	batches := make([]Batch, p.Batches)
	for i := range batches {
		nDel := int(float64(p.BatchSize)*p.DeleteFrac + 0.5)
		if nDel > len(edges) {
			nDel = len(edges)
		}
		nIns := p.BatchSize - nDel
		b := &batches[i]

		// Deletes first, so the batch's inserts can re-create a just-deleted
		// edge in a later batch but never collide within this one.
		for j := 0; j < nDel; j++ {
			k := edges[rng.Intn(len(edges))]
			del(k)
			b.Delete = append(b.Delete, [2]uint32{k.u, k.v})
		}
		deleted := make(map[key]bool, nDel)
		for _, d := range b.Delete {
			deleted[canon(d[0], d[1])] = true
		}
		// One fresh vertex becomes eligible per batch.
		maxV := uint32(p.N + i + 1)
		for j := 0; j < nIns; j++ {
			placed := false
			for attempt := 0; attempt < 100000; attempt++ {
				u, v := rng.Uint32()%maxV, rng.Uint32()%maxV
				k := canon(u, v)
				if u == v || deleted[k] {
					continue
				}
				if _, ok := live[k]; ok {
					continue
				}
				add(k)
				b.Insert = append(b.Insert, [2]uint32{k.u, k.v})
				placed = true
				break
			}
			if !placed {
				return nil, nil, nil, fmt.Errorf(
					"gen: stream batch %d: graph on %d vertices too dense to place insert %d", i, maxV, j)
			}
		}
	}

	final := make([]graph.Edge, len(edges))
	for i, k := range edges {
		final[i] = graph.Edge{U: k.u, V: k.v}
	}
	sort.Slice(final, func(i, j int) bool {
		if final[i].U != final[j].U {
			return final[i].U < final[j].U
		}
		return final[i].V < final[j].V
	})
	return base, batches, final, nil
}

// WriteTrace writes batches to w as NDJSON, one batch per line — the
// replayable trace format (each line is a POST …/edges body).
func WriteTrace(w io.Writer, batches []Batch) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for _, b := range batches {
		if err := enc.Encode(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses an NDJSON trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Batch, error) {
	dec := json.NewDecoder(r)
	var batches []Batch
	for {
		var b Batch
		if err := dec.Decode(&b); err == io.EOF {
			return batches, nil
		} else if err != nil {
			return nil, fmt.Errorf("gen: bad trace line %d: %w", len(batches)+1, err)
		}
		batches = append(batches, b)
	}
}

package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pdtl/internal/graph"
)

// PowerLaw generates a Chung–Lu style random graph whose expected degree
// sequence follows a power law with the given exponent (typically 2–3 for
// social networks). n is the vertex count and m the number of edge samples.
// Higher exponents give lighter tails. This is the structural stand-in for
// the LiveJournal and Orkut datasets of Table I.
func PowerLaw(n, m int, exponent float64, seed int64) (*graph.CSR, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("gen: bad sizes n=%d m=%d", n, m)
	}
	if exponent <= 1 {
		return nil, fmt.Errorf("gen: power-law exponent %g must exceed 1", exponent)
	}
	rng := rand.New(rand.NewSource(seed))
	// Weight w_i ∝ (i+1)^(-1/(exponent-1)); cumulative table for sampling.
	cum := make([]float64, n)
	var total float64
	alpha := -1.0 / (exponent - 1)
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), alpha)
		cum[i] = total
	}
	sample := func() uint32 {
		r := rng.Float64() * total
		return uint32(sort.SearchFloat64s(cum, r))
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: sample(), V: sample()})
	}
	return graph.FromEdges(n, edges)
}

// CommunityParams tunes the community stand-in generator.
type CommunityParams struct {
	// Communities is the number of dense groups.
	Communities int
	// IntraProb is the probability that a sampled edge stays inside the
	// community of its first endpoint (high values → many triangles).
	IntraProb float64
	// Exponent is the power-law exponent of the global degree sequence.
	Exponent float64
}

// Community generates a power-law graph with planted community structure:
// most sampled edges connect vertices of the same community, producing the
// high triangle density of social graphs like Orkut. n vertices, m samples.
func Community(n, m int, p CommunityParams, seed int64) (*graph.CSR, error) {
	if p.Communities <= 0 {
		return nil, fmt.Errorf("gen: need at least one community")
	}
	if p.Exponent <= 1 {
		return nil, fmt.Errorf("gen: exponent %g must exceed 1", p.Exponent)
	}
	rng := rand.New(rand.NewSource(seed))
	comm := make([]int, n)
	for i := range comm {
		comm[i] = rng.Intn(p.Communities)
	}
	members := make([][]uint32, p.Communities)
	for v, c := range comm {
		members[c] = append(members[c], uint32(v))
	}
	cum := make([]float64, n)
	var total float64
	alpha := -1.0 / (p.Exponent - 1)
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), alpha)
		cum[i] = total
	}
	sample := func() uint32 {
		r := rng.Float64() * total
		return uint32(sort.SearchFloat64s(cum, r))
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := sample()
		var v uint32
		if rng.Float64() < p.IntraProb {
			group := members[comm[u]]
			if len(group) > 0 {
				v = group[rng.Intn(len(group))]
			} else {
				v = sample()
			}
		} else {
			v = sample()
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// WebParams tunes the web-graph stand-in generator.
type WebParams struct {
	// AvgDegree is the target average degree (Yahoo: 17.9).
	AvgDegree float64
	// Hubs is the number of extreme-degree vertices; the Yahoo graph's max
	// degree (7.6M on 1.4B vertices) is ~0.5% of |V|, far above its RMAT
	// peers relative to average degree.
	Hubs int
	// HubFraction is the fraction of |V| a single hub connects to.
	HubFraction float64
	// ChainFraction is the fraction of vertices arranged in long paths
	// (link chains), giving the web graph its large sparse periphery and
	// low triangle density per edge.
	ChainFraction float64
	// MidHubFraction is the fraction of vertices forming a middle tier of
	// popular pages (degree in the hundreds). Real web graphs have this
	// tier — Yahoo's post-orientation d*max is 1,540 against an average
	// degree of 17.9 — and it is what skews the oriented degree
	// distribution and the per-node work (Figures 4 and 8).
	MidHubFraction float64
	// MidDegree is the expected degree of a middle-tier page.
	MidDegree int
}

// DefaultWeb mirrors the Yahoo webgraph's structural signature at small
// scale: sparse average degree, a handful of enormous hubs, and a long
// chain-like periphery. This combination is what makes the paper's Yahoo
// runs scale poorly (Figures 4 and 8): after orientation nearly all
// intersection work concentrates at the hub lists.
var DefaultWeb = WebParams{
	AvgDegree:      16,
	Hubs:           4,
	HubFraction:    0.02,
	ChainFraction:  0.5,
	MidHubFraction: 0.004,
	MidDegree:      192,
}

// Web generates a web-graph stand-in with n vertices.
func Web(n int, p WebParams, seed int64) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: bad size n=%d", n)
	}
	if p.AvgDegree <= 0 || p.HubFraction < 0 || p.ChainFraction < 0 || p.ChainFraction > 1 {
		return nil, fmt.Errorf("gen: bad web params %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, int(float64(n)*p.AvgDegree/2))

	// Chain periphery: consecutive ids form paths of random length 8–64.
	chainEnd := int(p.ChainFraction * float64(n))
	for v := 0; v < chainEnd-1; v++ {
		if rng.Intn(32) == 0 {
			continue // break the chain occasionally
		}
		edges = append(edges, graph.Edge{U: uint32(v), V: uint32(v + 1)})
	}

	// Hubs: the first p.Hubs vertices after the chain region connect to a
	// HubFraction sample of all vertices.
	hubTargets := int(p.HubFraction * float64(n))
	for h := 0; h < p.Hubs && chainEnd+h < n; h++ {
		hub := uint32(chainEnd + h)
		for i := 0; i < hubTargets; i++ {
			edges = append(edges, graph.Edge{U: hub, V: uint32(rng.Intn(n))})
		}
	}

	// Middle tier: popular pages with degrees in the hundreds, linked
	// both to random pages and preferentially to each other (directories
	// linking directories), which concentrates post-orientation in-degree.
	midCount := int(p.MidHubFraction * float64(n))
	midStart := chainEnd + p.Hubs
	for i := 0; i < midCount && midStart+i < n; i++ {
		mid := uint32(midStart + i)
		for j := 0; j < p.MidDegree; j++ {
			var v uint32
			if midCount > 1 && rng.Float64() < 0.3 {
				v = uint32(midStart + rng.Intn(midCount))
			} else {
				v = uint32(rng.Intn(n))
			}
			edges = append(edges, graph.Edge{U: mid, V: v})
		}
	}

	// Power-law body for the remaining edge budget, with a mild locality
	// bias (web pages link within their site) that yields some triangles.
	remaining := int(float64(n)*p.AvgDegree/2) - len(edges)
	for i := 0; i < remaining; i++ {
		u := rng.Intn(n)
		var v int
		if rng.Float64() < 0.6 {
			span := 1 + rng.Intn(200) // nearby page
			if rng.Intn(2) == 0 {
				v = u - span
			} else {
				v = u + span
			}
			if v < 0 || v >= n {
				v = rng.Intn(n)
			}
		} else {
			v = rng.Intn(n)
		}
		edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
	}
	return graph.FromEdges(n, edges)
}

package scan

import (
	"math/rand"
	"testing"

	"pdtl/internal/graph"
)

// TestCountKernelsAgreeWithIntersect holds every kernel's count-only path
// to its listing path: identical count AND identical steps on the same
// operands (the two walk the same comparisons, which keeps CmpOps
// comparable between counting and listing runs).
func TestCountKernelsAgreeWithIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		la, lb := rng.Intn(400), rng.Intn(400)
		switch trial % 4 {
		case 1:
			la = rng.Intn(5)
		case 2:
			lb = rng.Intn(5)
		case 3:
			la, lb = rng.Intn(3), 100+rng.Intn(300)
		}
		universe := 1 + rng.Intn(800)
		if la > universe {
			la = universe
		}
		if lb > universe {
			lb = universe
		}
		a := sortedSet(rng, la, universe)
		b := sortedSet(rng, lb, universe)
		for _, k := range []Kernel{Merge, Gallop, Adaptive, Compressed, Cover} {
			var emitted uint64
			wantSteps := k.Intersect(a, b, func(graph.Vertex) { emitted++ })
			count, steps := k.(CountKernel).Count(a, b)
			if count != emitted {
				t.Fatalf("trial %d: %s Count = %d, Intersect emitted %d", trial, k.Kind(), count, emitted)
			}
			if steps != wantSteps {
				t.Fatalf("trial %d: %s Count took %d steps, Intersect %d", trial, k.Kind(), steps, wantSteps)
			}
		}
	}
}

// denseList builds a list dense enough inside [base, base+span) that the
// encoder chooses bitmap segments; keep is the per-slot inclusion chance
// out of 4.
func denseList(rng *rand.Rand, base graph.Vertex, span, keep int) []graph.Vertex {
	var out []graph.Vertex
	for o := 0; o < span; o++ {
		if rng.Intn(4) < keep {
			out = append(out, base+graph.Vertex(o))
		}
	}
	return out
}

// TestCountCompressedMatchesListing drives CountCompressed over random
// mixed (varint and bitmap) compressed lists and checks count, skipped,
// and error behavior against IntersectCompressed on the same operands.
func TestCountCompressedMatchesListing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bk := Compressed.(BlockKernel)
	cbk := Compressed.(CountBlockKernel)
	ar := NewArena()
	var enc graph.ListEncoder
	scratch := make([]graph.Vertex, 0, graph.SegmentEntries)
	for trial := 0; trial < 300; trial++ {
		var a []graph.Vertex
		if trial%2 == 0 {
			a = denseList(rng, graph.Vertex(rng.Intn(500)), 300+rng.Intn(900), 3)
		} else {
			ua := 700 + rng.Intn(2000)
			a = sortedSet(rng, rng.Intn(700), ua)
		}
		ub := 300 + rng.Intn(2000)
		b := sortedSet(rng, rng.Intn(300), ub)
		cl := graph.CompressedList{Degree: len(a), Data: enc.Append(nil, a)}
		var emitted uint64
		_, wantSkipped, err := bk.IntersectCompressed(cl, b, scratch, func(graph.Vertex) { emitted++ })
		if err != nil {
			t.Fatalf("trial %d: IntersectCompressed: %v", trial, err)
		}
		count, _, skipped, err := cbk.CountCompressed(cl, b, ar)
		if err != nil {
			t.Fatalf("trial %d: CountCompressed: %v", trial, err)
		}
		if count != emitted {
			t.Fatalf("trial %d: CountCompressed = %d, IntersectCompressed emitted %d (|a|=%d |b|=%d)",
				trial, count, emitted, len(a), len(b))
		}
		if skipped != wantSkipped {
			t.Fatalf("trial %d: CountCompressed skipped %d segments, listing path %d", trial, skipped, wantSkipped)
		}
	}
}

// TestBitmapWordKernelEquivalence pins the word-parallel bitmap counting
// against mergeKernel on segment-boundary-straddling operands: a's dense
// run spans multiple 256-entry segments (bitmap payloads with partial tail
// words), and b is chosen to hit every regime — a consecutive run
// straddling a segment boundary (masked-popcount path on both sides),
// sparse scattered probes, single elements at exact segment edges, and
// fully disjoint ranges.
func TestBitmapWordKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cbk := Compressed.(CountBlockKernel)
	ar := NewArena()
	var enc graph.ListEncoder

	// ~900 values dense in [1000, 2100): multiple full bitmap segments
	// whose spans straddle word boundaries.
	a := denseList(rng, 1000, 1100, 3)
	cl := graph.CompressedList{Degree: len(a), Data: enc.Append(nil, a)}

	run := func(lo, n int) []graph.Vertex { // consecutive run [lo, lo+n)
		out := make([]graph.Vertex, n)
		for i := range out {
			out[i] = graph.Vertex(lo + i)
		}
		return out
	}
	cases := [][]graph.Vertex{
		run(990, 400),                // dense run straddling the first segment boundary
		run(int(a[250])-3, 600),      // run centered on a mid-list segment edge
		run(int(a[len(a)-1])-10, 40), // run off the tail
		{a[0]}, {a[len(a)-1]},        // exact endpoints
		{a[0] - 1, a[len(a)-1] + 1},       // misses on both sides
		run(0, 50),                        // fully below
		run(int(a[len(a)-1])+100, 50),     // fully above
		sortedSet(rng, 200, 3000),         // sparse scattered probes
		append(run(1020, 64), 2090, 2095), /* run + outliers breaks the consecutive test */
	}
	for ci, b := range cases {
		wantCount, _ := mergeKernel{}.Count(a, b)
		wordsBefore := ar.WordOps
		count, _, _, err := cbk.CountCompressed(cl, b, ar)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if count != wantCount {
			t.Fatalf("case %d: word kernel counted %d, merge %d (b=%v…)", ci, count, wantCount, b[:min(len(b), 8)])
		}
		// Word ops must advance whenever some b element lands inside a's
		// value hull (a segment then survives the header tests and pays
		// payload work); operands that merely bracket the hull are
		// header-skipped wholesale, legitimately word-free.
		anyIn := false
		for _, y := range b {
			if y >= a[0] && y <= a[len(a)-1] {
				anyIn = true
				break
			}
		}
		if anyIn && ar.WordOps == wordsBefore {
			t.Errorf("case %d: in-range operands advanced no word ops", ci)
		}
	}
}

// TestBlockKernelSharedScratch is the scratch-ownership regression test:
// one scratch buffer shared across back-to-back IntersectCompressed calls
// for two different vertices must give each call the same result as a
// fresh buffer would — the kernel may not depend on (or be corrupted by)
// contents surviving between calls. An undersized buffer (nil) must also
// work: the contract replaces it rather than growing the caller's array.
func TestBlockKernelSharedScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bk := Compressed.(BlockKernel)
	var enc graph.ListEncoder

	a1 := sortedSet(rng, 600, 2000)
	a2 := denseList(rng, 300, 900, 3)
	cl1 := graph.CompressedList{Degree: len(a1), Data: enc.Append(nil, a1)}
	cl2 := graph.CompressedList{Degree: len(a2), Data: enc.Append(nil, a2)}
	b1 := sortedSet(rng, 250, 2000)
	b2 := sortedSet(rng, 250, 1500)

	gather := func(cl graph.CompressedList, b, scratch []graph.Vertex) []graph.Vertex {
		var out []graph.Vertex
		if _, _, err := bk.IntersectCompressed(cl, b, scratch, func(w graph.Vertex) {
			out = append(out, w)
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want1 := gather(cl1, b1, make([]graph.Vertex, 0, graph.SegmentEntries))
	want2 := gather(cl2, b2, make([]graph.Vertex, 0, graph.SegmentEntries))
	if len(want1) == 0 || len(want2) == 0 {
		t.Fatal("degenerate fixtures: empty intersections prove nothing")
	}

	for _, scratch := range [][]graph.Vertex{
		make([]graph.Vertex, 0, graph.SegmentEntries), // contract-sized, shared
		nil,                        // undersized: the kernel must substitute its own
		make([]graph.Vertex, 0, 3), // undersized but non-nil
	} {
		got1 := gather(cl1, b1, scratch)
		got2 := gather(cl2, b2, scratch) // same buffer, second vertex
		got1again := gather(cl1, b1, scratch)
		for i, pair := range [][2][]graph.Vertex{{want1, got1}, {want2, got2}, {want1, got1again}} {
			w, g := pair[0], pair[1]
			if len(w) != len(g) {
				t.Fatalf("cap %d call %d: %d matches, want %d", cap(scratch), i, len(g), len(w))
			}
			for j := range w {
				if w[j] != g[j] {
					t.Fatalf("cap %d call %d element %d: %d, want %d", cap(scratch), i, j, g[j], w[j])
				}
			}
		}
	}
}

// TestCountCompressedZeroAlloc pins the arena promise: with a warmed-up
// arena, the count-only compressed path allocates nothing per
// intersection.
func TestCountCompressedZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cbk := Compressed.(CountBlockKernel)
	ar := NewArena()
	var enc graph.ListEncoder
	a := denseList(rng, 100, 1200, 3)
	cl := graph.CompressedList{Degree: len(a), Data: enc.Append(nil, a)}
	b := sortedSet(rng, 400, 1500)
	if _, _, _, err := cbk.CountCompressed(cl, b, ar); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := cbk.CountCompressed(cl, b, ar); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("CountCompressed allocates %v objects per call, want 0", allocs)
	}
	// The plain count kernels are trivially allocation-free too.
	for _, k := range []Kernel{Merge, Gallop, Adaptive, Compressed, Cover} {
		ck := k.(CountKernel)
		allocs := testing.AllocsPerRun(100, func() { ck.Count(a, b) })
		if allocs != 0 {
			t.Errorf("%s.Count allocates %v objects per call, want 0", k.Kind(), allocs)
		}
	}
}

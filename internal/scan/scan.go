// Package scan is the pluggable execution layer under the MGT runners: it
// decides *how* adjacency data reaches a runner (the ScanSource) and *how*
// two sorted lists are intersected (the IntersectKernel). PDTL's engine
// (Section IV-B of the paper) gives every one of the P runners its own
// end-to-end sequential scan of the adjacency file and hardwires the merge
// intersection of Section IV-A; extracting both decisions behind interfaces
// lets the engine trade them per run:
//
//   - Buffered — the paper's configuration: every runner performs its own
//     buffered sequential scan (P full-file scans per round of passes,
//     deduplicated only by the OS page cache).
//   - Shared — one sequential reader broadcasts each block of the
//     adjacency file to all subscribed runners through per-runner ring
//     buffers, turning P concurrent full-file scans into one physical scan
//     (the explicit scan sharing that engineering work on distributed
//     triangle counting shows is where the I/O constant factors live).
//   - Mem — the whole adjacency array pinned in RAM for graphs that fit;
//     scan passes and window loads cost no I/O at all.
//
// All sources present identical semantics: a full pass yields every vertex
// in order with its out-list split into sorted segments of at most maxList
// entries (exactly like graph.Scanner, whose segmentation removes the
// paper's small-degree assumption), and random access reads any entry
// range. Triangle output is therefore bitwise identical across sources —
// the cross-check tests in internal/core assert this.
package scan

import (
	"context"
	"fmt"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// SourceKind names a ScanSource implementation, as used by CLI flags, the
// cluster wire format, and core.Options.
type SourceKind string

const (
	// SourceAuto defers the choice to the engine: Shared when more than
	// one runner shares the source, Buffered otherwise.
	SourceAuto SourceKind = "auto"
	// SourceBuffered is one private buffered sequential scan per runner
	// pass (the paper's configuration).
	SourceBuffered SourceKind = "buffered"
	// SourceShared is one physical sequential scan broadcast to all
	// concurrently-scanning runners.
	SourceShared SourceKind = "shared"
	// SourceMem holds the whole adjacency array in memory.
	SourceMem SourceKind = "mem"
)

// ParseSource validates a source name from a flag or wire message. The
// empty string means SourceAuto.
func ParseSource(s string) (SourceKind, error) {
	switch SourceKind(s) {
	case "":
		return SourceAuto, nil
	case SourceAuto, SourceBuffered, SourceShared, SourceMem:
		return SourceKind(s), nil
	}
	return "", fmt.Errorf("scan: unknown scan source %q (want auto, buffered, shared, or mem)", s)
}

// Resolve maps SourceAuto to a concrete kind for a run with the given
// number of runners; concrete kinds pass through unchanged.
func (k SourceKind) Resolve(runners int) SourceKind {
	if k != SourceAuto && k != "" {
		return k
	}
	if runners > 1 {
		return SourceShared
	}
	return SourceBuffered
}

// Config parameterizes a source.
type Config struct {
	// BufBytes is the sequential read buffer (Buffered) or broadcast block
	// size (Shared); non-positive selects 1 MiB.
	BufBytes int
	// Counter receives the I/O the source performs on its own behalf —
	// the Shared broadcaster's single scan, or the Mem preload. Per-runner
	// I/O (window loads, large-vertex re-reads, Buffered scans) is charged
	// to the counter each Handle was opened with instead. Nil allocates a
	// private counter.
	Counter *ioacct.Counter
	// Ctx bounds the source's lifetime: a source is created for exactly one
	// run, so the run's context cancels it. On cancellation the Shared
	// broadcaster abandons its round loop and unblocks every runner waiting
	// on a ring buffer or round quorum, and the Mem preload stops between
	// blocks; blocked operations return the context's error. Nil means
	// context.Background() (never cancelled).
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.BufBytes <= 0 {
		c.BufBytes = 1 << 20
	}
	// Blocks must hold whole entries: the mem preload and the shared
	// broadcaster both decode block-by-block, so an unaligned size would
	// split an entry across blocks. Round up to the next entry boundary.
	if rem := c.BufBytes % graph.EntrySize; rem != 0 {
		c.BufBytes += graph.EntrySize - rem
	}
	if c.Counter == nil {
		c.Counter = ioacct.NewCounter(0)
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// Source supplies adjacency data for one oriented store to a set of
// concurrent runners. A Source is safe for concurrent Handle calls; it is
// owned (created and closed) by the engine, never by a runner.
type Source interface {
	// Handle opens a per-runner accessor whose I/O is charged to c (nil
	// allocates a private counter). Handles are not safe for concurrent
	// use; each runner gets its own and must Close it as soon as it is
	// done — a Shared source uses the set of open handles to decide when a
	// broadcast round can start.
	Handle(c *ioacct.Counter) (Handle, error)
	// IO reports the I/O performed by the source itself (see
	// Config.Counter).
	IO() ioacct.Stats
	// Kind reports the concrete source kind.
	Kind() SourceKind
	// Close releases the source. All handles must be closed first.
	Close() error
}

// Handle is one runner's access to the adjacency data.
type Handle interface {
	// Scan starts a full sequential pass over the adjacency file. Lists
	// longer than maxList entries are yielded in consecutive sorted
	// segments under the same vertex (maxList <= 0 means whole lists). At
	// most one Scan may be in flight per handle.
	Scan(maxList int) (Scan, error)
	// ReadEntries fills dst with the adjacency entries
	// [pos, pos+len(dst)) — the random-access path of the window loads
	// and large-vertex re-reads.
	ReadEntries(dst []graph.Vertex, pos uint64) error
	// Close releases the handle.
	Close() error
}

// CompressedScan is the optional Scan extension of compressed stores: the
// pass can deliver each vertex's list in its encoded form, which the
// block-skipping BlockKernel intersects without full decompression. Every
// source's compressed scan implements it (the concrete type is
// *graph.CompressedSeqScan in all three cases); plain-store scans do not.
// NextCompressed and Next consume the same pass and must not be mixed.
type CompressedScan interface {
	NextCompressed() (u graph.Vertex, list graph.CompressedList, ok bool)
}

// Scan is one sequential pass in progress. graph.SeqScanner satisfies it.
type Scan interface {
	// Next returns the next vertex and its list (or list segment); the
	// returned slice is only valid until the following call. ok is false
	// at the end of the pass or on error — check Err.
	Next() (u graph.Vertex, list []graph.Vertex, ok bool)
	// Err reports the first error encountered by Next.
	Err() error
	// Close abandons the pass; it must be called even after a complete
	// pass.
	Close() error
}

// New creates a source of the given concrete kind over the oriented store
// d. SourceAuto must be Resolved first.
func New(kind SourceKind, d *graph.Disk, cfg Config) (Source, error) {
	cfg = cfg.withDefaults()
	switch kind {
	case SourceBuffered:
		return newBuffered(d, cfg), nil
	case SourceShared:
		return newShared(d, cfg), nil
	case SourceMem:
		return newMem(d, cfg)
	case SourceAuto:
		return nil, fmt.Errorf("scan: SourceAuto must be resolved before New (call Resolve)")
	}
	return nil, fmt.Errorf("scan: unknown source kind %q", kind)
}

package scan

import (
	"math/rand"
	"sort"
	"testing"

	"pdtl/internal/graph"
)

// sortedSet builds a random strictly-increasing vertex list.
func sortedSet(rng *rand.Rand, n, universe int) []graph.Vertex {
	seen := make(map[graph.Vertex]bool, n)
	for len(seen) < n {
		seen[graph.Vertex(rng.Intn(universe))] = true
	}
	out := make([]graph.Vertex, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collect(k Kernel, a, b []graph.Vertex) []graph.Vertex {
	var out []graph.Vertex
	k.Intersect(a, b, func(w graph.Vertex) { out = append(out, w) })
	return out
}

// TestKernelsAgreeWithMerge checks that gallop and adaptive emit exactly
// the merge kernel's result — same elements, same (ascending) order — over
// random list pairs of wildly different length ratios, including the empty
// and disjoint cases.
func TestKernelsAgreeWithMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		la := rng.Intn(120)
		lb := rng.Intn(120)
		switch trial % 4 { // force skew in both directions
		case 1:
			la = rng.Intn(5)
		case 2:
			lb = rng.Intn(5)
		case 3:
			la, lb = rng.Intn(3), 60+rng.Intn(60)
		}
		universe := 1 + rng.Intn(200)
		if la > universe {
			la = universe
		}
		if lb > universe {
			lb = universe
		}
		a := sortedSet(rng, la, universe)
		b := sortedSet(rng, lb, universe)
		want := collect(Merge, a, b)
		for _, k := range []Kernel{Gallop, Adaptive, Compressed, Cover} {
			got := collect(k, a, b)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s found %d common, merge found %d (a=%v b=%v)",
					trial, k.Kind(), len(got), len(want), a, b)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: %s element %d = %d, merge = %d",
						trial, k.Kind(), i, got[i], want[i])
				}
			}
		}
		// The direct-on-compressed path must emit the same intersection.
		var enc graph.ListEncoder
		cl := graph.CompressedList{Degree: len(a), Data: enc.Append(nil, a)}
		scratch := make([]graph.Vertex, 0, graph.SegmentEntries)
		var got []graph.Vertex
		_, _, err := Compressed.(BlockKernel).IntersectCompressed(cl, b, scratch, func(w graph.Vertex) {
			got = append(got, w)
		})
		if err != nil {
			t.Fatalf("trial %d: IntersectCompressed: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: IntersectCompressed found %d common, merge found %d (a=%v b=%v)",
				trial, len(got), len(want), a, b)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: IntersectCompressed element %d = %d, merge = %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestCompressedSkipsDisjointSegments pins the point of the header test: a
// compressed list whose segments all lie outside b's range is rejected
// without decoding a single payload.
func TestCompressedSkipsDisjointSegments(t *testing.T) {
	a := make([]graph.Vertex, 1000) // four segments, values 0..999
	for i := range a {
		a[i] = graph.Vertex(i)
	}
	var enc graph.ListEncoder
	cl := graph.CompressedList{Degree: len(a), Data: enc.Append(nil, a)}
	b := []graph.Vertex{5000, 6000}
	scratch := make([]graph.Vertex, 0, graph.SegmentEntries)
	steps, skipped, err := Compressed.(BlockKernel).IntersectCompressed(cl, b, scratch, func(graph.Vertex) {
		t.Fatal("emitted a match from disjoint operands")
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 4 {
		t.Errorf("skipped %d segments, want all 4", skipped)
	}
	if steps > 8 {
		t.Errorf("spent %d steps on fully disjoint operands, want ≤ 8 header tests", steps)
	}
	// Cover rejects the same pair in one step.
	if s := Cover.Intersect(a, b, func(graph.Vertex) { t.Fatal("cover emitted") }); s != 1 {
		t.Errorf("cover spent %d steps on disjoint operands, want 1", s)
	}
}

// TestGallopCheaperOnSkew checks the point of the gallop kernel: on badly
// skewed operands its step count must be far below the merge's, which
// walks the long list linearly.
func TestGallopCheaperOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	long := sortedSet(rng, 100000, 1<<22)
	short := sortedSet(rng, 16, 1<<22)
	none := func(graph.Vertex) {}
	mergeSteps := Merge.Intersect(short, long, none)
	gallopSteps := Gallop.Intersect(short, long, none)
	if gallopSteps*100 > mergeSteps {
		t.Errorf("gallop took %d steps vs merge %d; want ≥100× fewer on 16-vs-100000 skew",
			gallopSteps, mergeSteps)
	}
	adaptiveSteps := Adaptive.Intersect(short, long, none)
	if adaptiveSteps != gallopSteps {
		t.Errorf("adaptive took %d steps on skewed pair, want the gallop path's %d", adaptiveSteps, gallopSteps)
	}
	// Near-equal lengths must take the merge path.
	a := sortedSet(rng, 500, 4000)
	b := sortedSet(rng, 400, 4000)
	if got, want := Adaptive.Intersect(a, b, none), Merge.Intersect(a, b, none); got != want {
		t.Errorf("adaptive took %d steps on balanced pair, want the merge path's %d", got, want)
	}
}

func TestKernelEmptyOperands(t *testing.T) {
	a := []graph.Vertex{1, 2, 3}
	for _, k := range []Kernel{Merge, Gallop, Adaptive, Compressed, Cover} {
		if got := collect(k, nil, a); got != nil {
			t.Errorf("%s on empty a emitted %v", k.Kind(), got)
		}
		if got := collect(k, a, nil); got != nil {
			t.Errorf("%s on empty b emitted %v", k.Kind(), got)
		}
	}
}

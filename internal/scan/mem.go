package scan

import (
	"bufio"
	"fmt"
	"io"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// memSource pins the whole adjacency array in RAM: the file is read once at
// construction (charged to the source counter) and every scan pass and
// window load afterwards is a memory copy, skipping the pass machinery's
// I/O entirely. Use it when 4·|E*| bytes fit comfortably in memory; the
// pass structure (and thus the triangle output) is unchanged.
type memSource struct {
	d   *graph.Disk
	cfg Config
	adj []graph.Vertex
}

func newMem(d *graph.Disk, cfg Config) (*memSource, error) {
	f, err := d.OpenAdj()
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(ioacct.NewReader(f, cfg.Counter), cfg.BufBytes)
	adj := make([]graph.Vertex, d.Meta.AdjEntries)
	raw := make([]byte, cfg.BufBytes)
	for off := 0; off < len(adj); {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
		want := len(raw)
		if rem := (len(adj) - off) * graph.EntrySize; rem < want {
			want = rem
		}
		if _, err := io.ReadFull(br, raw[:want]); err != nil {
			return nil, fmt.Errorf("scan: preload adjacency: %w", err)
		}
		n := want / graph.EntrySize
		decodeEntries(adj[off:off+n], raw[:want])
		off += n
	}
	return &memSource{d: d, cfg: cfg, adj: adj}, nil
}

func (s *memSource) Kind() SourceKind { return SourceMem }

func (s *memSource) IO() ioacct.Stats { return s.cfg.Counter.Snapshot() }

func (s *memSource) Close() error { return nil }

func (s *memSource) Handle(c *ioacct.Counter) (Handle, error) {
	return &memHandle{src: s}, nil
}

type memHandle struct {
	src *memSource
}

func (h *memHandle) Scan(maxList int) (Scan, error) {
	return &memScan{src: h.src, cur: graph.NewSegCursor(h.src.d, 0, maxList)}, nil
}

func (h *memHandle) ReadEntries(dst []graph.Vertex, pos uint64) error {
	end := pos + uint64(len(dst))
	if end > uint64(len(h.src.adj)) {
		return fmt.Errorf("scan: read entries [%d,%d) beyond %d in-memory entries", pos, end, len(h.src.adj))
	}
	copy(dst, h.src.adj[pos:end])
	return nil
}

func (h *memHandle) Close() error { return nil }

// memScan yields adjacency lists directly out of the in-memory array —
// zero copy — with graph.Scanner's segmentation semantics via
// graph.SegCursor.
type memScan struct {
	src *memSource
	cur graph.SegCursor
	pos uint64 // entry cursor into adj
}

func (sc *memScan) Next() (graph.Vertex, []graph.Vertex, bool) {
	u, d, ok := sc.cur.Step()
	if !ok {
		return 0, nil, false
	}
	list := sc.src.adj[sc.pos : sc.pos+uint64(d)]
	sc.pos += uint64(d)
	return u, list, true
}

func (sc *memScan) Err() error { return nil }

func (sc *memScan) Close() error { return nil }

package scan

import (
	"bufio"
	"fmt"
	"io"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// memSource pins the whole adjacency data in RAM: the file is read once at
// construction (charged to the source counter) and every scan pass and
// window load afterwards is a memory copy, skipping the pass machinery's
// I/O entirely. For a plain store that is the decoded entry array
// (4·|E*| bytes); for a compressed store the raw .cadj data area is kept
// compressed in memory — the same factor the format saves on disk it saves
// in RAM, and scans hand out zero-copy compressed views. The pass structure
// (and thus the triangle output) is unchanged either way.
type memSource struct {
	d     *graph.Disk
	cfg   Config
	adj   []graph.Vertex // plain stores
	cdata []byte         // compressed stores: the .cadj data area
}

func newMem(d *graph.Disk, cfg Config) (*memSource, error) {
	f, err := d.OpenAdjData()
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(ioacct.NewReader(f, cfg.Counter), cfg.BufBytes)
	if d.Format() == graph.FormatCompressed {
		cdata := make([]byte, d.AdjBytes())
		for off := 0; off < len(cdata); {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, err
			}
			want := cfg.BufBytes
			if rem := len(cdata) - off; rem < want {
				want = rem
			}
			if _, err := io.ReadFull(br, cdata[off:off+want]); err != nil {
				return nil, fmt.Errorf("scan: preload compressed adjacency: %w", err)
			}
			off += want
		}
		return &memSource{d: d, cfg: cfg, cdata: cdata}, nil
	}
	adj := make([]graph.Vertex, d.Meta.AdjEntries)
	raw := make([]byte, cfg.BufBytes)
	for off := 0; off < len(adj); {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
		want := len(raw)
		if rem := (len(adj) - off) * graph.EntrySize; rem < want {
			want = rem
		}
		if _, err := io.ReadFull(br, raw[:want]); err != nil {
			return nil, fmt.Errorf("scan: preload adjacency: %w", err)
		}
		n := want / graph.EntrySize
		decodeEntries(adj[off:off+n], raw[:want])
		off += n
	}
	return &memSource{d: d, cfg: cfg, adj: adj}, nil
}

func (s *memSource) Kind() SourceKind { return SourceMem }

func (s *memSource) IO() ioacct.Stats { return s.cfg.Counter.Snapshot() }

func (s *memSource) Close() error { return nil }

func (s *memSource) Handle(c *ioacct.Counter) (Handle, error) {
	h := &memHandle{src: s}
	if s.cdata != nil {
		h.scratch = make([]graph.Vertex, 0, graph.SegmentEntries)
	}
	return h, nil
}

type memHandle struct {
	src     *memSource
	scratch []graph.Vertex // segment decode scratch (compressed stores)
}

func (h *memHandle) Scan(maxList int) (Scan, error) {
	if h.src.cdata != nil {
		sc, err := h.src.d.NewCompressedMemScan(h.src.cdata)
		if err != nil {
			return nil, err
		}
		sc.SetMaxList(maxList)
		return sc, nil
	}
	return &memScan{src: h.src, cur: graph.NewSegCursor(h.src.d, 0, maxList)}, nil
}

func (h *memHandle) ReadEntries(dst []graph.Vertex, pos uint64) error {
	if h.src.cdata != nil {
		return h.src.d.DecodeEntries(h.src.cdata, dst, pos, h.scratch)
	}
	end := pos + uint64(len(dst))
	if end > uint64(len(h.src.adj)) {
		return fmt.Errorf("scan: read entries [%d,%d) beyond %d in-memory entries", pos, end, len(h.src.adj))
	}
	copy(dst, h.src.adj[pos:end])
	return nil
}

func (h *memHandle) Close() error { return nil }

// memScan yields adjacency lists directly out of the in-memory array —
// zero copy — with graph.Scanner's segmentation semantics via
// graph.SegCursor.
type memScan struct {
	src *memSource
	cur graph.SegCursor
	pos uint64 // entry cursor into adj
}

func (sc *memScan) Next() (graph.Vertex, []graph.Vertex, bool) {
	u, d, ok := sc.cur.Step()
	if !ok {
		return 0, nil, false
	}
	list := sc.src.adj[sc.pos : sc.pos+uint64(d)]
	sc.pos += uint64(d)
	return u, list, true
}

func (sc *memScan) Err() error { return nil }

func (sc *memScan) Close() error { return nil }

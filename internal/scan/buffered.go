package scan

import (
	"encoding/binary"
	"fmt"
	"os"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// bufferedSource is the paper's configuration: each handle owns a file
// descriptor for random access, and every Scan opens a private buffered
// sequential read of the whole adjacency file. With P runners doing R
// passes each, the file is read P·R times (modulo the OS page cache).
type bufferedSource struct {
	d   *graph.Disk
	cfg Config
}

func newBuffered(d *graph.Disk, cfg Config) *bufferedSource {
	return &bufferedSource{d: d, cfg: cfg}
}

func (s *bufferedSource) Kind() SourceKind { return SourceBuffered }

func (s *bufferedSource) IO() ioacct.Stats { return s.cfg.Counter.Snapshot() }

func (s *bufferedSource) Close() error { return nil }

func (s *bufferedSource) Handle(c *ioacct.Counter) (Handle, error) {
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	ra, err := openRandomAccess(s.d, c)
	if err != nil {
		return nil, err
	}
	return &bufferedHandle{src: s, c: c, ra: ra}, nil
}

type bufferedHandle struct {
	src *bufferedSource
	c   *ioacct.Counter
	ra  *randomAccess
}

func (h *bufferedHandle) Scan(maxList int) (Scan, error) {
	sc, err := h.src.d.NewScanner(h.c, h.src.cfg.BufBytes)
	if err != nil {
		return nil, err
	}
	sc.SetMaxList(maxList)
	return sc, nil
}

func (h *bufferedHandle) ReadEntries(dst []graph.Vertex, pos uint64) error {
	return h.ra.readEntries(dst, pos)
}

func (h *bufferedHandle) Close() error { return h.ra.close() }

// randomAccess reads entry ranges from the adjacency file through an
// accounting ReaderAt; it is the shared random-access half of the Buffered
// and Shared handles.
type randomAccess struct {
	f       *os.File
	r       *ioacct.ReaderAt
	byteBuf []byte
}

func openRandomAccess(d *graph.Disk, c *ioacct.Counter) (*randomAccess, error) {
	f, err := d.OpenAdj()
	if err != nil {
		return nil, err
	}
	return &randomAccess{f: f, r: ioacct.NewReaderAt(f, c)}, nil
}

func (ra *randomAccess) readEntries(dst []graph.Vertex, pos uint64) error {
	need := len(dst) * graph.EntrySize
	if cap(ra.byteBuf) < need {
		ra.byteBuf = make([]byte, need)
	}
	raw := ra.byteBuf[:need]
	if _, err := ra.r.ReadAt(raw, int64(pos)*graph.EntrySize); err != nil {
		return fmt.Errorf("scan: read entries [%d,%d): %w", pos, pos+uint64(len(dst)), err)
	}
	decodeEntries(dst, raw)
	return nil
}

func (ra *randomAccess) close() error { return ra.f.Close() }

// decodeEntries decodes len(dst) little-endian adjacency entries from raw
// — the one place the on-disk entry encoding is interpreted by the scan
// sources.
func decodeEntries(dst []graph.Vertex, raw []byte) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(raw[i*graph.EntrySize:])
	}
}

package scan

import (
	"encoding/binary"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// bufferedSource is the paper's configuration: each handle owns a
// random-access reader, and every Scan opens a private buffered sequential
// read of the whole adjacency data. With P runners doing R passes each, the
// data is read P·R times (modulo the OS page cache). Both store formats are
// served — graph.NewScanner and graph.OpenRandom pick the decoder matching
// the store, so compressed stores stream compressed blocks here too.
type bufferedSource struct {
	d   *graph.Disk
	cfg Config
}

func newBuffered(d *graph.Disk, cfg Config) *bufferedSource {
	return &bufferedSource{d: d, cfg: cfg}
}

func (s *bufferedSource) Kind() SourceKind { return SourceBuffered }

func (s *bufferedSource) IO() ioacct.Stats { return s.cfg.Counter.Snapshot() }

func (s *bufferedSource) Close() error { return nil }

func (s *bufferedSource) Handle(c *ioacct.Counter) (Handle, error) {
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	ra, err := s.d.OpenRandom(c)
	if err != nil {
		return nil, err
	}
	return &bufferedHandle{src: s, c: c, ra: ra}, nil
}

type bufferedHandle struct {
	src *bufferedSource
	c   *ioacct.Counter
	ra  graph.RandomReader
}

func (h *bufferedHandle) Scan(maxList int) (Scan, error) {
	sc, err := h.src.d.NewScanner(h.c, h.src.cfg.BufBytes)
	if err != nil {
		return nil, err
	}
	sc.SetMaxList(maxList)
	return sc, nil
}

func (h *bufferedHandle) ReadEntries(dst []graph.Vertex, pos uint64) error {
	return h.ra.ReadEntries(dst, pos)
}

func (h *bufferedHandle) Close() error { return h.ra.Close() }

// decodeEntries decodes len(dst) little-endian adjacency entries from raw
// — the plain-format entry decoding used by the mem preload.
func decodeEntries(dst []graph.Vertex, raw []byte) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(raw[i*graph.EntrySize:])
	}
}

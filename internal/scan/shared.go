package scan

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// sharedRingBlocks is the per-subscriber ring-buffer depth, in broadcast
// blocks. A subscriber that falls more than this far behind stalls the
// broadcaster (and with it the round) until it catches up — the convoy is
// inherent to sharing one physical scan.
const sharedRingBlocks = 4

// errSourceClosed reports a subscription outliving its source.
var errSourceClosed = errors.New("scan: shared source closed")

// sharedSource turns the P concurrent full-file scans of a round of MGT
// passes into one: a single broadcaster goroutine reads the adjacency file
// sequentially and fans every block out to all subscribed runners through
// per-runner ring buffers.
//
// Round formation is deterministic, with no timers: a broadcast round
// starts exactly when every open handle has a scan pending. Runners that
// finish their final pass close their handle, shrinking the quorum, so
// stragglers with more passes left keep scanning without waiting on anyone
// — the worst case (runners never in step) degrades to one private scan
// each, never to a deadlock. This is why Handle documents that a runner
// must close its handle as soon as it is done.
type sharedSource struct {
	d   *graph.Disk
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*subscription // scans waiting for the next round
	open    int             // open handles = the round quorum
	closed  bool
	done    chan struct{} // broadcaster exit
}

// block is one broadcast unit: a shared, immutable, entry-aligned byte run.
type block struct {
	data []byte
	err  error // terminates the subscriber's pass when non-nil
}

// subscription is one runner's attachment to a broadcast round.
type subscription struct {
	ch       chan block
	canceled chan struct{} // closed by the subscriber's Scan.Close
}

func newShared(d *graph.Disk, cfg Config) *sharedSource {
	s := &sharedSource{d: d, cfg: cfg, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.broadcastLoop()
	return s
}

func (s *sharedSource) Kind() SourceKind { return SourceShared }

func (s *sharedSource) IO() ioacct.Stats { return s.cfg.Counter.Snapshot() }

// Close stops the broadcaster. Outstanding subscriptions are failed with
// errSourceClosed rather than left hanging.
func (s *sharedSource) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	return nil
}

func (s *sharedSource) Handle(c *ioacct.Counter) (Handle, error) {
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	ra, err := openRandomAccess(s.d, c)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ra.close()
		return nil, errSourceClosed
	}
	s.open++
	s.mu.Unlock()
	return &sharedHandle{src: s, c: c, ra: ra}, nil
}

// subscribe queues a scan for the next broadcast round.
func (s *sharedSource) subscribe() (*subscription, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errSourceClosed
	}
	sub := &subscription{
		ch:       make(chan block, sharedRingBlocks),
		canceled: make(chan struct{}),
	}
	s.pending = append(s.pending, sub)
	s.cond.Broadcast()
	return sub, nil
}

// handleClosed shrinks the round quorum.
func (s *sharedSource) handleClosed() {
	s.mu.Lock()
	s.open--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// broadcastLoop runs rounds until the source closes.
func (s *sharedSource) broadcastLoop() {
	defer close(s.done)
	for {
		subs := s.nextRound()
		if subs == nil {
			return
		}
		s.broadcast(subs)
	}
}

// nextRound blocks until every open handle has a pending scan (the quorum
// rule above), then claims the pending set as the next round. A nil return
// means the source closed; any pending scans are failed.
func (s *sharedSource) nextRound() []*subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			for _, sub := range s.pending {
				// Ring buffer is empty at this point, so the send
				// cannot block; be defensive anyway.
				select {
				case sub.ch <- block{err: errSourceClosed}:
				default:
				}
			}
			s.pending = nil
			return nil
		}
		if len(s.pending) > 0 && len(s.pending) >= s.open {
			subs := s.pending
			s.pending = nil
			return subs
		}
		s.cond.Wait()
	}
}

// broadcast performs one physical scan of the adjacency file, fanning each
// block out to every live subscriber of the round.
func (s *sharedSource) broadcast(subs []*subscription) {
	live := len(subs)
	dead := make([]bool, len(subs))
	deliver := func(b block) {
		for i, sub := range subs {
			if dead[i] {
				continue
			}
			select {
			case sub.ch <- b:
			case <-sub.canceled:
				dead[i] = true
				live--
			}
		}
	}
	fail := func(err error) {
		deliver(block{err: err})
	}

	f, err := s.d.OpenAdj()
	if err != nil {
		fail(err)
		return
	}
	defer f.Close()
	r := ioacct.NewReader(f, s.cfg.Counter)
	total := s.d.AdjBytes()
	for sent := int64(0); sent < total && live > 0; {
		n := int64(s.cfg.BufBytes)
		if total-sent < n {
			n = total - sent
		}
		// A fresh buffer per block: it is shared read-only across all
		// subscribers and consumed asynchronously.
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			fail(fmt.Errorf("scan: shared broadcast at byte %d of %d: %w", sent, total, err))
			return
		}
		deliver(block{data: data})
		sent += n
	}
	for i, sub := range subs {
		if !dead[i] {
			close(sub.ch)
		}
	}
}

// sharedHandle is one runner's access to a shared source. Random access
// uses a private file descriptor (window loads are range-local, so there is
// no redundancy to share); sequential passes subscribe to broadcast rounds.
type sharedHandle struct {
	src    *sharedSource
	c      *ioacct.Counter
	ra     *randomAccess
	closed bool
}

func (h *sharedHandle) Scan(maxList int) (Scan, error) {
	sub, err := h.src.subscribe()
	if err != nil {
		return nil, err
	}
	d := h.src.d
	bufEntries := int(d.Meta.MaxOutDegree)
	if !d.Meta.Oriented {
		bufEntries = int(d.Meta.MaxDegree)
	}
	if maxList > 0 && maxList < bufEntries {
		bufEntries = maxList
	}
	return &sharedScan{
		cur:     graph.NewSegCursor(d, 0, maxList),
		sub:     sub,
		c:       h.c,
		listBuf: make([]graph.Vertex, bufEntries),
		byteBuf: make([]byte, bufEntries*graph.EntrySize),
	}, nil
}

func (h *sharedHandle) ReadEntries(dst []graph.Vertex, pos uint64) error {
	return h.ra.readEntries(dst, pos)
}

func (h *sharedHandle) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	h.src.handleClosed()
	return h.ra.close()
}

// sharedScan decodes one subscriber's view of a broadcast round into the
// per-vertex segment stream of graph.Scanner. Time spent blocked on the
// ring buffer is charged to the runner's counter as read-wait time (zero
// bytes, zero ops — the bytes are charged once, to the source counter), so
// the CPU/I-O breakdowns of the paper's figures keep their meaning:
// waiting for the shared disk is I/O time, not CPU time. The wait before
// the round's first block is *not* charged — it measures round formation
// (other runners still computing), not the disk.
type sharedScan struct {
	cur graph.SegCursor
	sub *subscription
	c   *ioacct.Counter

	blk     []byte // unconsumed remainder of the current block
	started bool   // first block received; ring waits now reflect the disk
	listBuf []graph.Vertex
	byteBuf []byte
	err     error
	closed  bool
}

// fill copies the next len(raw) stream bytes into raw, receiving blocks as
// needed.
func (sc *sharedScan) fill(raw []byte) error {
	for len(raw) > 0 {
		if len(sc.blk) == 0 {
			var b block
			var ok bool
			select {
			case b, ok = <-sc.sub.ch:
			default:
				start := time.Now()
				b, ok = <-sc.sub.ch
				if sc.started {
					sc.c.AddReadWait(time.Since(start))
				}
			}
			sc.started = true
			if !ok {
				return io.ErrUnexpectedEOF
			}
			if b.err != nil {
				return b.err
			}
			sc.blk = b.data
		}
		n := copy(raw, sc.blk)
		raw = raw[n:]
		sc.blk = sc.blk[n:]
	}
	return nil
}

func (sc *sharedScan) Next() (graph.Vertex, []graph.Vertex, bool) {
	if sc.err != nil {
		return 0, nil, false
	}
	u, d, ok := sc.cur.Step()
	if !ok {
		return 0, nil, false
	}
	if d == 0 {
		return u, sc.listBuf[:0], true
	}
	raw := sc.byteBuf[:d*graph.EntrySize]
	if err := sc.fill(raw); err != nil {
		sc.err = fmt.Errorf("scan: shared scan vertex %d: %w", u, err)
		return 0, nil, false
	}
	list := sc.listBuf[:d]
	decodeEntries(list, raw)
	return u, list, true
}

func (sc *sharedScan) Err() error { return sc.err }

// Close cancels the subscription so an abandoned pass cannot stall the
// broadcaster (and with it every other subscriber of the round).
func (sc *sharedScan) Close() error {
	if !sc.closed {
		sc.closed = true
		close(sc.sub.canceled)
	}
	return nil
}

package scan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/obs"
)

// sharedRingBlocks is the per-subscriber ring-buffer depth, in broadcast
// blocks. A subscriber that falls more than this far behind stalls the
// broadcaster (and with it the round) until it catches up — the convoy is
// inherent to sharing one physical scan.
const sharedRingBlocks = 4

// errSourceClosed reports a subscription outliving its source.
var errSourceClosed = errors.New("scan: shared source closed")

// sharedSource turns the P concurrent full-file scans of a round of MGT
// passes into one: a single broadcaster goroutine reads the adjacency file
// sequentially and fans every block out to all subscribed runners through
// per-runner ring buffers.
//
// Round formation is deterministic, with no timers: a broadcast round
// starts exactly when every open handle has a scan pending. Runners that
// finish their final pass close their handle, shrinking the quorum, so
// stragglers with more passes left keep scanning without waiting on anyone
// — the worst case (runners never in step) degrades to one private scan
// each, never to a deadlock. This is why Handle documents that a runner
// must close its handle as soon as it is done.
type sharedSource struct {
	d   *graph.Disk
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*subscription // scans waiting for the next round
	open    int             // open handles = the round quorum
	closed  bool
	done    chan struct{} // broadcaster exit

	// bufPool recycles broadcast buffers between blocks: without it every
	// round allocates garbage equal to the whole adjacency file (one fresh
	// BufBytes slice per block, shared read-only across subscribers).
	// Blocks are reference-counted — the last subscriber to fully consume
	// a block returns its buffer.
	bufPool sync.Pool
}

// block is one broadcast unit: a shared, immutable, entry-aligned byte run.
// Data blocks carry a reference count initialized to the number of
// subscribers the broadcaster delivers to; each consumer (and the
// broadcaster, for a delivery that failed) calls release, and the last
// release returns the buffer to the pool. Error blocks have no count and
// release is a no-op. A subscriber that abandons its pass simply never
// releases — the buffer falls out of the pool cycle and is reclaimed by
// the GC, which is safe, just not recycled.
type block struct {
	data []byte
	err  error         // terminates the subscriber's pass when non-nil
	refs *atomic.Int32 // remaining releases; nil for error blocks
	src  *sharedSource // pool to return the buffer to
}

// release drops one reference; the last one recycles the buffer.
func (b block) release() {
	if b.refs != nil && b.refs.Add(-1) == 0 {
		b.src.bufPool.Put(b.data[:cap(b.data)])
	}
}

// subscription is one runner's attachment to a broadcast round.
type subscription struct {
	ch       chan block
	canceled chan struct{} // closed by the subscriber's Scan.Close
}

func newShared(d *graph.Disk, cfg Config) *sharedSource {
	s := &sharedSource{d: d, cfg: cfg, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.broadcastLoop()
	// Cancellation waker: nextRound blocks in cond.Wait, which a context
	// cannot interrupt directly, so one goroutine bridges ctx.Done into a
	// Broadcast. It exits with the broadcaster, so a Background context
	// (nil Done channel) leaks nothing.
	go func() {
		select {
		case <-cfg.Ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-s.done:
		}
	}()
	return s
}

func (s *sharedSource) Kind() SourceKind { return SourceShared }

func (s *sharedSource) IO() ioacct.Stats { return s.cfg.Counter.Snapshot() }

// Close stops the broadcaster. Outstanding subscriptions are failed with
// errSourceClosed rather than left hanging.
func (s *sharedSource) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	return nil
}

func (s *sharedSource) Handle(c *ioacct.Counter) (Handle, error) {
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	ra, err := s.d.OpenRandom(c)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ra.Close()
		return nil, errSourceClosed
	}
	s.open++
	s.mu.Unlock()
	return &sharedHandle{src: s, c: c, ra: ra}, nil
}

// subscribe queues a scan for the next broadcast round.
func (s *sharedSource) subscribe() (*subscription, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cfg.Ctx.Err(); err != nil {
		return nil, err
	}
	if s.closed {
		return nil, errSourceClosed
	}
	sub := &subscription{
		ch:       make(chan block, sharedRingBlocks),
		canceled: make(chan struct{}),
	}
	s.pending = append(s.pending, sub)
	s.cond.Broadcast()
	return sub, nil
}

// handleClosed shrinks the round quorum.
func (s *sharedSource) handleClosed() {
	s.mu.Lock()
	s.open--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// broadcastLoop runs rounds until the source closes.
func (s *sharedSource) broadcastLoop() {
	defer close(s.done)
	for {
		subs := s.nextRound()
		if subs == nil {
			return
		}
		s.broadcast(subs)
	}
}

// nextRound blocks until every open handle has a pending scan (the quorum
// rule above), then claims the pending set as the next round. A nil return
// means the source closed; any pending scans are failed.
func (s *sharedSource) nextRound() []*subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || s.cfg.Ctx.Err() != nil {
			reason := errSourceClosed
			if err := s.cfg.Ctx.Err(); err != nil {
				reason = err
			}
			for _, sub := range s.pending {
				// Ring buffer is empty at this point, so the send
				// cannot block; be defensive anyway.
				select {
				case sub.ch <- block{err: reason}:
				default:
				}
			}
			s.pending = nil
			return nil
		}
		if len(s.pending) > 0 && len(s.pending) >= s.open {
			subs := s.pending
			s.pending = nil
			return subs
		}
		s.cond.Wait()
	}
}

// broadcast performs one physical scan of the adjacency file, fanning each
// block out to every live subscriber of the round. Each round records one
// scan.round span (subscriber count + bytes broadcast), so a trace shows
// how many physical scans a run's passes collapsed into.
func (s *sharedSource) broadcast(subs []*subscription) {
	cur := obs.CursorFrom(s.cfg.Ctx)
	span := cur.Begin(obs.SpanScanRound)
	ioBefore := s.cfg.Counter.Snapshot().BytesRead
	defer func() {
		cur.SetAttr(span, "subscribers", int64(len(subs)))
		cur.SetAttr(span, "io_bytes", s.cfg.Counter.Snapshot().BytesRead-ioBefore)
		cur.End(span)
	}()
	live := len(subs)
	dead := make([]bool, len(subs))
	deliver := func(b block) {
		for i, sub := range subs {
			if dead[i] {
				continue
			}
			// The ctx case keeps a stalled subscriber's full ring from
			// wedging the broadcaster (and with it the whole round) past
			// cancellation; the subscriber itself unblocks through its own
			// ctx select in fill.
			select {
			case sub.ch <- b:
			case <-sub.canceled:
				dead[i] = true
				live--
				b.release() // planned delivery that will not happen
			case <-s.cfg.Ctx.Done():
				dead[i] = true
				live--
				b.release()
			}
		}
	}
	fail := func(err error) {
		deliver(block{err: err})
	}

	// OpenAdjData positions at the first vertex's data for either store
	// format; AdjBytes is the matching physical data-area size, so a
	// compressed store broadcasts its (smaller) compressed byte stream.
	f, err := s.d.OpenAdjData()
	if err != nil {
		fail(err)
		return
	}
	defer f.Close()
	r := ioacct.NewReader(f, s.cfg.Counter)
	total := s.d.AdjBytes()
	for sent := int64(0); sent < total && live > 0; {
		if err := s.cfg.Ctx.Err(); err != nil {
			fail(err)
			return
		}
		n := int64(s.cfg.BufBytes)
		if total-sent < n {
			n = total - sent
		}
		// The buffer is shared read-only across all subscribers and
		// consumed asynchronously; a reference count (one per planned
		// delivery) recycles it through the pool once the last subscriber
		// is done with it.
		buf, _ := s.bufPool.Get().([]byte)
		if cap(buf) < int(n) {
			buf = make([]byte, s.cfg.BufBytes)
		}
		data := buf[:n]
		if _, err := io.ReadFull(r, data); err != nil {
			fail(fmt.Errorf("scan: shared broadcast at byte %d of %d: %w", sent, total, err))
			return
		}
		refs := new(atomic.Int32)
		refs.Store(int32(live))
		deliver(block{data: data, refs: refs, src: s})
		sent += n
	}
	for i, sub := range subs {
		if !dead[i] {
			close(sub.ch)
		}
	}
}

// sharedHandle is one runner's access to a shared source. Random access
// uses a private file descriptor (window loads are range-local, so there is
// no redundancy to share); sequential passes subscribe to broadcast rounds.
type sharedHandle struct {
	src    *sharedSource
	c      *ioacct.Counter
	ra     graph.RandomReader
	closed bool
}

func (h *sharedHandle) Scan(maxList int) (Scan, error) {
	sub, err := h.src.subscribe()
	if err != nil {
		return nil, err
	}
	d := h.src.d
	if d.Format() == graph.FormatCompressed {
		// The broadcast stream carries the compressed data area; the ring
		// consumer below is the byte source, and the one graph-level decoder
		// turns it into the standard segment stream (plus NextCompressed for
		// the block-skipping kernels).
		rf := &sharedScan{sub: sub, ctx: h.src.cfg.Ctx, c: h.c}
		gsc, err := d.NewCompressedScan(rf.fill, rf.Close)
		if err != nil {
			rf.Close()
			return nil, err
		}
		gsc.SetMaxList(maxList)
		return gsc, nil
	}
	bufEntries := int(d.Meta.MaxOutDegree)
	if !d.Meta.Oriented {
		bufEntries = int(d.Meta.MaxDegree)
	}
	if maxList > 0 && maxList < bufEntries {
		bufEntries = maxList
	}
	return &sharedScan{
		cur:     graph.NewSegCursor(d, 0, maxList),
		sub:     sub,
		ctx:     h.src.cfg.Ctx,
		c:       h.c,
		listBuf: make([]graph.Vertex, bufEntries),
		byteBuf: make([]byte, bufEntries*graph.EntrySize),
	}, nil
}

func (h *sharedHandle) ReadEntries(dst []graph.Vertex, pos uint64) error {
	return h.ra.ReadEntries(dst, pos)
}

func (h *sharedHandle) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	h.src.handleClosed()
	return h.ra.Close()
}

// sharedScan decodes one subscriber's view of a broadcast round into the
// per-vertex segment stream of graph.Scanner. Time spent blocked on the
// ring buffer is charged to the runner's counter as read-wait time (zero
// bytes, zero ops — the bytes are charged once, to the source counter), so
// the CPU/I-O breakdowns of the paper's figures keep their meaning:
// waiting for the shared disk is I/O time, not CPU time. The wait before
// the round's first block is *not* charged — it measures round formation
// (other runners still computing), not the disk.
type sharedScan struct {
	cur graph.SegCursor
	sub *subscription
	ctx context.Context
	c   *ioacct.Counter

	blk     []byte // unconsumed remainder of the current block
	curBlk  block  // the block blk points into, released once fully consumed
	started bool   // first block received; ring waits now reflect the disk
	listBuf []graph.Vertex
	byteBuf []byte
	err     error
	closed  bool
}

// fill copies the next len(raw) stream bytes into raw, receiving blocks as
// needed.
func (sc *sharedScan) fill(raw []byte) error {
	for len(raw) > 0 {
		if len(sc.blk) == 0 {
			var b block
			var ok bool
			select {
			case b, ok = <-sc.sub.ch:
			default:
				start := time.Now()
				select {
				case b, ok = <-sc.sub.ch:
				case <-sc.ctx.Done():
					return sc.ctx.Err()
				}
				if sc.started {
					sc.c.AddReadWait(time.Since(start))
				}
			}
			sc.started = true
			if !ok {
				return io.ErrUnexpectedEOF
			}
			if b.err != nil {
				return b.err
			}
			sc.curBlk = b
			sc.blk = b.data
		}
		n := copy(raw, sc.blk)
		raw = raw[n:]
		sc.blk = sc.blk[n:]
		if len(sc.blk) == 0 {
			sc.curBlk.release()
			sc.curBlk = block{}
		}
	}
	return nil
}

func (sc *sharedScan) Next() (graph.Vertex, []graph.Vertex, bool) {
	if sc.err != nil {
		return 0, nil, false
	}
	u, d, ok := sc.cur.Step()
	if !ok {
		return 0, nil, false
	}
	if d == 0 {
		return u, sc.listBuf[:0], true
	}
	raw := sc.byteBuf[:d*graph.EntrySize]
	if err := sc.fill(raw); err != nil {
		sc.err = fmt.Errorf("scan: shared scan vertex %d: %w", u, err)
		return 0, nil, false
	}
	list := sc.listBuf[:d]
	decodeEntries(list, raw)
	return u, list, true
}

func (sc *sharedScan) Err() error { return sc.err }

// Close cancels the subscription so an abandoned pass cannot stall the
// broadcaster (and with it every other subscriber of the round).
func (sc *sharedScan) Close() error {
	if !sc.closed {
		sc.closed = true
		close(sc.sub.canceled)
	}
	return nil
}

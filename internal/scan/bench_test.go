package scan

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/orient"
)

// benchStore builds the oriented store of a skewed (social-like) power-law
// graph once per benchmark binary, in a process-lifetime temp directory
// (b.TempDir would be torn down when the first benchmark returns).
var benchStore struct {
	once sync.Once
	dir  string
	d    *graph.Disk
	err  error
}

// TestMain cleans the process-lifetime bench store up after all
// tests/benchmarks have run.
func TestMain(m *testing.M) {
	code := m.Run()
	if benchStore.dir != "" {
		os.RemoveAll(benchStore.dir)
	}
	os.Exit(code)
}

func benchDisk(b *testing.B) *graph.Disk {
	benchStore.once.Do(func() {
		fail := func(err error) { benchStore.err = err }
		g, err := gen.PowerLaw(20000, 200000, 2.1, 1)
		if err != nil {
			fail(err)
			return
		}
		dir, err := os.MkdirTemp("", "pdtl-scan-bench-")
		if err != nil {
			fail(err)
			return
		}
		benchStore.dir = dir
		src := filepath.Join(dir, "g")
		if err := graph.WriteCSR(src, "bench", g); err != nil {
			fail(err)
			return
		}
		dst := filepath.Join(dir, "g.oriented")
		if _, err := orient.Orient(src, dst, 2); err != nil {
			fail(err)
			return
		}
		benchStore.d, benchStore.err = graph.Open(dst)
	})
	if benchStore.err != nil {
		b.Fatal(benchStore.err)
	}
	return benchStore.d
}

// BenchmarkSourceScanVolume measures one round of P=4 concurrent full
// sequential passes under each source. The headline metric is diskB/op —
// the physical read volume per round: buffered pays P·|E*|, shared pays
// |E*| (1/P), mem pays nothing after its one-time preload.
func BenchmarkSourceScanVolume(b *testing.B) {
	const P = 4
	for _, kind := range []SourceKind{SourceBuffered, SourceShared, SourceMem} {
		b.Run(string(kind), func(b *testing.B) {
			d := benchDisk(b)
			srcCounter := ioacct.NewCounter(0)
			src, err := New(kind, d, Config{Counter: srcCounter})
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			counters := make([]*ioacct.Counter, P)
			handles := make([]Handle, P)
			for i := range handles {
				counters[i] = ioacct.NewCounter(0)
				if handles[i], err = src.Handle(counters[i]); err != nil {
					b.Fatal(err)
				}
				defer handles[i].Close()
			}
			preload := srcCounter.Snapshot().BytesRead // mem's one-time cost
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for i := 0; i < P; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						sc, err := handles[i].Scan(1 << 16)
						if err != nil {
							b.Error(err)
							return
						}
						for {
							if _, _, ok := sc.Next(); !ok {
								break
							}
						}
						if err := sc.Err(); err != nil {
							b.Error(err)
						}
						sc.Close()
					}(i)
				}
				wg.Wait()
			}
			b.StopTimer()
			var bytes int64 = srcCounter.Snapshot().BytesRead - preload
			for _, c := range counters {
				bytes += c.Snapshot().BytesRead
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "diskB/op")
			b.SetBytes(d.AdjBytes() * P) // logical volume delivered per round
		})
	}
}

// BenchmarkKernel sweeps every oriented (u, v) pair of the skewed graph,
// intersecting N+(u) with N+(v) — exactly MGT's hot loop when the window
// holds the whole file. cmp/op reports the comparison-step count: the
// skew makes many pairs badly unbalanced, which is where gallop and
// adaptive pull ahead of the merge, and where the compressed kernel's
// block skipping must hold its step count at or below adaptive's.
func BenchmarkKernel(b *testing.B) {
	d := benchDisk(b)
	csr, err := d.LoadCSR()
	if err != nil {
		b.Fatal(err)
	}
	out := func(v graph.Vertex) []graph.Vertex {
		return csr.Adj[csr.Offsets[v]:csr.Offsets[v+1]]
	}
	n := d.NumVertices()
	for _, kind := range KernelKinds() {
		k, err := NewKernel(kind)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(kind), func(b *testing.B) {
			var tris, steps uint64
			emit := func(graph.Vertex) { tris++ }
			for n0 := 0; n0 < b.N; n0++ {
				tris, steps = 0, 0
				for u := 0; u < n; u++ {
					nu := out(graph.Vertex(u))
					for _, v := range nu {
						steps += k.Intersect(nu, out(v), emit)
					}
				}
			}
			b.ReportMetric(float64(steps), "cmp/op")
			b.ReportMetric(float64(tris), "triangles")
		})
	}
	// compressed-direct runs the same sweep with every cone operand held in
	// its encoded form: IntersectCompressed skips segments on their headers
	// alone and probes bitmap segments without expanding them. seg-skip/op
	// counts the header-rejected segments whose payloads were never decoded.
	b.Run("compressed-direct", func(b *testing.B) {
		var enc graph.ListEncoder
		lists := make([]graph.CompressedList, n)
		var store []byte
		offs := make([]int, n+1)
		for u := 0; u < n; u++ {
			store = enc.Append(store, out(graph.Vertex(u)))
			offs[u+1] = len(store)
		}
		for u := 0; u < n; u++ {
			lists[u] = graph.CompressedList{
				Degree: len(out(graph.Vertex(u))),
				Data:   store[offs[u]:offs[u+1]],
			}
		}
		bk := Compressed.(BlockKernel)
		scratch := make([]graph.Vertex, 0, graph.SegmentEntries)
		var tris, steps, skipped uint64
		emit := func(graph.Vertex) { tris++ }
		b.ResetTimer()
		for n0 := 0; n0 < b.N; n0++ {
			tris, steps, skipped = 0, 0, 0
			for u := 0; u < n; u++ {
				nu := out(graph.Vertex(u))
				for _, v := range nu {
					s, sk, err := bk.IntersectCompressed(lists[u], out(v), scratch, emit)
					if err != nil {
						b.Fatal(err)
					}
					steps += s
					skipped += sk
				}
			}
		}
		b.ReportMetric(float64(steps), "cmp/op")
		b.ReportMetric(float64(tris), "triangles")
		b.ReportMetric(float64(skipped), "seg-skip/op")
	})
}

// BenchmarkKernelCount repeats the kernel sweep on the count-only path:
// the count kernels mirror their listing walks step for step, so cmp/op
// matches BenchmarkKernel, but the emit closure is gone and the loop runs
// allocation-free (B/op must pin at 0 — the count-mode acceptance bar).
func BenchmarkKernelCount(b *testing.B) {
	d := benchDisk(b)
	csr, err := d.LoadCSR()
	if err != nil {
		b.Fatal(err)
	}
	out := func(v graph.Vertex) []graph.Vertex {
		return csr.Adj[csr.Offsets[v]:csr.Offsets[v+1]]
	}
	n := d.NumVertices()
	for _, kind := range KernelKinds() {
		k, err := NewKernel(kind)
		if err != nil {
			b.Fatal(err)
		}
		ck := k.(CountKernel)
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			var tris, steps uint64
			for n0 := 0; n0 < b.N; n0++ {
				tris, steps = 0, 0
				for u := 0; u < n; u++ {
					nu := out(graph.Vertex(u))
					for _, v := range nu {
						c, s := ck.Count(nu, out(v))
						tris += c
						steps += s
					}
				}
			}
			b.ReportMetric(float64(steps), "cmp/op")
			b.ReportMetric(float64(tris), "triangles")
		})
	}
	// compressed-direct counts against encoded cones through the arena:
	// varint segments go through the unrolled decoder into reused scratch,
	// bitmap segments are counted on their words without materializing.
	b.Run("compressed-direct", func(b *testing.B) {
		var enc graph.ListEncoder
		lists := make([]graph.CompressedList, n)
		var store []byte
		offs := make([]int, n+1)
		for u := 0; u < n; u++ {
			store = enc.Append(store, out(graph.Vertex(u)))
			offs[u+1] = len(store)
		}
		for u := 0; u < n; u++ {
			lists[u] = graph.CompressedList{
				Degree: len(out(graph.Vertex(u))),
				Data:   store[offs[u]:offs[u+1]],
			}
		}
		cbk := Compressed.(CountBlockKernel)
		ar := NewArena()
		var tris, steps, skipped uint64
		b.ReportAllocs()
		b.ResetTimer()
		for n0 := 0; n0 < b.N; n0++ {
			tris, steps, skipped = 0, 0, 0
			for u := 0; u < n; u++ {
				nu := out(graph.Vertex(u))
				for _, v := range nu {
					c, s, sk, err := cbk.CountCompressed(lists[u], out(v), ar)
					if err != nil {
						b.Fatal(err)
					}
					tris += c
					steps += s
					skipped += sk
				}
			}
		}
		b.ReportMetric(float64(steps), "cmp/op")
		b.ReportMetric(float64(tris), "triangles")
		b.ReportMetric(float64(skipped), "seg-skip/op")
	})
}

// BenchmarkBitmapCount pins the word-parallel acceptance bar: counting a
// dense consecutive probe run against bitmap segments via masked
// popcounts must beat per-element Contains probing by at least 3× ns/op.
// Both operands are fully dense consecutive runs, so every segment of a
// encodes as a bitmap and every surviving segment resolves on the
// popcount path.
func BenchmarkBitmapCount(b *testing.B) {
	const span = 1 << 14
	run := func(lo int) []graph.Vertex {
		out := make([]graph.Vertex, span)
		for i := range out {
			out[i] = graph.Vertex(lo + i)
		}
		return out
	}
	a := run(1000)
	bs := run(1000 + span/2) // half-overlapping run
	var enc graph.ListEncoder
	cl := graph.CompressedList{Degree: len(a), Data: enc.Append(nil, a)}
	const want = uint64(span / 2)

	b.Run("word-parallel", func(b *testing.B) {
		cbk := Compressed.(CountBlockKernel)
		ar := NewArena()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count, _, _, err := cbk.CountCompressed(cl, bs, ar)
			if err != nil || count != want {
				b.Fatalf("count = %d (%v), want %d", count, err, want)
			}
		}
	})
	b.Run("per-element-probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var count uint64
			it := cl.Segments()
			j := 0
			for {
				seg, ok := it.Next()
				if !ok {
					break
				}
				if seg.Kind != graph.SegBitmap {
					b.Fatal("fixture produced a non-bitmap segment")
				}
				for ; j < len(bs) && bs[j] < seg.First; j++ {
				}
				for ; j < len(bs) && bs[j] <= seg.Last; j++ {
					if seg.Contains(bs[j]) {
						count++
					}
				}
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
			if count != want {
				b.Fatalf("count = %d, want %d", count, want)
			}
		}
	})
}

package scan

import (
	"math/bits"

	"pdtl/internal/graph"
)

// This file is the count-only kernel layer: the closure-free hot path of
// counting runs (the dominant production query — Count, CountDistributed,
// and the service's /count all discard the triangle list). Every kernel
// implements CountKernel; the compressed kernel additionally implements
// CountBlockKernel, whose bitmap segments are intersected word-parallel —
// masked 64-bit AND + bits.OnesCount64 over the segment's payload words —
// instead of per-element probes, and whose varint segments decode through
// the unrolled graph.DecodeSegmentFast. The reusable buffers live in an
// Arena owned by the caller (one per mgt.Runner), so the whole path
// allocates nothing per intersection. See DESIGN.md §12.

// CountKernel is the count-only extension every kernel implements: Count
// returns the size of the intersection without an emit callback, so pure
// counting pays no closure call per match and no triangle materialization.
// Count's steps are identical to Intersect's on the same operands — the
// two paths walk the same comparisons — which keeps CmpOps comparable
// between counting and listing runs on plain stores.
type CountKernel interface {
	Kernel
	Count(a, b []graph.Vertex) (count, steps uint64)
}

// CountBlockKernel is the count-only counterpart of BlockKernel: the
// compressed operand is intersected in its encoded form with segment
// skipping, bitmap segments counted by masked word AND + popcount (via the
// arena's word buffers; never expanded into vertex slices), and varint
// segments decoded by the unrolled fast decoder into the arena's vertex
// scratch. The arena is owned by the caller and reused across calls; its
// WordOps and FastDecodes counters accumulate monotonically.
//
// steps counts the same header tests and narrowing gallops as
// IntersectCompressed, but word-parallel bitmap work is charged to
// ar.WordOps instead of steps — a counting run's CmpOps on bitmap-heavy
// stores is therefore lower than the listing run's, by design.
type CountBlockKernel interface {
	CountKernel
	CountCompressed(a graph.CompressedList, b []graph.Vertex, ar *Arena) (count, steps, skipped uint64, err error)
}

// Arena owns the reusable scratch buffers of the count-only fast paths:
// the segment decode buffer and the bitmap word buffer. One arena belongs
// to exactly one runner (it is not safe for concurrent use) and lives as
// long as the runner does, so steady-state counting allocates nothing —
// the buffers are sized for the worst segment on first contact and reused
// for every chunk thereafter.
type Arena struct {
	// verts is the varint-segment decode scratch (capacity
	// graph.SegmentEntries; DecodeSegmentFast never appends more).
	verts []graph.Vertex
	// words holds the current bitmap segment's payload as 64-bit words.
	words []uint64

	// WordOps counts 64-bit word operations executed by the vectorized
	// paths: bitmap payload words materialized, masked-AND popcounts,
	// word-masked membership probes, and the 8-wide blocks the unrolled
	// varint decoder consumed. It is the "how vectorized was this run"
	// metric of the bench schema (word_ops), zero on any path that never
	// touched a compressed count.
	WordOps uint64
	// FastDecodes counts segments decoded through graph.DecodeSegmentFast.
	FastDecodes uint64
}

// arenaWordCap covers the widest bitmap segment the encoder emits: a
// bitmap is only chosen when span/8+1 beats the varint length (< ~1.3 KiB
// for a full segment), so spans stay under ~10k bits ≈ 160 words.
const arenaWordCap = 256

// NewArena returns an arena with its buffers pre-sized so the fast paths
// are allocation-free from the first intersection.
func NewArena() *Arena {
	return &Arena{
		verts: make([]graph.Vertex, 0, graph.SegmentEntries),
		words: make([]uint64, 0, arenaWordCap),
	}
}

// Count implements CountKernel: the two-pointer merge without the emit
// callback.
//
//pdtl:hotpath
func (mergeKernel) Count(a, b []graph.Vertex) (count, steps uint64) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		steps++
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count, steps
}

// Count implements CountKernel for the galloping kernel.
//
//pdtl:hotpath
func (gallopKernel) Count(a, b []graph.Vertex) (count, steps uint64) {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	lo := 0
	for _, x := range small {
		if lo >= len(large) {
			break
		}
		bound := 1
		for lo+bound < len(large) && large[lo+bound] < x {
			bound <<= 1
			steps++
		}
		hi := lo + bound + 1
		if hi > len(large) {
			hi = len(large)
		}
		for lo < hi {
			steps++
			mid := int(uint(lo+hi) >> 1)
			if large[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(large) && large[lo] == x {
			count++
			lo++
		}
	}
	return count, steps
}

// Count implements CountKernel with the same per-pair dispatch as
// Intersect.
//
//pdtl:hotpath
func (adaptiveKernel) Count(a, b []graph.Vertex) (count, steps uint64) {
	s, l := len(a), len(b)
	if s > l {
		s, l = l, s
	}
	if s == 0 {
		return 0, 0
	}
	if l/s >= adaptiveRatio {
		return gallopKernel{}.Count(a, b)
	}
	return mergeKernel{}.Count(a, b)
}

// Count implements CountKernel with the same block skipping as Intersect.
//
//pdtl:hotpath
func (compressedKernel) Count(a, b []graph.Vertex) (count, steps uint64) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0
	}
	if len(a) <= graph.SegmentEntries {
		if a[len(a)-1] < b[0] || a[0] > b[len(b)-1] {
			return 0, 1
		}
		return adaptiveKernel{}.Count(a, b)
	}
	j := 0
	for off := 0; off < len(a) && j < len(b); off += graph.SegmentEntries {
		end := off + graph.SegmentEntries
		if end > len(a) {
			end = len(a)
		}
		blk := a[off:end]
		steps++ // block range test
		if blk[len(blk)-1] < b[j] {
			continue
		}
		if blk[0] > b[len(b)-1] {
			break
		}
		lo, s := gallopGE(b, j, blk[0])
		steps += s
		hi, s := gallopGT(b, lo, blk[len(blk)-1])
		steps += s
		if lo < hi {
			c, s := adaptiveKernel{}.Count(blk, b[lo:hi])
			count += c
			steps += s
		}
		j = hi
	}
	return count, steps
}

// Count implements CountKernel with the same range-cover pre-filter as
// Intersect.
//
//pdtl:hotpath
func (coverKernel) Count(a, b []graph.Vertex) (count, steps uint64) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0
	}
	steps = 1 // cover test
	if a[len(a)-1] < b[0] || b[len(b)-1] < a[0] {
		return 0, steps
	}
	aLo, s := gallopGE(a, 0, b[0])
	steps += s
	aHi, s := gallopGT(a, aLo, b[len(b)-1])
	steps += s
	bLo, s := gallopGE(b, 0, a[0])
	steps += s
	bHi, s := gallopGT(b, bLo, a[len(a)-1])
	steps += s
	if aLo < aHi && bLo < bHi {
		c, s := adaptiveKernel{}.Count(a[aLo:aHi], b[bLo:bHi])
		count += c
		steps += s
	}
	return count, steps
}

// CountCompressed implements CountBlockKernel: IntersectCompressed's
// segment walk with the per-element payload work replaced by the
// word-parallel bitmap kernels and the unrolled varint decoder.
//
//pdtl:hotpath
func (compressedKernel) CountCompressed(a graph.CompressedList, b []graph.Vertex, ar *Arena) (count, steps, skipped uint64, err error) {
	if a.Degree == 0 || len(b) == 0 {
		return 0, 0, 0, nil
	}
	it := a.Segments()
	single := a.Degree <= graph.SegmentEntries
	j := 0
	for j < len(b) {
		seg, ok := it.Next()
		if !ok {
			return count, steps, skipped, it.Err()
		}
		if !single {
			steps++ // header range test, one per walked segment
		}
		if seg.Last < b[j] {
			steps += boolStep(single)
			skipped++
			continue
		}
		if seg.First > b[len(b)-1] {
			steps += boolStep(single)
			skipped++
			break
		}
		var lo, hi int
		if single {
			lo, hi = j, len(b)
		} else {
			var s uint64
			lo, s = gallopGE(b, j, seg.First)
			steps += s
			hi, s = gallopGT(b, lo, seg.Last)
			steps += s
			if lo == hi {
				skipped++
				j = hi
				continue
			}
		}
		if seg.Kind == graph.SegBitmap {
			count += ar.countBitmapSeg(seg, b[lo:hi])
		} else {
			ar.verts = ar.verts[:0]
			var blocks int
			ar.verts, blocks, err = graph.DecodeSegmentFast(seg, ar.verts)
			if err != nil {
				return count, steps, skipped, err
			}
			ar.FastDecodes++
			ar.WordOps += uint64(blocks)
			c, s := adaptiveKernel{}.Count(ar.verts, b[lo:hi])
			count += c
			steps += s
		}
		j = hi
	}
	return count, steps, skipped, nil
}

// countBitmapSeg counts |seg ∩ b| for a bitmap segment. b may extend past
// the segment's value range (the single-segment case skips the narrowing
// gallops); out-of-range elements are clipped first. Two word-parallel
// regimes:
//
//   - b's clipped slice is one consecutive run (the dense-neighborhood
//     case that produced a bitmap on the *other* side too): the count is a
//     masked popcount of the segment's payload words over the run's bit
//     range — zero per-element work, the bitmap×bitmap kernel.
//   - otherwise: one word-masked membership probe per b element against
//     the materialized payload words.
//
//pdtl:hotpath
func (ar *Arena) countBitmapSeg(seg graph.Segment, b []graph.Vertex) (count uint64) {
	// Clip b to [First, Last]. The non-single caller already narrowed by
	// galloping, making these O(1); the single-segment caller relies on
	// them.
	lo, hi := 0, len(b)
	for lo < hi && b[lo] < seg.First {
		lo++
	}
	for hi > lo && b[hi-1] > seg.Last {
		hi--
	}
	b = b[lo:hi]
	if len(b) == 0 {
		return 0
	}
	ar.words = graph.SegmentWords(seg, ar.words[:0])
	ar.WordOps += uint64(len(ar.words)) // payload words materialized
	loBit := uint(b[0] - seg.First)
	hiBit := uint(b[len(b)-1] - seg.First)
	if hiBit-loBit == uint(len(b)-1) {
		// Consecutive run: masked AND + popcount over whole words.
		loW, hiW := loBit>>6, hiBit>>6
		loMask := ^uint64(0) << (loBit & 63)
		hiMask := ^uint64(0) >> (63 - hiBit&63)
		ar.WordOps += uint64(hiW-loW) + 1
		if loW == hiW {
			return uint64(bits.OnesCount64(ar.words[loW] & loMask & hiMask))
		}
		c := uint64(bits.OnesCount64(ar.words[loW] & loMask))
		for w := loW + 1; w < hiW; w++ {
			c += uint64(bits.OnesCount64(ar.words[w]))
		}
		return c + uint64(bits.OnesCount64(ar.words[hiW]&hiMask))
	}
	// Sparse b: word-masked membership probes, one word load per element.
	ar.WordOps += uint64(len(b))
	for _, y := range b {
		bit := uint(y - seg.First)
		if ar.words[bit>>6]>>(bit&63)&1 != 0 {
			count++
		}
	}
	return count
}

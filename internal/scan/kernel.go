package scan

import (
	"fmt"

	"pdtl/internal/graph"
)

// KernelKind names an IntersectKernel implementation, as used by CLI
// flags, the cluster wire format, and core.Options.
type KernelKind string

const (
	// KernelMerge is the paper's two-pointer merge (Section IV-A: sorted
	// arrays, never hash sets).
	KernelMerge KernelKind = "merge"
	// KernelGallop probes the longer list by exponential + binary search
	// for each element of the shorter — O(s·log(l/s)), a large win when
	// the operands are badly skewed, as they are on social graphs where a
	// hub's cone list meets tiny in-memory Ev lists.
	KernelGallop KernelKind = "gallop"
	// KernelAdaptive picks merge or gallop per pair by length ratio.
	KernelAdaptive KernelKind = "adaptive"
	// KernelCompressed is the block-skipping kernel: the cone list is
	// processed in 256-entry blocks (the compressed store's segment
	// granularity) whose value ranges are tested against the other operand
	// before any per-element work — and, on a compressed store, directly
	// against the segment headers, decoding only surviving segments.
	KernelCompressed KernelKind = "compressed"
	// KernelCover is the range-cover pre-filter (after the cover-edge idea
	// of Bader et al., arXiv:2403.02997, that many intersections are
	// provably empty and can be skipped outright): operands whose value
	// ranges do not overlap are rejected in O(1), and surviving pairs are
	// first narrowed to the covered range by galloping, then intersected
	// adaptively. The full BFS cover-edge labeling of that paper prunes
	// more but changes which (u, v) pairs are attempted — incompatible
	// with PDTL's pivot-edge windows and byte-deterministic listings — so
	// only its range-cover filter is adopted.
	KernelCover KernelKind = "cover"
)

// ParseKernel validates a kernel name from a flag or wire message. The
// empty string means KernelMerge, the paper-faithful default.
func ParseKernel(s string) (KernelKind, error) {
	switch KernelKind(s) {
	case "":
		return KernelMerge, nil
	case KernelMerge, KernelGallop, KernelAdaptive, KernelCompressed, KernelCover:
		return KernelKind(s), nil
	}
	return "", fmt.Errorf("scan: unknown intersect kernel %q (want merge, gallop, adaptive, compressed, or cover)", s)
}

// KernelKinds lists every kernel, in the order tests and benchmarks sweep
// them.
func KernelKinds() []KernelKind {
	return []KernelKind{KernelMerge, KernelGallop, KernelAdaptive, KernelCompressed, KernelCover}
}

// Kernel intersects two sorted duplicate-free vertex lists. Every kernel
// emits the common elements in ascending order — triangle listing order is
// therefore identical across kernels — and returns its comparison-step
// count, the machine-independent CPU proxy behind mgt.Stats.CmpOps.
type Kernel interface {
	Kind() KernelKind
	Intersect(a, b []graph.Vertex, emit func(w graph.Vertex)) (steps uint64)
}

// BlockKernel is the optional kernel extension that intersects a compressed
// list with a plain sorted list without decompressing it first: segments are
// rejected on their (first, last) headers alone, surviving varint segments
// decode into scratch, and bitmap segments are probed per b element in O(1).
// skipped counts header-rejected segments. Matches are emitted in ascending
// order, identical to every other kernel.
//
// Scratch ownership contract: scratch is a reusable decode buffer supplied
// by the caller so the kernel stays stateless. For the duration of one
// IntersectCompressed call the kernel owns it exclusively — it overwrites
// the buffer once per surviving varint segment, so its contents are
// garbage between segments and after the call returns. Consequently:
//
//   - the emit callback MUST NOT retain any slice aliasing scratch (it
//     receives values, never slices, precisely so it cannot);
//   - the caller may hand the same scratch to back-to-back calls for
//     different vertices — each call starts from scratch[:0] and never
//     reads stale contents (TestBlockKernelSharedScratch pins this);
//   - scratch needs capacity ≥ graph.SegmentEntries to stay
//     allocation-free; an undersized buffer (including nil) is replaced by
//     a private allocation rather than silently growing the caller's —
//     growth would split decode results between the caller's array and a
//     reallocated one, leaving the caller's prefix holding stale values
//     that alias nothing the kernel still uses.
type BlockKernel interface {
	Kernel
	IntersectCompressed(a graph.CompressedList, b []graph.Vertex, scratch []graph.Vertex, emit func(w graph.Vertex)) (steps, skipped uint64, err error)
}

// The kernel implementations are stateless; these singletons are the only
// instances anyone needs.
var (
	// Merge is the paper-faithful two-pointer merge kernel.
	Merge Kernel = mergeKernel{}
	// Gallop is the exponential/binary-search kernel for skewed operands.
	Gallop Kernel = gallopKernel{}
	// Adaptive picks Merge or Gallop per pair by length ratio.
	Adaptive Kernel = adaptiveKernel{}
	// Compressed is the block-skipping kernel; it also implements
	// BlockKernel for the direct-on-compressed path.
	Compressed Kernel = compressedKernel{}
	// Cover is the range-cover pre-filter kernel.
	Cover Kernel = coverKernel{}
)

// NewKernel returns the kernel implementation for kind.
func NewKernel(kind KernelKind) (Kernel, error) {
	switch kind {
	case KernelMerge, "":
		return Merge, nil
	case KernelGallop:
		return Gallop, nil
	case KernelAdaptive:
		return Adaptive, nil
	case KernelCompressed:
		return Compressed, nil
	case KernelCover:
		return Cover, nil
	}
	return nil, fmt.Errorf("scan: unknown kernel kind %q", kind)
}

// mergeKernel is the classic two-pointer merge; steps counts loop
// iterations, exactly as the previously hardwired loop in internal/mgt
// did, so CmpOps-based results are comparable with the seed.
type mergeKernel struct{}

func (mergeKernel) Kind() KernelKind { return KernelMerge }

//pdtl:hotpath
func (mergeKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	i, j := 0, 0
	var steps uint64
	for i < len(a) && j < len(b) {
		steps++
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			emit(x)
			i++
			j++
		}
	}
	return steps
}

// gallopKernel walks the shorter list and locates each element in the
// longer one by galloping (exponential probe doubling from the current
// cursor, then binary search inside the located window). steps counts
// probes and bisections.
type gallopKernel struct{}

func (gallopKernel) Kind() KernelKind { return KernelGallop }

//pdtl:hotpath
func (gallopKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	var steps uint64
	lo := 0
	for _, x := range small {
		if lo >= len(large) {
			break
		}
		// Exponential probe: find a window [lo, hi) that must contain
		// the first element >= x.
		bound := 1
		for lo+bound < len(large) && large[lo+bound] < x {
			bound <<= 1
			steps++
		}
		hi := lo + bound + 1
		if hi > len(large) {
			hi = len(large)
		}
		// Binary search for the first element >= x in [lo, hi).
		for lo < hi {
			steps++
			mid := int(uint(lo+hi) >> 1)
			if large[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(large) && large[lo] == x {
			emit(x)
			lo++
		}
	}
	return steps
}

// adaptiveRatio is the operand length ratio beyond which galloping beats
// the merge: below it the merge's branch-predictable linear walk wins,
// above it the O(s·log l) probe count does.
const adaptiveRatio = 8

// adaptiveKernel picks merge or gallop per pair by length ratio — the
// per-pair adaptivity that skewed (social) degree distributions reward,
// since one cone list meets both hub-sized and leaf-sized Ev operands
// within a single pass.
type adaptiveKernel struct{}

func (adaptiveKernel) Kind() KernelKind { return KernelAdaptive }

//pdtl:hotpath
func (adaptiveKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	s, l := len(a), len(b)
	if s > l {
		s, l = l, s
	}
	if s == 0 {
		return 0
	}
	if l/s >= adaptiveRatio {
		return gallopKernel{}.Intersect(a, b, emit)
	}
	return mergeKernel{}.Intersect(a, b, emit)
}

// boolStep charges one comparison step when cond holds.
//
//pdtl:hotpath
func boolStep(cond bool) uint64 {
	if cond {
		return 1
	}
	return 0
}

// gallopGE returns the first index ≥ from with b[idx] ≥ x, by exponential
// probe + binary search, and the comparison steps spent.
//
//pdtl:hotpath
func gallopGE(b []graph.Vertex, from int, x graph.Vertex) (int, uint64) {
	var steps uint64
	lo := from
	bound := 1
	for lo+bound < len(b) && b[lo+bound] < x {
		bound <<= 1
		steps++
	}
	hi := lo + bound + 1
	if hi > len(b) {
		hi = len(b)
	}
	for lo < hi {
		steps++
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, steps
}

// gallopGT returns the first index ≥ from with b[idx] > x.
//
//pdtl:hotpath
func gallopGT(b []graph.Vertex, from int, x graph.Vertex) (int, uint64) {
	var steps uint64
	lo := from
	bound := 1
	for lo+bound < len(b) && b[lo+bound] <= x {
		bound <<= 1
		steps++
	}
	hi := lo + bound + 1
	if hi > len(b) {
		hi = len(b)
	}
	for lo < hi {
		steps++
		mid := int(uint(lo+hi) >> 1)
		if b[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, steps
}

// compressedKernel processes operand a in graph.SegmentEntries-sized blocks,
// testing each block's value range against the remaining portion of b
// before doing any per-element work — the plain-list analogue of the
// header-driven segment skipping it performs on a compressed store (see
// IntersectCompressed). Blocks that survive intersect adaptively against
// the gallop-narrowed covering slice of b.
type compressedKernel struct{}

func (compressedKernel) Kind() KernelKind { return KernelCompressed }

//pdtl:hotpath
func (compressedKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) <= graph.SegmentEntries {
		// Single block: the range test is the whole filter — no cursor to
		// advance, no narrowing gallops to pay for. A rejection costs one
		// step; on survival the test is not charged separately, since the
		// intersection's first comparison inspects the same operand
		// boundaries — surviving pairs cost exactly what adaptive costs.
		if a[len(a)-1] < b[0] || a[0] > b[len(b)-1] {
			return 1
		}
		return adaptiveKernel{}.Intersect(a, b, emit)
	}
	var steps uint64
	j := 0
	for off := 0; off < len(a) && j < len(b); off += graph.SegmentEntries {
		end := off + graph.SegmentEntries
		if end > len(a) {
			end = len(a)
		}
		blk := a[off:end]
		steps++ // block range test
		if blk[len(blk)-1] < b[j] {
			continue
		}
		if blk[0] > b[len(b)-1] {
			break
		}
		// b values ≤ blk's last cannot match any later block (a is sorted
		// strictly increasing across blocks), so the cursor advances past
		// the covered slice for good. The upper gallop resumes from lo, so
		// the two together cost one walk of the covered distance.
		lo, s := gallopGE(b, j, blk[0])
		steps += s
		hi, s := gallopGT(b, lo, blk[len(blk)-1])
		steps += s
		if lo < hi {
			steps += adaptiveKernel{}.Intersect(blk, b[lo:hi], emit)
		}
		j = hi
	}
	return steps
}

// IntersectCompressed implements BlockKernel: the same block skipping
// driven by the compressed store's segment headers, so rejected segments
// never have their payloads decoded, and dense bitmap segments are probed
// per b element instead of being expanded.
func (compressedKernel) IntersectCompressed(a graph.CompressedList, b []graph.Vertex, scratch []graph.Vertex, emit func(graph.Vertex)) (steps, skipped uint64, err error) {
	if a.Degree == 0 || len(b) == 0 {
		return 0, 0, nil
	}
	if cap(scratch) < graph.SegmentEntries {
		// Enforce the ownership contract: an undersized caller buffer is
		// replaced, never grown in place (see the BlockKernel doc).
		scratch = make([]graph.Vertex, 0, graph.SegmentEntries)
	}
	it := a.Segments()
	single := a.Degree <= graph.SegmentEntries
	j := 0
	for j < len(b) {
		seg, ok := it.Next()
		if !ok {
			return steps, skipped, it.Err()
		}
		if !single {
			steps++ // header range test, one per walked segment
		}
		if seg.Last < b[j] {
			steps += boolStep(single) // single: charge the rejecting test
			skipped++
			continue
		}
		if seg.First > b[len(b)-1] {
			steps += boolStep(single)
			skipped++
			break
		}
		var lo, hi int
		if single {
			// One segment: the header test above is the whole filter —
			// skip the narrowing gallops and intersect against all of b.
			// Like the plain fast path, a surviving test is not charged
			// (the intersection's first comparison inspects the same
			// boundaries), so tiny lists cost exactly what adaptive costs
			// and every skip is a strict step saving.
			lo, hi = j, len(b)
		} else {
			var s uint64
			lo, s = gallopGE(b, j, seg.First)
			steps += s
			hi, s = gallopGT(b, lo, seg.Last)
			steps += s
			if lo == hi {
				// The segment's range straddles b values without covering
				// any: payload stays undecoded.
				skipped++
				j = hi
				continue
			}
		}
		if seg.Kind == graph.SegBitmap { // O(1) probe per b element in range
			for _, y := range b[lo:hi] {
				if y > seg.Last {
					break
				}
				steps++
				if y < seg.First {
					continue
				}
				if seg.Contains(y) {
					emit(y)
				}
			}
		} else {
			scratch = scratch[:0]
			scratch, err = graph.DecodeSegment(seg, scratch)
			if err != nil {
				return steps, skipped, err
			}
			steps += adaptiveKernel{}.Intersect(scratch, b[lo:hi], emit)
		}
		j = hi
	}
	return steps, skipped, nil
}

// coverKernel rejects operand pairs whose value ranges do not overlap in
// O(1) — the range-cover pre-filter — and narrows surviving pairs to the
// covered range by galloping before intersecting adaptively. On oriented
// stores many (nm, Ev) pairs are disjoint (Ev spans one window vertex's
// edges; nm is a cone list that often lies entirely elsewhere), which is
// where the filter pays.
type coverKernel struct{}

func (coverKernel) Kind() KernelKind { return KernelCover }

//pdtl:hotpath
func (coverKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	steps := uint64(1) // cover test
	if a[len(a)-1] < b[0] || b[len(b)-1] < a[0] {
		return steps
	}
	aLo, s := gallopGE(a, 0, b[0])
	steps += s
	aHi, s := gallopGT(a, aLo, b[len(b)-1])
	steps += s
	bLo, s := gallopGE(b, 0, a[0])
	steps += s
	bHi, s := gallopGT(b, bLo, a[len(a)-1])
	steps += s
	if aLo < aHi && bLo < bHi {
		steps += adaptiveKernel{}.Intersect(a[aLo:aHi], b[bLo:bHi], emit)
	}
	return steps
}

package scan

import (
	"fmt"

	"pdtl/internal/graph"
)

// KernelKind names an IntersectKernel implementation, as used by CLI
// flags, the cluster wire format, and core.Options.
type KernelKind string

const (
	// KernelMerge is the paper's two-pointer merge (Section IV-A: sorted
	// arrays, never hash sets).
	KernelMerge KernelKind = "merge"
	// KernelGallop probes the longer list by exponential + binary search
	// for each element of the shorter — O(s·log(l/s)), a large win when
	// the operands are badly skewed, as they are on social graphs where a
	// hub's cone list meets tiny in-memory Ev lists.
	KernelGallop KernelKind = "gallop"
	// KernelAdaptive picks merge or gallop per pair by length ratio.
	KernelAdaptive KernelKind = "adaptive"
)

// ParseKernel validates a kernel name from a flag or wire message. The
// empty string means KernelMerge, the paper-faithful default.
func ParseKernel(s string) (KernelKind, error) {
	switch KernelKind(s) {
	case "":
		return KernelMerge, nil
	case KernelMerge, KernelGallop, KernelAdaptive:
		return KernelKind(s), nil
	}
	return "", fmt.Errorf("scan: unknown intersect kernel %q (want merge, gallop, or adaptive)", s)
}

// Kernel intersects two sorted duplicate-free vertex lists. Every kernel
// emits the common elements in ascending order — triangle listing order is
// therefore identical across kernels — and returns its comparison-step
// count, the machine-independent CPU proxy behind mgt.Stats.CmpOps.
type Kernel interface {
	Kind() KernelKind
	Intersect(a, b []graph.Vertex, emit func(w graph.Vertex)) (steps uint64)
}

// The kernel implementations are stateless; these singletons are the only
// instances anyone needs.
var (
	// Merge is the paper-faithful two-pointer merge kernel.
	Merge Kernel = mergeKernel{}
	// Gallop is the exponential/binary-search kernel for skewed operands.
	Gallop Kernel = gallopKernel{}
	// Adaptive picks Merge or Gallop per pair by length ratio.
	Adaptive Kernel = adaptiveKernel{}
)

// NewKernel returns the kernel implementation for kind.
func NewKernel(kind KernelKind) (Kernel, error) {
	switch kind {
	case KernelMerge, "":
		return Merge, nil
	case KernelGallop:
		return Gallop, nil
	case KernelAdaptive:
		return Adaptive, nil
	}
	return nil, fmt.Errorf("scan: unknown kernel kind %q", kind)
}

// mergeKernel is the classic two-pointer merge; steps counts loop
// iterations, exactly as the previously hardwired loop in internal/mgt
// did, so CmpOps-based results are comparable with the seed.
type mergeKernel struct{}

func (mergeKernel) Kind() KernelKind { return KernelMerge }

func (mergeKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	i, j := 0, 0
	var steps uint64
	for i < len(a) && j < len(b) {
		steps++
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case x > y:
			j++
		default:
			emit(x)
			i++
			j++
		}
	}
	return steps
}

// gallopKernel walks the shorter list and locates each element in the
// longer one by galloping (exponential probe doubling from the current
// cursor, then binary search inside the located window). steps counts
// probes and bisections.
type gallopKernel struct{}

func (gallopKernel) Kind() KernelKind { return KernelGallop }

func (gallopKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	var steps uint64
	lo := 0
	for _, x := range small {
		if lo >= len(large) {
			break
		}
		// Exponential probe: find a window [lo, hi) that must contain
		// the first element >= x.
		bound := 1
		for lo+bound < len(large) && large[lo+bound] < x {
			bound <<= 1
			steps++
		}
		hi := lo + bound + 1
		if hi > len(large) {
			hi = len(large)
		}
		// Binary search for the first element >= x in [lo, hi).
		for lo < hi {
			steps++
			mid := int(uint(lo+hi) >> 1)
			if large[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(large) && large[lo] == x {
			emit(x)
			lo++
		}
	}
	return steps
}

// adaptiveRatio is the operand length ratio beyond which galloping beats
// the merge: below it the merge's branch-predictable linear walk wins,
// above it the O(s·log l) probe count does.
const adaptiveRatio = 8

// adaptiveKernel picks merge or gallop per pair by length ratio — the
// per-pair adaptivity that skewed (social) degree distributions reward,
// since one cone list meets both hub-sized and leaf-sized Ev operands
// within a single pass.
type adaptiveKernel struct{}

func (adaptiveKernel) Kind() KernelKind { return KernelAdaptive }

func (adaptiveKernel) Intersect(a, b []graph.Vertex, emit func(graph.Vertex)) uint64 {
	s, l := len(a), len(b)
	if s > l {
		s, l = l, s
	}
	if s == 0 {
		return 0
	}
	if l/s >= adaptiveRatio {
		return gallopKernel{}.Intersect(a, b, emit)
	}
	return mergeKernel{}.Intersect(a, b, emit)
}

package scan

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/orient"
)

// orientedStore writes g, orients it, and opens the oriented store.
func orientedStore(t testing.TB, g *graph.CSR) *graph.Disk {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join(dir, "g")
	if err := graph.WriteCSR(src, "test", g); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "g.oriented")
	if _, err := orient.Orient(src, dst, 2); err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// segment is one Next() yield, copied out of the reused buffer.
type segment struct {
	u    graph.Vertex
	list []graph.Vertex
}

// drain collects a full pass from one handle. Errors are reported with
// t.Error (not Fatal) so drain is safe to call from helper goroutines.
func drain(t testing.TB, h Handle, maxList int) []segment {
	t.Helper()
	sc, err := h.Scan(maxList)
	if err != nil {
		t.Error(err)
		return nil
	}
	defer sc.Close()
	var segs []segment
	for {
		u, list, ok := sc.Next()
		if !ok {
			break
		}
		segs = append(segs, segment{u: u, list: append([]graph.Vertex(nil), list...)})
	}
	if err := sc.Err(); err != nil {
		t.Error(err)
		return nil
	}
	return segs
}

func sameSegments(t *testing.T, label string, got, want []segment) {
	t.Helper()
	if t.Failed() {
		return // a drain already reported the underlying failure
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d segments, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].u != want[i].u || len(got[i].list) != len(want[i].list) {
			t.Fatalf("%s: segment %d = (%d, %d entries), want (%d, %d entries)",
				label, i, got[i].u, len(got[i].list), want[i].u, len(want[i].list))
		}
		for k := range got[i].list {
			if got[i].list[k] != want[i].list[k] {
				t.Fatalf("%s: segment %d entry %d = %d, want %d",
					label, i, k, got[i].list[k], want[i].list[k])
			}
		}
	}
}

func allKinds() []SourceKind { return []SourceKind{SourceBuffered, SourceShared, SourceMem} }

// TestSourcesYieldIdenticalStreams checks that every source reproduces the
// buffered (graph.Scanner) segment stream exactly, across segmentation
// caps — including caps that split the large lists of a skewed graph.
func TestSourcesYieldIdenticalStreams(t *testing.T) {
	g, err := gen.PowerLaw(300, 4000, 2.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	for _, maxList := range []int{0, 3, 17, 1 << 20} {
		ref, err := New(SourceBuffered, d, Config{})
		if err != nil {
			t.Fatal(err)
		}
		rh, err := ref.Handle(nil)
		if err != nil {
			t.Fatal(err)
		}
		want := drain(t, rh, maxList)
		rh.Close()
		ref.Close()
		for _, kind := range allKinds() {
			src, err := New(kind, d, Config{})
			if err != nil {
				t.Fatal(err)
			}
			h, err := src.Handle(nil)
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, h, maxList)
			h.Close()
			src.Close()
			sameSegments(t, string(kind), got, want)
		}
	}
}

// TestReadEntriesEquivalence checks random-access reads across sources.
func TestReadEntriesEquivalence(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 2500, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	total := d.Meta.AdjEntries
	rng := rand.New(rand.NewSource(1))

	type read struct {
		pos uint64
		n   int
	}
	var reads []read
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(200)
		if uint64(n) > total {
			n = int(total)
		}
		pos := uint64(rng.Int63n(int64(total) - int64(n) + 1))
		reads = append(reads, read{pos, n})
	}

	want := make(map[int][]graph.Vertex)
	for _, kind := range allKinds() {
		src, err := New(kind, d, Config{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := src.Handle(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, rd := range reads {
			dst := make([]graph.Vertex, rd.n)
			if err := h.ReadEntries(dst, rd.pos); err != nil {
				t.Fatalf("%s: read %d: %v", kind, i, err)
			}
			if kind == SourceBuffered {
				want[i] = dst
				continue
			}
			for k := range dst {
				if dst[k] != want[i][k] {
					t.Fatalf("%s: read %d entry %d = %d, want %d", kind, i, k, dst[k], want[i][k])
				}
			}
		}
		h.Close()
		src.Close()
	}
}

// TestSharedConcurrentPassesShareOneScan runs P concurrent subscribers for
// two passes each and checks (a) every subscriber sees the exact stream and
// (b) the broadcaster touched the disk exactly twice — rounds are
// deterministic when all handles are open up front.
func TestSharedConcurrentPassesShareOneScan(t *testing.T) {
	g, err := gen.PowerLaw(400, 6000, 2.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	srcCounter := ioacct.NewCounter(0)
	src, err := New(SourceShared, d, Config{Counter: srcCounter})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	refSrc, err := New(SourceBuffered, d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	refH, err := refSrc.Handle(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, refH, 64)
	refH.Close()
	refSrc.Close()

	const P = 4
	const passes = 2
	handles := make([]Handle, P)
	for i := range handles {
		if handles[i], err = src.Handle(nil); err != nil {
			t.Fatal(err)
		}
	}
	got := make([][]segment, P)
	var wg sync.WaitGroup
	for i := 0; i < P; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer handles[i].Close()
			for p := 0; p < passes; p++ {
				got[i] = drain(t, handles[i], 64)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < P; i++ {
		sameSegments(t, "subscriber", got[i], want)
	}
	if gotBytes, wantBytes := srcCounter.Snapshot().BytesRead, int64(passes)*d.AdjBytes(); gotBytes != wantBytes {
		t.Errorf("broadcaster read %d bytes, want exactly %d (one physical scan per round)", gotBytes, wantBytes)
	}
}

// TestSharedScanCloseMidPassDoesNotStallOthers abandons one subscription
// early; the other subscriber must still complete its pass.
func TestSharedScanCloseMidPassDoesNotStallOthers(t *testing.T) {
	g, err := gen.ErdosRenyi(300, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	src, err := New(SourceShared, d, Config{BufBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	h1, err := src.Handle(nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := src.Handle(nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer h2.Close()
		drain(t, h2, 0)
	}()
	sc, err := h1.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	sc.Next() // consume one yield, then abandon the pass
	sc.Close()
	h1.Close()
	<-done
}

// TestUnalignedBufBytes: block sizes that are not a multiple of the entry
// size must be rounded, not allowed to split entries across blocks (the
// mem preload used to panic on this).
func TestUnalignedBufBytes(t *testing.T) {
	g, err := gen.ErdosRenyi(150, 1200, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := orientedStore(t, g)
	var want []segment
	for _, kind := range allKinds() {
		src, err := New(kind, d, Config{BufBytes: 4097})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		h, err := src.Handle(nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got := drain(t, h, 11)
		h.Close()
		src.Close()
		if want == nil {
			want = got
			continue
		}
		sameSegments(t, string(kind), got, want)
	}
}

func TestParseSource(t *testing.T) {
	for in, want := range map[string]SourceKind{
		"": SourceAuto, "auto": SourceAuto, "buffered": SourceBuffered,
		"shared": SourceShared, "mem": SourceMem,
	} {
		got, err := ParseSource(in)
		if err != nil || got != want {
			t.Errorf("ParseSource(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSource("mmap"); err == nil {
		t.Error("ParseSource must reject unknown kinds")
	}
	if got := SourceAuto.Resolve(4); got != SourceShared {
		t.Errorf("auto at P=4 = %v, want shared", got)
	}
	if got := SourceAuto.Resolve(1); got != SourceBuffered {
		t.Errorf("auto at P=1 = %v, want buffered", got)
	}
	if got := SourceMem.Resolve(8); got != SourceMem {
		t.Errorf("concrete kind must pass through Resolve, got %v", got)
	}
}

func TestParseKernel(t *testing.T) {
	for in, want := range map[string]KernelKind{
		"": KernelMerge, "merge": KernelMerge, "gallop": KernelGallop, "adaptive": KernelAdaptive,
	} {
		got, err := ParseKernel(in)
		if err != nil || got != want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKernel("simd"); err == nil {
		t.Error("ParseKernel must reject unknown kinds")
	}
}

// Package cttp is a round-based simulation of the CTTP MapReduce triangle
// enumeration algorithm the paper dismisses in Sections II and V-E4
// ("MapReduce algorithms produce too much intermediate networking data, and
// are considerably slow: CTTP takes 2× longer on the Twitter dataset using
// 40 nodes compared to a single-core MGT").
//
// The simulation implements the color-partitioned triple scheme exactly:
// vertices are hashed to ρ colors; one reduce task exists per color
// multiset {i ≤ j ≤ k}; the map phase replicates every edge to every task
// whose multiset contains both endpoint colors (≈ρ copies per edge — the
// intermediate-data blowup is measured, not asserted); each reduce task
// enumerates the triangles of its subgraph and keeps exactly those whose
// color multiset equals the task's, so every triangle is counted exactly
// once. Tasks execute in rounds of Workers parallel reducers, modeling a
// fixed-size Hadoop cluster.
package cttp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pdtl/internal/graph"
)

// Config parameterizes a run.
type Config struct {
	// Colors is ρ, the color-class count; tasks number C(ρ+2,3)-ish
	// (multisets of size 3).
	Colors int
	// Workers is the simulated cluster's parallel reducer count.
	Workers int
}

// Result reports a run.
type Result struct {
	Triangles uint64
	// Tasks is the number of reduce tasks.
	Tasks int
	// Rounds is ceil(Tasks/Workers), the MapReduce wave count.
	Rounds int
	// IntermediateRecords counts map-output records — each is one
	// (task, edge) pair shuffled across the network.
	IntermediateRecords uint64
	// ShuffleBytes estimates the shuffle volume at 12 bytes per record
	// (two vertex ids + a task key), the "intermediate networking data"
	// the paper calls out.
	ShuffleBytes int64
	MapTime      time.Duration
	ReduceTime   time.Duration
	TotalTime    time.Duration
}

// Count runs the CTTP simulation over g.
func Count(g *graph.CSR, cfg Config) (*Result, error) {
	if cfg.Colors < 1 {
		return nil, fmt.Errorf("cttp: need ≥ 1 color, got %d", cfg.Colors)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	res := &Result{}
	rho := cfg.Colors

	// Enumerate tasks: multisets {i ≤ j ≤ k}.
	taskID := make(map[[3]int]int)
	var tasks [][3]int
	for i := 0; i < rho; i++ {
		for j := i; j < rho; j++ {
			for k := j; k < rho; k++ {
				taskID[[3]int{i, j, k}] = len(tasks)
				tasks = append(tasks, [3]int{i, j, k})
			}
		}
	}
	res.Tasks = len(tasks)
	res.Rounds = (len(tasks) + cfg.Workers - 1) / cfg.Workers

	color := func(v graph.Vertex) int {
		return int((uint64(v) * 0x9e3779b97f4a7c15 >> 17) % uint64(rho))
	}

	// --- Map + shuffle: replicate each canonical edge to every task whose
	// multiset contains both endpoint colors. ---
	mapStart := time.Now()
	taskEdges := make([][]graph.Edge, len(tasks))
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if v <= graph.Vertex(u) {
				continue
			}
			a, b := color(graph.Vertex(u)), color(v)
			if a > b {
				a, b = b, a
			}
			for x := 0; x < rho; x++ {
				key := sorted3(a, b, x)
				id := taskID[key]
				if len(taskEdges[id]) > 0 {
					last := taskEdges[id][len(taskEdges[id])-1]
					if last.U == graph.Vertex(u) && last.V == v {
						continue // same task reached via a different x
					}
				}
				taskEdges[id] = append(taskEdges[id], graph.Edge{U: graph.Vertex(u), V: v})
				res.IntermediateRecords++
			}
		}
	}
	res.ShuffleBytes = int64(res.IntermediateRecords) * 12
	res.MapTime = time.Since(mapStart)

	// --- Reduce: rounds of Workers parallel tasks. ---
	reduceStart := time.Now()
	counts := make([]uint64, len(tasks))
	for lo := 0; lo < len(tasks); lo += cfg.Workers {
		hi := lo + cfg.Workers
		if hi > len(tasks) {
			hi = len(tasks)
		}
		var wg sync.WaitGroup
		for t := lo; t < hi; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				counts[t] = reduceTask(taskEdges[t], tasks[t], color)
			}(t)
		}
		wg.Wait()
	}
	for _, c := range counts {
		res.Triangles += c
	}
	res.ReduceTime = time.Since(reduceStart)
	res.TotalTime = res.MapTime + res.ReduceTime
	return res, nil
}

// reduceTask enumerates the triangles of a task subgraph and counts those
// whose color multiset equals the task's.
func reduceTask(edges []graph.Edge, task [3]int, color func(graph.Vertex) int) uint64 {
	if len(edges) < 3 {
		return 0
	}
	adj := make(map[graph.Vertex][]graph.Vertex)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
	}
	for v := range adj {
		list := adj[v]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	var count uint64
	for u, nu := range adj {
		for _, v := range nu { // v > u by canonical edges
			nv := adj[v]
			i := sort.Search(len(nu), func(k int) bool { return nu[k] > v })
			j := 0
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] < nv[j]:
					i++
				case nu[i] > nv[j]:
					j++
				default:
					w := nu[i]
					if sorted3(color(u), color(v), color(w)) == task {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}

func sorted3(a, b, c int) [3]int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int{a, b, c}
}

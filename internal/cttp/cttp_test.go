package cttp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
)

func TestCountMatchesReference(t *testing.T) {
	g, err := gen.RMAT(9, 8, 41)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	for _, colors := range []int{1, 2, 3, 5} {
		res, err := Count(g, Config{Colors: colors, Workers: 4})
		if err != nil {
			t.Fatalf("colors=%d: %v", colors, err)
		}
		if res.Triangles != want {
			t.Errorf("colors=%d: triangles = %d, want %d", colors, res.Triangles, want)
		}
	}
}

func TestIntermediateDataBlowup(t *testing.T) {
	// The defining weakness: map output is ~ρ records per edge, so the
	// shuffle volume grows linearly in the color count.
	g, err := gen.ErdosRenyi(1000, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Count(g, Config{Colors: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Count(g, Config{Colors: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r8.IntermediateRecords <= 2*r2.IntermediateRecords {
		t.Errorf("shuffle did not blow up: ρ=2 → %d records, ρ=8 → %d",
			r2.IntermediateRecords, r8.IntermediateRecords)
	}
	m := g.NumEdges()
	// Each edge is shuffled ~ρ times (exactly ρ distinct task multisets
	// contain both endpoint colors).
	if r8.IntermediateRecords != 8*m {
		t.Errorf("ρ=8: records = %d, want exactly ρ·m = %d", r8.IntermediateRecords, 8*m)
	}
	if r8.ShuffleBytes != int64(r8.IntermediateRecords)*12 {
		t.Error("shuffle bytes should be 12 per record")
	}
}

func TestRoundsAndTasks(t *testing.T) {
	g, err := gen.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(g, Config{Colors: 4, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Multisets of size 3 over 4 colors: C(4+2,3) = 20.
	if res.Tasks != 20 {
		t.Errorf("tasks = %d, want 20", res.Tasks)
	}
	if res.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
	if res.Triangles != gen.CompleteTriangles(10) {
		t.Errorf("triangles = %d", res.Triangles)
	}
}

func TestConfigValidation(t *testing.T) {
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Count(g, Config{Colors: 0}); err == nil {
		t.Error("want error for 0 colors")
	}
}

// Property: color and worker counts never change the result.
func TestColorInvariance(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		g, err := gen.ErdosRenyi(n, rng.Intn(6*n), seed)
		if err != nil {
			return false
		}
		colors := 1 + int(cRaw%7)
		workers := 1 + int(cRaw%4)
		res, err := Count(g, Config{Colors: colors, Workers: workers})
		if err != nil {
			return false
		}
		return res.Triangles == baseline.Forward(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

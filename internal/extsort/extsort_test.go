package extsort

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

func TestEdgeFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.bin")
	want := []graph.Edge{{U: 3, V: 1}, {U: 0, V: 2}, {U: 3, V: 1}}
	if err := WriteEdgeFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %v, want %v", got, want)
	}
}

func TestSortSmallBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := make([]graph.Edge, 1000)
	for i := range edges {
		edges[i] = graph.Edge{U: uint32(rng.Intn(100)), V: uint32(rng.Intn(100))}
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "in.bin")
	if err := WriteEdgeFile(src, edges); err != nil {
		t.Fatal(err)
	}
	for _, mem := range []int{1, 7, 64, 5000} {
		dst := filepath.Join(dir, "out.bin")
		c := ioacct.NewCounter(0)
		if err := Sort(nil, src, dst, mem, c); err != nil {
			t.Fatalf("mem=%d: %v", mem, err)
		}
		got, err := ReadEdgeFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(edges) {
			t.Fatalf("mem=%d: %d edges, want %d", mem, len(got), len(edges))
		}
		for i := 1; i < len(got); i++ {
			if edgeLess(got[i], got[i-1]) {
				t.Fatalf("mem=%d: output not sorted at %d", mem, i)
			}
		}
		if c.Snapshot().BytesRead == 0 {
			t.Error("sort IO not accounted")
		}
	}
}

func TestSortEmptyAndErrors(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "empty.bin")
	if err := WriteEdgeFile(src, nil); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "out.bin")
	if err := Sort(nil, src, dst, 8, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeFile(dst)
	if err != nil || len(got) != 0 {
		t.Errorf("empty sort: %v %v", got, err)
	}
	if err := Sort(nil, src, dst, 0, nil); err == nil {
		t.Error("want error for zero budget")
	}
	if err := Sort(nil, filepath.Join(dir, "missing"), dst, 8, nil); err == nil {
		t.Error("want error for missing input")
	}
}

func TestBuildStoreMatchesInMemory(t *testing.T) {
	// An unsorted edge file with duplicates and loops must ingest into
	// exactly the graph FromEdges would build.
	rng := rand.New(rand.NewSource(11))
	edges := make([]graph.Edge, 3000)
	for i := range edges {
		edges[i] = graph.Edge{U: uint32(rng.Intn(150)), V: uint32(rng.Intn(150))}
	}
	want, err := graph.FromEdges(150, edges)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	src := filepath.Join(dir, "raw.bin")
	if err := WriteEdgeFile(src, edges); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "store")
	if err := BuildStore(nil, src, base, "ingest", 100, nil); err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	// Vertex count can differ if high ids have no edges; compare up to
	// want's size (FromEdges was told n=150 explicitly).
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edges = %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for v := 0; v < got.NumVertices(); v++ {
		w := want.Neighbors(graph.Vertex(v))
		g := got.Neighbors(graph.Vertex(v))
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("vertex %d: %v != %v", v, g, w)
		}
	}
	// And the triangle counts agree end to end.
	if baseline.Forward(got) != baseline.Forward(want) {
		t.Error("ingested graph has different triangle count")
	}
}

func TestBuildStoreEmpty(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "raw.bin")
	if err := WriteEdgeFile(src, nil); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "store")
	if err := BuildStore(nil, src, base, "empty", 8, nil); err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() != 0 || d.Meta.NumEdges != 0 {
		t.Errorf("empty ingest: %+v", d.Meta)
	}
}

// Property: Sort is a permutation that is ordered, for any input.
func TestSortProperty(t *testing.T) {
	f := func(seed int64, memRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, rng.Intn(500))
		for i := range edges {
			edges[i] = graph.Edge{U: rng.Uint32() % 1000, V: rng.Uint32() % 1000}
		}
		dir := t.TempDir()
		src := filepath.Join(dir, "in.bin")
		dst := filepath.Join(dir, "out.bin")
		if WriteEdgeFile(src, edges) != nil {
			return false
		}
		mem := 1 + int(memRaw%100)
		if Sort(nil, src, dst, mem, nil) != nil {
			return false
		}
		got, err := ReadEdgeFile(dst)
		if err != nil || len(got) != len(edges) {
			return false
		}
		counts := map[graph.Edge]int{}
		for _, e := range edges {
			counts[e]++
		}
		for i, e := range got {
			counts[e]--
			if i > 0 && edgeLess(e, got[i-1]) {
				return false
			}
		}
		for _, cnt := range counts {
			if cnt != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBuildStoreThenCount(t *testing.T) {
	// Full pipeline: generator -> edge file -> external ingest -> verify
	// against the reference count.
	g, err := gen.RMAT(8, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	dir := t.TempDir()
	src := filepath.Join(dir, "raw.bin")
	if err := WriteEdgeFile(src, g.Edges()); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "store")
	if err := BuildStore(nil, src, base, "rmat8", 512, nil); err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := d.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	if got := baseline.Forward(csr); got != want {
		t.Errorf("count after ingest = %d, want %d", got, want)
	}
}

// TestBuildStoreFormatCompressed ingests the same messy edge file into both
// store formats and requires logically identical stores: same metadata,
// same degree array, same decoded adjacency.
func TestBuildStoreFormatCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	edges := make([]graph.Edge, 4000)
	for i := range edges {
		// Leave some vertices untouched so the compressed emit's empty-list
		// gap handling is exercised.
		edges[i] = graph.Edge{U: uint32(rng.Intn(200) * 2), V: uint32(rng.Intn(200) * 2)}
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "raw.bin")
	if err := WriteEdgeFile(src, edges); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain")
	if err := BuildStore(nil, src, plain, "ingest", 100, nil); err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "comp")
	if err := BuildStoreFormat(nil, src, comp, "ingest", 100, graph.FormatCompressed, nil); err != nil {
		t.Fatal(err)
	}
	pd, err := graph.Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := graph.Open(comp)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Format() != graph.FormatCompressed {
		t.Fatalf("compressed build opened as %q", cd.Format())
	}
	pm, cm := pd.Meta, cd.Meta
	cm.Format = ""
	if !reflect.DeepEqual(pm, cm) {
		t.Errorf("meta differs: plain %+v, compressed %+v", pm, cm)
	}
	if !reflect.DeepEqual(pd.Degrees, cd.Degrees) {
		t.Error("degree arrays differ between formats")
	}
	want, err := pd.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cd.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Offsets, want.Offsets) || !reflect.DeepEqual(got.Adj, want.Adj) {
		t.Error("adjacency content differs between formats")
	}
}

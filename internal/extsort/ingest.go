package extsort

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// ctxCheckEvery is how many records the streaming passes process between
// context checks: frequent enough that a SIGINT aborts an ingest of any
// size within milliseconds, rare enough to cost nothing per record.
const ctxCheckEvery = 1 << 16

// BuildStore converts an arbitrary (unsorted, possibly multi-edged) binary
// edge file into the bidirectional sorted graph store PDTL consumes — the
// full external-memory ingest pipeline of Section V-B:
//
//  1. mirror every edge so both directions exist (and drop self-loops);
//  2. externally sort by (source, destination);
//  3. scan once, deduplicating, to emit the degree and adjacency files.
//
// memEdges bounds the edges held in memory during sorting. Vertex count is
// the max id + 1 discovered during the mirror pass.
//
// Cancelling ctx aborts the pipeline between record batches and returns
// ctx.Err(); the intermediate files are removed, but a partially written
// store at base is left behind (the caller owns base's lifecycle). A nil
// ctx means context.Background().
func BuildStore(ctx context.Context, edgeFile, base, name string, memEdges int, c *ioacct.Counter) error {
	return BuildStoreFormat(ctx, edgeFile, base, name, memEdges, graph.FormatPlain, c)
}

// BuildStoreFormat is BuildStore with a chosen output store format. The
// mirror and sort passes are format-independent; only the final emit
// differs — a compressed build segment-encodes each deduplicated adjacency
// list as it streams off the sorted run, so the pipeline's memory bound is
// unchanged (one list at a time on top of the sort's memEdges).
func BuildStoreFormat(ctx context.Context, edgeFile, base, name string, memEdges int, format graph.Format, c *ioacct.Counter) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	mirrored := base + ".mirror"
	defer os.Remove(mirrored)
	n, err := mirrorEdges(ctx, edgeFile, mirrored, c)
	if err != nil {
		return err
	}

	sorted := base + ".sorted"
	defer os.Remove(sorted)
	if err := Sort(ctx, mirrored, sorted, memEdges, c); err != nil {
		return err
	}

	if format == graph.FormatCompressed {
		return emitCompressedStore(ctx, sorted, base, name, n, c)
	}
	return emitStore(ctx, sorted, base, name, n, c)
}

// mirrorEdges writes (u,v) and (v,u) for every non-loop input edge and
// reports the vertex count.
func mirrorEdges(ctx context.Context, src, dst string, c *ioacct.Counter) (int, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(ioacct.NewReader(in, c), 1<<20)
	bw := bufio.NewWriterSize(ioacct.NewWriter(out, c), 1<<20)

	var maxID uint32
	seen := false
	var rec [EdgeBytes]byte
	for count := 0; ; count++ {
		if count%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				out.Close()
				return 0, err
			}
		}
		_, rerr := io.ReadFull(br, rec[:])
		if rerr == io.EOF {
			break
		}
		if rerr == io.ErrUnexpectedEOF {
			out.Close()
			return 0, fmt.Errorf("extsort: %s: truncated edge record", src)
		}
		if rerr != nil {
			out.Close()
			return 0, rerr
		}
		u := binary.LittleEndian.Uint32(rec[0:])
		v := binary.LittleEndian.Uint32(rec[4:])
		if u == v {
			continue
		}
		seen = true
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		if _, err := bw.Write(rec[:]); err != nil {
			out.Close()
			return 0, err
		}
		binary.LittleEndian.PutUint32(rec[0:], v)
		binary.LittleEndian.PutUint32(rec[4:], u)
		if _, err := bw.Write(rec[:]); err != nil {
			out.Close()
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		return 0, err
	}
	n := 0
	if seen {
		n = int(maxID) + 1
	}
	return n, out.Close()
}

// emitCompressedStore is emitStore's compressed twin: it scans the sorted
// bidirectional edge file once, deduplicating, collects each vertex's
// adjacency list (one list in memory at a time — the sort guarantees
// grouped, ascending destinations) and emits it through CompressedWriter,
// with empty lists for vertices that have no edges.
func emitCompressedStore(ctx context.Context, sorted, base, name string, n int, c *ioacct.Counter) error {
	in, err := os.Open(sorted)
	if err != nil {
		return err
	}
	defer in.Close()
	br := bufio.NewReaderSize(ioacct.NewReader(in, c), 1<<20)

	w, err := graph.NewCompressedWriter(base, n, c)
	if err != nil {
		return err
	}

	degrees := make([]uint32, n)
	var entries uint64
	var maxDeg uint32
	var prevU, prevV uint32
	first := true
	var next uint32 // next vertex id to emit
	var cur []graph.Vertex
	// flushTo emits the pending list of prevU, then empty lists up to (but
	// not including) vertex u.
	flushTo := func(u uint32) error {
		if !first {
			if err := w.Add(cur); err != nil {
				return err
			}
			cur = cur[:0]
			next = prevU + 1
		}
		for ; next < u; next++ {
			if err := w.Add(nil); err != nil {
				return err
			}
		}
		return nil
	}
	var rec [EdgeBytes]byte
	for count := 0; ; count++ {
		if count%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				w.Finish()
				return err
			}
		}
		_, rerr := io.ReadFull(br, rec[:])
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			w.Finish()
			return rerr
		}
		u := binary.LittleEndian.Uint32(rec[0:])
		v := binary.LittleEndian.Uint32(rec[4:])
		if !first && u == prevU && v == prevV {
			continue // duplicate
		}
		if first || u != prevU {
			if err := flushTo(u); err != nil {
				w.Finish()
				return err
			}
		}
		first = false
		prevU, prevV = u, v
		degrees[u]++
		if degrees[u] > maxDeg {
			maxDeg = degrees[u]
		}
		entries++
		cur = append(cur, graph.Vertex(v))
	}
	if err := flushTo(uint32(n)); err != nil {
		w.Finish()
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}

	if err := writeDegreeFile(base, degrees, c); err != nil {
		return err
	}
	return graph.WriteMeta(base, graph.Meta{
		Name:        name,
		NumVertices: int64(n),
		NumEdges:    entries / 2,
		AdjEntries:  entries,
		Oriented:    false,
		MaxDegree:   maxDeg,
		Format:      graph.FormatCompressed,
	})
}

// writeDegreeFile writes the little-endian degree array file.
func writeDegreeFile(base string, degrees []uint32, c *ioacct.Counter) error {
	degOut, err := os.Create(graph.DegPath(base))
	if err != nil {
		return err
	}
	dw := bufio.NewWriterSize(ioacct.NewWriter(degOut, c), 1<<20)
	var scratch [graph.EntrySize]byte
	for _, d := range degrees {
		binary.LittleEndian.PutUint32(scratch[:], d)
		if _, err := dw.Write(scratch[:]); err != nil {
			degOut.Close()
			return err
		}
	}
	if err := dw.Flush(); err != nil {
		degOut.Close()
		return err
	}
	return degOut.Close()
}

// emitStore scans a sorted bidirectional edge file once, deduplicating, and
// writes the degree/adjacency/meta files.
func emitStore(ctx context.Context, sorted, base, name string, n int, c *ioacct.Counter) error {
	in, err := os.Open(sorted)
	if err != nil {
		return err
	}
	defer in.Close()
	br := bufio.NewReaderSize(ioacct.NewReader(in, c), 1<<20)

	adjOut, err := os.Create(graph.AdjPath(base))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(ioacct.NewWriter(adjOut, c), 1<<20)

	degrees := make([]uint32, n)
	var entries uint64
	var maxDeg uint32
	var prevU, prevV uint32
	first := true
	var rec [EdgeBytes]byte
	for count := 0; ; count++ {
		if count%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				adjOut.Close()
				return err
			}
		}
		_, rerr := io.ReadFull(br, rec[:])
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			adjOut.Close()
			return rerr
		}
		u := binary.LittleEndian.Uint32(rec[0:])
		v := binary.LittleEndian.Uint32(rec[4:])
		if !first && u == prevU && v == prevV {
			continue // duplicate
		}
		first = false
		prevU, prevV = u, v
		degrees[u]++
		if degrees[u] > maxDeg {
			maxDeg = degrees[u]
		}
		entries++
		if _, err := bw.Write(rec[4:8]); err != nil {
			adjOut.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		adjOut.Close()
		return err
	}
	if err := adjOut.Close(); err != nil {
		return err
	}

	if err := writeDegreeFile(base, degrees, c); err != nil {
		return err
	}

	return graph.WriteMeta(base, graph.Meta{
		Name:        name,
		NumVertices: int64(n),
		NumEdges:    entries / 2,
		AdjEntries:  entries,
		Oriented:    false,
		MaxDegree:   maxDeg,
	})
}

package extsort

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeEdges writes n sequential synthetic edges.
func writeEdges(t *testing.T, path string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, n*EdgeBytes)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[i*EdgeBytes:], uint32(i%997))
		binary.LittleEndian.PutUint32(buf[i*EdgeBytes+4:], uint32((i+1)%997))
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// TestBuildStoreCancelled: a pre-cancelled context aborts the ingest with
// the bare context error and leaves no intermediate files behind.
func TestBuildStoreCancelled(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "edges.bin")
	writeEdges(t, src, 200_000)
	base := filepath.Join(dir, "store")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := BuildStore(ctx, src, base, "x", 1<<16, nil); err != context.Canceled {
		t.Fatalf("BuildStore returned %v, want context.Canceled", err)
	}
	for _, suffix := range []string{".mirror", ".sorted"} {
		if _, err := os.Stat(base + suffix); !os.IsNotExist(err) {
			t.Errorf("intermediate %s survived a cancelled ingest", suffix)
		}
	}
}

// TestSortCancelled: Sort honors its context too.
func TestSortCancelled(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "edges.bin")
	writeEdges(t, src, 100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sort(ctx, src, filepath.Join(dir, "out.bin"), 1<<14, nil); err != context.Canceled {
		t.Fatalf("Sort returned %v, want context.Canceled", err)
	}
}

// TestSortCancelledLeavesNoRunFiles: a failed/cancelled sort must remove
// the spilled run files it already produced (the cleanup is installed
// before the spilling starts).
func TestSortCancelledLeavesNoRunFiles(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "edges.bin")
	writeEdges(t, src, 300_000)
	dst := filepath.Join(dir, "out.bin")
	// Cancel mid-spill: small memory so several runs spill, and a context
	// cancelled after the first batch boundary check window.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Sort(ctx, src, dst, 1<<15, nil) }()
	cancel()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("Sort returned %v", err)
	}
	matches, err := filepath.Glob(dst + ".run*")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("run files survived a cancelled sort: %v", matches)
	}
}

// Package extsort provides an external merge sort over binary edge files,
// the O(sort(|E|)) ingest step of Theorem IV.2 ("If the graph is not
// already sorted, an additional O(sort(E)) I/Os and O(E log E) computations
// are needed").
//
// An edge file is a flat sequence of little-endian uint32 pairs (8 bytes per
// edge). Sorting follows the Aggarwal–Vitter external mergesort: runs of at
// most M edges are sorted in memory and spilled, then merged with a k-way
// heap in a single pass (our datasets never need more than one merge level;
// the merge recurses if they do).
package extsort

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// EdgeBytes is the on-disk size of one edge record.
const EdgeBytes = 2 * graph.EntrySize

// WriteEdgeFile writes edges as binary records to path.
func WriteEdgeFile(path string, edges []graph.Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var rec [EdgeBytes]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:], e.U)
		binary.LittleEndian.PutUint32(rec[4:], e.V)
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEdgeFile reads a whole binary edge file (test/tool helper).
func ReadEdgeFile(path string) ([]graph.Edge, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(blob)%EdgeBytes != 0 {
		return nil, fmt.Errorf("extsort: %s: size %d not a multiple of %d", path, len(blob), EdgeBytes)
	}
	edges := make([]graph.Edge, len(blob)/EdgeBytes)
	for i := range edges {
		edges[i] = graph.Edge{
			U: binary.LittleEndian.Uint32(blob[i*EdgeBytes:]),
			V: binary.LittleEndian.Uint32(blob[i*EdgeBytes+4:]),
		}
	}
	return edges, nil
}

func edgeLess(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Sort externally sorts the edge file at src into dst by (U, V), holding at
// most memEdges edges in memory at a time. I/O is charged to c (nil for a
// private counter). Cancelling ctx aborts between record batches and
// returns ctx.Err(); run files are cleaned up, a partial dst may remain. A
// nil ctx means context.Background().
func Sort(ctx context.Context, src, dst string, memEdges int, c *ioacct.Counter) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if memEdges < 1 {
		return fmt.Errorf("extsort: memory budget %d, need ≥ 1", memEdges)
	}
	if c == nil {
		c = ioacct.NewCounter(0)
	}
	// The cleanup is installed before makeRuns because makeRuns returns
	// the partial run list alongside its error — a cancelled or failed
	// spill must not leave .runN files behind.
	var runs []string
	defer func() {
		for _, r := range runs {
			os.Remove(r)
		}
	}()
	var err error
	if runs, err = makeRuns(ctx, src, dst, memEdges, c); err != nil {
		return err
	}
	if len(runs) == 0 {
		// Empty input: emit an empty output.
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		return f.Close()
	}
	if len(runs) == 1 {
		return os.Rename(runs[0], dst)
	}
	return mergeRuns(ctx, runs, dst, c)
}

// makeRuns splits src into sorted run files.
func makeRuns(ctx context.Context, src, dst string, memEdges int, c *ioacct.Counter) ([]string, error) {
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(ioacct.NewReader(f, c), 1<<20)

	var runs []string
	buf := make([]graph.Edge, 0, memEdges)
	rec := make([]byte, EdgeBytes)
	for count := 0; ; count++ {
		if count%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return runs, err
			}
		}
		_, rerr := io.ReadFull(br, rec)
		if rerr == io.EOF {
			break
		}
		if rerr == io.ErrUnexpectedEOF {
			return runs, fmt.Errorf("extsort: %s: truncated edge record", src)
		}
		if rerr != nil {
			return runs, rerr
		}
		buf = append(buf, graph.Edge{
			U: binary.LittleEndian.Uint32(rec[0:]),
			V: binary.LittleEndian.Uint32(rec[4:]),
		})
		if len(buf) == memEdges {
			run, err := spillRun(dst, len(runs), buf, c)
			if err != nil {
				return runs, err
			}
			runs = append(runs, run)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		run, err := spillRun(dst, len(runs), buf, c)
		if err != nil {
			return runs, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

func spillRun(dst string, idx int, edges []graph.Edge, c *ioacct.Counter) (string, error) {
	sort.Slice(edges, func(i, j int) bool { return edgeLess(edges[i], edges[j]) })
	path := fmt.Sprintf("%s.run%d", dst, idx)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriterSize(ioacct.NewWriter(f, c), 1<<20)
	var rec [EdgeBytes]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:], e.U)
		binary.LittleEndian.PutUint32(rec[4:], e.V)
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return "", err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// runReader streams one sorted run.
type runReader struct {
	br   *bufio.Reader
	f    *os.File
	head graph.Edge
	done bool
}

func (r *runReader) advance() error {
	var rec [EdgeBytes]byte
	_, err := io.ReadFull(r.br, rec[:])
	if err == io.EOF {
		r.done = true
		return nil
	}
	if err != nil {
		return err
	}
	r.head = graph.Edge{
		U: binary.LittleEndian.Uint32(rec[0:]),
		V: binary.LittleEndian.Uint32(rec[4:]),
	}
	return nil
}

// runHeap is a min-heap over run heads.
type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return edgeLess(h[i].head, h[j].head) }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns k-way merges sorted runs into dst.
func mergeRuns(ctx context.Context, runs []string, dst string, c *ioacct.Counter) error {
	h := make(runHeap, 0, len(runs))
	defer func() {
		for _, r := range h {
			r.f.Close()
		}
	}()
	for _, path := range runs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rr := &runReader{f: f, br: bufio.NewReaderSize(ioacct.NewReader(f, c), 256<<10)}
		if err := rr.advance(); err != nil {
			f.Close()
			return err
		}
		if rr.done {
			f.Close()
			continue
		}
		h = append(h, rr)
	}
	heap.Init(&h)

	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(ioacct.NewWriter(out, c), 1<<20)
	var rec [EdgeBytes]byte
	for count := 0; h.Len() > 0; count++ {
		if count%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				out.Close()
				return err
			}
		}
		top := h[0]
		binary.LittleEndian.PutUint32(rec[0:], top.head.U)
		binary.LittleEndian.PutUint32(rec[4:], top.head.V)
		if _, err := bw.Write(rec[:]); err != nil {
			out.Close()
			return err
		}
		if err := top.advance(); err != nil {
			out.Close()
			return err
		}
		if top.done {
			top.f.Close()
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

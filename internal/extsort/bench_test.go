package extsort

import (
	"math/rand"
	"path/filepath"
	"testing"

	"pdtl/internal/graph"
)

// BenchmarkExternalSort measures the run-spill + k-way-merge pipeline with
// a budget forcing ~16 runs.
func BenchmarkExternalSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := make([]graph.Edge, 200_000)
	for i := range edges {
		edges[i] = graph.Edge{U: rng.Uint32() % 50_000, V: rng.Uint32() % 50_000}
	}
	dir := b.TempDir()
	src := filepath.Join(dir, "in.bin")
	if err := WriteEdgeFile(src, edges); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(edges)) * EdgeBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := filepath.Join(dir, "out.bin")
		if err := Sort(nil, src, dst, len(edges)/16, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package orient

import (
	"fmt"
	"path/filepath"
	"testing"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

// BenchmarkOrient measures the orientation step at 1 and 2 workers.
func BenchmarkOrient(b *testing.B) {
	g, err := gen.RMAT(12, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	src := filepath.Join(dir, "g")
	if err := graph.WriteCSR(src, "bench", g); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(g.AdjEntries()) * graph.EntrySize)
			for i := 0; i < b.N; i++ {
				dst := filepath.Join(dir, fmt.Sprintf("o%d-%d", workers, i))
				if _, err := Orient(src, dst, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrientCSR measures the in-memory orientation used by the
// baselines.
func BenchmarkOrientCSR(b *testing.B) {
	g, err := gen.RMAT(12, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o := CSR(g); o.NumEdges() != g.NumEdges() {
			b.Fatal("edge count mismatch")
		}
	}
}

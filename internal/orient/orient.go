// Package orient implements the degree-based orientation step of PDTL
// (Definition III.2 and Section IV-B of the paper).
//
// The degree-based order ≺ on V is: u ≺ v iff d(u) < d(v), or d(u) = d(v)
// and u < v. The orientation G* of G keeps edge (u, v) iff u ≺ v, turning
// every triangle {u ≺ v ≺ w} into the unique tuple (u, v, w) with cone
// vertex u and pivot edge (v, w).
//
// Orientation is the only preprocessing PDTL needs, and the paper
// parallelizes it (Figure 2, Table IX): the master reads the entire degree
// array into memory (assumed to fit, Section IV-A2), cuts the adjacency
// file into P contiguous vertex spans, filters each span concurrently into
// a spill file, and concatenates the spills. Because filtering preserves
// order, the oriented lists remain sorted by vertex id — the property the
// modified MGT's array intersections rely on.
package orient

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
)

// Less reports u ≺ v under the degree-based order for the given degree
// array.
func Less(deg []uint32, u, v graph.Vertex) bool {
	if deg[u] != deg[v] {
		return deg[u] < deg[v]
	}
	return u < v
}

// Result summarizes an orientation run.
type Result struct {
	// Base is the output store's base path.
	Base string
	// MaxOutDegree is d*max, the maximum out-degree of G*; MGT's nm/nmp
	// scratch arrays are sized by it and the small-degree assumption
	// compares it against the memory budget.
	MaxOutDegree uint32
	// OutDegrees is d_G*(v) for every v.
	OutDegrees []uint32
	// InDegrees is d_G(v) − d_G*(v) for every v: the number of incoming
	// oriented edges, which Section IV-B uses as the load-balancing weight
	// (it estimates the average size of N+(u) and thus the number of
	// required intersections whose in-memory operand is Ev).
	InDegrees []uint32
	// Workers is the parallelism used.
	Workers int
	// Duration is the wall time of the orientation.
	Duration time.Duration
	// IO is the I/O activity charged during orientation.
	IO ioacct.Stats
}

// Orient reads the undirected store rooted at src and writes its orientation
// to a new plain-format store rooted at dst, using the given number of
// parallel workers (minimum 1). The input must be an unoriented store.
func Orient(src, dst string, workers int) (*Result, error) {
	return OrientFormat(src, dst, workers, graph.FormatPlain)
}

// OrientFormat is Orient with a chosen output store format. The parallel
// span structure is identical either way; a compressed output encodes each
// span's filtered lists into delta-varint/bitmap segments in the spill
// files (recording per-vertex encoded lengths), so the concatenation step
// needs only a magic prefix and the .cidx index — the full oriented store
// is never held in memory in either format. The input store may itself be
// in either format: spans read it through the format-agnostic scanner.
func OrientFormat(src, dst string, workers int, format graph.Format) (*Result, error) {
	start := time.Now()
	if workers < 1 {
		workers = 1
	}
	d, err := graph.Open(src)
	if err != nil {
		return nil, err
	}
	if d.Meta.Oriented {
		return nil, fmt.Errorf("orient: %s is already oriented", src)
	}
	n := d.NumVertices()
	counter := ioacct.NewCounter(0)
	outDeg := make([]uint32, n)
	var outBytes []uint32 // per-vertex encoded lengths (compressed output)
	if format == graph.FormatCompressed {
		outBytes = make([]uint32, n)
	}

	spans := vertexSpans(d, workers)
	spills := make([]string, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, span := range spans {
		spills[i] = fmt.Sprintf("%s.spill%d", dst, i)
		wg.Add(1)
		go func(i int, span [2]graph.Vertex) {
			defer wg.Done()
			errs[i] = orientSpan(d, span[0], span[1], spills[i], outDeg, outBytes, counter)
		}(i, span)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			cleanup(spills)
			return nil, err
		}
	}
	if format == graph.FormatCompressed {
		err = graph.ConcatCompressed(dst, spills, outBytes, counter)
	} else {
		err = concatFiles(graph.AdjPath(dst), spills, counter)
	}
	if err != nil {
		cleanup(spills)
		return nil, err
	}
	cleanup(spills)

	var dstMax uint32
	var outEntries uint64
	inDeg := make([]uint32, n)
	for v := 0; v < n; v++ {
		if outDeg[v] > dstMax {
			dstMax = outDeg[v]
		}
		outEntries += uint64(outDeg[v])
		inDeg[v] = d.Degrees[v] - outDeg[v]
	}
	if outEntries != d.Meta.NumEdges {
		return nil, fmt.Errorf("orient: produced %d oriented edges, want %d", outEntries, d.Meta.NumEdges)
	}
	if err := writeDegrees(graph.DegPath(dst), outDeg, counter); err != nil {
		return nil, err
	}
	// The in-degree file feeds the load balancer (Section IV-B); persisting
	// it lets an engine rebalance an oriented store without re-reading G.
	if err := writeDegrees(InDegPath(dst), inDeg, counter); err != nil {
		return nil, err
	}
	meta := d.Meta
	meta.Oriented = true
	meta.AdjEntries = outEntries
	meta.MaxOutDegree = dstMax
	meta.Format = ""
	if format == graph.FormatCompressed {
		meta.Format = graph.FormatCompressed
	}
	if err := graph.WriteMeta(dst, meta); err != nil {
		return nil, err
	}
	return &Result{
		Base:         dst,
		MaxOutDegree: dstMax,
		OutDegrees:   outDeg,
		InDegrees:    inDeg,
		Workers:      workers,
		Duration:     time.Since(start),
		IO:           counter.Snapshot(),
	}, nil
}

// vertexSpans cuts [0, n) into at most `workers` contiguous vertex spans of
// approximately equal adjacency-entry volume.
func vertexSpans(d *graph.Disk, workers int) [][2]graph.Vertex {
	n := d.NumVertices()
	total := d.Meta.AdjEntries
	if n == 0 {
		return [][2]graph.Vertex{{0, 0}}
	}
	if uint64(workers) > total {
		if total == 0 {
			workers = 1
		} else {
			workers = int(total)
		}
	}
	spans := make([][2]graph.Vertex, 0, workers)
	var v graph.Vertex
	for i := 0; i < workers; i++ {
		target := total * uint64(i+1) / uint64(workers)
		end := v
		for int(end) < n && d.Offsets[end+1] <= target {
			end++
		}
		if i == workers-1 {
			end = graph.Vertex(n)
		}
		if end > v || i == 0 {
			spans = append(spans, [2]graph.Vertex{v, end})
			v = end
		}
	}
	if int(v) < n {
		spans[len(spans)-1][1] = graph.Vertex(n)
	}
	return spans
}

// orientSpan filters the adjacency lists of vertices [lo, hi) through the
// degree-based order into a spill file, and records out-degrees. A nil
// outBytes writes raw little-endian entries (plain output); otherwise each
// vertex's kept list is segment-encoded in place and its encoded byte
// length recorded in outBytes (compressed output).
func orientSpan(d *graph.Disk, lo, hi graph.Vertex, spill string, outDeg, outBytes []uint32, c *ioacct.Counter) error {
	out, err := os.Create(spill)
	if err != nil {
		return err
	}
	defer out.Close()
	bw := bufio.NewWriterSize(ioacct.NewWriter(out, c), 1<<20)

	sc, err := d.NewScannerAt(lo, c, 1<<20)
	if err != nil {
		return err
	}
	defer sc.Close()

	deg := d.Degrees
	var scratch [graph.EntrySize]byte
	var enc graph.ListEncoder
	var kept []graph.Vertex
	var encBuf []byte
	for {
		u, list, ok := sc.Next()
		if !ok || u >= hi {
			break
		}
		if outBytes != nil {
			kept = kept[:0]
			for _, v := range list {
				if Less(deg, u, v) {
					kept = append(kept, v)
				}
			}
			encBuf = enc.Append(encBuf[:0], kept)
			if _, err := bw.Write(encBuf); err != nil {
				return err
			}
			outDeg[u] = uint32(len(kept))
			outBytes[u] = uint32(len(encBuf))
			continue
		}
		var n uint32
		for _, v := range list {
			if Less(deg, u, v) {
				binary.LittleEndian.PutUint32(scratch[:], v)
				if _, err := bw.Write(scratch[:]); err != nil {
					return err
				}
				n++
			}
		}
		outDeg[u] = n
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

func concatFiles(dst string, parts []string, c *ioacct.Counter) error {
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer out.Close()
	bw := bufio.NewWriterSize(ioacct.NewWriter(out, c), 1<<20)
	for _, p := range parts {
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		_, err = io.Copy(bw, ioacct.NewReader(in, c))
		in.Close()
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeDegrees(path string, deg []uint32, c *ioacct.Counter) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(ioacct.NewWriter(f, c), 1<<20)
	var scratch [graph.EntrySize]byte
	for _, d := range deg {
		binary.LittleEndian.PutUint32(scratch[:], d)
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func cleanup(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}

// InDegPath is the path of the persisted in-degree file of an oriented
// store rooted at base.
func InDegPath(base string) string { return base + ".indeg" }

// LoadInDegrees reads the persisted in-degree array of an oriented store.
func LoadInDegrees(base string, n int) ([]uint32, error) {
	f, err := os.Open(InDegPath(base))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n*graph.EntrySize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("orient: read in-degrees %s: %w", InDegPath(base), err)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[i*graph.EntrySize:])
	}
	return out, nil
}

// CSR orients an in-memory graph, returning the oriented CSR (out-lists
// sorted by id) — the in-memory analogue used by baselines and tests.
func CSR(g *graph.CSR) *graph.CSR {
	n := g.NumVertices()
	deg := g.Degrees()
	outDeg := make([]uint32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if Less(deg, graph.Vertex(u), v) {
				outDeg[u]++
			}
		}
	}
	offsets := make([]uint64, n+1)
	var run uint64
	for v := 0; v < n; v++ {
		offsets[v] = run
		run += uint64(outDeg[v])
	}
	offsets[n] = run
	adj := make([]graph.Vertex, run)
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.Vertex(u)) {
			if Less(deg, graph.Vertex(u), v) {
				adj[cursor[u]] = v
				cursor[u]++
			}
		}
	}
	return &graph.CSR{Offsets: offsets, Adj: adj, Oriented: true}
}

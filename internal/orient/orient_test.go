package orient

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"pdtl/internal/gen"
	"pdtl/internal/graph"
)

func writeStore(t *testing.T, g *graph.CSR, name string) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), name)
	if err := graph.WriteCSR(base, name, g); err != nil {
		t.Fatal(err)
	}
	return base
}

func orientOnDisk(t *testing.T, g *graph.CSR, workers int) (*Result, *graph.CSR) {
	t.Helper()
	src := writeStore(t, g, "src")
	dst := filepath.Join(t.TempDir(), "dst")
	res, err := Orient(src, dst, workers)
	if err != nil {
		t.Fatalf("Orient: %v", err)
	}
	d, err := graph.Open(dst)
	if err != nil {
		t.Fatalf("Open oriented: %v", err)
	}
	if !d.Meta.Oriented {
		t.Fatal("output not marked oriented")
	}
	oriented, err := d.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	return res, oriented
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	deg := []uint32{3, 1, 1, 5, 3}
	n := graph.Vertex(len(deg))
	for u := graph.Vertex(0); u < n; u++ {
		if Less(deg, u, u) {
			t.Errorf("Less(%d,%d) must be false (irreflexive)", u, u)
		}
		for v := graph.Vertex(0); v < n; v++ {
			if u == v {
				continue
			}
			if Less(deg, u, v) == Less(deg, v, u) {
				t.Errorf("Less not antisymmetric/total for (%d,%d)", u, v)
			}
			for w := graph.Vertex(0); w < n; w++ {
				if Less(deg, u, v) && Less(deg, v, w) && !Less(deg, u, w) {
					t.Errorf("Less not transitive: %d≺%d≺%d", u, v, w)
				}
			}
		}
	}
}

func TestOrientK4(t *testing.T) {
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	res, oriented := orientOnDisk(t, g, 1)
	// All degrees equal, so ≺ falls back to id order: v's out-list is
	// {v+1, ..., 3}.
	if oriented.NumEdges() != 6 {
		t.Errorf("oriented edges = %d, want 6", oriented.NumEdges())
	}
	if res.MaxOutDegree != 3 {
		t.Errorf("d*max = %d, want 3", res.MaxOutDegree)
	}
	if got := oriented.Neighbors(0); !reflect.DeepEqual(got, []graph.Vertex{1, 2, 3}) {
		t.Errorf("out(0) = %v", got)
	}
	if got := oriented.Degree(3); got != 0 {
		t.Errorf("out-degree of max vertex = %d, want 0", got)
	}
	// In-degrees: d(v) - d*(v).
	wantIn := []uint32{0, 1, 2, 3}
	if !reflect.DeepEqual(res.InDegrees, wantIn) {
		t.Errorf("InDegrees = %v, want %v", res.InDegrees, wantIn)
	}
}

func TestOrientMatchesCSR(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		g, err := gen.ErdosRenyi(200, 1500, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, onDisk := orientOnDisk(t, g, workers)
		inMem := CSR(g)
		if !reflect.DeepEqual(onDisk.Adj, inMem.Adj) {
			t.Errorf("workers=%d: disk orientation differs from in-memory", workers)
		}
		if !reflect.DeepEqual(onDisk.Offsets, inMem.Offsets) {
			t.Errorf("workers=%d: offsets differ", workers)
		}
	}
}

func TestOrientRejectsOriented(t *testing.T) {
	g, err := gen.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	src := writeStore(t, g, "src")
	dst := filepath.Join(t.TempDir(), "o1")
	if _, err := Orient(src, dst, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Orient(dst, filepath.Join(t.TempDir(), "o2"), 1); err == nil {
		t.Fatal("orienting an oriented store must fail")
	}
}

func TestOrientEmptyAndTiny(t *testing.T) {
	empty, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, oriented := orientOnDisk(t, empty, 4); oriented.NumEdges() != 0 {
		t.Error("empty orientation should have no edges")
	}
	single, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_, oriented := orientOnDisk(t, single, 8)
	if oriented.NumEdges() != 1 {
		t.Errorf("single edge oriented to %d edges", oriented.NumEdges())
	}
}

// Property: orientation keeps exactly one direction of every undirected
// edge, out-lists stay sorted, and Σ d_G(v)·d_G*(v) respects the arboricity
// bound proof chain (≤ Σ min degrees, Theorem IV.1).
func TestOrientationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g, err := gen.ErdosRenyi(n, rng.Intn(5*n), seed)
		if err != nil {
			return false
		}
		o := CSR(g)
		if o.NumEdges() != g.NumEdges() {
			return false
		}
		deg := g.Degrees()
		for u := 0; u < n; u++ {
			list := o.Neighbors(graph.Vertex(u))
			for i, v := range list {
				if !Less(deg, graph.Vertex(u), v) {
					return false // wrong direction kept
				}
				if i > 0 && list[i-1] >= v {
					return false // unsorted
				}
			}
		}
		// Theorem IV.1 chain: Σ d(v)·d*(v) ≤ Σ_(u,v)∈E min(d(u),d(v)).
		outDeg := o.Degrees()
		if graph.OrderingSum(g, outDeg) > graph.MinDegreeSum(g) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: worker count never changes the result.
func TestOrientWorkerInvariance(t *testing.T) {
	g, err := gen.RMAT(9, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	_, ref := orientOnDisk(t, g, 1)
	for _, workers := range []int{2, 5, 16} {
		_, got := orientOnDisk(t, g, workers)
		if !reflect.DeepEqual(got.Adj, ref.Adj) {
			t.Errorf("workers=%d changed orientation output", workers)
		}
	}
}

func TestOrientRecordsIO(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := orientOnDisk(t, g, 2)
	if res.IO.BytesRead == 0 || res.IO.BytesWritten == 0 {
		t.Errorf("orientation IO not recorded: %+v", res.IO)
	}
	if res.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

// TestOrientFormatCompressed checks that a compressed-format orientation is
// logically identical to the plain one — same metadata, same out-degrees,
// same adjacency content — and physically byte-identical to converting the
// plain output (the segment encoder is deterministic). Multiple worker
// counts exercise the parallel span encoding.
func TestOrientFormatCompressed(t *testing.T) {
	g, err := gen.PowerLaw(500, 7000, 1.9, 21)
	if err != nil {
		t.Fatal(err)
	}
	src := writeStore(t, g, "src")
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain")
	pres, err := Orient(src, plain, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(dir, "ref")
	if err := graph.ConvertStore(plain, ref, graph.FormatCompressed); err != nil {
		t.Fatal(err)
	}
	refCadj, err := os.ReadFile(graph.CAdjPath(ref))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := graph.Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pd.LoadCSR()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		comp := filepath.Join(dir, fmt.Sprintf("comp%d", workers))
		cres, err := OrientFormat(src, comp, workers, graph.FormatCompressed)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if cres.MaxOutDegree != pres.MaxOutDegree {
			t.Errorf("workers=%d: max out-degree %d, plain %d", workers, cres.MaxOutDegree, pres.MaxOutDegree)
		}
		if !reflect.DeepEqual(cres.OutDegrees, pres.OutDegrees) {
			t.Errorf("workers=%d: out-degrees differ from plain orientation", workers)
		}
		if !reflect.DeepEqual(cres.InDegrees, pres.InDegrees) {
			t.Errorf("workers=%d: in-degrees differ from plain orientation", workers)
		}
		cd, err := graph.Open(comp)
		if err != nil {
			t.Fatal(err)
		}
		if cd.Format() != graph.FormatCompressed {
			t.Fatalf("workers=%d: opened format %q", workers, cd.Format())
		}
		got, err := cd.LoadCSR()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Offsets, want.Offsets) || !reflect.DeepEqual(got.Adj, want.Adj) {
			t.Errorf("workers=%d: compressed orientation decodes differently from plain", workers)
		}
		cadj, err := os.ReadFile(graph.CAdjPath(comp))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cadj, refCadj) {
			t.Errorf("workers=%d: .cadj bytes differ from converted plain orientation", workers)
		}
	}
}

package cluster

import (
	"context"
	"os"
	"sort"
	"testing"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/mgt"
	"pdtl/internal/sched"

	"path/filepath"
)

// TestDistributedStealingMatchesReference runs the chunk-dispensing
// protocol end to end: the master must hand every chunk out exactly once
// across nodes and the summed counts must match the baseline, for any
// cluster size including the degenerate local one.
func TestDistributedStealingMatchesReference(t *testing.T) {
	g, err := gen.RMAT(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := writeStore(t, g, "rmat10")

	for _, clients := range []int{0, 1, 3} {
		lc := startCluster(t, clients)
		res, err := Run(context.Background(), Config{
			GraphBase: base,
			Workers:   2,
			MemEdges:  512,
			Strategy:  balance.InDegree,
			Sched:     sched.Stealing,
			Chunks:    4,
		}, lc.Addrs())
		if err != nil {
			t.Fatalf("clients=%d: %v", clients, err)
		}
		if res.Triangles != want {
			t.Errorf("clients=%d: triangles = %d, want %d", clients, res.Triangles, want)
		}
		// Every chunk of the global plan must have been executed exactly
		// once: per-node chunk counts sum to the plan size.
		wantChunks := sched.ChunksFor((clients+1)*2, 4)
		if len(res.Plan.Ranges) != wantChunks {
			t.Errorf("clients=%d: plan has %d chunks, want %d", clients, len(res.Plan.Ranges), wantChunks)
		}
		gotChunks := 0
		for _, n := range res.Nodes {
			for _, w := range n.Workers {
				gotChunks += w.Chunks
			}
		}
		if gotChunks != wantChunks {
			t.Errorf("clients=%d: nodes executed %d chunks, want %d", clients, gotChunks, wantChunks)
		}
	}
}

// TestDistributedStealingListing checks the chunk-ordered listing
// assembly: the triples of a stealing run, re-sorted, must equal the
// static run's, and the raw stealing listing must be identical across runs
// (segments are concatenated by global chunk index, not arrival order).
func TestDistributedStealingListing(t *testing.T) {
	g, err := gen.PowerLaw(300, 4500, 2.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "pl")
	dir := t.TempDir()

	runList := func(name string, mode sched.Mode) []byte {
		t.Helper()
		lc := startCluster(t, 2)
		path := filepath.Join(dir, name)
		_, err := Run(context.Background(), Config{
			GraphBase: base,
			Workers:   2,
			MemEdges:  256,
			Strategy:  balance.InDegree,
			Sched:     mode,
			Chunks:    4,
			List:      true,
			ListPath:  path,
		}, lc.Addrs())
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	normalize := func(raw []byte) [][3]uint32 {
		t.Helper()
		f := filepath.Join(dir, "tmp.bin")
		if err := os.WriteFile(f, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		fh, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()
		tris, err := mgt.ReadTriangles(fh)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(tris, func(i, j int) bool {
			if tris[i][0] != tris[j][0] {
				return tris[i][0] < tris[j][0]
			}
			if tris[i][1] != tris[j][1] {
				return tris[i][1] < tris[j][1]
			}
			return tris[i][2] < tris[j][2]
		})
		return tris
	}

	staticList := runList("static.bin", sched.Static)
	stealList := runList("steal.bin", sched.Stealing)
	a, b := normalize(staticList), normalize(stealList)
	if len(a) != len(b) {
		t.Fatalf("static listed %d triangles, stealing %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("normalized listings diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDistributedStealingCancel: a cancelled stealing protocol aborts
// promptly with the bare context error, same as the static path.
func TestDistributedStealingCancel(t *testing.T) {
	g, err := gen.RMAT(10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "rmatc")
	lc := startCluster(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(ctx, Config{
		GraphBase: base,
		Workers:   2,
		MemEdges:  64,
		Sched:     sched.Stealing,
	}, lc.Addrs())
	if err != context.Canceled {
		t.Fatalf("pre-cancelled stealing run returned %v, want context.Canceled", err)
	}
}

// Chaos tests: kill (or wedge) a worker mid-run and assert the distributed
// protocol still produces the exact count and the same order-normalized
// listing as a single-node baseline, with the failure visible in
// Result.Failures. The chaos node is a real RPC server whose handlers
// close their own server mid-call — the in-process equivalent of
// SIGKILLing a pdtl-worker (the CI fault-injection job does the real
// thing).

package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/mgt"
	"pdtl/internal/sched"
)

// chaosNode wraps a real Node and injects failures: it can kill its own
// server on the k-th Count or GraphChunk RPC (a crash mid-calculation or
// mid-copy), or wedge — block Count and all later Pings forever, the
// silent-partition case only the heartbeat can detect.
type chaosNode struct {
	*Node
	srv         atomic.Pointer[Server]
	killAtCount int64
	killAtChunk int64
	counts      atomic.Int64
	chunks      atomic.Int64
	hangCount   chan struct{} // non-nil: Count (and subsequent Pings) block until closed
	hung        atomic.Bool
}

func (c *chaosNode) kill() {
	if s := c.srv.Load(); s != nil {
		s.Close()
	}
}

func (c *chaosNode) Count(args *CountArgs, reply *CountReply) error {
	if c.hangCount != nil {
		c.counts.Add(1)
		c.hung.Store(true)
		<-c.hangCount
		return fmt.Errorf("chaos: wedged")
	}
	if n := c.counts.Add(1); c.killAtCount > 0 && n == c.killAtCount {
		c.kill()
	}
	return c.Node.Count(args, reply)
}

func (c *chaosNode) GraphChunk(args *ChunkArgs, reply *struct{}) error {
	if n := c.chunks.Add(1); c.killAtChunk > 0 && n == c.killAtChunk {
		c.kill()
	}
	return c.Node.GraphChunk(args, reply)
}

func (c *chaosNode) Ping(args *PingArgs, reply *PingReply) error {
	if c.hangCount != nil && c.hung.Load() {
		<-c.hangCount
		return fmt.Errorf("chaos: wedged")
	}
	return c.Node.Ping(args, reply)
}

// startChaosWorker serves a chaos node on loopback and returns its address.
func startChaosWorker(t *testing.T, c *chaosNode) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serveRcvr(c, c.Node, lis)
	if err != nil {
		t.Fatal(err)
	}
	c.srv.Store(srv)
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// normalizeListing decodes a listing file and sorts the triples — the
// order-normalized form chaos runs are compared in (recovery may legally
// permute segment execution, never the triangle set).
func normalizeListing(t *testing.T, path string) [][3]uint32 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tris, err := mgt.ReadTriangles(f)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(tris, func(i, j int) bool {
		if tris[i][0] != tris[j][0] {
			return tris[i][0] < tris[j][0]
		}
		if tris[i][1] != tris[j][1] {
			return tris[i][1] < tris[j][1]
		}
		return tris[i][2] < tris[j][2]
	})
	return tris
}

// chaosFixture builds the shared baseline: a skewed graph, its exact
// count, and a single-node listing to compare recovered runs against.
func chaosFixture(t *testing.T, name string) (base string, want uint64, ref [][3]uint32, dir string) {
	t.Helper()
	g, err := gen.RMAT(11, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	want = baseline.Forward(g)
	base = writeStore(t, g, name)
	dir = t.TempDir()
	refPath := filepath.Join(dir, "ref.bin")
	res, err := Run(context.Background(), Config{
		GraphBase: base, Workers: 2, MemEdges: 256, List: true, ListPath: refPath,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != want {
		t.Fatalf("single-node baseline = %d, want %d", res.Triangles, want)
	}
	return base, want, normalizeListing(t, refPath), dir
}

func assertChaosRun(t *testing.T, res *Result, err error, want uint64, ref [][3]uint32, listPath, chaosAddr string) {
	t.Helper()
	if err != nil {
		t.Fatalf("run with killed worker failed: %v", err)
	}
	if res.Triangles != want {
		t.Errorf("triangles = %d, want %d", res.Triangles, want)
	}
	got := normalizeListing(t, listPath)
	if len(got) != len(ref) {
		t.Fatalf("recovered run listed %d triangles, baseline %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("normalized listings diverge at %d: %v vs %v", i, got[i], ref[i])
		}
	}
	found := false
	for _, f := range res.Failures {
		if f.Addr == chaosAddr {
			found = true
			if f.Err == "" || f.Time.IsZero() {
				t.Errorf("failure entry incomplete: %+v", f)
			}
		}
	}
	if !found {
		t.Errorf("killed worker %s missing from Result.Failures: %+v", chaosAddr, res.Failures)
	}
}

// TestChaosStaticWorkerKilledMidCalc kills one of three workers during its
// Count (static mode sends each node exactly one, so the kill is
// deterministic): the node's whole range group must be re-split across the
// survivors and the run must match the single-node baseline exactly.
func TestChaosStaticWorkerKilledMidCalc(t *testing.T) {
	base, want, ref, dir := chaosFixture(t, "chaos-static")
	lc := startCluster(t, 2)
	chaos := &chaosNode{Node: NewNode("chaos", t.TempDir(), 0), killAtCount: 1}
	chaosAddr := startChaosWorker(t, chaos)
	addrs := []string{lc.Addrs()[0], chaosAddr, lc.Addrs()[1]}

	listPath := filepath.Join(dir, "static.bin")
	res, err := Run(context.Background(), Config{
		GraphBase: base, Workers: 2, MemEdges: 256, List: true, ListPath: listPath,
	}, addrs)
	assertChaosRun(t, res, err, want, ref, listPath, chaosAddr)
	if chaos.counts.Load() == 0 {
		t.Error("chaos worker never received its Count — kill did not happen mid-calculation")
	}
	// A mid-calculation death is attributed to the node's work unit, not
	// reported as a pre-calculation (dial/copy) failure.
	for _, f := range res.Failures {
		if f.Addr == chaosAddr && (f.Chunk < 0 || f.Ranges == 0) {
			t.Errorf("mid-calculation failure misattributed: %+v", f)
		}
	}
	// The static listing is not just set-equal but byte-identical to a
	// healthy distributed run: segments are assembled by global plan
	// index, which recovery preserves.
	healthyPath := filepath.Join(dir, "healthy.bin")
	lc2 := startCluster(t, 3)
	if _, err := Run(context.Background(), Config{
		GraphBase: base, Workers: 2, MemEdges: 256, List: true, ListPath: healthyPath,
	}, lc2.Addrs()); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(listPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(healthyPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("recovered static listing is not byte-identical to the healthy run's")
	}
}

// TestChaosStaticWorkerKilledMidCopy kills the worker while its replica is
// still streaming: the copy RPC fails, the node is declared lost before it
// computed anything, and its group is recovered.
func TestChaosStaticWorkerKilledMidCopy(t *testing.T) {
	base, want, ref, dir := chaosFixture(t, "chaos-copy")
	lc := startCluster(t, 2)
	chaos := &chaosNode{Node: NewNode("chaos", t.TempDir(), 0), killAtChunk: 3}
	chaosAddr := startChaosWorker(t, chaos)
	addrs := []string{chaosAddr, lc.Addrs()[0], lc.Addrs()[1]}

	listPath := filepath.Join(dir, "copychaos.bin")
	res, err := Run(context.Background(), Config{
		GraphBase: base, Workers: 2, MemEdges: 256,
		ChunkBytes: 4096, // many chunks, so chunk 3 is mid-copy
		List:       true, ListPath: listPath,
	}, addrs)
	assertChaosRun(t, res, err, want, ref, listPath, chaosAddr)
	// A mid-copy death held no work yet: pre-calculation attribution.
	for _, f := range res.Failures {
		if f.Addr == chaosAddr && f.Chunk != -1 {
			t.Errorf("mid-copy failure misattributed to a work unit: %+v", f)
		}
	}
}

// TestChaosStealingWorkerKilled kills a worker on its first chunk batch:
// the batch must be requeued (with the dead node excluded) and drained by
// the survivors, and the chunk-indexed listing must still match the
// baseline. Batch dispatch to a remote node races the master's own drain
// (on a single-CPU box the in-process workers join late, starved by the
// master's compute), so the graph and memory budget are sized to keep the
// master busy for many times the join latency — and the test retries with
// a fresh cluster until the kill actually fired mid-calculation.
func TestChaosStealingWorkerKilled(t *testing.T) {
	g, err := gen.RMAT(13, 8, 29)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := writeStore(t, g, "chaos-steal")
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.bin")
	if _, err := Run(context.Background(), Config{
		GraphBase: base, Workers: 2, MemEdges: 4096, List: true, ListPath: refPath,
	}, nil); err != nil {
		t.Fatal(err)
	}
	ref := normalizeListing(t, refPath)

	for attempt := 0; attempt < 5; attempt++ {
		lc := startCluster(t, 2)
		chaos := &chaosNode{Node: NewNode("chaos", t.TempDir(), 0), killAtCount: 1}
		chaosAddr := startChaosWorker(t, chaos)
		addrs := []string{lc.Addrs()[0], chaosAddr, lc.Addrs()[1]}

		listPath := filepath.Join(dir, fmt.Sprintf("steal%d.bin", attempt))
		// Tiny memory budget and many chunks: every chunk needs many
		// passes over the adjacency file, so the master is still busy
		// draining when the workers' replicas land and they start pulling.
		res, err := Run(context.Background(), Config{
			GraphBase: base, Workers: 1, MemEdges: 32,
			Sched: sched.Stealing, Chunks: 32,
			List: true, ListPath: listPath,
		}, addrs)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if res.Triangles != want {
			t.Fatalf("attempt %d: triangles = %d, want %d", attempt, res.Triangles, want)
		}
		got := normalizeListing(t, listPath)
		if len(got) != len(ref) {
			t.Fatalf("attempt %d: listed %d triangles, baseline %d", attempt, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("attempt %d: listings diverge at %d", attempt, i)
			}
		}
		lc.Close()
		if chaos.counts.Load() == 0 {
			continue // master drained everything before the worker joined
		}
		// The kill fired mid-batch: the requeued batch must be visible in
		// the failure log with its global chunk index.
		found := false
		for _, f := range res.Failures {
			if f.Addr == chaosAddr && f.Chunk >= 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("killed worker's batch missing from Failures: %+v", res.Failures)
		}
		return
	}
	t.Fatal("chaos worker never received a batch in 5 attempts")
}

// TestChaosHeartbeatDetectsWedgedWorker wedges a worker — its Count and
// every later Ping block forever while the TCP connection stays healthy,
// the failure mode only the heartbeat can see. The master must declare the
// node dead after the missed heartbeats, reassign its group, and finish.
func TestChaosHeartbeatDetectsWedgedWorker(t *testing.T) {
	g, err := gen.RMAT(10, 8, 23)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := writeStore(t, g, "chaos-wedge")

	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	lc := startCluster(t, 1)
	chaos := &chaosNode{Node: NewNode("chaos", t.TempDir(), 0), hangCount: hang}
	chaosAddr := startChaosWorker(t, chaos)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		GraphBase: base, Workers: 2, MemEdges: 256,
		HeartbeatInterval: 50 * time.Millisecond,
	}, []string{lc.Addrs()[0], chaosAddr})
	if err != nil {
		t.Fatalf("run with wedged worker failed: %v", err)
	}
	if res.Triangles != want {
		t.Errorf("triangles = %d, want %d", res.Triangles, want)
	}
	found := false
	for _, f := range res.Failures {
		if f.Addr == chaosAddr {
			found = true
		}
	}
	if !found {
		t.Errorf("wedged worker missing from Failures: %+v", res.Failures)
	}
}

// TestChaosAllWorkersDead: every remote node unreachable — the master-local
// last resort must still complete the run exactly, in both modes.
func TestChaosAllWorkersDead(t *testing.T) {
	g, err := gen.TriGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := gen.TriGridTriangles(6, 6)
	base := writeStore(t, g, "chaos-alldead")
	lc := startCluster(t, 3)
	addrs := lc.Addrs()
	lc.Close()
	for _, mode := range []sched.Mode{sched.Static, sched.Stealing} {
		res, err := Run(context.Background(), Config{
			GraphBase: base, Workers: 2, MemEdges: 64, Sched: mode,
		}, addrs)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Triangles != want {
			t.Errorf("%v: triangles = %d, want %d", mode, res.Triangles, want)
		}
		if len(res.Failures) < 3 {
			t.Errorf("%v: %d failures recorded, want one per dead node", mode, len(res.Failures))
		}
	}
}

// TestChaosRetryBudgetExhausted: with MaxRetries 1 and two nodes that die
// on the same reassigned work, the run must abort with the joined errors
// rather than loop forever.
func TestChaosRetryBudgetExhausted(t *testing.T) {
	g, err := gen.Complete(12)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "chaos-budget")
	// Both remote workers die on their first Count; with MaxRetries 1 the
	// second death of the same group exceeds the budget... unless the
	// master absorbed it first. Force the master out of the survivor pool
	// is impossible — so instead verify the bound via the stealing driver,
	// where the retry count travels with the batch: chaos A fails batch
	// (retries 0→1), chaos B claims it and fails (retries 1→2 > 1) → the
	// run must fail and name the batch.
	chaosA := &chaosNode{Node: NewNode("chaosA", t.TempDir(), 0), killAtCount: 1}
	chaosB := &chaosNode{Node: NewNode("chaosB", t.TempDir(), 0), killAtCount: 1}
	addrA := startChaosWorker(t, chaosA)
	addrB := startChaosWorker(t, chaosB)
	res, err := Run(context.Background(), Config{
		GraphBase: base, Workers: 1, MemEdges: 32,
		Sched: sched.Stealing, Chunks: 8, MaxRetries: 1,
	}, []string{addrA, addrB})
	// Whether the run fails (budget exhausted) or succeeds (the master
	// swept the batch before the second chaos node claimed it) depends on
	// scheduling; what must never happen is a wrong count or a hang.
	if err == nil && res.Triangles != gen.CompleteTriangles(12) {
		t.Errorf("triangles = %d, want %d", res.Triangles, gen.CompleteTriangles(12))
	}
}

package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"net/rpc"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/mgt"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// Config parameterizes a distributed run.
type Config struct {
	// GraphBase is the input store (oriented or not). Unoriented inputs
	// are oriented by the master first — "it is the responsibility of the
	// master to apply the degree-based order to the graph in question,
	// before sending it over the network" (Section IV-B1).
	GraphBase string
	// GraphName names the replicas on the clients; defaults to the base
	// name of GraphBase.
	GraphName string
	// Disk, when non-nil, is an already-open handle on the store GraphBase
	// names; Run uses it instead of re-opening (re-reading metadata and
	// the whole degree file). The public Graph handle passes its cached
	// oriented disk here, so repeated distributed runs pay the degree scan
	// once. The files GraphBase names are still read for replication.
	Disk *graph.Disk
	// Workers is P, the processors per node.
	Workers int
	// MemEdges is M per processor.
	MemEdges int
	// Strategy selects the load balancer for the global N·P-range plan.
	Strategy balance.Strategy
	// OrientWorkers is the master's orientation parallelism; non-positive
	// means Workers.
	OrientWorkers int
	// BufBytes is the per-runner scan buffer size.
	BufBytes int
	// Scan selects every node's scan source; the default (auto) gives
	// each node one shared physical scan per round of passes when it runs
	// more than one processor.
	Scan scan.SourceKind
	// Kernel selects the intersection kernel on every node (default
	// merge).
	Kernel scan.KernelKind
	// Sched selects the chunk scheduler. Static pre-splits the global
	// N·P-range plan across nodes up front (the paper's Figure 1
	// configurations); Stealing cuts the plan into Chunks·N·P weighted
	// chunks that the master dispenses to nodes in batches on demand — a
	// node that finishes its batch pulls the next one, so a fast node
	// absorbs the work a slow node would have stalled on.
	Sched sched.Mode
	// Chunks is K, the chunks-per-worker factor of the stealing scheduler;
	// non-positive selects sched.DefaultChunksPerWorker.
	Chunks int
	// UplinkBytesPerSec rate-limits the master's outgoing graph copies in
	// aggregate (0 = unlimited), modeling the shared NIC.
	UplinkBytesPerSec int64
	// ChunkBytes is the copy chunk size; non-positive selects 256 KiB.
	ChunkBytes int
	// List requests triangle listing; the master concatenates all nodes'
	// triples into ListPath sequentially.
	List bool
	// ListPath is the output file for List mode.
	ListPath string
}

func (c Config) withDefaults() Config {
	if c.GraphName == "" {
		c.GraphName = filepath.Base(c.GraphBase)
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MemEdges <= 0 {
		c.MemEdges = core.DefaultMemEdges
	}
	if c.OrientWorkers <= 0 {
		c.OrientWorkers = c.Workers
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 * 1024
	}
	return c
}

// NodeResult is one node's contribution to a run. Node 0 is the master
// itself (no copy).
type NodeResult struct {
	// Name is the node's self-reported label ("master" for node 0).
	Name string
	// Addr is the node's RPC address, or "local".
	Addr string
	// CopyTime is how long the graph replica took to stream to this node
	// (Table III's "avg copy time" inputs; zero for the master).
	CopyTime time.Duration
	// CopyBytes is the replica volume sent.
	CopyBytes int64
	// CalcTime is the node's calculation wall time; the run's CalcTime is
	// the max over nodes (the "struggler" rule of Section V-E3).
	CalcTime time.Duration
	// Triangles found by this node.
	Triangles uint64
	// Workers holds the node's per-runner statistics.
	Workers []core.WorkerStat
	// SourceIO is the I/O the node's scan source performed on its own
	// behalf (shared broadcast scans, in-memory preload).
	SourceIO ioacct.Stats
}

// Result is the outcome of a distributed run.
type Result struct {
	// Triangles is the exact global count.
	Triangles uint64
	// Orientation describes the master's preprocessing (nil if the input
	// was already oriented).
	Orientation *orient.Result
	// Plan is the global N·P-range assignment.
	Plan balance.Plan
	// Nodes has one entry per node, master first.
	Nodes []NodeResult
	// CalcTime is the straggler node's calculation time.
	CalcTime time.Duration
	// TotalTime is orientation + distribution + calculation.
	TotalTime time.Duration
	// NetworkBytes is the total payload the master exchanged with clients
	// (graph replicas plus returned triangle lists) — the Θ(N·(P+|E|)+T)
	// traffic of Theorem IV.3.
	NetworkBytes int64
	// OrientedBase is the oriented store the run used.
	OrientedBase string
}

// runSeq plus a per-process random token feed RunIDs for remote
// cancellation. The token keeps two masters sharing a worker from minting
// the same id (a bare per-process counter would collide and let one
// master's cancellation abort the other's run).
var (
	runSeq   atomic.Int64
	runToken = rand.Uint64()
)

// cancelDrainTimeout bounds how long a cancelled master waits for a
// worker's aborted Count RPC to drain; a wedged worker must not keep a
// cancelled master alive (closing the client kills the pending calls).
const cancelDrainTimeout = 10 * time.Second

// Run executes a distributed triangle count/listing with the master as node
// 0 and one client per address in workerAddrs. With no addresses it
// degrades to a purely local run through the same code path.
//
// Cancelling ctx aborts the whole protocol: the master's own runners stop
// within one memory window, in-flight graph copies stop at the next chunk,
// and every client is told (via a Cancel RPC) to abandon its calculation.
// Run then returns ctx.Err().
func Run(ctx context.Context, cfg Config, workerAddrs []string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	start := time.Now()

	d := cfg.Disk
	if d == nil {
		var err error
		if d, err = graph.Open(cfg.GraphBase); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	orientedBase := cfg.GraphBase
	if !d.Meta.Oriented {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		orientedBase = cfg.GraphBase + ".oriented"
		ores, err := orient.Orient(cfg.GraphBase, orientedBase, cfg.OrientWorkers)
		if err != nil {
			return nil, err
		}
		res.Orientation = ores
		if d, err = graph.Open(orientedBase); err != nil {
			return nil, err
		}
	}
	res.OrientedBase = orientedBase

	var runErr error
	if cfg.Sched == sched.Stealing {
		runErr = runStealing(ctx, cfg, d, orientedBase, workerAddrs, res)
	} else {
		runErr = runStatic(ctx, cfg, d, orientedBase, workerAddrs, res)
	}
	if runErr != nil {
		return nil, runErr
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// runStatic is the paper's protocol: the global N·P-range plan is
// pre-split across nodes up front, one Count RPC per node.
func runStatic(ctx context.Context, cfg Config, d *graph.Disk, orientedBase string, workerAddrs []string, res *Result) error {
	nodes := 1 + len(workerAddrs)
	plan, err := core.Plan(d, orientedBase, nodes*cfg.Workers, cfg.Strategy)
	if err != nil {
		return err
	}
	res.Plan = plan
	groups := plan.Subdivide(nodes)

	limiter := NewLimiter(cfg.UplinkBytesPerSec)
	res.Nodes = make([]NodeResult, nodes)
	triples := make([][]byte, nodes)
	errs := make([]error, nodes)
	var totalTriangles atomic.Uint64
	var netBytes atomic.Int64

	var wg sync.WaitGroup
	// Clients: copy, then count. The master "starts the triangle counting
	// operations before the network transfer has finished" — all nodes run
	// concurrently with the copies.
	for i, addr := range workerAddrs {
		wg.Add(1)
		go func(slot int, addr string, ranges []balance.Range) {
			defer wg.Done()
			nr, tp, err := runRemote(ctx, cfg, orientedBase, addr, ranges, limiter)
			if err != nil {
				errs[slot] = err
				return
			}
			res.Nodes[slot] = *nr
			triples[slot] = tp
			totalTriangles.Add(nr.Triangles)
			netBytes.Add(nr.CopyBytes + int64(len(tp)))
		}(i+1, addr, groups[i+1])
	}
	// Master's own share (node 0), concurrent with the copies.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nr, tp, err := runLocal(ctx, cfg, d, groups[0])
		if err != nil {
			errs[0] = err
			return
		}
		res.Nodes[0] = *nr
		triples[0] = tp
		totalTriangles.Add(nr.Triangles)
	}()
	wg.Wait()
	// A cancelled protocol reports the bare ctx.Err(), whichever node
	// surfaced the cancellation first.
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	res.Triangles = totalTriangles.Load()
	res.NetworkBytes = netBytes.Load()
	for _, n := range res.Nodes {
		if n.CalcTime > res.CalcTime {
			res.CalcTime = n.CalcTime
		}
	}
	if cfg.List {
		if err := writeTriples(cfg.ListPath, triples); err != nil {
			return err
		}
	}
	return nil
}

// tripleSeg is one batch's listing bytes, tagged with the global index of
// the batch's first chunk so the master can concatenate segments in chunk
// order — the stealing analog of "concatenating the triangle listing
// (sequentially)". Chunk-ordered assembly makes the distributed listing
// deterministic even though batch→node assignment is not.
type tripleSeg struct {
	start int
	data  []byte
}

// runStealing drives the work-stealing protocol: the global plan is cut
// into Chunks·N·P weighted chunks and every node's driver goroutine pulls
// batches of P chunks from the shared dispenser until it is drained — a
// node that finishes early pulls more work instead of idling behind the
// inter-machine struggler. Node 0 (the master itself) participates through
// the same dispenser, so its relative speed is accounted for automatically.
func runStealing(ctx context.Context, cfg Config, d *graph.Disk, orientedBase string, workerAddrs []string, res *Result) error {
	nodes := 1 + len(workerAddrs)
	plan, err := core.PlanChunks(d, orientedBase, nodes*cfg.Workers, cfg.Chunks, cfg.Strategy)
	if err != nil {
		return err
	}
	res.Plan = plan
	disp := sched.NewDispenser(plan.Ranges)

	limiter := NewLimiter(cfg.UplinkBytesPerSec)
	res.Nodes = make([]NodeResult, nodes)
	segs := make([][]tripleSeg, nodes)
	errs := make([]error, nodes)
	var totalTriangles atomic.Uint64
	var netBytes atomic.Int64

	var wg sync.WaitGroup
	for i, addr := range workerAddrs {
		wg.Add(1)
		go func(slot int, addr string) {
			defer wg.Done()
			nr, sg, err := driveRemote(ctx, cfg, orientedBase, addr, disp, limiter)
			if err != nil {
				errs[slot] = err
				// Stop the drain: the run is lost, so the healthy nodes
				// must not keep computing the rest of the chunk list.
				disp.Stop()
				return
			}
			res.Nodes[slot] = *nr
			segs[slot] = sg
			totalTriangles.Add(nr.Triangles)
			var listBytes int64
			for _, s := range sg {
				listBytes += int64(len(s.data))
			}
			netBytes.Add(nr.CopyBytes + listBytes)
		}(i+1, addr)
	}
	// The master's own driver (node 0) starts pulling immediately, while
	// the replicas are still streaming — remote nodes join the drain as
	// soon as their copy lands.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nr, sg, err := driveLocal(ctx, cfg, d, disp)
		if err != nil {
			errs[0] = err
			disp.Stop()
			return
		}
		res.Nodes[0] = *nr
		segs[0] = sg
		totalTriangles.Add(nr.Triangles)
	}()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	res.Triangles = totalTriangles.Load()
	res.NetworkBytes = netBytes.Load()
	for _, n := range res.Nodes {
		if n.CalcTime > res.CalcTime {
			res.CalcTime = n.CalcTime
		}
	}
	if cfg.List {
		var all []tripleSeg
		for _, sg := range segs {
			all = append(all, sg...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })
		ordered := make([][]byte, len(all))
		for i, s := range all {
			ordered[i] = s.data
		}
		if err := writeTriples(cfg.ListPath, ordered); err != nil {
			return err
		}
	}
	return nil
}

// foldWorkerStats merges one batch's pool-runner stats into a node's
// running totals by worker index. Batches execute sequentially on a node,
// so the per-chunk folding discipline of sched.Ledger applies verbatim
// per batch (wall sums, range hulls, chunk counts accumulate) — the rule
// itself lives in Ledger.FoldWorker.
func foldWorkerStats(dst []core.WorkerStat, batch []core.WorkerStat) []core.WorkerStat {
	for _, w := range batch {
		for len(dst) <= w.Worker {
			dst = append(dst, core.WorkerStat{Worker: len(dst)})
		}
		t := &dst[w.Worker]
		l := sched.Ledger{Worker: t.Worker, Chunks: t.Chunks, Lo: t.Range.Lo, Hi: t.Range.Hi, Stats: t.Stats}
		l.FoldWorker(w.Range.Lo, w.Range.Hi, w.Chunks, w.Stats)
		*t = core.WorkerStat{
			Worker: l.Worker,
			Range:  balance.Range{Lo: l.Lo, Hi: l.Hi},
			Chunks: l.Chunks,
			Stats:  l.Stats,
		}
	}
	return dst
}

// driveLocal is the master's node-0 driver: it pulls chunk batches from the
// dispenser and runs each through the local stealing pool until the work is
// drained. CalcTime is the driver's wall — the node's whole busy period.
func driveLocal(ctx context.Context, cfg Config, d *graph.Disk, disp *sched.Dispenser) (*NodeResult, []tripleSeg, error) {
	calcStart := time.Now()
	nr := &NodeResult{Name: "master", Addr: "local"}
	var segs []tripleSeg
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		start, batch := disp.NextBatch(cfg.Workers)
		if len(batch) == 0 {
			break
		}
		opt := core.Options{
			Workers:  cfg.Workers,
			MemEdges: cfg.MemEdges,
			BufBytes: cfg.BufBytes,
			Scan:     cfg.Scan,
			Kernel:   cfg.Kernel,
			Sched:    sched.Stealing,
		}
		var buffers []*bytes.Buffer
		if cfg.List {
			opt.Sinks = make([]mgt.Sink, len(batch))
			buffers = make([]*bytes.Buffer, len(batch))
			for i := range opt.Sinks {
				buffers[i] = &bytes.Buffer{}
				opt.Sinks[i] = mgt.NewFileSink(buffers[i])
			}
		}
		stats, _, srcIO, err := core.RunChunks(ctx, d, batch, opt)
		if err != nil {
			return nil, nil, err
		}
		nr.Workers = foldWorkerStats(nr.Workers, stats)
		nr.SourceIO = nr.SourceIO.Add(srcIO)
		for _, w := range stats {
			nr.Triangles += w.Stats.Triangles
		}
		if cfg.List {
			var data []byte
			for i, sink := range opt.Sinks {
				if err := sink.(*mgt.FileSink).Flush(); err != nil {
					return nil, nil, err
				}
				data = append(data, buffers[i].Bytes()...)
			}
			segs = append(segs, tripleSeg{start: start, data: data})
		}
	}
	nr.CalcTime = time.Since(calcStart)
	return nr, segs, nil
}

// driveRemote copies the graph to one client, then pulls chunk batches from
// the dispenser and ships each as a Count RPC until the work is drained.
func driveRemote(ctx context.Context, cfg Config, orientedBase, addr string, disp *sched.Dispenser, limiter *Limiter) (*NodeResult, []tripleSeg, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer client.Close()

	var hello HelloReply
	if err := callCtx(ctx, client, "Node.Hello", &HelloArgs{}, &hello); err != nil {
		return nil, nil, fmt.Errorf("cluster: hello %s: %w", addr, err)
	}
	nr := &NodeResult{Name: hello.Name, Addr: addr}

	copyStart := time.Now()
	sent, err := copyGraph(ctx, client, cfg, orientedBase, limiter)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: copy to %s: %w", addr, err)
	}
	nr.CopyTime = time.Since(copyStart)
	nr.CopyBytes = sent

	calcStart := time.Now()
	var segs []tripleSeg
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		start, batch := disp.NextBatch(cfg.Workers)
		if len(batch) == 0 {
			break
		}
		args := &CountArgs{
			GraphName: cfg.GraphName,
			RunID:     fmt.Sprintf("%s#%x-%d", cfg.GraphName, runToken, runSeq.Add(1)),
			Ranges:    batch,
			Sched:     sched.Stealing.String(),
			Workers:   cfg.Workers,
			MemEdges:  cfg.MemEdges,
			BufBytes:  cfg.BufBytes,
			Scan:      string(cfg.Scan),
			Kernel:    string(cfg.Kernel),
			List:      cfg.List,
		}
		reply, err := countWithCancel(ctx, client, addr, args)
		if err != nil {
			return nil, nil, err
		}
		nr.Workers = foldWorkerStats(nr.Workers, reply.Workers)
		nr.SourceIO = nr.SourceIO.Add(reply.SourceIO)
		nr.Triangles += reply.Triangles
		if cfg.List {
			segs = append(segs, tripleSeg{start: start, data: reply.Triples})
		}
	}
	// The node's calculation time spans its whole batch loop, RPC overhead
	// included — the honest "time until this node ran out of work" that
	// the straggler rule compares across nodes.
	nr.CalcTime = time.Since(calcStart)
	return nr, segs, nil
}

// countWithCancel issues one Count RPC, converting a ctx cancellation into
// the Cancel-and-drain dance (shared with the static path's runRemote).
func countWithCancel(ctx context.Context, client *rpc.Client, addr string, args *CountArgs) (*CountReply, error) {
	var reply CountReply
	count := client.Go("Node.Count", args, &reply, make(chan *rpc.Call, 1))
	select {
	case c := <-count.Done:
		if c.Error != nil {
			return nil, fmt.Errorf("cluster: count on %s: %w", addr, c.Error)
		}
		return &reply, nil
	case <-ctx.Done():
		// Tell the node to abandon the run (net/rpc multiplexes, so the
		// Cancel travels on the same connection while Count is pending),
		// then wait — bounded — for the aborted Count to drain so a
		// healthy node is idle by the time we report cancellation.
		client.Go("Node.Cancel", &CancelArgs{RunID: args.RunID}, &CancelReply{}, make(chan *rpc.Call, 1))
		select {
		case <-count.Done:
		case <-time.After(cancelDrainTimeout):
		}
		return nil, ctx.Err()
	}
}

// runLocal is the master acting as node 0.
func runLocal(ctx context.Context, cfg Config, d *graph.Disk, ranges []balance.Range) (*NodeResult, []byte, error) {
	calcStart := time.Now()
	opt := core.Options{
		Workers:  len(ranges),
		MemEdges: cfg.MemEdges,
		BufBytes: cfg.BufBytes,
		Scan:     cfg.Scan,
		Kernel:   cfg.Kernel,
	}
	var buffers []*bytes.Buffer
	if cfg.List {
		opt.Sinks = make([]mgt.Sink, len(ranges))
		buffers = make([]*bytes.Buffer, len(ranges))
		for i := range opt.Sinks {
			buffers[i] = &bytes.Buffer{}
			opt.Sinks[i] = mgt.NewFileSink(buffers[i])
		}
	}
	stats, srcIO, err := core.RunRanges(ctx, d, ranges, opt)
	if err != nil {
		return nil, nil, err
	}
	nr := &NodeResult{Name: "master", Addr: "local", Workers: stats, SourceIO: srcIO, CalcTime: time.Since(calcStart)}
	for _, w := range stats {
		nr.Triangles += w.Stats.Triangles
	}
	var tp []byte
	if cfg.List {
		for i, sink := range opt.Sinks {
			if err := sink.(*mgt.FileSink).Flush(); err != nil {
				return nil, nil, err
			}
			tp = append(tp, buffers[i].Bytes()...)
		}
	}
	return nr, tp, nil
}

// callCtx issues one RPC and honors ctx: on cancellation it returns
// ctx.Err() immediately, leaving the in-flight call to die with the
// connection (runRemote closes the client on every return path).
func callCtx(ctx context.Context, client *rpc.Client, method string, args, reply any) error {
	call := client.Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case c := <-call.Done:
		return c.Error
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runRemote copies the graph to one client and runs its calculation phase.
func runRemote(ctx context.Context, cfg Config, orientedBase, addr string, ranges []balance.Range, limiter *Limiter) (*NodeResult, []byte, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer client.Close()

	var hello HelloReply
	if err := callCtx(ctx, client, "Node.Hello", &HelloArgs{}, &hello); err != nil {
		return nil, nil, fmt.Errorf("cluster: hello %s: %w", addr, err)
	}
	nr := &NodeResult{Name: hello.Name, Addr: addr}

	copyStart := time.Now()
	sent, err := copyGraph(ctx, client, cfg, orientedBase, limiter)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: copy to %s: %w", addr, err)
	}
	nr.CopyTime = time.Since(copyStart)
	nr.CopyBytes = sent

	args := &CountArgs{
		GraphName: cfg.GraphName,
		RunID:     fmt.Sprintf("%s#%x-%d", cfg.GraphName, runToken, runSeq.Add(1)),
		Ranges:    ranges,
		MemEdges:  cfg.MemEdges,
		BufBytes:  cfg.BufBytes,
		Scan:      string(cfg.Scan),
		Kernel:    string(cfg.Kernel),
		List:      cfg.List,
	}
	reply, err := countWithCancel(ctx, client, addr, args)
	if err != nil {
		return nil, nil, err
	}
	nr.CalcTime = reply.CalcTime
	nr.Triangles = reply.Triangles
	nr.Workers = reply.Workers
	nr.SourceIO = reply.SourceIO
	return nr, reply.Triples, nil
}

// copyGraph streams the three store files to a client through the limiter,
// checking ctx between chunks so a cancelled run stops replicating promptly.
func copyGraph(ctx context.Context, client *rpc.Client, cfg Config, orientedBase string, limiter *Limiter) (int64, error) {
	if err := callCtx(ctx, client, "Node.BeginGraph", &BeginGraphArgs{Name: cfg.GraphName}, &struct{}{}); err != nil {
		return 0, err
	}
	var sent int64
	files := []struct {
		kind FileKind
		path string
	}{
		{FileMeta, graph.MetaPath(orientedBase)},
		{FileDeg, graph.DegPath(orientedBase)},
		{FileAdj, graph.AdjPath(orientedBase)},
	}
	buf := make([]byte, cfg.ChunkBytes)
	for _, file := range files {
		f, err := os.Open(file.path)
		if err != nil {
			return sent, err
		}
		for {
			if err := ctx.Err(); err != nil {
				f.Close()
				return sent, err
			}
			k, rerr := f.Read(buf)
			if k > 0 {
				limiter.Wait(k)
				chunk := ChunkArgs{Kind: file.kind, Data: buf[:k]}
				if err := callCtx(ctx, client, "Node.GraphChunk", &chunk, &struct{}{}); err != nil {
					f.Close()
					return sent, err
				}
				sent += int64(k)
			}
			if rerr != nil {
				break
			}
		}
		f.Close()
	}
	var end EndGraphReply
	if err := callCtx(ctx, client, "Node.EndGraph", &EndGraphArgs{}, &end); err != nil {
		return sent, err
	}
	if end.BytesReceived != sent {
		return sent, fmt.Errorf("cluster: client received %d of %d bytes", end.BytesReceived, sent)
	}
	return sent, nil
}

// writeTriples concatenates the per-node triangle lists sequentially, the
// master's listing responsibility ("concatenating the triangle listing
// (sequentially)", Section IV-B2).
func writeTriples(path string, triples [][]byte) error {
	if path == "" {
		return fmt.Errorf("cluster: List requested without ListPath")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, tp := range triples {
		if _, err := f.Write(tp); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

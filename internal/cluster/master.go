package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/rpc"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/mgt"
	"pdtl/internal/obs"
	"pdtl/internal/orient"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// Config parameterizes a distributed run.
type Config struct {
	// GraphBase is the input store (oriented or not). Unoriented inputs
	// are oriented by the master first — "it is the responsibility of the
	// master to apply the degree-based order to the graph in question,
	// before sending it over the network" (Section IV-B1).
	GraphBase string
	// GraphName names the replicas on the clients; defaults to the base
	// name of GraphBase.
	GraphName string
	// Disk, when non-nil, is an already-open handle on the store GraphBase
	// names; Run uses it instead of re-opening (re-reading metadata and
	// the whole degree file). The public Graph handle passes its cached
	// oriented disk here, so repeated distributed runs pay the degree scan
	// once. The files GraphBase names are still read for replication.
	Disk *graph.Disk
	// Workers is P, the processors per node.
	Workers int
	// MemEdges is M per processor.
	MemEdges int
	// Strategy selects the load balancer for the global N·P-range plan.
	Strategy balance.Strategy
	// OrientWorkers is the master's orientation parallelism; non-positive
	// means Workers.
	OrientWorkers int
	// BufBytes is the per-runner scan buffer size.
	BufBytes int
	// Scan selects every node's scan source; the default (auto) gives
	// each node one shared physical scan per round of passes when it runs
	// more than one processor.
	Scan scan.SourceKind
	// Kernel selects the intersection kernel on every node (default
	// merge).
	Kernel scan.KernelKind
	// Sched selects the chunk scheduler. Static pre-splits the global
	// N·P-range plan across nodes up front (the paper's Figure 1
	// configurations); Stealing cuts the plan into Chunks·N·P weighted
	// chunks that the master dispenses to nodes in batches on demand — a
	// node that finishes its batch pulls the next one, so a fast node
	// absorbs the work a slow node would have stalled on.
	Sched sched.Mode
	// Chunks is K, the chunks-per-worker factor of the stealing scheduler;
	// non-positive selects sched.DefaultChunksPerWorker.
	Chunks int
	// UplinkBytesPerSec rate-limits the master's outgoing graph copies in
	// aggregate (0 = unlimited), modeling the shared NIC.
	UplinkBytesPerSec int64
	// ChunkBytes is the copy chunk size; non-positive selects 256 KiB.
	ChunkBytes int
	// MaxRetries bounds how many times one unit of failed work (a static
	// range group or a stealing chunk batch) may be reassigned to another
	// node before the run gives up with the joined node errors. Zero
	// selects DefaultMaxRetries; negative disables recovery entirely —
	// the first node failure aborts the run (the pre-fault-tolerance
	// behavior, useful as an ablation and for tests).
	MaxRetries int
	// HeartbeatInterval is how often the master pings each connected node
	// to detect partitioned or wedged workers; a crashed worker is caught
	// faster, by its TCP connection dying. After heartbeatMissLimit
	// consecutive missed pings the node's connection is closed, failing
	// its in-flight RPCs and triggering reassignment. Zero selects
	// DefaultHeartbeatInterval; negative disables the heartbeat.
	HeartbeatInterval time.Duration
	// List requests triangle listing; the master concatenates all nodes'
	// triples into ListPath sequentially.
	List bool
	// ListPath is the output file for List mode.
	ListPath string
	// Log, when non-nil, receives a structured warning for every node
	// failure the run detects (in addition to the final Result.Failures
	// report) — an operator watching the master's log sees the degradation
	// as it happens.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.GraphName == "" {
		c.GraphName = filepath.Base(c.GraphBase)
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MemEdges <= 0 {
		c.MemEdges = core.DefaultMemEdges
	}
	if c.OrientWorkers <= 0 {
		c.OrientWorkers = c.Workers
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 * 1024
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = DefaultMaxRetries
	case c.MaxRetries < 0:
		c.MaxRetries = 0 // fail-fast: recovery disabled
	}
	switch {
	case c.HeartbeatInterval == 0:
		c.HeartbeatInterval = DefaultHeartbeatInterval
	case c.HeartbeatInterval < 0:
		c.HeartbeatInterval = 0 // heartbeat disabled
	}
	return c
}

// NodeResult is one node's contribution to a run. Node 0 is the master
// itself (no copy).
type NodeResult struct {
	// Name is the node's self-reported label ("master" for node 0).
	Name string
	// Addr is the node's RPC address, or "local".
	Addr string
	// CopyTime is how long the graph replica took to stream to this node
	// (Table III's "avg copy time" inputs; zero for the master).
	CopyTime time.Duration
	// CopyBytes is the replica volume sent.
	CopyBytes int64
	// CalcTime is the node's calculation wall time; the run's CalcTime is
	// the max over nodes (the "struggler" rule of Section V-E3).
	CalcTime time.Duration
	// Triangles found by this node.
	Triangles uint64
	// Workers holds the node's per-runner statistics.
	Workers []core.WorkerStat
	// SourceIO is the I/O the node's scan source performed on its own
	// behalf (shared broadcast scans, in-memory preload).
	SourceIO ioacct.Stats
}

// Result is the outcome of a distributed run.
type Result struct {
	// Triangles is the exact global count.
	Triangles uint64
	// Orientation describes the master's preprocessing (nil if the input
	// was already oriented).
	Orientation *orient.Result
	// Plan is the global N·P-range assignment.
	Plan balance.Plan
	// Nodes has one entry per node, master first.
	Nodes []NodeResult
	// CalcTime is the straggler node's calculation time.
	CalcTime time.Duration
	// TotalTime is orientation + distribution + calculation.
	TotalTime time.Duration
	// NetworkBytes is the total payload the master exchanged with clients
	// (graph replicas plus returned triangle lists) — the Θ(N·(P+|E|)+T)
	// traffic of Theorem IV.3.
	NetworkBytes int64
	// OrientedBase is the oriented store the run used.
	OrientedBase string
	// Failures lists every node failure the run detected and recovered
	// from, in detection order. A non-empty list on a successful run means
	// the run completed degraded: the failed nodes' work was reassigned to
	// the survivors (or run master-local) and the results are exact
	// regardless.
	Failures []Failure
}

// runSeq plus a per-process random token feed RunIDs for remote
// cancellation. The token keeps two masters sharing a worker from minting
// the same id (a bare per-process counter would collide and let one
// master's cancellation abort the other's run).
var (
	runSeq   atomic.Int64
	runToken = rand.Uint64()
)

// newRunID mints the run-level id, one per Run call.
func newRunID(graphName string) string {
	return fmt.Sprintf("%s#%x-%d", graphName, runToken, runSeq.Add(1))
}

// workID derives the per-work-unit RunID from the run id and the unit's
// global plan index. It is deliberately stable across reassignment: a
// retried unit carries the same id on its new node, so results are keyed
// by what is computed, not by which attempt computed it — and a Cancel for
// the unit reaches whichever node currently holds it. Re-execution is
// idempotent because Node.Count only reads the replica: a duplicate
// attempt (a partitioned node still computing a unit the master gave up
// on) produces identical bytes, and the master takes at most one result
// per unit — a failed driver contributes nothing, so global assembly by
// plan index stays exactly-once.
func workID(runID string, start int) string {
	return runID + "/" + strconv.Itoa(start)
}

// foldNode merges a recovery execution's results into the executing node's
// accounting: counters and I/O sum, per-worker stats fold by index, and
// CalcTime accumulates the node's additional busy period.
func foldNode(dst *NodeResult, nr *NodeResult) {
	if dst.Name == "" {
		dst.Name = nr.Name
	}
	if dst.Addr == "" {
		dst.Addr = nr.Addr
	}
	dst.Triangles += nr.Triangles
	dst.Workers = foldWorkerStats(dst.Workers, nr.Workers)
	dst.SourceIO = dst.SourceIO.Add(nr.SourceIO)
	dst.CalcTime += nr.CalcTime
}

// cancelDrainTimeout bounds how long a cancelled master waits for a
// worker's aborted Count RPC to drain; a wedged worker must not keep a
// cancelled master alive (closing the client kills the pending calls).
const cancelDrainTimeout = 10 * time.Second

// Run executes a distributed triangle count/listing with the master as node
// 0 and one client per address in workerAddrs. With no addresses it
// degrades to a purely local run through the same code path.
//
// Worker failure mid-run is survived, not fatal (DESIGN.md §9): a crashed,
// partitioned, or wedged node is detected (TCP error, or the heartbeat
// closing a silent connection) and its unfinished work is reassigned — a
// stealing batch goes back to the dispenser with the dead node excluded, a
// static range group is re-split across the surviving replicas, and the
// master itself is the last resort — bounded by Config.MaxRetries
// reassignments per work unit. The exact count and the deterministic
// listing are unaffected, because work is keyed by global plan index and
// assembled exactly once; the detected failures are reported in
// Result.Failures. A run only fails when the retry budget is exhausted,
// the master's own engine errors, or ctx is cancelled — and then the
// error joins every node's failure rather than reporting just the first.
//
// Cancelling ctx aborts the whole protocol: the master's own runners stop
// within one memory window, in-flight graph copies stop at the next chunk,
// and every client is told (via a Cancel RPC) to abandon its calculation.
// Run then returns ctx.Err().
func Run(ctx context.Context, cfg Config, workerAddrs []string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	start := time.Now()

	// The whole distributed run is one cluster span; the drivers' copy and
	// dispatch spans (and, through the wire, the nodes' own spans) nest
	// under it via the context cursor.
	cur := obs.CursorFrom(ctx)
	clsp := cur.Begin(obs.SpanCluster)
	defer cur.End(clsp)
	cur.SetAttr(clsp, "nodes", int64(1+len(workerAddrs)))
	if cur.T != nil {
		ctx = obs.ContextWithCursor(ctx, cur.Child(clsp))
		cur = obs.CursorFrom(ctx)
	}

	d := cfg.Disk
	if d == nil {
		var err error
		if d, err = graph.Open(cfg.GraphBase); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	orientedBase := cfg.GraphBase
	if !d.Meta.Oriented {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		orientedBase = cfg.GraphBase + ".oriented"
		osp := cur.Begin(obs.SpanOrient)
		ores, err := orient.Orient(cfg.GraphBase, orientedBase, cfg.OrientWorkers)
		cur.End(osp)
		if err != nil {
			return nil, err
		}
		res.Orientation = ores
		if d, err = graph.Open(orientedBase); err != nil {
			return nil, err
		}
	}
	res.OrientedBase = orientedBase

	var runErr error
	if cfg.Sched == sched.Stealing {
		runErr = runStealing(ctx, cfg, d, orientedBase, workerAddrs, res)
	} else {
		runErr = runStatic(ctx, cfg, d, orientedBase, workerAddrs, res)
	}
	if runErr != nil {
		return nil, runErr
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// workItem is one unit of reassignable static work: a contiguous slice of
// the global plan, identified by the index of its first range. retries is
// how many times the unit has been reassigned so far.
type workItem struct {
	start   int
	ranges  []balance.Range
	retries int
}

// splitWork cuts a work item's ranges into k contiguous parts (some may be
// empty), each keeping its global start index — so the parts' listing
// segments reassemble in exactly the order the original node would have
// produced.
func splitWork(start int, ranges []balance.Range, k int) []workItem {
	parts := make([]workItem, k)
	n := len(ranges)
	for i := 0; i < k; i++ {
		lo, hi := n*i/k, n*(i+1)/k
		parts[i] = workItem{start: start + lo, ranges: ranges[lo:hi]}
	}
	return parts
}

// runStatic is the paper's protocol: the global N·P-range plan is
// pre-split across nodes up front, one Count RPC per node. A node that
// fails — dial, copy, or mid-calculation — no longer kills the run: its
// range group is re-split across the surviving nodes (whose replicas are
// already in place) plus the master, with master-local execution as the
// last resort when no remote survives, bounded by cfg.MaxRetries
// reassignments per work unit.
func runStatic(ctx context.Context, cfg Config, d *graph.Disk, orientedBase string, workerAddrs []string, res *Result) error {
	nodes := 1 + len(workerAddrs)
	cur := obs.CursorFrom(ctx)
	psp := cur.Begin(obs.SpanPlan)
	plan, err := core.Plan(d, orientedBase, nodes*cfg.Workers, cfg.Strategy)
	cur.End(psp)
	if err != nil {
		return err
	}
	res.Plan = plan
	groups := plan.Subdivide(nodes)
	// starts[i] is the global plan index of groups[i][0]: every listing
	// segment — original or recovered — is tagged with its global start,
	// so assembly in start order reproduces the static listing bytes no
	// matter which node executed which piece.
	starts := make([]int, nodes)
	for i := 1; i < nodes; i++ {
		starts[i] = starts[i-1] + len(groups[i-1])
	}

	limiter := NewLimiter(cfg.UplinkBytesPerSec)
	runID := newRunID(cfg.GraphName)
	flog := &failureLog{log: cfg.Log}
	res.Nodes = make([]NodeResult, nodes)
	res.Nodes[0] = NodeResult{Name: "master", Addr: "local"}
	for i, addr := range workerAddrs {
		res.Nodes[i+1] = NodeResult{Addr: addr}
	}
	errs := make([]error, nodes)
	var segMu sync.Mutex
	var segs []tripleSeg
	addSeg := func(start int, data []byte) {
		if !cfg.List {
			return
		}
		segMu.Lock()
		segs = append(segs, tripleSeg{start: start, data: data})
		segMu.Unlock()
	}
	var totalTriangles atomic.Uint64
	var netBytes atomic.Int64

	var wg sync.WaitGroup
	// Clients: copy, then count. The master "starts the triangle counting
	// operations before the network transfer has finished" — all nodes run
	// concurrently with the copies.
	for i, addr := range workerAddrs {
		wg.Add(1)
		go func(slot int, addr string, ranges []balance.Range) {
			defer wg.Done()
			nr, tp, err := runRemote(ctx, cfg, runID, orientedBase, addr, starts[slot], ranges, limiter)
			if err != nil {
				if nr != nil {
					// Keep the handshake name and partial copy accounting
					// so the failure log identifies the node and the
					// degraded run's report stays honest.
					res.Nodes[slot] = *nr
				}
				errs[slot] = err
				return
			}
			res.Nodes[slot] = *nr
			addSeg(starts[slot], tp)
			totalTriangles.Add(nr.Triangles)
			netBytes.Add(nr.CopyBytes + int64(len(tp)))
		}(i+1, addr, groups[i+1])
	}
	// Master's own share (node 0), concurrent with the copies.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nr, tp, err := runLocal(ctx, cfg, d, groups[0])
		if err != nil {
			errs[0] = err
			return
		}
		res.Nodes[0] = *nr
		addSeg(starts[0], tp)
		totalTriangles.Add(nr.Triangles)
	}()
	wg.Wait()
	// A cancelled protocol reports the bare ctx.Err(), whichever node
	// surfaced the cancellation first.
	if err := ctx.Err(); err != nil {
		return err
	}

	// Triage: the master's own engine error is fatal (there is no more
	// reliable executor to fall back to); every remote failure becomes a
	// reassignable work item — unless recovery is disabled, in which case
	// all node errors are reported together instead of just the first.
	var fatal []error
	if errs[0] != nil {
		fatal = append(fatal, errs[0])
	}
	var queue []workItem
	var survivors []int
	for slot := 1; slot < nodes; slot++ {
		if errs[slot] == nil {
			survivors = append(survivors, slot)
			continue
		}
		// A calculation-phase failure is attributed to the node's work
		// unit; a dial/handshake/copy failure happened before the node
		// held any work (Chunk -1, Ranges 0).
		chunk, ranges := -1, 0
		var cf *calcFailure
		if errors.As(errs[slot], &cf) {
			chunk, ranges = starts[slot], len(groups[slot])
		}
		flog.add(Failure{
			Node: res.Nodes[slot].Name, Addr: workerAddrs[slot-1], Slot: slot,
			Chunk: chunk, Ranges: ranges, Err: errs[slot].Error(),
		})
		if cfg.MaxRetries <= 0 {
			fatal = append(fatal, errs[slot])
			continue
		}
		queue = append(queue, workItem{start: starts[slot], ranges: groups[slot], retries: 1})
	}

	// Recovery rounds: each lost group is re-split across the healthy
	// executors — every surviving remote (replica already in place, so no
	// copy is paid again) plus the master itself. With no remote survivor
	// the whole item runs master-local, the last resort. A survivor that
	// fails during recovery is retired and its part is requeued with a
	// bumped retry count, up to cfg.MaxRetries reassignments per unit.
	for len(queue) > 0 && len(fatal) == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		item := queue[0]
		queue = queue[1:]
		execs := append([]int{0}, survivors...)
		parts := splitWork(item.start, item.ranges, len(execs))
		pErrs := make([]error, len(parts))
		var pwg sync.WaitGroup
		for pi := range parts {
			if len(parts[pi].ranges) == 0 {
				continue
			}
			pwg.Add(1)
			go func(pi, slot int, part workItem) {
				defer pwg.Done()
				var nr *NodeResult
				var tp []byte
				var err error
				if slot == 0 {
					nr, tp, err = runLocal(ctx, cfg, d, part.ranges)
				} else {
					nr, tp, err = recoverRemote(ctx, cfg, runID, workerAddrs[slot-1], part.start, part.ranges)
				}
				if err != nil {
					pErrs[pi] = err
					return
				}
				foldNode(&res.Nodes[slot], nr)
				addSeg(part.start, tp)
				totalTriangles.Add(nr.Triangles)
				if slot != 0 {
					netBytes.Add(int64(len(tp)))
				}
			}(pi, execs[pi], parts[pi])
		}
		pwg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		for pi, perr := range pErrs {
			if perr == nil {
				continue
			}
			slot := execs[pi]
			if slot == 0 {
				fatal = append(fatal, perr)
				continue
			}
			flog.add(Failure{
				Node: res.Nodes[slot].Name, Addr: workerAddrs[slot-1], Slot: slot,
				Chunk: parts[pi].start, Ranges: len(parts[pi].ranges),
				Retries: item.retries, Err: perr.Error(),
			})
			for si, s := range survivors {
				if s == slot {
					survivors = append(survivors[:si], survivors[si+1:]...)
					break
				}
			}
			if item.retries+1 > cfg.MaxRetries {
				fatal = append(fatal, fmt.Errorf("cluster: ranges at plan index %d abandoned after %d reassignments: %w",
					parts[pi].start, item.retries, perr))
				continue
			}
			queue = append(queue, workItem{start: parts[pi].start, ranges: parts[pi].ranges, retries: item.retries + 1})
		}
	}
	res.Failures = flog.list()
	if len(fatal) > 0 {
		return errors.Join(fatal...)
	}

	res.Triangles = totalTriangles.Load()
	res.NetworkBytes = netBytes.Load()
	for _, n := range res.Nodes {
		if n.CalcTime > res.CalcTime {
			res.CalcTime = n.CalcTime
		}
	}
	if cfg.List {
		sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
		ordered := make([][]byte, len(segs))
		for i, s := range segs {
			ordered[i] = s.data
		}
		if err := writeTriples(cfg.ListPath, ordered); err != nil {
			return err
		}
	}
	return nil
}

// tripleSeg is one batch's listing bytes, tagged with the global index of
// the batch's first chunk so the master can concatenate segments in chunk
// order — the stealing analog of "concatenating the triangle listing
// (sequentially)". Chunk-ordered assembly makes the distributed listing
// deterministic even though batch→node assignment is not.
type tripleSeg struct {
	start int
	data  []byte
}

// runStealing drives the work-stealing protocol: the global plan is cut
// into Chunks·N·P weighted chunks and every node's driver goroutine pulls
// batches of P chunks from the shared dispenser until it is drained — a
// node that finishes early pulls more work instead of idling behind the
// inter-machine struggler. Node 0 (the master itself) participates through
// the same dispenser, so its relative speed is accounted for automatically.
//
// Node failure is absorbed, not fatal: a driver that loses its node
// requeues the in-flight batch (with the dead node excluded) and exits —
// the batches it completed before dying stand, because every batch is
// keyed by its global chunk index and was taken exactly once. Survivors
// drain the requeued work through the ordinary NextBatch path; work that
// lands after every driver has exited is swept up master-local. Only
// exhausting cfg.MaxRetries reassignments on one batch, a master-local
// engine error, or cancellation abort the run.
func runStealing(ctx context.Context, cfg Config, d *graph.Disk, orientedBase string, workerAddrs []string, res *Result) error {
	nodes := 1 + len(workerAddrs)
	cur := obs.CursorFrom(ctx)
	psp := cur.Begin(obs.SpanPlan)
	plan, err := core.PlanChunks(d, orientedBase, nodes*cfg.Workers, cfg.Chunks, cfg.Strategy)
	cur.End(psp)
	if err != nil {
		return err
	}
	res.Plan = plan
	disp := sched.NewDispenser(plan.Ranges)

	limiter := NewLimiter(cfg.UplinkBytesPerSec)
	runID := newRunID(cfg.GraphName)
	flog := &failureLog{log: cfg.Log}
	res.Nodes = make([]NodeResult, nodes)
	res.Nodes[0] = NodeResult{Name: "master", Addr: "local"}
	for i, addr := range workerAddrs {
		res.Nodes[i+1] = NodeResult{Addr: addr}
	}
	segs := make([][]tripleSeg, nodes)
	errs := make([]error, nodes)
	var totalTriangles atomic.Uint64
	var netBytes atomic.Int64

	var wg sync.WaitGroup
	for i, addr := range workerAddrs {
		wg.Add(1)
		go func(slot int, addr string) {
			defer wg.Done()
			nr, sg, err := driveRemote(ctx, cfg, runID, orientedBase, addr, slot, disp, limiter, flog)
			if err != nil {
				errs[slot] = err
				// Stop the drain: the run is lost, so the healthy nodes
				// must not keep computing the rest of the chunk list.
				disp.Stop()
			}
			if nr == nil {
				return
			}
			// A lost node's completed batches still count (nr is partial
			// on the failure path) — that is the whole point of chunk-
			// indexed, exactly-once assembly.
			res.Nodes[slot] = *nr
			segs[slot] = sg
			totalTriangles.Add(nr.Triangles)
			var listBytes int64
			for _, s := range sg {
				listBytes += int64(len(s.data))
			}
			netBytes.Add(nr.CopyBytes + listBytes)
		}(i+1, addr)
	}
	// The master's own driver (node 0) starts pulling immediately, while
	// the replicas are still streaming — remote nodes join the drain as
	// soon as their copy lands.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nr, sg, err := driveLocal(ctx, cfg, d, disp)
		if err != nil {
			errs[0] = err
			disp.Stop()
			return
		}
		res.Nodes[0] = *nr
		segs[0] = sg
		totalTriangles.Add(nr.Triangles)
	}()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	res.Failures = flog.list()
	var fatal []error
	for _, err := range errs {
		if err != nil {
			fatal = append(fatal, err)
		}
	}
	if len(fatal) > 0 {
		return errors.Join(fatal...)
	}

	// Final sweep: a batch requeued after the master's own driver had
	// already drained the fresh list has no driver left to claim it. Run
	// it here, master-local — the last resort that lets the run finish
	// even if every remote node died. No driver is live anymore, so the
	// dispenser's contents are final.
	if disp.Remaining() > 0 {
		nr, sg, err := driveLocal(ctx, cfg, d, disp)
		if nr != nil {
			foldNode(&res.Nodes[0], nr)
			segs[0] = append(segs[0], sg...)
			totalTriangles.Add(nr.Triangles)
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return err
		}
	}

	res.Triangles = totalTriangles.Load()
	res.NetworkBytes = netBytes.Load()
	for _, n := range res.Nodes {
		if n.CalcTime > res.CalcTime {
			res.CalcTime = n.CalcTime
		}
	}
	if cfg.List {
		var all []tripleSeg
		for _, sg := range segs {
			all = append(all, sg...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })
		ordered := make([][]byte, len(all))
		for i, s := range all {
			ordered[i] = s.data
		}
		if err := writeTriples(cfg.ListPath, ordered); err != nil {
			return err
		}
	}
	return nil
}

// foldWorkerStats merges one batch's pool-runner stats into a node's
// running totals by worker index. Batches execute sequentially on a node,
// so the per-chunk folding discipline of sched.Ledger applies verbatim
// per batch (wall sums, range hulls, chunk counts accumulate) — the rule
// itself lives in Ledger.FoldWorker.
func foldWorkerStats(dst []core.WorkerStat, batch []core.WorkerStat) []core.WorkerStat {
	for _, w := range batch {
		for len(dst) <= w.Worker {
			dst = append(dst, core.WorkerStat{Worker: len(dst)})
		}
		t := &dst[w.Worker]
		l := sched.Ledger{Worker: t.Worker, Chunks: t.Chunks, Lo: t.Range.Lo, Hi: t.Range.Hi, Stats: t.Stats}
		l.FoldWorker(w.Range.Lo, w.Range.Hi, w.Chunks, w.Stats)
		*t = core.WorkerStat{
			Worker: l.Worker,
			Range:  balance.Range{Lo: l.Lo, Hi: l.Hi},
			Chunks: l.Chunks,
			Stats:  l.Stats,
		}
	}
	return dst
}

// driveLocal is the master's node-0 driver: it pulls chunk batches from the
// dispenser and runs each through the local stealing pool until the work is
// drained. CalcTime is the driver's wall — the node's whole busy period.
// An engine error here is fatal to the run: there is no more reliable
// executor to reassign the master's own work to.
func driveLocal(ctx context.Context, cfg Config, d *graph.Disk, disp *sched.Dispenser) (*NodeResult, []tripleSeg, error) {
	calcStart := time.Now()
	nr := &NodeResult{Name: "master", Addr: "local"}
	var segs []tripleSeg
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		start, batch, _ := disp.NextBatch(cfg.Workers, 0)
		if len(batch) == 0 {
			break
		}
		opt := core.Options{
			Workers:  cfg.Workers,
			MemEdges: cfg.MemEdges,
			BufBytes: cfg.BufBytes,
			Scan:     cfg.Scan,
			Kernel:   cfg.Kernel,
			Sched:    sched.Stealing,
		}
		var buffers []*bytes.Buffer
		if cfg.List {
			opt.Sinks = make([]mgt.Sink, len(batch))
			buffers = make([]*bytes.Buffer, len(batch))
			for i := range opt.Sinks {
				buffers[i] = &bytes.Buffer{}
				opt.Sinks[i] = mgt.NewFileSink(buffers[i])
			}
		}
		stats, _, srcIO, err := core.RunChunks(ctx, d, batch, opt)
		if err != nil {
			return nil, nil, err
		}
		nr.Workers = foldWorkerStats(nr.Workers, stats)
		nr.SourceIO = nr.SourceIO.Add(srcIO)
		for _, w := range stats {
			nr.Triangles += w.Stats.Triangles
		}
		if cfg.List {
			var data []byte
			for i, sink := range opt.Sinks {
				if err := sink.(*mgt.FileSink).Flush(); err != nil {
					return nil, nil, err
				}
				data = append(data, buffers[i].Bytes()...)
			}
			segs = append(segs, tripleSeg{start: start, data: data})
		}
	}
	nr.CalcTime = time.Since(calcStart)
	return nr, segs, nil
}

// driveRemote copies the graph to one client, then pulls chunk batches from
// the dispenser and ships each as a Count RPC until the work is drained.
//
// Failure contract: a nil error with a nil (or partial) NodeResult means
// the node was lost but the run goes on — the failure is in flog, any
// in-flight batch is back in the dispenser with this node excluded, and
// the batches the node completed before dying are returned and stand. A
// non-nil error is fatal: cancellation, or a batch exhausting its retry
// budget (with recovery disabled, MaxRetries 0, the first failure is
// fatal, restoring the fail-fast behavior).
func driveRemote(ctx context.Context, cfg Config, runID, orientedBase, addr string, slot int, disp *sched.Dispenser, limiter *Limiter, flog *failureLog) (*NodeResult, []tripleSeg, error) {
	nc, hello, err := dialNode(ctx, cfg, addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, cerr
		}
		flog.add(Failure{Addr: addr, Slot: slot, Chunk: -1, Err: err.Error()})
		if cfg.MaxRetries <= 0 {
			return nil, nil, err
		}
		return nil, nil, nil // node lost before it claimed any work
	}
	defer nc.close()
	nr := &NodeResult{Name: hello.Name, Addr: addr}

	cur := obs.CursorFrom(ctx)
	copySpan := cur.Begin(obs.SpanCopy)
	copyStart := time.Now()
	sent, err := copyGraph(ctx, nc.client, cfg, orientedBase, limiter)
	nr.CopyBytes = sent // even a failed copy's bytes crossed the master's uplink
	cur.SetAttr(copySpan, "slot", int64(slot))
	cur.SetAttr(copySpan, "bytes", sent)
	cur.End(copySpan)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, cerr
		}
		err = fmt.Errorf("cluster: copy to %s: %w", addr, err)
		flog.add(Failure{Node: hello.Name, Addr: addr, Slot: slot, Chunk: -1, Err: err.Error()})
		if cfg.MaxRetries <= 0 {
			return nr, nil, err
		}
		return nr, nil, nil // node lost before it claimed any work
	}
	nr.CopyTime = time.Since(copyStart)
	// Calculation phase: long-running Counts with no per-RPC deadline —
	// the heartbeat is the liveness signal from here on.
	nc.watch()

	calcStart := time.Now()
	var segs []tripleSeg
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		start, batch, retries := disp.NextBatch(cfg.Workers, slot)
		if len(batch) == 0 {
			break
		}
		dsp := cur.Begin(obs.SpanDispatch)
		cur.SetAttr(dsp, "start", int64(start))
		cur.SetAttr(dsp, "ranges", int64(len(batch)))
		cur.SetAttr(dsp, "retries", int64(retries))
		cur.SetAttr(dsp, "slot", int64(slot))
		args := &CountArgs{
			GraphName: cfg.GraphName,
			RunID:     workID(runID, start),
			Ranges:    batch,
			Sched:     sched.Stealing.String(),
			Workers:   cfg.Workers,
			MemEdges:  cfg.MemEdges,
			BufBytes:  cfg.BufBytes,
			Scan:      string(cfg.Scan),
			Kernel:    string(cfg.Kernel),
			List:      cfg.List,
			TraceSpan: traceSpanArg(cur, dsp),
		}
		reply, err := countWithCancel(ctx, nc.client, addr, args)
		if err == nil && cur.T != nil {
			cur.T.Merge(dsp, reply.Spans)
		}
		cur.End(dsp)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, cerr
			}
			nr.CalcTime = time.Since(calcStart)
			flog.add(Failure{
				Node: hello.Name, Addr: addr, Slot: slot,
				Chunk: start, Ranges: len(batch), Retries: retries, Err: err.Error(),
			})
			if retries+1 > cfg.MaxRetries {
				return nr, segs, fmt.Errorf("cluster: chunk batch %d abandoned after %d reassignments: %w", start, retries, err)
			}
			// Put the batch back for the survivors — excluding this node,
			// whose driver exits right here — and keep what it finished.
			disp.Requeue(start, batch, retries+1, slot)
			return nr, segs, nil
		}
		nr.Workers = foldWorkerStats(nr.Workers, reply.Workers)
		nr.SourceIO = nr.SourceIO.Add(reply.SourceIO)
		nr.Triangles += reply.Triangles
		if cfg.List {
			segs = append(segs, tripleSeg{start: start, data: reply.Triples})
		}
	}
	// The node's calculation time spans its whole batch loop, RPC overhead
	// included — the honest "time until this node ran out of work" that
	// the straggler rule compares across nodes.
	nr.CalcTime = time.Since(calcStart)
	return nr, segs, nil
}

// countWithCancel issues one Count RPC, converting a ctx cancellation into
// the Cancel-and-drain dance (shared with the static path's runRemote).
func countWithCancel(ctx context.Context, client *rpc.Client, addr string, args *CountArgs) (*CountReply, error) {
	var reply CountReply
	count := client.Go("Node.Count", args, &reply, make(chan *rpc.Call, 1))
	select {
	case c := <-count.Done:
		if c.Error != nil {
			return nil, fmt.Errorf("cluster: count on %s: %w", addr, c.Error)
		}
		return &reply, nil
	case <-ctx.Done():
		// Tell the node to abandon the run (net/rpc multiplexes, so the
		// Cancel travels on the same connection while Count is pending),
		// then wait — bounded — for the aborted Count to drain so a
		// healthy node is idle by the time we report cancellation.
		client.Go("Node.Cancel", &CancelArgs{RunID: args.RunID}, &CancelReply{}, make(chan *rpc.Call, 1))
		select {
		case <-count.Done:
		case <-time.After(cancelDrainTimeout):
		}
		return nil, ctx.Err()
	}
}

// runLocal is the master acting as node 0.
func runLocal(ctx context.Context, cfg Config, d *graph.Disk, ranges []balance.Range) (*NodeResult, []byte, error) {
	calcStart := time.Now()
	opt := core.Options{
		Workers:  len(ranges),
		MemEdges: cfg.MemEdges,
		BufBytes: cfg.BufBytes,
		Scan:     cfg.Scan,
		Kernel:   cfg.Kernel,
	}
	var buffers []*bytes.Buffer
	if cfg.List {
		opt.Sinks = make([]mgt.Sink, len(ranges))
		buffers = make([]*bytes.Buffer, len(ranges))
		for i := range opt.Sinks {
			buffers[i] = &bytes.Buffer{}
			opt.Sinks[i] = mgt.NewFileSink(buffers[i])
		}
	}
	stats, srcIO, err := core.RunRanges(ctx, d, ranges, opt)
	if err != nil {
		return nil, nil, err
	}
	nr := &NodeResult{Name: "master", Addr: "local", Workers: stats, SourceIO: srcIO, CalcTime: time.Since(calcStart)}
	for _, w := range stats {
		nr.Triangles += w.Stats.Triangles
	}
	var tp []byte
	if cfg.List {
		for i, sink := range opt.Sinks {
			if err := sink.(*mgt.FileSink).Flush(); err != nil {
				return nil, nil, err
			}
			tp = append(tp, buffers[i].Bytes()...)
		}
	}
	return nr, tp, nil
}

// callCtx issues one RPC and honors ctx: on cancellation it returns
// ctx.Err() immediately, leaving the in-flight call to die with the
// connection (runRemote closes the client on every return path).
func callCtx(ctx context.Context, client *rpc.Client, method string, args, reply any) error {
	call := client.Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case c := <-call.Done:
		return c.Error
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runRemote copies the graph to one client and runs its calculation phase
// (the static protocol's one Count per node). start is the global plan
// index of ranges[0]; it keys the work unit's RunID so a reassigned
// re-execution carries the same id. On a post-handshake failure the
// returned NodeResult is non-nil alongside the error, carrying the node's
// self-reported name (and any copy accounting) so the failure log can
// identify the node by more than its address.
func runRemote(ctx context.Context, cfg Config, runID, orientedBase, addr string, start int, ranges []balance.Range, limiter *Limiter) (*NodeResult, []byte, error) {
	nc, hello, err := dialNode(ctx, cfg, addr)
	if err != nil {
		return nil, nil, err
	}
	defer nc.close()
	nr := &NodeResult{Name: hello.Name, Addr: addr}

	cur := obs.CursorFrom(ctx)
	copySpan := cur.Begin(obs.SpanCopy)
	copyStart := time.Now()
	sent, err := copyGraph(ctx, nc.client, cfg, orientedBase, limiter)
	nr.CopyBytes = sent
	cur.SetAttr(copySpan, "start", int64(start))
	cur.SetAttr(copySpan, "bytes", sent)
	cur.End(copySpan)
	if err != nil {
		return nr, nil, fmt.Errorf("cluster: copy to %s: %w", addr, err)
	}
	nr.CopyTime = time.Since(copyStart)
	nc.watch()

	reply, err := countRanges(ctx, cfg, nc, runID, start, ranges)
	if err != nil {
		return nr, nil, &calcFailure{err: err}
	}
	nr.CalcTime = reply.CalcTime
	nr.Triangles = reply.Triangles
	nr.Workers = reply.Workers
	nr.SourceIO = reply.SourceIO
	return nr, reply.Triples, nil
}

// recoverRemote re-executes a lost work unit on a surviving node: the
// survivor's replica is already in place from its own copy phase, so
// recovery costs one dial and one Count — no graph bytes are re-sent.
func recoverRemote(ctx context.Context, cfg Config, runID, addr string, start int, ranges []balance.Range) (*NodeResult, []byte, error) {
	nc, hello, err := dialNode(ctx, cfg, addr)
	if err != nil {
		return nil, nil, err
	}
	defer nc.close()
	nc.watch() // straight to calculation: the replica is already in place
	reply, err := countRanges(ctx, cfg, nc, runID, start, ranges)
	if err != nil {
		return nil, nil, err
	}
	return &NodeResult{
		Name: hello.Name, Addr: addr,
		CalcTime: reply.CalcTime, Triangles: reply.Triangles,
		Workers: reply.Workers, SourceIO: reply.SourceIO,
	}, reply.Triples, nil
}

// countRanges issues one static-mode Count for a contiguous work unit,
// wrapped in a dispatch span: a traced master asks the node for its spans
// and grafts them under the dispatch on return.
func countRanges(ctx context.Context, cfg Config, nc *nodeConn, runID string, start int, ranges []balance.Range) (*CountReply, error) {
	cur := obs.CursorFrom(ctx)
	dsp := cur.Begin(obs.SpanDispatch)
	cur.SetAttr(dsp, "start", int64(start))
	cur.SetAttr(dsp, "ranges", int64(len(ranges)))
	args := &CountArgs{
		GraphName: cfg.GraphName,
		RunID:     workID(runID, start),
		Ranges:    ranges,
		MemEdges:  cfg.MemEdges,
		BufBytes:  cfg.BufBytes,
		Scan:      string(cfg.Scan),
		Kernel:    string(cfg.Kernel),
		List:      cfg.List,
		TraceSpan: traceSpanArg(cur, dsp),
	}
	reply, err := countWithCancel(ctx, nc.client, nc.addr, args)
	if err == nil && cur.T != nil {
		cur.T.Merge(dsp, reply.Spans)
	}
	cur.End(dsp)
	return reply, err
}

// traceSpanArg encodes a dispatch span as CountArgs.TraceSpan: the span id
// plus one, so zero keeps meaning "tracing off" on the wire. A full slab
// (dsp == NoSpan) sends zero too — there is no room to merge the reply's
// spans anyway.
func traceSpanArg(cur obs.Cursor, dsp obs.SpanID) int64 {
	if cur.T == nil || dsp < 0 {
		return 0
	}
	return int64(dsp) + 1
}

// callCopy is callCtx under the copy phase's per-RPC deadline: the
// heartbeat does not run during the copy (pings would queue behind the
// graph chunks on a slow uplink), so a wedged node mid-copy is caught by
// its current transfer RPC missing copyTimeout instead.
func callCopy(ctx context.Context, client *rpc.Client, method string, args, reply any) error {
	cctx, cancel := context.WithTimeout(ctx, copyTimeout)
	defer cancel()
	return callCtx(cctx, client, method, args, reply)
}

// copyGraph streams the store files to a client through the limiter —
// {meta, deg, adj} for a plain store, {meta, deg, cadj, cidx} for a
// compressed one — checking ctx between chunks so a cancelled run stops
// replicating promptly. Each transfer carries a fresh ownership token: if
// this master is superseded mid-copy (a retrying master presumed us dead),
// the node rejects our remaining chunks instead of interleaving them into
// the new transfer's files.
func copyGraph(ctx context.Context, client *rpc.Client, cfg Config, orientedBase string, limiter *Limiter) (int64, error) {
	meta, err := graph.ReadMeta(orientedBase)
	if err != nil {
		return 0, err
	}
	kinds := []FileKind{FileMeta, FileDeg, FileAdj}
	if meta.Format == graph.FormatCompressed {
		kinds = []FileKind{FileMeta, FileDeg, FileCAdj, FileCIdx}
	}
	token := fmt.Sprintf("%x-%d", runToken, runSeq.Add(1))
	if err := callCopy(ctx, client, "Node.BeginGraph", &BeginGraphArgs{Name: cfg.GraphName, Token: token, Kinds: kinds}, &struct{}{}); err != nil {
		return 0, err
	}
	var sent int64
	files := make([]struct {
		kind FileKind
		path string
	}, 0, len(kinds))
	for _, kind := range kinds {
		path, err := replicaPath(orientedBase, kind)
		if err != nil {
			return 0, err
		}
		files = append(files, struct {
			kind FileKind
			path string
		}{kind, path})
	}
	buf := make([]byte, cfg.ChunkBytes)
	for _, file := range files {
		f, err := os.Open(file.path)
		if err != nil {
			return sent, err
		}
		for {
			if err := ctx.Err(); err != nil {
				f.Close()
				return sent, err
			}
			k, rerr := f.Read(buf)
			if k > 0 {
				if err := limiter.Wait(ctx, k); err != nil {
					f.Close()
					return sent, err
				}
				chunk := ChunkArgs{Token: token, Kind: file.kind, Data: buf[:k]}
				if err := callCopy(ctx, client, "Node.GraphChunk", &chunk, &struct{}{}); err != nil {
					f.Close()
					return sent, err
				}
				sent += int64(k)
			}
			if rerr != nil {
				break
			}
		}
		f.Close()
	}
	var end EndGraphReply
	if err := callCopy(ctx, client, "Node.EndGraph", &EndGraphArgs{Token: token}, &end); err != nil {
		return sent, err
	}
	if end.BytesReceived != sent {
		return sent, fmt.Errorf("cluster: client received %d of %d bytes", end.BytesReceived, sent)
	}
	return sent, nil
}

// writeTriples concatenates the per-node triangle lists sequentially, the
// master's listing responsibility ("concatenating the triangle listing
// (sequentially)", Section IV-B2).
func writeTriples(path string, triples [][]byte) error {
	if path == "" {
		return fmt.Errorf("cluster: List requested without ListPath")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, tp := range triples {
		if _, err := f.Write(tp); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
	"pdtl/internal/sched"
)

func writeStore(t testing.TB, g *graph.CSR, name string) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), name)
	if err := graph.WriteCSR(base, name, g); err != nil {
		t.Fatal(err)
	}
	return base
}

func startCluster(t testing.TB, n int) *LocalCluster {
	t.Helper()
	lc, err := StartLocal(n, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func TestDistributedCountMatchesReference(t *testing.T) {
	g, err := gen.RMAT(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := writeStore(t, g, "rmat10")

	for _, clients := range []int{0, 1, 3} {
		lc := startCluster(t, clients)
		res, err := Run(context.Background(), Config{
			GraphBase: base,
			Workers:   2,
			MemEdges:  512,
			Strategy:  balance.InDegree,
		}, lc.Addrs())
		if err != nil {
			t.Fatalf("clients=%d: %v", clients, err)
		}
		if res.Triangles != want {
			t.Errorf("clients=%d: triangles = %d, want %d", clients, res.Triangles, want)
		}
		if len(res.Nodes) != clients+1 {
			t.Errorf("clients=%d: node results = %d", clients, len(res.Nodes))
		}
		// Master never has copy time; clients always do.
		if res.Nodes[0].CopyBytes != 0 {
			t.Error("master should not copy to itself")
		}
		for i := 1; i < len(res.Nodes); i++ {
			if res.Nodes[i].CopyBytes == 0 {
				t.Errorf("node %d: no copy bytes recorded", i)
			}
		}
	}
}

func TestDistributedNetworkTraffic(t *testing.T) {
	// Theorem IV.3: network traffic is Θ(N·(P+|E|)+T); with counting only,
	// the dominant term is one oriented-graph replica per client.
	g, err := gen.ErdosRenyi(500, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "er")
	lc := startCluster(t, 3)
	res, err := Run(context.Background(), Config{GraphBase: base, Workers: 2, MemEdges: 1024}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(res.OrientedBase)
	if err != nil {
		t.Fatal(err)
	}
	replica := d.AdjBytes() + int64(d.NumVertices())*graph.EntrySize
	// 3 replicas, plus the small meta files.
	if res.NetworkBytes < 3*replica {
		t.Errorf("network bytes %d below 3 replicas (%d)", res.NetworkBytes, 3*replica)
	}
	if res.NetworkBytes > 3*replica+10_000 {
		t.Errorf("network bytes %d too far above 3 replicas (%d)", res.NetworkBytes, 3*replica)
	}
}

func TestDistributedListing(t *testing.T) {
	g, err := gen.TriGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "tg")
	lc := startCluster(t, 2)
	listPath := filepath.Join(t.TempDir(), "triangles.bin")
	res, err := Run(context.Background(), Config{
		GraphBase: base,
		Workers:   2,
		MemEdges:  64,
		List:      true,
		ListPath:  listPath,
	}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	want := gen.TriGridTriangles(8, 8)
	if res.Triangles != want {
		t.Errorf("count = %d, want %d", res.Triangles, want)
	}
	f, err := os.Open(listPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	triples, err := mgt.ReadTriangles(f)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(triples)) != want {
		t.Fatalf("listed %d triangles, want %d", len(triples), want)
	}
	// No duplicates across nodes.
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for i := 1; i < len(triples); i++ {
		if triples[i] == triples[i-1] {
			t.Fatalf("duplicate triangle %v across nodes", triples[i])
		}
	}
}

func TestDistributedOrientedInput(t *testing.T) {
	g, err := gen.Complete(16)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k16")
	// Pre-orient via a first run, then feed the oriented store.
	lc := startCluster(t, 1)
	res1, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 64}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), Config{GraphBase: res1.OrientedBase, Workers: 1, MemEdges: 64}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Orientation != nil {
		t.Error("oriented input should skip orientation")
	}
	if res2.Triangles != gen.CompleteTriangles(16) {
		t.Errorf("triangles = %d", res2.Triangles)
	}
}

func TestUplinkLimiterSlowsCopies(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "big")
	lc := startCluster(t, 1)

	fast, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 1 << 16}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	// With rate 4·replica/s and a 100ms burst (0.4·replica), the copy
	// must spend at least (replica − 0.4·replica)/(4·replica/s) = 150ms
	// waiting, regardless of host speed.
	replica := fast.Nodes[1].CopyBytes
	slow, err := Run(context.Background(), Config{
		GraphBase:         base,
		Workers:           1,
		MemEdges:          1 << 16,
		UplinkBytesPerSec: 4 * replica,
		ChunkBytes:        int(replica / 16),
	}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Nodes[1].CopyTime < 100*time.Millisecond {
		t.Errorf("limited copy (%v) below the deterministic 150ms floor", slow.Nodes[1].CopyTime)
	}
}

func TestNodeTransferErrors(t *testing.T) {
	node := NewNode("n", t.TempDir(), 2)
	var hello HelloReply
	if err := node.Hello(&HelloArgs{}, &hello); err != nil || hello.Name != "n" || hello.MaxWorkers != 2 {
		t.Fatalf("hello = %+v err=%v", hello, err)
	}
	var ping PingReply
	if err := node.Ping(&PingArgs{}, &ping); err != nil || !ping.OK {
		t.Fatal("ping failed")
	}
	// Chunk without Begin.
	if err := node.GraphChunk(&ChunkArgs{Kind: FileAdj, Data: []byte{1}}, &struct{}{}); err == nil {
		t.Error("want error for chunk without begin")
	}
	// End without Begin.
	var end EndGraphReply
	if err := node.EndGraph(&EndGraphArgs{}, &end); err == nil {
		t.Error("want error for end without begin")
	}
	// A second Begin supersedes a stale transfer (its master is presumed
	// dead): the first transfer's bytes are discarded, its token is
	// invalidated — a slow-but-alive first master's stale chunks and End
	// are rejected, never interleaved — and the new transfer starts from
	// zero.
	if err := node.BeginGraph(&BeginGraphArgs{Name: "g", Token: "m1"}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := node.GraphChunk(&ChunkArgs{Token: "m1", Kind: FileAdj, Data: []byte{1, 2, 3}}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := node.BeginGraph(&BeginGraphArgs{Name: "g", Token: "m2"}, &struct{}{}); err != nil {
		t.Fatalf("superseding Begin failed: %v", err)
	}
	if err := node.GraphChunk(&ChunkArgs{Token: "m1", Kind: FileAdj, Data: []byte{9, 9}}, &struct{}{}); err == nil {
		t.Error("superseded master's chunk was accepted into the new transfer")
	}
	if err := node.EndGraph(&EndGraphArgs{Token: "m1"}, &end); err == nil {
		t.Error("superseded master's EndGraph finalized the new transfer")
	}
	// Unknown file kind (with the live token).
	if err := node.GraphChunk(&ChunkArgs{Token: "m2", Kind: "bogus", Data: []byte{1}}, &struct{}{}); err == nil {
		t.Error("want error for unknown kind")
	}
	if err := node.EndGraph(&EndGraphArgs{Token: "m2"}, &end); err != nil {
		t.Fatal(err)
	}
	if end.BytesReceived != 0 {
		t.Errorf("superseded transfer leaked %d bytes into the new one", end.BytesReceived)
	}
	// Count against a missing replica.
	var reply CountReply
	err := node.Count(&CountArgs{GraphName: "missing", Ranges: []balance.Range{{Lo: 0, Hi: 1}}, MemEdges: 4}, &reply)
	if err == nil {
		t.Error("want error for missing replica")
	}
}

// transferStore pushes a store's three files into a node via the transfer
// RPCs, optionally truncating the copy partway (sendFrac < 1 simulates a
// master that died mid-copy: no EndGraph is sent).
func transferStore(t *testing.T, node *Node, name, base string, sendFrac float64) {
	t.Helper()
	token := fmt.Sprintf("tok-%d-%f", time.Now().UnixNano(), sendFrac)
	if err := node.BeginGraph(&BeginGraphArgs{Name: name, Token: token}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	files := []struct {
		kind FileKind
		path string
	}{
		{FileMeta, graph.MetaPath(base)},
		{FileDeg, graph.DegPath(base)},
		{FileAdj, graph.AdjPath(base)},
	}
	var total, budget int64
	for _, f := range files {
		st, err := os.Stat(f.path)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	budget = int64(float64(total) * sendFrac)
	for _, f := range files {
		data, err := os.ReadFile(f.path)
		if err != nil {
			t.Fatal(err)
		}
		if sendFrac < 1 {
			if budget <= 0 {
				return
			}
			if int64(len(data)) > budget {
				data = data[:budget]
			}
			budget -= int64(len(data))
		}
		if err := node.GraphChunk(&ChunkArgs{Token: token, Kind: f.kind, Data: data}, &struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	if sendFrac < 1 {
		return
	}
	var end EndGraphReply
	if err := node.EndGraph(&EndGraphArgs{Token: token}, &end); err != nil {
		t.Fatal(err)
	}
}

// TestFailedCopyDoesNotPoisonReplicaCache: the regression test around
// openReplica — a re-replication that starts (truncating the files) must
// invalidate the cached Disk immediately, so a Count after a failed copy
// gets an open error instead of silently reading mangled bytes through
// stale metadata; a completed re-copy then serves a fresh handle.
func TestFailedCopyDoesNotPoisonReplicaCache(t *testing.T) {
	g, err := gen.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := writeStore(t, g, "k8")
	// Orient via a local run so the replica is a valid oriented store.
	res, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	oriented := res.OrientedBase

	node := NewNode("n", t.TempDir(), 1)
	transferStore(t, node, "k8", oriented, 1)
	d1, err := node.openReplica("k8")
	if err != nil {
		t.Fatal(err)
	}
	if d2, err := node.openReplica("k8"); err != nil || d2 != d1 {
		t.Fatalf("second open = (%p, %v), want cached %p", d2, err, d1)
	}

	// A partial re-copy (master died; no EndGraph): the cached handle must
	// be gone. The files are truncated/partial, so the open must fail —
	// NOT return d1.
	transferStore(t, node, "k8", oriented, 0.3)
	if d, err := node.openReplica("k8"); err == nil {
		if d == d1 {
			t.Fatal("openReplica returned the stale cached handle over a partial replica")
		}
		t.Fatal("openReplica succeeded over a partial replica")
	}
	var reply CountReply
	if err := node.Count(&CountArgs{GraphName: "k8", Ranges: []balance.Range{{Lo: 0, Hi: 1}}, MemEdges: 16}, &reply); err == nil {
		t.Fatal("Count over a partial replica succeeded")
	}

	// A completed retry (superseding the stale transfer) heals the node.
	transferStore(t, node, "k8", oriented, 1)
	d3, err := node.openReplica("k8")
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("re-replicated graph served the pre-failure handle")
	}
	n := d3.NumVertices()
	reply = CountReply{}
	if err := node.Count(&CountArgs{
		GraphName: "k8",
		Ranges:    []balance.Range{{Lo: 0, Hi: d3.Offsets[n]}},
		MemEdges:  64,
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Triangles != want {
		t.Errorf("post-recovery count = %d, want %d", reply.Triangles, want)
	}
}

// TestRunRecoversFromDeadNode: an unreachable node no longer kills the
// run — its work is reassigned (here master-local, the last resort) and the
// failure is reported in Result.Failures. With recovery disabled
// (MaxRetries < 0), the pre-fault-tolerance fail-fast behavior returns,
// and with several dead nodes the error names all of them (errors.Join),
// not just the first.
func TestRunRecoversFromDeadNode(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k6")
	lc := startCluster(t, 1)
	deadAddr := lc.Addrs()[0]
	lc.Close()

	for _, mode := range []sched.Mode{sched.Static, sched.Stealing} {
		res, err := Run(context.Background(), Config{
			GraphBase: base, Workers: 1, MemEdges: 16, Sched: mode,
		}, []string{deadAddr})
		if err != nil {
			t.Fatalf("%v: run with a dead node failed: %v", mode, err)
		}
		if want := gen.CompleteTriangles(6); res.Triangles != want {
			t.Errorf("%v: triangles = %d, want %d", mode, res.Triangles, want)
		}
		if len(res.Failures) == 0 {
			t.Fatalf("%v: dead node left no entry in Result.Failures", mode)
		}
		if f := res.Failures[0]; f.Addr != deadAddr || f.Err == "" || f.Time.IsZero() {
			t.Errorf("%v: failure entry = %+v, want addr %s with error and time", mode, f, deadAddr)
		}
	}

	// Fail-fast ablation: recovery disabled.
	if _, err := Run(context.Background(), Config{
		GraphBase: base, Workers: 1, MemEdges: 16, MaxRetries: -1,
	}, []string{deadAddr}); err == nil {
		t.Fatal("MaxRetries<0: want error when node is unreachable")
	}

	// Two dead nodes, fail-fast: both must be named in the joined error.
	lc2 := startCluster(t, 2)
	addrs := lc2.Addrs()
	lc2.Close()
	_, err = Run(context.Background(), Config{
		GraphBase: base, Workers: 1, MemEdges: 16, MaxRetries: -1,
	}, addrs)
	if err == nil {
		t.Fatal("want error with two dead nodes and recovery disabled")
	}
	for _, addr := range addrs {
		if !strings.Contains(err.Error(), addr) {
			t.Errorf("joined error %q does not name dead node %s", err, addr)
		}
	}
}

func TestListRequiresPath(t *testing.T) {
	g, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k5")
	if _, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 16, List: true}, nil); err == nil {
		t.Fatal("want error for List without ListPath")
	}
}

func TestLimiter(t *testing.T) {
	ctx := context.Background()
	// Unlimited limiter never blocks.
	l := NewLimiter(0)
	done := make(chan struct{})
	go func() {
		l.Wait(ctx, 1<<30)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("unlimited limiter blocked")
	}
	// A nil limiter is a no-op too.
	var nilL *Limiter
	nilL.Wait(ctx, 100)

	// A limited limiter enforces an approximate rate beyond its 100ms
	// burst: at 10 MiB/s the burst is 1 MiB, so waiting for 3 MiB must
	// take at least (3−1)/10 = 200ms.
	rate := int64(10 << 20)
	l = NewLimiter(rate)
	start := time.Now()
	if err := l.Wait(ctx, 3<<20); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("limited Wait returned too fast: %v", elapsed)
	}
}

// TestLimiterWaitCancel: a cancelled context unblocks a Wait that would
// otherwise sleep off seconds of token debt, refunds the unsent bytes, and
// leaks no goroutines.
func TestLimiterWaitCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// 1 KiB/s with a ~100-byte burst: 1 MiB of debt would sleep ~17 min.
	l := NewLimiter(1 << 10)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	start := time.Now()
	go func() { errCh <- l.Wait(ctx, 1<<20) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("cancelled Wait returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Wait did not return")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled Wait took %v, want prompt return", elapsed)
	}
	// The refund means a small follow-up Wait is not charged the aborted
	// megabyte: it must return in well under the ~17 min the debt implied.
	start = time.Now()
	if err := l.Wait(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("post-cancel Wait(10) took %v: aborted bytes were not refunded", elapsed)
	}
	// No goroutines may outlive Wait (it uses no goroutines at all).
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked: %d, baseline %d", n, baseline)
	}
}
